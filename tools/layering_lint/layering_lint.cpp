// layering_lint — vampcheck's static prong.
//
// Enforces the include-layering rules documented in DESIGN.md ("Layering
// rules"): each subsystem directory under src/ may only include headers from
// the layers beneath it, component code under src/uk/<name>/ may include
// base/obs/mem/msg/comp, the shared uk platform headers, and its own
// directory — never another component's headers or core/sched internals —
// and obs/ depends only on base/.
//
// Usage: layering_lint <root>...
//   Each root is a source tree whose top-level directories are layer names
//   (typically the repo's src/). Every .h/.cc/.cpp/.hpp under it is scanned
//   for quoted #include directives; both endpoints are classified and
//   forbidden edges are reported as
//     <file>:<line>: error: ...
//   Exit code: 0 clean, 1 violations found, 2 usage/IO error.
//
// Deliberately dependency-free (no libclang): quoted includes in this tree
// are always root-relative layer paths, so textual extraction is exact.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// Allowed direct-include sets, bottom-up. "uk" covers the shared platform
// files directly in src/uk/; per-component subdirectories get the same set
// plus their own directory (handled in CheckEdge). "apps" is the top layer
// and unrestricted.
const std::map<std::string, std::set<std::string>>& AllowedLayers() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"base", {"base"}},
      {"obs", {"base", "obs"}},
      {"mem", {"base", "mem"}},
      {"mpk", {"base", "mem", "mpk"}},
      {"sched", {"base", "obs", "sched"}},
      {"msg", {"base", "obs", "mem", "mpk", "msg"}},
      {"comp", {"base", "mem", "msg", "comp"}},
      {"check", {"base", "obs", "msg", "check"}},
      {"core",
       {"base", "obs", "mem", "mpk", "sched", "msg", "comp", "check",
        "core"}},
      {"uk", {"base", "obs", "mem", "msg", "comp", "uk"}},
      {"apps", {}},
      {"chaos", {}},
  };
  return kAllowed;
}

struct Layer {
  std::string top;      // "base", "uk", "apps", ...
  std::string uk_comp;  // non-empty for uk/<component>/... paths
};

// Classifies a root-relative path (or an include string, which uses the same
// shape). Unknown top-level directories — system headers, gtest — are not
// subject to the rules.
std::optional<Layer> Classify(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) return std::nullopt;  // top-level file
  Layer layer;
  layer.top = rel.substr(0, slash);
  if (!AllowedLayers().contains(layer.top)) return std::nullopt;
  if (layer.top == "uk") {
    const std::string rest = rel.substr(slash + 1);
    const std::size_t inner = rest.find('/');
    if (inner != std::string::npos) layer.uk_comp = rest.substr(0, inner);
  }
  return layer;
}

// Extracts the target of a quoted #include on `line`, if any. Bracketed
// includes (<vector>) are system headers and exempt.
std::optional<std::string> QuotedInclude(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return std::nullopt;
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
    return std::nullopt;
  }
  const std::size_t open = line.find('"', i + 7);
  if (open == std::string::npos) return std::nullopt;
  const std::size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(open + 1, close - open - 1);
}

std::string DescribeSet(const std::set<std::string>& allowed) {
  std::string out = "{";
  for (const std::string& a : allowed) {
    if (out.size() > 1) out += ", ";
    out += a;
  }
  return out + "}";
}

// Returns an error description for a forbidden edge, or nullopt if allowed.
std::optional<std::string> CheckEdge(const Layer& file, const Layer& inc) {
  // Top layers (application assembly and the chaos campaign engine that
  // drives a full stack) are unrestricted.
  if (file.top == "apps" || file.top == "chaos") return std::nullopt;
  if (file.top == "uk") {
    if (inc.top == "uk") {
      // Shared platform headers (directly in uk/) are open to everyone in
      // uk/; a component's own headers only to itself. Shared files must not
      // reach down into a component.
      if (inc.uk_comp.empty() || inc.uk_comp == file.uk_comp) {
        return std::nullopt;
      }
      return "component code may not include another component's headers "
             "(uk/" +
             inc.uk_comp + "/)";
    }
    if (AllowedLayers().at("uk").contains(inc.top)) return std::nullopt;
    return "uk components may only include " +
           DescribeSet(AllowedLayers().at("uk")) +
           " and their own headers, never " + inc.top + "/ internals";
  }
  const std::set<std::string>& allowed = AllowedLayers().at(file.top);
  if (allowed.contains(inc.top)) return std::nullopt;
  return "layer '" + file.top + "' may only include " + DescribeSet(allowed);
}

bool SourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

int LintRoot(const fs::path& root, int& files, int& edges) {
  int violations = 0;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && SourceExtension(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic report order
  for (const fs::path& path : paths) {
    const std::string rel = path.lexically_relative(root).generic_string();
    const std::optional<Layer> file_layer = Classify(rel);
    if (!file_layer.has_value()) continue;
    files++;
    std::ifstream in(path);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      lineno++;
      const std::optional<std::string> inc = QuotedInclude(line);
      if (!inc.has_value()) continue;
      const std::optional<Layer> inc_layer = Classify(*inc);
      if (!inc_layer.has_value()) continue;
      edges++;
      if (const auto err = CheckEdge(*file_layer, *inc_layer)) {
        std::fprintf(stderr, "%s:%d: error: forbidden include \"%s\": %s\n",
                     path.generic_string().c_str(), lineno, inc->c_str(),
                     err->c_str());
        violations++;
      }
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: layering_lint <root>...\n");
    return 2;
  }
  int violations = 0;
  int files = 0;
  int edges = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "layering_lint: not a directory: %s\n", argv[i]);
      return 2;
    }
    violations += LintRoot(root, files, edges);
  }
  if (violations > 0) {
    std::fprintf(stderr, "layering_lint: %d violation%s in %d files\n",
                 violations, violations == 1 ? "" : "s", files);
    return 1;
  }
  std::printf("layering_lint: OK (%d files, %d layered includes)\n", files,
              edges);
  return 0;
}
