// vampstat — top-like health-table renderer for VampOS metrics snapshots.
//
// Reads a metrics JSON dump (VAMPOS_METRICS_DUMP with VAMPOS_METRICS_FORMAT=
// json, or chaoscamp --metrics) and renders the per-component health gauges
// the HealthMonitor exports (health.<component>.<field> counters) as one
// table row per component: request rate, error rate, p99 latency, leak
// slope, score, and the degraded flag. Standard library only, like
// vamptrace, so it builds anywhere the runtime does.
//
// Usage: vampstat [options] METRICS.json
//   --sort FIELD   score (default), rate, err, p99, leak, name
//   --degraded     only show components currently marked degraded
//
// Exit status: 0 on success (even with zero tracked components), 2 on usage
// or parse errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string name;
  double req_per_sec = 0;
  double err_pct = 0;       // percent of requests failing
  double p99_us = 0;
  double leak_bps = 0;
  double score = 0;
  bool degraded = false;
};

struct Snapshot {
  std::map<std::string, Row> rows;
  std::map<std::string, unsigned long long> globals;  // health.samples etc.
};

void Usage() {
  std::fprintf(stderr,
               "usage: vampstat [--sort score|rate|err|p99|leak|name] "
               "[--degraded] METRICS.json\n");
}

// Pulls `"health.x.y": value` counter lines out of the metrics JSON. The
// exporter writes one counter per line, so a line-oriented scan is exact
// against its format (the fixture tests pin this).
bool Parse(std::istream& in, Snapshot& snap) {
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t q0 = line.find('"');
    if (q0 == std::string::npos) continue;
    const std::size_t q1 = line.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::string key = line.substr(q0 + 1, q1 - q0 - 1);
    if (key.rfind("health.", 0) != 0) continue;
    const std::size_t colon = line.find(':', q1);
    if (colon == std::string::npos) continue;
    const unsigned long long value =
        std::strtoull(line.c_str() + colon + 1, nullptr, 10);

    const std::string rest = key.substr(std::strlen("health."));
    const std::size_t dot = rest.rfind('.');
    if (dot == std::string::npos) {
      snap.globals[rest] = value;  // health.samples, health.rejuvenations...
      continue;
    }
    const std::string comp = rest.substr(0, dot);
    const std::string field = rest.substr(dot + 1);
    Row& row = snap.rows[comp];
    row.name = comp;
    const double v = static_cast<double>(value);
    if (field == "req_per_sec") {
      row.req_per_sec = v;
    } else if (field == "err_pct_x100") {
      row.err_pct = v / 100.0;
    } else if (field == "p99_ns") {
      row.p99_us = v / 1000.0;
    } else if (field == "leak_bps") {
      row.leak_bps = v;
    } else if (field == "score_x1000") {
      row.score = v / 1000.0;
    } else if (field == "degraded") {
      row.degraded = value != 0;
    }
    // Unknown fields are skipped, so older vampstat binaries keep working
    // when the monitor grows new gauges.
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sort = "score";
  bool only_degraded = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sort") {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      sort = argv[++i];
    } else if (arg == "--degraded") {
      only_degraded = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "vampstat: unknown option %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    Usage();
    return 2;
  }
  if (sort != "score" && sort != "rate" && sort != "err" && sort != "p99" &&
      sort != "leak" && sort != "name") {
    std::fprintf(stderr, "vampstat: unknown sort field %s\n", sort.c_str());
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "vampstat: cannot open %s\n", path);
    return 2;
  }
  Snapshot snap;
  Parse(in, snap);

  std::vector<Row> rows;
  for (const auto& [name, row] : snap.rows) {
    if (only_degraded && !row.degraded) continue;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [&sort](const Row& a, const Row& b) {
    if (sort == "rate") return a.req_per_sec > b.req_per_sec;
    if (sort == "err") return a.err_pct > b.err_pct;
    if (sort == "p99") return a.p99_us > b.p99_us;
    if (sort == "leak") return a.leak_bps > b.leak_bps;
    if (sort == "name") return a.name < b.name;
    if (a.score != b.score) return a.score > b.score;
    return a.name < b.name;  // stable, readable order among the healthy
  });

  std::printf("vampstat: %zu components (sorted by %s)\n", rows.size(),
              sort.c_str());
  std::printf("%-14s %10s %8s %10s %12s %7s  %s\n", "COMPONENT", "REQ/S",
              "ERR%", "P99(us)", "LEAK(B/s)", "SCORE", "STATE");
  for (const Row& row : rows) {
    std::printf("%-14s %10.0f %8.2f %10.1f %12.0f %7.2f  %s\n",
                row.name.c_str(), row.req_per_sec, row.err_pct, row.p99_us,
                row.leak_bps, row.score, row.degraded ? "DEGRADED" : "ok");
  }
  if (!snap.globals.empty()) {
    std::printf("totals:");
    for (const auto& [name, value] : snap.globals) {
      std::printf(" %s=%llu", name.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}
