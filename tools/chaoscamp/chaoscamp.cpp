// chaoscamp — seeded fault-injection campaign runner for the VampOS stack.
//
// Builds a live DasHarness (Nginx-style stack under dependency-aware
// scheduling with concurrent recovery), generates a deterministic fault plan
// from the seed, fires it burst by burst under real file + network traffic,
// and writes the scored report.
//
// Usage: chaoscamp [options]
//   --seed N            campaign seed (default 1; VAMPOS_CHAOS_SEED overrides)
//   --faults N          planned faults (default 200)
//   --burst-percent P   percent of bursts with 2-3 simultaneous faults (35)
//   --windows N         availability windows in the report (10)
//   --hang-weight W     hang share out of 100 (8; hangs cost real wall time)
//   --workers N         recovery worker pool size (4)
//   --floor F           minimum per-window availability gate (default 0.0)
//   --out PATH          write the JSON report
//   --curve PATH        write the availability curve CSV
//   --trace PATH        write the flight-recorder trace (vamptrace input)
//   --burst-compare     also time a 4-components-down burst, serialized vs
//                       concurrent, and report the wall-time ratio
//   --adaptive          enable health telemetry + metric-driven rejuvenation
//                       (report gains rejuvenation counts and per-window
//                       worst-health-score)
//   --age-rounds N      adaptive aging phase: leak arena bytes from one
//                       component each round until the scheduler rejuvenates
//                       it (0 = off)
//   --age-bytes N       bytes leaked per aging round (4096)
//   --age-target NAME   component to age (default: first harness target)
//   --metrics PATH      write the final metrics snapshot as JSON (vampstat
//                       input)
//
// Exit status: 0 if the campaign is clean (every fired fault recovered, no
// fail-stop, no replay divergence) and every window meets the floor;
// 1 otherwise; 2 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/chaos.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: chaoscamp [--seed N] [--faults N] [--burst-percent P]\n"
               "                 [--windows N] [--hang-weight W] [--workers N]\n"
               "                 [--floor F] [--out PATH] [--curve PATH]\n"
               "                 [--trace PATH] [--burst-compare] [--adaptive]\n"
               "                 [--age-rounds N] [--age-bytes N]\n"
               "                 [--age-target NAME] [--metrics PATH]\n");
}

double Us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

bool WriteWith(const char* path, const char* what,
               void (vampos::chaos::Report::*writer)(std::FILE*) const,
               const vampos::chaos::Report& report) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chaoscamp: cannot open %s for %s\n", path, what);
    return false;
  }
  (report.*writer)(f);
  std::fclose(f);
  std::printf("chaoscamp: wrote %s to %s\n", what, path);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  vampos::chaos::CampaignSpec spec;
  vampos::chaos::HarnessOptions hopts;
  double floor = 0.0;
  const char* out_path = nullptr;
  const char* curve_path = nullptr;
  const char* trace_path = nullptr;
  const char* metrics_path = nullptr;
  const char* age_target_name = nullptr;
  bool burst_compare = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaoscamp: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      spec.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--faults") {
      spec.faults = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--burst-percent") {
      spec.burst_percent = std::atoi(next());
    } else if (arg == "--windows") {
      spec.windows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--hang-weight") {
      spec.hang_weight = std::atoi(next());
    } else if (arg == "--workers") {
      hopts.recovery_workers = std::atoi(next());
    } else if (arg == "--floor") {
      floor = std::atof(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--curve") {
      curve_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--burst-compare") {
      burst_compare = true;
    } else if (arg == "--adaptive") {
      spec.adaptive = true;
    } else if (arg == "--age-rounds") {
      spec.age_rounds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--age-bytes") {
      spec.age_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--age-target") {
      age_target_name = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "chaoscamp: unknown option %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  vampos::chaos::DasHarness harness(hopts);
  if (age_target_name != nullptr) {
    bool found = false;
    for (std::size_t t = 0; t < harness.targets().size(); ++t) {
      if (harness.TargetName(t) == age_target_name) {
        spec.age_target = t;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "chaoscamp: unknown --age-target %s\n",
                   age_target_name);
      return 2;
    }
  }
  vampos::chaos::Campaign campaign(harness, spec);
  const vampos::chaos::Report report = campaign.Run();

  std::printf(
      "chaoscamp: seed=%" PRIu64
      " faults=%zu fired=%zu recovered=%zu unrecovered=%zu reinitialized=%zu\n",
      report.seed, report.faults_planned, report.faults_fired,
      report.recovered, report.unrecovered, report.reinitialized);
  std::printf("reboots=%" PRIu64 " recovery_failures=%" PRIu64
              " replay_divergence=%" PRIu64 "\n",
              report.reboots, report.recovery_failures,
              report.replay_divergence);
  std::printf("concurrency: peak=%zu overlapped_bursts=%zu\n",
              report.peak_concurrent_recoveries, report.overlapped_bursts);
  if (report.adaptive) {
    std::printf("adaptive: rejuvenations=%" PRIu64 " healthy_skips=%" PRIu64
                " peak_score=%.2f\n",
                report.rejuvenations, report.healthy_skips,
                report.peak_health_score);
    if (report.aging_rounds > 0) {
      std::printf("aging: target=%s rounds=%" PRIu64
                  " rounds_to_rejuvenate=%lld offtarget_reboots=%" PRIu64
                  "\n",
                  report.aged_target.c_str(), report.aging_rounds,
                  static_cast<long long>(report.aging_rounds_to_rejuvenate),
                  report.aging_offtarget_reboots);
    }
  }
  std::printf("mttr: p50=%.1fus p95=%.1fus max=%.1fus\n",
              Us(report.mttr_p50_ns), Us(report.mttr_p95_ns),
              Us(report.mttr_max_ns));
  std::printf("availability: min=%.4f over %zu windows\n",
              report.min_availability(), report.windows.size());
  for (std::size_t w = 0; w < report.windows.size(); ++w) {
    const auto& win = report.windows[w];
    std::printf("  window %zu: rounds=%" PRIu64 " ok=%" PRIu64
                " availability=%.4f recoveries=%" PRIu64 " score=%.2f\n",
                w, win.rounds, win.ok, win.availability(), win.recoveries,
                win.worst_score);
  }

  if (out_path != nullptr &&
      !WriteWith(out_path, "report", &vampos::chaos::Report::WriteJson,
                 report)) {
    return 2;
  }
  if (curve_path != nullptr &&
      !WriteWith(curve_path, "availability curve",
                 &vampos::chaos::Report::WriteCurveCsv, report)) {
    return 2;
  }
  if (trace_path != nullptr) {
    if (harness.rt().recorder().WriteChromeTrace(trace_path)) {
      std::printf("chaoscamp: wrote trace to %s\n", trace_path);
    } else {
      std::fprintf(stderr, "chaoscamp: cannot write trace to %s\n",
                   trace_path);
      return 2;
    }
  }
  if (metrics_path != nullptr) {
    std::FILE* f = std::fopen(metrics_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "chaoscamp: cannot open %s for metrics\n",
                   metrics_path);
      return 2;
    }
    harness.rt().metrics().WriteJson(f);
    std::fclose(f);
    std::printf("chaoscamp: wrote metrics to %s\n", metrics_path);
  }

  if (burst_compare) {
    const auto cmp =
        vampos::chaos::CompareBurstRecovery(hopts.recovery_workers);
    const double speedup =
        cmp.parallel_ns > 0
            ? static_cast<double>(cmp.serialized_sum_ns) /
                  static_cast<double>(cmp.parallel_ns)
            : 0.0;
    std::printf("burst-compare: components=%zu burst_wall=%.1fus "
                "serialized_sum=%.1fus serial_run=%.1fus speedup=%.2fx "
                "peak=%zu\n",
                cmp.components, Us(cmp.parallel_ns),
                Us(cmp.serialized_sum_ns), Us(cmp.serial_ns), speedup,
                cmp.peak_concurrent);
    if (cmp.peak_concurrent < 2) {
      std::printf("chaoscamp: FAIL (burst never overlapped recoveries)\n");
      return 1;
    }
    if (cmp.parallel_ns >= cmp.serialized_sum_ns) {
      std::printf("chaoscamp: FAIL (burst wall time not below the "
                  "serialized sum of its recoveries)\n");
      return 1;
    }
  }

  if (!report.clean()) {
    std::printf("chaoscamp: FAIL (%zu unrecovered, fail_stopped=%d, "
                "replay_divergence=%" PRIu64 ")\n",
                report.unrecovered, report.fail_stopped ? 1 : 0,
                report.replay_divergence);
    return 1;
  }
  if (report.min_availability() < floor) {
    std::printf("chaoscamp: FAIL (min availability %.4f below floor %.4f)\n",
                report.min_availability(), floor);
    return 1;
  }
  std::printf("chaoscamp: PASS\n");
  return 0;
}
