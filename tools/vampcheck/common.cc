#include "vampcheck.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>

namespace vampcheck {

namespace fs = std::filesystem;

namespace {

bool SourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parses a vampcheck:allow comment on `raw`. Returns true if one is present;
// fills pass/reason (either may come back empty when malformed).
bool ParseAllow(const std::string& raw, std::string& pass,
                std::string& reason) {
  const std::size_t at = raw.find("vampcheck:allow(");
  if (at == std::string::npos) return false;
  const std::size_t open = at + std::string("vampcheck:allow").size();
  const std::size_t close = raw.find(')', open);
  if (close == std::string::npos) {
    pass.clear();
    reason.clear();
    return true;
  }
  const std::string inner = raw.substr(open + 1, close - open - 1);
  const std::size_t comma = inner.find(',');
  if (comma == std::string::npos) {
    pass = Trim(inner);
    reason.clear();
    return true;
  }
  pass = Trim(inner.substr(0, comma));
  reason = Trim(inner.substr(comma + 1));
  return true;
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t FindToken(const std::string& line, const std::string& tok,
                      std::size_t from) {
  for (std::size_t at = line.find(tok, from); at != std::string::npos;
       at = line.find(tok, at + 1)) {
    const bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
    const std::size_t end = at + tok.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return at;
  }
  return std::string::npos;
}

std::string StripLineComment(const std::string& line) {
  bool in_str = false;
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    const char c = line[i];
    if (in_str) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '/' && line[i + 1] == '/') {
      return line.substr(0, i);
    }
  }
  return line;
}

bool Allowed(const SourceFile& f, std::size_t idx, const std::string& pass,
             int& violations) {
  for (std::size_t k = 0; k < 2; ++k) {
    if (k > idx) break;
    const std::size_t at = idx - k;
    std::string got_pass;
    std::string reason;
    if (!ParseAllow(f.lines[at], got_pass, reason)) continue;
    if (got_pass != pass) continue;
    if (reason.empty()) {
      violations += Report(f, at, pass,
                           "vampcheck:allow(" + pass +
                               ",...) requires a non-empty reason");
    }
    return true;  // suppress the underlying finding either way
  }
  return false;
}

int Report(const SourceFile& f, std::size_t idx, const std::string& pass,
           const std::string& msg) {
  std::fprintf(stderr, "%s:%zu: error: [%s] %s\n",
               f.path.generic_string().c_str(), idx + 1, pass.c_str(),
               msg.c_str());
  return 1;
}

std::optional<std::vector<SourceFile>> LoadTree(const fs::path& root) {
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "vampcheck: not a directory: %s\n",
                 root.generic_string().c_str());
    return std::nullopt;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && SourceExtension(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic report order
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile f;
    f.path = path;
    f.rel = path.lexically_relative(root).generic_string();
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "vampcheck: cannot read: %s\n",
                   path.generic_string().c_str());
      return std::nullopt;
    }
    std::string line;
    while (std::getline(in, line)) f.lines.push_back(line);
    files.push_back(std::move(f));
  }
  return files;
}

}  // namespace vampcheck
