// vampcheck layering pass — the include-graph lint (originally
// tools/layering_lint, PR 3).
//
// Enforces the include-layering rules documented in DESIGN.md ("Layering
// rules"): each subsystem directory under src/ may only include headers from
// the layers beneath it, component code under src/uk/<name>/ may include
// base/obs/mem/msg/comp, the shared uk platform headers, and its own
// directory — never another component's headers or core/sched internals —
// and obs/ depends only on base/.

#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "vampcheck.h"

namespace vampcheck {
namespace {

// Allowed direct-include sets, bottom-up. "uk" covers the shared platform
// files directly in src/uk/; per-component subdirectories get the same set
// plus their own directory (handled in CheckEdge). "apps" is the top layer
// and unrestricted.
const std::map<std::string, std::set<std::string>>& AllowedLayers() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"base", {"base"}},
      {"obs", {"base", "obs"}},
      {"mem", {"base", "mem"}},
      {"mpk", {"base", "mem", "mpk"}},
      {"sched", {"base", "obs", "sched"}},
      {"msg", {"base", "obs", "mem", "mpk", "msg"}},
      {"comp", {"base", "mem", "msg", "comp"}},
      {"check", {"base", "obs", "msg", "check"}},
      {"core",
       {"base", "obs", "mem", "mpk", "sched", "msg", "comp", "check",
        "core"}},
      {"uk", {"base", "obs", "mem", "msg", "comp", "uk"}},
      {"apps", {}},
      {"chaos", {}},
  };
  return kAllowed;
}

struct Layer {
  std::string top;      // "base", "uk", "apps", ...
  std::string uk_comp;  // non-empty for uk/<component>/... paths
};

// Classifies a root-relative path (or an include string, which uses the same
// shape). Unknown top-level directories — system headers, gtest — are not
// subject to the rules.
std::optional<Layer> Classify(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) return std::nullopt;  // top-level file
  Layer layer;
  layer.top = rel.substr(0, slash);
  if (!AllowedLayers().contains(layer.top)) return std::nullopt;
  if (layer.top == "uk") {
    const std::string rest = rel.substr(slash + 1);
    const std::size_t inner = rest.find('/');
    if (inner != std::string::npos) layer.uk_comp = rest.substr(0, inner);
  }
  return layer;
}

// Extracts the target of a quoted #include on `line`, if any. Bracketed
// includes (<vector>) are system headers and exempt.
std::optional<std::string> QuotedInclude(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return std::nullopt;
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
    return std::nullopt;
  }
  const std::size_t open = line.find('"', i + 7);
  if (open == std::string::npos) return std::nullopt;
  const std::size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(open + 1, close - open - 1);
}

std::string DescribeSet(const std::set<std::string>& allowed) {
  std::string out = "{";
  for (const std::string& a : allowed) {
    if (out.size() > 1) out += ", ";
    out += a;
  }
  return out + "}";
}

// Returns an error description for a forbidden edge, or nullopt if allowed.
std::optional<std::string> CheckEdge(const Layer& file, const Layer& inc) {
  // Top layers (application assembly and the chaos campaign engine that
  // drives a full stack) are unrestricted.
  if (file.top == "apps" || file.top == "chaos") return std::nullopt;
  if (file.top == "uk") {
    if (inc.top == "uk") {
      // Shared platform headers (directly in uk/) are open to everyone in
      // uk/; a component's own headers only to itself. Shared files must not
      // reach down into a component.
      if (inc.uk_comp.empty() || inc.uk_comp == file.uk_comp) {
        return std::nullopt;
      }
      return "component code may not include another component's headers "
             "(uk/" +
             inc.uk_comp + "/)";
    }
    if (AllowedLayers().at("uk").contains(inc.top)) return std::nullopt;
    return "uk components may only include " +
           DescribeSet(AllowedLayers().at("uk")) +
           " and their own headers, never " + inc.top + "/ internals";
  }
  const std::set<std::string>& allowed = AllowedLayers().at(file.top);
  if (allowed.contains(inc.top)) return std::nullopt;
  return "layer '" + file.top + "' may only include " + DescribeSet(allowed);
}

}  // namespace

int RunLayering(const std::vector<std::filesystem::path>& roots) {
  int violations = 0;
  int nfiles = 0;
  int edges = 0;
  for (const auto& root : roots) {
    const auto files = LoadTree(root);
    if (!files.has_value()) return -1;
    for (const SourceFile& f : *files) {
      const std::optional<Layer> file_layer = Classify(f.rel);
      if (!file_layer.has_value()) continue;
      nfiles++;
      for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::optional<std::string> inc = QuotedInclude(f.lines[i]);
        if (!inc.has_value()) continue;
        const std::optional<Layer> inc_layer = Classify(*inc);
        if (!inc_layer.has_value()) continue;
        edges++;
        if (const auto err = CheckEdge(*file_layer, *inc_layer)) {
          violations += Report(f, i, "layering",
                               "forbidden include \"" + *inc + "\": " + *err);
        }
      }
    }
  }
  if (violations == 0) {
    std::printf("vampcheck[layering]: OK (%d files, %d layered includes)\n",
                nfiles, edges);
  }
  return violations;
}

}  // namespace vampcheck
