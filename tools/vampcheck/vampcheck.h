// vampcheck — the static-analysis suite guarding VampOS's recovery
// invariants (see docs/static-analysis.md). One dependency-free binary,
// four passes:
//
//   layering     include-graph layering rules (DESIGN.md §"Layering rules")
//   determinism  no nondeterministic calls in component handler code
//                (src/apps, src/comp) — replayed handlers must reproduce
//                their logged return values bit-for-bit
//   ownership    thread-ownership of runtime state under concurrent
//                recovery, driven by the VAMP_* annotation macros in
//                src/base/thread_annotations.h (DESIGN.md §8)
//   dirtywrite   raw bulk writes into arena memory must stay inside the
//                sanctioned DirtyTracker paths (or carry an adjacent
//                MarkDirty), so WriteTracking claims stay honest
//
// Deliberately textual (no libclang): this tree's includes are always
// root-relative layer paths, members follow the trailing-underscore naming
// convention, and pool-side code is small and annotation-marked, so exact
// token scanning is reliable — and the analyzer builds in milliseconds with
// nothing but a C++ compiler.
//
// Every pass shares the escape hatch
//     // vampcheck:allow(<pass>,<reason>)
// on the flagged line or the line above. The reason is mandatory; an allow
// comment without one is itself a violation.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace vampcheck {

struct SourceFile {
  std::filesystem::path path;       // as given (for reports)
  std::string rel;                  // root-relative, generic separators
  std::vector<std::string> lines;
};

/// Loads every .h/.hpp/.cc/.cpp under `root`, sorted by path for
/// deterministic reports. Returns nullopt on IO errors (reported to stderr).
std::optional<std::vector<SourceFile>> LoadTree(
    const std::filesystem::path& root);

[[nodiscard]] bool IsIdentChar(char c);

/// Position of `tok` in `line` at a word boundary (neither neighbor is an
/// identifier character), at or after `from`; npos if absent.
std::size_t FindToken(const std::string& line, const std::string& tok,
                      std::size_t from = 0);

/// The line with any trailing // comment removed (string literals are left
/// alone — rare enough in this tree not to matter). Allow comments are
/// parsed from the raw line, banned tokens from the stripped one, so a
/// comment *talking about* rand() is not a finding.
std::string StripLineComment(const std::string& line);

/// True when line `idx` (0-based) or the line above carries a well-formed
/// vampcheck:allow(<pass>,<reason>) comment. A malformed one (missing or
/// empty reason) is reported as its own violation via `violations`.
bool Allowed(const SourceFile& f, std::size_t idx, const std::string& pass,
             int& violations);

/// Prints `path:line: error: [pass] msg` (1-based line) and returns 1.
int Report(const SourceFile& f, std::size_t idx, const std::string& pass,
           const std::string& msg);

// Pass entry points. Each scans the given roots, prints findings, and
// returns the violation count (negative on usage/IO error).
int RunLayering(const std::vector<std::filesystem::path>& roots);
int RunDeterminism(const std::vector<std::filesystem::path>& roots);
int RunOwnership(const std::vector<std::filesystem::path>& roots);
int RunDirtyWrite(const std::vector<std::filesystem::path>& roots);

}  // namespace vampcheck
