// vampcheck ownership pass — thread-ownership lint for concurrent recovery.
//
// DESIGN.md §8: the message thread owns all runtime state; recovery-pool
// workers run only Snapshot::Restore against job-private pointers handed to
// them by the message thread. That contract is declared in source with the
// macros from base/thread_annotations.h:
//
//   T member_ VAMP_MSG_THREAD_ONLY;       message thread only — a pool
//                                         worker must never touch it
//   T member_ VAMP_RECOVERY_POOL_SHARED;  deliberately crosses the boundary
//                                         (atomic, or mutex-published)
//   T member_ VAMP_GUARDED_BY(mu_);       every touch needs mu_ held
//   void Fn(...) VAMP_POOL_ENTRY { ... }  runs on a worker thread
//
// The pass builds a textual call graph over function definitions, walks it
// from every VAMP_POOL_ENTRY function (plus every lambda passed to a
// RecoveryPool Submit() call), and flags any VAMP_MSG_THREAD_ONLY member
// touched inside that pool-reachable closure. Independently, every touch of
// a VAMP_GUARDED_BY member must sit in a function that visibly takes its
// mutex (lock_guard / unique_lock / scoped_lock / .lock()).
//
// Scope control: a member annotation only binds token matches inside the
// top-level layer directory where it is declared (core/, mem/, ...), so a
// same-named private member of an unrelated class in another layer is not
// dragged in. Call-graph edges are cross-layer by base name — deliberately
// conservative; rename or vampcheck:allow(ownership,<reason>) on collision.

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vampcheck.h"

namespace vampcheck {
namespace {

constexpr const char* kPass = "ownership";

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",  "switch",   "catch",  "return",
      "sizeof", "alignof",  "new",    "delete",   "throw",  "decltype",
      "else",   "do",       "assert", "noexcept", "static_assert",
      "defined"};
  return kw;
}

struct Annotated {
  std::string name;
  std::string kind;   // "msg" or "guarded" (shared members are just exempt)
  std::string mutex;  // for guarded
  std::string layer;  // top-level dir of the declaring file ("core", ...)
};

struct Def {
  std::string name;
  const SourceFile* file = nullptr;
  std::size_t body_begin = 0;  // offset into the file's flattened text
  std::size_t body_end = 0;
  std::size_t line = 0;        // 0-based def line (for reports)
  bool pool_entry = false;
  bool synthetic = false;      // lambda handed to Submit()
  std::vector<std::string> calls;
  // Reachability bookkeeping (filled by the BFS).
  bool reached = false;
  std::string via;             // "pool entry 'Run'" or a short chain
};

// One file's text with comments, string/char literals, and preprocessor
// lines blanked (structure-preserving: same length, newlines kept), so
// brace/paren matching and token scans see only code.
std::string Flatten(const SourceFile& f) {
  std::string text;
  for (const std::string& l : f.lines) {
    text += l;
    text += '\n';
  }
  std::string out = text;
  enum { Code, Line, Block, Str, Chr } st = Code;
  bool line_start = true;
  bool pp = false;  // inside a preprocessor line
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      line_start = true;
      if (st == Line) st = Code;
      if (pp && (i == 0 || text[i - 1] != '\\')) pp = false;
      continue;
    }
    if (st == Code && line_start && !pp) {
      if (c == '#') pp = true;
      if (c != ' ' && c != '\t') line_start = false;
    }
    if (pp) {
      out[i] = ' ';
      continue;
    }
    switch (st) {
      case Code:
        if (c == '/' && n == '/') {
          st = Line;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = Block;
          out[i] = ' ';
        } else if (c == '"') {
          st = Str;
        } else if (c == '\'') {
          st = Chr;
        }
        break;
      case Line:
        out[i] = ' ';
        break;
      case Block:
        out[i] = ' ';
        if (c == '*' && n == '/') {
          out[i + 1] = ' ';
          ++i;
          st = Code;
        }
        break;
      case Str:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = Code;
        } else {
          out[i] = ' ';
        }
        break;
      case Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t LineOf(const std::string& text, std::size_t off) {
  std::size_t line = 0;
  for (std::size_t i = 0; i < off && i < text.size(); ++i) {
    if (text[i] == '\n') line++;
  }
  return line;
}

std::size_t SkipWs(const std::string& t, std::size_t i) {
  while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i]))) ++i;
  return i;
}

// Matching ')' for the '(' at `open`; npos if unbalanced.
std::size_t MatchParen(const std::string& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == '(') depth++;
    if (t[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

// Matching '}' for the '{' at `open`; npos if unbalanced.
std::size_t MatchBrace(const std::string& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == '{') depth++;
    if (t[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

// After a candidate signature's closing paren, decide whether a body '{'
// follows (function definition) or something else (call, declaration).
// Tolerates const/noexcept/override/annotation macros and ctor initializer
// lists; bails on anything that signals an expression context. Parens and
// commas are only legal once a ':' opened an initializer list — otherwise
// `if (Cond()) {` would read as a definition of Cond.
bool BodyFollows(const std::string& t, std::size_t after_paren,
                 std::size_t* body_open) {
  bool init_list = false;
  for (std::size_t i = after_paren; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '{') {
      *body_open = i;
      return true;
    }
    if (c == ':') {
      init_list = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) || IsIdentChar(c) ||
        c == '<' || c == '>' || c == '&' || c == '*') {
      continue;
    }
    if (init_list && (c == '(' || c == ')' || c == ',')) continue;
    return false;  // ';', '[', '.', operators — not a definition
  }
  return false;
}

struct FileScan {
  const SourceFile* file;
  std::string text;  // flattened
};

// Extracts member names annotated in `f` with the given macro; `name ...
// MACRO` order, i.e. the identifier immediately before the macro token.
void CollectAnnotated(const std::string& layer, const std::string& flat,
                      std::vector<Annotated>* out) {
  struct MacroKind {
    const char* macro;
    const char* kind;
  };
  static const MacroKind kinds[] = {
      {"VAMP_MSG_THREAD_ONLY", "msg"},
      {"VAMP_GUARDED_BY", "guarded"},
  };
  for (const auto& mk : kinds) {
    for (std::size_t at = FindToken(flat, mk.macro); at != std::string::npos;
         at = FindToken(flat, mk.macro, at + 1)) {
      std::size_t i = at;
      while (i > 0 &&
             std::isspace(static_cast<unsigned char>(flat[i - 1]))) {
        --i;
      }
      std::size_t e = i;
      while (i > 0 && IsIdentChar(flat[i - 1])) --i;
      if (i == e) continue;  // macro definition itself, or odd placement
      Annotated a;
      a.name = flat.substr(i, e - i);
      a.kind = mk.kind;
      a.layer = layer;
      if (a.kind == "guarded") {
        const std::size_t open = flat.find('(', at);
        const std::size_t close =
            open == std::string::npos ? open : flat.find(')', open);
        if (open == std::string::npos || close == std::string::npos) continue;
        std::string mu = flat.substr(open + 1, close - open - 1);
        while (!mu.empty() && std::isspace(static_cast<unsigned char>(
                                  mu.front()))) {
          mu.erase(mu.begin());
        }
        while (!mu.empty() &&
               std::isspace(static_cast<unsigned char>(mu.back()))) {
          mu.pop_back();
        }
        a.mutex = mu;
      }
      out->push_back(std::move(a));
    }
  }
}

// Parses function definitions and their call edges out of one flattened
// file. Also records, for every `Submit(` call carrying a lambda, a
// synthetic pool-entry def spanning the argument list.
void ScanDefs(const FileScan& fs, std::vector<Def>* defs) {
  const std::string& t = fs.text;
  std::vector<std::size_t> open_defs;  // indices into *defs, innermost last
  for (std::size_t i = 0; i < t.size(); ++i) {
    while (!open_defs.empty() &&
           i >= (*defs)[open_defs.back()].body_end) {
      open_defs.pop_back();
    }
    if (!IsIdentChar(t[i]) ||
        (i > 0 && IsIdentChar(t[i - 1]))) {
      continue;
    }
    std::size_t e = i;
    while (e < t.size() && IsIdentChar(t[e])) ++e;
    const std::string ident = t.substr(i, e - i);
    const std::size_t k = SkipWs(t, e);
    if (k >= t.size() || t[k] != '(') {
      i = e - 1;
      continue;
    }
    if (Keywords().contains(ident)) {
      i = e - 1;
      continue;
    }
    const bool method_call =
        i > 0 && (t[i - 1] == '.' ||
                  (t[i - 1] == '>' && i > 1 && t[i - 2] == '-'));
    const std::size_t close = MatchParen(t, k);
    if (close == std::string::npos) {
      i = e - 1;
      continue;
    }
    std::size_t body_open = 0;
    if (!method_call && BodyFollows(t, close + 1, &body_open)) {
      const std::size_t body_close = MatchBrace(t, body_open);
      if (body_close == std::string::npos) {
        i = e - 1;
        continue;
      }
      Def d;
      d.name = ident;
      d.file = fs.file;
      d.body_begin = body_open + 1;
      d.body_end = body_close;
      d.line = LineOf(t, i);
      // The annotation sits between the signature and the body (or on the
      // declaration line for out-of-line defs — both are covered by
      // scanning identifier→'{').
      d.pool_entry =
          FindToken(t.substr(i, body_open - i), "VAMP_POOL_ENTRY") !=
          std::string::npos;
      defs->push_back(std::move(d));
      open_defs.push_back(defs->size() - 1);
      i = body_open;  // descend into the body
      continue;
    }
    // Call edge (method or free) from the innermost enclosing def.
    if (!open_defs.empty()) {
      (*defs)[open_defs.back()].calls.push_back(ident);
    }
    // A task handed to a RecoveryPool runs on a worker thread: treat the
    // whole argument list as a synthetic pool-entry region.
    if (ident == "Submit" && t.find('[', k) < close) {
      Def d;
      d.name = "<lambda passed to Submit>";
      d.file = fs.file;
      d.body_begin = k + 1;
      d.body_end = close;
      d.line = LineOf(t, i);
      d.pool_entry = true;
      d.synthetic = true;
      // Mini-scan for call edges inside the lambda.
      for (std::size_t j = k + 1; j < close; ++j) {
        if (!IsIdentChar(t[j]) || (j > 0 && IsIdentChar(t[j - 1]))) continue;
        std::size_t je = j;
        while (je < close && IsIdentChar(t[je])) ++je;
        const std::size_t jk = SkipWs(t, je);
        if (jk < close && t[jk] == '(' &&
            !Keywords().contains(t.substr(j, je - j))) {
          d.calls.push_back(t.substr(j, je - j));
        }
        j = je - 1;
      }
      defs->push_back(std::move(d));
    }
    i = e - 1;
  }
}

std::string TopDir(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash);
}

// Innermost def (by span) in `file` containing offset `off`; -1 if none.
int EnclosingDef(const std::vector<Def>& defs, const SourceFile* file,
                 std::size_t off) {
  int best = -1;
  std::size_t best_span = 0;
  for (std::size_t d = 0; d < defs.size(); ++d) {
    if (defs[d].file != file) continue;
    if (off < defs[d].body_begin || off >= defs[d].body_end) continue;
    const std::size_t span = defs[d].body_end - defs[d].body_begin;
    if (best < 0 || span < best_span) {
      best = static_cast<int>(d);
      best_span = span;
    }
  }
  return best;
}

}  // namespace

int RunOwnership(const std::vector<std::filesystem::path>& roots) {
  int violations = 0;
  int ndefs = 0;
  int nannot = 0;
  for (const auto& root : roots) {
    const auto files = LoadTree(root);
    if (!files.has_value()) return -1;

    std::vector<FileScan> scans;
    scans.reserve(files->size());
    for (const SourceFile& f : *files) {
      scans.push_back({&f, Flatten(f)});
    }

    std::vector<Annotated> annotated;
    std::vector<Def> defs;
    for (const FileScan& fs : scans) {
      CollectAnnotated(TopDir(fs.file->rel), fs.text, &annotated);
      ScanDefs(fs, &defs);
    }
    ndefs += static_cast<int>(defs.size());
    nannot += static_cast<int>(annotated.size());

    // BFS over call edges by base name, from pool entries.
    std::multimap<std::string, std::size_t> by_name;
    for (std::size_t d = 0; d < defs.size(); ++d) {
      by_name.emplace(defs[d].name, d);
    }
    std::vector<std::size_t> work;
    for (std::size_t d = 0; d < defs.size(); ++d) {
      if (defs[d].pool_entry) {
        defs[d].reached = true;
        defs[d].via = defs[d].synthetic
                          ? "a Submit() task"
                          : "pool entry '" + defs[d].name + "'";
        work.push_back(d);
      }
    }
    while (!work.empty()) {
      const std::size_t d = work.back();
      work.pop_back();
      for (const std::string& callee : defs[d].calls) {
        for (auto [it, end] = by_name.equal_range(callee); it != end; ++it) {
          Def& target = defs[it->second];
          if (target.reached) continue;
          target.reached = true;
          target.via = defs[d].via + " via " + defs[d].name + "()";
          work.push_back(it->second);
        }
      }
    }

    // Touch scan: every token match of an annotated member inside its
    // declaring layer, attributed to the innermost enclosing definition.
    for (const Annotated& a : annotated) {
      for (const FileScan& fs : scans) {
        if (TopDir(fs.file->rel) != a.layer) continue;
        for (std::size_t at = FindToken(fs.text, a.name);
             at != std::string::npos;
             at = FindToken(fs.text, a.name, at + 1)) {
          const std::size_t lineno = LineOf(fs.text, at);
          const std::string& raw = fs.file->lines[lineno];
          if (raw.find("VAMP_MSG_THREAD_ONLY") != std::string::npos ||
              raw.find("VAMP_GUARDED_BY") != std::string::npos ||
              raw.find("VAMP_RECOVERY_POOL_SHARED") != std::string::npos) {
            continue;  // the declaration itself
          }
          const int d = EnclosingDef(defs, fs.file, at);
          if (d < 0) continue;
          const Def& def = defs[static_cast<std::size_t>(d)];
          if (a.kind == "msg" && def.reached) {
            if (!Allowed(*fs.file, lineno, kPass, violations)) {
              violations += Report(
                  *fs.file, lineno, kPass,
                  "message-thread-only member '" + a.name +
                      "' touched in pool-reachable code (" + def.via +
                      "); see DESIGN.md §8");
            }
          }
          if (a.kind == "guarded") {
            const std::string body = fs.text.substr(
                def.body_begin, def.body_end - def.body_begin);
            const bool locks =
                FindToken(body, a.mutex) != std::string::npos &&
                (body.find("lock_guard") != std::string::npos ||
                 body.find("unique_lock") != std::string::npos ||
                 body.find("scoped_lock") != std::string::npos ||
                 body.find(a.mutex + ".lock") != std::string::npos);
            if (!locks) {
              if (!Allowed(*fs.file, lineno, kPass, violations)) {
                violations += Report(
                    *fs.file, lineno, kPass,
                    "member '" + a.name + "' is VAMP_GUARDED_BY(" + a.mutex +
                        ") but '" + def.name +
                        "' takes no visible lock on it");
              }
            }
          }
        }
      }
    }
  }
  if (violations == 0) {
    std::printf(
        "vampcheck[ownership]: OK (%d functions, %d annotated members)\n",
        ndefs, nannot);
  }
  return violations;
}

}  // namespace vampcheck
