// Layering fixture: a component that breaks the rules on purpose.
// This file is never compiled; ctest (vampcheck.layering.fixture) asserts
// the pass reports the cross-component include on line 6 with its
// file:line, and scripts/lint.sh asserts the run exits non-zero. Keep the
// line numbers stable: the ctest regex pins evil.cc:6.
#include "uk/vfs/vfs.h"     // another component's headers: forbidden
#include "core/runtime.h"   // runtime internals: forbidden
#include "sched/fiber.h"    // scheduler internals: forbidden
#include "base/types.h"     // base/ is fine — must NOT be reported
