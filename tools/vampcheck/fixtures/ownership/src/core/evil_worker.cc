// Ownership fixture: thread-ownership violations on purpose. Never
// compiled; ctest (vampcheck.ownership.fixture) pins the pool-reachable
// touch of log_head_ inside ScrubLog (reached from the VAMP_POOL_ENTRY
// Drain via Scrub) and asserts Pump()'s message-thread touch is NOT
// reported. Keep line numbers stable: the ctest regex pins line 23.
#include <mutex>

#include "base/thread_annotations.h"

struct Pool {
  void Submit(void* task);
};

class EvilRuntime {
 public:
  void Pump() { log_head_ = 7; }  // message thread: must NOT be reported

  void Drain() VAMP_POOL_ENTRY {
    Scrub();
  }
  void Scrub() { ScrubLog(); }
  void ScrubLog() {
    log_head_ = 0;  // flagged: msg-thread-only, two hops from a pool entry
  }
  void Kick() {
    pool_.Submit([this] { jobs_done_++; });  // flagged: touched in a task
  }
  void Steal() {
    depth_ = 3;  // flagged: guarded by mu_, no visible lock
  }
  void Fine() {
    std::lock_guard<std::mutex> lk(mu_);
    depth_ = 0;  // fine: lock held
  }

 private:
  Pool pool_;
  std::mutex mu_;
  int log_head_ VAMP_MSG_THREAD_ONLY = 0;
  int jobs_done_ VAMP_MSG_THREAD_ONLY = 0;
  int depth_ VAMP_GUARDED_BY(mu_) = 0;
};
