// Dirty-write fixture: raw bulk writes into component state that bypass the
// dirty tracker. Never compiled; ctest (vampcheck.dirtywrite.fixture) pins
// the untracked memcpy on line 10 and asserts the tracked (line 14), fresh-
// allocation (line 20), and allowed (line 25) writes are NOT reported.
#include <cstring>

struct State { char buf[64]; };

void EvilPoke(State* s, const char* src, unsigned long n) {
  std::memcpy(s->buf, src, n);  // flagged: no MarkDirty / Alloc in sight
}

void FinePoke(State* s, const char* src, unsigned long n) {
  std::memcpy(s->buf, src, n);  // fine: MarkDirty adjacent
  arena().MarkDirty(s->buf, n);
}

void FineFresh(Arena& a, const char* src, unsigned long n) {
  void* p = a.Alloc(n);  // fresh allocation: the allocator taints it
  std::memcpy(p, src, n);
}

void AllowedPoke(char* scratch, unsigned long n) {
  // vampcheck:allow(dirtywrite, fixture: scratch buffer outside any arena)
  std::memset(scratch, 0, n);
}
