// Determinism fixture: a component handler that smuggles nondeterminism
// into replayable state, every way the pass knows about. Never compiled;
// ctest (vampcheck.determinism.fixture) pins the rand() finding on line 14
// and the unordered-iteration finding on line 22, and asserts the allowed
// read on line 26 is NOT reported. Keep line numbers stable.
#include <chrono>
#include <random>
#include <unordered_map>

struct EvilApp {
  std::unordered_map<int, int> sessions_;

  int Roll() {
    return rand();  // banned call
  }
  long Stamp() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }
  int Sum() {
    int total = 0;
    std::mt19937 gen(42);  // banned engine, even when seeded
    for (const auto& [k, v] : sessions_) total += v;  // unordered iteration
    return total + static_cast<int>(gen());
  }
  // vampcheck:allow(determinism, fixture: bench-only wall-clock, not replayed)
  long Bench() { return time(nullptr); }
  long Addr(void* p) { return reinterpret_cast<uintptr_t>(p); }
};
