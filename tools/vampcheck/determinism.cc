// vampcheck determinism pass — replay-determinism lint for component
// handler code (src/apps, src/comp).
//
// Recovery replays logged calls against a restored checkpoint and expects
// the handler to reproduce its original results bit-for-bit (DESIGN.md §8,
// docs/static-analysis.md). Anything that lets wall-clock time, the process
// environment, or address-space layout leak into handler output breaks that
// contract silently — the replayed state diverges and the divergence check
// fires long after the root cause. This pass bans, in apps/ and comp/:
//
//   * libc / POSIX entropy and time calls (rand, random, time,
//     gettimeofday, clock_gettime, ...)
//   * <random> engines and std::random_device
//   * std::chrono *_clock::now() (use the runtime's injected base::Clock,
//     which is paused and replay-stable)
//   * iteration over std::unordered_map/set members (bucket order is not
//     stable across reboots; iterate a sorted view or use arena::map)
//   * pointer values formatted or hashed into data ("%p",
//     reinterpret_cast<uintptr_t>, std::hash over a pointer type)
//
// Escape hatch: // vampcheck:allow(determinism,<reason>) on the line or the
// line above.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "vampcheck.h"

namespace vampcheck {
namespace {

constexpr const char* kPass = "determinism";

// Functions whose *call* is banned: the token must be followed by '('.
const char* const kBannedCalls[] = {
    "rand",        "srand",     "rand_r",        "random",
    "drand48",     "lrand48",   "mrand48",       "time",
    "gettimeofday", "clock_gettime", "clock",    "getpid",
    "getrandom",
};

// Names whose mere mention is banned (types / engines).
const char* const kBannedNames[] = {
    "random_device", "mt19937",      "mt19937_64",         "minstd_rand",
    "minstd_rand0",  "ranlux24",     "ranlux48",           "knuth_b",
    "default_random_engine",
};

bool InScope(const std::string& rel) {
  return rel.rfind("apps/", 0) == 0 || rel.rfind("comp/", 0) == 0;
}

// True when `tok` occurs at a word boundary followed (after whitespace) by
// '(' — i.e. looks like a call, not part of a longer name or a comment word.
bool HasCall(const std::string& line, const std::string& tok) {
  for (std::size_t at = FindToken(line, tok); at != std::string::npos;
       at = FindToken(line, tok, at + 1)) {
    std::size_t i = at + tok.size();
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '(') return true;
  }
  return false;
}

// Extracts the member/variable name from a single-line declaration of an
// unordered container: "std::unordered_map<K, V> name_;" (initializers and
// brace-init tolerated). Returns empty if the shape doesn't match.
std::string UnorderedDeclName(const std::string& line) {
  std::size_t at = FindToken(line, "unordered_map");
  if (at == std::string::npos) at = FindToken(line, "unordered_set");
  if (at == std::string::npos) return "";
  const std::size_t open = line.find('<', at);
  if (open == std::string::npos) return "";
  int depth = 0;
  std::size_t i = open;
  for (; i < line.size(); ++i) {
    if (line[i] == '<') depth++;
    if (line[i] == '>' && --depth == 0) break;
  }
  if (i >= line.size()) return "";  // template args span lines — give up
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                             line[i] == '&' || line[i] == '*')) {
    ++i;
  }
  std::size_t b = i;
  while (i < line.size() && IsIdentChar(line[i])) ++i;
  if (i == b) return "";
  if (i < line.size() && line[i] == '(') return "";  // function, not a var
  return line.substr(b, i - b);
}

// True when `line` iterates `name`: a range-for over it, or an explicit
// begin()/cbegin() call on it.
bool Iterates(const std::string& line, const std::string& name) {
  const std::size_t at = FindToken(line, name);
  if (at == std::string::npos) return false;
  const std::size_t end = at + name.size();
  if (line.compare(end, 7, ".begin(") == 0 ||
      line.compare(end, 8, ".cbegin(") == 0 ||
      line.compare(end, 8, "->begin(") == 0) {
    return true;
  }
  const std::size_t f = FindToken(line, "for");
  if (f == std::string::npos || f > at) return false;
  const std::size_t colon = line.find(':', f);
  return colon != std::string::npos && colon < at &&
         (colon + 1 >= line.size() || line[colon + 1] != ':') &&
         line[colon - 1] != ':';
}

// True when `line` hashes a pointer type: "hash<...*...>".
bool HashesPointer(const std::string& line) {
  for (std::size_t at = line.find("hash<"); at != std::string::npos;
       at = line.find("hash<", at + 1)) {
    const std::size_t close = line.find('>', at);
    if (close == std::string::npos) continue;
    if (line.find('*', at) < close) return true;
  }
  return false;
}

}  // namespace

int RunDeterminism(const std::vector<std::filesystem::path>& roots) {
  int violations = 0;
  int nfiles = 0;
  for (const auto& root : roots) {
    const auto files = LoadTree(root);
    if (!files.has_value()) return -1;

    // Phase 1: collect unordered-container member/variable names declared
    // in handler code (declarations themselves are fine). Names are scoped
    // to the declaring file's stem — kvstore.h's table_ binds kvstore.cc,
    // not a same-named ordered map in another app.
    std::map<std::string, std::vector<std::string>> unordered_by_stem;
    auto stem = [](const std::string& rel) {
      const std::size_t dot = rel.find_last_of('.');
      return dot == std::string::npos ? rel : rel.substr(0, dot);
    };
    for (const SourceFile& f : *files) {
      if (!InScope(f.rel)) continue;
      for (const std::string& raw : f.lines) {
        const std::string name = UnorderedDeclName(StripLineComment(raw));
        if (!name.empty()) unordered_by_stem[stem(f.rel)].push_back(name);
      }
    }

    // Phase 2: scan handler code for banned constructs.
    for (const SourceFile& f : *files) {
      if (!InScope(f.rel)) continue;
      nfiles++;
      const std::vector<std::string>& unordered = unordered_by_stem[stem(f.rel)];
      for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string line = StripLineComment(f.lines[i]);
        auto flag = [&](const std::string& msg) {
          if (!Allowed(f, i, kPass, violations)) {
            violations += Report(f, i, kPass, msg);
          }
        };
        for (const char* tok : kBannedCalls) {
          if (HasCall(line, tok)) {
            flag(std::string("nondeterministic call '") + tok +
                 "()' in component handler code (replay must reproduce "
                 "logged results; use the runtime's injected base::Clock / "
                 "base::Rng)");
          }
        }
        for (const char* tok : kBannedNames) {
          if (FindToken(line, tok) != std::string::npos) {
            flag(std::string("nondeterministic entropy source '") + tok +
                 "' in component handler code (use the deterministic "
                 "base::Rng seeded by the runtime)");
          }
        }
        if (line.find("_clock::now") != std::string::npos) {
          flag("std::chrono clock read in component handler code (use the "
               "runtime's injected base::Clock, which is replay-stable)");
        }
        for (const std::string& name : unordered) {
          if (!UnorderedDeclName(line).empty()) break;  // the decl itself
          if (Iterates(line, name)) {
            flag("iteration over unordered container '" + name +
                 "' (bucket order is not stable across reboots; iterate a "
                 "sorted view instead)");
          }
        }
        if (line.find("%p") != std::string::npos ||
            line.find("reinterpret_cast<std::uintptr_t>") !=
                std::string::npos ||
            line.find("reinterpret_cast<uintptr_t>") != std::string::npos ||
            HashesPointer(line)) {
          flag("pointer value formatted/hashed into data (addresses change "
               "across reboots; use stable ids)");
        }
      }
    }
  }
  if (violations == 0) {
    std::printf("vampcheck[determinism]: OK (%d handler files)\n", nfiles);
  }
  return violations;
}

}  // namespace vampcheck
