// vampcheck driver — see vampcheck.h for the pass catalogue and
// docs/static-analysis.md for the workflow.
//
// Usage: vampcheck <pass> <root>...
//   pass: layering | determinism | ownership | dirtywrite | all
//   Each root is a source tree (typically the repo's src/). Findings go to
//   stderr as <file>:<line>: error: [pass] ...
//   Exit code: 0 clean, 1 violations found, 2 usage/IO error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "vampcheck.h"

namespace {

struct Pass {
  const char* name;
  int (*run)(const std::vector<std::filesystem::path>&);
};

const Pass kPasses[] = {
    {"layering", vampcheck::RunLayering},
    {"determinism", vampcheck::RunDeterminism},
    {"ownership", vampcheck::RunOwnership},
    {"dirtywrite", vampcheck::RunDirtyWrite},
};

int Usage() {
  std::fprintf(stderr,
               "usage: vampcheck <layering|determinism|ownership|dirtywrite"
               "|all> <root>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string which = argv[1];
  std::vector<std::filesystem::path> roots;
  for (int i = 2; i < argc; ++i) roots.emplace_back(argv[i]);

  int violations = 0;
  bool matched = false;
  for (const Pass& p : kPasses) {
    if (which != "all" && which != p.name) continue;
    matched = true;
    const int n = p.run(roots);
    if (n < 0) return 2;
    violations += n;
  }
  if (!matched) return Usage();
  if (violations > 0) {
    std::fprintf(stderr, "vampcheck: %d violation%s\n", violations,
                 violations == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
