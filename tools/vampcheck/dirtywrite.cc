// vampcheck dirtywrite pass — dirty-write coverage lint.
//
// PR 6's write-tracked dirty pages make Recapture/Restore O(dirty) — but
// only if every write into arena memory flows through a path that marks the
// page dirty: the arena allocator (Alloc taints what it returns), the
// message-domain copy-in/copy-out helpers, the MPK CheckedWrite seam, or an
// explicit Arena::MarkDirty / TaintAll call. A raw memcpy/memset or
// placement-new into component state that bypasses all of those makes the
// next incremental recapture silently skip the page, and the divergence
// only surfaces as a wrong replay much later (the randomized audit mode
// exists precisely because this class of bug is quiet).
//
// This pass scans the state-owning layers (comp/, core/, uk/, apps/) — the
// tracker/copy machinery itself (base/ mem/ mpk/ msg/ sched/ obs/ check/
// chaos/) IS the sanctioned path and is exempt. A bulk write is accepted
// when any of these holds:
//
//   * a MarkDirty / TaintAll call appears within the preceding 8 lines
//     (mark the span before the write lands) or the 2 lines after
//   * an arena Alloc( appears within the preceding 8 lines (fresh
//     allocations are tainted by the allocator before first use)
//   * an explicit // vampcheck:allow(dirtywrite,<reason>) comment — e.g.
//     writes into buffers the component declared via WriteTracking::kState,
//     or reads where arena memory is only the memcpy *source*

#include <cstdio>
#include <string>
#include <vector>

#include "vampcheck.h"

namespace vampcheck {
namespace {

constexpr const char* kPass = "dirtywrite";

const char* const kExemptLayers[] = {"base", "obs", "mem", "mpk",
                                     "msg",  "sched", "check", "chaos"};

bool InScope(const std::string& rel) {
  for (const char* layer : kExemptLayers) {
    if (rel.rfind(std::string(layer) + "/", 0) == 0) return false;
  }
  return rel.find('/') != std::string::npos;  // skip top-level strays
}

// Token followed (after whitespace) by '('.
bool HasCall(const std::string& line, const std::string& tok) {
  for (std::size_t at = FindToken(line, tok); at != std::string::npos;
       at = FindToken(line, tok, at + 1)) {
    std::size_t i = at + tok.size();
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '(') return true;
  }
  return false;
}

// Placement-new: `new (expr)` — the '(' directly after the keyword.
bool HasPlacementNew(const std::string& line) {
  for (std::size_t at = FindToken(line, "new"); at != std::string::npos;
       at = FindToken(line, "new", at + 1)) {
    std::size_t i = at + 3;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '(') return true;
  }
  return false;
}

bool WindowHas(const SourceFile& f, std::size_t idx, int before, int after,
               bool (*pred)(const std::string&)) {
  const std::size_t lo =
      idx >= static_cast<std::size_t>(before) ? idx - before : 0;
  const std::size_t hi =
      std::min(f.lines.size() - 1, idx + static_cast<std::size_t>(after));
  for (std::size_t i = lo; i <= hi; ++i) {
    if (pred(StripLineComment(f.lines[i]))) return true;
  }
  return false;
}

bool IsMark(const std::string& line) {
  return FindToken(line, "MarkDirty") != std::string::npos ||
         FindToken(line, "TaintAll") != std::string::npos;
}

bool IsAlloc(const std::string& line) { return HasCall(line, "Alloc"); }

}  // namespace

int RunDirtyWrite(const std::vector<std::filesystem::path>& roots) {
  int violations = 0;
  int nfiles = 0;
  int nwrites = 0;
  for (const auto& root : roots) {
    const auto files = LoadTree(root);
    if (!files.has_value()) return -1;
    for (const SourceFile& f : *files) {
      if (!InScope(f.rel)) continue;
      nfiles++;
      for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string line = StripLineComment(f.lines[i]);
        std::string what;
        if (HasCall(line, "memcpy")) what = "memcpy";
        else if (HasCall(line, "memmove")) what = "memmove";
        else if (HasCall(line, "memset")) what = "memset";
        else if (HasPlacementNew(line)) what = "placement-new";
        if (what.empty()) continue;
        nwrites++;
        if (WindowHas(f, i, 8, 2, IsMark)) continue;
        if (WindowHas(f, i, 8, 0, IsAlloc)) continue;
        if (Allowed(f, i, kPass, violations)) continue;
        violations += Report(
            f, i, kPass,
            what +
                " into component-layer memory bypasses dirty tracking "
                "(route it through a sanctioned write path, call "
                "arena().MarkDirty on the span, or justify it with "
                "vampcheck:allow(dirtywrite,<reason>))");
      }
    }
  }
  if (violations == 0) {
    std::printf("vampcheck[dirtywrite]: OK (%d files, %d bulk writes)\n",
                nfiles, nwrites);
  }
  return violations;
}

}  // namespace vampcheck
