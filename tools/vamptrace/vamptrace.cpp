// vamptrace: post-hoc analysis of VampOS flight-recorder trace dumps.
//
// Ingests the Chrome trace_event JSON written by obs::FlightRecorder
// (WriteChromeTrace / VAMPOS_TRACE_DUMP) — one event object per line, with
// causal identity in args.{trace,span,parent} — and reassembles spans into
// per-request trees:
//
//   vamptrace trace.json              # summary + N slowest traces with
//                                     # critical path & per-component time
//   vamptrace -n 10 trace.json       # widen the slow-trace list
//   vamptrace --availability trace.json   # throughput-during-recovery
//                                         # curve (completions per bucket,
//                                         # reboot windows marked)
//   vamptrace --verify-stall trace.json   # exit 0 iff some trace's
//                                         # recovery stall matches a
//                                         # reboot's stop+snapshot+replay
//                                         # phase sum within 5%
//
// Dependency-free (std only); parses exactly the exporter's line-oriented
// format, not general JSON.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

// ------------------------------------------------------------- line parse

// Finds `"key":` in an event line and parses the numeric value after it.
// Returns false when the key is absent. Keys in the exporter's output are
// unique per line, so a plain substring search is unambiguous.
bool FindNumber(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

std::uint64_t FindU64(const std::string& line, const char* key) {
  double v = 0;
  return FindNumber(line, key, &v) ? static_cast<std::uint64_t>(v) : 0;
}

std::int64_t FindI64(const std::string& line, const char* key) {
  double v = 0;
  return FindNumber(line, key, &v) ? static_cast<std::int64_t>(v) : 0;
}

// Parses a `"key":"value"` string field (name, ph).
std::string FindString(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

// --------------------------------------------------------------- the model

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace = 0;
  int comp = -1;
  std::int64_t fn = -1;
  // Timestamps in microseconds relative to the dump start; -1 = unseen.
  double push_us = -1, pull_us = -1, reply_us = -1, deliver_us = -1;
  std::vector<std::uint64_t> children;
};

struct Trace {
  std::uint64_t id = 0;
  std::map<std::uint64_t, Span> spans;  // roots: parent 0 or overwritten
  std::vector<std::int64_t> stall_ns;   // one entry per trace.stall charge
};

struct RebootWindow {
  int comp = -1;
  double begin_us = -1, end_us = -1;
  std::int64_t stop_ns = 0, snapshot_ns = 0, replay_ns = 0;
  bool failed = false;
  [[nodiscard]] std::int64_t PhaseSum() const {
    return stop_ns + snapshot_ns + replay_ns;
  }
};

struct Dump {
  std::map<std::uint64_t, Trace> traces;
  std::vector<RebootWindow> reboots;
  std::size_t events = 0;
  double min_ts = 1e300, max_ts = -1e300;
};

Span& SpanFor(Dump& d, std::uint64_t trace_id, std::uint64_t span_id) {
  Trace& t = d.traces[trace_id];
  t.id = trace_id;
  Span& s = t.spans[span_id];
  s.id = span_id;
  s.trace = trace_id;
  return s;
}

bool Parse(const std::string& path, Dump* d) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "vamptrace: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  // Reboot B events open a window per component; the phase E events that
  // follow (same component) fill in the phase durations (a = phase ns).
  std::map<int, std::size_t> open_reboot;
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;
    const std::string name = FindString(line, "name");
    const std::string ph = FindString(line, "ph");
    if (name.empty() || ph == "s" || ph == "f") continue;  // skip flow pairs
    d->events++;
    double ts = 0;
    FindNumber(line, "ts", &ts);
    d->min_ts = std::min(d->min_ts, ts);
    d->max_ts = std::max(d->max_ts, ts);
    const int comp = static_cast<int>(FindI64(line, "tid"));
    const std::uint64_t trace = FindU64(line, "trace");
    const std::uint64_t span = FindU64(line, "span");
    const std::int64_t a = FindI64(line, "a");

    if (trace != 0 && span != 0) {
      if (name == "msg.push") {
        Span& s = SpanFor(*d, trace, span);
        s.push_us = s.push_us < 0 ? ts : s.push_us;  // retry keeps original
        s.comp = comp;
        s.fn = a;
        s.parent = FindU64(line, "parent");
      } else if (name == "msg.pull") {
        SpanFor(*d, trace, span).pull_us = ts;  // last pull wins (retry)
      } else if (name == "reply.push") {
        SpanFor(*d, trace, span).reply_us = ts;
      } else if (name == "reply.deliver") {
        SpanFor(*d, trace, span).deliver_us = ts;
      } else if (name == "trace.stall") {
        Trace& t = d->traces[trace];
        t.id = trace;
        t.stall_ns.push_back(a);
      }
      continue;
    }
    if (name == "reboot" && ph == "B") {
      open_reboot[comp] = d->reboots.size();
      RebootWindow w;
      w.comp = comp;
      w.begin_us = ts;
      d->reboots.push_back(w);
    } else if (auto it = open_reboot.find(comp); it != open_reboot.end()) {
      RebootWindow& w = d->reboots[it->second];
      if (name == "reboot.stop" && ph == "E") w.stop_ns = a;
      if (name == "reboot.snapshot" && ph == "E") w.snapshot_ns = a;
      if (name == "reboot.replay" && ph == "E") w.replay_ns = a;
      if (name == "reboot" && (ph == "E" || ph == "i")) {
        w.end_us = ts;
        w.failed = a < 0;
        open_reboot.erase(it);
      }
    }
  }
  // Link children after the fact (spans may arrive in any ring order).
  for (auto& [tid, t] : d->traces) {
    (void)tid;
    for (auto& [sid, s] : t.spans) {
      if (s.parent != 0) {
        if (auto p = t.spans.find(s.parent); p != t.spans.end()) {
          p->second.children.push_back(sid);
        }
      }
    }
  }
  return true;
}

// ------------------------------------------------------------- reporting

double SpanTotalUs(const Span& s) {
  if (s.push_us >= 0 && s.deliver_us >= 0) return s.deliver_us - s.push_us;
  return 0;
}

double TraceDurationUs(const Trace& t) {
  // Root-span end-to-end when complete; otherwise the observed extent.
  double lo = 1e300, hi = -1e300;
  for (const auto& [sid, s] : t.spans) {
    (void)sid;
    for (const double ts : {s.push_us, s.pull_us, s.reply_us, s.deliver_us}) {
      if (ts < 0) continue;
      lo = std::min(lo, ts);
      hi = std::max(hi, ts);
    }
  }
  return hi >= lo ? hi - lo : 0;
}

void PrintSpanTree(const Trace& t, const Span& s, int depth,
                   std::map<int, double>* comp_self_us) {
  const double total = SpanTotalUs(s);
  const double queue =
      (s.push_us >= 0 && s.pull_us >= 0) ? s.pull_us - s.push_us : 0;
  const double exec =
      (s.pull_us >= 0 && s.reply_us >= 0) ? s.reply_us - s.pull_us : 0;
  const double reply =
      (s.reply_us >= 0 && s.deliver_us >= 0) ? s.deliver_us - s.reply_us : 0;
  double child_total = 0;
  for (const std::uint64_t c : s.children) {
    child_total += SpanTotalUs(t.spans.at(c));
  }
  const double self = std::max(0.0, exec - child_total);
  (*comp_self_us)[s.comp] += self;
  std::printf("  %*s[span %llu] comp=%d fn=%lld total=%.1fus queue=%.1fus "
              "exec=%.1fus self=%.1fus reply=%.1fus\n",
              depth * 2, "", static_cast<unsigned long long>(s.id), s.comp,
              static_cast<long long>(s.fn), total, queue, exec, self, reply);
  for (const std::uint64_t c : s.children) {
    PrintSpanTree(t, t.spans.at(c), depth + 1, comp_self_us);
  }
}

void PrintSlowest(const Dump& d, std::size_t n) {
  std::vector<const Trace*> order;
  order.reserve(d.traces.size());
  for (const auto& [tid, t] : d.traces) {
    (void)tid;
    order.push_back(&t);
  }
  std::sort(order.begin(), order.end(), [](const Trace* a, const Trace* b) {
    return TraceDurationUs(*a) > TraceDurationUs(*b);
  });
  if (order.size() > n) order.resize(n);
  std::printf("slowest traces:\n");
  for (const Trace* t : order) {
    std::int64_t stall = 0;
    for (const std::int64_t s : t->stall_ns) stall += s;
    std::printf("trace %llu total=%.1fus spans=%zu stall=%lldns\n",
                static_cast<unsigned long long>(t->id), TraceDurationUs(*t),
                t->spans.size(), static_cast<long long>(stall));
    std::map<int, double> comp_self_us;
    // Print each root (parent absent) as its own critical-path tree.
    for (const auto& [sid, s] : t->spans) {
      (void)sid;
      if (s.parent == 0 || !t->spans.contains(s.parent)) {
        PrintSpanTree(*t, s, 1, &comp_self_us);
      }
    }
    std::printf("  per-component self time:");
    for (const auto& [comp, us] : comp_self_us) {
      std::printf(" comp%d=%.1fus", comp, us);
    }
    std::printf("\n");
  }
}

void PrintAvailability(const Dump& d, std::size_t buckets) {
  // The paper's throughput-during-recovery lens (§VII Fig 8): completed
  // root requests per time bucket, with reboot windows marked so the dip
  // and its recovery are visible in one glance.
  std::vector<double> completions;
  for (const auto& [tid, t] : d.traces) {
    (void)tid;
    for (const auto& [sid, s] : t.spans) {
      (void)sid;
      const bool is_root = s.parent == 0 || !t.spans.contains(s.parent);
      if (is_root && s.deliver_us >= 0) completions.push_back(s.deliver_us);
    }
  }
  if (completions.empty() || d.max_ts <= d.min_ts) {
    std::printf("availability: no completed root spans in dump\n");
    return;
  }
  const double width = (d.max_ts - d.min_ts) / static_cast<double>(buckets);
  std::vector<std::size_t> counts(buckets, 0);
  for (const double ts : completions) {
    auto b = static_cast<std::size_t>((ts - d.min_ts) / width);
    counts[std::min(b, buckets - 1)]++;
  }
  std::size_t peak = 1;
  for (const std::size_t c : counts) peak = std::max(peak, c);
  std::printf("availability (%zu buckets, %.1fus each, %zu completions):\n",
              buckets, width, completions.size());
  for (std::size_t i = 0; i < buckets; ++i) {
    const double t0 = d.min_ts + width * static_cast<double>(i);
    const double t1 = t0 + width;
    bool in_reboot = false;
    for (const RebootWindow& w : d.reboots) {
      if (w.begin_us < t1 && (w.end_us < 0 || w.end_us > t0)) {
        in_reboot = true;
      }
    }
    const int bar =
        static_cast<int>(40.0 * static_cast<double>(counts[i]) /
                         static_cast<double>(peak));
    std::printf("  %10.1fus %6zu %-40.*s%s\n", t0, counts[i], bar,
                "########################################",
                in_reboot ? " *reboot*" : "");
  }

  // Per-window MTTR percentiles: recoveries are binned by the bucket their
  // reboot *completed* in and scored by reboot wall time, so a burst of
  // concurrent recoveries shows up as one window with several samples.
  std::vector<std::vector<double>> mttr(buckets);
  std::vector<double> all;
  for (const RebootWindow& w : d.reboots) {
    if (w.failed || w.end_us < 0 || w.begin_us < 0) continue;
    auto b = static_cast<std::size_t>((w.end_us - d.min_ts) / width);
    mttr[std::min(b, buckets - 1)].push_back(w.end_us - w.begin_us);
    all.push_back(w.end_us - w.begin_us);
  }
  const auto pct = [](std::vector<double>& v, double p) {
    std::sort(v.begin(), v.end());
    const auto i = static_cast<std::size_t>(p * static_cast<double>(v.size()));
    return v[std::min(v.size() - 1, i)];
  };
  if (!all.empty()) {
    std::printf(
        "recovery MTTR: %zu recoveries p50=%.1fus p95=%.1fus max=%.1fus\n",
        all.size(), pct(all, 0.50), pct(all, 0.95),
        *std::max_element(all.begin(), all.end()));
    std::printf("per-window MTTR:\n");
    for (std::size_t i = 0; i < buckets; ++i) {
      if (mttr[i].empty()) continue;
      std::printf("  window %zu: recoveries=%zu p50=%.1fus p95=%.1fus\n", i,
                  mttr[i].size(), pct(mttr[i], 0.50), pct(mttr[i], 0.95));
    }
  }
}

int VerifyStall(const Dump& d) {
  // Acceptance gate: at least one trace's recovery stall must match some
  // reboot's stop+snapshot+replay phase sum within 5%.
  for (const auto& [tid, t] : d.traces) {
    (void)tid;
    for (const std::int64_t stall : t.stall_ns) {
      for (const RebootWindow& w : d.reboots) {
        if (w.failed || w.PhaseSum() <= 0) continue;
        const double sum = static_cast<double>(w.PhaseSum());
        if (std::abs(static_cast<double>(stall) - sum) <= 0.05 * sum) {
          std::printf("stall attribution OK: trace %llu stall=%lldns "
                      "matches reboot comp=%d stop+snapshot+replay=%lldns\n",
                      static_cast<unsigned long long>(t.id),
                      static_cast<long long>(stall), w.comp,
                      static_cast<long long>(w.PhaseSum()));
          return 0;
        }
      }
    }
  }
  std::printf("stall attribution FAILED: no trace stall within 5%% of any "
              "reboot phase sum\n");
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: vamptrace [-n N] [--availability [BUCKETS]] "
               "[--verify-stall] trace.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t top_n = 5;
  std::size_t buckets = 40;
  bool availability = false;
  bool verify_stall = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-n" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--availability") {
      availability = true;
      if (i + 1 < argc && std::atol(argv[i + 1]) > 0) {
        buckets = static_cast<std::size_t>(std::atol(argv[++i]));
      }
    } else if (arg == "--verify-stall") {
      verify_stall = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();

  Dump dump;
  if (!Parse(path, &dump)) return 2;
  std::printf("vamptrace: %zu events, %zu traces, %zu reboots\n", dump.events,
              dump.traces.size(), dump.reboots.size());
  for (std::size_t i = 0; i < dump.reboots.size(); ++i) {
    const RebootWindow& w = dump.reboots[i];
    std::printf(
        "reboot #%zu comp=%d%s stop=%lldns snapshot=%lldns replay=%lldns "
        "sum=%lldns\n",
        i + 1, w.comp, w.failed ? " (failed)" : "",
        static_cast<long long>(w.stop_ns),
        static_cast<long long>(w.snapshot_ns),
        static_cast<long long>(w.replay_ns),
        static_cast<long long>(w.PhaseSum()));
  }
  if (verify_stall) return VerifyStall(dump);
  if (availability) {
    PrintAvailability(dump, buckets);
    return 0;
  }
  PrintSlowest(dump, top_n);
  return 0;
}
