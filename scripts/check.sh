#!/usr/bin/env bash
# Tier-1 verification: build + run the full test suite in the default
# configuration, then again under ASan+UBSan. Any sanitizer report fails the
# run (-fno-sanitize-recover=all aborts on the first UBSan hit too).
#
# Usage: scripts/check.sh [--asan-only|--no-asan|--lint|--tsan]
#   --lint runs the vampcheck static passes (scripts/lint.sh) instead of the
#   test suites.
#   --tsan runs the ThreadSanitizer race matrix for the concurrent recovery
#   paths (scripts/tsan_smoke.sh) instead of the test suites.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--lint" ]]; then
  exec scripts/lint.sh
fi
if [[ "${1:-}" == "--tsan" ]]; then
  exec scripts/tsan_smoke.sh
fi

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"

if [[ "$mode" != "--asan-only" ]]; then
  run_suite build
  # Snapshot-regression smoke: the incremental checkpoint engine must keep
  # copying fewer bytes per reboot than the full-copy fallback.
  cmake --build build -j "$(nproc)" --target bench_reboot
  scripts/snapshot_smoke.sh build
fi

if [[ "$mode" != "--no-asan" ]]; then
  # ucontext fiber switching: ASan handles swapcontext but must not use
  # fake stacks across switches.
  export ASAN_OPTIONS="detect_stack_use_after_return=0:${ASAN_OPTIONS:-}"
  run_suite build-asan -DCMAKE_BUILD_TYPE=Asan
fi

echo "check.sh: all suites passed"
