#!/usr/bin/env bash
# Snapshot-regression smoke: runs bench_reboot, which reboots the DaS web
# stack under both checkpoint engines, and fails if the page-granular
# incremental engine stops paying for itself — i.e. if it copies as many
# (or more) bytes per stateful rejuvenation pass as the full-copy engine on
# the mostly-clean 1,000-GET workload. The JSON baseline is left at
# BENCH_reboot.json (or $VAMPOS_BENCH_JSON) for run-to-run diffing.
#
# Usage: scripts/snapshot_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
bench="$build_dir/bench/bench_reboot"
if [[ ! -x "$bench" ]]; then
  echo "snapshot_smoke: $bench not built (cmake --build $build_dir --target bench_reboot)" >&2
  exit 1
fi

json="${VAMPOS_BENCH_JSON:-BENCH_reboot.json}"
VAMPOS_BENCH_JSON="$json" "$bench" > /dev/null

get() { grep "\"$1\"" "$json" | head -1 | sed 's/.*: *//; s/,$//'; }
full="$(get full_stateful_bytes_per_reboot)"
incr="$(get incr_stateful_bytes_per_reboot)"

awk -v f="${full:-0}" -v i="${incr:--1}" 'BEGIN {
  if (f <= 0 || i < 0) {
    print "snapshot_smoke: FAIL — bytes-copied series missing from baseline"
    exit 1
  }
  if (i >= f) {
    printf "snapshot_smoke: FAIL — incremental copied %.0f B/reboot, full-copy %.0f B/reboot\n", i, f
    exit 1
  }
  ratio = (i > 0) ? f / i : f
  printf "snapshot_smoke: OK — full-copy %.0f B/reboot, incremental %.0f B/reboot (%.1fx less)\n", f, i, ratio
  if (ratio < 5) {
    printf "snapshot_smoke: WARNING — ratio %.1fx is below the 5x acceptance target\n", ratio
  }
}'
