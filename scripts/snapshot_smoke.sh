#!/usr/bin/env bash
# Snapshot-regression smoke: runs bench_reboot, which reboots the DaS web
# stack under all three checkpoint engines (full-copy, hash-scan
# incremental, write-tracked incremental), and fails if:
#   1. the incremental engine copies >= the bytes the full-copy engine
#      moves per stateful rejuvenation pass, or less than 5x fewer
#      (the acceptance target — a hard gate, not a warning), or
#   2. the write-tracked engine's idle LWIP recapture is not faster than
#      the full-copy engine's (the wall-time gate: incremental must beat
#      full-copy on *time*, not just bytes, or the O(footprint) hash scan
#      has eaten the win).
# The JSON baseline is left at BENCH_reboot.json (or $VAMPOS_BENCH_JSON)
# for run-to-run diffing; the per-engine hash/recapture time series is
# extracted to BENCH_reboot_hash_series.txt (or $VAMPOS_HASH_SERIES) so CI
# can upload it as an artifact.
#
# Usage: scripts/snapshot_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
bench="$build_dir/bench/bench_reboot"
if [[ ! -x "$bench" ]]; then
  echo "snapshot_smoke: $bench not built (cmake --build $build_dir --target bench_reboot)" >&2
  exit 1
fi

json="${VAMPOS_BENCH_JSON:-BENCH_reboot.json}"
VAMPOS_BENCH_JSON="$json" "$bench" > /dev/null

# Anchored to the start of the line: an unanchored grep matched any key that
# merely *contained* the requested name (e.g. "full_stateful_bytes_per_reboot"
# inside a longer future key) and silently returned the wrong series.
get() { grep "^[[:space:]]*\"$1\": " "$json" | head -1 | sed 's/.*: *//; s/,$//'; }

full="$(get full_stateful_bytes_per_reboot)"
incr="$(get incr_stateful_bytes_per_reboot)"

awk -v f="${full:-0}" -v i="${incr:--1}" 'BEGIN {
  if (f <= 0 || i < 0) {
    print "snapshot_smoke: FAIL — bytes-copied series missing from baseline"
    exit 1
  }
  if (i >= f) {
    printf "snapshot_smoke: FAIL — incremental copied %.0f B/reboot, full-copy %.0f B/reboot\n", i, f
    exit 1
  }
  ratio = (i > 0) ? f / i : f
  printf "snapshot_smoke: OK — full-copy %.0f B/reboot, incremental %.0f B/reboot (%.1fx less)\n", f, i, ratio
  if (ratio < 5) {
    printf "snapshot_smoke: FAIL — ratio %.1fx is below the 5x acceptance target\n", ratio
    exit 1
  }
}'

# Wall-time gate: the write-tracked engine must beat full-copy on the idle
# rejuvenation recapture, or O(dirty) is a bytes-only claim.
full_us="$(get full_idle_recapture_us)"
track_us="$(get track_idle_recapture_us)"
track_skipped="$(get track_idle_pages_skipped)"

awk -v f="${full_us:-0}" -v t="${track_us:--1}" -v s="${track_skipped:-0}" 'BEGIN {
  if (f <= 0 || t < 0) {
    print "snapshot_smoke: FAIL — idle-recapture series missing from baseline"
    exit 1
  }
  if (t >= f) {
    printf "snapshot_smoke: FAIL — write-tracked idle recapture %.1f us is not faster than full-copy %.1f us\n", t, f
    exit 1
  }
  if (s <= 0) {
    print "snapshot_smoke: FAIL — write-tracked recapture skipped no pages (tracker never synced?)"
    exit 1
  }
  printf "snapshot_smoke: OK — idle recapture full-copy %.1f us, write-tracked %.1f us (%.1fx faster, %.0f pages skipped)\n", f, t, f / t, s
}'

# Per-engine hash/recapture time series for the CI artifact.
series="${VAMPOS_HASH_SERIES:-BENCH_reboot_hash_series.txt}"
grep -E '^[[:space:]]*"(full|incr|track)_[a-z0-9_]*(hash_us|idle_recapture_us|idle_pages_(dirty|skipped))": ' "$json" \
  | sed 's/^[[:space:]]*//; s/,$//' > "$series"
echo "snapshot_smoke: hash-time series written to $series"
