#!/usr/bin/env bash
# vampcheck static prong (see docs/static-analysis.md):
#
#   1. layering lint — include-graph rules from DESIGN.md §"Layering rules",
#      enforced by tools/layering_lint. A violation fails this script. The
#      committed fixture (tools/layering_lint/fixtures) must keep *failing*,
#      guarding the lint itself against regressions.
#   2. clang-tidy — advisory pass over src/ with the checks pinned in
#      .clang-tidy. Skipped with a notice when clang-tidy is not installed
#      (CI installs it; minimal dev containers may not have it).
#
# Usage: scripts/lint.sh [--layering-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
build_dir="build-lint"

# A dedicated small build dir: only the lint tool is compiled, and the
# compile database for clang-tidy comes for free. CI caches this directory.
cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$build_dir" --target layering_lint -j "$(nproc)"

lint_bin="$build_dir/tools/layering_lint/layering_lint"

echo "== layering lint: src/"
"$lint_bin" src

echo "== layering lint: fixture must fail"
if "$lint_bin" tools/layering_lint/fixtures/src; then
  echo "lint.sh: FIXTURE PASSED — the layering lint is broken" >&2
  exit 1
fi
echo "fixture correctly rejected"

if [[ "$mode" == "--layering-only" ]]; then
  echo "lint.sh: layering checks passed (clang-tidy skipped by flag)"
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not installed — advisory pass skipped"
  echo "lint.sh: layering checks passed"
  exit 0
fi

echo "== clang-tidy (advisory, checks pinned in .clang-tidy)"
# The lint build dir has the compile database; findings are reported but do
# not fail the run (WarningsAsErrors is empty in .clang-tidy).
mapfile -t sources < <(find src -name '*.cc' | sort)
clang-tidy -p "$build_dir" --quiet "${sources[@]}" || true

echo "lint.sh: all lint stages completed"
