#!/usr/bin/env bash
# vampcheck static prong (see docs/static-analysis.md):
#
#   1. vampcheck — four dependency-free passes over src/ (tools/vampcheck):
#        layering     include-graph rules from DESIGN.md §"Layering rules"
#        determinism  replay-determinism lint for handler code (apps/, comp/)
#        ownership    thread-ownership lint driven by the VAMP_* annotations
#                     in base/thread_annotations.h (DESIGN.md §8)
#        dirtywrite   dirty-write coverage: bulk writes into arena memory
#                     must flow through a tracked path
#      A violation on src/ fails this script. Each pass's committed fixture
#      (tools/vampcheck/fixtures/<pass>) must keep *failing*, guarding the
#      lint itself against regressions.
#   2. clang-tidy — pass over src/ with the checks pinned in .clang-tidy.
#      The checks listed in WarningsAsErrors there are gating; the rest are
#      advisory. Skipped with a notice when clang-tidy is not installed
#      (CI installs it; minimal dev containers may not have it).
#
# Usage: scripts/lint.sh [--vampcheck-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
build_dir="build-lint"

# A dedicated small build dir: only the lint tool is compiled, and the
# compile database for clang-tidy comes for free. CI caches this directory.
cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$build_dir" --target vampcheck -j "$(nproc)"

vampcheck="$build_dir/tools/vampcheck/vampcheck"

echo "== vampcheck: all passes over src/"
"$vampcheck" all src

for pass in layering determinism ownership dirtywrite; do
  echo "== vampcheck[$pass]: fixture must fail"
  if "$vampcheck" "$pass" "tools/vampcheck/fixtures/$pass/src"; then
    echo "lint.sh: FIXTURE PASSED — the $pass pass is broken" >&2
    exit 1
  fi
  echo "fixture correctly rejected"
done

if [[ "$mode" == "--vampcheck-only" ]]; then
  echo "lint.sh: vampcheck passes clean (clang-tidy skipped by flag)"
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not installed — tidy pass skipped"
  echo "lint.sh: vampcheck passes clean"
  exit 0
fi

echo "== clang-tidy (checks pinned in .clang-tidy)"
# The lint build dir has the compile database. Checks listed under
# WarningsAsErrors in .clang-tidy (use-after-move, dangling-handle,
# unnecessary-copy-init) fail the run; everything else is advisory.
mapfile -t sources < <(find src -name '*.cc' | sort)
clang-tidy -p "$build_dir" --quiet "${sources[@]}"

echo "lint.sh: all lint stages completed"
