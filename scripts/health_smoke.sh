#!/usr/bin/env bash
# Health-telemetry smoke: exercises the aging-aware closed loop end to end
# and the zero-overhead-off guarantee. Fails if:
#   1. the adaptive campaign (chaoscamp --adaptive) is not clean,
#   2. the injected aging component is not rejuvenated within the aging
#      round budget (rounds_to_rejuvenate=-1), or any healthy component is
#      rebooted during the aging phase (offtarget_reboots != 0),
#   3. bench_msgplane call throughput with health enabled drops more than
#      2% below the health-off run (interleaved best-of runs, up to three
#      measurement rounds, to damp runner noise and temporal drift).
# The metrics snapshot, its vampstat rendering, and the campaign report are
# left in place for CI to upload.
#
# Usage: scripts/health_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
camp="$build_dir/tools/chaoscamp/chaoscamp"
vampstat="$build_dir/tools/vampstat/vampstat"
bench="$build_dir/bench/bench_msgplane"
for bin in "$camp" "$vampstat" "$bench"; do
  if [[ ! -x "$bin" ]]; then
    echo "health_smoke: $bin not built" >&2
    exit 1
  fi
done

seed="${VAMPOS_HEALTH_SEED:-7}"
report="${VAMPOS_HEALTH_REPORT:-health_report.json}"
metrics="${VAMPOS_HEALTH_METRICS:-health_metrics.json}"
summary="health_campaign.txt"

# --- adaptive campaign with an injected leaking component -------------------
"$camp" --seed "$seed" --faults 24 --windows 8 --adaptive \
        --age-rounds 4000 --age-target vfs \
        --out "$report" --metrics "$metrics" | tee "$summary"

aging_line=$(grep '^aging:' "$summary")
rounds_to_rejuvenate=$(sed -n 's/.*rounds_to_rejuvenate=\(-\{0,1\}[0-9]*\).*/\1/p' <<<"$aging_line")
offtarget=$(sed -n 's/.*offtarget_reboots=\([0-9]*\).*/\1/p' <<<"$aging_line")
if [[ -z "$rounds_to_rejuvenate" || "$rounds_to_rejuvenate" -lt 1 ]]; then
  echo "health_smoke: FAIL — aging component never rejuvenated ($aging_line)" >&2
  exit 1
fi
if [[ "$offtarget" != "0" ]]; then
  echo "health_smoke: FAIL — $offtarget healthy-component reboots during aging" >&2
  exit 1
fi

# --- vampstat rendering of the exported snapshot ----------------------------
test -s "$metrics"
"$vampstat" "$metrics" | tee health_vampstat.txt
"$vampstat" --sort leak "$metrics" > /dev/null

# --- zero-overhead-off gate: health on within 2% of off ---------------------
# Shared runners are noisy at the percent level, so take the best rate per
# mode over interleaved runs (best-of converges on the unpreempted speed)
# and give the measurement up to three rounds before calling it a
# regression — a real >2% per-call cost fails every round.
one_rate() {
  VAMPOS_HEALTH=$1 "$bench" 2>/dev/null |
    awk '/unlogged.*calls\/s/ {print int($2); exit}'
}
off=0
on=0
pass=0
for round in 1 2 3; do
  for _ in 1 2 3 4 5; do  # interleaved, so drift hits both modes equally
    r=$(one_rate 0); [[ -n "$r" && "$r" -gt "$off" ]] && off="$r"
    r=$(one_rate 1); [[ -n "$r" && "$r" -gt "$on" ]] && on="$r"
  done
  echo "health_smoke: bench round $round: off=$off on=$on"
  # on >= 98% of off, in integer arithmetic.
  if [[ "$off" -gt 0 && "$on" -gt 0 ]] && (( on * 100 >= off * 98 )); then
    pass=1
    break
  fi
done
echo "health_smoke: bench_msgplane unlogged calls/s: off=$off on=$on"
if [[ "$off" -le 0 || "$on" -le 0 ]]; then
  echo "health_smoke: FAIL — could not parse bench_msgplane throughput" >&2
  exit 1
fi
if [[ "$pass" != 1 ]]; then
  echo "health_smoke: FAIL — health-on throughput $on below 98% of off $off" >&2
  exit 1
fi

echo "health_smoke: OK — rejuvenated in $rounds_to_rejuvenate rounds, 0 offtarget reboots, overhead within 2%"
