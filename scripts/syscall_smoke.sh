#!/usr/bin/env bash
# Syscall fast-path smoke: runs bench_syscalls (Fig 5 + Table III + the
# zero-copy pread section) and gates the two properties the zero-copy /
# inline-call work must hold:
#   1. DaS `open` stays under 3x native (Unikraft) — the inline call fast
#      path collapses the queue+fiber hops that used to put it at ~4.7x,
#   2. the zero-copy borrow path moves strictly fewer payload bytes through
#      the staging arena than the copy fallback on the identical 16 KiB
#      pread workload (a zero-copy "optimization" that copies as much as
#      the fallback is a regression, whatever the clock says).
# BENCH_syscalls.json is left in place for CI to upload.
#
# Usage: scripts/syscall_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
bench="$build_dir/bench/bench_syscalls"
if [[ ! -x "$bench" ]]; then
  echo "syscall_smoke: $bench not built" >&2
  exit 1
fi

json="${VAMPOS_BENCH_JSON:-BENCH_syscalls.json}"
"$bench" | tee syscall_bench.txt
test -s "$json"

# One scalar per key, written as '"key": 1.234' by the bench's JsonDoc.
get() {
  awk -v key="\"$1\"" -F': ' '$1 ~ key {gsub(/[,"]/, "", $2); print $2; exit}' "$json"
}

native_open=$(get unikraft_open_us)
das_open=$(get vampos_das_open_us)
copy_bytes=$(get copy_read_payload_bytes)
zc_bytes=$(get zerocopy_read_payload_bytes)
for v in "$native_open" "$das_open" "$copy_bytes" "$zc_bytes"; do
  if [[ -z "$v" ]]; then
    echo "syscall_smoke: FAIL — missing key in $json" >&2
    exit 1
  fi
done

echo "syscall_smoke: open native=${native_open}us das=${das_open}us"
if ! awk -v n="$native_open" -v d="$das_open" \
     'BEGIN { exit !(n > 0 && d < 3 * n) }'; then
  echo "syscall_smoke: FAIL — DaS open ${das_open}us >= 3x native ${native_open}us" >&2
  exit 1
fi

echo "syscall_smoke: pread payload bytes copy=${copy_bytes} zerocopy=${zc_bytes}"
if ! awk -v c="$copy_bytes" -v z="$zc_bytes" \
     'BEGIN { exit !(c > 0 && z < c) }'; then
  echo "syscall_smoke: FAIL — zero-copy moved ${zc_bytes} bytes, not under copy path ${copy_bytes}" >&2
  exit 1
fi

echo "syscall_smoke: OK — DaS open within 3x native, zero-copy under copy-path byte traffic"
