#!/usr/bin/env bash
# TSan race matrix for the concurrent recovery paths (docs/static-analysis.md).
#
# Builds the tree under -DCMAKE_BUILD_TYPE=Tsan (ThreadSanitizer; the
# ucontext fiber switches are annotated via the TSan fiber API in
# src/sched/fiber.cc) and drives the three suites that actually exercise
# cross-thread state — the recovery pool workers, the parallel snapshot
# workers, and the campaign engine:
#
#   1. test_chaos          — concurrent component recovery unit tests
#   2. test_recovery_edge  — recovery edge cases (failed restores, stacking)
#   3. chaoscamp           — seeded 200-fault mini campaign, 4 workers
#
# Suppressions live in tools/tsan.supp (curated, commented; empty is the
# healthy state). The run fails on any unsuppressed TSan warning or any
# suite failure. The full interleaved output is written to $TSAN_SMOKE_REPORT
# (default tsan_report.txt) for CI artifact upload.
#
# Usage: scripts/tsan_smoke.sh [build-dir]   (default: build-tsan)
set -uo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build-tsan}"
report="${TSAN_SMOKE_REPORT:-tsan_report.txt}"

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Tsan || exit 1
cmake --build "$build_dir" -j "$(nproc)" \
  --target test_chaos test_recovery_edge chaoscamp || exit 1

# halt_on_error=0: collect every report in one run instead of dying on the
# first — the matrix is only useful if it shows the whole surface.
export TSAN_OPTIONS="halt_on_error=0 suppressions=$PWD/tools/tsan.supp ${TSAN_OPTIONS:-}"

: > "$report"
failures=0

run_suite() {
  local name="$1"; shift
  echo "== tsan_smoke: $name" | tee -a "$report"
  if ! "$@" >> "$report" 2>&1; then
    echo "tsan_smoke: suite '$name' FAILED" | tee -a "$report"
    failures=$((failures + 1))
  fi
}

run_suite test_chaos "$build_dir/tests/test_chaos"
run_suite test_recovery_edge "$build_dir/tests/test_recovery_edge"
run_suite chaoscamp-mini "$build_dir/tools/chaoscamp/chaoscamp" \
  --seed 42 --faults 200 --workers 4

races=$(grep -c "WARNING: ThreadSanitizer" "$report" || true)
echo "tsan_smoke: $races unsuppressed ThreadSanitizer warning(s), $failures suite failure(s) (report: $report)"
if [[ "$races" -gt 0 || "$failures" -gt 0 ]]; then
  grep -A 12 "WARNING: ThreadSanitizer" "$report" | head -80 || true
  exit 1
fi
echo "tsan_smoke: PASS"
