#!/usr/bin/env bash
# Chaos-campaign smoke: runs the seeded 500-fault campaign (tools/chaoscamp)
# against the live DaS stack with concurrent recovery on, and fails if:
#   1. any fired fault is left unrecovered, the runtime fail-stops, or a
#      replay diverges (chaoscamp exits nonzero on all three),
#   2. per-window availability drops below the floor (default 0.90),
#   3. the 4-components-down burst never overlaps recoveries, or its wall
#      time is not below the serialized sum of the recoveries it overlapped
#      (the concurrent-recovery win, measured by chaoscamp --burst-compare).
# The report JSON, availability curve CSV, and the campaign's Chrome trace
# are left in place for CI to upload; vamptrace summarizes the trace's
# per-window availability and MTTR percentiles as a readable report.
#
# The campaign is deterministic in its injection schedule: re-run any
# failure bit-for-bit with VAMPOS_CHAOS_SEED=<seed> (see docs/chaos.md).
#
# Usage: scripts/chaos_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
camp="$build_dir/tools/chaoscamp/chaoscamp"
vamptrace="$build_dir/tools/vamptrace/vamptrace"
if [[ ! -x "$camp" ]]; then
  echo "chaos_smoke: $camp not built (cmake --build $build_dir --target chaoscamp)" >&2
  exit 1
fi

seed="${VAMPOS_CHAOS_SEED:-42}"
faults="${VAMPOS_CHAOS_FAULTS:-500}"
floor="${VAMPOS_CHAOS_FLOOR:-0.90}"
report="${VAMPOS_CHAOS_REPORT:-chaos_report.json}"
curve="${VAMPOS_CHAOS_CURVE:-chaos_curve.csv}"
trace="${VAMPOS_CHAOS_TRACE:-chaos_trace.json}"

"$camp" --seed "$seed" --faults "$faults" --windows 10 --workers 4 \
        --floor "$floor" --burst-compare \
        --out "$report" --curve "$curve" --trace "$trace"

test -s "$report" && test -s "$curve" && test -s "$trace"

# Post-hoc trace analysis: availability windows + recovery-stall attribution
# from the campaign's own flight-recorder dump.
if [[ -x "$vamptrace" ]]; then
  "$vamptrace" --availability 10 "$trace" | tee chaos_vamptrace.txt
else
  echo "chaos_smoke: vamptrace not built; skipping trace summary"
fi

echo "chaos_smoke: OK — seed=$seed faults=$faults report=$report"
