// Zero-copy borrow protocol tests: reply views deliver byte-identical
// payloads with fewer staging copies, escaped views fault after their
// borrow window is revoked, stale-generation views fault after the lender
// reboots, logged view arguments replay from compacted copies, the replay
// transcript is byte-equivalent with zero-copy on and off (seeded fuzz),
// and the same-destination inline call fast path completes, counts, and
// recovers from mid-handler faults.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "check/isolation_checker.h"
#include "mem/arena.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using msg::MsgValue;
using testing::RunApp;
using testing::StoreComponent;

RuntimeOptions VampOpts() {
  RuntimeOptions o;
  o.mode = Mode::kVampOS;
  o.hang_threshold = 0;
  return o;
}

std::span<const std::byte> AsBytes(const char* p, std::size_t n) {
  return {reinterpret_cast<const std::byte*>(p), n};
}

/// Lender: serves (and rewrites) a block inside its arena. The stash_/leak
/// pair models the misbehaving borrower/lender patterns the checker must
/// catch: stashing a borrowed value past its window, and lending memory
/// whose arena has since been rebooted. The stash lives in an object member
/// (outside the arena) so it survives reboots the way an escaped reference
/// would.
class LenderComponent final : public comp::Component {
 public:
  static constexpr std::size_t kBlock = 256;

  LenderComponent()
      : Component("lender", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    for (std::size_t i = 0; i < kBlock; ++i) {
      state_->block[i] = static_cast<char>('a' + i % 26);
    }
    state_->len = kBlock;
    ctx.Export("get", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return MsgValue::Borrowed(
                     AsBytes(state_->block, state_->len), arena());
               });
    ctx.Export("put", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const std::string& data = args[0].bytes();
                 const std::size_t n = std::min(data.size(), kBlock);
                 arena().MarkDirty(state_->block, kBlock);
                 std::memcpy(state_->block, data.data(), n);
                 state_->len = n;
                 return MsgValue(static_cast<std::int64_t>(n));
               });
    // Mints a borrow of its own arena and parks it outside any grant
    // bookkeeping — after a reboot the view goes stale by generation.
    ctx.Export("stash_own", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 stash_ = MsgValue::Borrowed(
                     AsBytes(state_->block, state_->len), arena());
                 return MsgValue(std::int64_t{0});
               });
    // Stashes an inbound (granted) view past the reply that revokes it.
    ctx.Export("take", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args& args) {
                 stash_ = args[0];
                 return MsgValue(std::int64_t{0});
               });
    // Tries to smuggle the stashed view out in a fresh reply. Clears the
    // stash so the post-reboot retry of a faulted leak succeeds.
    ctx.Export("leak", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return std::exchange(stash_, MsgValue());
               });
  }

 private:
  struct State {
    char block[kBlock];
    std::size_t len = 0;
  };
  State* state_ = nullptr;
  MsgValue stash_;
};

/// Borrower side of the call direction: flush() lends its own arena block
/// to a logged downstream call — the sink's log entry must hold a compacted
/// copy, not the borrow.
class WriterComponent final : public comp::Component {
 public:
  static constexpr std::size_t kBlock = 192;

  WriterComponent()
      : Component("writer", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("fill", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 arena().MarkDirty(state_->block, kBlock);
                 for (std::size_t i = 0; i < kBlock; ++i) {
                   state_->block[i] = static_cast<char>(
                       'A' + (i + static_cast<std::size_t>(args[0].i64())) % 26);
                 }
                 return MsgValue(std::int64_t{0});
               });
    ctx.Export("flush", comp::FnOptions{},
               [this](comp::CallCtx& c, const msg::Args&) {
                 return c.Call(take_fn_,
                               {MsgValue::Borrowed(
                                   AsBytes(state_->block, kBlock), arena())});
               });
  }

  void Bind(comp::InitCtx& ctx) override {
    take_fn_ = ctx.Import("lender", "take");
  }

 private:
  struct State {
    char block[kBlock];
  };
  State* state_ = nullptr;
  FunctionId take_fn_ = -1;
};

/// Logged downstream sink for view arguments: records length and checksum,
/// both rebuilt by replay after its own reboot.
class ChecksumSink final : public comp::Component {
 public:
  ChecksumSink()
      : Component("sink", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("put", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const std::string& data = args[0].bytes();
                 std::int64_t sum = 0;
                 for (const char ch : data) sum = sum * 31 + ch;
                 state_->checksum = sum;
                 state_->bytes += static_cast<std::int64_t>(data.size());
                 state_->puts++;
                 return MsgValue(state_->checksum);
               });
    ctx.Export("checksum", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return MsgValue(state_->checksum);
               });
    ctx.Export("puts", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return MsgValue(state_->puts);
               });
  }

 private:
  struct State {
    std::int64_t checksum = 0;
    std::int64_t bytes = 0;
    std::int64_t puts = 0;
  };
  State* state_ = nullptr;
};

/// Faults once (object-member flag survives the reboot), then serves.
class FlakyComponent final : public comp::Component {
 public:
  FlakyComponent()
      : Component("flaky", comp::Statefulness::kStateful, 64 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("poke", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 if (fault_next_) {
                   fault_next_ = false;
                   c.Panic("injected inline fault");
                 }
                 return MsgValue(++*state_);
               });
  }

  void Arm() { fault_next_ = true; }

 private:
  std::int64_t* state_ = nullptr;
  bool fault_next_ = false;
};

// --------------------------------------------------------- view mechanics

// Unit level: a borrowed view goes stale the moment the owning arena's
// generation moves past its mint-time generation, and reading it throws the
// kMpkViolation fault instead of returning post-reboot bytes.
TEST(ZeroCopyView, StaleGenerationFaultsOnAccess) {
  mem::Arena arena(4096, "unit");
  std::memcpy(arena.base(), "borrowed-bytes", 14);
  const MsgValue v = MsgValue::Borrowed({arena.base(), 14}, arena);
  ASSERT_TRUE(v.is_view());
  EXPECT_TRUE(v.ViewUsable());
  EXPECT_EQ(v.bytes(), "borrowed-bytes");

  arena.BumpGeneration();
  EXPECT_FALSE(v.ViewUsable());
  EXPECT_THROW((void)v.bytes(), ComponentFault);
  EXPECT_THROW((void)v.span(), ComponentFault);
  // Compaction of a dead view degrades to empty instead of reading through.
  EXPECT_EQ(v.Compacted().bytes(), "");
}

// A span outside the arena cannot be enforced as a borrow: the constructor
// falls back to an owned copy.
TEST(ZeroCopyView, ForeignSpanFallsBackToOwnedCopy) {
  mem::Arena arena(4096, "unit");
  const char foreign[] = "not-in-arena";
  const MsgValue v = MsgValue::Borrowed(AsBytes(foreign, 12), arena);
  EXPECT_FALSE(v.is_view());
  EXPECT_EQ(v.bytes(), "not-in-arena");
}

// ------------------------------------------------------ end-to-end borrow

// The zero-copy reply path hands the caller the same bytes as the copy
// fallback, while moving fewer payload bytes through the message domain.
TEST(ZeroCopy, ReplyViewsAreByteEquivalentWithFewerCopies) {
  std::string got[2];
  std::uint64_t copied[2] = {0, 0};
  for (const int zc : {0, 1}) {
    RuntimeOptions o = VampOpts();
    o.zero_copy_payloads = zc == 1;
    Runtime rt(o);
    const ComponentId lender =
        rt.AddComponent(std::make_unique<LenderComponent>());
    rt.AddAppDependency(lender);
    rt.Boot();
    const FunctionId get = rt.Lookup("lender", "get");
    RunApp(rt, [&] { got[zc] = rt.Call(get, {}).bytes(); });
    copied[zc] = rt.domain().payload_bytes_copied();
  }
  EXPECT_EQ(got[0], got[1]);
  EXPECT_EQ(got[1].size(), LenderComponent::kBlock);
  EXPECT_LT(copied[1], copied[0]);
}

// A component that stashes an inbound borrowed view and replays it in a
// later payload escapes its borrow window: the checker faults it with
// kMpkViolation and it takes the normal reboot path.
TEST(ZeroCopy, EscapedViewAfterRevokeFaultsAndReboots) {
  RuntimeOptions o = VampOpts();
  o.isolation_check = true;
  Runtime rt(o);
  const ComponentId lender =
      rt.AddComponent(std::make_unique<LenderComponent>());
  const ComponentId writer =
      rt.AddComponent(std::make_unique<WriterComponent>());
  rt.AddAppDependency(writer);
  rt.AddAppDependency(lender);
  rt.AddDependency(writer, lender);
  rt.Boot();

  const FunctionId fill = rt.Lookup("writer", "fill");
  const FunctionId flush = rt.Lookup("writer", "flush");
  const FunctionId leak = rt.Lookup("lender", "leak");
  RunApp(rt, [&] {
    rt.Call(fill, {MsgValue(std::int64_t{3})});
    rt.Call(flush, {});  // lender stashes the inbound view; reply revokes it
    rt.Call(leak, {});   // smuggling it out faults the lender
  });

  EXPECT_GE(rt.Stats().reboots, 1u);
  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_GE(rt.checker()->borrow_violations(), 1u);
  EXPECT_GE(rt.checker()->views_checked(), 1u);

  // The lender recovered: it serves fresh borrows again.
  const FunctionId get = rt.Lookup("lender", "get");
  std::string after;
  RunApp(rt, [&] { after = rt.Call(get, {}).bytes(); });
  EXPECT_EQ(after.size(), LenderComponent::kBlock);
}

// A view minted against a pre-reboot arena generation is stale, never
// silently read: smuggling it out after the lender's own reboot faults.
TEST(ZeroCopy, StaleGenerationAfterRebootFaults) {
  RuntimeOptions o = VampOpts();
  o.isolation_check = true;
  Runtime rt(o);
  const ComponentId lender =
      rt.AddComponent(std::make_unique<LenderComponent>());
  rt.AddAppDependency(lender);
  rt.Boot();

  const FunctionId stash_own = rt.Lookup("lender", "stash_own");
  const FunctionId leak = rt.Lookup("lender", "leak");
  RunApp(rt, [&] { rt.Call(stash_own, {}); });
  ASSERT_TRUE(rt.Reboot(lender).ok());  // restore bumps the generation
  RunApp(rt, [&] { rt.Call(leak, {}); });

  EXPECT_GE(rt.Stats().reboots, 2u);  // explicit reboot + fault recovery
  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_GE(rt.checker()->borrow_violations(), 1u);
}

// Logged calls carrying view arguments must compact them at append time:
// the sink's replay happens after the writer's borrow is long revoked.
TEST(ZeroCopy, LoggedViewArgsReplayAfterSinkReboot) {
  class SinkWriter final : public comp::Component {
   public:
    SinkWriter()
        : Component("sinkwriter", comp::Statefulness::kStateful, 64 * 1024) {}
    void Init(comp::InitCtx& ctx) override {
      state_ = MakeState<State>();
      for (std::size_t i = 0; i < sizeof(state_->block); ++i) {
        state_->block[i] = static_cast<char>('0' + i % 10);
      }
      ctx.Export("send", comp::FnOptions{},
                 [this](comp::CallCtx& c, const msg::Args&) {
                   return c.Call(
                       put_fn_, {MsgValue::Borrowed(
                                    AsBytes(state_->block,
                                            sizeof(state_->block)),
                                    arena())});
                 });
    }
    void Bind(comp::InitCtx& ctx) override {
      put_fn_ = ctx.Import("sink", "put");
    }

   private:
    struct State {
      char block[128];
    };
    State* state_ = nullptr;
    FunctionId put_fn_ = -1;
  };

  RuntimeOptions o = VampOpts();
  Runtime rt(o);
  const ComponentId sink = rt.AddComponent(std::make_unique<ChecksumSink>());
  const ComponentId writer = rt.AddComponent(std::make_unique<SinkWriter>());
  rt.AddAppDependency(writer);
  rt.AddDependency(writer, sink);
  rt.Boot();

  const FunctionId send = rt.Lookup("sinkwriter", "send");
  const FunctionId checksum = rt.Lookup("sink", "checksum");
  const FunctionId puts = rt.Lookup("sink", "puts");
  std::int64_t before = 0;
  RunApp(rt, [&] {
    rt.Call(send, {});
    before = rt.Call(checksum, {}).i64();
  });
  ASSERT_NE(before, 0);

  // Reboot the *sink*: its log holds the put whose argument was a view of
  // the writer's arena. Replay must reproduce the checksum from the
  // compacted copy.
  ASSERT_TRUE(rt.Reboot(sink).ok());
  std::int64_t after = 0, count = 0;
  RunApp(rt, [&] {
    after = rt.Call(checksum, {}).i64();
    count = rt.Call(puts, {}).i64();
  });
  EXPECT_EQ(after, before);
  EXPECT_EQ(count, 1);
}

// Seeded fuzz: a random put/get workload with a mid-stream reboot produces a
// byte-identical transcript with zero-copy payloads on and off.
TEST(ZeroCopy, ReplayByteEquivalenceFuzz) {
  for (const std::uint64_t seed : {11u, 23u, 47u, 101u, 999u}) {
    std::string transcript[2];
    for (const int zc : {0, 1}) {
      RuntimeOptions o = VampOpts();
      o.zero_copy_payloads = zc == 1;
      Runtime rt(o);
      const ComponentId lender =
          rt.AddComponent(std::make_unique<LenderComponent>());
      rt.AddAppDependency(lender);
      rt.Boot();
      const FunctionId get = rt.Lookup("lender", "get");
      const FunctionId put = rt.Lookup("lender", "put");
      Rng rng(seed);
      std::string& out = transcript[zc];
      auto step = [&](int ops) {
        RunApp(rt, [&] {
          for (int i = 0; i < ops; ++i) {
            if (rng.Below(3) == 0) {
              std::string data(1 + rng.Below(LenderComponent::kBlock), '\0');
              for (char& ch : data) {
                ch = static_cast<char>('a' + rng.Below(26));
              }
              out += "put:";
              out += std::to_string(rt.Call(put, {MsgValue(data)}).i64());
              out += '\n';
            } else {
              out += "get:";
              out += rt.Call(get, {}).bytes();
              out += '\n';
            }
          }
        });
      };
      step(40);
      ASSERT_TRUE(rt.Reboot(lender).ok());
      step(20);
    }
    EXPECT_EQ(transcript[0], transcript[1]) << "seed " << seed;
  }
}

// --------------------------------------------------------- inline calls

// The same-destination fast path completes a fanout workload with the same
// results as the message path, counts rt.direct_calls, and leaves a log the
// normal reboot machinery can replay.
TEST(InlineCalls, FanoutCompletesCountsAndReplays) {
  RuntimeOptions o = VampOpts();
  o.inline_calls = true;
  Runtime rt(o);
  const ComponentId store =
      rt.AddComponent(std::make_unique<StoreComponent>());
  rt.AddAppDependency(store);
  rt.Boot();

  const FunctionId add = rt.Lookup("store", "add");
  const FunctionId total = rt.Lookup("store", "total");
  constexpr int kPumps = 8;
  constexpr int kPerPump = 16;
  for (int p = 0; p < kPumps; ++p) {
    rt.SpawnApp("pump" + std::to_string(p), [&] {
      for (int i = 0; i < kPerPump; ++i) {
        rt.Call(add, {MsgValue(std::int64_t{1})});
      }
    });
  }
  rt.RunUntilIdle();
  std::int64_t sum = 0;
  RunApp(rt, [&] { sum = rt.Call(total, {}).i64(); });
  EXPECT_EQ(sum, kPumps * kPerPump);
  EXPECT_GE(rt.Stats().direct_calls, static_cast<std::uint64_t>(kPumps) *
                                         kPerPump);

  // Inline executions logged like queued ones: replay rebuilds the state.
  ASSERT_TRUE(rt.Reboot(store).ok());
  RunApp(rt, [&] { sum = rt.Call(total, {}).i64(); });
  EXPECT_EQ(sum, kPumps * kPerPump);
}

// A fault thrown by an inlined handler enters the standard recovery path:
// the component reboots and the interrupted call is retried through the
// message plane, returning the retried result to the original caller.
TEST(InlineCalls, FaultDuringInlineCallRecovers) {
  RuntimeOptions o = VampOpts();
  o.inline_calls = true;
  Runtime rt(o);
  auto flaky_ptr = std::make_unique<FlakyComponent>();
  FlakyComponent* flaky = flaky_ptr.get();
  const ComponentId id = rt.AddComponent(std::move(flaky_ptr));
  rt.AddAppDependency(id);
  rt.Boot();

  const FunctionId poke = rt.Lookup("flaky", "poke");
  std::int64_t first = 0, second = 0;
  RunApp(rt, [&] { first = rt.Call(poke, {}).i64(); });
  EXPECT_EQ(first, 1);

  flaky->Arm();
  RunApp(rt, [&] { second = rt.Call(poke, {}).i64(); });
  // The retried execution lands after replay rebuilt the counter to 1.
  EXPECT_EQ(second, 2);
  EXPECT_EQ(rt.Stats().reboots, 1u);
}

}  // namespace
}  // namespace vampos
