// Fault-injection matrix: every fault kind x every rebootable component x
// both scheduling policies, on the full Nginx-style stack under live file
// and network traffic. The invariant: exactly-once recovery, no fail-stop,
// and the workload's results stay correct.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::SimClient;
using apps::StackInfo;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using core::SchedPolicy;

using Param = std::tuple<const char* /*component*/, FaultKind, SchedPolicy>;

class FaultMatrixTest : public ::testing::TestWithParam<Param> {};

TEST_P(FaultMatrixTest, RecoversAndStaysConsistent) {
  const auto [comp_name, kind, policy] = GetParam();
  RuntimeOptions opts;
  opts.policy = policy;
  opts.hang_threshold =
      kind == FaultKind::kHang ? 10 * kMillisecond : 0;

  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(opts);
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Nginx());
  apps::BootAndMount(rt);
  Posix px(rt);

  // Warm state that must survive: an open file with an offset, and an
  // established connection.
  std::int64_t fd = -1;
  rt.SpawnApp("warm", [&] {
    fd = px.Create("/state");
    px.Write(fd, "warm-");
  });
  rt.RunUntilIdle();

  bool stop = false;
  rt.SpawnApp("server", [&] {
    const auto lfd = px.Socket();
    px.Bind(lfd, 80);
    px.Listen(lfd);
    std::int64_t conn = -1;
    while (!stop) {
      if (conn < 0) conn = px.Accept(lfd);
      if (conn >= 0) {
        auto r = px.Recv(conn, 1024);
        if (r.ok() && !r.data.empty()) px.Send(conn, r.data);
      }
      rt.ParkApp();
    }
  });
  rt.RunUntilIdle();
  SimClient client(&platform.net, 80);
  const int h = client.Connect();
  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  };
  pump(8);
  ASSERT_TRUE(client.Established(h));

  const ComponentId target = rt.FindComponent(comp_name);
  ASSERT_NE(target, kComponentNone) << comp_name;
  rt.InjectFault(target, kind);

  // Drive traffic that crosses the faulted component until recovery: a
  // getpid (PROCESS), a file append (VFS->9PFS path), and an echo round
  // (LWIP->NETDEV path).
  rt.SpawnApp("file-traffic", [&] {
    px.Getpid();
    px.Write(fd, "x");
  });
  rt.RunUntilIdle();
  client.Send(h, "ping");
  pump(10);

  // The fault triggered and was recovered exactly once, without fail-stop.
  EXPECT_EQ(rt.Stats().reboots, 1u)
      << comp_name << "/" << ToString(kind);
  EXPECT_FALSE(rt.terminal_fault().has_value());
  if (kind == FaultKind::kHang) {
    EXPECT_GE(rt.Stats().hangs_detected, 1u);
  }

  // Application-visible state is intact.
  EXPECT_EQ(client.TakeReceived(h), "ping");
  EXPECT_FALSE(client.Broken(h));
  std::string file_after;
  rt.SpawnApp("verify", [&] {
    px.Write(fd, "-done");
    px.Close(fd);
  });
  rt.RunUntilIdle();
  auto host = platform.ninep.ReadFile("/state");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, "warm-x-done");

  stop = true;
  rt.UnparkApps();
  rt.RunUntilIdle();
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const char* comp = std::get<0>(info.param);
  const FaultKind kind = std::get<1>(info.param);
  const SchedPolicy policy = std::get<2>(info.param);
  std::string name = comp;
  name += "_";
  name += ToString(kind);
  name += policy == SchedPolicy::kRoundRobin ? "_rr" : "_das";
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultMatrixTest,
    ::testing::Combine(
        ::testing::Values("vfs", "9pfs", "lwip", "netdev", "process"),
        ::testing::Values(FaultKind::kPanic, FaultKind::kInjected,
                          FaultKind::kMpkViolation),
        ::testing::Values(SchedPolicy::kDependencyAware,
                          SchedPolicy::kRoundRobin)),
    ParamName);

// Hangs get their own (smaller) grid: each costs a real 10 ms threshold.
INSTANTIATE_TEST_SUITE_P(
    Hangs, FaultMatrixTest,
    ::testing::Combine(::testing::Values("vfs", "lwip"),
                       ::testing::Values(FaultKind::kHang),
                       ::testing::Values(SchedPolicy::kDependencyAware)),
    ParamName);

}  // namespace
}  // namespace vampos
