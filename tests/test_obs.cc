// Observability subsystem tests: log2-histogram bucket and percentile math,
// the flight-recorder ring (wraparound, disabled no-op), the metrics
// registry, Chrome trace export from a fault-injection run, the DumpState
// post-mortem, and the zero-overhead-when-off guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using obs::EventKind;
using obs::FlightRecorder;
using obs::Histogram;
using obs::TracePhase;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;
using testing::TickerComponent;

struct Rig {
  explicit Rig(RuntimeOptions opts = {}) : rt(opts) {
    store = rt.AddComponent(std::make_unique<StoreComponent>());
    counter = rt.AddComponent(std::make_unique<CounterComponent>());
    ticker = rt.AddComponent(std::make_unique<TickerComponent>());
    rt.AddAppDependency(counter);
    rt.AddAppDependency(ticker);
    rt.AddDependency(counter, store);
  }
  void Boot() { rt.Boot(); }

  Runtime rt;
  ComponentId store, counter, ticker;
};

RuntimeOptions VampOpts() {
  RuntimeOptions o;
  o.mode = Mode::kVampOS;
  o.hang_threshold = 0;
  return o;
}

/// Runs `fn` against a tmpfile and returns everything it wrote.
std::string Capture(const std::function<void(std::FILE*)>& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fflush(f);
  const long n = std::ftell(f);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// ------------------------------------------------------ histogram buckets

TEST(HistogramBuckets, BoundariesFollowBitWidth) {
  // Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  for (int b = 1; b < 64; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    EXPECT_EQ(Histogram::BucketOf(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(Histogram::BucketOf(2 * lo - 1), b) << "hi of bucket " << b;
    EXPECT_EQ(Histogram::BucketLo(b), lo);
    EXPECT_EQ(Histogram::BucketHi(b), 2 * lo - 1);
  }
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::BucketHi(64), ~std::uint64_t{0});
  EXPECT_EQ(Histogram::BucketLo(0), 0u);
  EXPECT_EQ(Histogram::BucketHi(0), 0u);
}

TEST(HistogramBuckets, RecordPlacesSamples) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  for (int k = 1; k < 63; ++k) h.Record(std::int64_t{1} << k);
  h.Record(std::numeric_limits<std::int64_t>::max());  // bit_width 63
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  for (int k = 1; k < 63; ++k) {
    EXPECT_GE(h.bucket_count(k + 1), 1u) << "power 2^" << k;
  }
  EXPECT_EQ(h.bucket_count(63), 2u);  // 2^62 and int64 max
  EXPECT_EQ(h.count(), 65u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(),
            static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max()));
}

TEST(HistogramBuckets, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-1234);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// -------------------------------------------------- percentile edge cases

TEST(HistogramPercentile, EmptyHistogramReportsZero) {
  const Histogram h;
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramPercentile, SingleSampleReportsItselfExactly) {
  Histogram h;
  h.Record(1234);
  // Interpolation inside the [1024, 2047] bucket is clamped to the observed
  // range, so every quantile of a one-sample histogram is the sample.
  for (double q : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(q), 1234.0) << "q=" << q;
  }
  EXPECT_EQ(h.Mean(), 1234.0);
}

TEST(HistogramPercentile, QuantilesAreMonotonicAndBounded) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // p50 of uniform 1..1000 lands in the [256, 1023] region under log2
  // bucketing (the 512-bucket holds the median).
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_EQ(h.Percentile(0), 1.0);
  EXPECT_EQ(h.Percentile(100), 1000.0);
}

TEST(HistogramPercentile, MergeFoldsCountsAndRange) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.sum(), 1015u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(50), 0.0);
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, DisabledRecorderIsANoOp) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 0u);  // ring never allocated
  rec.Record(EventKind::kMsgPush, TracePhase::kInstant, 1, 2, 3);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(FlightRecorder, WraparoundKeepsNewestEvents) {
  FlightRecorder rec;
  rec.Enable(8);
  for (std::int64_t i = 0; i < 20; ++i) {
    rec.Record(EventKind::kMsgPush, TracePhase::kInstant, 1, i);
  }
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: the survivors are exactly the newest 8, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(12 + i));
  }
}

TEST(FlightRecorder, DisableKeepsRingReadable) {
  FlightRecorder rec;
  rec.Enable(16);
  rec.Record(EventKind::kFailStop, TracePhase::kInstant, 3);
  rec.Disable();
  rec.Record(EventKind::kMsgPush, TracePhase::kInstant, 1);  // dropped
  EXPECT_EQ(rec.total_recorded(), 1u);
  ASSERT_EQ(rec.Snapshot().size(), 1u);
  EXPECT_EQ(rec.Snapshot()[0].kind, EventKind::kFailStop);
}

TEST(FlightRecorder, ChromeTraceBalancesOrphanedEnds) {
  FlightRecorder rec;
  rec.Enable(2);
  // The Begin is overwritten; only Ends survive. The exporter must demote
  // them to instants or the Chrome track nests forever.
  rec.Record(EventKind::kReboot, TracePhase::kBegin, 1);
  rec.Record(EventKind::kReboot, TracePhase::kEnd, 1);
  rec.Record(EventKind::kReboot, TracePhase::kEnd, 1);
  const std::string json =
      Capture([&](std::FILE* f) { rec.WriteChromeTrace(f); });
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

// -------------------------------------------------------- metrics registry

TEST(MetricsRegistry, CountersAndHistogramsByName) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("x.count");
  c.Add();
  c.Add(4);
  EXPECT_EQ(reg.GetCounter("x.count").value(), 5u);  // same object
  EXPECT_EQ(&reg.GetCounter("x.count"), &c);         // stable address
  reg.GetHistogram("x.ns").Record(100);
  ASSERT_NE(reg.FindCounter("x.count"), nullptr);
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  ASSERT_NE(reg.FindHistogram("x.ns"), nullptr);
  EXPECT_EQ(reg.FindHistogram("x.ns")->count(), 1u);

  const std::string text = Capture([&](std::FILE* f) { reg.WriteText(f); });
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("x.ns"), std::string::npos);
  const std::string json = reg.Json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ----------------------------------------------------- runtime integration

TEST(ObsRuntime, TracingOffChangesNothingObservable) {
  auto workload = [](Rig& rig) {
    rig.Boot();
    const FunctionId inc = rig.rt.Lookup("counter", "inc");
    const FunctionId open = rig.rt.Lookup("counter", "open_session");
    const FunctionId add = rig.rt.Lookup("counter", "add_session");
    const FunctionId close = rig.rt.Lookup("counter", "close_session");
    RunApp(rig.rt, [&] {
      for (int i = 0; i < 32; ++i) rig.rt.Call(inc, {});
      const std::int64_t s = rig.rt.Call(open, {}).i64();
      for (int i = 0; i < 8; ++i) {
        rig.rt.Call(add, {msg::MsgValue(s), msg::MsgValue(std::int64_t{1})});
      }
      rig.rt.Call(close, {msg::MsgValue(s)});
    });
  };

  Rig off(VampOpts());
  workload(off);
  RuntimeOptions traced_opts = VampOpts();
  traced_opts.tracing = true;
  Rig on(traced_opts);
  workload(on);

  // Tracing must be purely observational: every behavior counter matches
  // the untraced run, and the untraced recorder never allocated its ring.
  const core::RuntimeStats a = off.rt.Stats();
  const core::RuntimeStats b = on.rt.Stats();
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.log_appends, b.log_appends);
  EXPECT_EQ(a.log_pruned_entries, b.log_pruned_entries);
  EXPECT_EQ(a.reboots, b.reboots);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(off.rt.recorder().capacity(), 0u);
  EXPECT_EQ(off.rt.recorder().total_recorded(), 0u);
  EXPECT_GT(on.rt.recorder().total_recorded(), 0u);
}

TEST(ObsRuntime, RegistrySubsumesRuntimeStats) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 10; ++i) rig.rt.Call(inc, {});
  });
  const core::RuntimeStats s = rig.rt.Stats();
  const obs::Counter* calls = rig.rt.metrics().FindCounter("rt.calls");
  const obs::Counter* msgs = rig.rt.metrics().FindCounter("rt.messages");
  ASSERT_NE(calls, nullptr);
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(calls->value(), s.calls);
  EXPECT_EQ(msgs->value(), s.messages);
  // The end-to-end latency histogram saw every message call (the 10 app
  // calls plus each inc's nested call into the store).
  const obs::Histogram* lat = rig.rt.metrics().FindHistogram("rt.call_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), s.calls);
  EXPECT_EQ(lat->count(), 20u);
  EXPECT_LE(lat->Percentile(50), lat->Percentile(99));
  // Queue-depth histogram saw every push.
  const obs::Histogram* qd =
      rig.rt.metrics().FindHistogram("msg.queue_depth");
  ASSERT_NE(qd, nullptr);
  EXPECT_GT(qd->count(), 0u);
}

TEST(ObsRuntime, TopFunctionsCarryPercentiles) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 20; ++i) rig.rt.Call(inc, {});
  });
  const auto fns = rig.rt.TopFunctions();
  ASSERT_FALSE(fns.empty());
  bool saw_inc = false;
  for (const auto& f : fns) {
    EXPECT_GT(f.calls, 0u);
    EXPECT_LE(f.p50_ns, f.p95_ns);
    EXPECT_LE(f.p95_ns, f.p99_ns);
    if (f.name == "counter.inc") {
      saw_inc = true;
      EXPECT_EQ(f.calls, 20u);
    }
  }
  EXPECT_TRUE(saw_inc);
}

TEST(ObsRuntime, FaultInjectionRunProducesRebootPhaseTrace) {
  RuntimeOptions o = VampOpts();
  o.tracing = true;
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic);
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  ASSERT_EQ(rig.rt.Stats().reboots, 1u);

  const std::string path = ::testing::TempDir() + "vampos_obs_trace.json";
  ASSERT_TRUE(rig.rt.recorder().WriteChromeTrace(path));
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  // Chrome-loadable shape with all three recovery phases on the timeline.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.injected\""), std::string::npos);
  EXPECT_NE(json.find("\"reboot.stop\""), std::string::npos);
  EXPECT_NE(json.find("\"reboot.snapshot\""), std::string::npos);
  EXPECT_NE(json.find("\"reboot.replay\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
}

TEST(ObsRuntime, FailStopWritesPostmortemTrace) {
  const std::string path = ::testing::TempDir() + "vampos_postmortem.json";
  std::remove(path.c_str());
  setenv("VAMPOS_TRACE_DUMP", path.c_str(), 1);
  {
    RuntimeOptions o = VampOpts();
    o.tracing = true;
    Rig rig(o);
    rig.Boot();
    const FunctionId inc = rig.rt.Lookup("counter", "inc");
    rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
    RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
    ASSERT_TRUE(rig.rt.terminal_fault().has_value());
  }
  unsetenv("VAMPOS_TRACE_DUMP");
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fail.stop\""), std::string::npos);
}

TEST(ObsRuntime, DumpStateSmokeCoversComponentsAndPendingRpc) {
  RuntimeOptions o = VampOpts();
  o.tracing = true;
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  rig.rt.SpawnApp("dump-probe", [&] { rig.rt.Call(inc, {}); });
  // Stop mid-call: the app fiber has pushed its message and blocked on the
  // reply, so a pending rpc and a queued message are both live.
  ASSERT_TRUE(rig.rt.RunUntil(
      [&] { return rig.rt.domain().QueueDepth(rig.counter) > 0; }));
  const std::string dump =
      Capture([&](std::FILE* f) { rig.rt.DumpState(f); });
  EXPECT_NE(dump.find("vampos runtime state"), std::string::npos);
  EXPECT_NE(dump.find("counter"), std::string::npos);
  EXPECT_NE(dump.find("store"), std::string::npos);
  EXPECT_NE(dump.find("ticker"), std::string::npos);
  EXPECT_NE(dump.find("pending rpcs=1"), std::string::npos);
  EXPECT_NE(dump.find("rpc "), std::string::npos);
  EXPECT_NE(dump.find("dump-probe"), std::string::npos);
  // The recorder tail rides along in the dump.
  EXPECT_NE(dump.find("flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("msg.push"), std::string::npos);
  rig.rt.RunUntilIdle();  // let the in-flight call finish cleanly
}

// ----------------------------------------------------------- causal tracing

TEST(Tracing, NestedCallSharesTraceWithParentSpan) {
  RuntimeOptions o = VampOpts();
  o.tracing = true;
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });

  // counter.inc nests a call into store.add: the push into counter is the
  // root span, the push into store a child of it, both on one trace.
  std::uint64_t root_trace = 0, root_span = 0;
  std::uint64_t child_trace = 0, child_parent = 0;
  for (const obs::TraceEvent& e : rig.rt.recorder().Snapshot()) {
    if (e.kind != EventKind::kMsgPush || e.trace == 0) continue;
    if (e.comp == rig.counter) {
      root_trace = e.trace;
      root_span = e.span;
      EXPECT_EQ(e.parent, 0u);  // minted at the app-facing entry point
    } else if (e.comp == rig.store) {
      child_trace = e.trace;
      child_parent = e.parent;
    }
  }
  ASSERT_NE(root_trace, 0u);
  ASSERT_NE(child_trace, 0u);
  EXPECT_EQ(child_trace, root_trace);
  EXPECT_EQ(child_parent, root_span);
}

TEST(Tracing, LatencyDecompositionHistogramsFollowTracing) {
  auto workload = [](Rig& rig) {
    rig.Boot();
    const FunctionId inc = rig.rt.Lookup("counter", "inc");
    RunApp(rig.rt, [&] {
      for (int i = 0; i < 8; ++i) rig.rt.Call(inc, {});
    });
  };
  Rig off(VampOpts());
  workload(off);
  RuntimeOptions o = VampOpts();
  o.tracing = true;
  Rig on(o);
  workload(on);

  for (const char* name : {"trace.queue_ns", "trace.exec_ns",
                           "trace.reply_ns"}) {
    const Histogram* h_off = off.rt.metrics().FindHistogram(name);
    const Histogram* h_on = on.rt.metrics().FindHistogram(name);
    ASSERT_NE(h_off, nullptr) << name;
    ASSERT_NE(h_on, nullptr) << name;
    EXPECT_EQ(h_off->count(), 0u) << name;  // untraced run records nothing
    EXPECT_GT(h_on->count(), 0u) << name;
  }
  // No reboot happened, so no stall was charged in either run.
  EXPECT_EQ(on.rt.metrics().FindHistogram("trace.stall_reboot_ns")->count(),
            0u);
}

TEST(Tracing, ChromeTraceCarriesSpanArgsAndFlowEvents) {
  RuntimeOptions o = VampOpts();
  o.tracing = true;
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  const std::string json = Capture(
      [&](std::FILE* f) { rig.rt.recorder().WriteChromeTrace(f); });
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"span\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
  // Flow events tie a span's push to its pull across component tracks.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Tracing, EnvKnobsOverrideOptions) {
  // VAMPOS_TRACE=1 forces tracing on even when options say off, and
  // VAMPOS_TRACE_EVENTS overrides the ring capacity.
  setenv("VAMPOS_TRACE", "1", 1);
  setenv("VAMPOS_TRACE_EVENTS", "32", 1);
  {
    Rig rig(VampOpts());
    EXPECT_TRUE(rig.rt.recorder().enabled());
    EXPECT_EQ(rig.rt.recorder().capacity(), 32u);
  }
  // VAMPOS_TRACE=0 forces tracing off even when options say on.
  setenv("VAMPOS_TRACE", "0", 1);
  {
    RuntimeOptions o = VampOpts();
    o.tracing = true;
    Rig rig(o);
    EXPECT_FALSE(rig.rt.recorder().enabled());
    EXPECT_EQ(rig.rt.recorder().capacity(), 0u);
  }
  unsetenv("VAMPOS_TRACE");
  unsetenv("VAMPOS_TRACE_EVENTS");
}

TEST(Tracing, DroppedEventsCounterTracksOverwrites) {
  RuntimeOptions o = VampOpts();
  o.tracing = true;
  o.trace_capacity = 16;  // deliberately undersized
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 64; ++i) rig.rt.Call(inc, {});
  });
  const obs::Counter* dropped =
      rig.rt.metrics().FindCounter("obs.dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->value(), 0u);
  EXPECT_EQ(dropped->value(), rig.rt.recorder().dropped());
  // The overwrite count also rides along in the DumpState tail.
  const std::string dump =
      Capture([&](std::FILE* f) { rig.rt.DumpState(f); });
  EXPECT_NE(dump.find("overwritten"), std::string::npos);
}

TEST(ObsRuntime, PostRebootDumpHonorsTraceDumpPath) {
  const std::string path = ::testing::TempDir() + "vampos_postreboot.json";
  std::remove(path.c_str());
  setenv("VAMPOS_TRACE_DUMP", path.c_str(), 1);
  setenv("VAMPOS_TRACE_DUMP_ON_REBOOT", "1", 1);
  {
    RuntimeOptions o = VampOpts();
    o.tracing = true;
    Rig rig(o);
    rig.Boot();
    const FunctionId inc = rig.rt.Lookup("counter", "inc");
    RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
    ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  }
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"reboot.replay\""), std::string::npos);

  // VAMPOS_TRACE_DUMP="" suppresses the post-reboot dump like every other
  // auto-dump path.
  setenv("VAMPOS_TRACE_DUMP", "", 1);
  {
    RuntimeOptions o = VampOpts();
    o.tracing = true;
    Rig rig(o);
    rig.Boot();
    const FunctionId inc = rig.rt.Lookup("counter", "inc");
    RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
    ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  }
  unsetenv("VAMPOS_TRACE_DUMP");
  unsetenv("VAMPOS_TRACE_DUMP_ON_REBOOT");
  EXPECT_TRUE(ReadFile(path).empty());
}

}  // namespace
}  // namespace vampos
