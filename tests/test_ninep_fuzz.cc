// 9P server robustness: random (well-formed but adversarial) request
// streams — unknown ops, out-of-range offsets, weird paths, interleaved
// tree mutation — must never crash the server or corrupt unrelated files.
#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "msg/value.h"
#include "uk/platform.h"

namespace vampos {
namespace {

std::string Encode(const msg::Args& args) {
  auto bytes = msg::SerializeArgs(args);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

msg::Args Decode(const std::string& wire) {
  return msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(wire.data()), wire.size()));
}

class NinePFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NinePFuzz, RandomRequestStreamNeverCrashes) {
  Rng rng(GetParam());
  uk::NinePServer server;
  server.PutFile("/sentinel", "must-survive");

  const std::vector<std::string> paths = {
      "/", "/a", "/a/b", "/sentinel", "", "/..", "////", "/very/deep/x",
      std::string(200, 'p'), "/nul\0byte"};

  for (int iter = 0; iter < 3000; ++iter) {
    msg::Args req;
    // Op: valid range is 1..13; also probe invalid codes.
    const std::int64_t op = rng.Chance(1, 10)
                                ? static_cast<std::int64_t>(rng.Below(256))
                                : static_cast<std::int64_t>(rng.Range(1, 13));
    req.push_back(msg::MsgValue(op));
    req.push_back(msg::MsgValue(paths[rng.Below(paths.size())]));
    // Ops 4/5/11/13 read extra args; always supply plausible ones so the
    // server's accessors have something to chew on.
    req.push_back(msg::MsgValue(rng.Range(-4, 1 << 20)));  // offset / len
    if (rng.Chance(1, 2)) {
      std::string data(rng.Below(128), 'd');
      req.push_back(msg::MsgValue(std::move(data)));
    } else {
      req.push_back(msg::MsgValue(rng.Range(0, 1 << 16)));
    }

    const std::string reply = server.Handle(Encode(req));
    // Every reply must decode and lead with a status integer.
    msg::Args decoded = Decode(reply);
    ASSERT_GE(decoded.size(), 1u);
    ASSERT_TRUE(decoded[0].is_i64());
  }
  // The sentinel survived whatever the fuzz did elsewhere... unless a
  // write/remove legitimately targeted it; verify only structural sanity.
  EXPECT_GE(server.file_count(), 1u);
  EXPECT_GT(server.requests_served(), 2900u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NinePFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

TEST(NinePFuzzDirected, NegativeOffsetsClampOrFail) {
  uk::NinePServer server;
  server.PutFile("/f", "abc");
  // Read at a negative offset (encoded as a huge size_t) must not crash.
  const std::string reply = server.Handle(
      Encode({msg::MsgValue(std::int64_t{4}), msg::MsgValue("/f"),
              msg::MsgValue(std::int64_t{-1}), msg::MsgValue(std::int64_t{4})}));
  msg::Args decoded = Decode(reply);
  ASSERT_GE(decoded.size(), 1u);
  // Either an error or empty data; never a crash or out-of-bounds read.
}

TEST(NinePFuzzDirected, HugeWriteOffsetRejectedOrSparse) {
  uk::NinePServer server;
  server.PutFile("/g", "");
  // A multi-GB offset would allocate absurd memory if honored naively; the
  // server caps what it will resize to sane test sizes via the request
  // path (our clients never send offsets beyond file bounds + payload).
  const std::string reply = server.Handle(Encode(
      {msg::MsgValue(std::int64_t{5}), msg::MsgValue("/g"),
       msg::MsgValue(std::int64_t{1 << 20}), msg::MsgValue("tail")}));
  msg::Args decoded = Decode(reply);
  ASSERT_TRUE(decoded[0].is_i64());
  if (decoded[0].i64() == 0) {
    EXPECT_EQ(server.ReadFile("/g")->size(), (1u << 20) + 4u);
  }
}

}  // namespace
}  // namespace vampos
