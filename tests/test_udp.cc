// UDP (datagram) support tests: connectionless send/receive with boundary
// preservation, drop semantics on full queues, coexistence with TCP, and
// behaviour across LWIP reboots (socket object restored by replay; queued
// datagrams lost — UDP's contract).
#include <gtest/gtest.h>

#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"
#include "uk/virtio/virtio.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using testing::RunApp;

struct UdpRig {
  UdpRig() : rt(Opts()) {
    info = BuildStack(rt, platform, rings, StackSpec::Echo());
    apps::BootAndMount(rt);
    px = std::make_unique<Posix>(rt);
  }
  static RuntimeOptions Opts() {
    RuntimeOptions o;
    o.hang_threshold = 0;
    return o;
  }
  // Host-side datagram helpers (the client end).
  void HostSendDgram(std::uint16_t from, std::uint16_t to,
                     const std::string& data) {
    platform.net.HostSend(uk::Frame{.flags = uk::Frame::kDgram,
                                    .src_port = from,
                                    .dst_port = to,
                                    .seq = 0,
                                    .ack = 0,
                                    .payload = data});
  }
  std::optional<uk::Frame> HostRecvDgram() {
    while (auto f = platform.net.HostRecv()) {
      if ((f->flags & uk::Frame::kDgram) != 0) return f;
    }
    return std::nullopt;
  }

  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

TEST(Udp, BindRecvFromPreservesBoundaries) {
  UdpRig rig;
  rig.HostSendDgram(9999, 53, "first");
  rig.HostSendDgram(9998, 53, "second datagram");
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->SocketDgram();
    ASSERT_GE(fd, 0);
    ASSERT_EQ(rig.px->Bind(fd, 53), 0);
    auto a = rig.px->RecvFrom(fd);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.data, "first");
    EXPECT_EQ(rig.px->LastPeer(fd), 9999);
    auto b = rig.px->RecvFrom(fd);
    EXPECT_EQ(b.data, "second datagram");
    EXPECT_EQ(rig.px->LastPeer(fd), 9998);
    EXPECT_TRUE(rig.px->RecvFrom(fd).again());
    rig.px->Close(fd);
  });
}

TEST(Udp, SendToReachesHost) {
  UdpRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->SocketDgram();
    EXPECT_EQ(rig.px->SendTo(fd, 7777, "outbound"), 8);
    rig.px->Close(fd);
  });
  auto f = rig.HostRecvDgram();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->dst_port, 7777);
  EXPECT_EQ(f->payload, "outbound");
}

TEST(Udp, QueueOverflowDropsNewest) {
  UdpRig rig;
  for (int i = 0; i < 12; ++i) {  // queue holds 8
    rig.HostSendDgram(9000, 53, "d" + std::to_string(i));
  }
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->SocketDgram();
    rig.px->Bind(fd, 53);
    int received = 0;
    while (rig.px->RecvFrom(fd).ok()) received++;
    // At most one queue's worth survives per drain; the overflow is gone.
    EXPECT_LE(received, 8 + 4);
    EXPECT_GE(received, 8);
    rig.px->Close(fd);
  });
}

TEST(Udp, OversizeDatagramRejected) {
  UdpRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->SocketDgram();
    EXPECT_LT(rig.px->SendTo(fd, 1, std::string(1000, 'x')), 0);
    rig.px->Close(fd);
  });
}

TEST(Udp, StreamOpsRejectDgramSockets) {
  UdpRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->SocketDgram();
    EXPECT_LT(rig.px->Send(fd, "nope"), 0);     // stream send on dgram sock
    EXPECT_LT(rig.px->Listen(fd), 0);
    const auto tfd = rig.px->Socket();
    EXPECT_LT(rig.px->SendTo(tfd, 1, "x"), 0);  // sendto on stream sock
    rig.px->Close(fd);
    rig.px->Close(tfd);
  });
}

TEST(Udp, SocketSurvivesLwipRebootQueueDoesNot) {
  UdpRig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->SocketDgram();
    rig.px->Bind(fd, 53);
  });
  rig.HostSendDgram(9000, 53, "queued-host-side");
  ASSERT_TRUE(rig.rt.Reboot(rig.info.lwip).ok());
  RunApp(rig.rt, [&] {
    // The socket object was rebuilt by log replay; the datagram was still
    // in the host queue, so it is delivered after the reboot.
    auto r = rig.px->RecvFrom(fd);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, "queued-host-side");
    // Round trip still works post-reboot.
    EXPECT_EQ(rig.px->SendTo(fd, 9000, "pong"), 4);
    rig.px->Close(fd);
  });
  auto f = rig.HostRecvDgram();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "pong");
}

}  // namespace
}  // namespace vampos
