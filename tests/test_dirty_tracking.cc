// Write-tracked checkpoint engine tests: the DirtyTracker bitmap itself,
// the O(dirty) fast paths of Recapture/Restore and their equivalence with
// the hash-scan and full-copy engines under randomized mutation, the
// memcmp-confirmed clean verdicts (a forced hash collision must not smuggle
// a changed page past recapture or restore), the randomized audit mode
// catching a deliberately untracked write, the desync fallback when two
// snapshots share one tracker, and the runtime-level wiring (counters,
// state survival with dirty_tracking on).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "mem/arena.h"
#include "mem/dirty_tracker.h"
#include "mem/snapshot.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using mem::Arena;
using mem::DirtyTracker;
using mem::PageBaseline;
using mem::Snapshot;
using mem::SnapshotConfig;
using mem::SnapshotMode;
using mem::SnapshotStats;
using testing::CounterComponent;
using testing::RunApp;

constexpr std::size_t kPage = Arena::kPageSize;

SnapshotConfig TrackCfg(std::uint32_t audit_rate = 0,
                        bool audit_fail_stop = false) {
  SnapshotConfig cfg;
  cfg.mode = SnapshotMode::kIncremental;
  cfg.dirty_tracking = true;
  cfg.audit_rate = audit_rate;
  cfg.audit_fail_stop = audit_fail_stop;
  return cfg;
}

void FillRandom(Arena& arena, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> byte(0, 255);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    arena.base()[i] = static_cast<std::byte>(byte(rng));
  }
}

/// RAII guard for the page-hash test seam.
struct HashOverride {
  explicit HashOverride(Snapshot::PageHashFn fn)
      : prev(Snapshot::SetPageHashForTest(fn)) {}
  ~HashOverride() { Snapshot::SetPageHashForTest(prev); }
  Snapshot::PageHashFn prev;
};

/// Constant hash: every page collides with every other. is_zero must stay
/// truthful or the zero-elision path would corrupt the image by itself.
std::uint64_t CollidingHash(const std::byte* page, bool* is_zero) {
  bool zero = true;
  for (std::size_t i = 0; i < kPage && zero; ++i) {
    zero = page[i] == std::byte{0};
  }
  if (is_zero != nullptr) *is_zero = zero;
  return 0x1234567890ABCDEFull;
}

// ------------------------------------------------------- tracker bitmap

TEST(DirtyTracker, MarkTestAndClear) {
  DirtyTracker t(16 * kPage);
  EXPECT_EQ(t.pages(), 16u);
  EXPECT_EQ(t.DirtyPages(), 0u);
  EXPECT_FALSE(t.Test(0));

  t.Mark(0, 1);  // first byte -> first page
  t.Mark(5 * kPage + 100, 1);
  EXPECT_TRUE(t.Test(0));
  EXPECT_FALSE(t.Test(1));
  EXPECT_TRUE(t.Test(5));
  EXPECT_EQ(t.DirtyPages(), 2u);

  const std::uint64_t gen = t.generation();
  t.Clear();
  EXPECT_EQ(t.DirtyPages(), 0u);
  EXPECT_FALSE(t.Test(0));
  EXPECT_GT(t.generation(), gen);
}

TEST(DirtyTracker, RangeMarkCoversOverlappingPages) {
  DirtyTracker t(8 * kPage);
  // A one-byte-into-page-1 to one-byte-into-page-3 range touches 1,2,3.
  t.Mark(kPage + 1, 2 * kPage);
  EXPECT_FALSE(t.Test(0));
  EXPECT_TRUE(t.Test(1));
  EXPECT_TRUE(t.Test(2));
  EXPECT_TRUE(t.Test(3));
  EXPECT_FALSE(t.Test(4));
}

TEST(DirtyTracker, WordFillMatchesBitLoop) {
  // 256 pages: large aligned runs take the word-fill path; check it against
  // per-page marking of the same span.
  DirtyTracker fast(256 * kPage);
  DirtyTracker slow(256 * kPage);
  fast.Mark(0, 256 * kPage);
  for (std::size_t p = 0; p < 256; ++p) slow.Mark(p * kPage, 1);
  for (std::size_t p = 0; p < 256; ++p) {
    ASSERT_EQ(fast.Test(p), slow.Test(p)) << "page " << p;
  }
  EXPECT_EQ(fast.DirtyPages(), 256u);
}

TEST(DirtyTracker, SaturationIsStickyUntilClear) {
  DirtyTracker t(4 * kPage);
  t.MarkAll();
  EXPECT_TRUE(t.saturated());
  EXPECT_TRUE(t.Test(3));
  EXPECT_EQ(t.DirtyPages(), 4u);
  EXPECT_EQ(t.taints(), 1u);
  t.Clear();
  EXPECT_FALSE(t.saturated());
  EXPECT_EQ(t.DirtyPages(), 0u);
}

TEST(DirtyTracker, RollAuditRateSemantics) {
  DirtyTracker t(kPage);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(t.RollAudit(0));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(t.RollAudit(1));
  int fired = 0;
  for (int i = 0; i < 4000; ++i) fired += t.RollAudit(4) ? 1 : 0;
  EXPECT_GT(fired, 0);      // fires sometimes...
  EXPECT_LT(fired, 4000);   // ...but not always
}

// ------------------------------------------------- O(dirty) fast paths

TEST(DirtyTrackingSnapshot, RecaptureSkipsUnmarkedPages) {
  Arena arena(64 * kPage);
  std::mt19937_64 rng(9);
  FillRandom(arena, rng);
  arena.EnableDirtyTracking();

  // First capture full-scans (tracker starts saturated) and syncs.
  SnapshotStats cs;
  Snapshot snap = Snapshot::Capture(arena, TrackCfg(), &cs);
  EXPECT_FALSE(cs.dirty_fast);

  // One tracked write -> the recapture touches one page, skips the rest.
  arena.base()[10 * kPage + 5] = std::byte{0x77};
  arena.MarkDirty(arena.base() + 10 * kPage + 5, 1);
  SnapshotStats rs;
  ASSERT_TRUE(snap.Recapture(arena, TrackCfg(), &rs).ok());
  EXPECT_TRUE(rs.dirty_fast);
  EXPECT_EQ(rs.pages_dirty, 1u);
  EXPECT_EQ(rs.pages_skipped, 63u);

  // An idle recapture skips everything.
  SnapshotStats is;
  ASSERT_TRUE(snap.Recapture(arena, TrackCfg(), &is).ok());
  EXPECT_TRUE(is.dirty_fast);
  EXPECT_EQ(is.pages_dirty, 0u);
  EXPECT_EQ(is.pages_skipped, 64u);
}

TEST(DirtyTrackingSnapshot, RestoreRepairsOnlyMarkedPages) {
  Arena arena(32 * kPage);
  std::mt19937_64 rng(21);
  FillRandom(arena, rng);
  arena.EnableDirtyTracking();
  Snapshot snap = Snapshot::Capture(arena, TrackCfg());
  std::vector<std::byte> image(arena.base(), arena.base() + arena.size());

  std::memset(arena.base() + 4 * kPage, 0xEE, 2 * kPage);
  arena.MarkDirty(arena.base() + 4 * kPage, 2 * kPage);
  SnapshotStats rs;
  ASSERT_TRUE(snap.Restore(arena, TrackCfg(), &rs).ok());
  EXPECT_TRUE(rs.dirty_fast);
  EXPECT_EQ(rs.pages_dirty, 2u);
  EXPECT_EQ(rs.pages_skipped, 30u);
  EXPECT_EQ(std::memcmp(arena.base(), image.data(), arena.size()), 0);
}

// The three-engine equivalence property: after any sequence of identical
// (tracked) mutations, capture/recapture/restore cycles leave the
// write-tracked arena byte-identical to the hash-scan and full-copy arenas.
TEST(DirtyTrackingSnapshot, FuzzThreeEnginesStayByteIdentical) {
  constexpr std::size_t kPages = 48;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::mt19937_64 rng(seed);
    Arena track_arena(kPages * kPage, "track");
    Arena incr_arena(kPages * kPage, "incr");
    Arena full_arena(kPages * kPage, "full");
    FillRandom(track_arena, rng);
    std::memset(track_arena.base() + 6 * kPage, 0, 3 * kPage);  // zero pages
    std::memcpy(incr_arena.base(), track_arena.base(), track_arena.size());
    std::memcpy(full_arena.base(), track_arena.base(), track_arena.size());
    track_arena.EnableDirtyTracking();

    SnapshotConfig icfg;
    icfg.mode = SnapshotMode::kIncremental;
    SnapshotConfig fcfg;
    fcfg.mode = SnapshotMode::kFullCopy;
    Snapshot track = Snapshot::Capture(track_arena, TrackCfg());
    Snapshot incr = Snapshot::Capture(incr_arena, icfg);
    Snapshot full = Snapshot::Capture(full_arena, fcfg);

    std::uniform_int_distribution<std::size_t> off_d(0, kPages * kPage - 1);
    std::uniform_int_distribution<std::size_t> len_d(1, 3 * kPage);
    std::uniform_int_distribution<int> kind_d(0, 3);
    std::uniform_int_distribution<int> byte_d(0, 255);
    std::size_t skipped_total = 0;
    for (int round = 0; round < 25; ++round) {
      const int mutations = 1 + kind_d(rng);
      for (int m = 0; m < mutations; ++m) {
        const std::size_t off = off_d(rng);
        const std::size_t len = std::min(len_d(rng), kPages * kPage - off);
        switch (kind_d(rng)) {
          case 0: {
            const std::byte v = static_cast<std::byte>(byte_d(rng));
            track_arena.base()[off] = v;
            track_arena.MarkDirty(track_arena.base() + off, 1);
            break;
          }
          case 1: {
            const std::size_t p = (off / kPage) * kPage;
            std::memset(track_arena.base() + p, 0, kPage);
            track_arena.MarkDirty(track_arena.base() + p, kPage);
            break;
          }
          case 2:
            std::memset(track_arena.base() + off, byte_d(rng), len);
            track_arena.MarkDirty(track_arena.base() + off, len);
            break;
          case 3:
          default:
            break;  // clean round
        }
      }
      std::memcpy(incr_arena.base(), track_arena.base(), track_arena.size());
      std::memcpy(full_arena.base(), track_arena.base(), track_arena.size());

      SnapshotStats ts;
      if (round % 2 == 0) {
        // Recapture cycle: fold the mutations in, then prove all three
        // checkpoints restore to the same image after a scribble.
        ASSERT_TRUE(track.Recapture(track_arena, TrackCfg(), &ts).ok());
        ASSERT_TRUE(incr.Recapture(incr_arena, icfg).ok());
        ASSERT_TRUE(full.Recapture(full_arena, fcfg).ok());
        FillRandom(track_arena, rng);
        track_arena.TaintAll();  // scribble is an untracked bulk write
        std::memcpy(incr_arena.base(), track_arena.base(),
                    track_arena.size());
        std::memcpy(full_arena.base(), track_arena.base(),
                    track_arena.size());
      }
      SnapshotStats rs;
      ASSERT_TRUE(track.Restore(track_arena, TrackCfg(), &rs).ok());
      ASSERT_TRUE(incr.Restore(incr_arena, icfg).ok());
      ASSERT_TRUE(full.Restore(full_arena, fcfg).ok());
      skipped_total += ts.pages_skipped + rs.pages_skipped;
      ASSERT_EQ(std::memcmp(track_arena.base(), incr_arena.base(),
                            track_arena.size()),
                0)
          << "track vs incr divergence at seed " << seed << " round "
          << round;
      ASSERT_EQ(std::memcmp(track_arena.base(), full_arena.base(),
                            track_arena.size()),
                0)
          << "track vs full divergence at seed " << seed << " round "
          << round;
    }
    // The fast path must actually engage: a fuzz run that always fell back
    // to the full scan would vacuously pass the equivalence check.
    EXPECT_GT(skipped_total, 0u) << "seed " << seed;
  }
}

// ------------------------------------------------ hash-collision defense

// Satellite regression test: before the memcmp-confirm fix, Recapture and
// Restore trusted a bare 64-bit hash match as "page unchanged". With a
// colliding hash installed, every page matches every hash — only the
// byte-wise confirm can tell changed pages apart.
TEST(DirtyTrackingSnapshot, CollidingHashDoesNotHideChangesFromRecapture) {
  HashOverride guard(&CollidingHash);
  Arena arena(8 * kPage);
  std::mt19937_64 rng(13);
  FillRandom(arena, rng);

  SnapshotConfig icfg;
  icfg.mode = SnapshotMode::kIncremental;
  Snapshot snap = Snapshot::Capture(arena, icfg);

  // Change one page. Its hash is unchanged by construction.
  arena.base()[3 * kPage] ^= std::byte{0xFF};
  SnapshotStats rs;
  ASSERT_TRUE(snap.Recapture(arena, icfg, &rs).ok());
  EXPECT_EQ(rs.pages_dirty, 1u) << "collision swallowed the recapture";

  // The recaptured image must round-trip the changed byte.
  std::vector<std::byte> live(arena.base(), arena.base() + arena.size());
  FillRandom(arena, rng);
  ASSERT_TRUE(snap.Restore(arena, icfg).ok());
  EXPECT_EQ(std::memcmp(arena.base(), live.data(), arena.size()), 0);
}

TEST(DirtyTrackingSnapshot, CollidingHashDoesNotHideChangesFromRestore) {
  HashOverride guard(&CollidingHash);
  Arena arena(8 * kPage);
  std::mt19937_64 rng(14);
  FillRandom(arena, rng);

  SnapshotConfig icfg;
  icfg.mode = SnapshotMode::kIncremental;
  Snapshot snap = Snapshot::Capture(arena, icfg);
  std::vector<std::byte> image(arena.base(), arena.base() + arena.size());

  arena.base()[5 * kPage + 17] ^= std::byte{0x0F};
  SnapshotStats rs;
  ASSERT_TRUE(snap.Restore(arena, icfg, &rs).ok());
  EXPECT_EQ(rs.pages_dirty, 1u) << "collision swallowed the restore";
  EXPECT_EQ(std::memcmp(arena.base(), image.data(), arena.size()), 0);
}

// The write-tracked fast path never hashes, so it is immune by design —
// but the audit scan runs under the override and must still catch changes.
TEST(DirtyTrackingSnapshot, CollidingHashDoesNotBreakAuditScan) {
  HashOverride guard(&CollidingHash);
  Arena arena(8 * kPage);
  std::mt19937_64 rng(15);
  FillRandom(arena, rng);
  arena.EnableDirtyTracking();
  Snapshot snap = Snapshot::Capture(arena, TrackCfg());

  arena.base()[2 * kPage] ^= std::byte{0xA5};
  arena.MarkDirty(arena.base() + 2 * kPage, 1);
  SnapshotStats rs;
  // audit_rate=1: every op full-scans; the tracked change must be captured
  // with no audit miss (its bit was set).
  ASSERT_TRUE(snap.Recapture(arena, TrackCfg(1), &rs).ok());
  EXPECT_TRUE(rs.audited);
  EXPECT_EQ(rs.audit_misses, 0u);
  EXPECT_EQ(rs.pages_dirty, 1u);
}

// ---------------------------------------------------------- audit mode

TEST(DirtyTrackingSnapshot, AuditCatchesUntrackedWrite) {
  Arena arena(16 * kPage);
  std::mt19937_64 rng(31);
  FillRandom(arena, rng);
  arena.EnableDirtyTracking();
  Snapshot snap = Snapshot::Capture(arena, TrackCfg());

  // Write WITHOUT marking: the bug the audit exists to catch.
  arena.base()[9 * kPage + 42] = std::byte{0x5A};

  // audit_rate=1, count-and-resync (fail_stop=false): the miss is counted
  // and the change still lands in the checkpoint.
  SnapshotStats rs;
  ASSERT_TRUE(snap.Recapture(arena, TrackCfg(1, false), &rs).ok());
  EXPECT_TRUE(rs.audited);
  EXPECT_GE(rs.audit_misses, 1u);
  EXPECT_EQ(rs.pages_dirty, 1u) << "audit must resync the untracked page";

  std::vector<std::byte> live(arena.base(), arena.base() + arena.size());
  FillRandom(arena, rng);
  arena.TaintAll();
  ASSERT_TRUE(snap.Restore(arena, TrackCfg()).ok());
  EXPECT_EQ(std::memcmp(arena.base(), live.data(), arena.size()), 0);
}

TEST(DirtyTrackingSnapshotDeath, AuditFailStopOnUntrackedWrite) {
  Arena arena(8 * kPage);
  arena.base()[0] = std::byte{1};
  arena.EnableDirtyTracking();
  Snapshot snap = Snapshot::Capture(arena, TrackCfg());
  arena.base()[3 * kPage] = std::byte{0x66};  // untracked
  EXPECT_DEATH(
      {
        SnapshotStats rs;
        (void)snap.Recapture(arena, TrackCfg(1, true), &rs);
      },
      "audit");
}

// ------------------------------------------------------ desync fallback

// Two snapshots consuming one arena's tracker must not trust each other's
// sync points: the second operation sees a generation mismatch, falls back
// to the full hash scan, and still produces a correct image.
TEST(DirtyTrackingSnapshot, SharedTrackerForcesFallbackNotCorruption) {
  Arena arena(16 * kPage);
  std::mt19937_64 rng(55);
  FillRandom(arena, rng);
  arena.EnableDirtyTracking();

  Snapshot a = Snapshot::Capture(arena, TrackCfg());  // syncs the tracker
  Snapshot b = Snapshot::Capture(arena, TrackCfg());  // re-syncs: a desynced

  arena.base()[7 * kPage] ^= std::byte{0xFF};
  arena.MarkDirty(arena.base() + 7 * kPage, 1);

  // b synced last: fast path valid. a must fall back (generation moved on).
  SnapshotStats sa;
  ASSERT_TRUE(a.Recapture(arena, TrackCfg(), &sa).ok());
  EXPECT_FALSE(sa.dirty_fast);
  EXPECT_EQ(sa.pages_dirty, 1u);

  // a's recapture re-synced the tracker to a; now b is the stale one. Its
  // full-scan recapture sees both mutations (it never folded the first).
  arena.base()[2 * kPage] ^= std::byte{0x0F};
  arena.MarkDirty(arena.base() + 2 * kPage, 1);
  SnapshotStats sb;
  ASSERT_TRUE(b.Recapture(arena, TrackCfg(), &sb).ok());
  EXPECT_FALSE(sb.dirty_fast);
  EXPECT_EQ(sb.pages_dirty, 2u);

  // Both checkpoints restore the exact live image they last saw.
  std::vector<std::byte> live(arena.base(), arena.base() + arena.size());
  FillRandom(arena, rng);
  arena.TaintAll();
  ASSERT_TRUE(b.Restore(arena, TrackCfg()).ok());
  EXPECT_EQ(std::memcmp(arena.base(), live.data(), arena.size()), 0);
}

TEST(DirtyTrackingSnapshot, TrackingOffIgnoresTrackerEntirely) {
  Arena arena(8 * kPage);
  std::mt19937_64 rng(77);
  FillRandom(arena, rng);
  arena.EnableDirtyTracking();
  SnapshotConfig icfg;
  icfg.mode = SnapshotMode::kIncremental;  // dirty_tracking stays false
  Snapshot snap = Snapshot::Capture(arena, icfg);

  arena.base()[1 * kPage] ^= std::byte{0x3C};  // untracked on purpose
  SnapshotStats rs;
  ASSERT_TRUE(snap.Recapture(arena, icfg, &rs).ok());
  EXPECT_FALSE(rs.dirty_fast);
  EXPECT_EQ(rs.pages_skipped, 0u);
  EXPECT_EQ(rs.pages_dirty, 1u);  // full scan caught it without the bitmap
}

// ---------------------------------------------------- runtime integration

struct TrackRig {
  TrackRig() : rt(Opts()) {
    counter = rt.AddComponent(std::make_unique<CounterComponent>());
    rt.AddAppDependency(counter);
    rt.Boot();
  }
  static RuntimeOptions Opts() {
    RuntimeOptions o;
    o.mode = Mode::kVampOS;
    o.hang_threshold = 0;
    o.snapshot_mode = SnapshotMode::kIncremental;
    o.dirty_tracking = true;
    o.dirty_audit_rate = 0;  // deterministic fast path for the assertions
    return o;
  }
  std::uint64_t Ct(const char* name) {
    return rt.metrics().FindCounter(name)->value();
  }
  Runtime rt;
  ComponentId counter;
};

TEST(DirtyTrackingRuntime, StateSurvivesAndCountersAccount) {
  TrackRig rig;
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 10; ++i) rig.rt.Call(inc, {});
  });

  // CounterComponent declares no write tracking: every dispatch taints the
  // whole arena, so reboots are correct (if not fast) and taints count up.
  for (int i = 0; i < 3; ++i) {
    auto result = rig.rt.Reboot(rig.counter, /*refresh_checkpoint=*/true);
    ASSERT_TRUE(result.ok());
    rig.rt.RunUntilIdle();
  }
  const FunctionId get = rig.rt.Lookup("counter", "get");
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 10);

  EXPECT_GT(rig.Ct("snapshot.dirty_taints"), 0u);
  EXPECT_GT(rig.Ct("snapshot.dirty_fast_ops") +
                rig.Ct("snapshot.dirty_fallback_ops"),
            0u);
  EXPECT_EQ(rig.Ct("snapshot.dirty_audit_misses"), 0u);
}

TEST(DirtyTrackingRuntime, IdleRefreshRebootSkipsPages) {
  TrackRig rig;
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });

  // First refresh folds history; the second one runs against a synced
  // tracker, and the whole-arena taints from dispatch are the only dirt.
  ASSERT_TRUE(rig.rt.Reboot(rig.counter, true).ok());
  rig.rt.RunUntilIdle();
  auto result = rig.rt.Reboot(rig.counter, true);
  ASSERT_TRUE(result.ok());
  rig.rt.RunUntilIdle();
  // Under VAMPOS_SNAPSHOT_AUDIT=1 every op full-scans instead of taking
  // the fast path, so accept audited ops as engagement too.
  EXPECT_GT(rig.Ct("snapshot.dirty_fast_ops") +
                rig.Ct("snapshot.dirty_audits"),
            0u);
}

}  // namespace
}  // namespace vampos
