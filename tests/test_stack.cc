// Full unikernel-stack tests: POSIX file I/O through VFS->9PFS->VIRTIO,
// socket I/O through VFS->LWIP->NETDEV->VIRTIO, and component-level reboots
// of every stateful component while the application keeps its state.
#include <gtest/gtest.h>

#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::SimClient;
using apps::StackInfo;
using apps::StackSpec;
using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using testing::RunApp;

struct StackRig {
  explicit StackRig(StackSpec spec = StackSpec::Nginx(),
                    RuntimeOptions opts = DefaultOpts())
      : rt(opts), info(BuildStack(rt, platform, rings, spec)) {
    EXPECT_EQ(apps::BootAndMount(rt), spec.with_fs ? 0 : 0);
    px = std::make_unique<Posix>(rt);
  }
  static RuntimeOptions DefaultOpts() {
    RuntimeOptions o;
    o.hang_threshold = 0;
    return o;
  }

  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

TEST(StackFile, CreateWriteReadRoundTrip) {
  StackRig rig;
  RunApp(rig.rt, [&] {
    ASSERT_EQ(rig.px->Mkdir("/data"), 0);
    const auto fd = rig.px->Create("/data/hello.txt");
    ASSERT_GE(fd, 0);
    EXPECT_EQ(rig.px->Write(fd, "hello "), 6);
    EXPECT_EQ(rig.px->Write(fd, "world"), 5);
    EXPECT_EQ(rig.px->Close(fd), 0);

    const auto rd = rig.px->Open("/data/hello.txt");
    ASSERT_GE(rd, 0);
    auto res = rig.px->Read(rd, 100);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.data, "hello world");
    rig.px->Close(rd);
  });
  // Host-side truth: the file lives on the 9P server.
  EXPECT_EQ(rig.platform.ninep.ReadFile("/data/hello.txt"), "hello world");
}

TEST(StackFile, OffsetsSeekAndPread) {
  StackRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/f");
    rig.px->Write(fd, "0123456789");
    EXPECT_EQ(rig.px->Lseek(fd, 2, Posix::kSeekSet), 2);
    auto r = rig.px->Read(fd, 3);
    EXPECT_EQ(r.data, "234");
    EXPECT_EQ(rig.px->Lseek(fd, -2, Posix::kSeekEnd), 8);
    EXPECT_EQ(rig.px->Read(fd, 10).data, "89");
    EXPECT_EQ(rig.px->Pread(fd, 4, 1).data, "1234");
    rig.px->Close(fd);
  });
}

TEST(StackFile, OpenMissingFails) {
  StackRig rig;
  RunApp(rig.rt, [&] {
    EXPECT_LT(rig.px->Open("/nope"), 0);
    EXPECT_GE(rig.px->Open("/nope", Posix::kOCreat), 0);
  });
}

TEST(StackFile, AppendMode) {
  StackRig rig;
  rig.platform.ninep.PutFile("/log", "abc");
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Open("/log", Posix::kOAppend);
    ASSERT_GE(fd, 0);
    rig.px->Write(fd, "def");
    rig.px->Close(fd);
  });
  EXPECT_EQ(rig.platform.ninep.ReadFile("/log"), "abcdef");
}

TEST(StackFile, PipesMoveBytes) {
  StackRig rig;
  RunApp(rig.rt, [&] {
    const auto fd_r = rig.px->Pipe();
    ASSERT_GE(fd_r, 0);
    EXPECT_EQ(rig.px->Write(fd_r + 1, "pipe!"), 5);
    EXPECT_EQ(rig.px->Read(fd_r, 16).data, "pipe!");
  });
}

TEST(StackProc, GetpidUnameUid) {
  StackRig rig;
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->Getpid(), 1);
    EXPECT_EQ(rig.px->Getuid(), 0);
    EXPECT_NE(rig.px->Uname().find("VampOS"), std::string::npos);
  });
}

// ------------------------------------------------------------ reboots

TEST(StackReboot, VfsRebootKeepsOpenFiles) {
  StackRig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/keep");
    rig.px->Write(fd, "before-");
  });
  auto report = rig.rt.Reboot(rig.info.vfs);
  ASSERT_TRUE(report.ok());
  RunApp(rig.rt, [&] {
    // Same fd, offset preserved at 7: the write continues seamlessly.
    EXPECT_EQ(rig.px->Write(fd, "after"), 5);
    rig.px->Close(fd);
  });
  EXPECT_EQ(rig.platform.ninep.ReadFile("/keep"), "before-after");
}

TEST(StackReboot, NinePfsRebootKeepsFids) {
  StackRig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/fidtest");
    rig.px->Write(fd, "xy");
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.info.ninep).ok());
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->Write(fd, "z"), 1);
    rig.px->Close(fd);
  });
  EXPECT_EQ(rig.platform.ninep.ReadFile("/fidtest"), "xyz");
}

TEST(StackReboot, StatelessProcessRebootInvisible) {
  StackRig rig;
  ASSERT_TRUE(rig.rt.Reboot(rig.info.process).ok());
  RunApp(rig.rt, [&] { EXPECT_EQ(rig.px->Getpid(), 1); });
}

TEST(StackReboot, VirtioRebootRefused) {
  StackRig rig;
  auto result = rig.rt.Reboot(rig.info.virtio);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Errno::kInval);
}

TEST(StackReboot, StatefulRebootTimesRecorded) {
  StackRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/t");
    rig.px->Write(fd, "1");
    rig.px->Close(fd);
  });
  auto report = rig.rt.Reboot(rig.info.vfs);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().total_ns, 0);
  EXPECT_GT(report.value().snapshot_ns, 0);  // checkpoint restore happened
  EXPECT_FALSE(report.value().stateless);
}

// ------------------------------------------------------------ network

// Pumps: client poll + unpark + runtime until quiescent.
void Pump(StackRig& rig, SimClient& client, int rounds = 10) {
  for (int i = 0; i < rounds; ++i) {
    client.Poll();
    rig.rt.UnparkApps();
    rig.rt.RunUntilIdle();
    client.Poll();
  }
}

TEST(StackNet, AcceptEchoAndSequenceNumbers) {
  StackRig rig;
  bool stop = false;
  std::int64_t listen_fd = -1;
  rig.rt.SpawnApp("server", [&] {
    listen_fd = rig.px->Socket();
    rig.px->Bind(listen_fd, 80);
    rig.px->Listen(listen_fd);
    std::int64_t conn = -1;
    while (!stop) {
      if (conn < 0) conn = rig.px->Accept(listen_fd);
      if (conn >= 0) {
        auto r = rig.px->Recv(conn, 1024);
        if (r.ok() && !r.data.empty()) rig.px->Send(conn, "re:" + r.data);
      }
      rig.rt.ParkApp();
    }
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 80);
  const int h = client.Connect();
  Pump(rig, client);
  ASSERT_TRUE(client.Established(h));
  client.Send(h, "ping");
  Pump(rig, client);
  EXPECT_EQ(client.TakeReceived(h), "re:ping");
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

TEST(StackNet, LwipRebootPreservesConnection) {
  StackRig rig;
  bool stop = false;
  rig.rt.SpawnApp("server", [&] {
    const auto lfd = rig.px->Socket();
    rig.px->Bind(lfd, 80);
    rig.px->Listen(lfd);
    std::int64_t conn = -1;
    while (!stop) {
      if (conn < 0) conn = rig.px->Accept(lfd);
      if (conn >= 0) {
        auto r = rig.px->Recv(conn, 1024);
        if (r.ok() && !r.data.empty()) rig.px->Send(conn, r.data);
      }
      rig.rt.ParkApp();
    }
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 80);
  const int h = client.Connect();
  Pump(rig, client);
  ASSERT_TRUE(client.Established(h));
  client.Send(h, "one");
  Pump(rig, client);
  EXPECT_EQ(client.TakeReceived(h), "one");

  // Reboot the whole transport chain component; seq/ack come back from the
  // runtime-data vault, so the connection survives.
  ASSERT_TRUE(rig.rt.Reboot(rig.info.lwip).ok());

  client.Send(h, "two");
  Pump(rig, client);
  EXPECT_EQ(client.TakeReceived(h), "two");
  EXPECT_FALSE(client.Broken(h));
  EXPECT_EQ(client.resets_seen(), 0u);
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

TEST(StackNet, NetdevStatelessRebootInvisible) {
  StackRig rig;
  bool stop = false;
  rig.rt.SpawnApp("server", [&] {
    const auto lfd = rig.px->Socket();
    rig.px->Bind(lfd, 80);
    rig.px->Listen(lfd);
    std::int64_t conn = -1;
    while (!stop) {
      if (conn < 0) conn = rig.px->Accept(lfd);
      if (conn >= 0) {
        auto r = rig.px->Recv(conn, 1024);
        if (r.ok() && !r.data.empty()) rig.px->Send(conn, r.data);
      }
      rig.rt.ParkApp();
    }
  });
  rig.rt.RunUntilIdle();
  SimClient client(&rig.platform.net, 80);
  const int h = client.Connect();
  Pump(rig, client);
  ASSERT_TRUE(client.Established(h));
  ASSERT_TRUE(rig.rt.Reboot(rig.info.netdev).ok());
  client.Send(h, "still-there");
  Pump(rig, client);
  EXPECT_EQ(client.TakeReceived(h), "still-there");
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

// ------------------------------------------------------------ stacks

TEST(StackSpecs, SqliteStackHasSevenComponents) {
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(StackRig::DefaultOpts());
  BuildStack(rt, platform, rings, StackSpec::Sqlite());
  apps::BootAndMount(rt);
  // app + 7 components + message domain = 10 MPK tags minus... the paper
  // counts app/message-domain/scheduler separately; we count keys assigned
  // to components + the message domain.
  EXPECT_EQ(rt.MpkTagsInUse(), 1 + 1 + 7);  // key0 reserved + domain + comps
}

TEST(StackSpecs, EchoStackWorksWithoutFs) {
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(StackRig::DefaultOpts());
  BuildStack(rt, platform, rings, StackSpec::Echo());
  apps::BootAndMount(rt);
  Posix px(rt);
  std::int64_t fd = 0;
  rt.SpawnApp("t", [&] { fd = px.Open("/x"); });
  rt.RunUntilIdle();
  EXPECT_LT(fd, 0);  // no filesystem in this stack
}

TEST(StackSpecs, MergedFsStackServesFiles) {
  StackSpec spec = StackSpec::Nginx();
  spec.merge_fs = true;
  spec.merge_net = true;
  StackRig rig(spec);
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/m");
    rig.px->Write(fd, "merged");
    rig.px->Close(fd);
    const auto rd = rig.px->Open("/m");
    EXPECT_EQ(rig.px->Read(rd, 64).data, "merged");
    rig.px->Close(rd);
  });
  // Merged group reboots as a unit and still works.
  ASSERT_TRUE(rig.rt.Reboot(rig.info.vfs).ok());
  RunApp(rig.rt, [&] {
    const auto rd = rig.px->Open("/m");
    ASSERT_GE(rd, 0);
    EXPECT_EQ(rig.px->Read(rd, 64).data, "merged");
    rig.px->Close(rd);
  });
}

}  // namespace
}  // namespace vampos
