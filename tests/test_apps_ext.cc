// Tests for the extended application command surfaces: Redis-like
// DEL/INCR/EXISTS (with AOF round-trips), MiniDb UPDATE/KEYS, and the
// web server's HEAD handling.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "apps/minidb.h"
#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "apps/webserver.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::KvStore;
using apps::MiniDb;
using apps::Posix;
using apps::SimClient;
using apps::StackInfo;
using apps::StackSpec;
using apps::WebServer;
using core::Runtime;
using core::RuntimeOptions;
using testing::RunApp;

struct Rig {
  explicit Rig(StackSpec spec) : rt(Opts()) {
    info = BuildStack(rt, platform, rings, spec);
    apps::BootAndMount(rt);
    px = std::make_unique<Posix>(rt);
  }
  static RuntimeOptions Opts() {
    RuntimeOptions o;
    o.hang_threshold = 0;
    return o;
  }
  void Pump(SimClient& client, int rounds = 8) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  }
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

TEST(KvStoreExt, DelIncrExists) {
  Rig rig(StackSpec::Redis());
  RunApp(rig.rt, [&] {
    KvStore kv(*rig.px, "/aof", true);
    ASSERT_TRUE(kv.OpenAof());
    kv.Set("a", "1");
    EXPECT_TRUE(kv.Exists("a"));
    EXPECT_EQ(kv.Del("a"), 1);
    EXPECT_EQ(kv.Del("a"), 0);
    EXPECT_FALSE(kv.Exists("a"));
    EXPECT_EQ(kv.Incr("n"), 1);
    EXPECT_EQ(kv.Incr("n"), 2);
    kv.Set("s", "text");
    EXPECT_LT(kv.Incr("s"), 0);  // non-numeric
    kv.CloseAof();
  });
}

TEST(KvStoreExt, DelSurvivesAofReload) {
  Rig rig(StackSpec::Redis());
  RunApp(rig.rt, [&] {
    KvStore kv(*rig.px, "/aof2", true);
    ASSERT_TRUE(kv.OpenAof());
    kv.Set("keep", "1");
    kv.Set("drop", "2");
    kv.Del("drop");
    kv.CloseAof();

    KvStore reloaded(*rig.px, "/aof2", true);
    EXPECT_EQ(reloaded.LoadAof(), 3u);  // 2 sets + 1 del
    EXPECT_TRUE(reloaded.Exists("keep"));
    EXPECT_FALSE(reloaded.Exists("drop"));
  });
}

TEST(KvStoreExt, NetworkCommands) {
  Rig rig(StackSpec::Redis());
  bool stop = false;
  KvStore kv(*rig.px, "/aof3", false);
  rig.rt.SpawnApp("redis", [&] {
    kv.Setup(6379);
    kv.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();
  SimClient client(&rig.platform.net, 6379);
  const int h = client.Connect();
  rig.Pump(client);
  auto cmd = [&](const std::string& c) {
    client.Send(h, c + "\n");
    rig.Pump(client);
    return client.TakeReceived(h);
  };
  EXPECT_EQ(cmd("INCR hits"), ":1\n");
  EXPECT_EQ(cmd("INCR hits"), ":2\n");
  EXPECT_EQ(cmd("EXISTS hits"), ":1\n");
  EXPECT_EQ(cmd("DEL hits"), ":1\n");
  EXPECT_EQ(cmd("EXISTS hits"), ":0\n");
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

TEST(MiniDbExt, UpdateAndKeys) {
  Rig rig(StackSpec::Sqlite());
  RunApp(rig.rt, [&] {
    MiniDb db(*rig.px, "/db");
    ASSERT_TRUE(db.Open());
    EXPECT_EQ(db.Exec("UPDATE ghost 1"), "ERR no such row");
    db.Exec("INSERT a 1");
    db.Exec("INSERT b 2");
    EXPECT_EQ(db.Exec("UPDATE a 9"), "OK");
    EXPECT_EQ(db.Exec("SELECT a"), "9");
    const std::string keys = db.Exec("KEYS");
    EXPECT_NE(keys.find("a\n"), std::string::npos);
    EXPECT_NE(keys.find("b\n"), std::string::npos);
    db.Close();
  });
}

TEST(WebServerExt, HeadReturnsLengthWithoutBody) {
  Rig rig(StackSpec::Nginx());
  rig.platform.ninep.PutFile("/www/page", std::string(64, 'p'));
  bool stop = false;
  WebServer server(*rig.px, 80, "/www");
  rig.rt.SpawnApp("nginx", [&] {
    server.Setup();
    server.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();
  SimClient client(&rig.platform.net, 80);
  const int h = client.Connect();
  rig.Pump(client);
  client.Send(h, "HEAD /page\n");
  rig.Pump(client);
  const std::string resp = client.TakeReceived(h);
  EXPECT_NE(resp.find("200"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 64"), std::string::npos);
  EXPECT_EQ(resp.find(std::string(64, 'p')), std::string::npos);  // no body
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

}  // namespace
}  // namespace vampos
