// Chaos subsystem: concurrent component recovery (dependency-ordered
// replay, overlapping reboots, failed-restore isolation) and the seeded
// fault-injection campaign engine (deterministic plans, the env repro knob,
// and a mini-campaign against the live DaS stack).
#include <gtest/gtest.h>

#include <cstdlib>

#include "chaos/chaos.h"
#include "chaos/harness.h"
#include "obs/trace.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Runtime;
using core::RuntimeOptions;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;

RuntimeOptions ConcurrentOpts(int workers) {
  RuntimeOptions o;
  o.hang_threshold = 0;
  o.recovery_workers = workers;
  o.tracing = true;
  return o;
}

struct Pair {
  ComponentId counter = kComponentNone;
  ComponentId store = kComponentNone;
  FunctionId inc = 0;
  FunctionId get = 0;
};

// counter calls store on every inc, so counter's group depends on store's:
// when both are down, store must finish its replay before counter starts.
Pair BuildPair(Runtime& rt) {
  Pair p;
  p.store = rt.AddComponent(std::make_unique<StoreComponent>());
  p.counter = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddDependency(p.counter, p.store);
  rt.AddAppDependency(p.counter);
  rt.AddAppDependency(p.store);
  rt.Boot();
  p.inc = rt.Lookup("counter", "inc");
  p.get = rt.Lookup("counter", "get");
  return p;
}

void DriveRecoveries(Runtime& rt) {
  int guard = 0;
  while (rt.active_recoveries() > 0) {
    rt.Step();
    ASSERT_LT(++guard, 2000000) << "recoveries never drained";
  }
}

TEST(ChaosRecovery, DependencyOrderedConcurrentReplay) {
  Runtime rt(ConcurrentOpts(2));
  Pair p = BuildPair(rt);
  RunApp(rt, [&] {
    for (int i = 0; i < 4; ++i) rt.Call(p.inc, {});
  });

  ASSERT_TRUE(rt.RebootAsync(p.counter).ok());
  ASSERT_TRUE(rt.RebootAsync(p.store).ok());
  EXPECT_EQ(rt.active_recoveries(), 2u);
  DriveRecoveries(rt);

  // The recorder proves the ordering: store's replay must END before
  // counter's replay BEGINS, because counter calls into store.
  Nanos store_replay_end = -1;
  Nanos counter_replay_begin = -1;
  for (const obs::TraceEvent& e : rt.recorder().Snapshot()) {
    if (e.kind != obs::EventKind::kRebootReplay) continue;
    if (e.comp == p.store && e.phase == obs::TracePhase::kEnd) {
      store_replay_end = e.ts;
    }
    if (e.comp == p.counter && e.phase == obs::TracePhase::kBegin &&
        counter_replay_begin < 0) {
      counter_replay_begin = e.ts;
    }
  }
  ASSERT_GE(store_replay_end, 0) << "store replay never recorded";
  ASSERT_GE(counter_replay_begin, 0) << "counter replay never recorded";
  EXPECT_LE(store_replay_end, counter_replay_begin);

  // Both groups are back and the replayed state is intact.
  std::int64_t v = 0;
  RunApp(rt, [&] { v = rt.Call(p.get, {}).i64(); });
  EXPECT_EQ(v, 4);
}

TEST(ChaosRecovery, OverlappingRebootsReachTwoInFlight) {
  Runtime rt(ConcurrentOpts(2));
  Pair p = BuildPair(rt);
  RunApp(rt, [&] {
    for (int i = 0; i < 2; ++i) rt.Call(p.inc, {});
  });

  ASSERT_TRUE(rt.RebootAsync(p.store).ok());
  ASSERT_TRUE(rt.RebootAsync(p.counter).ok());
  DriveRecoveries(rt);
  EXPECT_GE(rt.peak_concurrent_recoveries(), 2u);

  // Both whole-reboot spans opened before either closed.
  Nanos last_begin = -1;
  Nanos first_end = -1;
  for (const obs::TraceEvent& e : rt.recorder().Snapshot()) {
    if (e.kind != obs::EventKind::kReboot) continue;
    if (e.phase == obs::TracePhase::kBegin && e.ts > last_begin) {
      last_begin = e.ts;
    }
    if (e.phase == obs::TracePhase::kEnd &&
        (first_end < 0 || e.ts < first_end)) {
      first_end = e.ts;
    }
  }
  ASSERT_GE(last_begin, 0);
  ASSERT_GE(first_end, 0);
  EXPECT_LE(last_begin, first_end);
}

// Satellite regression: a reboot whose restore fails (corrupt checkpoint,
// no reinit fallback) while another reboot is in flight must fail cleanly —
// bumping rt.recovery_failures — without stalling the other recovery or the
// runtime. This is the "failed job unblocks its dependents" contract.
TEST(ChaosRecovery, FailedRestoreDoesNotStallOtherRecoveries) {
  Runtime rt(ConcurrentOpts(2));
  Pair p = BuildPair(rt);
  RunApp(rt, [&] {
    for (int i = 0; i < 3; ++i) rt.Call(p.inc, {});
  });

  const std::uint64_t failures0 =
      rt.metrics().GetCounter("rt.recovery_failures").value();
  rt.CorruptCheckpointForTest(p.store);
  ASSERT_TRUE(rt.RebootAsync(p.store).ok());
  ASSERT_TRUE(rt.RebootAsync(p.counter).ok());
  DriveRecoveries(rt);

  // store's job failed and was accounted; counter's reboot — whose replay
  // was dependency-blocked on store's job — still completed.
  EXPECT_EQ(rt.metrics().GetCounter("rt.recovery_failures").value(),
            failures0 + 1);
  std::int64_t v = -1;
  RunApp(rt, [&] { v = rt.Call(p.get, {}).i64(); });
  EXPECT_EQ(v, 3);
  EXPECT_EQ(rt.active_recoveries(), 0u);
}

TEST(ChaosPlan, GenerationIsDeterministic) {
  chaos::CampaignSpec spec;
  spec.seed = 99;
  spec.faults = 60;
  const chaos::FaultPlan a = chaos::FaultPlan::Generate(spec, 5);
  const chaos::FaultPlan b = chaos::FaultPlan::Generate(spec, 5);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  ASSERT_EQ(a.faults.size(), 60u);
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].target, b.faults[i].target) << i;
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind) << i;
    EXPECT_EQ(a.faults[i].burst, b.faults[i].burst) << i;
  }

  spec.seed = 100;
  const chaos::FaultPlan c = chaos::FaultPlan::Generate(spec, 5);
  bool differs = false;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    if (a.faults[i].target != c.faults[i].target ||
        a.faults[i].kind != c.faults[i].kind) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs) << "different seeds produced identical plans";
}

TEST(ChaosPlan, EnvSeedOverridesSpec) {
  chaos::CampaignSpec spec;
  spec.seed = 7;
  ASSERT_EQ(setenv("VAMPOS_CHAOS_SEED", "123", 1), 0);
  EXPECT_EQ(spec.ResolvedSeed(), 123u);
  ASSERT_EQ(unsetenv("VAMPOS_CHAOS_SEED"), 0);
  EXPECT_EQ(spec.ResolvedSeed(), 7u);
}

// The acceptance mini-campaign: 200 seeded faults against the live stack,
// concurrent recovery on, every fault recovered, no fail-stop, no replay
// divergence, and the process survives (ASan keeps this honest).
TEST(ChaosCampaign, MiniCampaignRunsClean) {
  chaos::HarnessOptions hopts;
  hopts.recovery_workers = 4;
  chaos::DasHarness harness(hopts);
  chaos::CampaignSpec spec;
  spec.seed = 7;
  spec.faults = 200;
  spec.windows = 5;
  chaos::Campaign campaign(harness, spec);
  const chaos::Report report = campaign.Run();

  EXPECT_TRUE(report.clean())
      << "unrecovered=" << report.unrecovered
      << " fail_stopped=" << report.fail_stopped
      << " replay_divergence=" << report.replay_divergence;
  EXPECT_EQ(report.faults_fired, 200u);
  EXPECT_EQ(report.unrecovered, 0u);
  EXPECT_FALSE(report.fail_stopped);
  EXPECT_EQ(report.recovered, 200u);
  ASSERT_EQ(report.windows.size(), 5u);
  std::uint64_t rounds = 0;
  for (const chaos::WindowStat& w : report.windows) rounds += w.rounds;
  EXPECT_GT(rounds, 0u);
}

}  // namespace
}  // namespace vampos
