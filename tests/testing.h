// Shared test fixtures: synthetic components exercising every runtime
// mechanism without the full unikernel stack, plus helpers to run app code
// to completion.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "comp/component.h"
#include "core/runtime.h"

namespace vampos::testing {

/// Runs `body` on an app fiber and pumps the runtime until idle.
inline void RunApp(core::Runtime& rt, std::function<void()> body) {
  rt.SpawnApp("test", std::move(body));
  rt.RunUntilIdle();
}

/// Stateful component with sessions, nested calls, and a compaction hook —
/// a miniature VFS. Talks to a downstream StoreComponent when bound.
class CounterComponent final : public comp::Component {
 public:
  CounterComponent()
      : Component("counter", comp::Statefulness::kStateful, 256 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("inc", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 state_->value++;
                 if (store_add_ >= 0) {
                   // Nested call whose return value must be fed back during
                   // encapsulated restoration.
                   msg::MsgValue total =
                       c.Call(store_add_, {msg::MsgValue(std::int64_t{1})});
                   state_->store_total = total.i64();
                 }
                 return msg::MsgValue(state_->value);
               });
    ctx.Export("get",
               comp::FnOptions{.logged = true, .state_changing = false},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(state_->value);
               });
    ctx.Export("store_total", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(state_->store_total);
               });
    ctx.Export("open_session",
               comp::FnOptions{.logged = true, .session_from_ret = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 std::int64_t id;
                 if (auto forced = c.forced_session()) {
                   id = *forced;
                 } else {
                   id = -1;
                   for (int i = 0; i < 16; ++i) {
                     if (!state_->sessions[i]) {
                       id = i;
                       break;
                     }
                   }
                   if (id < 0) return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->sessions[id] = true;
                 state_->session_sum[id] = 0;
                 return msg::MsgValue(id);
               });
    ctx.Export("add_session",
               comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= 16 || !state_->sessions[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->session_sum[id] += args[1].i64();
                 return msg::MsgValue(state_->session_sum[id]);
               });
    ctx.Export("close_session",
               comp::FnOptions{.logged = true, .session_arg = 0,
                               .canceling = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= 16) return msg::MsgValue(std::int64_t{-1});
                 state_->sessions[id] = false;
                 return msg::MsgValue(std::int64_t{0});
               });
    ctx.Export("set_session",
               comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= 16 || !state_->sessions[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->session_sum[id] = args[1].i64();
                 return msg::MsgValue(state_->session_sum[id]);
               });
    ctx.Export("session_sum", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args& args) {
                 return msg::MsgValue(state_->session_sum[args[0].i64()]);
               });
    ctx.Export("leak", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args& args) {
                 // Aging injection: allocate and forget.
                 (void)alloc().Alloc(static_cast<std::size_t>(args[0].i64()));
                 return msg::MsgValue(
                     static_cast<std::int64_t>(alloc().Stats().bytes_in_use));
               });
    // One-shot crash: the armed flag lives in the C++ object, not the
    // arena, so the post-reboot retry of the same message succeeds — a
    // non-deterministic fault per the paper's model.
    ctx.Export("crash", comp::FnOptions{},
               [this](comp::CallCtx& c, const msg::Args&) -> msg::MsgValue {
                 if (crash_armed_) {
                   crash_armed_ = false;
                   c.Panic("crash requested");
                 }
                 return msg::MsgValue(std::int64_t{0});
               });
  }

  void Bind(comp::InitCtx& ctx) override {
    store_add_ = ctx.runtime().TryLookup("store", "add").value_or(-1);
  }

  comp::CompactionHook compaction_hook() override {
    // Collapse a session's add_session history into one synthetic add of
    // the current sum (the VFS-offset trick in miniature).
    return [this](const comp::CompactionRequest& req)
               -> std::vector<std::pair<FunctionId, msg::Args>> {
      if (req.session < 0 || req.session >= 16 ||
          !state_->sessions[req.session]) {
        return {};
      }
      const FunctionId set =
          *compact_rt_->TryLookup("counter", "set_session");
      return {{set,
               msg::Args{msg::MsgValue(req.session),
                         msg::MsgValue(state_->session_sum[req.session])}}};
    };
  }

  void SetRuntimeForHook(core::Runtime* rt) { compact_rt_ = rt; }

 private:
  struct State {
    std::int64_t value = 0;
    std::int64_t store_total = 0;
    bool sessions[16] = {};
    std::int64_t session_sum[16] = {};
  };
  State* state_ = nullptr;
  FunctionId store_add_ = -1;
  core::Runtime* compact_rt_ = nullptr;
  bool crash_armed_ = true;
};

/// Downstream stateful component; counts invocations so tests can prove the
/// encapsulated restoration never re-entered it.
class StoreComponent final : public comp::Component {
 public:
  StoreComponent()
      : Component("store", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("add", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 state_->calls++;
                 state_->total += args[0].i64();
                 return msg::MsgValue(state_->total);
               });
    ctx.Export("calls", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(state_->calls);
               });
    ctx.Export("total", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(state_->total);
               });
  }

 private:
  struct State {
    std::int64_t total = 0;
    std::int64_t calls = 0;
  };
  State* state_ = nullptr;
};

/// Stateless component whose counter demonstrably resets on reboot.
class TickerComponent final : public comp::Component {
 public:
  TickerComponent()
      : Component("ticker", comp::Statefulness::kStateless, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("tick", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(++*state_);
               });
  }

 private:
  std::int64_t* state_ = nullptr;
};

}  // namespace vampos::testing
