// RAMFS backend tests: the full VFS surface on the in-unikernel filesystem,
// and its recovery model — contents restored from the runtime-data vault,
// fid table rebuilt by replay — across component reboots and fault
// injection. Run both standalone and as the SQLite stack's backend.
#include <gtest/gtest.h>

#include "apps/minidb.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::MiniDb;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using testing::RunApp;

struct RamRig {
  RamRig() : rt(Opts()) {
    StackSpec spec = StackSpec::Sqlite();
    spec.ramfs = true;
    info = BuildStack(rt, platform, rings, spec);
    EXPECT_EQ(apps::BootAndMount(rt), 0);
    px = std::make_unique<Posix>(rt);
  }
  static RuntimeOptions Opts() {
    RuntimeOptions o;
    o.hang_threshold = 0;
    return o;
  }
  uk::Platform platform;  // unused by ramfs; required by stack assembly
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

TEST(RamFs, CreateWriteReadRoundTrip) {
  RamRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/r");
    ASSERT_GE(fd, 0);
    EXPECT_EQ(rig.px->Write(fd, "ram "), 4);
    EXPECT_EQ(rig.px->Write(fd, "disk"), 4);
    rig.px->Lseek(fd, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(fd, 64).data, "ram disk");
    rig.px->Close(fd);
    // Reopen: contents persist inside the component.
    const auto rd = rig.px->Open("/r");
    EXPECT_EQ(rig.px->Read(rd, 64).data, "ram disk");
    rig.px->Close(rd);
  });
}

TEST(RamFs, DirectoriesRenameUnlinkStat) {
  RamRig rig;
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->Mkdir("/d"), 0);
    const auto fd = rig.px->Create("/d/f");
    rig.px->Write(fd, "abc");
    rig.px->Close(fd);
    EXPECT_EQ(rig.px->StatPath("/d/f"), 3);
    auto listing = rig.px->Readdir("/d");
    ASSERT_TRUE(listing.ok());
    EXPECT_NE(listing.data.find("f\n"), std::string::npos);
    EXPECT_EQ(rig.px->Rename("/d/f", "/d/g"), 0);
    EXPECT_LT(rig.px->StatPath("/d/f"), 0);
    EXPECT_EQ(rig.px->StatPath("/d/g"), 3);
    EXPECT_EQ(rig.px->Unlink("/d/g"), 0);
    EXPECT_LT(rig.px->StatPath("/d/g"), 0);
  });
}

TEST(RamFs, GrowthAndTruncate) {
  RamRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/big");
    std::string chunk(1000, 'g');
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(rig.px->Write(fd, chunk), 1000);
    }
    EXPECT_EQ(rig.px->Lseek(fd, 0, Posix::kSeekEnd), 50000);
    EXPECT_EQ(rig.px->Ftruncate(fd, 123), 0);
    rig.px->Lseek(fd, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(fd, 1 << 20).data.size(), 123u);
    rig.px->Close(fd);
  });
}

TEST(RamFs, FileSizeLimitEnforced) {
  RamRig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/cap");
    const std::string big(300 * 1024, 'x');  // over the 256 KiB cap
    EXPECT_LT(rig.px->Write(fd, big), 0);
    rig.px->Close(fd);
  });
}

TEST(RamFs, ContentsSurviveRamfsReboot) {
  RamRig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/persist");
    rig.px->Write(fd, "before-");
  });
  // Reboot the RAMFS component itself: contents come back from the vault,
  // the open fid from replay.
  ASSERT_TRUE(rig.rt.Reboot(rig.info.ninep).ok());
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->Write(fd, "after"), 5);
    rig.px->Lseek(fd, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(fd, 64).data, "before-after");
    rig.px->Close(fd);
  });
}

TEST(RamFs, SurvivesBothFsAndVfsReboots) {
  RamRig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/both");
    rig.px->Write(fd, "1");
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.info.vfs).ok());
  ASSERT_TRUE(rig.rt.Reboot(rig.info.ninep).ok());
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->Write(fd, "2"), 1);
    rig.px->Lseek(fd, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(fd, 8).data, "12");
    rig.px->Close(fd);
  });
}

TEST(RamFs, FaultInjectionRecovers) {
  RamRig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/faulty");
    rig.px->Write(fd, "x");
  });
  rig.rt.InjectFault(rig.info.ninep, FaultKind::kPanic);
  RunApp(rig.rt, [&] { EXPECT_EQ(rig.px->Write(fd, "y"), 1); });
  EXPECT_EQ(rig.rt.Stats().reboots, 1u);
  EXPECT_FALSE(rig.rt.terminal_fault().has_value());
  RunApp(rig.rt, [&] {
    rig.px->Lseek(fd, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(fd, 8).data, "xy");
    rig.px->Close(fd);
  });
}

TEST(RamFs, MiniDbRunsOnRamfs) {
  RamRig rig;
  RunApp(rig.rt, [&] {
    MiniDb db(*rig.px, "/db", /*fsync_each=*/true);
    ASSERT_TRUE(db.Open());
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(db.Insert("k" + std::to_string(i), "v"), 0);
    }
    db.Close();
    MiniDb db2(*rig.px, "/db");
    EXPECT_EQ(db2.ReplayJournal(), 50u);
  });
}

}  // namespace
}  // namespace vampos
