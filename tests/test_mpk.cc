// MPK simulation tests: PKRU semantics, key assignment/exhaustion, checked
// accessors, violation attribution, and merged-key tagging.
#include <gtest/gtest.h>

#include "mem/arena.h"
#include "mpk/mpk.h"

namespace vampos::mpk {
namespace {

TEST(Pkru, AllDeniedAllowsOnlyKeyZero) {
  const Pkru p = Pkru::AllDenied();
  EXPECT_TRUE(p.CanRead(kDefaultKey));
  EXPECT_TRUE(p.CanWrite(kDefaultKey));
  for (Key k = 1; k < kNumKeys; ++k) {
    EXPECT_FALSE(p.CanRead(k));
    EXPECT_FALSE(p.CanWrite(k));
  }
}

TEST(Pkru, AllowReadOnly) {
  Pkru p = Pkru::AllDenied();
  p.Allow(5, /*write=*/false);
  EXPECT_TRUE(p.CanRead(5));
  EXPECT_FALSE(p.CanWrite(5));
  p.Allow(5, /*write=*/true);
  EXPECT_TRUE(p.CanWrite(5));
  p.Deny(5);
  EXPECT_FALSE(p.CanRead(5));
}

TEST(DomainManager, AssignsDistinctKeys) {
  DomainManager dm;
  mem::Arena a(4096), b(4096);
  auto ka = dm.AssignKey(a, "a");
  auto kb = dm.AssignKey(b, "b");
  ASSERT_TRUE(ka.has_value());
  ASSERT_TRUE(kb.has_value());
  EXPECT_NE(*ka, *kb);
  EXPECT_EQ(dm.KeyFor(a.base()), *ka);
  EXPECT_EQ(dm.KeyFor(b.base()), *kb);
}

TEST(DomainManager, SixteenKeyLimit) {
  DomainManager dm;
  std::vector<std::unique_ptr<mem::Arena>> arenas;
  int assigned = 0;
  for (int i = 0; i < 20; ++i) {
    arenas.push_back(std::make_unique<mem::Arena>(4096));
    if (dm.AssignKey(*arenas.back(), "x").has_value()) assigned++;
  }
  // Key 0 is reserved, so 15 assignable keys — the paper's 16-key budget.
  EXPECT_EQ(assigned, 15);
}

TEST(DomainManager, KeyVirtualizationSharesWhenExhausted) {
  DomainManager dm;
  dm.EnableKeyVirtualization();
  std::vector<std::unique_ptr<mem::Arena>> arenas;
  std::vector<Key> keys;
  for (int i = 0; i < 30; ++i) {
    arenas.push_back(std::make_unique<mem::Arena>(4096));
    auto k = dm.AssignKey(*arenas.back(), "x" + std::to_string(i));
    ASSERT_TRUE(k.has_value());
    keys.push_back(*k);
  }
  // The first 15 are unique; the overflow shares evenly.
  EXPECT_EQ(dm.shared_key_assignments(), 15u);
  // Sharing is balanced: every physical key hosts exactly two domains.
  int counts[kNumKeys] = {};
  for (Key k : keys) counts[k]++;
  for (Key k = 1; k < kNumKeys; ++k) EXPECT_EQ(counts[k], 2) << int(k);
  // Isolation between different physical keys still holds.
  Pkru only_first = Pkru::AllDenied();
  only_first.Allow(keys[0], /*write=*/true);
  dm.WritePkru(only_first);
  char c = 0;
  dm.CheckedWrite(1, arenas[0]->base(), &c, 1);
  EXPECT_THROW(dm.CheckedWrite(1, arenas[1]->base(), &c, 1), ComponentFault);
}

TEST(DomainManager, OverflowDomainSharesLeastPopulatedKey) {
  DomainManager dm;
  dm.EnableKeyVirtualization();
  std::vector<std::unique_ptr<mem::Arena>> arenas;
  std::vector<Key> keys;
  // 15 domains exhaust the hardware budget (key 0 reserved) with unique keys.
  for (int i = 0; i < 15; ++i) {
    arenas.push_back(std::make_unique<mem::Arena>(4096));
    keys.push_back(*dm.AssignKey(*arenas.back(), "d" + std::to_string(i)));
  }
  EXPECT_EQ(dm.shared_key_assignments(), 0u);
  // The 16th domain shares the least-populated physical key; the 17th takes
  // the next one, so sharing stays balanced.
  arenas.push_back(std::make_unique<mem::Arena>(4096));
  const Key shared = *dm.AssignKey(*arenas.back(), "overflow-1");
  EXPECT_EQ(dm.shared_key_assignments(), 1u);
  EXPECT_EQ(shared, keys[0]);
  arenas.push_back(std::make_unique<mem::Arena>(4096));
  const Key shared2 = *dm.AssignKey(*arenas.back(), "overflow-2");
  EXPECT_EQ(dm.shared_key_assignments(), 2u);
  EXPECT_NE(shared2, shared);

  // Same-key isolation degrades by design: a PKRU that opens the shared key
  // reaches both the original domain's arena and the overflow's...
  Pkru open_shared = Pkru::AllDenied();
  open_shared.Allow(shared, /*write=*/true);
  dm.WritePkru(open_shared);
  char c = 0;
  dm.CheckedWrite(1, arenas[0]->base(), &c, 1);
  dm.CheckedWrite(1, arenas[15]->base(), &c, 1);
  // ...while domains on distinct physical keys stay isolated.
  EXPECT_THROW(dm.CheckedWrite(1, arenas[1]->base(), &c, 1), ComponentFault);
}

TEST(DomainManager, UntagArenaReleasesTheRegion) {
  DomainManager dm;
  mem::Arena a(4096, "transient");
  const Key key = *dm.AssignKey(a, "transient");
  EXPECT_EQ(dm.KeyFor(a.base()), key);
  dm.UntagArena(a);
  EXPECT_EQ(dm.KeyFor(a.base()), kDefaultKey);
  // The bytes can be re-tagged (variant swap re-uses the group's key).
  dm.TagArena(a, key, "transient+variant");
  EXPECT_EQ(dm.KeyFor(a.base()), key);
}

TEST(DomainManagerDeathTest, OverlappingTagAborts) {
  DomainManager dm;
  mem::Arena a(4096, "claimed");
  (void)dm.AssignKey(a, "claimed");
  // A second domain claiming the same bytes is a runtime bug, not a
  // component fault: it aborts.
  EXPECT_DEATH(dm.TagArena(a, 3, "dup"), "overlap");
}

TEST(DomainManager, KeyForRangeBoundaries) {
  DomainManager dm;
  mem::Arena a(4096, "edges");
  const Key key = *dm.AssignKey(a, "edges");
  EXPECT_EQ(dm.KeyFor(a.base()), key);
  EXPECT_EQ(dm.KeyFor(a.base() + a.size() / 2), key);
  EXPECT_EQ(dm.KeyFor(a.base() + a.size() - 1), key);
  EXPECT_EQ(dm.KeyFor(a.base() + a.size()), kDefaultKey);  // one past end
}

TEST(DomainManager, UntaggedMemoryIsKeyZero) {
  DomainManager dm;
  int local = 0;
  EXPECT_EQ(dm.KeyFor(&local), kDefaultKey);
  // Always accessible.
  dm.WritePkru(Pkru::AllDenied());
  dm.CheckAccess(0, &local, sizeof(local), /*write=*/true);
}

TEST(DomainManager, CheckedAccessEnforcesPkru) {
  DomainManager dm;
  mem::Arena a(4096, "victim");
  const Key key = *dm.AssignKey(a, "victim");

  Pkru allowed = Pkru::AllDenied();
  allowed.Allow(key, /*write=*/true);
  dm.WritePkru(allowed);
  char buf[8] = "hello!!";
  dm.CheckedWrite(1, a.base(), buf, 8);
  char out[8] = {};
  dm.CheckedRead(1, a.base(), out, 8);
  EXPECT_STREQ(out, "hello!!");

  dm.WritePkru(Pkru::AllDenied());
  EXPECT_THROW(dm.CheckedWrite(1, a.base(), buf, 8), ComponentFault);
  EXPECT_THROW(dm.CheckedRead(1, a.base(), out, 8), ComponentFault);
}

TEST(DomainManager, ReadOnlyDeniesWrite) {
  DomainManager dm;
  mem::Arena a(4096, "ro");
  const Key key = *dm.AssignKey(a, "ro");
  Pkru ro = Pkru::AllDenied();
  ro.Allow(key, /*write=*/false);
  dm.WritePkru(ro);
  char c = 0;
  dm.CheckedRead(2, a.base(), &c, 1);  // ok
  EXPECT_THROW(dm.CheckedWrite(2, a.base(), &c, 1), ComponentFault);
}

TEST(DomainManager, ViolationCarriesActorAndKind) {
  DomainManager dm;
  mem::Arena a(4096, "target-arena");
  (void)dm.AssignKey(a, "target-arena");
  dm.WritePkru(Pkru::AllDenied());
  char c = 1;
  try {
    dm.CheckedWrite(7, a.base(), &c, 1);
    FAIL() << "expected ComponentFault";
  } catch (const ComponentFault& fault) {
    EXPECT_EQ(fault.component(), 7);
    EXPECT_EQ(fault.kind(), FaultKind::kMpkViolation);
    EXPECT_NE(fault.detail().find("target-arena"), std::string::npos);
  }
}

TEST(DomainManager, StraddlingRangeDenied) {
  DomainManager dm;
  mem::Arena a(4096, "edge");
  const Key key = *dm.AssignKey(a, "edge");
  Pkru allowed = Pkru::AllDenied();
  allowed.Allow(key, /*write=*/true);
  dm.WritePkru(allowed);
  char buf[16] = {};
  // Write that runs past the end of the tagged region.
  EXPECT_THROW(
      dm.CheckedWrite(1, a.base() + a.size() - 8, buf, 16), ComponentFault);
}

TEST(DomainManager, SharedKeyForMergedComponents) {
  DomainManager dm;
  mem::Arena a(4096, "vfs"), b(4096, "9pfs");
  const Key key = *dm.AssignKey(a, "vfs");
  dm.TagArena(b, key, "9pfs");  // merged group shares one tag
  Pkru allowed = Pkru::AllDenied();
  allowed.Allow(key, /*write=*/true);
  dm.WritePkru(allowed);
  char c = 2;
  dm.CheckedWrite(1, a.base(), &c, 1);
  dm.CheckedWrite(1, b.base(), &c, 1);  // same key covers both
}

TEST(DomainManager, CountsPkruWrites) {
  DomainManager dm;
  const auto before = dm.PkruWrites();
  dm.WritePkru(Pkru::AllDenied());
  dm.WritePkru(Pkru::AllDenied());
  EXPECT_EQ(dm.PkruWrites(), before + 2);
}

}  // namespace
}  // namespace vampos::mpk
