// vampcheck dynamic-prong tests: shadow ownership map, cross-domain
// pointer-leak detection (offender-only reboot), wait-for-graph deadlock
// detection, and the zero-overhead-when-off guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "check/isolation_checker.h"
#include "testing.h"

namespace vampos {
namespace {

using check::IsolationChecker;
using core::Runtime;
using core::RuntimeOptions;
using msg::Args;
using msg::MsgValue;

std::int64_t AsWord(const void* ptr) {
  return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(ptr));
}

// --------------------------------------------------- shadow ownership map

TEST(CheckerRegions, OverlapRecordedFirstClaimWins) {
  IsolationChecker checker;
  alignas(8) char buf[128];
  checker.RegisterRegion(1, buf, 64, "a");
  checker.RegisterRegion(2, buf + 32, 64, "b");
  EXPECT_EQ(checker.regions(), 1u);
  ASSERT_EQ(checker.ownership_violations().size(), 1u);
  const std::string& v = checker.ownership_violations()[0];
  EXPECT_NE(v.find("'b'"), std::string::npos);
  EXPECT_NE(v.find("'a'"), std::string::npos);
}

TEST(CheckerRegions, AdjacentRegionsDoNotOverlap) {
  IsolationChecker checker;
  alignas(8) char buf[128];
  checker.RegisterRegion(1, buf, 64, "lo");
  checker.RegisterRegion(2, buf + 64, 64, "hi");
  EXPECT_EQ(checker.regions(), 2u);
  EXPECT_TRUE(checker.ownership_violations().empty());
}

TEST(CheckerRegions, UnregisterReleasesTheClaim) {
  IsolationChecker checker;
  alignas(8) char buf[64];
  checker.RegisterRegion(1, buf, 64, "first");
  checker.UnregisterRegion(buf);
  EXPECT_EQ(checker.regions(), 0u);
  // The bytes can be reclaimed by a successor domain (variant swap).
  checker.RegisterRegion(2, buf, 64, "second");
  EXPECT_EQ(checker.regions(), 1u);
  EXPECT_TRUE(checker.ownership_violations().empty());
}

// ------------------------------------------------------- payload scanning

TEST(CheckerScan, ForeignPointerInIntegerThrows) {
  IsolationChecker checker;
  static char target[256];
  checker.RegisterRegion(7, target, sizeof(target), "victim-arena");
  try {
    checker.ScanPayload(3, 3, Args{MsgValue(AsWord(target + 8))});
    FAIL() << "expected ComponentFault";
  } catch (const ComponentFault& fault) {
    EXPECT_EQ(fault.component(), 3);
    EXPECT_EQ(fault.kind(), FaultKind::kMpkViolation);
    EXPECT_NE(fault.detail().find("victim-arena"), std::string::npos);
  }
  EXPECT_EQ(checker.leaks_detected(), 1u);
}

TEST(CheckerScan, OwnDomainPointerIsAllowed) {
  IsolationChecker checker;
  static char mine[256];
  checker.RegisterRegion(7, mine, sizeof(mine), "own-arena");
  checker.ScanPayload(7, 7, Args{MsgValue(AsWord(mine + 16))});
  EXPECT_EQ(checker.leaks_detected(), 0u);
}

TEST(CheckerScan, PointerSmuggledInsideBytesAtOddOffset) {
  IsolationChecker checker;
  static char target[256];
  checker.RegisterRegion(9, target, sizeof(target), "victim-arena");
  // A struct copied wholesale: 3 junk bytes, then a raw pointer.
  std::string payload(3, '\x5a');
  const std::uint64_t word =
      static_cast<std::uint64_t>(AsWord(target + 32));
  payload.append(reinterpret_cast<const char*>(&word), sizeof(word));
  payload.append(2, '\x5a');
  EXPECT_THROW(checker.ScanPayload(4, 4, Args{MsgValue(payload)}),
               ComponentFault);
  EXPECT_EQ(checker.leaks_detected(), 1u);
}

TEST(CheckerScan, BenignPayloadsPass) {
  IsolationChecker checker;
  static char target[256];
  checker.RegisterRegion(7, target, sizeof(target), "victim-arena");
  checker.ScanPayload(
      3, 3,
      Args{MsgValue(std::int64_t{42}), MsgValue("hello world, nothing here"),
           MsgValue(std::int64_t{-1})});
  EXPECT_EQ(checker.leaks_detected(), 0u);
  EXPECT_GT(checker.values_scanned(), 0u);
}

// ------------------------------------------------------- wait-for graph

TEST(CheckerWaitGraph, ClosingChainIsReportedAsCycle) {
  IsolationChecker checker;
  checker.AddWait(1, 10, 20);
  checker.AddWait(2, 20, 30);
  EXPECT_EQ(checker.wait_edges(), 2u);
  try {
    checker.CheckCallCycle(30, 10);
    FAIL() << "expected ComponentFault";
  } catch (const ComponentFault& fault) {
    EXPECT_EQ(fault.component(), 30);
    EXPECT_EQ(fault.kind(), FaultKind::kDeadlock);
    EXPECT_NE(fault.detail().find("wait-for cycle"), std::string::npos);
    EXPECT_NE(fault.detail().find("comp10"), std::string::npos);
    EXPECT_NE(fault.detail().find("comp30"), std::string::npos);
  }
  EXPECT_EQ(checker.deadlocks_detected(), 1u);
}

TEST(CheckerWaitGraph, ForwardCallDoesNotCycle) {
  IsolationChecker checker;
  checker.AddWait(1, 10, 20);
  checker.AddWait(2, 20, 30);
  checker.CheckCallCycle(10, 30);  // same direction as the chain: fine
  EXPECT_EQ(checker.deadlocks_detected(), 0u);
}

TEST(CheckerWaitGraph, RemovedEdgeBreaksTheCycle) {
  IsolationChecker checker;
  checker.AddWait(1, 10, 20);
  checker.AddWait(2, 20, 30);
  checker.RemoveWait(2);
  EXPECT_EQ(checker.wait_edges(), 1u);
  checker.CheckCallCycle(30, 10);  // 20 -> 30 is gone: no path back
  EXPECT_EQ(checker.deadlocks_detected(), 0u);
}

TEST(CheckerWaitGraph, AppCallersAreNeverEdges) {
  IsolationChecker checker;
  checker.AddWait(1, kComponentNone, 20);
  EXPECT_EQ(checker.wait_edges(), 0u);
}

// ------------------------------------------- runtime integration: leaks

/// Leaks a raw pointer into another component's arena exactly once; the
/// one-shot flag lives in the C++ object (outside the arena) so the
/// post-reboot retry of the same message takes the benign path — the
/// non-deterministic fault of the paper's model.
class LeakyComponent final : public comp::Component {
 public:
  LeakyComponent()
      : Component("leaky", comp::Statefulness::kStateful, 64 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("go", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const Args&) {
                 ++*state_;
                 std::int64_t payload = 1;
                 if (leak_armed_) {
                   leak_armed_ = false;
                   payload = AsWord(leak_target_);
                 }
                 if (sink_recv_ >= 0) {
                   (void)c.Call(sink_recv_, {MsgValue(payload)});
                 }
                 return MsgValue(std::int64_t{0});
               });
  }

  void Bind(comp::InitCtx& ctx) override {
    sink_recv_ = ctx.TryImport("sink", "recv").value_or(-1);
  }

  void set_leak_target(const void* ptr) { leak_target_ = ptr; }

 private:
  std::int64_t* state_ = nullptr;
  FunctionId sink_recv_ = -1;
  const void* leak_target_ = nullptr;
  bool leak_armed_ = true;
};

class SinkComponent final : public comp::Component {
 public:
  SinkComponent()
      : Component("sink", comp::Statefulness::kStateful, 64 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("recv", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const Args&) {
                 // Count only: echoing the received value back would leak
                 // the pointer a second time, from the sink.
                 return MsgValue(++*state_);
               });
  }

 private:
  std::int64_t* state_ = nullptr;
};

TEST(CheckerRuntime, PointerLeakRebootsOnlyTheOffender) {
  RuntimeOptions opt;
  opt.isolation_check = true;
  opt.tracing = true;
  Runtime rt(opt);
  auto leaky_ptr = std::make_unique<LeakyComponent>();
  LeakyComponent* leaky = leaky_ptr.get();
  const ComponentId leaky_id = rt.AddComponent(std::move(leaky_ptr));
  const ComponentId sink_id = rt.AddComponent(std::make_unique<SinkComponent>());
  rt.Boot();
  leaky->set_leak_target(rt.component(sink_id).arena().base() + 64);

  const FunctionId go = rt.Lookup("leaky", "go");
  MsgValue ret;
  testing::RunApp(rt, [&] { ret = rt.Call(go, {}); });

  // The leak faulted the *sender*; its reboot retried the request, whose
  // second execution was benign. The sink was never disturbed.
  const auto stats = rt.Stats();
  EXPECT_EQ(stats.reboots, 1u);
  ASSERT_EQ(rt.reboot_history().size(), 1u);
  EXPECT_EQ(rt.reboot_history()[0].name, "leaky");
  EXPECT_EQ(rt.reboot_history()[0].component, leaky_id);
  EXPECT_FALSE(rt.terminal_fault().has_value());
  EXPECT_TRUE(ret.is_i64());

  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_EQ(rt.checker()->leaks_detected(), 1u);
  EXPECT_EQ(rt.checker()->deadlocks_detected(), 0u);
  EXPECT_EQ(rt.checker()->wait_edges(), 0u);

  bool traced = false;
  for (const obs::TraceEvent& e : rt.recorder().Snapshot()) {
    if (e.kind == obs::EventKind::kPtrLeakDetected) {
      traced = true;
      EXPECT_EQ(e.comp, leaky_id);
    }
  }
  EXPECT_TRUE(traced);
}

// --------------------------------------- runtime integration: deadlock

/// alpha.start blocks on beta.poke, whose handler calls back into
/// alpha.start: a two-party reply cycle the hang detector would only catch
/// by timeout, but the wait-for graph catches at push time.
class AlphaComponent final : public comp::Component {
 public:
  AlphaComponent()
      : Component("alpha", comp::Statefulness::kStateful, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("start", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const Args&) {
                 ++*state_;
                 if (poke_ >= 0) return c.Call(poke_, {});
                 return MsgValue(std::int64_t{0});
               });
  }
  void Bind(comp::InitCtx& ctx) override {
    poke_ = ctx.TryImport("beta", "poke").value_or(-1);
  }

 private:
  std::int64_t* state_ = nullptr;
  FunctionId poke_ = -1;
};

class BetaComponent final : public comp::Component {
 public:
  BetaComponent()
      : Component("beta", comp::Statefulness::kStateful, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("poke", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const Args&) {
                 ++*state_;
                 if (start_ >= 0) return c.Call(start_, {});
                 return MsgValue(std::int64_t{0});
               });
  }
  void Bind(comp::InitCtx& ctx) override {
    start_ = ctx.TryImport("alpha", "start").value_or(-1);
  }

 private:
  std::int64_t* state_ = nullptr;
  FunctionId start_ = -1;
};

TEST(CheckerRuntime, ReplyCycleIsCaughtAsDeadlockFault) {
  RuntimeOptions opt;
  opt.isolation_check = true;
  opt.tracing = true;
  Runtime rt(opt);
  (void)rt.AddComponent(std::make_unique<AlphaComponent>());
  const ComponentId beta = rt.AddComponent(std::make_unique<BetaComponent>());
  rt.Boot();

  const FunctionId start = rt.Lookup("alpha", "start");
  testing::RunApp(rt, [&] { (void)rt.Call(start, {}); });

  // beta closed the cycle and was rebooted once; the retried request closed
  // it again (alpha is still blocked) — a deterministic fault, so the
  // runtime fail-stopped with the cycle spelled out.
  ASSERT_TRUE(rt.terminal_fault().has_value());
  EXPECT_EQ(rt.terminal_fault()->kind(), FaultKind::kDeadlock);
  EXPECT_EQ(rt.terminal_fault()->component(), beta);
  EXPECT_NE(rt.terminal_fault()->detail().find("alpha"), std::string::npos);
  EXPECT_NE(rt.terminal_fault()->detail().find("beta"), std::string::npos);
  EXPECT_EQ(rt.Stats().reboots, 1u);

  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_EQ(rt.checker()->deadlocks_detected(), 2u);
  // Every blocked caller was unwound by the fail-stop: no stale edges.
  EXPECT_EQ(rt.checker()->wait_edges(), 0u);

  bool traced = false;
  for (const obs::TraceEvent& e : rt.recorder().Snapshot()) {
    traced = traced || e.kind == obs::EventKind::kDeadlockDetected;
  }
  EXPECT_TRUE(traced);
}

// ------------------------------------------------ overhead when disabled

std::int64_t RunCounterWorkload(Runtime& rt) {
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  const FunctionId get = rt.Lookup("counter", "get");
  std::int64_t observed = 0;
  testing::RunApp(rt, [&] {
    for (int i = 0; i < 32; ++i) (void)rt.Call(inc, {});
    observed = rt.Call(get, {}).i64();
  });
  return observed;
}

TEST(CheckerRuntime, DisabledCheckerIsNullAndChangesNothing) {
  // Off by default: the runtime holds no checker object at all — the whole
  // feature is one pointer test on the hot path.
  Runtime off;  // default options
  EXPECT_EQ(off.checker(), nullptr);
  (void)off.AddComponent(std::make_unique<testing::CounterComponent>());
  const std::int64_t off_value = RunCounterWorkload(off);

  RuntimeOptions opt;
  opt.isolation_check = true;
  Runtime on(opt);
  ASSERT_NE(on.checker(), nullptr);
  (void)on.AddComponent(std::make_unique<testing::CounterComponent>());
  const std::int64_t on_value = RunCounterWorkload(on);

  // Identical results and identical message-plane behavior: the checker
  // observes, it never alters traffic.
  EXPECT_EQ(off_value, on_value);
  const auto a = off.Stats();
  const auto b = on.Stats();
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.log_appends, b.log_appends);
  EXPECT_EQ(a.reboots, 0u);
  EXPECT_EQ(b.reboots, 0u);
  EXPECT_GT(on.checker()->payload_scans(), 0u);
  EXPECT_EQ(on.checker()->leaks_detected(), 0u);
}

// ----------------------------------------------------- full-stack smoke

TEST(CheckerRuntime, CleanWorkloadRaisesNoFalsePositives) {
  RuntimeOptions opt;
  opt.isolation_check = true;
  Runtime rt(opt);
  auto counter = std::make_unique<testing::CounterComponent>();
  counter->SetRuntimeForHook(&rt);
  (void)rt.AddComponent(std::move(counter));
  (void)rt.AddComponent(std::make_unique<testing::StoreComponent>());
  rt.Boot();

  // Every component arena plus the message domain is claimed, exactly once.
  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_EQ(rt.checker()->regions(), 3u);
  EXPECT_TRUE(rt.checker()->ownership_violations().empty());

  const FunctionId inc = rt.Lookup("counter", "inc");
  const FunctionId open = rt.Lookup("counter", "open_session");
  const FunctionId add = rt.Lookup("counter", "add_session");
  const FunctionId close = rt.Lookup("counter", "close_session");
  testing::RunApp(rt, [&] {
    for (int i = 0; i < 16; ++i) (void)rt.Call(inc, {});
    const std::int64_t s = rt.Call(open, {}).i64();
    for (int i = 0; i < 8; ++i) {
      (void)rt.Call(add, {MsgValue(s), MsgValue(std::int64_t{2})});
    }
    (void)rt.Call(close, {MsgValue(s)});
  });

  EXPECT_FALSE(rt.terminal_fault().has_value());
  EXPECT_EQ(rt.Stats().reboots, 0u);
  EXPECT_EQ(rt.checker()->leaks_detected(), 0u);
  EXPECT_EQ(rt.checker()->deadlocks_detected(), 0u);
  EXPECT_EQ(rt.checker()->wait_edges(), 0u);
  EXPECT_GT(rt.checker()->payload_scans(), 0u);
}

}  // namespace
}  // namespace vampos
