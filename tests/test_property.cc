// Property-based integration tests: random POSIX operation sequences run
// against a shadow model, with component reboots injected at random points.
// The invariant under test is the paper's core claim — a component-level
// reboot with encapsulated restoration is invisible to the application:
// every read returns exactly what the shadow model predicts, and the final
// host-side file contents match, regardless of where reboots landed.
//
// Parameterized over (seed x scheduling/merge configuration) and run with a
// small compaction threshold so threshold-triggered log shrinking is
// exercised constantly.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "base/rng.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using core::SchedPolicy;

enum class Cfg { kDaS, kNoop, kFSm };

struct Shadow {
  struct Fd {
    std::string path;
    std::int64_t offset = 0;
  };
  std::map<std::string, std::string> files;
  std::map<std::int64_t, Fd> fds;
};

class FilePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Cfg>> {};

TEST_P(FilePropertyTest, RandomOpsWithRebootsMatchShadow) {
  const auto [seed, cfg] = GetParam();
  RuntimeOptions opts;
  opts.mode = Mode::kVampOS;
  opts.policy =
      cfg == Cfg::kNoop ? SchedPolicy::kRoundRobin : SchedPolicy::kDependencyAware;
  opts.log_shrink_threshold = 12;  // force frequent compaction
  opts.hang_threshold = 0;

  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(opts);
  StackSpec spec = StackSpec::Sqlite();
  spec.merge_fs = (cfg == Cfg::kFSm);
  StackInfo info = BuildStack(rt, platform, rings, spec);
  apps::BootAndMount(rt);
  Posix px(rt);

  Rng rng(seed);
  Shadow shadow;
  const std::vector<std::string> paths = {"/p0", "/p1", "/p2", "/p3"};
  int reboots_done = 0;

  constexpr int kOps = 300;
  for (int op = 0; op < kOps; ++op) {
    // Random reboot between operations, ~1 in 12.
    if (rng.Chance(1, 12)) {
      const ComponentId target = rng.Chance(1, 2) ? info.vfs : info.ninep;
      auto result = rt.Reboot(target);
      ASSERT_TRUE(result.ok()) << result.status().message();
      reboots_done++;
    }

    bool ok = true;
    std::string why;
    testing::RunApp(rt, [&] {
      switch (rng.Below(7)) {
        case 0: {  // open or create
          if (shadow.fds.size() >= 8) break;
          const std::string& path = paths[rng.Below(paths.size())];
          const bool creat = rng.Chance(1, 2);
          const std::int64_t fd =
              creat ? px.Open(path, Posix::kOCreat) : px.Open(path);
          const bool exists = shadow.files.contains(path);
          if (!exists && !creat) {
            if (fd >= 0) {
              ok = false;
              why = "open of missing file succeeded";
            }
            break;
          }
          if (fd < 0) {
            ok = false;
            why = "open failed: " + path;
            break;
          }
          if (!exists) shadow.files[path] = "";
          shadow.fds[fd] = Shadow::Fd{path, 0};
          break;
        }
        case 1: {  // write
          if (shadow.fds.empty()) break;
          auto it = std::next(shadow.fds.begin(),
                              rng.Below(shadow.fds.size()));
          std::string data(rng.Range(1, 64), 'a' + (op % 26));
          const std::int64_t n = px.Write(it->first, data);
          if (n != static_cast<std::int64_t>(data.size())) {
            ok = false;
            why = "short write";
            break;
          }
          std::string& file = shadow.files[it->second.path];
          const auto off = static_cast<std::size_t>(it->second.offset);
          if (file.size() < off + data.size()) {
            file.resize(off + data.size());
          }
          file.replace(off, data.size(), data);
          it->second.offset += n;
          break;
        }
        case 2: {  // read + compare with shadow
          if (shadow.fds.empty()) break;
          auto it = std::next(shadow.fds.begin(),
                              rng.Below(shadow.fds.size()));
          const auto len = rng.Range(1, 64);
          auto r = px.Read(it->first, len);
          const std::string& file = shadow.files[it->second.path];
          const auto off = static_cast<std::size_t>(it->second.offset);
          const std::string expect =
              off >= file.size()
                  ? ""
                  : file.substr(off, static_cast<std::size_t>(len));
          if (!r.ok() || r.data != expect) {
            ok = false;
            why = "read mismatch on " + it->second.path + ": got '" +
                  r.data + "' want '" + expect + "'";
            break;
          }
          it->second.offset += static_cast<std::int64_t>(r.data.size());
          break;
        }
        case 3: {  // lseek
          if (shadow.fds.empty()) break;
          auto it = std::next(shadow.fds.begin(),
                              rng.Below(shadow.fds.size()));
          const std::string& file = shadow.files[it->second.path];
          const auto target = rng.Range(
              0, static_cast<std::int64_t>(file.size()) + 4);
          const std::int64_t got =
              px.Lseek(it->first, target, Posix::kSeekSet);
          if (got != target) {
            ok = false;
            why = "lseek mismatch";
            break;
          }
          it->second.offset = target;
          break;
        }
        case 4: {  // close
          if (shadow.fds.empty()) break;
          auto it = std::next(shadow.fds.begin(),
                              rng.Below(shadow.fds.size()));
          if (px.Close(it->first) != 0) {
            ok = false;
            why = "close failed";
            break;
          }
          shadow.fds.erase(it);
          break;
        }
        case 5: {  // fsync
          if (shadow.fds.empty()) break;
          auto it = std::next(shadow.fds.begin(),
                              rng.Below(shadow.fds.size()));
          px.Fsync(it->first);
          break;
        }
        default: {  // pread: must not move the offset
          if (shadow.fds.empty()) break;
          auto it = std::next(shadow.fds.begin(),
                              rng.Below(shadow.fds.size()));
          const std::string& file = shadow.files[it->second.path];
          if (file.empty()) break;
          const auto off = rng.Below(file.size());
          auto r = px.Pread(it->first, 8, static_cast<std::int64_t>(off));
          const std::string expect = file.substr(off, 8);
          if (!r.ok() || r.data != expect) {
            ok = false;
            why = "pread mismatch";
          }
          break;
        }
      }
    });
    ASSERT_TRUE(ok) << "op " << op << " (seed " << seed
                    << ", reboots so far " << reboots_done << "): " << why;
    ASSERT_FALSE(rt.terminal_fault().has_value());
  }

  // Final ground truth: host-side file contents equal the shadow's.
  for (const auto& [path, content] : shadow.files) {
    auto host = platform.ninep.ReadFile(path);
    ASSERT_TRUE(host.has_value()) << path;
    EXPECT_EQ(*host, content) << path << " (seed " << seed << ")";
  }
  EXPECT_GT(reboots_done, 0) << "seed never triggered a reboot";
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, FilePropertyTest,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 99u, 1234u, 777u),
                       ::testing::Values(Cfg::kDaS, Cfg::kNoop, Cfg::kFSm)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, Cfg>>& i) {
      const Cfg cfg = std::get<1>(i.param);
      const char* name = cfg == Cfg::kDaS    ? "DaS"
                         : cfg == Cfg::kNoop ? "Noop"
                                             : "FSm";
      return std::string(name) + "_seed" + std::to_string(std::get<0>(i.param));
    });

// Network property: random request/response exchanges over persistent
// connections with LWIP/NETDEV reboots injected; no connection may break
// and every response must match.
class NetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetPropertyTest, EchoStreamsSurviveTransportReboots) {
  RuntimeOptions opts;
  opts.hang_threshold = 0;
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(opts);
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Echo());
  apps::BootAndMount(rt);
  Posix px(rt);

  bool stop = false;
  rt.SpawnApp("echo", [&] {
    const auto lfd = px.Socket();
    px.Bind(lfd, 7);
    px.Listen(lfd);
    std::vector<std::int64_t> conns;
    while (!stop) {
      bool progress = false;
      while (true) {
        const auto fd = px.Accept(lfd);
        if (fd < 0) break;
        conns.push_back(fd);
        progress = true;
      }
      for (auto it = conns.begin(); it != conns.end();) {
        auto r = px.Recv(*it, 4096);
        if (r.ok() && !r.data.empty()) {
          px.Send(*it, r.data);
          progress = true;
          ++it;
        } else if (r.closed()) {
          px.Close(*it);
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
      if (!progress) rt.ParkApp();
    }
  });
  rt.RunUntilIdle();

  apps::SimClient client(&platform.net, 7);
  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  };

  Rng rng(GetParam());
  std::vector<int> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(client.Connect());
  pump(10);
  for (int h : handles) ASSERT_TRUE(client.Established(h));

  int reboots = 0;
  for (int round = 0; round < 60; ++round) {
    if (rng.Chance(1, 8)) {
      const ComponentId target =
          rng.Chance(1, 2) ? info.lwip : info.netdev;
      ASSERT_TRUE(rt.Reboot(target).ok());
      reboots++;
    }
    const int h = handles[rng.Below(handles.size())];
    std::string msg(rng.Range(1, 200), 'A' + (round % 26));
    client.Send(h, msg);
    pump(6);
    ASSERT_FALSE(client.Broken(h)) << "connection broke (round " << round
                                   << ", reboots " << reboots << ")";
    ASSERT_EQ(client.TakeReceived(h), msg) << "round " << round;
  }
  EXPECT_GT(reboots, 0);
  EXPECT_EQ(client.resets_seen(), 0u);
  stop = true;
  rt.UnparkApps();
  rt.RunUntilIdle();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetPropertyTest,
                         ::testing::Values(5u, 17u, 23u, 4242u));

}  // namespace
}  // namespace vampos
