// Memory subsystem tests: arena, buddy allocator (splitting, coalescing,
// exhaustion, fragmentation accounting, allocator-state-in-arena), snapshot
// capture/restore, and the arena-backed STL adaptors.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "base/rng.h"
#include "mem/arena.h"
#include "mem/arena_stl.h"
#include "mem/buddy_allocator.h"
#include "mem/snapshot.h"

namespace vampos::mem {
namespace {

TEST(Arena, RoundsUpToPageAndZeroFills) {
  Arena arena(1000, "t");
  EXPECT_EQ(arena.size(), 4096u);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_EQ(arena.base()[i], std::byte{0});
  }
}

TEST(Arena, ContainsAndOffsets) {
  Arena arena(8192);
  EXPECT_TRUE(arena.Contains(arena.base()));
  EXPECT_TRUE(arena.Contains(arena.base() + arena.size() - 1));
  EXPECT_FALSE(arena.Contains(arena.base() + arena.size()));
  EXPECT_FALSE(arena.Contains(arena.base() + arena.size() - 1, 2));
  void* p = arena.AtOffset(100);
  EXPECT_EQ(arena.OffsetOf(p), 100u);
}

TEST(Buddy, AllocatesAndFrees) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  void* a = alloc.Alloc(100);
  void* b = alloc.Alloc(200);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_TRUE(arena.Contains(a, 100));
  EXPECT_TRUE(arena.Contains(b, 200));
  alloc.Free(a);
  alloc.Free(b);
  EXPECT_EQ(alloc.Stats().bytes_in_use, 0u);
}

TEST(Buddy, RoundsToPowerOfTwoBlocks) {
  EXPECT_EQ(BuddyAllocator::BlockSizeFor(1), 64u);
  EXPECT_EQ(BuddyAllocator::BlockSizeFor(64), 64u);
  EXPECT_EQ(BuddyAllocator::BlockSizeFor(65), 128u);
  EXPECT_EQ(BuddyAllocator::BlockSizeFor(4096), 4096u);
  EXPECT_EQ(BuddyAllocator::BlockSizeFor(4097), 8192u);
}

TEST(Buddy, CoalescesOnFree) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  const std::size_t largest0 = alloc.LargestFreeBlock();
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(alloc.Alloc(64));
  EXPECT_LT(alloc.LargestFreeBlock(), largest0);
  for (void* b : blocks) alloc.Free(b);
  // Everything merged back into one maximal block.
  EXPECT_EQ(alloc.LargestFreeBlock(), largest0);
  EXPECT_EQ(alloc.TotalFreeBytes(), largest0);
}

TEST(Buddy, ExhaustionReturnsNull) {
  Arena arena(64 * 1024);
  BuddyAllocator alloc(arena);
  std::vector<void*> blocks;
  while (void* p = alloc.Alloc(1024)) blocks.push_back(p);
  EXPECT_GT(alloc.Stats().failed_allocs, 0u);
  EXPECT_EQ(alloc.Alloc(1), (void*)nullptr);  // fully fragmented into 1K
  for (void* b : blocks) alloc.Free(b);
  EXPECT_NE(alloc.Alloc(1024), nullptr);
}

TEST(Buddy, OversizeRequestFails) {
  Arena arena(64 * 1024);
  BuddyAllocator alloc(arena);
  EXPECT_EQ(alloc.Alloc(1 << 20), (void*)nullptr);
}

TEST(Buddy, AllocZeroedZeroes) {
  Arena arena(64 * 1024);
  BuddyAllocator alloc(arena);
  auto* p = static_cast<unsigned char*>(alloc.Alloc(256));
  std::memset(p, 0xAB, 256);
  alloc.Free(p);
  auto* q = static_cast<unsigned char*>(alloc.AllocZeroed(256));
  for (int i = 0; i < 256; ++i) EXPECT_EQ(q[i], 0);
}

TEST(Buddy, StatsTrackPeak) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  void* a = alloc.Alloc(1024);
  void* b = alloc.Alloc(1024);
  alloc.Free(a);
  alloc.Free(b);
  const auto stats = alloc.Stats();
  EXPECT_EQ(stats.alloc_calls, 2u);
  EXPECT_EQ(stats.free_calls, 2u);
  EXPECT_EQ(stats.bytes_peak, 2048u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(Buddy, AttachSeesExistingState) {
  Arena arena(1 << 20);
  void* p = nullptr;
  {
    BuddyAllocator alloc(arena);
    p = alloc.Alloc(512);
    std::memset(p, 0x5A, 512);
  }
  // Attach (not reformat): the allocation is still there.
  BuddyAllocator attached = BuddyAllocator::Attach(arena);
  EXPECT_EQ(attached.Stats().bytes_in_use, 512u);
  attached.Free(p);
  EXPECT_EQ(attached.Stats().bytes_in_use, 0u);
}

TEST(Buddy, FragmentationSignal) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  // Allocate many small blocks and free every other one: total free is
  // large but the largest free block stays small -> fragmentation.
  std::vector<void*> blocks;
  while (void* p = alloc.Alloc(64)) blocks.push_back(p);
  for (std::size_t i = 0; i < blocks.size(); i += 2) alloc.Free(blocks[i]);
  EXPECT_GT(alloc.TotalFreeBytes(), alloc.LargestFreeBlock());
  EXPECT_EQ(alloc.LargestFreeBlock(), 64u);
  for (std::size_t i = 1; i < blocks.size(); i += 2) alloc.Free(blocks[i]);
}

// Property: random alloc/free sequences never hand out overlapping blocks
// and always coalesce back to a single free region.
class BuddyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyProperty, RandomAllocFreeNeverOverlaps) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  const std::size_t full = alloc.LargestFreeBlock();
  Rng rng(GetParam());
  struct Block {
    std::byte* p;
    std::size_t size;
    unsigned char tag;
  };
  std::vector<Block> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Chance(3, 5)) {
      const auto size = static_cast<std::size_t>(rng.Range(1, 2048));
      auto* p = static_cast<std::byte*>(alloc.Alloc(size));
      if (p == nullptr) continue;
      const auto tag = static_cast<unsigned char>(rng.Below(256));
      std::memset(p, tag, size);
      live.push_back({p, size, tag});
    } else {
      const auto idx = rng.Below(live.size());
      Block b = live[idx];
      // Contents intact: nobody else was handed overlapping memory.
      for (std::size_t i = 0; i < b.size; ++i) {
        ASSERT_EQ(b.p[i], static_cast<std::byte>(b.tag));
      }
      alloc.Free(b.p);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (const Block& b : live) alloc.Free(b.p);
  EXPECT_EQ(alloc.Stats().bytes_in_use, 0u);
  EXPECT_EQ(alloc.LargestFreeBlock(), full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty,
                         ::testing::Values(1, 2, 3, 42, 1337, 99991));

// ------------------------------------------------------------- snapshots

TEST(Snapshot, RoundTripRestoresBytes) {
  Arena arena(64 * 1024);
  BuddyAllocator alloc(arena);
  auto* p = static_cast<char*>(alloc.Alloc(128));
  std::strcpy(p, "checkpoint me");
  Snapshot snap = Snapshot::Capture(arena);

  std::strcpy(p, "overwritten!!");
  alloc.Free(p);
  for (int i = 0; i < 10; ++i) (void)alloc.Alloc(512);  // churn + leak

  ASSERT_TRUE(snap.Restore(arena).ok());
  BuddyAllocator restored = BuddyAllocator::Attach(arena);
  EXPECT_STREQ(p, "checkpoint me");          // same address, old content
  EXPECT_EQ(restored.Stats().bytes_in_use, 128u);  // leaks rolled back
}

TEST(Snapshot, EmptyByDefault) {
  Snapshot snap;
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.size_bytes(), 0u);
}

TEST(Snapshot, SizeMatchesArena) {
  Arena arena(128 * 1024);
  Snapshot snap = Snapshot::Capture(arena);
  EXPECT_EQ(snap.size_bytes(), arena.size());
}

// ---------------------------------------------------------- STL adaptors

TEST(ArenaStl, VectorAndStringLiveInArena) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  {
    vector<int> v{ArenaStl<int>(&alloc)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_TRUE(arena.Contains(v.data(), v.size() * sizeof(int)));
    string s{ArenaStl<char>(&alloc)};
    s = "a moderately long string that defeats SSO for sure!";
    EXPECT_TRUE(arena.Contains(s.data(), s.size()));
  }
  EXPECT_EQ(alloc.Stats().bytes_in_use, 0u);  // destructors freed everything
}

TEST(ArenaStl, MapInArena) {
  Arena arena(1 << 20);
  BuddyAllocator alloc(arena);
  map<int, int> m{ArenaStl<std::pair<const int, int>>(&alloc)};
  for (int i = 0; i < 100; ++i) m[i] = i * i;
  EXPECT_EQ(m.at(9), 81);
  EXPECT_GT(alloc.Stats().bytes_in_use, 0u);
}

TEST(ArenaStl, ExhaustionThrowsComponentFault) {
  Arena arena(64 * 1024);
  BuddyAllocator alloc(arena);
  vector<char> v{ArenaStl<char>(&alloc)};
  EXPECT_THROW(v.resize(10 << 20), ComponentFault);
}

TEST(ArenaStl, NewInDestroyIn) {
  Arena arena(64 * 1024);
  BuddyAllocator alloc(arena);
  struct Obj {
    int x;
    explicit Obj(int v) : x(v) {}
  };
  Obj* o = NewIn<Obj>(alloc, 7);
  EXPECT_EQ(o->x, 7);
  EXPECT_TRUE(arena.Contains(o));
  DestroyIn(alloc, o);
  EXPECT_EQ(alloc.Stats().bytes_in_use, 0u);
}

}  // namespace
}  // namespace vampos::mem
