// Tests for the §VIII extensions: graceful termination hooks and
// multi-version component failover for deterministic bugs.
#include <gtest/gtest.h>

#include "core/rejuvenation.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Runtime;
using core::RuntimeOptions;
using msg::MsgValue;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;

RuntimeOptions Opts() {
  RuntimeOptions o;
  o.hang_threshold = 0;
  return o;
}

struct Rig {
  explicit Rig(RuntimeOptions opts = Opts()) : rt(opts) {
    store = rt.AddComponent(std::make_unique<StoreComponent>());
    auto cc = std::make_unique<CounterComponent>();
    counter_comp = cc.get();
    counter = rt.AddComponent(std::move(cc));
    rt.AddAppDependency(counter);
    rt.AddDependency(counter, store);
    counter_comp->SetRuntimeForHook(&rt);
  }
  Runtime rt;
  ComponentId store, counter;
  CounterComponent* counter_comp;
};

TEST(GracefulTermination, HookRunsAndUsesUndamagedComponents) {
  Rig rig;
  rig.rt.Boot();
  const FunctionId add = rig.rt.Lookup("store", "add");
  bool hook_ran = false;
  std::int64_t saved_via_store = -1;
  rig.rt.RegisterTerminationHook([&] {
    hook_ran = true;
    // The store is undamaged; the hook can still use it to save state.
    saved_via_store = rig.rt.Call(add, {MsgValue(std::int64_t{100})}).i64();
  });

  rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });

  EXPECT_TRUE(rig.rt.terminal_fault().has_value());
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(saved_via_store, 100);
}

TEST(GracefulTermination, HookCallToDeadComponentFailsFast) {
  Rig rig;
  rig.rt.Boot();
  const FunctionId get = rig.rt.Lookup("counter", "get");
  std::int64_t dead_result = 0;
  rig.rt.RegisterTerminationHook([&] {
    dead_result = rig.rt.Call(get, {}).i64();  // counter is dead
  });
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  EXPECT_LT(dead_result, 0);  // error, not a hang
}

TEST(GracefulTermination, HooksDoNotRunWithoutFailStop) {
  Rig rig;
  rig.rt.Boot();
  bool hook_ran = false;
  rig.rt.RegisterTerminationHook([&] { hook_ran = true; });
  // Non-deterministic fault: recovered, no fail-stop, no hook.
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  EXPECT_FALSE(rig.rt.terminal_fault().has_value());
  EXPECT_FALSE(hook_ran);
}

TEST(MultiVersion, VariantTakesOverDeterministicFault) {
  Rig rig;
  rig.rt.Boot();
  auto variant = std::make_unique<CounterComponent>();
  variant->SetRuntimeForHook(&rig.rt);
  rig.rt.RegisterVariant(rig.counter, std::move(variant));

  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId get = rig.rt.Lookup("counter", "get");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 3; ++i) rig.rt.Call(inc, {});
  });

  // Sticky fault: primary fails, reboot+retry fails again -> variant.
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });

  EXPECT_FALSE(rig.rt.terminal_fault().has_value());
  EXPECT_EQ(rig.rt.variant_swaps(), 1u);
  // State rebuilt by replay into the variant, then the retried inc applied.
  EXPECT_EQ(got, 4);
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 4);
}

TEST(MultiVersion, NoVariantStillFailStops) {
  Rig rig;
  rig.rt.Boot();
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  EXPECT_TRUE(rig.rt.terminal_fault().has_value());
  EXPECT_EQ(rig.rt.variant_swaps(), 0u);
}

TEST(MultiVersion, VariantNameMustMatch) {
  Rig rig;
  // A variant of "counter" must be named "counter"; registering a store as
  // the counter's variant is a configuration error (checked fatally), so we
  // only verify the happy path compiles & registers here.
  auto ok_variant = std::make_unique<CounterComponent>();
  ok_variant->SetRuntimeForHook(&rig.rt);
  rig.rt.RegisterVariant(rig.counter, std::move(ok_variant));
  rig.rt.Boot();
  SUCCEED();
}

TEST(MultiVersion, VariantKeepsEncapsulatedRestorationContract) {
  Rig rig;
  rig.rt.Boot();
  auto variant = std::make_unique<CounterComponent>();
  variant->SetRuntimeForHook(&rig.rt);
  rig.rt.RegisterVariant(rig.counter, std::move(variant));

  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId calls = rig.rt.Lookup("store", "calls");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 5; ++i) rig.rt.Call(inc, {});
  });
  std::int64_t calls_before = 0;
  RunApp(rig.rt, [&] { calls_before = rig.rt.Call(calls, {}).i64(); });

  rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  ASSERT_EQ(rig.rt.variant_swaps(), 1u);

  std::int64_t calls_after = 0;
  RunApp(rig.rt, [&] { calls_after = rig.rt.Call(calls, {}).i64(); });
  // Replay into the variant fed logged return values; the retried inc made
  // exactly one real store call. No restoration side effects leaked.
  EXPECT_EQ(calls_after, calls_before + 1);
}

TEST(Metrics, TopFunctionsTracksCallsTimeAndErrors) {
  Rig rig;
  rig.rt.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId add = rig.rt.Lookup("counter", "add_session");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 10; ++i) rig.rt.Call(inc, {});
    // Bad session id -> error counted.
    rig.rt.Call(add, {MsgValue(std::int64_t{99}), MsgValue(std::int64_t{1})});
  });
  auto top = rig.rt.TopFunctions();
  ASSERT_FALSE(top.empty());
  bool saw_inc = false, saw_add = false;
  for (const auto& f : top) {
    if (f.name == "counter.inc") {
      saw_inc = true;
      EXPECT_EQ(f.calls, 10u);
      EXPECT_GT(f.total_ns, 0);
      EXPECT_EQ(f.errors, 0u);
    }
    if (f.name == "counter.add_session") {
      saw_add = true;
      EXPECT_EQ(f.errors, 1u);
    }
  }
  EXPECT_TRUE(saw_inc);
  EXPECT_TRUE(saw_add);
}

TEST(Metrics, LimitRespected) {
  Rig rig;
  rig.rt.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  EXPECT_LE(rig.rt.TopFunctions(1).size(), 1u);
}

TEST(RejuvenationScheduler, CyclesThroughComponentsOnInterval) {
  RuntimeOptions opts = Opts();
  FakeClock clock;
  opts.clock = &clock;
  Rig rig(opts);
  rig.rt.Boot();
  auto sched = core::RejuvenationScheduler::ForAllComponents(
      rig.rt, 30 * kSecond);
  EXPECT_EQ(sched.plan_size(), 2u);  // store + counter

  // Interval not elapsed: no reboot.
  EXPECT_FALSE(sched.Tick().has_value());
  clock.Advance(31 * kSecond);
  auto first = sched.Tick();
  ASSERT_TRUE(first.has_value());
  // Immediately after, the interval gates the next one.
  EXPECT_FALSE(sched.Tick().has_value());
  clock.Advance(31 * kSecond);
  auto second = sched.Tick();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->component, second->component);
  EXPECT_EQ(sched.cycles_completed(), 1u);
  EXPECT_EQ(rig.rt.Stats().reboots, 2u);
}

TEST(RejuvenationScheduler, StatePreservedAcrossForcedCycle) {
  Rig rig;
  rig.rt.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId get = rig.rt.Lookup("counter", "get");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 4; ++i) rig.rt.Call(inc, {});
  });
  auto sched =
      core::RejuvenationScheduler::ForAllComponents(rig.rt, kSecond);
  for (std::size_t i = 0; i < sched.plan_size(); ++i) {
    EXPECT_TRUE(sched.ForceNext().has_value());
  }
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 4);
}

}  // namespace
}  // namespace vampos
