// Recovery edge cases: empty-log reboots, back-to-back reboots, reboots
// under heavy session load, faults *during replay* (restoration failure
// must surface as a failed reboot, not an escaping exception), reboots of
// merged groups under fault injection, and log-state invariants after
// repeated recovery cycles.
#include <gtest/gtest.h>

#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using msg::MsgValue;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;

RuntimeOptions Opts() {
  RuntimeOptions o;
  o.hang_threshold = 0;
  return o;
}

TEST(RecoveryEdge, RebootWithEmptyLogIsCheap) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  auto report = rt.Reboot(id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().entries_replayed, 0u);
}

TEST(RecoveryEdge, BackToBackRebootsAreIdempotent) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  const FunctionId get = rt.Lookup("counter", "get");
  RunApp(rt, [&] {
    for (int i = 0; i < 3; ++i) rt.Call(inc, {});
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rt.Reboot(id).ok()) << "reboot " << i;
  }
  // Replays do not multiply log entries.
  EXPECT_EQ(rt.LogEntries(id), 3u);
  std::int64_t v = 0;
  RunApp(rt, [&] { v = rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 3);
}

TEST(RecoveryEdge, RebootUnderManyLiveSessions) {
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(Opts());
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Sqlite());
  apps::BootAndMount(rt);
  Posix px(rt);
  std::vector<std::int64_t> fds;
  RunApp(rt, [&] {
    for (int i = 0; i < 50; ++i) {
      const auto fd = px.Create("/many" + std::to_string(i));
      px.Write(fd, std::to_string(i));
      fds.push_back(fd);
    }
  });
  auto report = rt.Reboot(info.vfs);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().entries_replayed, 100u);  // opens + writes
  // Every live fd still resolves with the right offset.
  RunApp(rt, [&] {
    for (int i = 0; i < 50; ++i) {
      px.Write(fds[i], "!");
      px.Close(fds[i]);
    }
  });
  EXPECT_EQ(platform.ninep.ReadFile("/many7"), "7!");
  EXPECT_EQ(platform.ninep.ReadFile("/many42"), "42!");
}

// A component whose handler crashes when replayed (a "deterministic bug in
// the history"): Reboot must return an error, not throw.
class ReplayBombComponent final : public comp::Component {
 public:
  ReplayBombComponent()
      : Component("bomb", comp::Statefulness::kStateful, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    count_ = MakeState<std::int64_t>(0);
    ctx.Export("poke", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const msg::Args&) -> msg::MsgValue {
                 if (c.restoring()) c.Panic("bug triggered by replay");
                 return msg::MsgValue(++*count_);
               });
  }

 private:
  std::int64_t* count_ = nullptr;
};

TEST(RecoveryEdge, FaultDuringReplayFailsRebootGracefully) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<ReplayBombComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId poke = rt.Lookup("bomb", "poke");
  RunApp(rt, [&] { rt.Call(poke, {}); });
  auto result = rt.Reboot(id);  // must not throw
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("restoration failed"),
            std::string::npos);
}

TEST(RecoveryEdge, MergedGroupFaultInjectionRecovers) {
  Runtime rt(Opts());
  auto store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto cc = std::make_unique<CounterComponent>();
  auto* counter_ptr = cc.get();
  auto counter = rt.AddComponent(std::move(cc));
  rt.AddAppDependency(counter);
  rt.Merge({counter, store});
  counter_ptr->SetRuntimeForHook(&rt);
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  RunApp(rt, [&] {
    rt.Call(inc, {});
    rt.Call(inc, {});
  });
  rt.InjectFault(counter, FaultKind::kPanic);
  std::int64_t got = 0;
  RunApp(rt, [&] { got = rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 3);  // whole group rebooted + restored + retried
  EXPECT_FALSE(rt.terminal_fault().has_value());
}

TEST(RecoveryEdge, SequentialFaultsInDifferentComponents) {
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(Opts());
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Sqlite());
  apps::BootAndMount(rt);
  Posix px(rt);
  std::int64_t fd = -1;
  RunApp(rt, [&] {
    fd = px.Create("/seq");
    px.Write(fd, "a");
  });
  // Fault VFS, recover, then fault 9PFS, recover — independent recoveries.
  rt.InjectFault(info.vfs, FaultKind::kPanic);
  RunApp(rt, [&] { px.Write(fd, "b"); });
  rt.InjectFault(info.ninep, FaultKind::kPanic);
  RunApp(rt, [&] { px.Write(fd, "c"); });
  EXPECT_EQ(rt.Stats().reboots, 2u);
  EXPECT_FALSE(rt.terminal_fault().has_value());
  RunApp(rt, [&] { px.Close(fd); });
  EXPECT_EQ(platform.ninep.ReadFile("/seq"), "abc");
}

TEST(RecoveryEdge, RebootHistoryAccumulates) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(rt.Reboot(id).ok());
  EXPECT_EQ(rt.reboot_history().size(), 3u);
  for (const auto& r : rt.reboot_history()) {
    EXPECT_EQ(r.name, "counter");
    EXPECT_GT(r.total_ns, 0);
  }
}

TEST(RecoveryEdge, CompactionThenRebootThenMoreTraffic) {
  RuntimeOptions o = Opts();
  o.log_shrink_threshold = 8;
  Runtime rt(o);
  auto cc = std::make_unique<CounterComponent>();
  auto* counter_ptr = cc.get();
  auto id = rt.AddComponent(std::move(cc));
  rt.AddAppDependency(id);
  counter_ptr->SetRuntimeForHook(&rt);
  rt.Boot();
  const FunctionId open = rt.Lookup("counter", "open_session");
  const FunctionId add = rt.Lookup("counter", "add_session");
  const FunctionId sum = rt.Lookup("counter", "session_sum");
  std::int64_t sid = -1;
  // Three cycles of: traffic -> compaction -> reboot -> verify -> traffic.
  RunApp(rt, [&] { sid = rt.Call(open, {}).i64(); });
  std::int64_t expect = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    RunApp(rt, [&] {
      for (int i = 0; i < 20; ++i) {
        rt.Call(add, {MsgValue(sid), MsgValue(std::int64_t{1})});
      }
    });
    expect += 20;
    ASSERT_TRUE(rt.Reboot(id).ok());
    std::int64_t got = 0;
    RunApp(rt, [&] { got = rt.Call(sum, {MsgValue(sid)}).i64(); });
    ASSERT_EQ(got, expect) << "cycle " << cycle;
  }
  EXPECT_LE(rt.LogEntries(id), 10u);
}

}  // namespace
}  // namespace vampos
