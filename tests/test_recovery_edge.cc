// Recovery edge cases: empty-log reboots, back-to-back reboots, reboots
// under heavy session load, faults *during replay* (restoration failure
// must surface as a failed reboot, not an escaping exception), reboots of
// merged groups under fault injection, and log-state invariants after
// repeated recovery cycles.
#include <gtest/gtest.h>

#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using msg::MsgValue;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;

RuntimeOptions Opts() {
  RuntimeOptions o;
  o.hang_threshold = 0;
  return o;
}

TEST(RecoveryEdge, RebootWithEmptyLogIsCheap) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  auto report = rt.Reboot(id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().entries_replayed, 0u);
}

TEST(RecoveryEdge, BackToBackRebootsAreIdempotent) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  const FunctionId get = rt.Lookup("counter", "get");
  RunApp(rt, [&] {
    for (int i = 0; i < 3; ++i) rt.Call(inc, {});
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rt.Reboot(id).ok()) << "reboot " << i;
  }
  // Replays do not multiply log entries.
  EXPECT_EQ(rt.LogEntries(id), 3u);
  std::int64_t v = 0;
  RunApp(rt, [&] { v = rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 3);
}

TEST(RecoveryEdge, RebootUnderManyLiveSessions) {
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(Opts());
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Sqlite());
  apps::BootAndMount(rt);
  Posix px(rt);
  std::vector<std::int64_t> fds;
  RunApp(rt, [&] {
    for (int i = 0; i < 50; ++i) {
      const auto fd = px.Create("/many" + std::to_string(i));
      px.Write(fd, std::to_string(i));
      fds.push_back(fd);
    }
  });
  auto report = rt.Reboot(info.vfs);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().entries_replayed, 100u);  // opens + writes
  // Every live fd still resolves with the right offset.
  RunApp(rt, [&] {
    for (int i = 0; i < 50; ++i) {
      px.Write(fds[i], "!");
      px.Close(fds[i]);
    }
  });
  EXPECT_EQ(platform.ninep.ReadFile("/many7"), "7!");
  EXPECT_EQ(platform.ninep.ReadFile("/many42"), "42!");
}

// A component whose handler crashes when replayed (a "deterministic bug in
// the history"): Reboot must return an error, not throw.
class ReplayBombComponent final : public comp::Component {
 public:
  ReplayBombComponent()
      : Component("bomb", comp::Statefulness::kStateful, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    count_ = MakeState<std::int64_t>(0);
    ctx.Export("poke", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const msg::Args&) -> msg::MsgValue {
                 if (c.restoring()) c.Panic("bug triggered by replay");
                 return msg::MsgValue(++*count_);
               });
  }

 private:
  std::int64_t* count_ = nullptr;
};

TEST(RecoveryEdge, FaultDuringReplayFailsRebootGracefully) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<ReplayBombComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId poke = rt.Lookup("bomb", "poke");
  RunApp(rt, [&] { rt.Call(poke, {}); });
  auto result = rt.Reboot(id);  // must not throw
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("restoration failed"),
            std::string::npos);
}

TEST(RecoveryEdge, MergedGroupFaultInjectionRecovers) {
  Runtime rt(Opts());
  auto store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto cc = std::make_unique<CounterComponent>();
  auto* counter_ptr = cc.get();
  auto counter = rt.AddComponent(std::move(cc));
  rt.AddAppDependency(counter);
  rt.Merge({counter, store});
  counter_ptr->SetRuntimeForHook(&rt);
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  RunApp(rt, [&] {
    rt.Call(inc, {});
    rt.Call(inc, {});
  });
  rt.InjectFault(counter, FaultKind::kPanic);
  std::int64_t got = 0;
  RunApp(rt, [&] { got = rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 3);  // whole group rebooted + restored + retried
  EXPECT_FALSE(rt.terminal_fault().has_value());
}

TEST(RecoveryEdge, SequentialFaultsInDifferentComponents) {
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt(Opts());
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Sqlite());
  apps::BootAndMount(rt);
  Posix px(rt);
  std::int64_t fd = -1;
  RunApp(rt, [&] {
    fd = px.Create("/seq");
    px.Write(fd, "a");
  });
  // Fault VFS, recover, then fault 9PFS, recover — independent recoveries.
  rt.InjectFault(info.vfs, FaultKind::kPanic);
  RunApp(rt, [&] { px.Write(fd, "b"); });
  rt.InjectFault(info.ninep, FaultKind::kPanic);
  RunApp(rt, [&] { px.Write(fd, "c"); });
  EXPECT_EQ(rt.Stats().reboots, 2u);
  EXPECT_FALSE(rt.terminal_fault().has_value());
  RunApp(rt, [&] { px.Close(fd); });
  EXPECT_EQ(platform.ninep.ReadFile("/seq"), "abc");
}

TEST(RecoveryEdge, RebootHistoryAccumulates) {
  Runtime rt(Opts());
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(rt.Reboot(id).ok());
  EXPECT_EQ(rt.reboot_history().size(), 3u);
  for (const auto& r : rt.reboot_history()) {
    EXPECT_EQ(r.name, "counter");
    EXPECT_GT(r.total_ns, 0);
  }
}

TEST(RecoveryEdge, CompactionThenRebootThenMoreTraffic) {
  RuntimeOptions o = Opts();
  o.log_shrink_threshold = 8;
  Runtime rt(o);
  auto cc = std::make_unique<CounterComponent>();
  auto* counter_ptr = cc.get();
  auto id = rt.AddComponent(std::move(cc));
  rt.AddAppDependency(id);
  counter_ptr->SetRuntimeForHook(&rt);
  rt.Boot();
  const FunctionId open = rt.Lookup("counter", "open_session");
  const FunctionId add = rt.Lookup("counter", "add_session");
  const FunctionId sum = rt.Lookup("counter", "session_sum");
  std::int64_t sid = -1;
  // Three cycles of: traffic -> compaction -> reboot -> verify -> traffic.
  RunApp(rt, [&] { sid = rt.Call(open, {}).i64(); });
  std::int64_t expect = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    RunApp(rt, [&] {
      for (int i = 0; i < 20; ++i) {
        rt.Call(add, {MsgValue(sid), MsgValue(std::int64_t{1})});
      }
    });
    expect += 20;
    ASSERT_TRUE(rt.Reboot(id).ok());
    std::int64_t got = 0;
    RunApp(rt, [&] { got = rt.Call(sum, {MsgValue(sid)}).i64(); });
    ASSERT_EQ(got, expect) << "cycle " << cycle;
  }
  EXPECT_LE(rt.LogEntries(id), 10u);
}

// --------------------------------------------- trace continuity across reboot

/// All traced events in the recorder must carry `want` as their trace id;
/// returns how many kTraceStall events were seen and checks each one's
/// charged nanoseconds against `want_stall`.
int CheckSingleTrace(const core::Runtime& rt, std::uint64_t want,
                     std::int64_t want_stall) {
  int stalls = 0;
  for (const obs::TraceEvent& e : rt.recorder().Snapshot()) {
    if (e.trace == 0) continue;
    EXPECT_EQ(e.trace, want) << "event kind " << static_cast<int>(e.kind);
    if (e.kind == obs::EventKind::kTraceStall) {
      ++stalls;
      EXPECT_EQ(e.a, want_stall);
    }
  }
  return stalls;
}

std::uint64_t FirstTraceId(const core::Runtime& rt) {
  for (const obs::TraceEvent& e : rt.recorder().Snapshot()) {
    if (e.trace != 0) return e.trace;
  }
  return 0;
}

TEST(RecoveryEdge, TraceIdentitySurvivesMidFlightReboot) {
  RuntimeOptions o = Opts();
  o.tracing = true;
  Runtime rt(o);
  auto id = rt.AddComponent(std::make_unique<CounterComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId crash = rt.Lookup("counter", "crash");
  // One-shot panic mid-call: the message thread reboots the component and
  // retries the same message, which then succeeds.
  std::int64_t got = -1;
  RunApp(rt, [&] { got = rt.Call(crash, {}).i64(); });
  EXPECT_EQ(got, 0);
  ASSERT_EQ(rt.Stats().reboots, 1u);

  // The whole journey — original push, post-reboot retry, reply — keeps the
  // one trace id minted at the app entry point.
  const std::uint64_t trace_id = FirstTraceId(rt);
  ASSERT_NE(trace_id, 0u);
  const core::RebootReport& rep = rt.reboot_history().at(0);
  const std::int64_t phase_sum = rep.stop_ns + rep.snapshot_ns + rep.replay_ns;
  // Exactly one stall event, charged with exactly the reboot's phase sum.
  EXPECT_EQ(CheckSingleTrace(rt, trace_id, phase_sum), 1);
  const obs::Histogram* stall =
      rt.metrics().FindHistogram("trace.stall_reboot_ns");
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(stall->count(), 1u);
  EXPECT_EQ(stall->sum(), static_cast<std::uint64_t>(phase_sum));
}

/// Component that issues two nested store.add calls per request, giving the
/// dedupe test a window where one outbound executed (return recorded on the
/// log entry) while the second is still queued downstream.
class TraceRelayComponent final : public comp::Component {
 public:
  TraceRelayComponent()
      : Component("relay", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("do2", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 std::int64_t sum = 0;
                 sum += c.Call(store_add_, {MsgValue(std::int64_t{1})}).i64();
                 sum += c.Call(store_add_, {MsgValue(std::int64_t{1})}).i64();
                 *state_ = sum;
                 return MsgValue(sum);
               });
  }

  void Bind(comp::InitCtx& ctx) override {
    store_add_ = ctx.runtime().Lookup("store", "add");
  }

 private:
  std::int64_t* state_ = nullptr;
  FunctionId store_add_ = -1;
};

TEST(RecoveryEdge, DedupedRetryKeepsTraceWithoutDoubleCharge) {
  RuntimeOptions o = Opts();
  o.tracing = true;
  Runtime rt(o);
  auto store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto relay = rt.AddComponent(std::make_unique<TraceRelayComponent>());
  rt.AddAppDependency(relay);
  rt.AddDependency(relay, store);
  rt.Boot();
  const FunctionId do2 = rt.Lookup("relay", "do2");
  std::int64_t got = 0;
  rt.SpawnApp("caller", [&] { got = rt.Call(do2, {}).i64(); });
  // Reboot lands mid-request: add#1's return is recorded on relay's log
  // entry, add#2 sits unexecuted in store's inbox.
  ASSERT_TRUE(rt.RunUntil([&] {
    const auto& log = rt.domain().LogFor(relay);
    if (log.size() == 0) return false;
    return log.entries().begin()->second.outbound.size() == 1;
  }));
  ASSERT_TRUE(rt.Reboot(relay).ok());
  rt.RunUntilIdle();
  EXPECT_EQ(got, 3);
  EXPECT_GE(rt.Stats().retries_deduped, 1u);

  // The fed-from-log add#1 never re-entered the message plane, so latency
  // is not double-counted: one stall charge for the retried request, and
  // every event (including add#2's re-issued child span) keeps the trace id.
  const std::uint64_t trace_id = FirstTraceId(rt);
  ASSERT_NE(trace_id, 0u);
  const core::RebootReport& rep = rt.reboot_history().at(0);
  const std::int64_t phase_sum = rep.stop_ns + rep.snapshot_ns + rep.replay_ns;
  EXPECT_EQ(CheckSingleTrace(rt, trace_id, phase_sum), 1);
  const obs::Histogram* stall =
      rt.metrics().FindHistogram("trace.stall_reboot_ns");
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(stall->count(), 1u);
}

// ------------------------------------------------------ mid-borrow reboot

/// Sink that checksums inbound byte payloads (borrowed or owned).
class BorrowSink final : public comp::Component {
 public:
  BorrowSink() : Component("bsink", comp::Statefulness::kStateful, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("put", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const std::string& data = args[0].bytes();
                 std::int64_t sum = 0;
                 for (const char ch : data) sum = sum * 31 + ch;
                 state_->checksum = sum;
                 state_->puts++;
                 return MsgValue(sum);
               });
    ctx.Export("puts", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return MsgValue(state_->puts);
               });
  }

 private:
  struct State {
    std::int64_t checksum = 0;
    std::int64_t puts = 0;
  };
  State* state_ = nullptr;
};

/// Lender whose flush() sends a borrowed view of its own arena downstream.
class BorrowWriter final : public comp::Component {
 public:
  BorrowWriter()
      : Component("bwriter", comp::Statefulness::kStateful, 64 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    for (std::size_t i = 0; i < sizeof(state_->block); ++i) {
      state_->block[i] = static_cast<char>('a' + i % 26);
    }
    ctx.Export("flush", comp::FnOptions{},
               [this](comp::CallCtx& c, const msg::Args&) {
                 return c.Call(
                     put_fn_,
                     {msg::MsgValue::Borrowed(
                         {reinterpret_cast<const std::byte*>(state_->block),
                          sizeof(state_->block)},
                         arena())});
               });
  }
  void Bind(comp::InitCtx& ctx) override {
    put_fn_ = ctx.Import("bsink", "put");
  }

 private:
  struct State {
    char block[96];
  };
  State* state_ = nullptr;
  FunctionId put_fn_ = -1;
};

// Reboot the lender while its borrowed-view message is still queued at the
// callee: the staged borrow is revoked and dropped with the outbound
// message, and the retried request re-lends out of the restored arena —
// the sink executes the put exactly once with the correct bytes.
TEST(RecoveryEdge, RebootMidBorrowDropsStagedViewAndRetries) {
  Runtime rt(Opts());
  const ComponentId sink = rt.AddComponent(std::make_unique<BorrowSink>());
  const ComponentId writer = rt.AddComponent(std::make_unique<BorrowWriter>());
  rt.AddAppDependency(writer);
  rt.AddDependency(writer, sink);
  rt.Boot();

  const FunctionId flush = rt.Lookup("bwriter", "flush");
  const FunctionId puts = rt.Lookup("bsink", "puts");
  std::int64_t got = 0;
  rt.SpawnApp("caller", [&] { got = rt.Call(flush, {}).i64(); });
  // Stop once the borrowed-view put sits in the sink's inbox with the
  // writer blocked on its reply — the borrow is live across the reboot.
  ASSERT_TRUE(rt.RunUntil([&] { return rt.domain().QueueDepth(sink) >= 1; }));
  ASSERT_TRUE(rt.Reboot(writer).ok());
  rt.RunUntilIdle();

  std::int64_t expect = 0;
  for (std::size_t i = 0; i < 96; ++i) {
    expect = expect * 31 + static_cast<char>('a' + i % 26);
  }
  EXPECT_EQ(got, expect);
  std::int64_t count = 0;
  RunApp(rt, [&] { count = rt.Call(puts, {}).i64(); });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(rt.domain().ActiveBorrowRpcs(), 0u);
}

}  // namespace
}  // namespace vampos
