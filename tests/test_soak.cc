// Soak test: everything at once. A web server and a KVS share one
// unikernel; TCP clients, UDP datagrams, and file traffic run concurrently
// while a RejuvenationScheduler cycles component reboots and random faults
// are injected — under an aggressive compaction threshold. The system must
// end consistent: all served data correct, no terminal fault, logs bounded.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstdio>
#include <string>

#include "apps/kvstore.h"
#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "apps/webserver.h"
#include "base/rng.h"
#include "core/rejuvenation.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::KvStore;
using apps::Posix;
using apps::SimClient;
using apps::StackInfo;
using apps::StackSpec;
using apps::WebServer;
using core::Runtime;
using core::RuntimeOptions;

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, MixedWorkloadUnderContinuousRejuvenation) {
  Rng rng(GetParam());
  RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.log_shrink_threshold = 16;

  uk::Platform platform;
  platform.ninep.PutFile("/www/index.html", "soak-content");
  uk::HostRingView rings;
  Runtime rt(opts);
  StackInfo info = BuildStack(rt, platform, rings, StackSpec::Nginx());
  apps::BootAndMount(rt);
  Posix px(rt);

  bool stop = false;
  WebServer web(px, 80, "/www");
  rt.SpawnApp("web", [&] {
    ASSERT_TRUE(web.Setup());
    web.RunLoop(&stop);
  });
  KvStore kv(px, "/soak.aof", /*aof_enabled=*/true);
  rt.SpawnApp("kv", [&] {
    ASSERT_TRUE(kv.OpenAof());
    ASSERT_TRUE(kv.Setup(6379));
    kv.RunLoop(&stop);
  });
  // A UDP responder sharing the stack.
  rt.SpawnApp("udp", [&] {
    const auto ufd = px.SocketDgram();
    ASSERT_GE(ufd, 0);
    ASSERT_EQ(px.Bind(ufd, 53), 0);
    while (!stop) {
      auto r = px.RecvFrom(ufd);
      if (r.ok()) {
        px.SendTo(ufd, px.LastPeer(ufd), "ack:" + r.data);
      } else {
        rt.ParkApp();
      }
    }
    px.Close(ufd);
  });
  rt.RunUntilIdle();

  SimClient web_client(&platform.net, 80);
  SimClient kv_client(&platform.net, 6379);
  const int wh = web_client.Connect();
  const int kh = kv_client.Connect();
  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      web_client.Poll();
      kv_client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      web_client.Poll();
      kv_client.Poll();
    }
  };
  pump(10);
  ASSERT_TRUE(web_client.Established(wh));
  ASSERT_TRUE(kv_client.Established(kh));

  auto rejuvenator =
      core::RejuvenationScheduler::ForAllComponents(rt, /*interval=*/0);
  std::map<std::string, std::string> kv_shadow;
  int web_ok = 0, kv_ok = 0, udp_ok = 0;
  int faults_injected = 0;

  for (int round = 0; round < 120; ++round) {
    const auto choice = rng.Below(5);
    if (std::getenv("SOAK_TRACE")) {
      std::fprintf(stderr, "round %d choice %d reboots %llu\n", round,
                   static_cast<int>(choice),
                   static_cast<unsigned long long>(rt.Stats().reboots));
    }
    switch (choice) {
      case 0: {  // web request
        web_client.Send(wh, "GET /index.html\n");
        pump(4);
        if (web_client.TakeReceived(wh).find("soak-content") !=
            std::string::npos) {
          web_ok++;
        }
        break;
      }
      case 1: {  // kv set + shadow
        const std::string k = "k" + std::to_string(rng.Below(20));
        const std::string v = "v" + std::to_string(round);
        kv_client.Send(kh, "SET " + k + " " + v + "\n");
        pump(4);
        if (kv_client.TakeReceived(kh) == "+OK\n") {
          kv_shadow[k] = v;
          kv_ok++;
        }
        break;
      }
      case 2: {  // kv get vs shadow
        if (kv_shadow.empty()) break;
        auto it = std::next(kv_shadow.begin(), rng.Below(kv_shadow.size()));
        kv_client.Send(kh, "GET " + it->first + "\n");
        pump(4);
        ASSERT_EQ(kv_client.TakeReceived(kh), "$" + it->second + "\n")
            << "round " << round;
        kv_ok++;
        break;
      }
      case 3: {  // udp round trip
        platform.net.HostSend(uk::Frame{.flags = uk::Frame::kDgram,
                                        .src_port = 9001,
                                        .dst_port = 53,
                                        .seq = 0,
                                        .ack = 0,
                                        .payload = "probe"});
        pump(4);
        // Take only our datagram; requeue anything belonging to the TCP
        // clients sharing the tap.
        std::vector<uk::Frame> others;
        bool got = false;
        while (auto f = platform.net.HostRecv()) {
          if (!got && (f->flags & uk::Frame::kDgram) != 0 &&
              f->payload == "ack:probe") {
            got = true;
          } else {
            others.push_back(std::move(*f));
          }
        }
        for (auto& f : others) platform.net.HostRequeue(std::move(f));
        if (got) udp_ok++;
        break;
      }
      default: {  // rejuvenate the next component
        rejuvenator.ForceNext();
        break;
      }
    }
    if (rng.Chance(1, 20)) {
      // Random transient fault in a random stateful component.
      const ComponentId victims[] = {info.vfs, info.ninep, info.lwip};
      rt.InjectFault(victims[rng.Below(3)], FaultKind::kPanic);
      faults_injected++;
    }
    ASSERT_FALSE(rt.terminal_fault().has_value()) << "round " << round;
    ASSERT_FALSE(web_client.Broken(wh)) << "round " << round;
    ASSERT_FALSE(kv_client.Broken(kh)) << "round " << round;
  }

  // Everything stayed alive and bounded.
  EXPECT_GT(web_ok, 5);
  EXPECT_GT(kv_ok, 10);
  EXPECT_GT(udp_ok, 3);
  EXPECT_GT(rt.Stats().reboots, 10u);
  EXPECT_LE(rt.LogEntries(info.vfs), 64u);
  EXPECT_LE(rt.LogEntries(info.lwip), 64u);
  // Host-side AOF reflects every acknowledged SET.
  auto aof = platform.ninep.ReadFile("/soak.aof");
  ASSERT_TRUE(aof.has_value());
  for (const auto& [k, v] : kv_shadow) {
    EXPECT_NE(aof->find("S " + k + " "), std::string::npos) << k;
  }
  (void)faults_injected;
  stop = true;
  rt.UnparkApps();
  rt.RunUntilIdle();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(3u, 21u, 314u, 2718u));

}  // namespace
}  // namespace vampos
