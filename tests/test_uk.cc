// Unit-level tests of the unikernel substrate components, driven in direct
// (Unikraft) mode so each assertion hits exactly one component: procinfo
// values, VIRTIO ring consistency, the 9P server + 9PFS fid machinery,
// NETDEV forwarding, and LWIP's socket state machine and error paths.
#include <gtest/gtest.h>

#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"
#include "uk/virtio/virtio.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using msg::MsgValue;
using testing::RunApp;

struct DirectRig {
  explicit DirectRig(StackSpec spec = StackSpec::Nginx()) : rt(Opts()) {
    info = BuildStack(rt, platform, rings, spec);
    apps::BootAndMount(rt);
    px = std::make_unique<Posix>(rt);
  }
  static RuntimeOptions Opts() {
    RuntimeOptions o;
    o.mode = Mode::kUnikraft;  // direct calls: unit-test one component
    o.hang_threshold = 0;
    return o;
  }
  msg::MsgValue Call(const char* comp, const char* fn, msg::Args args) {
    msg::MsgValue out;
    rt.SpawnApp("call", [&] { out = rt.Call(rt.Lookup(comp, fn), args); });
    rt.RunUntilIdle();
    return out;
  }
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

// ------------------------------------------------------------- procinfo

TEST(UkProcinfo, ProcessValues) {
  DirectRig rig;
  EXPECT_EQ(rig.Call("process", "getpid", {}).i64(), 1);
  EXPECT_EQ(rig.Call("process", "getppid", {}).i64(), 0);
  EXPECT_LT(rig.Call("process", "fork", {}).i64(), 0);  // unikernel: no fork
  EXPECT_EQ(rig.Call("process", "fork_count", {}).i64(), 1);
}

TEST(UkProcinfo, SysinfoAndUser) {
  DirectRig rig;
  EXPECT_NE(rig.Call("sysinfo", "uname", {}).bytes().find("x86_64"),
            std::string::npos);
  EXPECT_EQ(rig.Call("sysinfo", "sysinfo_totalram", {}).i64(), 88LL << 20);
  EXPECT_EQ(rig.Call("user", "getuid", {}).i64(), 0);
  EXPECT_EQ(rig.Call("user", "getgid", {}).i64(), 0);
}

TEST(UkProcinfo, TimerMonotonic) {
  DirectRig rig;
  const auto a = rig.Call("timer", "monotonic_ns", {}).i64();
  const auto b = rig.Call("timer", "monotonic_ns", {}).i64();
  EXPECT_GE(b, a);
}

// --------------------------------------------------------------- virtio

TEST(UkVirtio, RingsStayConsistentUnderTraffic) {
  DirectRig rig;
  auto* virtio = dynamic_cast<uk::VirtioComponent*>(
      &rig.rt.component(rig.info.virtio));
  ASSERT_NE(virtio, nullptr);
  EXPECT_TRUE(virtio->RingsConsistent());
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/v");
    rig.px->Write(fd, "traffic");
    rig.px->Close(fd);
  });
  // Guest avail and host used indices advanced in lock-step.
  EXPECT_TRUE(virtio->RingsConsistent());
}

TEST(UkVirtio, NetRxEmptyReturnsEmptyFrame) {
  DirectRig rig;
  EXPECT_TRUE(rig.Call("virtio", "net_rx", {}).bytes().empty());
}

TEST(UkVirtio, FrameCodecRoundTrip) {
  uk::Frame f;
  f.flags = uk::Frame::kData | uk::Frame::kAck;
  f.src_port = 12345;
  f.dst_port = 80;
  f.seq = 0xDEADBEEF;
  f.ack = 42;
  f.payload = std::string("\x00\x01payload", 9);
  uk::Frame g = uk::DecodeFrame(uk::EncodeFrame(f));
  EXPECT_EQ(g.flags, f.flags);
  EXPECT_EQ(g.src_port, f.src_port);
  EXPECT_EQ(g.dst_port, f.dst_port);
  EXPECT_EQ(g.seq, f.seq);
  EXPECT_EQ(g.ack, f.ack);
  EXPECT_EQ(g.payload, f.payload);
}

// ------------------------------------------------------------------ 9P

TEST(UkNinePServer, TreeOperations) {
  uk::NinePServer server;
  server.PutFile("/a/b/c.txt", "content");
  EXPECT_TRUE(server.Exists("/a"));
  EXPECT_TRUE(server.Exists("/a/b"));
  EXPECT_EQ(server.ReadFile("/a/b/c.txt"), "content");
  EXPECT_FALSE(server.ReadFile("/a/b").has_value());  // directory
  EXPECT_FALSE(server.ReadFile("/nope").has_value());
}

TEST(UkNinePfs, FidLifecycle) {
  DirectRig rig;
  rig.platform.ninep.PutFile("/f", "0123456789");
  const auto fid = rig.Call("9pfs", "lookup", {MsgValue("/f")}).i64();
  ASSERT_GE(fid, 0);
  // Read before open fails.
  EXPECT_LT(rig.Call("9pfs", "read",
                     {MsgValue(fid), MsgValue(std::int64_t{0}),
                      MsgValue(std::int64_t{4})})
                .i64(),
            0);
  EXPECT_EQ(rig.Call("9pfs", "open", {MsgValue(fid)}).i64(), 10);  // size
  EXPECT_EQ(rig.Call("9pfs", "read",
                     {MsgValue(fid), MsgValue(std::int64_t{2}),
                      MsgValue(std::int64_t{3})})
                .bytes(),
            "234");
  EXPECT_EQ(rig.Call("9pfs", "clunk", {MsgValue(fid)}).i64(), 0);
  // Fid gone after clunk.
  EXPECT_LT(rig.Call("9pfs", "open", {MsgValue(fid)}).i64(), 0);
}

TEST(UkNinePfs, LookupMissingAndBadFid) {
  DirectRig rig;
  EXPECT_EQ(rig.Call("9pfs", "lookup", {MsgValue("/missing")}).i64(),
            -static_cast<std::int64_t>(Errno::kNoEnt));
  EXPECT_LT(rig.Call("9pfs", "clunk", {MsgValue(std::int64_t{250})}).i64(),
            0);
  EXPECT_LT(rig.Call("9pfs", "clunk", {MsgValue(std::int64_t{-1})}).i64(), 0);
}

TEST(UkNinePfs, WriteExtendsFile) {
  DirectRig rig;
  rig.platform.ninep.PutFile("/w", "ab");
  const auto fid = rig.Call("9pfs", "lookup", {MsgValue("/w")}).i64();
  rig.Call("9pfs", "open", {MsgValue(fid)});
  EXPECT_EQ(rig.Call("9pfs", "write",
                     {MsgValue(fid), MsgValue(std::int64_t{4}),
                      MsgValue("cd")})
                .i64(),
            2);
  // Hole filled with NULs, then data.
  EXPECT_EQ(rig.platform.ninep.ReadFile("/w"),
            std::string("ab\0\0cd", 6));
}

// --------------------------------------------------------------- netdev

TEST(UkNetdev, ForwardsFramesAndCounts) {
  DirectRig rig;
  uk::Frame f;
  f.flags = uk::Frame::kData;
  f.payload = "frame";
  rig.Call("netdev", "tx", {MsgValue(uk::EncodeFrame(f))});
  ASSERT_EQ(rig.platform.net.pending_to_host(), 1u);
  EXPECT_EQ(uk::DecodeFrame(rig.platform.net.HostRecv()->payload.empty()
                                ? uk::EncodeFrame(f)
                                : uk::EncodeFrame(f))
                .payload,
            "frame");
  rig.platform.net.HostSend(f);
  const auto wire = rig.Call("netdev", "rx", {}).bytes();
  EXPECT_EQ(uk::DecodeFrame(wire).payload, "frame");
  EXPECT_EQ(rig.Call("netdev", "stats_frames", {}).i64(), 2);
}

// ----------------------------------------------------------------- lwip

TEST(UkLwip, SocketStateMachineErrors) {
  DirectRig rig;
  // listen before bind fails.
  const auto s = rig.Call("lwip", "socket", {}).i64();
  ASSERT_GE(s, 0);
  EXPECT_LT(rig.Call("lwip", "listen", {MsgValue(s)}).i64(), 0);
  EXPECT_EQ(rig.Call("lwip", "bind", {MsgValue(s), MsgValue(std::int64_t{80})})
                .i64(),
            0);
  EXPECT_EQ(rig.Call("lwip", "listen", {MsgValue(s)}).i64(), 0);
  // accept on empty backlog -> EAGAIN.
  EXPECT_EQ(rig.Call("lwip", "accept", {MsgValue(s)}).i64(),
            -static_cast<std::int64_t>(Errno::kAgain));
  // send on a listening socket -> ENOTCONN.
  EXPECT_EQ(rig.Call("lwip", "send", {MsgValue(s), MsgValue("x")}).i64(),
            -static_cast<std::int64_t>(Errno::kNotConn));
  // Bad socket ids.
  EXPECT_LT(rig.Call("lwip", "recv",
                     {MsgValue(std::int64_t{99}), MsgValue(std::int64_t{8})})
                .i64(),
            0);
}

TEST(UkLwip, UnknownDataFrameGetsRst) {
  DirectRig rig;
  uk::Frame f;
  f.flags = uk::Frame::kData;
  f.src_port = 5555;
  f.dst_port = 80;
  f.seq = 1;
  f.payload = "stray";
  rig.platform.net.HostSend(f);
  rig.Call("lwip", "poll", {});
  auto out = rig.platform.net.HostRecv();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->flags & uk::Frame::kRst, uk::Frame::kRst);
}

TEST(UkLwip, SockoptsStored) {
  DirectRig rig;
  const auto s = rig.Call("lwip", "socket", {}).i64();
  rig.Call("lwip", "setsockopt", {MsgValue(s), MsgValue(std::int64_t{0x4})});
  rig.Call("lwip", "setsockopt", {MsgValue(s), MsgValue(std::int64_t{0x10})});
  EXPECT_EQ(rig.Call("lwip", "getsockopt", {MsgValue(s)}).i64(), 0x14);
}

TEST(UkLwip, ShutdownClosesSocket) {
  DirectRig rig;
  const auto s = rig.Call("lwip", "socket", {}).i64();
  EXPECT_EQ(rig.Call("lwip", "shutdown",
                     {MsgValue(s), MsgValue(std::int64_t{2})})
                .i64(),
            0);
  EXPECT_EQ(rig.Call("lwip", "recv", {MsgValue(s), MsgValue(std::int64_t{8})})
                .i64(),
            -static_cast<std::int64_t>(Errno::kNotConn));
}

TEST(UkLwip, SocketExhaustion) {
  DirectRig rig;
  std::int64_t last = 0;
  for (int i = 0; i < 200 && last >= 0; ++i) {
    last = rig.Call("lwip", "socket", {}).i64();
  }
  EXPECT_EQ(last, -static_cast<std::int64_t>(Errno::kMFile));
}

// ------------------------------------------------------------ fd limits

TEST(UkVfs, FdExhaustionAndReuse) {
  DirectRig rig;
  rig.platform.ninep.PutFile("/x", "1");
  RunApp(rig.rt, [&] {
    std::vector<std::int64_t> fds;
    std::int64_t fd;
    while ((fd = rig.px->Open("/x")) >= 0) fds.push_back(fd);
    EXPECT_EQ(fd, -static_cast<std::int64_t>(Errno::kMFile));
    // Free one; the next open reuses the lowest free number.
    rig.px->Close(fds[0]);
    EXPECT_EQ(rig.px->Open("/x"), fds[0]);
    for (std::size_t i = 1; i < fds.size(); ++i) rig.px->Close(fds[i]);
  });
}

TEST(UkVfs, BadFdErrors) {
  DirectRig rig;
  RunApp(rig.rt, [&] {
    EXPECT_LT(rig.px->Read(77, 1).err, 0);
    EXPECT_LT(rig.px->Write(77, "x"), 0);
    EXPECT_LT(rig.px->Close(77), 0);
    EXPECT_LT(rig.px->Lseek(77, 0, Posix::kSeekSet), 0);
    EXPECT_LT(rig.px->Lseek(-1, 0, Posix::kSeekSet), 0);
  });
}

}  // namespace
}  // namespace vampos
