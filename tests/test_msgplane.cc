// Message-plane hot-path and reboot-queue tests: stale queued messages
// across Reboot (drop outbound, dedupe executed outbound, requeue inbound
// with fresh log entries), call-log bytes accounting, shrink/compaction
// replay equivalence, compaction scheduling on uncompactable workloads, and
// batched reply delivery.
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using msg::Args;
using msg::CallLog;
using msg::CallLogEntry;
using msg::MsgValue;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;
using testing::TickerComponent;

RuntimeOptions VampOpts() {
  RuntimeOptions o;
  o.mode = Mode::kVampOS;
  o.hang_threshold = 0;
  return o;
}

// Component that issues two nested store.add calls per request — gives the
// reboot tests a window where one outbound call has executed (its return is
// recorded) while the second is still queued.
class RelayComponent final : public comp::Component {
 public:
  RelayComponent()
      : Component("relay", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("do2", comp::FnOptions{.logged = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 std::int64_t sum = 0;
                 sum += c.Call(store_add_, {MsgValue(std::int64_t{1})}).i64();
                 sum += c.Call(store_add_, {MsgValue(std::int64_t{1})}).i64();
                 *state_ = sum;
                 return MsgValue(sum);
               });
  }

  void Bind(comp::InitCtx& ctx) override {
    store_add_ = ctx.runtime().Lookup("store", "add");
  }

 private:
  std::int64_t* state_ = nullptr;
  FunctionId store_add_ = -1;
};

struct RelayRig {
  RelayRig() : rt(VampOpts()) {
    store = rt.AddComponent(std::make_unique<StoreComponent>());
    relay = rt.AddComponent(std::make_unique<RelayComponent>());
    rt.AddAppDependency(relay);
    rt.AddDependency(relay, store);
    rt.Boot();
  }
  Runtime rt;
  ComponentId store, relay;
};

// Regression: a message the rebooted component pushed but the callee never
// pulled must be dropped — the retried request re-issues the call, and
// executing the stale copy too would double the side effect downstream.
TEST(RebootQueue, DropsUnexecutedOutbound) {
  RelayRig rig;
  const FunctionId do2 = rig.rt.Lookup("relay", "do2");
  const FunctionId calls = rig.rt.Lookup("store", "calls");
  std::int64_t got = 0;
  rig.rt.SpawnApp("caller", [&] { got = rig.rt.Call(do2, {}).i64(); });
  // Run until relay's first store.add sits unexecuted in store's inbox.
  ASSERT_TRUE(rig.rt.RunUntil(
      [&] { return rig.rt.domain().QueueDepth(rig.store) >= 1; }));
  ASSERT_TRUE(rig.rt.Reboot(rig.relay).ok());
  rig.rt.RunUntilIdle();
  EXPECT_EQ(got, 3);  // store.add returns its running total: 1 + 2
  std::int64_t store_calls = 0;
  RunApp(rig.rt, [&] { store_calls = rig.rt.Call(calls, {}).i64(); });
  // Exactly the retry's two adds — the stale queued copy did not execute.
  EXPECT_EQ(store_calls, 2);
}

// An outbound call that *did* execute before the reboot is not re-issued:
// its recorded return is fed back to the retried execution.
TEST(RebootQueue, DedupesExecutedOutbound) {
  RelayRig rig;
  const FunctionId do2 = rig.rt.Lookup("relay", "do2");
  const FunctionId calls = rig.rt.Lookup("store", "calls");
  std::int64_t got = 0;
  rig.rt.SpawnApp("caller", [&] { got = rig.rt.Call(do2, {}).i64(); });
  // Run until the first add's return is recorded on relay's in-flight log
  // entry and the second add is queued: reboot lands mid-request.
  ASSERT_TRUE(rig.rt.RunUntil([&] {
    const auto& log = rig.rt.domain().LogFor(rig.relay);
    if (log.size() == 0) return false;
    return log.entries().begin()->second.outbound.size() == 1;
  }));
  ASSERT_EQ(rig.rt.domain().QueueDepth(rig.store), 1u);
  ASSERT_TRUE(rig.rt.Reboot(rig.relay).ok());
  rig.rt.RunUntilIdle();
  EXPECT_EQ(got, 3);  // fed add#1 returned 1; re-issued add#2 returned 2
  EXPECT_GE(rig.rt.Stats().retries_deduped, 1u);
  std::int64_t store_calls = 0;
  RunApp(rig.rt, [&] { store_calls = rig.rt.Call(calls, {}).i64(); });
  // add#1 executed pre-reboot and was fed back, not re-run; the dropped
  // queued add#2 was re-issued by the retry. Two executions total.
  EXPECT_EQ(store_calls, 2);
}

// Inbound messages still queued at reboot time are drained and re-queued
// with *fresh* log entries: the pre-reboot entries are stale (they would
// sort before the retried in-flight call despite executing after it).
TEST(RebootQueue, RequeuesStaleInboundWithFreshLogEntries) {
  RuntimeOptions o = VampOpts();
  Runtime rt(o);
  const ComponentId store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto counter_ptr = std::make_unique<CounterComponent>();
  counter_ptr->SetRuntimeForHook(&rt);
  const ComponentId counter = rt.AddComponent(std::move(counter_ptr));
  rt.AddAppDependency(counter);
  rt.AddDependency(counter, store);
  rt.Boot();

  const FunctionId inc = rt.Lookup("counter", "inc");
  const FunctionId get = rt.Lookup("counter", "get");
  std::int64_t a = 0, b = 0;
  rt.SpawnApp("a", [&] { a = rt.Call(inc, {}).i64(); });
  rt.SpawnApp("b", [&] { b = rt.Call(inc, {}).i64(); });
  // Both app fibers push before the counter's resident runs once.
  ASSERT_TRUE(
      rt.RunUntil([&] { return rt.domain().QueueDepth(counter) >= 2; }));
  const auto& log = rt.domain().LogFor(counter);
  ASSERT_EQ(log.size(), 2u);
  const LogSeq stale_max = log.entries().rbegin()->first;

  ASSERT_TRUE(rt.Reboot(counter).ok());
  // The stale entries are gone; the requeued messages were re-logged with
  // fresh sequence numbers.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_GT(log.entries().begin()->first, stale_max);

  rt.RunUntilIdle();
  // Both callers got a live reply (the handlers may interleave on an aux
  // fiber, so each may observe the final value).
  EXPECT_GE(a, 1);
  EXPECT_GE(b, 1);
  std::int64_t v = 0;
  RunApp(rt, [&] { v = rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 2);  // neither lost nor double-executed
}

// ------------------------------------------------------------- accounting

std::size_t SumFootprints(const CallLog& log) {
  std::size_t total = 0;
  for (const auto& kv : log.entries()) {
    total += CallLog::FootprintOf(kv.second);
  }
  return total;
}

// bytes() must equal the sum of per-entry footprints after any mix of
// appends, returns, outbound records, session moves, erases, and prunes.
TEST(CallLogBytes, InvariantHoldsAcrossOpMix) {
  Rng rng(1234);
  CallLog log;
  std::vector<LogSeq> live;
  for (int iter = 0; iter < 500; ++iter) {
    switch (rng.Below(6)) {
      case 0:
      case 1: {  // append (biased: the log must grow)
        CallLogEntry e;
        e.fn = static_cast<FunctionId>(rng.Below(8));
        e.session = static_cast<std::int64_t>(rng.Below(4)) - 1;
        std::string blob(rng.Below(64), 'x');
        e.args = {MsgValue(std::move(blob))};
        live.push_back(log.Append(std::move(e)));
        break;
      }
      case 2: {
        if (live.empty()) break;
        log.SetReturn(live[rng.Below(live.size())],
                      MsgValue(static_cast<std::int64_t>(rng.Next())));
        break;
      }
      case 3: {
        if (live.empty()) break;
        log.RecordOutbound(live[rng.Below(live.size())],
                           static_cast<FunctionId>(rng.Below(8)),
                           MsgValue(std::string(rng.Below(32), 'y')));
        break;
      }
      case 4: {
        if (live.empty()) break;
        const std::size_t i = rng.Below(live.size());
        log.Erase(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      default: {
        if (rng.Below(10) == 0) {
          log.PruneSession(static_cast<std::int64_t>(rng.Below(3)));
          live.clear();
          for (const auto& kv : log.entries()) live.push_back(kv.first);
        } else if (!live.empty()) {
          log.SetSession(live[rng.Below(live.size())],
                         static_cast<std::int64_t>(rng.Below(3)));
        }
        break;
      }
    }
    ASSERT_EQ(log.bytes(), SumFootprints(log)) << "iter " << iter;
  }
  EXPECT_GT(log.size(), 0u);
  log.Clear();
  EXPECT_EQ(log.bytes(), 0u);
}

// ------------------------------------------------- shrink/compaction replay

// Property: session-aware shrinking and threshold compaction never change
// what a reboot restores for a surviving session.
TEST(ShrinkProperty, ReplayMatchesLiveStateForSurvivingSessions) {
  for (const std::uint64_t seed : {7u, 21u, 99u}) {
    RuntimeOptions o = VampOpts();
    o.log_shrink_threshold = 8;  // force compaction passes mid-workload
    Runtime rt(o);
    const ComponentId store =
        rt.AddComponent(std::make_unique<StoreComponent>());
    auto counter_ptr = std::make_unique<CounterComponent>();
    CounterComponent* counter_comp = counter_ptr.get();
    const ComponentId counter = rt.AddComponent(std::move(counter_ptr));
    rt.AddAppDependency(counter);
    rt.AddDependency(counter, store);
    counter_comp->SetRuntimeForHook(&rt);
    rt.Boot();

    const FunctionId open = rt.Lookup("counter", "open_session");
    const FunctionId add = rt.Lookup("counter", "add_session");
    const FunctionId close = rt.Lookup("counter", "close_session");
    const FunctionId sum = rt.Lookup("counter", "session_sum");

    Rng rng(seed);
    std::vector<std::int64_t> sessions;
    std::vector<std::int64_t> expected;
    RunApp(rt, [&] {
      for (int i = 0; i < 3; ++i) {
        sessions.push_back(rt.Call(open, {}).i64());
        expected.push_back(0);
      }
      for (int op = 0; op < 60; ++op) {
        const std::size_t s = rng.Below(sessions.size());
        const auto delta = static_cast<std::int64_t>(rng.Below(100));
        rt.Call(add, {MsgValue(sessions[s]), MsgValue(delta)});
        expected[s] += delta;
      }
      // Close one session: shrinking drops its history.
      rt.Call(close, {MsgValue(sessions[0])});
    });
    ASSERT_GT(rt.Stats().compactions, 0u) << "seed " << seed;
    ASSERT_GT(rt.Stats().log_pruned_entries, 0u) << "seed " << seed;

    ASSERT_TRUE(rt.Reboot(counter).ok()) << "seed " << seed;
    for (std::size_t s = 1; s < sessions.size(); ++s) {
      std::int64_t got = 0;
      RunApp(rt, [&] {
        got = rt.Call(sum, {MsgValue(sessions[s])}).i64();
      });
      EXPECT_EQ(got, expected[s]) << "seed " << seed << " session " << s;
    }
  }
}

// --------------------------------------------------- compaction scheduling

// Component whose compaction hook can never shrink anything — it returns
// the history unchanged. Models a workload with no collapsible state.
class IncompressibleComponent final : public comp::Component {
 public:
  IncompressibleComponent()
      : Component("blob", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<std::int64_t>(0);
    ctx.Export("open_session",
               comp::FnOptions{.logged = true, .session_from_ret = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 if (auto forced = c.forced_session()) {
                   return MsgValue(*forced);
                 }
                 return MsgValue((*state_)++);
               });
    ctx.Export("put", comp::FnOptions{.logged = true, .session_arg = 0},
               [](comp::CallCtx&, const msg::Args& args) {
                 return MsgValue(args[1]);
               });
  }

  comp::CompactionHook compaction_hook() override {
    return [this](const comp::CompactionRequest& req) {
      hook_calls++;
      return req.entries;  // nothing to collapse
    };
  }

  int hook_calls = 0;  // lives outside the arena: survives reboots

 private:
  std::int64_t* state_ = nullptr;
};

// An uncompactable session parks after a failed hook pass and is only
// revisited when its entry count doubles: the hook runs O(log n) times for
// n calls instead of once per call, and the skipped passes are counted.
TEST(CompactionSchedule, UncompactableSessionParksAndSkips) {
  RuntimeOptions o = VampOpts();
  o.log_shrink_threshold = 4;
  Runtime rt(o);
  auto blob_ptr = std::make_unique<IncompressibleComponent>();
  IncompressibleComponent* blob = blob_ptr.get();
  const ComponentId id = rt.AddComponent(std::move(blob_ptr));
  rt.AddAppDependency(id);
  rt.Boot();

  const FunctionId open = rt.Lookup("blob", "open_session");
  const FunctionId put = rt.Lookup("blob", "put");
  constexpr int kCalls = 128;
  RunApp(rt, [&] {
    const std::int64_t s = rt.Call(open, {}).i64();
    for (int i = 0; i < kCalls; ++i) {
      rt.Call(put, {MsgValue(s), MsgValue(static_cast<std::int64_t>(i))});
    }
  });

  const auto stats = rt.Stats();
  EXPECT_EQ(stats.compactions, 0u);
  // Over-threshold completions with no eligible session were skipped
  // without a grouping pass...
  EXPECT_GT(stats.compaction_skips, 0u);
  // ...and the hook only ran when the parked session doubled in size.
  EXPECT_GT(blob->hook_calls, 0);
  EXPECT_LE(blob->hook_calls, 8);  // ~log2(kCalls), not kCalls

  // The parked session still restores correctly.
  ASSERT_TRUE(rt.Reboot(id).ok());
  std::int64_t got = 0;
  RunApp(rt, [&] {
    got = rt.Call(put, {MsgValue(std::int64_t{0}), MsgValue(std::int64_t{42})})
              .i64();
  });
  EXPECT_EQ(got, 42);
}

// ------------------------------------------------------- batched delivery

// Fan-out: many app fibers flood one component; its resident executes the
// backlog as one batch and the message thread drains the replies together.
TEST(BatchDelivery, RepliesDrainInBatchesUnderFanout) {
  RuntimeOptions o = VampOpts();
  Runtime rt(o);
  const ComponentId ticker =
      rt.AddComponent(std::make_unique<TickerComponent>());
  rt.AddAppDependency(ticker);
  rt.Boot();

  const FunctionId tick = rt.Lookup("ticker", "tick");
  std::int64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    rt.SpawnApp("fan" + std::to_string(i),
                [&] { total += rt.Call(tick, {}).i64(); });
  }
  rt.RunUntilIdle();
  EXPECT_EQ(total, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
  EXPECT_GT(rt.Stats().replies_batched, 0u);
}

// Regression for the bench workload: sustained pump fibers making serial
// calls must still produce coalesced reply flushes. The counter used to
// credit only single PullReplies batches, which a steady-state pipeline of
// one-reply pulls never filled — rt.replies_batched sat at zero on exactly
// the workload the bench reports.
TEST(BatchDelivery, SustainedPumpWorkloadBatchesReplies) {
  RuntimeOptions o = VampOpts();
  Runtime rt(o);
  const ComponentId store = rt.AddComponent(std::make_unique<StoreComponent>());
  rt.AddAppDependency(store);
  rt.Boot();

  const FunctionId add = rt.Lookup("store", "add");
  constexpr int kPumps = 8;
  constexpr int kPerPump = 32;
  for (int p = 0; p < kPumps; ++p) {
    rt.SpawnApp("pump" + std::to_string(p), [&] {
      for (int i = 0; i < kPerPump; ++i) {
        rt.Call(add, {MsgValue(std::int64_t{1})});
      }
    });
  }
  rt.RunUntilIdle();
  const auto stats = rt.Stats();
  EXPECT_EQ(stats.messages, 2u * kPumps * kPerPump);  // calls + replies
  EXPECT_GT(stats.replies_batched, 0u);
}

// Full-log scans must not grow with call count on the session hot path.
TEST(HotPath, NoFullLogScansUnderSessionWorkload) {
  RuntimeOptions o = VampOpts();
  o.log_shrink_threshold = 8;
  Runtime rt(o);
  const ComponentId store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto counter_ptr = std::make_unique<CounterComponent>();
  counter_ptr->SetRuntimeForHook(&rt);
  const ComponentId counter = rt.AddComponent(std::move(counter_ptr));
  rt.AddAppDependency(counter);
  rt.AddDependency(counter, store);
  rt.Boot();

  const FunctionId open = rt.Lookup("counter", "open_session");
  const FunctionId add = rt.Lookup("counter", "add_session");
  const FunctionId close = rt.Lookup("counter", "close_session");
  RunApp(rt, [&] {
    for (int round = 0; round < 10; ++round) {
      const std::int64_t s = rt.Call(open, {}).i64();
      for (int i = 0; i < 20; ++i) {
        rt.Call(add, {MsgValue(s), MsgValue(std::int64_t{1})});
      }
      rt.Call(close, {MsgValue(s)});
    }
  });
  EXPECT_EQ(rt.Stats().log_scans, 0u);
}

}  // namespace
}  // namespace vampos
