// Message-layer tests: MsgValue wire format, argument vectors, the call log
// (append / returns / outbound records / session pruning / compaction
// erase), and the message domain (push/pull, replies, buffer release,
// MPK-checked staging).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "msg/domain.h"
#include "msg/value.h"

namespace vampos::msg {
namespace {

TEST(MsgValue, TypedAccessors) {
  EXPECT_EQ(MsgValue(std::int64_t{-7}).i64(), -7);
  EXPECT_EQ(MsgValue(std::uint64_t{7}).u64(), 7u);
  EXPECT_DOUBLE_EQ(MsgValue(2.5).f64(), 2.5);
  EXPECT_EQ(MsgValue("abc").bytes(), "abc");
  EXPECT_TRUE(MsgValue().is_i64());  // default: i64 0
}

TEST(MsgValue, RoundTripAllTypes) {
  Args in{MsgValue(std::int64_t{-123456789}), MsgValue(std::uint64_t{1} << 60),
          MsgValue(3.14159), MsgValue(std::string("hello\0world", 11)),
          MsgValue("")};
  auto wire = SerializeArgs(in);
  Args out = DeserializeArgs(wire);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(MsgValue, WireSizeMatchesSerialized) {
  Args args{MsgValue(std::int64_t{1}), MsgValue(std::string(100, 'x'))};
  EXPECT_EQ(SerializeArgs(args).size(), WireSizeOf(args));
}

class MsgValueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MsgValueFuzz, RandomArgsRoundTrip) {
  vampos::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Args args;
    const auto n = rng.Below(8);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.Below(4)) {
        case 0:
          args.push_back(MsgValue(static_cast<std::int64_t>(rng.Next())));
          break;
        case 1:
          args.push_back(MsgValue(rng.Next()));
          break;
        case 2:
          args.push_back(MsgValue(rng.NextDouble()));
          break;
        default: {
          std::string s(rng.Below(300), '\0');
          for (auto& c : s) c = static_cast<char>(rng.Below(256));
          args.push_back(MsgValue(std::move(s)));
        }
      }
    }
    Args out = DeserializeArgs(SerializeArgs(args));
    ASSERT_EQ(out.size(), args.size());
    for (std::size_t i = 0; i < args.size(); ++i) ASSERT_EQ(out[i], args[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsgValueFuzz, ::testing::Values(11, 22, 33));

// ------------------------------------------------------------------ log

CallLogEntry MakeEntry(FunctionId fn, std::int64_t session = -1) {
  CallLogEntry e;
  e.fn = fn;
  e.session = session;
  e.args = {MsgValue(session)};
  return e;
}

TEST(CallLog, AppendAssignsMonotonicSeq) {
  CallLog log;
  const LogSeq a = log.Append(MakeEntry(1));
  const LogSeq b = log.Append(MakeEntry(2));
  EXPECT_LT(a, b);
  EXPECT_EQ(log.size(), 2u);
}

TEST(CallLog, SetReturnAndOutbound) {
  CallLog log;
  const LogSeq seq = log.Append(MakeEntry(1));
  log.SetReturn(seq, MsgValue(std::int64_t{5}));
  log.RecordOutbound(seq, 9, MsgValue("reply"));
  const auto& e = log.entries().begin()->second;
  EXPECT_TRUE(e.have_ret);
  EXPECT_EQ(e.ret.i64(), 5);
  ASSERT_EQ(e.outbound.size(), 1u);
  EXPECT_EQ(e.outbound[0].first, 9);
  EXPECT_EQ(e.outbound[0].second.bytes(), "reply");
}

TEST(CallLog, BytesAccountingTracksMutations) {
  CallLog log;
  const LogSeq seq = log.Append(MakeEntry(1));
  const std::size_t base = log.bytes();
  EXPECT_GT(base, 0u);
  log.RecordOutbound(seq, 2, MsgValue(std::string(1000, 'x')));
  EXPECT_GT(log.bytes(), base + 900);
  log.Erase(seq);
  EXPECT_EQ(log.bytes(), 0u);
}

TEST(CallLog, PruneSessionRemovesOnlyThatSession) {
  CallLog log;
  log.Append(MakeEntry(1, 4));
  log.Append(MakeEntry(2, 5));
  log.Append(MakeEntry(3, 4));
  EXPECT_EQ(log.PruneSession(4), 2u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries().begin()->second.session, 5);
}

TEST(CallLog, PruneIfPredicate) {
  CallLog log;
  for (int i = 0; i < 10; ++i) log.Append(MakeEntry(i, i % 2));
  const auto removed =
      log.PruneIf([](const CallLogEntry& e) { return e.fn >= 6; });
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(log.size(), 6u);
}

TEST(CallLog, SetSession) {
  CallLog log;
  const LogSeq seq = log.Append(MakeEntry(1));
  log.SetSession(seq, 42);
  EXPECT_EQ(log.entries().begin()->second.session, 42);
}

TEST(CallLog, ClearResetsBytes) {
  CallLog log;
  log.Append(MakeEntry(1));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.bytes(), 0u);
  // Sequence numbers keep increasing after Clear (no reuse).
  const LogSeq next = log.Append(MakeEntry(2));
  EXPECT_GT(next, 1u);
}

// --------------------------------------------------------------- domain

TEST(Domain, PushPullRoundTrip) {
  MessageDomain dom(1 << 20, nullptr);
  dom.EnsureCapacity(3);
  Message m;
  m.from = 1;
  m.to = 2;
  m.fn = 7;
  m.rpc_id = dom.NextRpcId();
  dom.Push(m, {MsgValue("payload"), MsgValue(std::int64_t{9})});
  ASSERT_TRUE(dom.HasMessage(2));
  auto pulled = dom.Pull(2);
  ASSERT_TRUE(pulled.has_value());
  EXPECT_EQ(pulled->first.fn, 7);
  EXPECT_EQ(pulled->second[0].bytes(), "payload");
  EXPECT_EQ(pulled->second[1].i64(), 9);
  EXPECT_FALSE(dom.HasMessage(2));
}

TEST(Domain, FifoPerInbox) {
  MessageDomain dom(1 << 20, nullptr);
  dom.EnsureCapacity(1);
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.to = 1;
    m.fn = i;
    dom.Push(m, {});
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dom.Pull(1)->first.fn, i);
  }
}

TEST(Domain, BuffersReleasedAfterPull) {
  MessageDomain dom(256 * 1024, nullptr);
  dom.EnsureCapacity(1);
  // Push/pull far more data than the staging arena could hold at once:
  // works only if buffers are freed on consumption.
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.to = 1;
    dom.Push(m, {MsgValue(std::string(32 * 1024, 'b'))});
    ASSERT_TRUE(dom.Pull(1).has_value());
  }
}

TEST(Domain, ReplyQueueSeparate) {
  MessageDomain dom(1 << 20, nullptr);
  dom.EnsureCapacity(1);
  Message call;
  call.to = 1;
  dom.Push(call, {});
  Message reply;
  reply.rpc_id = 5;
  dom.PushReply(reply, {MsgValue(std::int64_t{123})});
  EXPECT_TRUE(dom.HasReply());
  auto r = dom.PullReply();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first.kind, Message::Kind::kReply);
  EXPECT_EQ(r->second[0].i64(), 123);
  EXPECT_FALSE(dom.HasReply());
  EXPECT_TRUE(dom.HasMessage(1));  // the call is still queued
}

TEST(Domain, OldestPendingDestination) {
  MessageDomain dom(1 << 20, nullptr);
  dom.EnsureCapacity(3);
  EXPECT_EQ(dom.OldestPendingDestination(), kComponentNone);
  Message m1;
  m1.to = 2;
  m1.enqueued_at = 100;
  dom.Push(m1, {});
  Message m2;
  m2.to = 1;
  m2.enqueued_at = 50;
  dom.Push(m2, {});
  EXPECT_EQ(dom.OldestPendingDestination(), 1);
}

TEST(Domain, DropQueuedFreesBuffers) {
  MessageDomain dom(256 * 1024, nullptr);
  dom.EnsureCapacity(1);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      Message m;
      m.to = 1;
      dom.Push(m, {MsgValue(std::string(16 * 1024, 'd'))});
    }
    dom.DropQueued(1);  // must release the staged buffers
  }
  EXPECT_FALSE(dom.HasMessage(1));
}

TEST(Domain, MpkCheckedStagingRequiresAccess) {
  mpk::DomainManager dm;
  MessageDomain dom(1 << 20, &dm);
  dom.EnsureCapacity(1);
  // Sender without access to the message-domain key faults on push.
  dm.WritePkru(mpk::Pkru::AllDenied());
  Message m;
  m.from = 3;
  m.to = 1;
  EXPECT_THROW(dom.Push(m, {MsgValue("x")}), ComponentFault);
  // With the key open, the same push succeeds.
  mpk::Pkru ok = mpk::Pkru::AllDenied();
  ok.Allow(dom.key(), /*write=*/true);
  dm.WritePkru(ok);
  dom.Push(m, {MsgValue("x")});
  EXPECT_TRUE(dom.HasMessage(1));
}

TEST(Domain, LogAccounting) {
  MessageDomain dom(1 << 20, nullptr);
  dom.LogFor(1).Append(MakeEntry(1));
  dom.LogFor(2).Append(MakeEntry(2));
  EXPECT_EQ(dom.TotalLogEntries(), 2u);
  EXPECT_GT(dom.TotalLogBytes(), 0u);
  EXPECT_TRUE(dom.HasLog(1));
  EXPECT_FALSE(dom.HasLog(99));
}

}  // namespace
}  // namespace vampos::msg
