// Health telemetry tests: WindowedSeries edge cases, the HealthMonitor's
// detectors and hysteresis, the Prometheus exporter, the metrics-format
// knob, and the closed loop — a deterministic FakeClock aging run proving
// adaptive rejuvenation beats the blind round-robin, plus the
// zero-overhead-when-off guarantee (like the flight recorder's).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <limits>
#include <string>

#include "core/rejuvenation.h"
#include "obs/health.h"
#include "obs/timeseries.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Runtime;
using core::RuntimeOptions;
using obs::HealthConfig;
using obs::HealthMonitor;
using obs::HealthSignals;
using obs::WindowedSeries;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;
using testing::TickerComponent;

// ------------------------------------------------------- WindowedSeries

TEST(WindowedSeries, AccumulatesWithinOneWindow) {
  WindowedSeries s(1000, 4);
  s.Record(10, 5);
  s.Record(20, 7);
  s.Record(30, 3);
  EXPECT_EQ(s.closed(), 0u);
  EXPECT_EQ(s.open().count, 3u);
  EXPECT_EQ(s.open().sum, 15);
  EXPECT_EQ(s.open().min, 3);
  EXPECT_EQ(s.open().max, 7);
  EXPECT_EQ(s.open().last, 3);
}

TEST(WindowedSeries, WindowWrapDropsOldestHistory) {
  WindowedSeries s(1000, 4);  // 3 closed windows + the open one
  // One sample per window for 6 windows: only the newest 3 closed survive.
  for (std::int64_t w = 0; w < 6; ++w) {
    s.Record(w * 1000 + 500, w);
  }
  EXPECT_EQ(s.closed(), 3u);
  EXPECT_EQ(s.window(0).last, 4);  // newest closed
  EXPECT_EQ(s.window(1).last, 3);
  EXPECT_EQ(s.window(2).last, 2);  // window 0 and 1 fell off the ring
  EXPECT_EQ(s.open().last, 5);
  // CountOver caps at available history.
  EXPECT_EQ(s.CountOver(100), 4u);
}

TEST(WindowedSeries, EmptyWindowPercentilesReportZero) {
  WindowedSeries s(1000, 4);
  EXPECT_EQ(s.Percentile(99, 4), 0.0);
  // Record in one window, then skip two: skipped windows are closed empty.
  s.Record(500, 42);
  s.Advance(3500);
  EXPECT_EQ(s.closed(), 3u);
  EXPECT_EQ(s.window(0).count, 0u);  // the two skipped windows
  EXPECT_EQ(s.window(1).count, 0u);
  EXPECT_EQ(s.window(2).count, 1u);
  // The merged percentile still finds the one real sample...
  EXPECT_GT(s.Percentile(99, 4), 0.0);
  // ...and a merge over only the empty windows reports 0.
  EXPECT_EQ(s.Merged(0, 2).Percentile(99), 0.0);
}

TEST(WindowedSeries, IdleGapLongerThanRingDiscardsAllHistory) {
  WindowedSeries s(1000, 4);
  for (std::int64_t w = 0; w < 4; ++w) s.Record(w * 1000, 1);
  EXPECT_EQ(s.closed(), 3u);
  // The clock goes idle for far longer than the ring spans.
  s.Advance(1'000'000);
  EXPECT_EQ(s.CountOver(100), 0u);
  EXPECT_EQ(s.RatePerSec(100), 0.0);
  // Everything the ring now holds is a closed empty window.
  for (std::size_t i = 0; i < s.closed(); ++i) {
    EXPECT_EQ(s.window(i).count, 0u);
  }
}

TEST(WindowedSeries, NonMonotonicClockIsANoOp) {
  WindowedSeries s(1000, 4);
  s.Record(5500, 9);
  s.Advance(1200);  // clock stepped backwards: ignored
  EXPECT_EQ(s.open().last, 9);
  s.Record(1200, 7);  // recorded into the still-open newest window
  EXPECT_EQ(s.open().count, 2u);
}

TEST(WindowedSeries, SumSaturatesInsteadOfWrapping) {
  WindowedSeries s(1000, 4);
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2 + 1;
  s.Record(10, big);
  s.Record(20, big);
  s.Record(30, big);
  EXPECT_EQ(s.open().sum, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(s.open().count, 3u);
  EXPECT_EQ(s.open().max, big);
}

TEST(WindowedSeries, SlopeRecoversLinearGrowth) {
  WindowedSeries s(1'000'000'000, 8);  // 1 s windows
  // A gauge growing 4096 per second, one sample per window.
  for (std::int64_t w = 0; w < 6; ++w) {
    s.Record(w * 1'000'000'000 + 500, (w + 1) * 4096);
  }
  EXPECT_NEAR(s.SlopePerSec(8), 4096.0, 1.0);
  // A flat gauge has no slope.
  WindowedSeries flat(1'000'000'000, 8);
  for (std::int64_t w = 0; w < 6; ++w) {
    flat.Record(w * 1'000'000'000 + 500, 777);
  }
  EXPECT_EQ(flat.SlopePerSec(8), 0.0);
  // Fewer than two sampled windows says nothing.
  WindowedSeries thin(1'000'000'000, 8);
  thin.Record(500, 100);
  EXPECT_EQ(thin.SlopePerSec(8), 0.0);
}

TEST(WindowedSeries, RatePerSecCountsClosedWindowsOnly) {
  WindowedSeries s(1'000'000'000, 4);
  for (int i = 0; i < 10; ++i) s.Record(500, 1);     // window 0: 10 samples
  for (int i = 0; i < 20; ++i) s.Record(1'000'000'500, 1);  // window 1
  s.Advance(2'000'000'500);  // close window 1
  EXPECT_NEAR(s.RatePerSec(1), 20.0, 0.01);   // newest closed only
  EXPECT_NEAR(s.RatePerSec(2), 15.0, 0.01);   // averaged over both
}

// -------------------------------------------------------- HealthMonitor

HealthConfig SmallCfg() {
  HealthConfig cfg;
  cfg.window_ns = 1000;  // 1 us windows: trivial to step with integer nows
  cfg.windows = 4;
  cfg.leak_limit_bps = 1024;
  return cfg;
}

TEST(HealthMonitor, LeakSlopeDegradesAndHysteresisHolds) {
  HealthMonitor hm(SmallCfg());
  hm.Track(1, "leaky");
  // Arena grows fast: slope saturates the leak term (weight 0.6 >= 0.5).
  for (std::int64_t w = 0; w < 4; ++w) {
    hm.OnSample(1, w * 1000 + 500, (w + 1) * 100'000, 0);
  }
  HealthSignals s = hm.Assess(1, 4500);
  EXPECT_GT(s.leak_bps, 1024.0);
  EXPECT_GE(s.score, 0.5);
  EXPECT_TRUE(s.degraded);
  EXPECT_TRUE(hm.IsDegraded(1));

  // The leak windows age out without new samples; the score collapses but
  // the latch only releases below healthy_score.
  s = hm.Assess(1, 20'000);  // beyond the ring: history gone
  EXPECT_EQ(s.leak_bps, 0.0);
  EXPECT_LT(s.score, 0.25);
  EXPECT_FALSE(s.degraded);
  EXPECT_FALSE(hm.IsDegraded(1));
}

TEST(HealthMonitor, ErrorRateAloneStaysBelowDegrade) {
  // Errors carry weight 0.5 < degrade_score is false (0.5 >= 0.5) — a fully
  // saturated error rate does degrade, but a half-saturated one does not.
  HealthConfig cfg = SmallCfg();
  cfg.err_rate_limit = 0.5;
  HealthMonitor hm(cfg);
  for (int i = 0; i < 10; ++i) hm.OnRequest(1, 100 + i, 10);
  hm.OnError(1, 150);  // 1 error / 10 requests = 0.1 « limit 0.5
  const HealthSignals s = hm.Assess(1, 900);
  EXPECT_NEAR(s.err_per_req, 0.1, 1e-9);
  EXPECT_LT(s.score, 0.5);
  EXPECT_FALSE(s.degraded);
}

TEST(HealthMonitor, HangOrFaultDegradesImmediately) {
  HealthMonitor hm(SmallCfg());
  hm.OnHang(7, 100);
  EXPECT_TRUE(hm.Assess(7, 200).degraded);
  hm.OnReboot(7, 300);  // reboot clears the history and the latch
  EXPECT_FALSE(hm.Assess(7, 400).degraded);
  EXPECT_EQ(hm.Assess(7, 500).hangs, 0u);
}

TEST(HealthMonitor, WorstPicksHighestScoringDegraded) {
  HealthMonitor hm(SmallCfg());
  hm.OnFault(1, 100);              // score 0.8
  hm.OnFault(2, 100);
  hm.OnHang(2, 100);               // score 1.0 (fault + hang)
  EXPECT_EQ(hm.Worst(200).value_or(-1), 2);
  hm.OnReboot(1, 300);
  hm.OnReboot(2, 300);
  EXPECT_FALSE(hm.Worst(400).has_value());
}

TEST(HealthMonitor, ExportsGaugesToRegistry) {
  obs::MetricsRegistry reg;
  HealthMonitor hm(SmallCfg());
  hm.BindMetrics(&reg);
  hm.Track(3, "vfs");
  for (int i = 0; i < 8; ++i) hm.OnRequest(3, 100 + i, 2000);
  (void)hm.Assess(3, 1500);
  ASSERT_NE(reg.FindCounter("health.vfs.p99_ns"), nullptr);
  ASSERT_NE(reg.FindCounter("health.vfs.score_x1000"), nullptr);
  EXPECT_GT(reg.FindCounter("health.vfs.req_per_sec")->value(), 0u);
  EXPECT_EQ(reg.FindCounter("health.vfs.degraded")->value(), 0u);
  EXPECT_GT(reg.FindCounter("health.assessments")->value(), 0u);
}

// --------------------------------------------------- Prometheus exporter

TEST(Metrics, WritePrometheusEmitsCountersAndSummaries) {
  obs::MetricsRegistry reg;
  reg.GetCounter("rt.reboots").Add(5);
  obs::Histogram& h = reg.GetHistogram("rt.call_ns");
  for (int i = 1; i <= 100; ++i) h.Record(i);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  reg.WritePrometheus(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) out += buf;
  std::fclose(f);

  EXPECT_NE(out.find("# TYPE vampos_rt_reboots counter"), std::string::npos);
  EXPECT_NE(out.find("vampos_rt_reboots 5"), std::string::npos);
  EXPECT_NE(out.find("# TYPE vampos_rt_call_ns summary"), std::string::npos);
  EXPECT_NE(out.find("vampos_rt_call_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(out.find("vampos_rt_call_ns_count 100"), std::string::npos);
}

// ---------------------------------------------------- metrics-format knob

TEST(MetricsFormatKnobDeathTest, UnknownFormatExitsWithUsageError) {
  EXPECT_EXIT(
      {
        setenv("VAMPOS_METRICS_FORMAT", "xml", 1);
        RuntimeOptions opts;
        Runtime rt(opts);
        std::exit(0);  // unreachable: the ctor must reject the knob
      },
      ::testing::ExitedWithCode(2), "unrecognized VAMPOS_METRICS_FORMAT");
}

TEST(MetricsFormatKnob, KnownFormatsAreAccepted) {
  for (const char* fmt : {"text", "json", "prom"}) {
    setenv("VAMPOS_METRICS_FORMAT", fmt, 1);
    RuntimeOptions opts;
    Runtime rt(opts);  // constructing is the assertion: no exit(2)
  }
  unsetenv("VAMPOS_METRICS_FORMAT");
}

// ------------------------------------------------------ runtime closed loop

struct Rig {
  explicit Rig(RuntimeOptions opts) : rt(opts) {
    store = rt.AddComponent(std::make_unique<StoreComponent>());
    counter = rt.AddComponent(std::make_unique<CounterComponent>());
    ticker = rt.AddComponent(std::make_unique<TickerComponent>());
    rt.AddAppDependency(counter);
    rt.AddAppDependency(ticker);
    rt.AddDependency(counter, store);
  }
  Runtime rt;
  ComponentId store, counter, ticker;
};

RuntimeOptions HealthOpts(FakeClock* clock) {
  RuntimeOptions o;
  o.hang_threshold = 0;
  o.clock = clock;
  o.health = true;
  o.health_config.window_ns = kSecond;
  o.health_config.windows = 8;
  o.health_config.leak_limit_bps = 1024;  // 1 KiB/s counts as a leak
  return o;
}

/// Calls counter.leak(4096) once and pumps the runtime (which also drives
/// the health monitor's periodic arena sampling).
void LeakRound(Rig& rig, FunctionId leak) {
  RunApp(rig.rt, [&] {
    rig.rt.Call(leak, {msg::MsgValue(std::int64_t{4096})});
  });
}

TEST(AdaptiveRejuvenation, RebootsLeakerBeforeRoundRobinWouldReachIt) {
  const Nanos interval = 30 * kSecond;

  // --- adaptive run: leak 4 KiB/s into counter, tick every simulated second
  FakeClock clock;
  Rig rig(HealthOpts(&clock));
  rig.rt.Boot();
  ASSERT_NE(rig.rt.health(), nullptr);
  const FunctionId leak = rig.rt.Lookup("counter", "leak");
  auto sched =
      core::RejuvenationScheduler::ForAllComponents(rig.rt, interval);
  sched.set_adaptive(*rig.rt.health());
  EXPECT_TRUE(sched.adaptive());
  EXPECT_EQ(sched.plan_size(), 3u);  // ticker (stateless first), store, counter

  Nanos adaptive_reboot_at = -1;
  for (int sec = 1; sec <= 120 && adaptive_reboot_at < 0; ++sec) {
    clock.Advance(kSecond);
    LeakRound(rig, leak);
    const auto report = sched.Tick();
    if (report.has_value()) {
      EXPECT_EQ(report->component, rig.counter);  // only the leaker
      adaptive_reboot_at = clock.Now();
    }
  }
  ASSERT_GT(adaptive_reboot_at, 0);
  // The first due tick (one interval in) already picks the leaker: the
  // round-robin plan would spend its first two slots on healthy components.
  EXPECT_EQ(adaptive_reboot_at, interval);
  EXPECT_EQ(sched.adaptive_reboots(), 1u);
  // Zero reboots of clean components, ever.
  for (const core::RebootReport& rr : rig.rt.reboot_history()) {
    EXPECT_EQ(rr.component, rig.counter);
  }
  EXPECT_EQ(rig.rt.reboot_history().size(), 1u);

  // The leak is cured (arena rebuilt): subsequent due ticks skip everyone.
  clock.Advance(interval);
  RunApp(rig.rt, [&] {});  // let the monitor sample the healthy arena
  EXPECT_FALSE(sched.Tick().has_value());
  EXPECT_GT(sched.healthy_skips(), 0u);

  // --- fixed run: same leak, blind round-robin
  FakeClock fclock;
  Rig frig(HealthOpts(&fclock));
  frig.rt.Boot();
  const FunctionId fleak = frig.rt.Lookup("counter", "leak");
  auto fsched =
      core::RejuvenationScheduler::ForAllComponents(frig.rt, interval);
  Nanos fixed_reboot_at = -1;
  std::size_t fixed_clean_reboots = 0;
  for (int sec = 1; sec <= 120 && fixed_reboot_at < 0; ++sec) {
    fclock.Advance(kSecond);
    LeakRound(frig, fleak);
    const auto report = fsched.Tick();
    if (report.has_value()) {
      if (report->component == frig.counter) {
        fixed_reboot_at = fclock.Now();
      } else {
        fixed_clean_reboots++;  // a healthy component paid a reboot
      }
    }
  }
  ASSERT_GT(fixed_reboot_at, 0);
  EXPECT_EQ(fixed_reboot_at, 3 * interval);  // third slot in the plan
  EXPECT_EQ(fixed_clean_reboots, 2u);        // ticker + store, both clean

  // The adaptive scheduler reached the aging component one plan-cycle
  // earlier and disturbed nobody else.
  EXPECT_LT(adaptive_reboot_at, fixed_reboot_at);
}

TEST(HealthOff, NullMonitorZeroAllocationIdenticalBehavior) {
  RuntimeOptions off_opts;
  off_opts.hang_threshold = 0;
  Rig off(off_opts);
  off.rt.Boot();
  const FunctionId inc_off = off.rt.Lookup("counter", "inc");
  RunApp(off.rt, [&] {
    for (int i = 0; i < 16; ++i) off.rt.Call(inc_off, {});
  });

  RuntimeOptions on_opts;
  on_opts.hang_threshold = 0;
  on_opts.health = true;
  Rig on(on_opts);
  on.rt.Boot();
  const FunctionId inc_on = on.rt.Lookup("counter", "inc");
  RunApp(on.rt, [&] {
    for (int i = 0; i < 16; ++i) on.rt.Call(inc_on, {});
  });

  // Off: no monitor object, no health counters in the registry — the hot
  // path is a single null check, exactly like the disabled recorder.
  EXPECT_EQ(off.rt.health(), nullptr);
  EXPECT_EQ(off.rt.metrics().FindCounter("health.samples"), nullptr);
  EXPECT_EQ(off.rt.metrics().FindCounter("health.counter.score_x1000"),
            nullptr);
  // On: monitor tracks the leaders and sampled at least once.
  ASSERT_NE(on.rt.health(), nullptr);
  EXPECT_EQ(on.rt.health()->tracked(), 3u);

  // Health must be purely observational: behavior counters match.
  const core::RuntimeStats a = off.rt.Stats();
  const core::RuntimeStats b = on.rt.Stats();
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.log_appends, b.log_appends);
  EXPECT_EQ(a.reboots, b.reboots);
}

TEST(HealthDump, DumpStateShowsPerComponentLines) {
  RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.health = true;
  Rig rig(opts);
  rig.rt.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  rig.rt.DumpState(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) out += buf;
  std::fclose(f);
  EXPECT_NE(out.find("=== health"), std::string::npos);
  EXPECT_NE(out.find("counter"), std::string::npos);
  EXPECT_NE(out.find("score="), std::string::npos);
}

}  // namespace
}  // namespace vampos
