// Runtime core tests: call plane (both modes), logging, component reboot
// with encapsulated restoration, session-aware shrinking, compaction,
// merging, fault injection, hang detection, and fail-stop semantics.
#include <gtest/gtest.h>

#include "testing.h"

namespace vampos {
namespace {

using core::Mode;
using core::Runtime;
using core::RuntimeOptions;
using core::SchedPolicy;
using msg::MsgValue;
using testing::CounterComponent;
using testing::RunApp;
using testing::StoreComponent;
using testing::TickerComponent;

struct Rig {
  explicit Rig(RuntimeOptions opts = {}) : rt(opts) {
    store = rt.AddComponent(std::make_unique<StoreComponent>());
    auto counter_ptr = std::make_unique<CounterComponent>();
    counter_comp = counter_ptr.get();
    counter = rt.AddComponent(std::move(counter_ptr));
    ticker = rt.AddComponent(std::make_unique<TickerComponent>());
    rt.AddAppDependency(counter);
    rt.AddAppDependency(ticker);
    rt.AddDependency(counter, store);
    counter_comp->SetRuntimeForHook(&rt);
  }
  void Boot() { rt.Boot(); }

  Runtime rt;
  ComponentId store, counter, ticker;
  CounterComponent* counter_comp;
};

RuntimeOptions VampOpts() {
  RuntimeOptions o;
  o.mode = Mode::kVampOS;
  o.hang_threshold = 0;  // off unless a test enables it
  return o;
}

TEST(RuntimeDirect, UnikraftModeCallsDirectly) {
  RuntimeOptions o;
  o.mode = Mode::kUnikraft;
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 1);
  EXPECT_GT(rig.rt.Stats().direct_calls, 0u);
  EXPECT_EQ(rig.rt.Stats().messages, 0u);
}

TEST(RuntimeCall, MessagePassingRoundTrip) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  std::int64_t got = 0;
  RunApp(rig.rt, [&] {
    rig.rt.Call(inc, {});
    got = rig.rt.Call(inc, {}).i64();
  });
  EXPECT_EQ(got, 2);
  EXPECT_GT(rig.rt.Stats().messages, 0u);
}

TEST(RuntimeCall, NestedCallReachesDownstream) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId total = rig.rt.Lookup("store", "total");
  std::int64_t t = 0;
  RunApp(rig.rt, [&] {
    rig.rt.Call(inc, {});
    rig.rt.Call(inc, {});
    t = rig.rt.Call(total, {}).i64();
  });
  EXPECT_EQ(t, 2);
}

TEST(RuntimeCall, RoundRobinPolicyAlsoWorks) {
  RuntimeOptions o = VampOpts();
  o.policy = SchedPolicy::kRoundRobin;
  Rig rig(o);
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 1);
  EXPECT_GT(rig.rt.Stats().empty_polls, 0u);  // RR pays the polling cost
}

TEST(RuntimeLog, LoggedCallsAppendAndCaptureReturns) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    rig.rt.Call(inc, {});
    rig.rt.Call(inc, {});
  });
  EXPECT_EQ(rig.rt.LogEntries(rig.counter), 2u);
  const auto& entries = rig.rt.domain().LogFor(rig.counter).entries();
  const auto& first = entries.begin()->second;
  EXPECT_TRUE(first.have_ret);
  EXPECT_EQ(first.ret.i64(), 1);
  // Each inc made one outbound store.add whose return was recorded.
  EXPECT_EQ(first.outbound.size(), 1u);
}

TEST(RuntimeReboot, StatefulStateRestoredByReplay) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId get = rig.rt.Lookup("counter", "get");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 5; ++i) rig.rt.Call(inc, {});
  });
  auto report = rig.rt.Reboot(rig.counter);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().entries_replayed, 5u);
  std::int64_t v = -1;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 5);
}

TEST(RuntimeReboot, EncapsulatedRestorationDoesNotReenterOthers) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId calls = rig.rt.Lookup("store", "calls");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 4; ++i) rig.rt.Call(inc, {});
  });
  std::int64_t before = 0, after = 0, total = 0;
  RunApp(rig.rt, [&] { before = rig.rt.Call(calls, {}).i64(); });
  ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  RunApp(rig.rt, [&] { after = rig.rt.Call(calls, {}).i64(); });
  // The store must not have been re-entered during counter's replay: the
  // logged return values were fed instead (paper Fig 3).
  EXPECT_EQ(before, after);
  const FunctionId st = rig.rt.Lookup("counter", "store_total");
  RunApp(rig.rt, [&] { total = rig.rt.Call(st, {}).i64(); });
  EXPECT_EQ(total, 4);  // restored from the outbound log
}

TEST(RuntimeReboot, StatelessComponentResets) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId tick = rig.rt.Lookup("ticker", "tick");
  std::int64_t v = 0;
  RunApp(rig.rt, [&] {
    rig.rt.Call(tick, {});
    rig.rt.Call(tick, {});
    v = rig.rt.Call(tick, {}).i64();
  });
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(rig.rt.Reboot(rig.ticker).ok());
  RunApp(rig.rt, [&] { v = rig.rt.Call(tick, {}).i64(); });
  EXPECT_EQ(v, 1);  // fresh Init: no logging/replay for stateless components
}

TEST(RuntimeReboot, RebootReclaimsLeakedMemory) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId leak = rig.rt.Lookup("counter", "leak");
  std::int64_t leaked = 0;
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 50; ++i) {
      leaked = rig.rt.Call(leak, {MsgValue(std::int64_t{1024})}).i64();
    }
  });
  EXPECT_GT(leaked, 50 * 1024);
  ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  std::int64_t after = 0;
  RunApp(rig.rt, [&] {
    after = rig.rt.Call(leak, {MsgValue(std::int64_t{0})}).i64();
  });
  // Rejuvenation: the arena rolled back to the post-init image; the leak is
  // gone ("memory fragmentation and resource leaks ... are eliminated").
  EXPECT_LT(after, leaked / 2);
}

TEST(RuntimeShrink, CancelingFunctionPrunesSessionEntries) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId open = rig.rt.Lookup("counter", "open_session");
  const FunctionId add = rig.rt.Lookup("counter", "add_session");
  const FunctionId close = rig.rt.Lookup("counter", "close_session");
  std::int64_t sid = -1;
  RunApp(rig.rt, [&] {
    sid = rig.rt.Call(open, {}).i64();
    for (int i = 0; i < 5; ++i) {
      rig.rt.Call(add, {MsgValue(sid), MsgValue(std::int64_t{2})});
    }
  });
  const std::size_t before = rig.rt.LogEntries(rig.counter);
  EXPECT_GE(before, 6u);
  RunApp(rig.rt, [&] { rig.rt.Call(close, {MsgValue(sid)}); });
  // adds pruned; open + close boundary entries retained until id reuse.
  EXPECT_EQ(rig.rt.LogEntries(rig.counter), 2u);
}

TEST(RuntimeShrink, SessionIdReusePrunesStalePair) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId open = rig.rt.Lookup("counter", "open_session");
  const FunctionId close = rig.rt.Lookup("counter", "close_session");
  RunApp(rig.rt, [&] {
    const std::int64_t a = rig.rt.Call(open, {}).i64();
    rig.rt.Call(close, {MsgValue(a)});
    rig.rt.Call(open, {});  // reuses id a: stale open/close pair pruned
  });
  EXPECT_EQ(rig.rt.LogEntries(rig.counter), 1u);
}

TEST(RuntimeShrink, ReplayAfterShrinkIsConsistent) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId open = rig.rt.Lookup("counter", "open_session");
  const FunctionId add = rig.rt.Lookup("counter", "add_session");
  const FunctionId close = rig.rt.Lookup("counter", "close_session");
  const FunctionId sum = rig.rt.Lookup("counter", "session_sum");
  std::int64_t keep = -1;
  RunApp(rig.rt, [&] {
    const std::int64_t a = rig.rt.Call(open, {}).i64();
    keep = rig.rt.Call(open, {}).i64();
    rig.rt.Call(add, {MsgValue(a), MsgValue(std::int64_t{7})});
    rig.rt.Call(add, {MsgValue(keep), MsgValue(std::int64_t{9})});
    rig.rt.Call(close, {MsgValue(a)});  // prunes a's adds
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  std::int64_t restored = 0;
  RunApp(rig.rt, [&] { restored = rig.rt.Call(sum, {MsgValue(keep)}).i64(); });
  // The forced-session replay must land the surviving session on the same
  // id with the same accumulated state.
  EXPECT_EQ(restored, 9);
}

TEST(RuntimeShrink, ThresholdCompactionCollapsesHistory) {
  RuntimeOptions o = VampOpts();
  o.log_shrink_threshold = 10;
  Rig rig(o);
  rig.Boot();
  const FunctionId open = rig.rt.Lookup("counter", "open_session");
  const FunctionId add = rig.rt.Lookup("counter", "add_session");
  const FunctionId sum = rig.rt.Lookup("counter", "session_sum");
  std::int64_t sid = -1;
  RunApp(rig.rt, [&] {
    sid = rig.rt.Call(open, {}).i64();
    for (int i = 0; i < 50; ++i) {
      rig.rt.Call(add, {MsgValue(sid), MsgValue(std::int64_t{1})});
    }
  });
  EXPECT_LE(rig.rt.LogEntries(rig.counter), 12u);
  EXPECT_GT(rig.rt.Stats().compactions, 0u);
  // The collapsed history must still replay to the right sum.
  ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  std::int64_t restored = 0;
  RunApp(rig.rt, [&] { restored = rig.rt.Call(sum, {MsgValue(sid)}).i64(); });
  EXPECT_EQ(restored, 50);
}

TEST(RuntimeFault, PanicTriggersRebootAndRetry) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic);
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });
  // Non-deterministic fault: reboot + replay + retried input -> success.
  EXPECT_EQ(got, 2);
  EXPECT_EQ(rig.rt.Stats().reboots, 1u);
  EXPECT_FALSE(rig.rt.terminal_fault().has_value());
}

TEST(RuntimeFault, DeterministicFaultFailStops) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  rig.rt.InjectFault(rig.counter, FaultKind::kPanic, 0, /*sticky=*/true);
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });
  EXPECT_LT(got, 0);  // caller observes the failure
  EXPECT_TRUE(rig.rt.terminal_fault().has_value());
}

TEST(RuntimeFault, ExplicitCrashCallRecovers) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId crash = rig.rt.Lookup("counter", "crash");
  const FunctionId get = rig.rt.Lookup("counter", "get");
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    rig.rt.Call(inc, {});
    rig.rt.Call(inc, {});
  });
  RunApp(rig.rt, [&] { rig.rt.Call(crash, {}); });
  EXPECT_EQ(rig.rt.Stats().reboots, 1u);
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 2);  // state restored despite the crash
}

TEST(RuntimeFault, HangDetectorRebootsComponent) {
  RuntimeOptions o = VampOpts();
  o.hang_threshold = 20 * kMillisecond;
  Rig rig(o);
  rig.Boot();
  rig.rt.InjectFault(rig.counter, FaultKind::kHang);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 1);  // retried after the hang reboot
  EXPECT_GE(rig.rt.Stats().hangs_detected, 1u);
  EXPECT_GE(rig.rt.Stats().reboots, 1u);
}

TEST(RuntimeFault, MpkViolationIsolatedAndRecovered) {
  Rig rig(VampOpts());
  rig.Boot();
  rig.rt.InjectFault(rig.counter, FaultKind::kMpkViolation);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  std::int64_t got = 0;
  RunApp(rig.rt, [&] { got = rig.rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.rt.Stats().reboots, 1u);
  ASSERT_FALSE(rig.rt.reboot_history().empty());
}

TEST(RuntimeMerge, MergedComponentsUseDirectCalls) {
  RuntimeOptions o = VampOpts();
  Runtime rt(o);
  auto store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto counter_ptr = std::make_unique<CounterComponent>();
  auto* cc = counter_ptr.get();
  auto counter = rt.AddComponent(std::move(counter_ptr));
  rt.AddAppDependency(counter);
  rt.AddDependency(counter, store);
  rt.Merge({counter, store});
  cc->SetRuntimeForHook(&rt);
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  const auto msgs_before = rt.Stats().messages;
  std::int64_t got = 0;
  testing::RunApp(rt, [&] { got = rt.Call(inc, {}).i64(); });
  EXPECT_EQ(got, 1);
  // app->counter is a message, counter->store is a direct intra-merge call:
  // exactly one call + one reply.
  EXPECT_EQ(rt.Stats().messages - msgs_before, 2u);
  EXPECT_GT(rt.Stats().direct_calls, 0u);
}

TEST(RuntimeMerge, MergedGroupRebootsAsUnit) {
  RuntimeOptions o = VampOpts();
  Runtime rt(o);
  auto store = rt.AddComponent(std::make_unique<StoreComponent>());
  auto counter_ptr = std::make_unique<CounterComponent>();
  auto* cc = counter_ptr.get();
  auto counter = rt.AddComponent(std::move(counter_ptr));
  rt.AddAppDependency(counter);
  rt.Merge({counter, store});
  cc->SetRuntimeForHook(&rt);
  rt.Boot();
  const FunctionId inc = rt.Lookup("counter", "inc");
  const FunctionId get = rt.Lookup("counter", "get");
  const FunctionId total = rt.Lookup("store", "total");
  testing::RunApp(rt, [&] {
    for (int i = 0; i < 3; ++i) rt.Call(inc, {});
  });
  ASSERT_TRUE(rt.Reboot(counter).ok());
  std::int64_t v = 0, t = 0;
  testing::RunApp(rt, [&] {
    v = rt.Call(get, {}).i64();
    t = rt.Call(total, {}).i64();
  });
  EXPECT_EQ(v, 3);
  // Intra-group calls execute for real during replay, so the merged store's
  // state is rebuilt too.
  EXPECT_EQ(t, 3);
}

TEST(RuntimeStats, MemoryReportAccountsLogs) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 10; ++i) rig.rt.Call(inc, {});
  });
  const auto mem = rig.rt.Memory();
  EXPECT_GT(mem.log_bytes, 0u);
  EXPECT_GE(mem.log_entries, 10u);
  EXPECT_GT(mem.component_arena_bytes, 0u);
  EXPECT_GT(mem.snapshot_bytes, 0u);
}

TEST(RuntimeRejuvenate, AllComponentsOneByOne) {
  Rig rig(VampOpts());
  rig.Boot();
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  const FunctionId get = rig.rt.Lookup("counter", "get");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 3; ++i) rig.rt.Call(inc, {});
  });
  auto reports = rig.rt.RejuvenateAll();
  EXPECT_EQ(reports.size(), 3u);  // store, counter, ticker
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 3);
}

}  // namespace
}  // namespace vampos
