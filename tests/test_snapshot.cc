// Page-granular checkpoint engine tests: diff-restore equivalence against
// the full-copy engine (randomized mutation fuzz), zero-page elision,
// baseline sharing, parallel hashing, size-mismatch error paths, and the
// runtime-level properties the paper cares about — incremental reboots
// moving a small fraction of the bytes, corrupt checkpoints failing the
// reboot (not the process), and rejuvenation-time checkpoint refresh.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/rejuvenation.h"
#include "mem/arena.h"
#include "mem/snapshot.h"
#include "testing.h"

namespace vampos {
namespace {

using core::Mode;
using core::RebootReport;
using core::Runtime;
using core::RuntimeOptions;
using mem::Arena;
using mem::PageBaseline;
using mem::Snapshot;
using mem::SnapshotConfig;
using mem::SnapshotMode;
using mem::SnapshotStats;
using msg::MsgValue;
using testing::CounterComponent;
using testing::RunApp;
using testing::TickerComponent;

constexpr std::size_t kPage = Arena::kPageSize;

SnapshotConfig IncrementalCfg(PageBaseline* baseline = nullptr,
                              int workers = 0) {
  SnapshotConfig cfg;
  cfg.mode = SnapshotMode::kIncremental;
  cfg.baseline = baseline;
  cfg.workers = workers;
  return cfg;
}

void FillRandom(Arena& arena, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> byte(0, 255);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    arena.base()[i] = static_cast<std::byte>(byte(rng));
  }
}

// --------------------------------------------------- engine equivalence

TEST(SnapshotIncremental, RoundTripRestoresBytes) {
  Arena arena(16 * kPage);
  std::mt19937_64 rng(7);
  FillRandom(arena, rng);
  std::vector<std::byte> original(arena.base(), arena.base() + arena.size());

  Snapshot snap = Snapshot::Capture(arena, IncrementalCfg());
  FillRandom(arena, rng);  // scribble everywhere
  ASSERT_TRUE(snap.Restore(arena, IncrementalCfg()).ok());
  EXPECT_EQ(std::memcmp(arena.base(), original.data(), arena.size()), 0);
}

// The core equivalence property: after any sequence of arena mutations, a
// diff-restore from an incremental snapshot must leave the arena
// byte-identical to a full-copy restore of the same captured image.
TEST(SnapshotIncremental, FuzzDiffRestoreMatchesFullCopy) {
  constexpr std::size_t kPages = 32;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::mt19937_64 rng(seed);
    Arena incr_arena(kPages * kPage, "incr");
    Arena full_arena(kPages * kPage, "full");
    FillRandom(incr_arena, rng);
    // Some all-zero pages in the initial image exercise elision.
    std::memset(incr_arena.base() + 3 * kPage, 0, 2 * kPage);
    std::memcpy(full_arena.base(), incr_arena.base(), incr_arena.size());

    PageBaseline baseline;
    Snapshot incr = Snapshot::Capture(incr_arena, IncrementalCfg(&baseline));
    Snapshot full = Snapshot::Capture(full_arena);

    std::uniform_int_distribution<std::size_t> off_d(0, kPages * kPage - 1);
    std::uniform_int_distribution<std::size_t> len_d(1, 3 * kPage);
    std::uniform_int_distribution<int> kind_d(0, 3);
    std::uniform_int_distribution<int> byte_d(0, 255);
    for (int round = 0; round < 20; ++round) {
      // Mutate both arenas identically: byte scribbles, page zeroing,
      // whole-page rewrites, and cross-page-boundary runs.
      const int mutations = 1 + kind_d(rng);
      for (int m = 0; m < mutations; ++m) {
        const std::size_t off = off_d(rng);
        const std::size_t len =
            std::min(len_d(rng), kPages * kPage - off);
        switch (kind_d(rng)) {
          case 0:
            for (std::size_t i = off; i < off + len; ++i) {
              incr_arena.base()[i] = static_cast<std::byte>(byte_d(rng));
            }
            break;
          case 1:
            std::memset(incr_arena.base() + (off / kPage) * kPage, 0, kPage);
            break;
          case 2:
            std::memset(incr_arena.base() + off, byte_d(rng), len);
            break;
          case 3:
          default:
            break;  // no-op round: clean pages must also restore correctly
        }
      }
      std::memcpy(full_arena.base(), incr_arena.base(), incr_arena.size());

      ASSERT_TRUE(incr.Restore(incr_arena, IncrementalCfg(&baseline)).ok());
      ASSERT_TRUE(full.Restore(full_arena).ok());
      ASSERT_EQ(std::memcmp(incr_arena.base(), full_arena.base(),
                            incr_arena.size()),
                0)
          << "divergence at seed " << seed << " round " << round;
    }
  }
}

// Recapture must track the live arena exactly as a fresh capture would,
// across dirty/zero/clean transitions.
TEST(SnapshotIncremental, FuzzRecaptureMatchesFreshCapture) {
  constexpr std::size_t kPages = 16;
  std::mt19937_64 rng(42);
  Arena arena(kPages * kPage);
  FillRandom(arena, rng);
  Snapshot snap = Snapshot::Capture(arena, IncrementalCfg());

  std::uniform_int_distribution<std::size_t> page_d(0, kPages - 1);
  std::uniform_int_distribution<int> byte_d(0, 255);
  for (int round = 0; round < 30; ++round) {
    const std::size_t page = page_d(rng);
    if (round % 3 == 0) {
      std::memset(arena.base() + page * kPage, 0, kPage);  // page goes zero
    } else {
      arena.base()[page * kPage + static_cast<std::size_t>(byte_d(rng))] =
          static_cast<std::byte>(byte_d(rng));
    }
    ASSERT_TRUE(snap.Recapture(arena, IncrementalCfg()).ok());

    std::vector<std::byte> live(arena.base(), arena.base() + arena.size());
    FillRandom(arena, rng);  // scribble, then prove the recapture stuck
    ASSERT_TRUE(snap.Restore(arena, IncrementalCfg()).ok());
    ASSERT_EQ(std::memcmp(arena.base(), live.data(), arena.size()), 0)
        << "recapture diverged at round " << round;
  }
}

// ------------------------------------------------- zero pages & baseline

TEST(SnapshotIncremental, ZeroPagesTakeNoStorage) {
  Arena arena(64 * kPage);  // arenas start zeroed
  arena.base()[0] = std::byte{0xAA};  // exactly one non-zero page
  SnapshotStats stats;
  Snapshot snap = Snapshot::Capture(arena, IncrementalCfg(), &stats);
  EXPECT_EQ(stats.pages_total, 64u);
  EXPECT_EQ(stats.pages_zero, 63u);
  EXPECT_EQ(stats.pages_dirty, 1u);
  EXPECT_EQ(snap.stored_bytes(), kPage);
  EXPECT_EQ(snap.size_bytes(), arena.size());

  // Scribble a zero-elided page; the diff-restore must zero it again.
  std::memset(arena.base() + 7 * kPage, 0x5C, kPage);
  SnapshotStats rstats;
  ASSERT_TRUE(snap.Restore(arena, IncrementalCfg(), &rstats).ok());
  EXPECT_EQ(rstats.pages_dirty, 1u);
  EXPECT_EQ(rstats.bytes_copied, kPage);
  for (std::size_t i = 0; i < kPage; ++i) {
    ASSERT_EQ(arena.base()[7 * kPage + i], std::byte{0});
  }
}

TEST(SnapshotIncremental, BaselineSharesIdenticalPagesAcrossSnapshots) {
  Arena a(8 * kPage, "a");
  Arena b(8 * kPage, "b");
  std::mt19937_64 rng(3);
  FillRandom(a, rng);
  std::memcpy(b.base(), a.base(), a.size());

  PageBaseline baseline;
  SnapshotStats sa, sb;
  Snapshot snap_a = Snapshot::Capture(a, IncrementalCfg(&baseline), &sa);
  Snapshot snap_b = Snapshot::Capture(b, IncrementalCfg(&baseline), &sb);

  // First capture pools every page; the identical second image copies
  // nothing and shares all of them.
  EXPECT_EQ(sa.pages_dirty, 8u);
  EXPECT_EQ(sb.pages_dirty, 0u);
  EXPECT_EQ(sb.pages_shared, 8u);
  EXPECT_EQ(sb.bytes_copied, 0u);
  EXPECT_EQ(baseline.pages(), 8u);
  EXPECT_EQ(baseline.hits(), 8u);
  EXPECT_EQ(snap_a.stored_bytes(), 0u);  // all pages live in the pool
  EXPECT_EQ(snap_b.stored_bytes(), 0u);

  // Shared storage must not alias: restoring b cannot disturb a's image.
  std::vector<std::byte> image_a(a.base(), a.base() + a.size());
  FillRandom(b, rng);
  ASSERT_TRUE(snap_b.Restore(b, IncrementalCfg(&baseline)).ok());
  EXPECT_EQ(std::memcmp(b.base(), image_a.data(), b.size()), 0);
  FillRandom(a, rng);
  ASSERT_TRUE(snap_a.Restore(a, IncrementalCfg(&baseline)).ok());
  EXPECT_EQ(std::memcmp(a.base(), image_a.data(), a.size()), 0);
}

// ------------------------------------------------------- parallel hashing

TEST(SnapshotIncremental, ParallelHashPassIsDeterministic) {
  Arena arena(512 * kPage);  // large enough to clear the per-worker floor
  std::mt19937_64 rng(11);
  FillRandom(arena, rng);
  std::vector<std::byte> original(arena.base(), arena.base() + arena.size());

  SnapshotStats serial, parallel;
  Snapshot snap1 = Snapshot::Capture(arena, IncrementalCfg(nullptr, 0),
                                     &serial);
  Snapshot snap4 = Snapshot::Capture(arena, IncrementalCfg(nullptr, 4),
                                     &parallel);
  EXPECT_EQ(serial.pages_dirty, parallel.pages_dirty);
  EXPECT_EQ(serial.pages_zero, parallel.pages_zero);

  FillRandom(arena, rng);
  ASSERT_TRUE(snap4.Restore(arena, IncrementalCfg(nullptr, 4)).ok());
  EXPECT_EQ(std::memcmp(arena.base(), original.data(), arena.size()), 0);
  FillRandom(arena, rng);
  ASSERT_TRUE(snap1.Restore(arena, IncrementalCfg(nullptr, 4)).ok());
  EXPECT_EQ(std::memcmp(arena.base(), original.data(), arena.size()), 0);
}

// -------------------------------------------------------- error surfaces

TEST(SnapshotErrors, RestoreSizeMismatchIsStatusNotFatal) {
  Arena small(4 * kPage, "small");
  Arena big(8 * kPage, "big");
  for (const SnapshotMode mode :
       {SnapshotMode::kFullCopy, SnapshotMode::kIncremental}) {
    SnapshotConfig cfg;
    cfg.mode = mode;
    Snapshot snap = Snapshot::Capture(small, cfg);
    const Status st = snap.Restore(big, cfg);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Errno::kInval);
    EXPECT_NE(st.message().find("size mismatch"), std::string::npos);
  }
}

TEST(SnapshotErrors, RecaptureSizeMismatchIsStatusNotFatal) {
  Arena small(4 * kPage, "small");
  Arena big(8 * kPage, "big");
  Snapshot snap = Snapshot::Capture(small, IncrementalCfg());
  const Status st = snap.Recapture(big, IncrementalCfg());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Errno::kInval);
}

// ---------------------------------------------------- runtime integration

struct SnapRig {
  explicit SnapRig(SnapshotMode mode, int workers = 0) : rt(Opts(mode,
                                                                 workers)) {
    counter = rt.AddComponent(std::make_unique<CounterComponent>());
    ticker = rt.AddComponent(std::make_unique<TickerComponent>());
    rt.AddAppDependency(counter);
    rt.AddAppDependency(ticker);
    rt.Boot();
  }
  static RuntimeOptions Opts(SnapshotMode mode, int workers) {
    RuntimeOptions o;
    o.mode = Mode::kVampOS;
    o.hang_threshold = 0;
    o.snapshot_mode = mode;
    o.snapshot_workers = workers;
    return o;
  }
  std::uint64_t BytesCopied() {
    return rt.metrics().FindCounter("snapshot.bytes_copied")->value();
  }
  Runtime rt;
  ComponentId counter, ticker;
};

// The acceptance property: on a mostly-clean workload, incremental reboots
// move at least 5x fewer bytes through the restore path than full copies.
TEST(SnapshotRuntime, IncrementalCopiesAtLeastFiveTimesFewerBytes) {
  constexpr int kReboots = 5;
  std::uint64_t bytes[2] = {0, 0};
  std::size_t pages_total = 0;
  const SnapshotMode modes[] = {SnapshotMode::kFullCopy,
                                SnapshotMode::kIncremental};
  for (int m = 0; m < 2; ++m) {
    SnapRig rig(modes[m]);
    const FunctionId inc = rig.rt.Lookup("counter", "inc");
    RunApp(rig.rt, [&] {
      for (int i = 0; i < 10; ++i) rig.rt.Call(inc, {});
    });
    const std::uint64_t before = rig.BytesCopied();
    for (int i = 0; i < kReboots; ++i) {
      auto result = rig.rt.Reboot(rig.counter);
      ASSERT_TRUE(result.ok());
      pages_total = result.value().snapshot_pages_total;
      rig.rt.RunUntilIdle();
    }
    bytes[m] = rig.BytesCopied() - before;
    // State must survive either engine identically.
    const FunctionId get = rig.rt.Lookup("counter", "get");
    std::int64_t v = 0;
    RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
    EXPECT_EQ(v, 10);
  }
  EXPECT_GT(pages_total, 0u);
  EXPECT_GT(bytes[0], 0u);
  EXPECT_GE(bytes[0], 5 * std::max<std::uint64_t>(bytes[1], 1))
      << "full-copy moved " << bytes[0] << " bytes, incremental " << bytes[1];
}

TEST(SnapshotRuntime, RebootReportCarriesPageAccounting) {
  SnapRig rig(SnapshotMode::kIncremental);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });
  auto result = rig.rt.Reboot(rig.counter);
  ASSERT_TRUE(result.ok());
  const RebootReport& r = result.value();
  EXPECT_EQ(r.snapshot_pages_total, (256u * 1024u) / kPage);
  EXPECT_GT(r.snapshot_pages_dirty, 0u);
  EXPECT_EQ(r.snapshot_bytes_copied, r.snapshot_pages_dirty * kPage);
}

TEST(SnapshotRuntime, MemoryReportCountsCheckpointStorage) {
  SnapRig rig(SnapshotMode::kIncremental);
  const auto mem_report = rig.rt.Memory();
  // Zero-elision + baseline pooling: private checkpoint storage stays a
  // small fraction of the arena footprint for freshly booted components.
  EXPECT_LT(mem_report.snapshot_stored_bytes + mem_report.snapshot_baseline_bytes,
            (256u + 64u) * 1024u / 4);
  EXPECT_GT(rig.rt.snapshot_baseline().pages(), 0u);
}

TEST(SnapshotRuntime, CorruptCheckpointFailsRebootThroughFaultPath) {
  SnapRig rig(SnapshotMode::kIncremental);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] { rig.rt.Call(inc, {}); });

  rig.rt.CorruptCheckpointForTest(rig.counter);
  auto result = rig.rt.Reboot(rig.counter);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Errno::kIo);
  EXPECT_NE(result.status().message().find("checkpoint restore failed"),
            std::string::npos);

  // The failure stays contained: no process abort, and the rest of the
  // runtime keeps serving.
  const FunctionId tick = rig.rt.Lookup("ticker", "tick");
  std::int64_t t = 0;
  RunApp(rig.rt, [&] { t = rig.rt.Call(tick, {}).i64(); });
  EXPECT_GT(t, 0);
}

TEST(SnapshotRuntime, FullCopyFallbackStillRecovers) {
  SnapRig rig(SnapshotMode::kFullCopy);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 3; ++i) rig.rt.Call(inc, {});
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  rig.rt.RunUntilIdle();
  const FunctionId get = rig.rt.Lookup("counter", "get");
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 3);
}

TEST(SnapshotRuntime, ParallelWorkersRestoreIdentically) {
  SnapRig rig(SnapshotMode::kIncremental, /*workers=*/4);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 7; ++i) rig.rt.Call(inc, {});
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.counter).ok());
  rig.rt.RunUntilIdle();
  const FunctionId get = rig.rt.Lookup("counter", "get");
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 7);
}

// Rejuvenation-time checkpoint refresh: the replayed history is folded into
// the checkpoint, so the next reboot replays nothing and still restores the
// same state.
TEST(SnapshotRuntime, RejuvenationRefreshFoldsReplayIntoCheckpoint) {
  SnapRig rig(SnapshotMode::kIncremental);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 6; ++i) rig.rt.Call(inc, {});
  });

  core::RejuvenationScheduler sched(rig.rt, {rig.counter}, 0);
  sched.set_refresh_checkpoints(true);
  auto refreshed = sched.ForceNext();
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_GT(refreshed->entries_replayed, 0u);
  rig.rt.RunUntilIdle();

  // The refresh pruned the replayed entries and re-captured the arena: a
  // second reboot replays nothing but restores the full state.
  auto again = rig.rt.Reboot(rig.counter);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().entries_replayed, 0u);
  rig.rt.RunUntilIdle();
  const FunctionId get = rig.rt.Lookup("counter", "get");
  std::int64_t v = 0;
  RunApp(rig.rt, [&] { v = rig.rt.Call(get, {}).i64(); });
  EXPECT_EQ(v, 6);
}

TEST(SnapshotRuntime, RefreshOffKeepsReplayingHistory) {
  SnapRig rig(SnapshotMode::kIncremental);
  const FunctionId inc = rig.rt.Lookup("counter", "inc");
  RunApp(rig.rt, [&] {
    for (int i = 0; i < 4; ++i) rig.rt.Call(inc, {});
  });
  core::RejuvenationScheduler sched(rig.rt, {rig.counter}, 0);
  ASSERT_TRUE(sched.ForceNext().has_value());
  rig.rt.RunUntilIdle();
  auto again = rig.rt.Reboot(rig.counter);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again.value().entries_replayed, 0u);  // default: log untouched
}

}  // namespace
}  // namespace vampos
