// Fiber scheduler tests: spawn/dispatch/yield/block/wake, fault capture on
// the fiber's own stack, abandonment semantics, and switch accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/panic.h"
#include "sched/fiber.h"

namespace vampos::sched {
namespace {

TEST(Fiber, RunsToCompletion) {
  FiberManager fm;
  int ran = 0;
  Fiber* f = fm.Spawn("t", 0, [&] { ran = 42; });
  EXPECT_EQ(f->state(), FiberState::kReady);
  EXPECT_EQ(fm.Dispatch(f), FiberState::kDone);
  EXPECT_EQ(ran, 42);
}

TEST(Fiber, YieldReturnsControlAndResumes) {
  FiberManager fm;
  std::vector<int> trace;
  Fiber* f = fm.Spawn("t", 0, [&] {
    trace.push_back(1);
    fm.Yield();
    trace.push_back(2);
  });
  EXPECT_EQ(fm.Dispatch(f), FiberState::kReady);
  trace.push_back(10);
  EXPECT_EQ(fm.Dispatch(f), FiberState::kDone);
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2}));
}

TEST(Fiber, BlockAndWake) {
  FiberManager fm;
  int phase = 0;
  Fiber* f = fm.Spawn("t", 0, [&] {
    phase = 1;
    fm.Block();
    phase = 2;
  });
  fm.Dispatch(f);
  EXPECT_EQ(f->state(), FiberState::kBlocked);
  EXPECT_EQ(phase, 1);
  fm.Wake(f);
  EXPECT_EQ(f->state(), FiberState::kReady);
  fm.Dispatch(f);
  EXPECT_EQ(phase, 2);
}

TEST(Fiber, InterleavesTwoFibers) {
  FiberManager fm;
  std::string log;
  Fiber* a = fm.Spawn("a", 0, [&] {
    log += "a1 ";
    fm.Yield();
    log += "a2 ";
  });
  Fiber* b = fm.Spawn("b", 1, [&] {
    log += "b1 ";
    fm.Yield();
    log += "b2 ";
  });
  fm.Dispatch(a);
  fm.Dispatch(b);
  fm.Dispatch(a);
  fm.Dispatch(b);
  EXPECT_EQ(log, "a1 b1 a2 b2 ");
}

TEST(Fiber, FaultCapturedNotPropagated) {
  FiberManager fm;
  Fiber* f = fm.Spawn("t", 3, [&]() {
    throw ComponentFault(3, FaultKind::kPanic, "boom");
  });
  // The throw must not escape Dispatch.
  EXPECT_EQ(fm.Dispatch(f), FiberState::kFaulted);
  ASSERT_TRUE(f->fault().has_value());
  EXPECT_EQ(f->fault()->kind(), FaultKind::kPanic);
  EXPECT_EQ(f->fault()->component(), 3);
}

TEST(Fiber, FaultAfterYield) {
  FiberManager fm;
  Fiber* f = fm.Spawn("t", 1, [&] {
    fm.Yield();
    throw ComponentFault(1, FaultKind::kInjected, "later");
  });
  EXPECT_EQ(fm.Dispatch(f), FiberState::kReady);
  EXPECT_EQ(fm.Dispatch(f), FiberState::kFaulted);
}

TEST(Fiber, DestroyAbandonedBlockedFiber) {
  FiberManager fm;
  Fiber* f = fm.Spawn("t", 0, [&] { fm.Block(); });
  fm.Dispatch(f);
  const auto live = fm.live_fibers();
  fm.Destroy(f);  // mid-execution abandonment (component reboot path)
  EXPECT_EQ(fm.live_fibers(), live - 1);
}

TEST(Fiber, CurrentTracksExecution) {
  FiberManager fm;
  EXPECT_EQ(fm.Current(), nullptr);
  Fiber* f = fm.Spawn("t", 0, [&] { EXPECT_EQ(fm.Current()->name(), "t"); });
  fm.Dispatch(f);
  EXPECT_EQ(fm.Current(), nullptr);
}

TEST(Fiber, SwitchesAreCounted) {
  FiberManager fm;
  const auto before = fm.context_switches();
  Fiber* f = fm.Spawn("t", 0, [&] { fm.Yield(); });
  fm.Dispatch(f);  // in + out = 2
  fm.Dispatch(f);  // in + out = 2
  EXPECT_EQ(fm.context_switches(), before + 4);
}

TEST(Fiber, DispatchCountPerFiber) {
  FiberManager fm;
  Fiber* f = fm.Spawn("t", 0, [&] {
    fm.Yield();
    fm.Yield();
  });
  fm.Dispatch(f);
  fm.Dispatch(f);
  fm.Dispatch(f);
  EXPECT_EQ(f->dispatches(), 3u);
}

TEST(Fiber, ManyFibersDeepStacks) {
  FiberManager fm;
  // Each fiber burns a few KB of stack; all must complete cleanly.
  std::vector<Fiber*> fibers;
  int sum = 0;
  for (int i = 0; i < 50; ++i) {
    fibers.push_back(fm.Spawn("f" + std::to_string(i), i, [&sum] {
      volatile char pad[8192];
      pad[0] = 1;
      pad[8191] = 2;
      sum += pad[0] + pad[8191];
    }));
  }
  for (Fiber* f : fibers) EXPECT_EQ(fm.Dispatch(f), FiberState::kDone);
  EXPECT_EQ(sum, 150);
}

TEST(Fiber, NestedSpawnFromFiber) {
  FiberManager fm;
  Fiber* inner = nullptr;
  Fiber* outer = fm.Spawn("outer", 0, [&] {
    inner = fm.Spawn("inner", 1, [] {});
    fm.Yield();
  });
  fm.Dispatch(outer);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(fm.Dispatch(inner), FiberState::kDone);
  EXPECT_EQ(fm.Dispatch(outer), FiberState::kDone);
}

}  // namespace
}  // namespace vampos::sched
