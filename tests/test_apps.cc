// Application tests: MiniDb (SQLite analogue), WebServer (Nginx), KvStore
// (Redis with AOF), EchoServer — each driven end-to-end through the full
// unikernel stack, including recovery scenarios.
#include <gtest/gtest.h>

#include "apps/echo.h"
#include "apps/kvstore.h"
#include "apps/minidb.h"
#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "apps/webserver.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::EchoServer;
using apps::KvStore;
using apps::MiniDb;
using apps::Posix;
using apps::SimClient;
using apps::StackInfo;
using apps::StackSpec;
using apps::WebServer;
using core::Runtime;
using core::RuntimeOptions;
using testing::RunApp;

RuntimeOptions Opts() {
  RuntimeOptions o;
  o.hang_threshold = 0;
  return o;
}

struct AppRig {
  explicit AppRig(StackSpec spec) : rt(Opts()) {
    info = BuildStack(rt, platform, rings, spec);
    apps::BootAndMount(rt);
    px = std::make_unique<Posix>(rt);
  }
  void Pump(SimClient& client, int rounds = 10) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  }
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

// --------------------------------------------------------------- MiniDb

TEST(MiniDbTest, InsertSelectDelete) {
  AppRig rig(StackSpec::Sqlite());
  RunApp(rig.rt, [&] {
    MiniDb db(*rig.px, "/db.journal");
    ASSERT_TRUE(db.Open());
    EXPECT_EQ(db.Insert("k1", "v1"), 0);
    EXPECT_EQ(db.Insert("k2", "v2"), 0);
    EXPECT_EQ(db.Select("k1"), "v1");
    EXPECT_EQ(db.Delete("k1"), 0);
    EXPECT_FALSE(db.Select("k1").has_value());
    EXPECT_EQ(db.Count(), 1u);
    db.Close();
  });
}

TEST(MiniDbTest, SqlFrontEnd) {
  AppRig rig(StackSpec::Sqlite());
  RunApp(rig.rt, [&] {
    MiniDb db(*rig.px, "/db2.journal");
    ASSERT_TRUE(db.Open());
    EXPECT_EQ(db.Exec("INSERT a 1"), "OK");
    EXPECT_EQ(db.Exec("SELECT a"), "1");
    EXPECT_EQ(db.Exec("COUNT"), "1");
    EXPECT_EQ(db.Exec("DELETE a"), "OK");
    EXPECT_EQ(db.Exec("SELECT a"), "(null)");
    EXPECT_EQ(db.Exec("BOGUS"), "ERR syntax");
    db.Close();
  });
}

TEST(MiniDbTest, JournalReplayRebuildsTable) {
  AppRig rig(StackSpec::Sqlite());
  RunApp(rig.rt, [&] {
    MiniDb db(*rig.px, "/db3.journal");
    ASSERT_TRUE(db.Open());
    for (int i = 0; i < 20; ++i) {
      db.Insert("k" + std::to_string(i), "v" + std::to_string(i));
    }
    db.Delete("k0");
    db.Close();

    MiniDb db2(*rig.px, "/db3.journal");
    EXPECT_EQ(db2.ReplayJournal(), 21u);
    EXPECT_EQ(db2.Count(), 19u);
    EXPECT_EQ(db2.Select("k7"), "v7");
  });
}

TEST(MiniDbTest, SurvivesVfsAndNinePfsReboots) {
  AppRig rig(StackSpec::Sqlite());
  auto db = std::make_unique<MiniDb>(*rig.px, "/db4.journal");
  RunApp(rig.rt, [&] {
    ASSERT_TRUE(db->Open());
    for (int i = 0; i < 10; ++i) db->Insert("a" + std::to_string(i), "x");
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.info.vfs).ok());
  ASSERT_TRUE(rig.rt.Reboot(rig.info.ninep).ok());
  RunApp(rig.rt, [&] {
    // In-memory table untouched; journal fd still writable after reboots.
    EXPECT_EQ(db->Count(), 10u);
    EXPECT_EQ(db->Insert("post", "reboot"), 0);
    db->Close();
  });
  auto journal = rig.platform.ninep.ReadFile("/db4.journal");
  ASSERT_TRUE(journal.has_value());
  EXPECT_NE(journal->find("post"), std::string::npos);
}

// ------------------------------------------------------------- WebServer

TEST(WebServerTest, ServesFilesOverPersistentConnections) {
  AppRig rig(StackSpec::Nginx());
  rig.platform.ninep.PutFile("/www/index.html",
                             std::string(180, 'x'));  // paper's 180-byte file
  bool stop = false;
  WebServer server(*rig.px, 80, "/www");
  rig.rt.SpawnApp("nginx", [&] {
    ASSERT_TRUE(server.Setup());
    server.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 80);
  const int h = client.Connect();
  rig.Pump(client);
  ASSERT_TRUE(client.Established(h));
  for (int i = 0; i < 3; ++i) {
    client.Send(h, "GET /index.html\n");
    rig.Pump(client);
    const std::string resp = client.TakeReceived(h);
    EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(resp.find(std::string(180, 'x')), std::string::npos);
  }
  client.Send(h, "GET /missing\n");
  rig.Pump(client);
  EXPECT_NE(client.TakeReceived(h).find("404"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 4u);
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

TEST(WebServerTest, ManyConcurrentClients) {
  AppRig rig(StackSpec::Nginx());
  rig.platform.ninep.PutFile("/www/f", "hello");
  bool stop = false;
  WebServer server(*rig.px, 80, "/www");
  rig.rt.SpawnApp("nginx", [&] {
    ASSERT_TRUE(server.Setup());
    server.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 80);
  std::vector<int> handles;
  for (int i = 0; i < 20; ++i) handles.push_back(client.Connect());
  rig.Pump(client, 30);
  int ok = 0;
  for (int h : handles) {
    if (!client.Established(h)) continue;
    client.Send(h, "GET /f\n");
  }
  rig.Pump(client, 30);
  for (int h : handles) {
    if (client.TakeReceived(h).find("hello") != std::string::npos) ok++;
  }
  EXPECT_EQ(ok, 20);
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

// --------------------------------------------------------------- KvStore

TEST(KvStoreTest, SetGetWithAof) {
  AppRig rig(StackSpec::Redis());
  RunApp(rig.rt, [&] {
    KvStore kv(*rig.px, "/aof", true);
    ASSERT_TRUE(kv.OpenAof());
    EXPECT_EQ(kv.Set("name", "redis"), 0);
    EXPECT_EQ(kv.Get("name"), "redis");
    EXPECT_FALSE(kv.Get("none").has_value());
    kv.CloseAof();
  });
  auto aof = rig.platform.ninep.ReadFile("/aof");
  ASSERT_TRUE(aof.has_value());
  EXPECT_NE(aof->find("S name redis"), std::string::npos);
}

TEST(KvStoreTest, AofReloadAfterFullReboot) {
  AppRig rig(StackSpec::Redis());
  RunApp(rig.rt, [&] {
    KvStore kv(*rig.px, "/aof2", true);
    ASSERT_TRUE(kv.OpenAof());
    for (int i = 0; i < 30; ++i) {
      kv.Set("k" + std::to_string(i), "v" + std::to_string(i));
    }
    kv.CloseAof();
  });
  // Full reboot: a brand-new runtime over the same host platform (disk
  // contents survive), then the slow AOF reload the paper's Fig 8 baseline
  // has to pay.
  Runtime rt2(Opts());
  BuildStack(rt2, rig.platform, rig.rings, StackSpec::Redis());
  apps::BootAndMount(rt2);
  Posix px2(rt2);
  std::size_t loaded = 0;
  std::optional<std::string> v;
  rt2.SpawnApp("reload", [&] {
    KvStore kv(px2, "/aof2", true);
    loaded = kv.LoadAof();
    v = kv.Get("k7");
  });
  rt2.RunUntilIdle();
  EXPECT_EQ(loaded, 30u);
  EXPECT_EQ(v, "v7");
}

TEST(KvStoreTest, NetworkProtocol) {
  AppRig rig(StackSpec::Redis());
  bool stop = false;
  KvStore kv(*rig.px, "/aof3", false);
  rig.rt.SpawnApp("redis", [&] {
    ASSERT_TRUE(kv.Setup(6379));
    kv.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 6379);
  const int h = client.Connect();
  rig.Pump(client);
  ASSERT_TRUE(client.Established(h));
  client.Send(h, "SET color blue\n");
  rig.Pump(client);
  EXPECT_EQ(client.TakeReceived(h), "+OK\n");
  client.Send(h, "GET color\n");
  rig.Pump(client);
  EXPECT_EQ(client.TakeReceived(h), "$blue\n");
  client.Send(h, "GET nope\n");
  rig.Pump(client);
  EXPECT_EQ(client.TakeReceived(h), "$-1\n");
  client.Send(h, "PING\n");
  rig.Pump(client);
  EXPECT_EQ(client.TakeReceived(h), "+PONG\n");
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

TEST(KvStoreTest, KeepsDataAcross9pfsFailureRecovery) {
  // The Fig 8 scenario in miniature: panic injected into 9PFS while Redis
  // serves; VampOS reboots only 9PFS; the KV table (app memory) survives
  // and no AOF reload is needed.
  AppRig rig(StackSpec::Redis());
  bool stop = false;
  KvStore kv(*rig.px, "/aof4", true);
  rig.rt.SpawnApp("redis", [&] {
    ASSERT_TRUE(kv.OpenAof());
    ASSERT_TRUE(kv.Setup(6379));
    kv.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 6379);
  const int h = client.Connect();
  rig.Pump(client);
  ASSERT_TRUE(client.Established(h));
  for (int i = 0; i < 10; ++i) {
    client.Send(h, "SET k" + std::to_string(i) + " v\n");
    rig.Pump(client);
  }
  client.TakeReceived(h);

  rig.rt.InjectFault(rig.info.ninep, FaultKind::kPanic);
  client.Send(h, "SET trigger x\n");  // next fsync path hits the fault
  rig.Pump(client, 20);
  EXPECT_EQ(rig.rt.Stats().reboots, 1u);

  client.TakeReceived(h);
  client.Send(h, "GET k3\n");
  rig.Pump(client);
  EXPECT_EQ(client.TakeReceived(h), "$v\n");  // table intact, conn alive
  EXPECT_FALSE(client.Broken(h));
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

// ------------------------------------------------------------------ Echo

TEST(EchoTest, EchoesAndLogStaysSmall) {
  AppRig rig(StackSpec::Echo());
  bool stop = false;
  EchoServer server(*rig.px, 7);
  rig.rt.SpawnApp("echo", [&] {
    ASSERT_TRUE(server.Setup());
    server.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 7);
  for (int round = 0; round < 10; ++round) {
    const int h = client.Connect();
    rig.Pump(client);
    ASSERT_TRUE(client.Established(h));
    const std::string msg(159, 'e');  // the paper's 159-byte echo payload
    client.Send(h, msg);
    rig.Pump(client);
    EXPECT_EQ(client.TakeReceived(h), msg);
    client.Close(h);
    rig.Pump(client);
  }
  EXPECT_EQ(server.messages_echoed(), 10u);
  // Sessions closed after every message: the shrunk log stays tiny.
  EXPECT_LE(rig.rt.LogEntries(rig.info.lwip), 24u);
  EXPECT_LE(rig.rt.LogEntries(rig.info.vfs), 24u);
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
}

}  // namespace
}  // namespace vampos
