// Tests for the extended VFS surface: dup (fid refcounting), unlink, rename
// (open fids follow), ftruncate, readdir, stat_path — including behaviour
// across component reboots.
#include <gtest/gtest.h>

#include "apps/posix.h"
#include "apps/stack.h"
#include "testing.h"

namespace vampos {
namespace {

using apps::BuildStack;
using apps::Posix;
using apps::StackInfo;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using testing::RunApp;

struct Rig {
  Rig() : rt(Opts()) {
    info = BuildStack(rt, platform, rings, StackSpec::Sqlite());
    apps::BootAndMount(rt);
    px = std::make_unique<Posix>(rt);
  }
  static RuntimeOptions Opts() {
    RuntimeOptions o;
    o.hang_threshold = 0;
    return o;
  }
  uk::Platform platform;
  uk::HostRingView rings;
  Runtime rt;
  StackInfo info;
  std::unique_ptr<Posix> px;
};

TEST(VfsExt, DupSharesBackendIndependentOffset) {
  Rig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/d");
    rig.px->Write(fd, "abcdef");
    const auto d = rig.px->Dup(fd);
    ASSERT_GE(d, 0);
    // Dup'd fd has its own offset (copied at dup time = 6).
    rig.px->Lseek(d, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(d, 6).data, "abcdef");
    // Closing the original must not kill the dup's backend fid.
    rig.px->Close(fd);
    rig.px->Lseek(d, 2, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(d, 2).data, "cd");
    rig.px->Close(d);
  });
}

TEST(VfsExt, DupChainSurvivesIntermediateCloses) {
  Rig rig;
  RunApp(rig.rt, [&] {
    const auto a = rig.px->Create("/chain");
    rig.px->Write(a, "xy");
    const auto b = rig.px->Dup(a);
    const auto c = rig.px->Dup(b);
    rig.px->Close(a);
    rig.px->Close(b);
    rig.px->Lseek(c, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(c, 2).data, "xy");
    rig.px->Close(c);
    // All refs gone: a fresh open still works (fid was clunked exactly once).
    const auto d = rig.px->Open("/chain");
    ASSERT_GE(d, 0);
    rig.px->Close(d);
  });
}

TEST(VfsExt, UnlinkRemovesFromHost) {
  Rig rig;
  rig.platform.ninep.PutFile("/gone", "data");
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->Unlink("/gone"), 0);
    EXPECT_LT(rig.px->Open("/gone"), 0);
  });
  EXPECT_FALSE(rig.platform.ninep.Exists("/gone"));
}

TEST(VfsExt, RenameMovesFileAndOpenFdsFollow) {
  Rig rig;
  std::int64_t fd = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/old");
    rig.px->Write(fd, "keep");
    EXPECT_EQ(rig.px->Rename("/old", "/new"), 0);
    // The open fd keeps working against the renamed file.
    EXPECT_EQ(rig.px->Write(fd, "!"), 1);
    rig.px->Close(fd);
    EXPECT_LT(rig.px->Open("/old"), 0);
    EXPECT_GE(rig.px->Open("/new"), 0);
  });
  EXPECT_EQ(rig.platform.ninep.ReadFile("/new"), "keep!");
}

TEST(VfsExt, FtruncateShrinksAndClampsOffset) {
  Rig rig;
  RunApp(rig.rt, [&] {
    const auto fd = rig.px->Create("/t");
    rig.px->Write(fd, "0123456789");
    EXPECT_EQ(rig.px->Ftruncate(fd, 4), 0);
    // Offset (10) clamps to the new size.
    EXPECT_EQ(rig.px->Lseek(fd, 0, Posix::kSeekCur), 4);
    rig.px->Lseek(fd, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(fd, 32).data, "0123");
    rig.px->Close(fd);
  });
  EXPECT_EQ(rig.platform.ninep.ReadFile("/t"), "0123");
}

TEST(VfsExt, ReaddirListsDirectChildren) {
  Rig rig;
  rig.platform.ninep.PutFile("/dir/a", "1");
  rig.platform.ninep.PutFile("/dir/b", "2");
  rig.platform.ninep.PutFile("/dir/sub/c", "3");
  RunApp(rig.rt, [&] {
    auto r = rig.px->Readdir("/dir");
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.data.find("a\n"), std::string::npos);
    EXPECT_NE(r.data.find("b\n"), std::string::npos);
    EXPECT_NE(r.data.find("sub\n"), std::string::npos);
    EXPECT_EQ(r.data.find("c\n"), std::string::npos);  // not recursive
    EXPECT_FALSE(rig.px->Readdir("/dir/a").ok());      // not a directory
  });
}

TEST(VfsExt, StatPath) {
  Rig rig;
  rig.platform.ninep.PutFile("/s", "12345");
  RunApp(rig.rt, [&] {
    EXPECT_EQ(rig.px->StatPath("/s"), 5);
    EXPECT_LT(rig.px->StatPath("/missing"), 0);
  });
}

TEST(VfsExt, DupAndRenameSurviveVfsReboot) {
  Rig rig;
  std::int64_t fd = -1, d = -1;
  RunApp(rig.rt, [&] {
    fd = rig.px->Create("/r1");
    rig.px->Write(fd, "ab");
    d = rig.px->Dup(fd);
    rig.px->Rename("/r1", "/r2");
  });
  ASSERT_TRUE(rig.rt.Reboot(rig.info.vfs).ok());
  ASSERT_TRUE(rig.rt.Reboot(rig.info.ninep).ok());
  RunApp(rig.rt, [&] {
    // Both fds still valid after replaying open/dup/rename.
    EXPECT_EQ(rig.px->Write(fd, "c"), 1);
    rig.px->Lseek(d, 0, Posix::kSeekSet);
    EXPECT_EQ(rig.px->Read(d, 3).data, "abc");
    rig.px->Close(fd);
    rig.px->Close(d);
  });
  EXPECT_EQ(rig.platform.ninep.ReadFile("/r2"), "abc");
}

}  // namespace
}  // namespace vampos
