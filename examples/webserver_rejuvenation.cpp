// Webserver rejuvenation demo (the paper's §VII-D scenario): a web server
// serving persistent connections while every unikernel component is
// rejuvenated one by one. No connection drops, no request fails.
//
//   $ ./examples/webserver_rejuvenation
#include <cstdio>
#include <string>
#include <vector>

#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "apps/webserver.h"

using namespace vampos;  // NOLINT: example brevity

int main() {
  uk::Platform platform;
  platform.ninep.PutFile("/www/index.html",
                         "<html>still alive after every reboot</html>");
  uk::HostRingView rings;
  core::RuntimeOptions options;
  core::Runtime rt(options);
  apps::StackInfo info =
      apps::BuildStack(rt, platform, rings, apps::StackSpec::Nginx());
  apps::BootAndMount(rt);
  apps::Posix px(rt);

  bool stop = false;
  apps::WebServer server(px, 80, "/www");
  rt.SpawnApp("nginx", [&] {
    server.Setup();
    server.RunLoop(&stop);
  });
  rt.RunUntilIdle();

  apps::SimClient client(&platform.net, 80);
  std::vector<int> conns;
  for (int i = 0; i < 10; ++i) conns.push_back(client.Connect());
  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  };
  pump(10);

  const std::vector<std::pair<const char*, ComponentId>> plan = {
      {"PROCESS", info.process}, {"SYSINFO", info.sysinfo},
      {"USER", info.user},       {"TIMER", info.timer},
      {"NETDEV", info.netdev},   {"9PFS", info.ninep},
      {"LWIP", info.lwip},       {"VFS", info.vfs},
  };

  int ok = 0, bad = 0;
  for (const auto& [name, id] : plan) {
    // Fire a request on every connection, then reboot the component while
    // replies are being produced.
    for (int h : conns) client.Send(h, "GET /index.html\n");
    auto result = rt.Reboot(id);
    pump(8);
    int round_ok = 0;
    for (int h : conns) {
      if (client.Broken(h)) {
        bad++;
        continue;
      }
      if (client.TakeReceived(h).find("200") != std::string::npos) {
        round_ok++;
        ok++;
      }
    }
    std::printf("rejuvenated %-8s in %7.3f ms — %d/%zu requests served, "
                "connections intact\n",
                name,
                result.ok()
                    ? static_cast<double>(result.value().total_ns) / 1e6
                    : -1.0,
                round_ok, conns.size());
  }
  std::printf("\ntotal: %d served, %d lost across full rejuvenation cycle\n",
              ok, bad);
  stop = true;
  rt.UnparkApps();
  rt.RunUntilIdle();
  return bad == 0 ? 0 : 1;
}
