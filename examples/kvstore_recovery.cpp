// KVS failure-recovery demo (the paper's §VII-E scenario, Fig 8): an
// in-memory key-value store with AOF persistence survives a fail-stop fault
// in the 9PFS component. VampOS reboots only 9PFS; the KV table (application
// memory) and the client connection are untouched — no AOF reload needed.
//
//   $ ./examples/kvstore_recovery
#include <cstdio>
#include <string>

#include "apps/kvstore.h"
#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"

using namespace vampos;  // NOLINT: example brevity

int main() {
  uk::Platform platform;
  uk::HostRingView rings;
  core::Runtime rt;
  apps::StackInfo info =
      apps::BuildStack(rt, platform, rings, apps::StackSpec::Redis());
  apps::BootAndMount(rt);
  apps::Posix px(rt);

  bool stop = false;
  apps::KvStore kv(px, "/redis.aof", /*aof_enabled=*/true);
  rt.SpawnApp("redis", [&] {
    kv.OpenAof();
    kv.Setup(6379);
    kv.RunLoop(&stop);
  });
  rt.RunUntilIdle();

  apps::SimClient client(&platform.net, 6379);
  const int h = client.Connect();
  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  };
  auto command = [&](const std::string& cmd) {
    client.Send(h, cmd + "\n");
    pump(6);
    std::string r = client.TakeReceived(h);
    while (!r.empty() && r.back() == '\n') r.pop_back();
    return r;
  };
  pump(8);

  // Load data, synchronously persisted to the AOF through VFS/9PFS/VIRTIO.
  for (int i = 0; i < 500; ++i) {
    command("SET key" + std::to_string(i) + " value" + std::to_string(i));
  }
  std::printf("loaded 500 keys; DBSIZE=%s; AOF on host: %zu bytes\n",
              command("DBSIZE").c_str(),
              platform.ninep.ReadFile("/redis.aof")->size());

  // Inject a fail-stop fault into 9PFS: the next message it processes (the
  // fsync of the SET below) panics.
  std::printf("\ninjecting panic() into 9PFS...\n");
  rt.InjectFault(info.ninep, FaultKind::kPanic);
  std::printf("SET during fault -> %s\n", command("SET boom now").c_str());
  std::printf("component reboots performed: %llu (only 9PFS)\n",
              static_cast<unsigned long long>(rt.Stats().reboots));

  // The in-memory table and the TCP connection survived.
  std::printf("\nafter recovery, same connection:\n");
  std::printf("GET key42  -> %s\n", command("GET key42").c_str());
  std::printf("GET boom   -> %s\n", command("GET boom").c_str());
  std::printf("DBSIZE     -> %s\n", command("DBSIZE").c_str());
  const bool ok = command("GET key42") == "$value42";
  std::printf("\n%s: no AOF reload, no lost connection, no lost data\n",
              ok ? "SUCCESS" : "FAILURE");
  stop = true;
  rt.UnparkApps();
  rt.RunUntilIdle();
  return ok ? 0 : 1;
}
