// Multi-version failover demo (paper §VIII, "Handling Failures from
// Deterministic Bugs"): a component with a deterministic bug crashes, the
// reboot+retry crashes again, and instead of fail-stopping the runtime
// swaps in a registered alternate implementation and replays the log into
// it. A graceful-termination hook is registered too, showing what would
// happen if no variant existed.
//
//   $ ./examples/variant_failover
#include <cstdio>
#include <memory>

#include "comp/component.h"
#include "core/runtime.h"

using namespace vampos;  // NOLINT: example brevity

// Both versions implement the same "stats" interface: record(x) and mean().
// v1 has a deterministic divide-by-state bug; v2 computes correctly.
class StatsV1 final : public comp::Component {
 public:
  StatsV1() : Component("stats", comp::Statefulness::kStateful, 128 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    s_ = MakeState<State>();
    ctx.Export("record", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 s_->sum += args[0].i64();
                 s_->count++;
                 return msg::MsgValue(s_->count);
               });
    ctx.Export("mean", comp::FnOptions{},
               [this](comp::CallCtx& c, const msg::Args&) -> msg::MsgValue {
                 if (s_->count % 5 == 0) {
                   // The deterministic bug: every 5th sample corrupts a
                   // pointer and crashes — and will crash again on retry.
                   c.Panic("v1 bug: mean() crashes when count %% 5 == 0");
                 }
                 return msg::MsgValue(s_->sum / s_->count);
               });
  }

 private:
  struct State {
    std::int64_t sum = 0;
    std::int64_t count = 0;
  };
  State* s_ = nullptr;
};

class StatsV2 final : public comp::Component {
 public:
  StatsV2() : Component("stats", comp::Statefulness::kStateful, 128 * 1024) {}
  void Init(comp::InitCtx& ctx) override {
    s_ = MakeState<State>();
    ctx.Export("record", comp::FnOptions{.logged = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 s_->sum += args[0].i64();
                 s_->count++;
                 return msg::MsgValue(s_->count);
               });
    ctx.Export("mean", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(
                     s_->count == 0 ? std::int64_t{0} : s_->sum / s_->count);
               });
  }

 private:
  struct State {
    std::int64_t sum = 0;
    std::int64_t count = 0;
  };
  State* s_ = nullptr;
};

int main() {
  core::Runtime rt;
  const ComponentId stats = rt.AddComponent(std::make_unique<StatsV1>());
  rt.AddAppDependency(stats);
  rt.RegisterVariant(stats, std::make_unique<StatsV2>());
  rt.RegisterTerminationHook([] {
    std::printf("[hook] would save state before exit (not reached: the "
                "variant takes over)\n");
  });
  rt.Boot();

  const FunctionId record = rt.Lookup("stats", "record");
  const FunctionId mean = rt.Lookup("stats", "mean");

  // Feed five samples: count == 5 arms v1's deterministic bug.
  rt.SpawnApp("feed", [&] {
    for (std::int64_t x : {10, 20, 30, 40, 50}) {
      rt.Call(record, {msg::MsgValue(x)});
    }
  });
  rt.RunUntilIdle();

  std::int64_t m = -1;
  rt.SpawnApp("query", [&] { m = rt.Call(mean, {}).i64(); });
  rt.RunUntilIdle();

  std::printf("mean after failover = %lld (expected 30)\n",
              static_cast<long long>(m));
  std::printf("reboots: %llu, variant swaps: %llu, terminal fault: %s\n",
              static_cast<unsigned long long>(rt.Stats().reboots),
              static_cast<unsigned long long>(rt.variant_swaps()),
              rt.terminal_fault().has_value() ? "yes" : "no");
  std::printf("\nwhat happened: v1 crashed, VampOS rebooted it and retried;\n"
              "the retry crashed again (deterministic), so the v2 variant\n"
              "was swapped in and the call log replayed into it — the five\n"
              "recorded samples survived the version change.\n");
  return (m == 30 && rt.variant_swaps() == 1) ? 0 : 1;
}
