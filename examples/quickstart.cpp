// Quickstart: build a VampOS runtime from scratch with a custom component,
// call it, crash it, and watch component-level reboot-based recovery keep
// the application state consistent.
//
//   $ ./examples/quickstart
//
// This walks the whole public API surface: defining a component (state in
// its arena, exported functions with logging options), assembling a
// runtime, issuing calls from app fibers, and recovering from a fault.
#include <cstdio>
#include <memory>

#include "comp/component.h"
#include "core/runtime.h"

using namespace vampos;  // NOLINT: example brevity

// A stateful "session counter" component. Everything it owns lives in its
// arena; its exported calls are logged so a reboot can rebuild the state by
// encapsulated restoration.
class SessionCounter final : public comp::Component {
 public:
  SessionCounter()
      : Component("sessions", comp::Statefulness::kStateful, 256 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();

    // open() -> session id. `session_from_ret` ties the log entry to the
    // returned id; `forced_session()` keeps ids stable across replays.
    ctx.Export("open",
               comp::FnOptions{.logged = true, .session_from_ret = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 std::int64_t id = -1;
                 if (auto forced = c.forced_session()) {
                   id = *forced;
                 } else {
                   for (int i = 0; i < 32; ++i) {
                     if (!state_->used[i]) {
                       id = i;
                       break;
                     }
                   }
                 }
                 if (id < 0) return msg::MsgValue(std::int64_t{-1});
                 state_->used[id] = true;
                 state_->hits[id] = 0;
                 return msg::MsgValue(id);
               });

    // hit(session) -> count. Logged under its session.
    ctx.Export("hit", comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= 32 || !state_->used[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 return msg::MsgValue(++state_->hits[id]);
               });

    // close(session): canceling — prunes the session's log entries.
    ctx.Export("close",
               comp::FnOptions{.logged = true, .session_arg = 0,
                               .canceling = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id >= 0 && id < 32) state_->used[id] = false;
                 return msg::MsgValue(std::int64_t{0});
               });

    // A crash trigger standing in for a *non-deterministic* bug: it fires
    // once (the armed flag lives outside the arena, so the post-reboot
    // retry of the same request succeeds — the paper's fault model).
    ctx.Export("boom", comp::FnOptions{},
               [this](comp::CallCtx& c, const msg::Args&) -> msg::MsgValue {
                 if (armed_) {
                   armed_ = false;
                   c.Panic("quickstart-injected crash");
                 }
                 return msg::MsgValue(std::int64_t{0});
               });
  }

 private:
  struct State {
    bool used[32] = {};
    std::int64_t hits[32] = {};
  };
  State* state_ = nullptr;
  bool armed_ = true;
};

int main() {
  // 1. Assemble: one runtime, one component, dependency edges for the
  //    dependency-aware scheduler.
  core::RuntimeOptions options;
  options.mode = core::Mode::kVampOS;
  options.policy = core::SchedPolicy::kDependencyAware;
  core::Runtime rt(options);
  const ComponentId sessions =
      rt.AddComponent(std::make_unique<SessionCounter>());
  rt.AddAppDependency(sessions);
  rt.Boot();

  const FunctionId open = rt.Lookup("sessions", "open");
  const FunctionId hit = rt.Lookup("sessions", "hit");
  const FunctionId boom = rt.Lookup("sessions", "boom");

  // 2. Use it from application code (app fibers issue the calls).
  std::int64_t s = -1;
  rt.SpawnApp("setup", [&] {
    s = rt.Call(open, {}).i64();
    for (int i = 0; i < 5; ++i) rt.Call(hit, {msg::MsgValue(s)});
  });
  rt.RunUntilIdle();
  std::printf("session %lld has 5 hits; log holds %zu entries\n",
              static_cast<long long>(s), rt.LogEntries(sessions));

  // 3. Crash the component. The message thread detects the fault, reboots
  //    only this component (checkpoint restore + log replay), and retries
  //    the in-flight request.
  rt.SpawnApp("crash", [&] { (void)rt.Call(boom, {}); });
  rt.RunUntilIdle();
  std::printf("component crashed and was rebooted %llu time(s)\n",
              static_cast<unsigned long long>(rt.Stats().reboots));

  // 4. The state survived: the next hit is number 6.
  std::int64_t after = 0;
  rt.SpawnApp("check", [&] { after = rt.Call(hit, {msg::MsgValue(s)}).i64(); });
  rt.RunUntilIdle();
  std::printf("hit after recovery -> %lld (state restored %s)\n",
              static_cast<long long>(after),
              after == 6 ? "correctly" : "INCORRECTLY");

  // 5. Proactive rejuvenation works the same way, any time.
  auto reports = rt.RejuvenateAll();
  std::printf("rejuvenated %zu component(s); last reboot took %.3f ms\n",
              reports.size(),
              reports.empty()
                  ? 0.0
                  : static_cast<double>(reports.back().total_ns) / 1e6);
  return after == 6 ? 0 : 1;
}
