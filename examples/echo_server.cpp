// Echo server demo: the smallest full-stack VampOS application (the paper's
// fourth workload). Shows the Echo component set (no 9PFS/SYSINFO), the
// client harness, and that per-message sessions keep the restoration logs
// empty thanks to session-aware shrinking.
//
//   $ ./examples/echo_server
#include <cstdio>
#include <string>

#include "apps/echo.h"
#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"

using namespace vampos;  // NOLINT: example brevity

int main() {
  uk::Platform platform;
  uk::HostRingView rings;
  core::Runtime rt;
  apps::StackInfo info =
      apps::BuildStack(rt, platform, rings, apps::StackSpec::Echo());
  apps::BootAndMount(rt);
  apps::Posix px(rt);

  bool stop = false;
  apps::EchoServer server(px, 7);
  rt.SpawnApp("echo", [&] {
    server.Setup();
    server.RunLoop(&stop);
  });
  rt.RunUntilIdle();

  apps::SimClient client(&platform.net, 7);
  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  };

  // The paper's workload: a 159-byte message per short-lived connection.
  const std::string payload(159, '#');
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    const int h = client.Connect();
    pump(4);
    client.Send(h, payload);
    pump(4);
    if (client.TakeReceived(h) == payload) ok++;
    client.Close(h);
    pump(2);
    if (i == 9) {
      // Mid-run rejuvenation of the transport stack: invisible to clients.
      (void)rt.Reboot(info.lwip);
      (void)rt.Reboot(info.netdev);
    }
  }
  std::printf("echoed %d/20 messages (2 transport reboots mid-run)\n", ok);
  std::printf("restoration logs after run: lwip=%zu vfs=%zu entries "
              "(sessions canceled on close)\n",
              rt.LogEntries(info.lwip), rt.LogEntries(info.vfs));
  stop = true;
  rt.UnparkApps();
  rt.RunUntilIdle();
  return ok == 20 ? 0 : 1;
}
