// Inspector: prints the paper's Table I (components and their recovery
// classes) and Table II (function calls logged for encapsulated reboots)
// directly from a live runtime's registry, then runs a small workload and
// shows the observability surface: per-function metrics, memory accounting,
// and the full state dump.
//
//   $ ./examples/inspector
#include <cstdio>

#include "apps/posix.h"
#include "apps/stack.h"
#include "comp/component.h"
#include "core/runtime.h"

using namespace vampos;  // NOLINT: example brevity

namespace {

const char* Statefulness(comp::Statefulness s) {
  switch (s) {
    case comp::Statefulness::kStateless: return "stateless (re-Init)";
    case comp::Statefulness::kStateful: return "stateful (replayed)";
    case comp::Statefulness::kUnrebootable: return "UNREBOOTABLE";
  }
  return "?";
}

}  // namespace

int main() {
  uk::Platform platform;
  platform.ninep.PutFile("/www/index.html", "inspect me");
  uk::HostRingView rings;
  core::Runtime rt;
  apps::StackInfo info =
      apps::BuildStack(rt, platform, rings, apps::StackSpec::Nginx());
  apps::BootAndMount(rt);
  apps::Posix px(rt);

  std::printf("Table I — components in this stack (Nginx configuration):\n");
  for (ComponentId id : rt.Components()) {
    std::printf("  %-10s %s\n", rt.component(id).name().c_str(),
                Statefulness(rt.component(id).statefulness()));
  }
  std::printf("  MPK tags in use: %d (of 16)\n\n", rt.MpkTagsInUse());

  // A small mixed workload so the metrics below have something to show.
  rt.SpawnApp("workload", [&] {
    for (int i = 0; i < 50; ++i) {
      const auto fd = px.Open("/www/index.html");
      px.Read(fd, 64);
      px.Close(fd);
      px.Getpid();
    }
  });
  rt.RunUntilIdle();
  (void)rt.Reboot(info.vfs);

  std::printf("Table II — logged function calls (from live logs):\n");
  for (ComponentId id : {info.vfs, info.lwip, info.ninep}) {
    std::printf("  %-6s: %zu entries, %zu bytes after shrinking\n",
                rt.component(id).name().c_str(), rt.LogEntries(id),
                rt.LogBytes(id));
  }

  std::printf("\nTop functions by handler time:\n");
  for (const auto& f : rt.TopFunctions(8)) {
    std::printf("  %-22s calls=%-6llu total=%8.1fus errors=%llu\n",
                f.name.c_str(), static_cast<unsigned long long>(f.calls),
                static_cast<double>(f.total_ns) / 1000.0,
                static_cast<unsigned long long>(f.errors));
  }

  const auto mem = rt.Memory();
  std::printf("\nMemory: arenas=%.1fMB checkpoints=%.1fMB logs=%zuB\n",
              static_cast<double>(mem.component_arena_bytes) / 1e6,
              static_cast<double>(mem.snapshot_bytes) / 1e6, mem.log_bytes);

  std::printf("\nFull state dump:\n");
  rt.DumpState(stdout);
  return 0;
}
