// Fig 6: component reboot times after 1,000 GET requests to the web server.
// Components: PROCESS (stateless), VFS, LWIP, 9PFS (stateful), and the
// merged VFS+9PFS / LWIP+NETDEV groups. 10 trials each; reports the
// snapshot-restore / log-replay breakdown the paper discusses (snapshot
// restoration dominates; replay is in the hundred-microsecond range).
//
// The DaS configuration runs twice — once per checkpoint engine mode — so
// the JSON baseline carries a full-copy vs incremental bytes-copied series:
// the page-granular engine should move ~an order of magnitude fewer bytes
// per reboot on this mostly-clean workload. Written to BENCH_reboot.json
// (or $VAMPOS_BENCH_JSON) for run-to-run diffing and the CI smoke check.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/webserver.h"
#include "harness.h"

namespace vampos::bench {
namespace {

using apps::SimClient;
using apps::StackSpec;
using apps::WebServer;

constexpr int kRequests = 1000;
constexpr int kTrials = 10;

core::RuntimeOptions OptionsWithMode(Config cfg, mem::SnapshotMode mode,
                                     bool track = false) {
  core::RuntimeOptions o = OptionsFor(cfg);
  o.snapshot_mode = mode;
  o.dirty_tracking = track;
  return o;
}

struct Workload {
  Workload(Config cfg, mem::SnapshotMode mode, bool track = false)
      : rig(cfg, StackSpec::Nginx(), OptionsWithMode(cfg, mode, track), true) {
    rig.platform.ninep.PutFile("/www/index.html", std::string(180, 'x'));
    server = std::make_unique<WebServer>(*rig.px, 80, "/www");
    rig.rt.SpawnApp("nginx", [this] {
      server->Setup();
      server->RunLoop(&stop);
    });
    rig.rt.RunUntilIdle();
    client = std::make_unique<SimClient>(&rig.platform.net, 80);
    h = client->Connect();
    rig.Pump(*client);
  }
  ~Workload() {
    stop = true;
    rig.rt.UnparkApps();
    rig.rt.RunUntilIdle();
  }
  void SendGets(int n) {
    for (int i = 0; i < n; ++i) {
      client->Send(h, "GET /index.html\n");
      rig.Pump(*client, 2);
      client->TakeReceived(h);
    }
  }
  Rig rig;
  std::unique_ptr<WebServer> server;
  std::unique_ptr<SimClient> client;
  int h = -1;
  bool stop = false;
};

struct RebootSample {
  bool ok = false;
  double total_us = 0, stop_us = 0, snapshot_us = 0, replay_us = 0;
  double hash_us = 0;
  double pages_total = 0, pages_dirty = 0, pages_skipped = 0,
         bytes_copied = 0;
  std::size_t entries = 0;
};

RebootSample MeasureReboot(Workload& w, ComponentId id, const char* label) {
  RebootSample out;
  Series total, stop_t, snapshot, replay, hash, pages, dirty, skipped, bytes;
  for (int i = 0; i < kTrials; ++i) {
    auto result = w.rig.rt.Reboot(id);
    if (!result.ok()) {
      std::printf("  %-16s reboot refused: %s\n", label,
                  result.status().message().c_str());
      return out;
    }
    const auto& r = result.value();
    total.Add(static_cast<double>(r.total_ns));
    stop_t.Add(static_cast<double>(r.stop_ns));
    snapshot.Add(static_cast<double>(r.snapshot_ns));
    replay.Add(static_cast<double>(r.replay_ns));
    hash.Add(static_cast<double>(r.snapshot_hash_ns));
    pages.Add(static_cast<double>(r.snapshot_pages_total));
    dirty.Add(static_cast<double>(r.snapshot_pages_dirty));
    skipped.Add(static_cast<double>(r.snapshot_pages_skipped));
    bytes.Add(static_cast<double>(r.snapshot_bytes_copied));
    out.entries = r.entries_replayed;
    w.rig.rt.RunUntilIdle();  // drain any retried work
  }
  out.ok = true;
  out.total_us = total.Mean() / 1e3;
  out.stop_us = stop_t.Mean() / 1e3;
  out.snapshot_us = snapshot.Mean() / 1e3;
  out.replay_us = replay.Mean() / 1e3;
  out.hash_us = hash.Mean() / 1e3;
  out.pages_total = pages.Mean();
  out.pages_dirty = dirty.Mean();
  out.pages_skipped = skipped.Mean();
  out.bytes_copied = bytes.Mean();
  std::printf("  %-16s %10.3f %10.3f %10.3f %10.3f %8zu %9.0f %9.0f\n",
              label, out.total_us / 1e3, out.stop_us / 1e3,
              out.snapshot_us / 1e3, out.replay_us / 1e3, out.entries,
              out.pages_dirty, out.bytes_copied / 1024.0);
  return out;
}

void AddToJson(JsonDoc& json, const std::string& prefix,
               const RebootSample& s) {
  if (!s.ok) return;
  json.Add(prefix + "_total_us", s.total_us);
  json.Add(prefix + "_snapshot_us", s.snapshot_us);
  json.Add(prefix + "_replay_us", s.replay_us);
  json.Add(prefix + "_hash_us", s.hash_us);
  json.Add(prefix + "_pages_total", s.pages_total);
  json.Add(prefix + "_pages_dirty", s.pages_dirty);
  json.Add(prefix + "_pages_skipped", s.pages_skipped);
  json.Add(prefix + "_bytes_copied", s.bytes_copied);
}

void PrintTableHeader() {
  std::printf("  %-16s %10s %10s %10s %10s %8s %9s %9s\n", "component",
              "total", "stop", "snapshot", "replay", "log", "pg-dirty",
              "kB-copied");
}

/// Idle rejuvenation: after the workload goes quiet, refresh-reboot LWIP
/// repeatedly and time just the checkpoint recapture (hash + copy). This is
/// the steady-state rejuvenation cost — the paper's "tens of microseconds"
/// target for a multi-MB but mostly-idle component. With write tracking the
/// recapture touches only the pages the replay dirtied; the hash-scan
/// engine re-hashes the whole footprint every pass.
void MeasureIdleRecapture(Workload& w, ComponentId id, const char* mode_name,
                          JsonDoc& json) {
  // Warm-up refresh folds the request history into the checkpoint (and
  // prunes the log), so the timed passes see an idle, nearly-clean arena.
  if (auto warm = w.rig.rt.Reboot(id, /*refresh_checkpoint=*/true);
      !warm.ok()) {
    return;
  }
  w.rig.rt.RunUntilIdle();
  Series us, hash_us, dirty, skipped;
  for (int i = 0; i < kTrials; ++i) {
    auto result = w.rig.rt.Reboot(id, /*refresh_checkpoint=*/true);
    if (!result.ok()) return;
    const auto& r = result.value();
    us.Add(static_cast<double>(r.refresh_hash_ns + r.refresh_copy_ns) / 1e3);
    hash_us.Add(static_cast<double>(r.refresh_hash_ns) / 1e3);
    dirty.Add(static_cast<double>(r.refresh_pages_dirty));
    skipped.Add(static_cast<double>(r.refresh_pages_skipped));
    w.rig.rt.RunUntilIdle();
  }
  std::printf(
      "  idle LWIP recapture: %10.1f us  (hash %8.1f us, "
      "%5.0f pages dirty, %5.0f skipped)\n",
      us.Mean(), hash_us.Mean(), dirty.Mean(), skipped.Mean());
  const std::string p(mode_name);
  json.Add(p + "_idle_recapture_us", us.Mean());
  json.Add(p + "_idle_recapture_hash_us", hash_us.Mean());
  json.Add(p + "_idle_pages_dirty", dirty.Mean());
  json.Add(p + "_idle_pages_skipped", skipped.Mean());
}

/// DaS stack, one run per checkpoint engine: full-copy, hash-scan
/// incremental, and write-tracked incremental.
double RunDaS(mem::SnapshotMode mode, bool track, const char* mode_name,
              JsonDoc& json) {
  Header(("Fig 6: DaS component reboot time [ms], " + std::string(mode_name) +
          "-mode checkpoints (1,000 GETs, 10 trials)")
             .c_str());
  PrintTableHeader();
  Workload w(Config::kDaS, mode, track);
  w.SendGets(kRequests);
  const struct {
    ComponentId id;
    const char* label;
    bool stateful;
  } targets[] = {
      {w.rig.info.process, "PROCESS", false}, {w.rig.info.ninep, "9PFS", true},
      {w.rig.info.lwip, "LWIP", true},        {w.rig.info.vfs, "VFS", true},
      {w.rig.info.virtio, "VIRTIO", false},
  };
  double stateful_bytes = 0;
  for (const auto& t : targets) {
    const RebootSample s = MeasureReboot(w, t.id, t.label);
    AddToJson(json, std::string(mode_name) + "_" + JsonKey(t.label), s);
    if (s.ok && t.stateful) stateful_bytes += s.bytes_copied;
  }
  // Aggregate the smoke check keys off: mean bytes one full rejuvenation
  // pass over the stateful components moves through the restore path.
  json.Add(std::string(mode_name) + "_stateful_bytes_per_reboot",
           stateful_bytes);
  MeasureIdleRecapture(w, w.rig.info.lwip, mode_name, json);
  return stateful_bytes;
}

void RunMerged(JsonDoc& json) {
  Header("Fig 6: merged-group reboot time [ms] (incremental checkpoints)");
  PrintTableHeader();
  {
    Workload w(Config::kFSm, mem::SnapshotMode::kIncremental);
    w.SendGets(kRequests);
    AddToJson(json, "fsm_vfs_9pfs",
              MeasureReboot(w, w.rig.info.vfs, "VFS+9PFS"));
  }
  {
    Workload w(Config::kNETm, mem::SnapshotMode::kIncremental);
    w.SendGets(kRequests);
    AddToJson(json, "netm_lwip_netdev",
              MeasureReboot(w, w.rig.info.lwip, "LWIP+NETDEV"));
  }
}

void Run() {
  JsonDoc json;
  const double full =
      RunDaS(mem::SnapshotMode::kFullCopy, false, "full", json);
  const double incr =
      RunDaS(mem::SnapshotMode::kIncremental, false, "incr", json);
  RunDaS(mem::SnapshotMode::kIncremental, true, "track", json);
  RunMerged(json);

  const double ratio = incr > 0 ? full / incr : 0;
  json.Add("full_vs_incr_bytes_ratio", ratio);
  std::printf(
      "\n  Checkpoint restore traffic per stateful rejuvenation pass:\n"
      "    full-copy   %10.0f kB\n"
      "    incremental %10.0f kB   (%.1fx less)\n",
      full / 1024.0, incr / 1024.0, ratio);
  std::printf(
      "\n  Note: stateful reboots are dominated by the snapshot restore\n"
      "  (proportional to component footprint with full-copy checkpoints,\n"
      "  to the dirty-page count with incremental ones); replay stays in\n"
      "  the sub-millisecond range thanks to session-aware log shrinking.\n");

  const char* path = BenchJsonPath("BENCH_reboot.json");
  if (json.Write(path)) std::printf("\n  baseline written to %s\n", path);
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
