// Fig 6: component reboot times after 1,000 GET requests to the web server.
// Components: PROCESS (stateless), VFS, LWIP, 9PFS (stateful), and the
// merged VFS+9PFS / LWIP+NETDEV groups. 10 trials each; reports the
// snapshot-restore / log-replay breakdown the paper discusses (snapshot
// restoration dominates; replay is in the hundred-microsecond range).
#include <cstdio>
#include <string>
#include <vector>

#include "apps/webserver.h"
#include "harness.h"

namespace vampos::bench {
namespace {

using apps::SimClient;
using apps::StackSpec;
using apps::WebServer;

constexpr int kRequests = 1000;
constexpr int kTrials = 10;

struct Workload {
  explicit Workload(Config cfg) : rig(cfg, StackSpec::Nginx()) {
    rig.platform.ninep.PutFile("/www/index.html", std::string(180, 'x'));
    server = std::make_unique<WebServer>(*rig.px, 80, "/www");
    rig.rt.SpawnApp("nginx", [this] {
      server->Setup();
      server->RunLoop(&stop);
    });
    rig.rt.RunUntilIdle();
    client = std::make_unique<SimClient>(&rig.platform.net, 80);
    h = client->Connect();
    rig.Pump(*client);
  }
  ~Workload() {
    stop = true;
    rig.rt.UnparkApps();
    rig.rt.RunUntilIdle();
  }
  void SendGets(int n) {
    for (int i = 0; i < n; ++i) {
      client->Send(h, "GET /index.html\n");
      rig.Pump(*client, 2);
      client->TakeReceived(h);
    }
  }
  Rig rig;
  std::unique_ptr<WebServer> server;
  std::unique_ptr<SimClient> client;
  int h = -1;
  bool stop = false;
};

void MeasureReboot(Workload& w, ComponentId id, const char* label) {
  Series total, stop_t, snapshot, replay;
  std::size_t entries = 0;
  for (int i = 0; i < kTrials; ++i) {
    auto result = w.rig.rt.Reboot(id);
    if (!result.ok()) {
      std::printf("  %-16s reboot refused: %s\n", label,
                  result.status().message().c_str());
      return;
    }
    const auto& r = result.value();
    total.Add(static_cast<double>(r.total_ns));
    stop_t.Add(static_cast<double>(r.stop_ns));
    snapshot.Add(static_cast<double>(r.snapshot_ns));
    replay.Add(static_cast<double>(r.replay_ns));
    entries = r.entries_replayed;
    w.rig.rt.RunUntilIdle();  // drain any retried work
  }
  std::printf("  %-16s %10.3f %10.3f %10.3f %10.3f %8zu\n", label,
              total.Mean() / 1e6, stop_t.Mean() / 1e6, snapshot.Mean() / 1e6,
              replay.Mean() / 1e6, entries);
}

void Run() {
  Header("Fig 6: component reboot time [ms] after 1,000 GETs (10 trials)");
  std::printf("  %-16s %10s %10s %10s %10s %8s\n", "component", "total",
              "stop", "snapshot", "replay", "log");

  {
    Workload w(Config::kDaS);
    w.SendGets(kRequests);
    MeasureReboot(w, w.rig.info.process, "PROCESS");
    MeasureReboot(w, w.rig.info.ninep, "9PFS");
    MeasureReboot(w, w.rig.info.lwip, "LWIP");
    MeasureReboot(w, w.rig.info.vfs, "VFS");
    MeasureReboot(w, w.rig.info.virtio, "VIRTIO");
  }
  {
    Workload w(Config::kFSm);
    w.SendGets(kRequests);
    MeasureReboot(w, w.rig.info.vfs, "VFS+9PFS");
  }
  {
    Workload w(Config::kNETm);
    w.SendGets(kRequests);
    MeasureReboot(w, w.rig.info.lwip, "LWIP+NETDEV");
  }

  std::printf(
      "\n  Note: stateful reboots are dominated by the snapshot restore\n"
      "  (proportional to component footprint); replay stays in the\n"
      "  sub-millisecond range thanks to session-aware log shrinking.\n");
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
