// Ablation: software aging and the effect of periodic VampOS rejuvenation.
//
// The paper motivates component-level reboots with aging-related bugs
// (ukallocbuddy leaks, fragmentation). This bench injects a slow memory
// leak into a stateful component and runs a fixed workload:
//   - with reactive recovery only, the heap fills until allocation fails;
//     the crash is recovered by a reboot, but the in-flight requests are
//     lost (retry is off: an exhausted heap is not a transient fault);
//   - with periodic proactive rejuvenation, heap use stays bounded and no
//     request is ever lost, at the cost of sub-millisecond reboots.
// Swept over rejuvenation intervals to show the overhead/headroom tradeoff.
#include <cstdio>
#include <memory>

#include "comp/component.h"
#include "harness.h"

namespace vampos::bench {
namespace {

/// Component with an aging bug: every request leaks a little arena memory.
class LeakyComponent final : public comp::Component {
 public:
  LeakyComponent()
      : Component("leaky", comp::Statefulness::kStateful, 1u << 20) {}

  void Init(comp::InitCtx& ctx) override {
    count_ = MakeState<std::int64_t>(0);
    ctx.Export("work", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args& args)
                   -> msg::MsgValue {
                 // The "bug": allocate per request, never free.
                 void* leak = alloc().Alloc(
                     static_cast<std::size_t>(args[0].i64()));
                 if (leak == nullptr) {
                   throw ComponentFault(id(), FaultKind::kAllocFailure,
                                        "heap exhausted by leak");
                 }
                 return msg::MsgValue(++*count_);
               });
    ctx.Export("heap_used", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(static_cast<std::int64_t>(
                     alloc().Stats().bytes_in_use));
               });
  }

 private:
  std::int64_t* count_ = nullptr;
};

struct Outcome {
  int completed = 0;
  bool failed = false;
  std::size_t peak_heap = 0;
  double seconds = 0;
  std::uint64_t reboots = 0;
};

Outcome RunWithInterval(int requests, int leak_bytes, int rejuvenate_every) {
  core::RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.retry_inflight = false;  // an exhausted heap is not transient
  core::Runtime rt(opts);
  const ComponentId leaky =
      rt.AddComponent(std::make_unique<LeakyComponent>());
  rt.AddAppDependency(leaky);
  rt.Boot();
  const FunctionId work = rt.Lookup("leaky", "work");
  const FunctionId heap = rt.Lookup("leaky", "heap_used");

  Outcome out;
  const Nanos t0 = NowNs();
  for (int i = 0; i < requests && !out.failed; i += 100) {
    rt.SpawnApp("burst", [&] {
      for (int j = 0; j < 100; ++j) {
        const msg::MsgValue r =
            rt.Call(work, {msg::MsgValue(std::int64_t{leak_bytes})});
        if (r.is_i64() && r.i64() < 0) return;  // component died
        out.completed++;
      }
      const auto used = rt.Call(heap, {}).i64();
      if (used > 0) {
        out.peak_heap = std::max(out.peak_heap,
                                 static_cast<std::size_t>(used));
      }
    });
    rt.RunUntilIdle();
    if (rt.terminal_fault().has_value()) {
      out.failed = true;
      break;
    }
    if (rejuvenate_every > 0 && (i / 100) % rejuvenate_every ==
                                    rejuvenate_every - 1) {
      (void)rt.Reboot(leaky);
    }
  }
  out.seconds = static_cast<double>(NowNs() - t0) / 1e9;
  out.reboots = rt.Stats().reboots;
  return out;
}

void Run() {
  Header("Ablation: software aging vs periodic component rejuvenation");
  const int requests = FullScale() ? 100000 : 20000;
  const int leak_bytes = 256;
  std::printf("  workload: %d requests, each leaking %dB of component heap"
              " (1 MiB arena)\n\n", requests, leak_bytes);
  std::printf("  %-22s %10s %8s %12s %9s %8s\n", "rejuvenation", "completed",
              "lost", "peak heap", "time[s]", "reboots");
  struct Cfg {
    const char* label;
    int every;  // bursts of 100 requests between reboots; 0 = never
  };
  for (const Cfg& cfg : {Cfg{"reactive only", 0},
                         Cfg{"every 6400 reqs", 64},
                         Cfg{"every 1600 reqs", 16},
                         Cfg{"every 400 reqs", 4}}) {
    const Outcome o = RunWithInterval(requests, leak_bytes, cfg.every);
    std::printf("  %-22s %10d %8d %10.2fMB %9.3f %8llu\n", cfg.label,
                o.completed, requests - o.completed,
                static_cast<double>(o.peak_heap) / 1e6, o.seconds,
                static_cast<unsigned long long>(o.reboots));
  }
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
