// Message-plane microbenchmark: cross-component call throughput, call-log
// point-operation latency, session shrink/compaction behavior, and reboot
// latency with traffic in flight. Emits a JSON baseline (bench_msgplane.json
// by default, or the path in VAMPOS_BENCH_JSON) so regressions in the
// indexed-log hot path are diffable run-to-run.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "harness.h"
#include "msg/domain.h"
#include "testing_components.h"

namespace vampos::bench {
namespace {

/// Session-oriented stateful component with a summing compaction hook — the
/// paper's VFS-offset trick in miniature, without a downstream dependency.
class SessComponent final : public comp::Component {
 public:
  SessComponent()
      : Component("sess", comp::Statefulness::kStateful, 256 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("open", comp::FnOptions{.logged = true, .session_from_ret = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 std::int64_t id;
                 if (auto forced = c.forced_session()) {
                   id = *forced;
                 } else {
                   id = -1;
                   for (int i = 0; i < kSlots; ++i) {
                     if (!state_->open[i]) {
                       id = i;
                       break;
                     }
                   }
                   if (id < 0) return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->open[id] = true;
                 state_->sum[id] = 0;
                 return msg::MsgValue(id);
               });
    ctx.Export("add", comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= kSlots || !state_->open[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->sum[id] += args[1].i64();
                 return msg::MsgValue(state_->sum[id]);
               });
    ctx.Export("set", comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= kSlots || !state_->open[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->sum[id] = args[1].i64();
                 return msg::MsgValue(state_->sum[id]);
               });
    ctx.Export("close",
               comp::FnOptions{.logged = true, .session_arg = 0,
                               .canceling = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= kSlots) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->open[id] = false;
                 return msg::MsgValue(std::int64_t{0});
               });
    ctx.Export("sum", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args& args) {
                 return msg::MsgValue(state_->sum[args[0].i64()]);
               });
  }

  comp::CompactionHook compaction_hook() override {
    return [this](const comp::CompactionRequest& req)
               -> std::vector<std::pair<FunctionId, msg::Args>> {
      if (req.session < 0 || req.session >= kSlots ||
          !state_->open[req.session]) {
        return {};
      }
      return {{set_fn_,
               msg::Args{msg::MsgValue(req.session),
                         msg::MsgValue(state_->sum[req.session])}}};
    };
  }

  void ResolveSetFn(core::Runtime& rt) { set_fn_ = rt.Lookup("sess", "set"); }

 private:
  static constexpr int kSlots = 32;
  struct State {
    bool open[kSlots] = {};
    std::int64_t sum[kSlots] = {};
  };
  State* state_ = nullptr;
  FunctionId set_fn_ = -1;
};

// ----------------------------------------------------- call throughput

void BenchCallThroughput(JsonDoc& json) {
  Header("message-plane call throughput");
  const int n = FullScale() ? 200000 : 30000;
  for (const bool logged : {false, true}) {
    core::RuntimeOptions opts;
    opts.hang_threshold = 0;
    core::Runtime rt(opts);
    const ComponentId nop =
        rt.AddComponent(std::make_unique<bench_testing::NopComponent>());
    rt.AddAppDependency(nop);
    rt.Boot();
    const FunctionId fn = rt.Lookup("nop", logged ? "nop_logged" : "nop");
    const Nanos t0 = NowNs();
    rt.SpawnApp("pump", [&] {
      for (int i = 0; i < n; ++i) rt.Call(fn, {});
    });
    rt.RunUntilIdle();
    const double secs = static_cast<double>(NowNs() - t0) / 1e9;
    const double rate = n / secs;
    const auto stats = rt.Stats();
    std::printf("  %-12s %10.0f calls/s  (batched replies: %llu)\n",
                logged ? "logged" : "unlogged", rate,
                static_cast<unsigned long long>(stats.replies_batched));
    json.Add(logged ? "calls_per_sec_logged" : "calls_per_sec_unlogged",
             rate);
    // End-to-end call latency distribution from the runtime's own
    // histogram (enqueue to reply delivery, including scheduling).
    const obs::Histogram* lat = rt.metrics().FindHistogram("rt.call_ns");
    if (lat != nullptr && lat->count() > 0) {
      PrintLatency(logged ? "logged" : "unlogged", *lat);
      const std::string prefix =
          logged ? "call_ns_logged_" : "call_ns_unlogged_";
      json.Add(prefix + "p50", lat->Percentile(50));
      json.Add(prefix + "p95", lat->Percentile(95));
      json.Add(prefix + "p99", lat->Percentile(99));
    }
    // Snapshot the full registry of the logged run as the baseline's
    // telemetry block — counters and histograms diffable run-to-run.
    if (logged) json.AddRaw("telemetry", rt.metrics().Json());
  }
}

// -------------------------------------------------- log point-op latency

void BenchLogOps(JsonDoc& json) {
  Header("call-log point-operation latency [ns/op]");
  const std::size_t n = FullScale() ? 200000 : 50000;
  msg::CallLog log;
  Rng rng(42);

  std::vector<LogSeq> seqs;
  seqs.reserve(n);
  Nanos t0 = NowNs();
  for (std::size_t i = 0; i < n; ++i) {
    msg::CallLogEntry e;
    e.fn = 1;
    e.session = static_cast<std::int64_t>(i % 64);
    e.args = {msg::MsgValue(static_cast<std::int64_t>(i))};
    seqs.push_back(log.Append(std::move(e)));
  }
  const double append_ns = static_cast<double>(NowNs() - t0) / n;

  t0 = NowNs();
  for (const LogSeq s : seqs) {
    log.SetReturn(s, msg::MsgValue(std::int64_t{0}));
  }
  const double set_ret_ns = static_cast<double>(NowNs() - t0) / n;

  // Random point erase at full size — the operation the seq index made
  // O(log n); measured over a prefix to keep the log near peak size.
  const std::size_t erases = n / 10;
  t0 = NowNs();
  for (std::size_t i = 0; i < erases; ++i) {
    log.Erase(seqs[rng.Below(seqs.size())]);
  }
  const double erase_ns = static_cast<double>(NowNs() - t0) / erases;

  // Session prune via the per-session index.
  t0 = NowNs();
  std::size_t pruned = 0;
  for (std::int64_t s = 0; s < 64; ++s) pruned += log.PruneSession(s);
  const double prune_ns =
      pruned > 0 ? static_cast<double>(NowNs() - t0) / pruned : 0;

  std::printf("  append      %8.1f\n", append_ns);
  std::printf("  set_return  %8.1f\n", set_ret_ns);
  std::printf("  erase       %8.1f\n", erase_ns);
  std::printf("  prune/entry %8.1f  (%zu entries, %llu full scans)\n",
              prune_ns, pruned, static_cast<unsigned long long>(log.scans()));
  json.Add("log_append_ns", append_ns);
  json.Add("log_set_return_ns", set_ret_ns);
  json.Add("log_erase_ns", erase_ns);
  json.Add("log_prune_per_entry_ns", prune_ns);
}

// ------------------------------------------- session shrink + compaction

void BenchSessionWorkload(JsonDoc& json) {
  Header("session workload: shrink + scheduled compaction");
  const int rounds = FullScale() ? 2000 : 400;
  core::RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.log_shrink_threshold = 32;
  core::Runtime rt(opts);
  auto sess_ptr = std::make_unique<SessComponent>();
  SessComponent* sess = sess_ptr.get();
  const ComponentId id = rt.AddComponent(std::move(sess_ptr));
  rt.AddAppDependency(id);
  rt.Boot();
  sess->ResolveSetFn(rt);

  const FunctionId open = rt.Lookup("sess", "open");
  const FunctionId add = rt.Lookup("sess", "add");
  const FunctionId close = rt.Lookup("sess", "close");
  Rng rng(7);
  const Nanos t0 = NowNs();
  rt.SpawnApp("pump", [&] {
    // A long-lived session accumulating entries (compaction collapses it)
    // over short open/add/close sessions (shrinking prunes them).
    const std::int64_t hot = rt.Call(open, {}).i64();
    for (int r = 0; r < rounds; ++r) {
      rt.Call(add, {msg::MsgValue(hot), msg::MsgValue(std::int64_t{1})});
      const std::int64_t s = rt.Call(open, {}).i64();
      for (int i = 0; i < 4; ++i) {
        rt.Call(add, {msg::MsgValue(s),
                      msg::MsgValue(static_cast<std::int64_t>(rng.Below(10)))});
      }
      rt.Call(close, {msg::MsgValue(s)});
    }
  });
  rt.RunUntilIdle();
  const double secs = static_cast<double>(NowNs() - t0) / 1e9;
  const auto stats = rt.Stats();
  const double ops = rounds * 7.0;
  std::printf("  %10.0f ops/s  log=%zu entries\n", ops / secs,
              rt.LogEntries(id));
  std::printf(
      "  compactions=%llu skips=%llu pruned=%llu full_scans=%llu\n",
      static_cast<unsigned long long>(stats.compactions),
      static_cast<unsigned long long>(stats.compaction_skips),
      static_cast<unsigned long long>(stats.log_pruned_entries),
      static_cast<unsigned long long>(stats.log_scans));
  json.Add("session_ops_per_sec", ops / secs);
  json.Add("session_compactions", static_cast<double>(stats.compactions));
  json.Add("session_compaction_skips",
           static_cast<double>(stats.compaction_skips));
  json.Add("session_log_scans", static_cast<double>(stats.log_scans));
  json.Add("session_final_log_entries",
           static_cast<double>(rt.LogEntries(id)));
}

// ------------------------------------------------------ reboot under load

void BenchRebootUnderLoad(JsonDoc& json) {
  Header("reboot with traffic in flight [us]");
  const int reps = FullScale() ? 50 : 10;
  const int log_entries = FullScale() ? 512 : 128;
  Series total, stop, replay;
  for (int rep = 0; rep < reps; ++rep) {
    core::RuntimeOptions opts;
    opts.hang_threshold = 0;
    opts.log_shrink_threshold = 0;  // keep the full log: worst-case replay
    core::Runtime rt(opts);
    auto sess_ptr = std::make_unique<SessComponent>();
    SessComponent* sess = sess_ptr.get();
    const ComponentId id = rt.AddComponent(std::move(sess_ptr));
    rt.AddAppDependency(id);
    rt.Boot();
    sess->ResolveSetFn(rt);
    const FunctionId open = rt.Lookup("sess", "open");
    const FunctionId add = rt.Lookup("sess", "add");
    const FunctionId sum = rt.Lookup("sess", "sum");
    std::int64_t hot = -1;
    rt.SpawnApp("fill", [&] {
      hot = rt.Call(open, {}).i64();
      for (int i = 0; i < log_entries; ++i) {
        rt.Call(add, {msg::MsgValue(hot), msg::MsgValue(std::int64_t{1})});
      }
    });
    rt.RunUntilIdle();
    // Leave requests queued and in flight, then reboot through them.
    for (int i = 0; i < 4; ++i) {
      rt.SpawnApp("load" + std::to_string(i), [&] {
        rt.Call(add, {msg::MsgValue(hot), msg::MsgValue(std::int64_t{1})});
      });
    }
    if (!rt.RunUntil([&] { return rt.domain().QueueDepth(id) >= 1; })) continue;
    auto report = rt.Reboot(id);
    if (!report.ok()) continue;
    rt.RunUntilIdle();
    std::int64_t got = 0;
    rt.SpawnApp("check", [&] { got = rt.Call(sum, {msg::MsgValue(hot)}).i64(); });
    rt.RunUntilIdle();
    if (got != log_entries + 4) {
      std::fprintf(stderr, "  consistency FAILED: sum=%lld want %d\n",
                   static_cast<long long>(got), log_entries + 4);
      std::exit(1);
    }
    total.Add(static_cast<double>(report.value().total_ns) / 1e3);
    stop.Add(static_cast<double>(report.value().stop_ns) / 1e3);
    replay.Add(static_cast<double>(report.value().replay_ns) / 1e3);
  }
  std::printf("  total  %8.1f +- %.1f  (p50=%.1f p95=%.1f p99=%.1f)\n",
              total.Mean(), total.Stddev(), total.Percentile(50),
              total.Percentile(95), total.Percentile(99));
  std::printf("  stop   %8.1f\n", stop.Mean());
  std::printf("  replay %8.1f  (%d log entries, consistency checked)\n",
              replay.Mean(), log_entries);
  json.Add("reboot_under_load_total_us", total.Mean());
  json.Add("reboot_under_load_total_p95_us", total.Percentile(95));
  json.Add("reboot_under_load_stop_us", stop.Mean());
  json.Add("reboot_under_load_replay_us", replay.Mean());
}

void Run() {
  JsonDoc json;
  BenchCallThroughput(json);
  BenchLogOps(json);
  BenchSessionWorkload(json);
  BenchRebootUnderLoad(json);
  const char* path = BenchJsonPath("bench_msgplane.json");
  if (!json.Write(path)) std::exit(1);
  std::printf("\nJSON baseline written to %s\n", path);
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
