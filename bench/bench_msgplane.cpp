// Message-plane microbenchmark: cross-component call throughput, call-log
// point-operation latency, session shrink/compaction behavior, and reboot
// latency with traffic in flight. Emits a JSON baseline (bench_msgplane.json
// by default, or the path in VAMPOS_BENCH_JSON) so regressions in the
// indexed-log hot path are diffable run-to-run.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/rng.h"
#include "harness.h"
#include "msg/domain.h"
#include "testing_components.h"

namespace vampos::bench {
namespace {

/// Session-oriented stateful component with a summing compaction hook — the
/// paper's VFS-offset trick in miniature, without a downstream dependency.
class SessComponent final : public comp::Component {
 public:
  SessComponent()
      : Component("sess", comp::Statefulness::kStateful, 256 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    ctx.Export("open", comp::FnOptions{.logged = true, .session_from_ret = true},
               [this](comp::CallCtx& c, const msg::Args&) {
                 std::int64_t id;
                 if (auto forced = c.forced_session()) {
                   id = *forced;
                 } else {
                   id = -1;
                   for (int i = 0; i < kSlots; ++i) {
                     if (!state_->open[i]) {
                       id = i;
                       break;
                     }
                   }
                   if (id < 0) return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->open[id] = true;
                 state_->sum[id] = 0;
                 return msg::MsgValue(id);
               });
    ctx.Export("add", comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= kSlots || !state_->open[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->sum[id] += args[1].i64();
                 return msg::MsgValue(state_->sum[id]);
               });
    ctx.Export("set", comp::FnOptions{.logged = true, .session_arg = 0},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= kSlots || !state_->open[id]) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->sum[id] = args[1].i64();
                 return msg::MsgValue(state_->sum[id]);
               });
    ctx.Export("close",
               comp::FnOptions{.logged = true, .session_arg = 0,
                               .canceling = true},
               [this](comp::CallCtx&, const msg::Args& args) {
                 const auto id = args[0].i64();
                 if (id < 0 || id >= kSlots) {
                   return msg::MsgValue(std::int64_t{-1});
                 }
                 state_->open[id] = false;
                 return msg::MsgValue(std::int64_t{0});
               });
    ctx.Export("sum", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args& args) {
                 return msg::MsgValue(state_->sum[args[0].i64()]);
               });
  }

  comp::CompactionHook compaction_hook() override {
    return [this](const comp::CompactionRequest& req)
               -> std::vector<std::pair<FunctionId, msg::Args>> {
      if (req.session < 0 || req.session >= kSlots ||
          !state_->open[req.session]) {
        return {};
      }
      return {{set_fn_,
               msg::Args{msg::MsgValue(req.session),
                         msg::MsgValue(state_->sum[req.session])}}};
    };
  }

  void ResolveSetFn(core::Runtime& rt) { set_fn_ = rt.Lookup("sess", "set"); }

 private:
  static constexpr int kSlots = 32;
  struct State {
    bool open[kSlots] = {};
    std::int64_t sum[kSlots] = {};
  };
  State* state_ = nullptr;
  FunctionId set_fn_ = -1;
};

// ----------------------------------------------------- call throughput

/// One throughput configuration of the shared fanout workload.
enum class CallMode { kUnlogged, kLogged, kInline };

constexpr const char* Name(CallMode m) {
  switch (m) {
    case CallMode::kUnlogged: return "unlogged";
    case CallMode::kLogged: return "logged";
    case CallMode::kInline: return "inline";
  }
  return "?";
}

struct ThroughputRun {
  double rate = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t replies_batched = 0;
  std::uint64_t direct_calls = 0;
  std::string telemetry;
};

ThroughputRun RunThroughput(CallMode mode, int n) {
  core::RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.inline_calls = mode == CallMode::kInline;
  core::Runtime rt(opts);
  const ComponentId nop =
      rt.AddComponent(std::make_unique<bench_testing::NopComponent>());
  rt.AddAppDependency(nop);
  rt.Boot();
  const FunctionId fn =
      rt.Lookup("nop", mode == CallMode::kLogged ? "nop_logged" : "nop");
  // Fan out across pump fibers: several callers block on replies at once, so
  // the resident's batched executions drain as coalesced reply flushes — the
  // single-caller shape could never have more than one reply in flight and
  // kept rt.replies_batched pinned at zero.
  constexpr int kPumps = 8;
  const int per_pump = n / kPumps;
  const Nanos t0 = NowNs();
  for (int p = 0; p < kPumps; ++p) {
    rt.SpawnApp("pump" + std::to_string(p), [&rt, fn, per_pump] {
      for (int i = 0; i < per_pump; ++i) rt.Call(fn, {});
    });
  }
  rt.RunUntilIdle();
  const double secs = static_cast<double>(NowNs() - t0) / 1e9;
  ThroughputRun run;
  run.rate = (per_pump * kPumps) / secs;
  const auto stats = rt.Stats();
  run.replies_batched = stats.replies_batched;
  run.direct_calls = stats.direct_calls;
  const obs::Histogram* lat = rt.metrics().FindHistogram("rt.call_ns");
  if (lat != nullptr && lat->count() > 0) {
    run.p50 = lat->Percentile(50);
    run.p95 = lat->Percentile(95);
    run.p99 = lat->Percentile(99);
  }
  if (mode == CallMode::kLogged) run.telemetry = rt.metrics().Json();
  return run;
}

void BenchCallThroughput(JsonDoc& json) {
  Header("message-plane call throughput");
  const int n = FullScale() ? 200000 : 30000;
  // Interleave the modes across best-of-N rounds (the health_smoke recipe):
  // running each mode to completion back-to-back let the later mode ride a
  // warmed allocator and branch predictors, which once reported the *logged*
  // path faster than the unlogged one. Round-robin order plus best-of keeps
  // the comparison honest.
  constexpr int kRounds = 3;
  constexpr CallMode kModes[] = {CallMode::kUnlogged, CallMode::kLogged,
                                 CallMode::kInline};
  ThroughputRun best[3];
  for (int round = 0; round < kRounds; ++round) {
    for (int mi = 0; mi < 3; ++mi) {
      ThroughputRun run = RunThroughput(kModes[mi], n);
      if (run.rate > best[mi].rate) {
        // Keep the telemetry block stable: first logged round wins it.
        std::string telemetry = std::move(best[mi].telemetry);
        best[mi] = std::move(run);
        if (!telemetry.empty()) best[mi].telemetry = std::move(telemetry);
      }
    }
  }
  for (int mi = 0; mi < 3; ++mi) {
    const ThroughputRun& run = best[mi];
    std::printf("  %-12s %10.0f calls/s  (batched replies: %llu%s)\n",
                Name(kModes[mi]), run.rate,
                static_cast<unsigned long long>(run.replies_batched),
                kModes[mi] == CallMode::kInline ? ", inlined" : "");
    json.Add(std::string("calls_per_sec_") + Name(kModes[mi]), run.rate);
  }
  // End-to-end call latency distribution from the runtime's own histogram
  // (enqueue to reply delivery, including scheduling) for the queued modes;
  // the inline mode's latency is the handler itself.
  for (const int mi : {0, 1}) {
    const ThroughputRun& run = best[mi];
    if (run.p50 <= 0) continue;
    const std::string prefix =
        std::string("call_ns_") + Name(kModes[mi]) + "_";
    std::printf("  %-12s p50=%.0fns p95=%.0fns p99=%.0fns\n",
                Name(kModes[mi]), run.p50, run.p95, run.p99);
    json.Add(prefix + "p50", run.p50);
    json.Add(prefix + "p95", run.p95);
    json.Add(prefix + "p99", run.p99);
  }
  json.Add("replies_batched", static_cast<double>(best[0].replies_batched));
  json.Add("inline_direct_calls", static_cast<double>(best[2].direct_calls));
  // Snapshot the full registry of a logged run as the baseline's telemetry
  // block — counters and histograms diffable run-to-run.
  if (!best[1].telemetry.empty()) json.AddRaw("telemetry", best[1].telemetry);
}

// ------------------------------------------------ zero-copy payload path

/// Lender component: serves a 16 KiB block out of its own arena as a
/// borrowed view — the message plane either lends it (zero-copy) or
/// materializes it through the staging arena (copy fallback, four payload
/// copies end to end). Sized so the copy path's memcpy traffic dominates the
/// borrow bookkeeping; at ~1 KiB the two roughly break even.
class BlobComponent final : public comp::Component {
 public:
  static constexpr std::size_t kBlob = 16 * 1024;

  BlobComponent()
      : Component("blob", comp::Statefulness::kStateful, 256 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    state_ = MakeState<State>();
    for (std::size_t i = 0; i < kBlob; ++i) {
      state_->block[i] = static_cast<char>('a' + i % 26);
    }
    ctx.Export("get", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue::Borrowed(
                     std::span<const std::byte>(
                         reinterpret_cast<const std::byte*>(state_->block),
                         kBlob),
                     arena());
               });
  }

 private:
  struct State {
    char block[kBlob];
  };
  State* state_ = nullptr;
};

struct PayloadRun {
  double rate = 0;
  std::uint64_t bytes_copied = 0;
};

PayloadRun RunPayload(bool zero_copy, int n) {
  core::RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.zero_copy_payloads = zero_copy;
  core::Runtime rt(opts);
  const ComponentId blob = rt.AddComponent(std::make_unique<BlobComponent>());
  rt.AddAppDependency(blob);
  rt.Boot();
  const FunctionId fn = rt.Lookup("blob", "get");
  constexpr int kPumps = 8;
  const int per_pump = n / kPumps;
  const Nanos t0 = NowNs();
  for (int p = 0; p < kPumps; ++p) {
    rt.SpawnApp("pump" + std::to_string(p), [&rt, fn, per_pump] {
      for (int i = 0; i < per_pump; ++i) {
        if (rt.Call(fn, {}).bytes().size() != BlobComponent::kBlob) {
          std::fprintf(stderr, "payload bench: short read\n");
          std::exit(1);
        }
      }
    });
  }
  rt.RunUntilIdle();
  const double secs = static_cast<double>(NowNs() - t0) / 1e9;
  PayloadRun run;
  run.rate = (per_pump * kPumps) / secs;
  run.bytes_copied = rt.domain().payload_bytes_copied();
  return run;
}

void BenchPayloadThroughput(JsonDoc& json) {
  Header("payload throughput: 16 KiB borrowed views (zero-copy vs copy)");
  const int n = FullScale() ? 60000 : 10000;
  constexpr int kRounds = 3;
  PayloadRun best[2];  // [0]=copy, [1]=zerocopy, interleaved like above
  for (int round = 0; round < kRounds; ++round) {
    for (const int zc : {0, 1}) {
      PayloadRun run = RunPayload(zc == 1, n);
      if (run.rate > best[zc].rate) best[zc] = run;
    }
  }
  for (const int zc : {0, 1}) {
    std::printf("  %-12s %10.0f calls/s  (payload bytes copied: %llu)\n",
                zc == 1 ? "zerocopy" : "copy", best[zc].rate,
                static_cast<unsigned long long>(best[zc].bytes_copied));
  }
  json.Add("calls_per_sec_copy", best[0].rate);
  json.Add("calls_per_sec_zerocopy", best[1].rate);
  json.Add("copy_payload_bytes_copied",
           static_cast<double>(best[0].bytes_copied));
  json.Add("zerocopy_payload_bytes_copied",
           static_cast<double>(best[1].bytes_copied));
}

// -------------------------------------------------- log point-op latency

void BenchLogOps(JsonDoc& json) {
  Header("call-log point-operation latency [ns/op]");
  const std::size_t n = FullScale() ? 200000 : 50000;
  msg::CallLog log;
  Rng rng(42);

  std::vector<LogSeq> seqs;
  seqs.reserve(n);
  Nanos t0 = NowNs();
  for (std::size_t i = 0; i < n; ++i) {
    msg::CallLogEntry e;
    e.fn = 1;
    e.session = static_cast<std::int64_t>(i % 64);
    e.args = {msg::MsgValue(static_cast<std::int64_t>(i))};
    seqs.push_back(log.Append(std::move(e)));
  }
  const double append_ns = static_cast<double>(NowNs() - t0) / n;

  t0 = NowNs();
  for (const LogSeq s : seqs) {
    log.SetReturn(s, msg::MsgValue(std::int64_t{0}));
  }
  const double set_ret_ns = static_cast<double>(NowNs() - t0) / n;

  // Random point erase at full size — the operation the seq index made
  // O(log n); measured over a prefix to keep the log near peak size.
  const std::size_t erases = n / 10;
  t0 = NowNs();
  for (std::size_t i = 0; i < erases; ++i) {
    log.Erase(seqs[rng.Below(seqs.size())]);
  }
  const double erase_ns = static_cast<double>(NowNs() - t0) / erases;

  // Session prune via the per-session index.
  t0 = NowNs();
  std::size_t pruned = 0;
  for (std::int64_t s = 0; s < 64; ++s) pruned += log.PruneSession(s);
  const double prune_ns =
      pruned > 0 ? static_cast<double>(NowNs() - t0) / pruned : 0;

  std::printf("  append      %8.1f\n", append_ns);
  std::printf("  set_return  %8.1f\n", set_ret_ns);
  std::printf("  erase       %8.1f\n", erase_ns);
  std::printf("  prune/entry %8.1f  (%zu entries, %llu full scans)\n",
              prune_ns, pruned, static_cast<unsigned long long>(log.scans()));
  json.Add("log_append_ns", append_ns);
  json.Add("log_set_return_ns", set_ret_ns);
  json.Add("log_erase_ns", erase_ns);
  json.Add("log_prune_per_entry_ns", prune_ns);
}

// ------------------------------------------- session shrink + compaction

void BenchSessionWorkload(JsonDoc& json) {
  Header("session workload: shrink + scheduled compaction");
  const int rounds = FullScale() ? 2000 : 400;
  core::RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.log_shrink_threshold = 32;
  core::Runtime rt(opts);
  auto sess_ptr = std::make_unique<SessComponent>();
  SessComponent* sess = sess_ptr.get();
  const ComponentId id = rt.AddComponent(std::move(sess_ptr));
  rt.AddAppDependency(id);
  rt.Boot();
  sess->ResolveSetFn(rt);

  const FunctionId open = rt.Lookup("sess", "open");
  const FunctionId add = rt.Lookup("sess", "add");
  const FunctionId close = rt.Lookup("sess", "close");
  Rng rng(7);
  const Nanos t0 = NowNs();
  rt.SpawnApp("pump", [&] {
    // A long-lived session accumulating entries (compaction collapses it)
    // over short open/add/close sessions (shrinking prunes them).
    const std::int64_t hot = rt.Call(open, {}).i64();
    for (int r = 0; r < rounds; ++r) {
      rt.Call(add, {msg::MsgValue(hot), msg::MsgValue(std::int64_t{1})});
      const std::int64_t s = rt.Call(open, {}).i64();
      for (int i = 0; i < 4; ++i) {
        rt.Call(add, {msg::MsgValue(s),
                      msg::MsgValue(static_cast<std::int64_t>(rng.Below(10)))});
      }
      rt.Call(close, {msg::MsgValue(s)});
    }
  });
  rt.RunUntilIdle();
  const double secs = static_cast<double>(NowNs() - t0) / 1e9;
  const auto stats = rt.Stats();
  const double ops = rounds * 7.0;
  std::printf("  %10.0f ops/s  log=%zu entries\n", ops / secs,
              rt.LogEntries(id));
  std::printf(
      "  compactions=%llu skips=%llu pruned=%llu full_scans=%llu\n",
      static_cast<unsigned long long>(stats.compactions),
      static_cast<unsigned long long>(stats.compaction_skips),
      static_cast<unsigned long long>(stats.log_pruned_entries),
      static_cast<unsigned long long>(stats.log_scans));
  json.Add("session_ops_per_sec", ops / secs);
  json.Add("session_compactions", static_cast<double>(stats.compactions));
  json.Add("session_compaction_skips",
           static_cast<double>(stats.compaction_skips));
  json.Add("session_log_scans", static_cast<double>(stats.log_scans));
  json.Add("session_final_log_entries",
           static_cast<double>(rt.LogEntries(id)));
}

// ------------------------------------------------------ reboot under load

void BenchRebootUnderLoad(JsonDoc& json) {
  Header("reboot with traffic in flight [us]");
  const int reps = FullScale() ? 50 : 10;
  const int log_entries = FullScale() ? 512 : 128;
  Series total, stop, replay;
  for (int rep = 0; rep < reps; ++rep) {
    core::RuntimeOptions opts;
    opts.hang_threshold = 0;
    opts.log_shrink_threshold = 0;  // keep the full log: worst-case replay
    core::Runtime rt(opts);
    auto sess_ptr = std::make_unique<SessComponent>();
    SessComponent* sess = sess_ptr.get();
    const ComponentId id = rt.AddComponent(std::move(sess_ptr));
    rt.AddAppDependency(id);
    rt.Boot();
    sess->ResolveSetFn(rt);
    const FunctionId open = rt.Lookup("sess", "open");
    const FunctionId add = rt.Lookup("sess", "add");
    const FunctionId sum = rt.Lookup("sess", "sum");
    std::int64_t hot = -1;
    rt.SpawnApp("fill", [&] {
      hot = rt.Call(open, {}).i64();
      for (int i = 0; i < log_entries; ++i) {
        rt.Call(add, {msg::MsgValue(hot), msg::MsgValue(std::int64_t{1})});
      }
    });
    rt.RunUntilIdle();
    // Leave requests queued and in flight, then reboot through them.
    for (int i = 0; i < 4; ++i) {
      rt.SpawnApp("load" + std::to_string(i), [&] {
        rt.Call(add, {msg::MsgValue(hot), msg::MsgValue(std::int64_t{1})});
      });
    }
    if (!rt.RunUntil([&] { return rt.domain().QueueDepth(id) >= 1; })) continue;
    auto report = rt.Reboot(id);
    if (!report.ok()) continue;
    rt.RunUntilIdle();
    std::int64_t got = 0;
    rt.SpawnApp("check", [&] { got = rt.Call(sum, {msg::MsgValue(hot)}).i64(); });
    rt.RunUntilIdle();
    if (got != log_entries + 4) {
      std::fprintf(stderr, "  consistency FAILED: sum=%lld want %d\n",
                   static_cast<long long>(got), log_entries + 4);
      std::exit(1);
    }
    total.Add(static_cast<double>(report.value().total_ns) / 1e3);
    stop.Add(static_cast<double>(report.value().stop_ns) / 1e3);
    replay.Add(static_cast<double>(report.value().replay_ns) / 1e3);
  }
  std::printf("  total  %8.1f +- %.1f  (p50=%.1f p95=%.1f p99=%.1f)\n",
              total.Mean(), total.Stddev(), total.Percentile(50),
              total.Percentile(95), total.Percentile(99));
  std::printf("  stop   %8.1f\n", stop.Mean());
  std::printf("  replay %8.1f  (%d log entries, consistency checked)\n",
              replay.Mean(), log_entries);
  json.Add("reboot_under_load_total_us", total.Mean());
  json.Add("reboot_under_load_total_p95_us", total.Percentile(95));
  json.Add("reboot_under_load_stop_us", stop.Mean());
  json.Add("reboot_under_load_replay_us", replay.Mean());
}

void Run() {
  JsonDoc json;
  BenchCallThroughput(json);
  BenchPayloadThroughput(json);
  BenchLogOps(json);
  BenchSessionWorkload(json);
  BenchRebootUnderLoad(json);
  const char* path = BenchJsonPath("bench_msgplane.json");
  if (!json.Write(path)) std::exit(1);
  std::printf("\nJSON baseline written to %s\n", path);
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
