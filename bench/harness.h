// Shared bench-harness helpers: the five paper configurations, rig assembly,
// client pumping, timing, and table formatting.
//
// Workload sizes default to a laptop-friendly scale; set VAMPOS_BENCH_FULL=1
// to run the paper's full sizes (10k SQLite inserts, 1M Redis SETs, ...).
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "core/runtime.h"
#include "obs/histogram.h"

namespace vampos::bench {

// The five configurations of Fig 5 / Fig 7.
enum class Config { kUnikraft, kNoop, kDaS, kFSm, kNETm };

inline const char* Name(Config c) {
  switch (c) {
    case Config::kUnikraft: return "Unikraft";
    case Config::kNoop: return "VampOS-Noop";
    case Config::kDaS: return "VampOS-DaS";
    case Config::kFSm: return "VampOS-FSm";
    case Config::kNETm: return "VampOS-NETm";
  }
  return "?";
}

inline const std::vector<Config>& AllConfigs() {
  static const std::vector<Config> kAll = {
      Config::kUnikraft, Config::kNoop, Config::kDaS, Config::kFSm,
      Config::kNETm};
  return kAll;
}

inline core::RuntimeOptions OptionsFor(Config c) {
  core::RuntimeOptions o;
  o.hang_threshold = 0;  // benches measure steady state, not hangs
  switch (c) {
    case Config::kUnikraft:
      o.mode = core::Mode::kUnikraft;
      break;
    case Config::kNoop:
      o.mode = core::Mode::kVampOS;
      o.policy = core::SchedPolicy::kRoundRobin;
      break;
    default:
      o.mode = core::Mode::kVampOS;
      o.policy = core::SchedPolicy::kDependencyAware;
      break;
  }
  // Checkpoint-engine override, so any bench can be rerun against all three
  // engines: "full" (copy everything), "incr" (hash-scan incremental), and
  // "track" (incremental + write-tracked dirty pages). A typo'd mode used
  // to silently fall through to the build default and poison A/B numbers —
  // reject anything unrecognized.
  if (const char* m = std::getenv("VAMPOS_SNAPSHOT_MODE")) {
    const std::string mode(m);
    if (mode == "full") {
      o.snapshot_mode = mem::SnapshotMode::kFullCopy;
    } else if (mode == "incr") {
      o.snapshot_mode = mem::SnapshotMode::kIncremental;
    } else if (mode == "track") {
      o.snapshot_mode = mem::SnapshotMode::kIncremental;
      o.dirty_tracking = true;
    } else {
      std::fprintf(stderr,
                   "unrecognized VAMPOS_SNAPSHOT_MODE='%s' "
                   "(expected: full, incr, track)\n",
                   m);
      std::exit(2);
    }
  }
  return o;
}

inline apps::StackSpec SpecFor(Config c, apps::StackSpec base) {
  if (c == Config::kFSm) base.merge_fs = true;
  if (c == Config::kNETm) base.merge_net = true;
  return base;
}

/// One assembled unikernel-linked application.
struct Rig {
  Rig(Config config, apps::StackSpec base,
      core::RuntimeOptions opts_override = core::RuntimeOptions{},
      bool use_override = false)
      : rt(use_override ? opts_override : OptionsFor(config)) {
    info = apps::BuildStack(rt, platform, rings, SpecFor(config, base));
    apps::BootAndMount(rt);
    px = std::make_unique<apps::Posix>(rt);
  }

  /// Client/server pump: poll the host-side client, wake parked servers,
  /// run the runtime to idle. One call ~= one network quantum.
  void Pump(apps::SimClient& client, int rounds = 6) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  }

  uk::Platform platform;
  uk::HostRingView rings;
  core::Runtime rt;
  apps::StackInfo info;
  std::unique_ptr<apps::Posix> px;
};

inline bool FullScale() {
  const char* env = std::getenv("VAMPOS_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline Nanos NowNs() { return SteadyClock::Instance().Now(); }

struct Series {
  std::vector<double> samples;
  void Add(double v) { samples.push_back(v); }
  [[nodiscard]] double Mean() const {
    if (samples.empty()) return 0;
    return std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  }
  [[nodiscard]] double Stddev() const {
    if (samples.size() < 2) return 0;
    const double m = Mean();
    double acc = 0;
    for (double s : samples) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples.size() - 1));
  }
  [[nodiscard]] double Median() {
    if (samples.empty()) return 0;
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  }
  /// Sample percentile (q in [0,100]) by linear interpolation between the
  /// sorted neighbors — exact, unlike the log2-bucketed runtime histograms.
  [[nodiscard]] double Percentile(double q) {
    if (samples.empty()) return 0;
    std::sort(samples.begin(), samples.end());
    if (q <= 0) return samples.front();
    if (q >= 100) return samples.back();
    const double pos = q / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples.size()) return samples.back();
    return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
  }
};

/// One-line p50/p95/p99 report from a runtime latency histogram (ns samples,
/// printed in us). Histograms come from Runtime::metrics(), e.g. the
/// end-to-end "rt.call_ns" or the per-function "fn.<comp>.<fn>.ns".
inline void PrintLatency(const char* label, const obs::Histogram& h) {
  std::printf("  %-12s p50=%8.2fus p95=%8.2fus p99=%8.2fus  (n=%llu)\n",
              label, h.Percentile(50) / 1e3, h.Percentile(95) / 1e3,
              h.Percentile(99) / 1e3,
              static_cast<unsigned long long>(h.count()));
}

/// Flat JSON baseline document shared by the bench binaries. Each bench
/// writes one of these at the repo root (bench_msgplane.json,
/// BENCH_recovery.json, BENCH_syscalls.json) so the perf trajectory is
/// machine-diffable run-to-run.
struct JsonDoc {
  std::string body;
  void Add(const std::string& key, double value) {
    if (!body.empty()) body += ",\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.3f", key.c_str(), value);
    body += buf;
  }
  /// Embeds `raw` (already-valid JSON, e.g. MetricsRegistry::Json()) under
  /// `key` without quoting it.
  void AddRaw(const std::string& key, const std::string& raw) {
    if (!body.empty()) body += ",\n";
    body += "  \"" + key + "\": " + raw;
  }
  bool Write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return false;
    }
    std::fprintf(f, "{\n%s\n}\n", body.c_str());
    std::fclose(f);
    return true;
  }
};

/// Lower-cases and underscores a display name ("VampOS-DaS" -> "vampos_das")
/// so config/call names compose into stable JSON keys.
inline std::string JsonKey(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += '_';
    }
  }
  return out;
}

/// Output path for a bench's JSON baseline: VAMPOS_BENCH_JSON if set,
/// otherwise the bench's default name (relative to the working directory,
/// i.e. the repo root when run from there).
inline const char* BenchJsonPath(const char* default_name) {
  const char* path = std::getenv("VAMPOS_BENCH_JSON");
  return path != nullptr ? path : default_name;
}

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace vampos::bench
