// Micro-benchmarks (google-benchmark) for the primitives underneath every
// paper number: buddy allocation, snapshot capture/restore vs component
// footprint (the dominant term in Fig 6), fiber context switches and
// message push/pull + logging (the per-transition costs in Fig 5), and the
// direct-vs-message call gap.
#include <benchmark/benchmark.h>

#include "core/runtime.h"
#include "mem/arena.h"
#include "mem/buddy_allocator.h"
#include "mem/snapshot.h"
#include "msg/domain.h"
#include "sched/fiber.h"
#include "testing_components.h"

namespace vampos {
namespace {

void BM_BuddyAllocFree(benchmark::State& state) {
  mem::Arena arena(8u << 20);
  mem::BuddyAllocator alloc(arena);
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = alloc.Alloc(size);
    benchmark::DoNotOptimize(p);
    alloc.Free(p);
  }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SnapshotCapture(benchmark::State& state) {
  mem::Arena arena(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto snap = mem::Snapshot::Capture(arena);
    benchmark::DoNotOptimize(snap.size_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotCapture)->Arg(1 << 20)->Arg(8 << 20)->Arg(16 << 20);

void BM_SnapshotRecapture(benchmark::State& state) {
  // Incremental re-snapshot of a mostly-clean arena: the steady-state cost
  // of periodic rejuvenation. One page out of each 64 is dirtied per
  // iteration, so ~1.5% of the pages are re-copied.
  mem::Arena arena(static_cast<std::size_t>(state.range(0)));
  mem::SnapshotConfig cfg;
  cfg.mode = mem::SnapshotMode::kIncremental;
  mem::Snapshot snap = mem::Snapshot::Capture(arena, cfg);
  std::byte* bytes = arena.base();
  std::size_t tick = 0;
  for (auto _ : state) {
    for (std::size_t off = 0; off < arena.size();
         off += 64 * mem::Arena::kPageSize) {
      bytes[off] = static_cast<std::byte>(++tick);
    }
    benchmark::DoNotOptimize(snap.Recapture(arena, cfg).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotRecapture)->Arg(1 << 20)->Arg(8 << 20)->Arg(16 << 20);

void BM_SnapshotRestore(benchmark::State& state) {
  mem::Arena arena(static_cast<std::size_t>(state.range(0)));
  const mem::Snapshot snap = mem::Snapshot::Capture(arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.Restore(arena).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotRestore)->Arg(1 << 20)->Arg(8 << 20)->Arg(16 << 20);

void BM_FiberSwitch(benchmark::State& state) {
  sched::FiberManager fm;
  sched::Fiber* f = fm.Spawn("spin", 0, [&fm] {
    while (true) fm.Yield();
  });
  for (auto _ : state) {
    fm.Dispatch(f);  // two context switches: in + out
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_DomainPushPull(benchmark::State& state) {
  msg::MessageDomain dom(4u << 20, nullptr);
  dom.EnsureCapacity(1);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    msg::Message m;
    m.to = 1;
    dom.Push(m, {msg::MsgValue(payload)});
    benchmark::DoNotOptimize(dom.Pull(1));
  }
}
BENCHMARK(BM_DomainPushPull)->Arg(8)->Arg(222)->Arg(4096);

void BM_CallDirectVsMessage(benchmark::State& state) {
  const bool message_mode = state.range(0) == 1;
  core::RuntimeOptions opts;
  opts.mode = message_mode ? core::Mode::kVampOS : core::Mode::kUnikraft;
  opts.hang_threshold = 0;
  core::Runtime rt(opts);
  const ComponentId id =
      rt.AddComponent(std::make_unique<bench_testing::NopComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId nop = rt.Lookup("nop", "nop");
  for (auto _ : state) {
    std::int64_t out = 0;
    rt.SpawnApp("call", [&] { out = rt.Call(nop, {}).i64(); });
    rt.RunUntilIdle();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(message_mode ? "message-passing" : "direct");
}
BENCHMARK(BM_CallDirectVsMessage)->Arg(0)->Arg(1);

void BM_LoggedVsUnloggedCall(benchmark::State& state) {
  const bool logged = state.range(0) == 1;
  core::RuntimeOptions opts;
  opts.hang_threshold = 0;
  opts.log_shrink_threshold = 64;
  core::Runtime rt(opts);
  const ComponentId id = rt.AddComponent(
      std::make_unique<bench_testing::NopComponent>());
  rt.AddAppDependency(id);
  rt.Boot();
  const FunctionId fn =
      rt.Lookup("nop", logged ? "nop_logged" : "nop");
  for (auto _ : state) {
    rt.SpawnApp("call", [&] { (void)rt.Call(fn, {}); });
    rt.RunUntilIdle();
  }
  state.SetLabel(logged ? "logged" : "unlogged");
}
BENCHMARK(BM_LoggedVsUnloggedCall)->Arg(0)->Arg(1);

}  // namespace
}  // namespace vampos

BENCHMARK_MAIN();
