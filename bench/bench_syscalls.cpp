// Fig 5 + Table III: system-call execution times across the five
// configurations, and per-syscall log-space deltas with and without
// session-aware shrinking.
//
// Workload mirrors §VII-A: getpid, open, write(1B), read(1B), close,
// socket_read(222B), socket_write(222B); 100 trials each.
#include <cstdio>
#include <map>

#include "harness.h"

namespace vampos::bench {
namespace {

using apps::SimClient;
using apps::StackSpec;

constexpr int kTrials = 100;
constexpr int kPayload = 222;

struct NetSetup {
  int h = -1;
  std::int64_t listen_fd = -1;
  std::int64_t conn = -1;
};

NetSetup EstablishConnection(Rig& rig, SimClient& client) {
  NetSetup net;
  rig.rt.SpawnApp("listen", [&] {
    net.listen_fd = rig.px->Socket();
    rig.px->Bind(net.listen_fd, 80);
    rig.px->Listen(net.listen_fd);
  });
  rig.rt.RunUntilIdle();
  net.h = client.Connect();
  rig.rt.SpawnApp("accept", [&] {
    for (int i = 0; i < 50 && net.conn < 0; ++i) {
      net.conn = rig.px->Accept(net.listen_fd);
    }
  });
  rig.rt.RunUntilIdle();
  client.Poll();
  return net;
}

std::map<std::string, Series> MeasureConfig(Config cfg) {
  // The VampOS configs run with the same-destination inline fast path on:
  // an idle resident callee is invoked synchronously on the caller's fiber,
  // skipping the queue+fiber hop that used to dominate syscall latency.
  // Reboot-time invalidation and call logging are unchanged, so Table III
  // and the recovery benches are unaffected by the shortcut.
  core::RuntimeOptions opts = OptionsFor(cfg);
  opts.inline_calls = cfg != Config::kUnikraft;
  Rig rig(cfg, StackSpec::Nginx(), opts, /*use_override=*/true);
  rig.platform.ninep.PutFile("/bench", "x");
  SimClient client(&rig.platform.net, 80);
  NetSetup net = EstablishConnection(rig, client);
  if (net.conn < 0) {
    std::fprintf(stderr, "%s: connection setup failed\n", Name(cfg));
    return {};
  }
  // Preload one inbound 222-byte message per socket_read trial.
  for (int i = 0; i < kTrials; ++i) {
    client.Send(net.h, std::string(kPayload, 'm'));
  }

  std::map<std::string, Series> results;
  std::map<std::string, Series> transitions;
  rig.rt.SpawnApp("measure", [&] {
    auto timed = [&](const char* name, auto&& op) {
      const auto msgs0 = rig.rt.Stats().messages;
      const Nanos t0 = NowNs();
      op();
      results[name].Add(static_cast<double>(NowNs() - t0));
      transitions[name].Add(
          static_cast<double>(rig.rt.Stats().messages - msgs0));
    };
    const std::int64_t wfd = rig.px->Create("/wbench");
    for (int i = 0; i < kTrials; ++i) {
      timed("getpid", [&] { rig.px->Getpid(); });

      std::int64_t fd = -1;
      timed("open", [&] { fd = rig.px->Open("/bench"); });
      timed("read", [&] { rig.px->Read(fd, 1); });
      timed("close", [&] { rig.px->Close(fd); });

      timed("write", [&] { rig.px->Write(wfd, "y"); });

      timed("socket_read", [&] { rig.px->Recv(net.conn, kPayload); });
      timed("socket_write", [&] {
        rig.px->Send(net.conn, std::string(kPayload, 'r'));
      });
    }
    rig.px->Close(wfd);
  });
  rig.rt.RunUntilIdle();

  std::printf("  %-14s", Name(cfg));
  for (const char* call : {"getpid", "open", "write", "read", "close",
                           "socket_read", "socket_write"}) {
    std::printf(" %9.2f", results[call].Median() / 1000.0);
  }
  std::printf("\n");
  return results;
}

void Fig5(JsonDoc& json) {
  Header("Fig 5: system call execution time [us], median of 100 trials");
  std::printf("  %-14s %9s %9s %9s %9s %9s %9s %9s\n", "config", "getpid",
              "open", "write", "read", "close", "sock_rd", "sock_wr");
  std::map<Config, std::map<std::string, Series>> all;
  for (Config cfg : AllConfigs()) all[cfg] = MeasureConfig(cfg);

  for (Config cfg : AllConfigs()) {
    for (const char* call : {"getpid", "open", "write", "read", "close",
                             "socket_read", "socket_write"}) {
      json.Add(JsonKey(Name(cfg)) + "_" + call + "_us",
               all[cfg][call].Median() / 1000.0);
    }
  }

  std::printf("\n  Relative to Unikraft (x):\n");
  std::printf("  %-14s %9s %9s %9s %9s %9s %9s %9s\n", "config", "getpid",
              "open", "write", "read", "close", "sock_rd", "sock_wr");
  for (Config cfg : AllConfigs()) {
    if (cfg == Config::kUnikraft) continue;
    std::printf("  %-14s", Name(cfg));
    for (const char* call : {"getpid", "open", "write", "read", "close",
                             "socket_read", "socket_write"}) {
      const double base = all[Config::kUnikraft][call].Median();
      std::printf(" %9.2f", base > 0 ? all[cfg][call].Median() / base : 0.0);
    }
    std::printf("\n");
  }
}

// ------------------------------------------------------------- Table III

std::size_t TotalLogEntries(Rig& rig) { return rig.rt.Memory().log_entries; }

std::map<std::string, double> LogDeltas(bool shrink) {
  core::RuntimeOptions opts = OptionsFor(Config::kDaS);
  opts.session_shrink = shrink;
  if (!shrink) opts.log_shrink_threshold = 0;
  Rig rig(Config::kDaS, StackSpec::Nginx(), opts, /*use_override=*/true);
  rig.platform.ninep.PutFile("/bench", "x");
  SimClient client(&rig.platform.net, 80);
  NetSetup net = EstablishConnection(rig, client);
  constexpr int kLogTrials = 20;
  for (int i = 0; i < kLogTrials; ++i) {
    client.Send(net.h, std::string(kPayload, 'm'));
  }

  std::map<std::string, Series> deltas;
  rig.rt.SpawnApp("measure", [&] {
    auto count = [&](const char* name, auto&& op, bool record) {
      const auto before = TotalLogEntries(rig);
      op();
      if (record) {
        deltas[name].Add(static_cast<double>(TotalLogEntries(rig)) -
                         static_cast<double>(before));
      }
    };
    const std::int64_t wfd = rig.px->Create("/wbench");
    for (int i = 0; i < kLogTrials; ++i) {
      // Skip trial 0 for open/close: fd-number reuse (which drives the
      // shrunk open() delta negative) only exists from the second
      // iteration on, matching the paper's steady-state measurement.
      const bool rec = i > 0;
      count("getpid", [&] { rig.px->Getpid(); }, rec);
      std::int64_t fd = -1;
      count("open", [&] { fd = rig.px->Open("/bench"); }, rec);
      count("read", [&] { rig.px->Read(fd, 1); }, rec);
      count("close", [&] { rig.px->Close(fd); }, rec);
      count("write", [&] { rig.px->Write(wfd, "y"); }, rec);
      count("socket_read", [&] { rig.px->Recv(net.conn, kPayload); }, rec);
      count("socket_write",
            [&] { rig.px->Send(net.conn, std::string(kPayload, 'r')); },
            rec);
    }
    rig.px->Close(wfd);
  });
  rig.rt.RunUntilIdle();

  std::map<std::string, double> medians;
  for (auto& [name, series] : deltas) medians[name] = series.Median();
  return medians;
}

void TableIII(JsonDoc& json) {
  Header("Table III: log space overhead per system call [entries]");
  auto normal = LogDeltas(/*shrink=*/false);
  auto shrunk = LogDeltas(/*shrink=*/true);
  std::printf("  %-14s %10s %10s\n", "system call", "normal", "shrunk");
  for (const char* call : {"getpid", "open", "read", "write", "close",
                           "socket_read", "socket_write"}) {
    std::printf("  %-14s %10.0f %10.0f\n", call, normal[call], shrunk[call]);
    json.Add(std::string("log_delta_normal_") + call, normal[call]);
    json.Add(std::string("log_delta_shrunk_") + call, shrunk[call]);
  }
}

// ------------------------------------------------- zero-copy read payloads

/// 16 KiB pread()s through the full DaS stack backed by the in-unikernel
/// RAMFS (whose read handler lends arena views), with the message plane's
/// zero-copy borrow path on vs. off. The staging-arena byte counter is the
/// CI gate: lending must move strictly fewer payload bytes than the copy
/// fallback on the identical workload. The VFS→app hop copies in both modes
/// (VFS returns owned bytes), so only the RAMFS→VFS hop shrinks — the gate
/// is on bytes, not on wall-clock, which at syscall granularity is noise.
void ZeroCopyReads(JsonDoc& json) {
  Header("zero-copy 16 KiB preads: staging-arena payload traffic [bytes]");
  constexpr std::int64_t kBlob = 16 * 1024;
  const int reads = FullScale() ? 2000 : 200;
  for (const int zc : {0, 1}) {
    core::RuntimeOptions opts = OptionsFor(Config::kDaS);
    opts.zero_copy_payloads = zc == 1;
    apps::StackSpec spec = StackSpec::Nginx();
    spec.ramfs = true;
    Rig rig(Config::kDaS, spec, opts, /*use_override=*/true);
    Series lat;
    bool short_read = false;
    rig.rt.SpawnApp("measure", [&] {
      const std::int64_t fd = rig.px->Create("/blob");
      rig.px->Write(fd, std::string(kBlob, 'b'));
      for (int i = 0; i < reads; ++i) {
        const Nanos t0 = NowNs();
        const apps::IoResult r = rig.px->Pread(fd, kBlob, 0);
        lat.Add(static_cast<double>(NowNs() - t0));
        if (!r.ok() || r.data.size() != static_cast<std::size_t>(kBlob)) {
          short_read = true;
        }
      }
      rig.px->Close(fd);
    });
    rig.rt.RunUntilIdle();
    if (short_read) {
      std::fprintf(stderr, "zero-copy bench: short read\n");
      std::exit(1);
    }
    const std::uint64_t bytes = rig.rt.domain().payload_bytes_copied();
    const char* tag = zc == 1 ? "zerocopy" : "copy";
    std::printf("  %-9s %14llu bytes copied  %9.2f us/pread (median)\n", tag,
                static_cast<unsigned long long>(bytes),
                lat.Median() / 1000.0);
    json.Add(std::string(tag) + "_read_payload_bytes",
             static_cast<double>(bytes));
    json.Add(std::string(tag) + "_read_us", lat.Median() / 1000.0);
  }
}

void Run() {
  JsonDoc json;
  Fig5(json);
  TableIII(json);
  ZeroCopyReads(json);
  const char* path = BenchJsonPath("BENCH_syscalls.json");
  if (!json.Write(path)) std::exit(1);
  std::printf("\nJSON baseline written to %s\n", path);
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
