// Fig 8: Redis request latency across Unikraft- vs VampOS-based failure
// recovery (§VII-E).
//
// A warmed-up Redis serves GET probes; a fail-stop fault (panic) is injected
// into 9PFS mid-run. VampOS reboots only the failed 9PFS and restores it,
// keeping the in-memory KVs and the client connection — latency stays flat.
// The Unikraft baseline restarts the whole unikernel-linked application and
// must replay the AOF before serving again, so probes stall for the whole
// restoration and the fault-tick latency spikes by orders of magnitude.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kvstore.h"
#include "harness.h"

namespace vampos::bench {
namespace {

using apps::KvStore;
using apps::SimClient;
using apps::StackSpec;

constexpr int kTicks = 30;
constexpr int kFaultTick = 10;

struct Instance {
  explicit Instance(uk::Platform& platform)
      : rt(OptionsFor(Config::kDaS)) {
    info = apps::BuildStack(rt, platform, rings, StackSpec::Redis());
    apps::BootAndMount(rt);
    px = std::make_unique<apps::Posix>(rt);
    kv = std::make_unique<KvStore>(*px, "/aof", /*aof_enabled=*/true);
    rt.SpawnApp("redis", [this] {
      kv->OpenAof();
      kv->Setup(6379);
      kv->RunLoop(&stop);
    });
    rt.RunUntilIdle();
  }
  ~Instance() {
    stop = true;
    rt.UnparkApps();
    rt.RunUntilIdle();
  }
  void Pump(SimClient& client, int rounds = 3) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  }

  uk::HostRingView rings;
  core::Runtime rt;
  apps::StackInfo info;
  std::unique_ptr<apps::Posix> px;
  std::unique_ptr<KvStore> kv;
  bool stop = false;
};

/// Sends one GET probe and returns its latency in microseconds (-1: failed).
double Probe(Instance& inst, SimClient& client, int h, int key_space) {
  static int seq = 0;
  const std::string key = "k" + std::to_string(seq++ % key_space);
  const Nanos t0 = NowNs();
  client.Send(h, "GET " + key + "\n");
  for (int attempt = 0; attempt < 12; ++attempt) {
    inst.Pump(client, 1);
    const std::string resp = client.TakeReceived(h);
    if (!resp.empty()) {
      return static_cast<double>(NowNs() - t0) / 1000.0;
    }
    if (client.Broken(h) || client.Closed(h)) return -1;
  }
  return -1;
}

std::vector<double> RunScenario(bool vampos, int warm_keys) {
  uk::Platform platform;
  auto inst = std::make_unique<Instance>(platform);

  // Warm-up: populate the store (and the AOF) before measuring.
  {
    SimClient warm_client(&platform.net, 6379);
    const int wh = warm_client.Connect();
    inst->Pump(warm_client, 6);
    constexpr int kBatch = 32;
    for (int i = 0; i < warm_keys; i += kBatch) {
      for (int j = i; j < i + kBatch && j < warm_keys; ++j) {
        warm_client.Send(wh, "SET k" + std::to_string(j) + " v\n");
      }
      inst->Pump(warm_client, 2);
      warm_client.TakeReceived(wh);
    }
    warm_client.Close(wh);
    inst->Pump(warm_client, 2);
  }

  SimClient client(&platform.net, 6379);
  int h = client.Connect();
  inst->Pump(client, 6);

  std::vector<double> latencies;
  for (int tick = 0; tick < kTicks; ++tick) {
    if (tick == kFaultTick) {
      if (vampos) {
        // Fail-stop fault in 9PFS; the next message it processes panics.
        // A SET (whose AOF append + fsync crosses 9PFS) triggers it, the
        // message thread reboots the component, and the retried request
        // completes — all within the probe below.
        inst->rt.InjectFault(inst->info.ninep, FaultKind::kPanic);
        client.Send(h, "SET trigger x\n");
        inst->Pump(client, 8);
        client.TakeReceived(h);
        std::fprintf(stderr, "  [vampos] 9pfs panic -> %llu component "
                     "reboot(s), store intact\n",
                     static_cast<unsigned long long>(
                         inst->rt.Stats().reboots));
      } else {
        // Full reboot + AOF restoration before Redis serves again.
        const Nanos t0 = NowNs();
        inst = std::make_unique<Instance>(platform);
        std::size_t reloaded = 0;
        inst->rt.SpawnApp("aof-reload", [&] {
          KvStore fresh(*inst->px, "/aof", true);
          reloaded = fresh.LoadAof();
        });
        inst->rt.RunUntilIdle();
        const double reboot_us =
            static_cast<double>(NowNs() - t0) / 1000.0;
        latencies.push_back(reboot_us);  // the stalled probe's latency
        // Old connection died with the instance; reconnect like a client
        // whose TCP session was reset.
        h = client.Connect();
        inst->Pump(client, 8);
        std::fprintf(stderr,
                     "  [unikraft] full reboot + AOF reload of %zu keys\n",
                     reloaded);
        continue;
      }
    }
    latencies.push_back(Probe(*inst, client, h, warm_keys));
  }
  return latencies;
}

/// Median probe latency over the non-fault ticks (the steady-state floor
/// the fault-tick spike is compared against).
double SteadyMedian(const std::vector<double>& latencies) {
  Series steady;
  for (int t = 0; t < static_cast<int>(latencies.size()); ++t) {
    if (t != kFaultTick && latencies[t] > 0) steady.Add(latencies[t]);
  }
  return steady.Median();
}

void Run() {
  const int warm_keys = FullScale() ? 100000 : 10000;
  Header("Fig 8: Redis GET latency across failure recovery [us per tick]");
  std::printf("  warm-up: %d keys, AOF enabled; fault injected into 9PFS at"
              " tick %d\n\n", warm_keys, kFaultTick);
  auto vamp = RunScenario(/*vampos=*/true, warm_keys);
  auto uk = RunScenario(/*vampos=*/false, warm_keys);
  std::printf("  %6s %16s %16s\n", "tick", "VampOS[us]", "Unikraft[us]");
  for (int t = 0; t < kTicks; ++t) {
    std::printf("  %6d %16.1f %16.1f\n", t,
                t < static_cast<int>(vamp.size()) ? vamp[t] : -1.0,
                t < static_cast<int>(uk.size()) ? uk[t] : -1.0);
  }
  JsonDoc json;
  json.Add("fault_tick_vampos_us", vamp[kFaultTick]);
  json.Add("fault_tick_unikraft_us", uk[kFaultTick]);
  json.Add("steady_median_vampos_us", SteadyMedian(vamp));
  json.Add("steady_median_unikraft_us", SteadyMedian(uk));
  // Summary shape check: the spike ratio at the fault tick.
  if (vamp[kFaultTick] > 0 && uk[kFaultTick] > 0) {
    std::printf("\n  fault-tick latency: VampOS %.1f us vs Unikraft %.1f us"
                " (%.0fx)\n", vamp[kFaultTick], uk[kFaultTick],
                uk[kFaultTick] / vamp[kFaultTick]);
    json.Add("fault_tick_spike_ratio", uk[kFaultTick] / vamp[kFaultTick]);
  }
  const char* path = BenchJsonPath("BENCH_recovery.json");
  if (!json.Write(path)) std::exit(1);
  std::printf("\nJSON baseline written to %s\n", path);
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
