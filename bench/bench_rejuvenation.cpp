// Table V: request successes across Unikraft- vs VampOS-based software
// rejuvenation (§VII-D).
//
// A siege-like harness keeps 100 client connections to the web server, each
// sending GETs continuously. Rejuvenation reboots components one by one
// (VampOS: component-level reboots in place; Unikraft: a full reboot of the
// unikernel-linked application, which drops every TCP connection). Requests
// that get no response or whose connection breaks count as failures.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/webserver.h"
#include "harness.h"

namespace vampos::bench {
namespace {

using apps::SimClient;
using apps::StackSpec;
using apps::WebServer;

constexpr int kClients = 100;
// 8 rejuvenation events spread over the run; three request rounds between
// consecutive reboots, approximating the paper's 30-second cadence against
// siege's request rate.
constexpr int kRounds = 32;

struct Score {
  int success = 0;
  int fail = 0;
};

/// One unikernel instance bound to an external platform (so we can tear it
/// down and boot a fresh one for the full-reboot comparison).
struct Instance {
  explicit Instance(uk::Platform& platform)
      : rt(OptionsFor(Config::kDaS)) {
    info = apps::BuildStack(rt, platform, rings, StackSpec::Nginx());
    apps::BootAndMount(rt);
    px = std::make_unique<apps::Posix>(rt);
    server = std::make_unique<WebServer>(*px, 80, "/www");
    rt.SpawnApp("nginx", [this] {
      server->Setup();
      server->RunLoop(&stop);
    });
    rt.RunUntilIdle();
  }
  ~Instance() {
    stop = true;
    rt.UnparkApps();
    rt.RunUntilIdle();
  }
  void Pump(SimClient& client, int rounds = 3) {
    for (int i = 0; i < rounds; ++i) {
      client.Poll();
      rt.UnparkApps();
      rt.RunUntilIdle();
      client.Poll();
    }
  }

  uk::HostRingView rings;
  core::Runtime rt;
  apps::StackInfo info;
  std::unique_ptr<apps::Posix> px;
  std::unique_ptr<WebServer> server;
  bool stop = false;
};

Score RunScenario(bool vampos) {
  uk::Platform platform;
  platform.ninep.PutFile("/www/index.html", std::string(180, 'x'));
  auto instance = std::make_unique<Instance>(platform);

  SimClient client(&platform.net, 80);
  std::vector<int> handles;
  for (int i = 0; i < kClients; ++i) handles.push_back(client.Connect());
  instance->Pump(client, 10);

  // Rejuvenation plan: one component per slot, spread over the run.
  std::vector<ComponentId> plan = {
      instance->info.process, instance->info.sysinfo, instance->info.user,
      instance->info.timer,   instance->info.netdev,  instance->info.ninep,
      instance->info.lwip,    instance->info.vfs};
  std::size_t next_reboot = 0;

  Score score;
  for (int round = 0; round < kRounds; ++round) {
    // All clients fire a GET.
    for (int& h : handles) {
      if (client.Broken(h) || client.Closed(h)) {
        h = client.Connect();  // siege reconnects a dropped connection
        instance->Pump(client, 2);
        score.fail++;  // the dropped request counts against availability
        continue;
      }
      client.Send(h, "GET /index.html\n");
    }

    // Mid-round rejuvenation: requests are in flight when the reboot hits.
    if (round % 4 == 3 && next_reboot < plan.size()) {
      if (vampos) {
        (void)instance->rt.Reboot(plan[next_reboot]);
      } else {
        // Full reboot: the whole unikernel-linked application restarts; all
        // connection state inside the guest is gone.
        instance = std::make_unique<Instance>(platform);
        plan = {instance->info.process, instance->info.sysinfo,
                instance->info.user,    instance->info.timer,
                instance->info.netdev,  instance->info.ninep,
                instance->info.lwip,    instance->info.vfs};
      }
      next_reboot++;
    }

    instance->Pump(client, 6);
    for (int h : handles) {
      if (client.Broken(h) || client.Closed(h)) continue;  // counted above
      const std::string resp = client.TakeReceived(h);
      if (resp.find("HTTP/1.0 200") != std::string::npos) {
        score.success++;
      } else if (!resp.empty()) {
        score.fail++;
      }
      // Empty response with a live connection: reply still pending; it will
      // be collected next round (not a failure).
    }
  }
  return score;
}

void Run() {
  Header("Table V: request successes across software rejuvenation");
  const Score uk = RunScenario(/*vampos=*/false);
  const Score vamp = RunScenario(/*vampos=*/true);
  std::printf("  %-16s %10s %10s %14s\n", "", "success", "fails",
              "success ratio");
  auto ratio = [](const Score& s) {
    return s.success + s.fail == 0
               ? 0.0
               : 100.0 * s.success / static_cast<double>(s.success + s.fail);
  };
  std::printf("  %-16s %10d %10d %13.1f%%\n", "Unikraft", uk.success, uk.fail,
              ratio(uk));
  std::printf("  %-16s %10d %10d %13.1f%%\n", "VampOS", vamp.success,
              vamp.fail, ratio(vamp));
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
