// Minimal components for micro-benchmarks.
#pragma once

#include "comp/component.h"

namespace vampos::bench_testing {

/// Stateful no-op component: one unlogged and one logged entry point, used
/// to isolate the cost of call dispatch and of function-call logging.
class NopComponent final : public comp::Component {
 public:
  NopComponent()
      : Component("nop", comp::Statefulness::kStateful, 128 * 1024) {}

  void Init(comp::InitCtx& ctx) override {
    counter_ = MakeState<std::int64_t>(0);
    ctx.Export("nop", comp::FnOptions{},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(++*counter_);
               });
    // Session-bound + canceled immediately so the log cannot grow without
    // bound during long benchmark runs.
    ctx.Export("nop_logged",
               comp::FnOptions{.logged = true, .session_arg = -1},
               [this](comp::CallCtx&, const msg::Args&) {
                 return msg::MsgValue(++*counter_);
               });
  }

 private:
  std::int64_t* counter_ = nullptr;
};

}  // namespace vampos::bench_testing
