// Fig 7: real-world application overheads across the five configurations.
//   (a) execution time / throughput per app
//   (b) memory utilization (component arenas + checkpoints + logs + app)
//
// Workloads follow §VII-C (scaled down by default; VAMPOS_BENCH_FULL=1 for
// larger runs): SQLite inserts 1-byte rows with synchronous journal writes;
// Nginx serves a 180-byte file over 40 persistent connections; Redis runs
// SETs of a 4-byte key / 3-byte value with AOF+fsync; Echo returns 159-byte
// messages on per-message connections.
#include <cstdio>
#include <string>

#include "workloads.h"

namespace vampos::bench {
namespace {

void Run() {
  const bool full = FullScale();
  const int sqlite_n = full ? 10000 : 2000;
  const int nginx_n = full ? 4000 : 800;
  const int redis_n = full ? 100000 : 5000;
  const int echo_n = full ? 4000 : 600;

  Header("Fig 7a: application execution time (lower is better)");
  std::printf("  workload sizes: sqlite=%d nginx=%d redis=%d echo=%d%s\n\n",
              sqlite_n, nginx_n, redis_n, echo_n,
              full ? " (full)" : " (scaled; VAMPOS_BENCH_FULL=1 for full)");
  std::printf("  %-14s %14s %14s %14s %14s\n", "config", "sqlite[s]",
              "nginx[s]", "redis[s]", "echo[s]");

  std::map<Config, std::map<std::string, AppResult>> all;
  for (Config cfg : AllConfigs()) {
    auto& row = all[cfg];
    row["sqlite"] = RunSqlite(cfg, sqlite_n);
    row["nginx"] = RunNginx(cfg, nginx_n);
    row["redis"] = RunRedis(cfg, redis_n);
    row["echo"] = RunEcho(cfg, echo_n);
    std::printf("  %-14s %14.3f %14.3f %14.3f %14.3f\n", Name(cfg),
                row["sqlite"].seconds, row["nginx"].seconds,
                row["redis"].seconds, row["echo"].seconds);
  }

  std::printf("\n  Relative to Unikraft (x):\n");
  for (Config cfg : AllConfigs()) {
    if (cfg == Config::kUnikraft) continue;
    std::printf("  %-14s", Name(cfg));
    for (const char* app : {"sqlite", "nginx", "redis", "echo"}) {
      const double base = all[Config::kUnikraft][app].seconds;
      const double v = all[cfg][app].seconds;
      if (base <= 0 || v <= 0) {
        std::printf(" %14s", "n/a");
      } else {
        std::printf(" %14.2f", v / base);
      }
    }
    std::printf("\n");
  }

  Header("Fig 7b: memory utilization [MB]");
  std::printf("  %-14s %11s %11s %11s %11s   (VampOS overhead: checkpoints+logs)\n",
              "config", "sqlite", "nginx", "redis", "echo");
  for (Config cfg : AllConfigs()) {
    std::printf("  %-14s", Name(cfg));
    for (const char* app : {"sqlite", "nginx", "redis", "echo"}) {
      std::printf(" %11.1f",
                  static_cast<double>(all[cfg][app].mem_total) / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\n  VampOS space overhead (checkpoints + call logs) [MB]:\n");
  for (Config cfg : AllConfigs()) {
    std::printf("  %-14s", Name(cfg));
    for (const char* app : {"sqlite", "nginx", "redis", "echo"}) {
      std::printf(" %11.2f",
                  static_cast<double>(all[cfg][app].mem_overhead) / 1e6);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
