// Shared application-workload runners used by bench_apps (Fig 7),
// bench_logshrink (Table IV), and the ablation benches. Each runs one app
// to completion under a configuration and reports time / throughput /
// memory.
#pragma once

#include <cstdio>
#include <map>
#include <optional>
#include <string>

#include "apps/echo.h"
#include "apps/kvstore.h"
#include "apps/minidb.h"
#include "apps/webserver.h"
#include "harness.h"

namespace vampos::bench {

using apps::EchoServer;
using apps::KvStore;
using apps::MiniDb;
using apps::SimClient;
using apps::StackSpec;
using apps::WebServer;

struct AppResult {
  double seconds = 0;
  double ops = 0;
  std::size_t mem_overhead = 0;  // VampOS: snapshots + logs
  std::size_t mem_total = 0;     // + arenas + app footprint
  std::size_t log_entries = 0;
  std::size_t log_bytes = 0;
  std::uint64_t pkru_writes = 0;
};

inline AppResult Finish(Rig& rig, Nanos t0, double ops, std::size_t app_bytes) {
  AppResult r;
  r.seconds = static_cast<double>(NowNs() - t0) / 1e9;
  r.ops = ops;
  const auto mem = rig.rt.Memory();
  r.mem_overhead = mem.snapshot_bytes + mem.log_bytes;
  r.mem_total = r.mem_overhead + mem.component_arena_bytes + app_bytes;
  r.log_entries = mem.log_entries;
  r.log_bytes = mem.log_bytes;
  r.pkru_writes = rig.rt.Stats().pkru_writes;
  return r;
}

inline Rig MakeRig(Config cfg, StackSpec spec,
                   const std::optional<core::RuntimeOptions>& opts) {
  if (opts.has_value()) return Rig(cfg, spec, *opts, /*use_override=*/true);
  return Rig(cfg, spec);
}

inline AppResult RunSqlite(Config cfg, int inserts,
                           std::optional<core::RuntimeOptions> opts = {}) {
  if (cfg == Config::kNETm) return {};  // SQLite's stack has no network
  Rig rig = MakeRig(cfg, StackSpec::Sqlite(), opts);
  AppResult out;
  rig.rt.SpawnApp("sqlite", [&] {
    MiniDb db(*rig.px, "/db.journal", /*fsync_each=*/true);
    db.Open();
    const Nanos t0 = NowNs();
    for (int i = 0; i < inserts; ++i) {
      db.Insert("k" + std::to_string(i), "x");  // 1-byte data item
    }
    out = Finish(rig, t0, inserts, db.Count() * 64);
    db.Close();
  });
  rig.rt.RunUntilIdle();
  return out;
}

inline AppResult RunNginx(Config cfg, int requests,
                          std::optional<core::RuntimeOptions> opts = {}) {
  Rig rig = MakeRig(cfg, StackSpec::Nginx(), opts);
  rig.platform.ninep.PutFile("/www/index.html", std::string(180, 'x'));
  if (cfg == Config::kUnikraft) {
    // Baseline: serve the same requests with direct calls (no message
    // passing); network frames still flow through the host queues.
  }
  bool stop = false;
  WebServer server(*rig.px, 80, "/www");
  rig.rt.SpawnApp("nginx", [&] {
    server.Setup();
    server.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  constexpr int kConns = 40;
  SimClient client(&rig.platform.net, 80);
  std::vector<int> handles;
  for (int i = 0; i < kConns; ++i) handles.push_back(client.Connect());
  rig.Pump(client, 12);

  const Nanos t0 = NowNs();
  int sent = 0;
  while (sent < requests) {
    for (int h : handles) {
      if (sent >= requests) break;
      if (!client.Established(h)) continue;
      client.Send(h, "GET /index.html\n");
      sent++;
    }
    rig.Pump(client, 2);
  }
  rig.Pump(client, 6);
  AppResult out = Finish(rig, t0, server.requests_served(), 180 * kConns);
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
  return out;
}

inline AppResult RunRedis(Config cfg, int sets,
                          std::optional<core::RuntimeOptions> opts = {}) {
  Rig rig = MakeRig(cfg, StackSpec::Redis(), opts);
  bool stop = false;
  KvStore kv(*rig.px, "/aof", /*aof_enabled=*/true);
  rig.rt.SpawnApp("redis", [&] {
    kv.OpenAof();
    kv.Setup(6379);
    kv.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 6379);
  const int h = client.Connect();
  rig.Pump(client, 8);

  const Nanos t0 = NowNs();
  constexpr int kBatch = 16;  // pipelined commands, redis-benchmark style
  for (int i = 0; i < sets; i += kBatch) {
    for (int j = i; j < i + kBatch && j < sets; ++j) {
      client.Send(h, "SET k" + std::to_string(j % 10000) + " v" +
                         std::to_string(j % 100) + "\n");
    }
    rig.Pump(client, 2);
    client.TakeReceived(h);
  }
  rig.Pump(client, 6);
  AppResult out = Finish(rig, t0, kv.commands_served(), kv.MemoryBytes());
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
  return out;
}

inline AppResult RunEcho(Config cfg, int messages,
                         std::optional<core::RuntimeOptions> opts = {}) {
  Rig rig = MakeRig(cfg, StackSpec::Echo(), opts);
  bool stop = false;
  EchoServer server(*rig.px, 7);
  rig.rt.SpawnApp("echo", [&] {
    server.Setup();
    server.RunLoop(&stop);
  });
  rig.rt.RunUntilIdle();

  SimClient client(&rig.platform.net, 7);
  const std::string payload(159, 'e');
  const Nanos t0 = NowNs();
  // Paper's Echo clients close their connection after each message, so the
  // component logs stay empty (Fig 7b: negligible space overhead).
  int h = client.Connect();
  rig.Pump(client, 4);
  for (int i = 0; i < messages; ++i) {
    client.Send(h, payload);
    rig.Pump(client, 2);
    client.TakeReceived(h);
    if ((i + 1) % 50 == 0) {
      client.Close(h);
      rig.Pump(client, 2);
      h = client.Connect();
      rig.Pump(client, 4);
    }
  }
  AppResult out = Finish(rig, t0, server.messages_echoed(), 159);
  stop = true;
  rig.rt.UnparkApps();
  rig.rt.RunUntilIdle();
  return out;
}


}  // namespace vampos::bench
