// Table IV: application throughput over log-shrink-threshold changes
// ({20, 100, 1000} entries) for SQLite, Nginx, and Redis under VampOS-DaS.
//
// Expectation (paper §VII-C): frequent compaction (threshold 20) costs a few
// percent of throughput in SQLite; Nginx and Redis barely move because their
// per-connection logs rarely exceed the thresholds.
#include <cstdio>

#include "workloads.h"

namespace vampos::bench {
namespace {

void Run() {
  const bool full = FullScale();
  const int sqlite_n = full ? 10000 : 2000;
  const int nginx_n = full ? 4000 : 600;
  const int redis_n = full ? 100000 : 4000;

  Header("Table IV: throughput [req/s] over log-shrink-threshold changes");
  std::printf("  %-10s %14s %14s %14s\n", "threshold", "SQLite", "Nginx",
              "Redis");
  for (std::size_t threshold : {std::size_t{20}, std::size_t{100},
                                std::size_t{1000}}) {
    core::RuntimeOptions opts = OptionsFor(Config::kDaS);
    opts.log_shrink_threshold = threshold;
    const AppResult sqlite = RunSqlite(Config::kDaS, sqlite_n, opts);
    const AppResult nginx = RunNginx(Config::kDaS, nginx_n, opts);
    const AppResult redis = RunRedis(Config::kDaS, redis_n, opts);
    std::printf("  %-10zu %14.2f %14.2f %14.2f\n", threshold,
                sqlite.ops / sqlite.seconds, nginx.ops / nginx.seconds,
                redis.ops / redis.seconds);
  }
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
