// Ablation of VampOS's design knobs (DESIGN.md §5), all under VampOS-DaS on
// the Redis workload:
//   - MPK isolation on/off          (cost of checked staging + PKRU writes)
//   - session-aware shrinking on/off (log growth without canceling functions)
//   - dependency-aware vs round-robin (the Fig 5/7 scheduling gap, app-level)
//   - merged FS+NET vs unmerged      (message elision)
#include <cstdio>

#include "workloads.h"

namespace vampos::bench {
namespace {

struct Row {
  const char* label;
  core::RuntimeOptions opts;
  Config cfg = Config::kDaS;
};

void Run() {
  const int sets = FullScale() ? 50000 : 4000;
  Header("Ablation: design-knob sweep (Redis workload, VampOS-DaS base)");
  std::printf("  %d SET commands over one connection, AOF+fsync on\n\n",
              sets);
  std::printf("  %-26s %9s %12s %12s %12s\n", "variant", "time[s]",
              "log entries", "log bytes", "pkru writes");

  std::vector<Row> rows;
  rows.push_back({"baseline (DaS)", OptionsFor(Config::kDaS)});
  {
    core::RuntimeOptions o = OptionsFor(Config::kDaS);
    o.isolation = false;
    rows.push_back({"no MPK isolation", o});
  }
  {
    core::RuntimeOptions o = OptionsFor(Config::kDaS);
    o.session_shrink = false;
    o.log_shrink_threshold = 0;
    rows.push_back({"no log shrinking", o});
  }
  rows.push_back({"round-robin sched", OptionsFor(Config::kNoop),
                  Config::kNoop});
  rows.push_back({"FS+NET merged", OptionsFor(Config::kDaS), Config::kNETm});

  for (Row& row : rows) {
    // Each run gets a fresh stack; stats come from the runtime the workload
    // ran on, captured inside AppResult.
    const AppResult r = RunRedis(row.cfg, sets, row.opts);
    std::printf("  %-26s %9.3f %12zu %12zu %12s\n", row.label, r.seconds,
                r.log_entries, r.log_bytes,
                row.opts.isolation ? std::to_string(r.pkru_writes).c_str()
                                   : "0");
  }
  std::printf(
      "\n  Expected shape: isolation costs a few %%; disabling shrinking\n"
      "  inflates the log; round-robin costs ~2x; merging trims the rest.\n");
}

}  // namespace
}  // namespace vampos::bench

int main() {
  vampos::bench::Run();
  return 0;
}
