// Cooperative fibers (ucontext-based) — the mechanism underneath VampOS's
// per-component threads.
//
// Each unikernel component is executed by its own fiber(s), never by the
// caller's context (paper §V-A). The FiberManager provides only mechanism:
// spawn, switch, block/wake. Dispatch *policy* (round-robin vs
// dependency-aware) lives in comp/runtime, which plays the role of the
// paper's message thread.
//
// Faults: a ComponentFault thrown inside a fiber is caught by the fiber
// trampoline on that fiber's own stack and recorded; control returns to the
// manager with state kFaulted. Exceptions never propagate across context
// switches, so a crashing component cannot unwind another component's stack
// — the scheduling-level half of component isolation.
//
// A fiber abandoned mid-execution (its component got rebooted) is destroyed
// without unwinding; any arena-allocated state it leaked is reclaimed
// wholesale by the arena snapshot restore.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/panic.h"
#include "base/types.h"
#include "obs/trace.h"

namespace vampos::sched {

enum class FiberState {
  kReady,    // runnable, waiting for dispatch
  kRunning,  // currently on CPU
  kBlocked,  // waiting for Wake() (e.g. RPC reply)
  kDone,     // entry function returned
  kFaulted,  // entry function threw ComponentFault
};

class FiberManager;

class Fiber {
 public:
  Fiber(std::string name, ComponentId owner, std::function<void()> entry,
        std::size_t stack_size);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ComponentId owner() const { return owner_; }
  [[nodiscard]] FiberState state() const { return state_; }
  [[nodiscard]] const std::optional<ComponentFault>& fault() const {
    return fault_;
  }
  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }

  /// Fiber-local current span: the causal identity of the request this
  /// fiber is serving (or issued, for app fibers mid-Call). The runtime
  /// sets it when a traced message starts executing and clears it when the
  /// handler completes; nested Calls read it to become child spans.
  [[nodiscard]] const obs::TraceContext& trace() const { return trace_; }
  void set_trace(const obs::TraceContext& trace) { trace_ = trace; }

 private:
  friend class FiberManager;
  static void Trampoline();

  std::string name_;
  ComponentId owner_;
  std::function<void()> entry_;
  std::vector<std::byte> stack_;
  ucontext_t ctx_{};
  FiberState state_ = FiberState::kReady;
  std::optional<ComponentFault> fault_;
  std::uint64_t dispatches_ = 0;
  obs::TraceContext trace_;
  FiberManager* manager_ = nullptr;
#if defined(__SANITIZE_THREAD__)
  // TSan shadow fiber: without __tsan_switch_to_fiber around swapcontext,
  // TSan sees one thread's shadow stack jump between ucontext stacks and
  // reports false races on every fiber-local access (Tsan builds only).
  void* tsan_fiber_ = nullptr;
#endif
};

/// Single-threaded fiber switcher. The "main" context is the runtime/message
/// thread; Dispatch() transfers to a fiber until it yields, blocks, finishes,
/// or faults.
class FiberManager {
 public:
  FiberManager();
  ~FiberManager();
  FiberManager(const FiberManager&) = delete;
  FiberManager& operator=(const FiberManager&) = delete;

  /// Creates a fiber; it does not run until Dispatch().
  Fiber* Spawn(std::string name, ComponentId owner,
               std::function<void()> entry,
               std::size_t stack_size = kDefaultStackSize);

  /// Destroys a fiber (must not be the running one). Abandoning a blocked or
  /// ready fiber is allowed — used when rebooting its component.
  void Destroy(Fiber* fiber);

  /// Runs `fiber` until it returns control. Must be called from the main
  /// context. Returns the fiber's state afterwards.
  FiberState Dispatch(Fiber* fiber);

  /// From inside a fiber: give the CPU back to the main context, staying
  /// ready. (Component polling loops call this when their queue is empty.)
  void Yield();

  /// From inside a fiber: block until Wake(). (Callers awaiting RPC replies.)
  void Block();

  /// From the main context (or another fiber's execution path via the
  /// runtime): make a blocked fiber ready again.
  void Wake(Fiber* fiber);

  /// Fiber currently executing, or nullptr if on the main context.
  [[nodiscard]] Fiber* Current() const { return current_; }

  /// Optional flight recorder: Dispatch() records a B/E event pair around
  /// every context switch into a fiber (no-op when the recorder is off).
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }
  [[nodiscard]] std::size_t live_fibers() const { return fibers_.size(); }

  static constexpr std::size_t kDefaultStackSize = 64 * 1024;

 private:
  friend class Fiber;
  void SwitchToMain();

  ucontext_t main_ctx_{};
#if defined(__SANITIZE_THREAD__)
  void* tsan_main_ = nullptr;  // TSan's fiber handle for the main context
#endif
  Fiber* current_ = nullptr;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::uint64_t switches_ = 0;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace vampos::sched
