#include "sched/fiber.h"

#include <algorithm>

#if defined(__SANITIZE_THREAD__)
#include <sanitizer/tsan_interface.h>
#endif

#include "obs/trace.h"

namespace vampos::sched {

namespace {
// makecontext() cannot pass pointers portably; the manager records which
// fiber is being started and the trampoline reads it. Safe because the whole
// runtime is single-threaded by design.
thread_local FiberManager* g_active_manager = nullptr;
}  // namespace

Fiber::Fiber(std::string name, ComponentId owner, std::function<void()> entry,
             std::size_t stack_size)
    : name_(std::move(name)),
      owner_(owner),
      entry_(std::move(entry)),
      stack_(stack_size) {}

Fiber::~Fiber() {
#if defined(__SANITIZE_THREAD__)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::Trampoline() {
  FiberManager* mgr = g_active_manager;
  Fiber* self = mgr->Current();
  try {
    self->entry_();
    self->state_ = FiberState::kDone;
  } catch (const ComponentFault& fault) {
    // Fail-stop: record the fault and return to the message thread, which
    // will trigger the component reboot. The fault never crosses into
    // another component's stack.
    self->fault_ = fault;
    self->state_ = FiberState::kFaulted;
  }
  mgr->SwitchToMain();
  Fatal("resumed a finished fiber '%s'", self->name_.c_str());
}

FiberManager::FiberManager() {
  g_active_manager = this;
#if defined(__SANITIZE_THREAD__)
  tsan_main_ = __tsan_get_current_fiber();
#endif
}

FiberManager::~FiberManager() {
  if (g_active_manager == this) g_active_manager = nullptr;
}

Fiber* FiberManager::Spawn(std::string name, ComponentId owner,
                           std::function<void()> entry,
                           std::size_t stack_size) {
  auto fiber = std::make_unique<Fiber>(std::move(name), owner,
                                       std::move(entry), stack_size);
  Fiber* raw = fiber.get();
  raw->manager_ = this;
  getcontext(&raw->ctx_);
  raw->ctx_.uc_stack.ss_sp = raw->stack_.data();
  raw->ctx_.uc_stack.ss_size = raw->stack_.size();
  raw->ctx_.uc_link = &main_ctx_;
  makecontext(&raw->ctx_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 0);
#if defined(__SANITIZE_THREAD__)
  raw->tsan_fiber_ = __tsan_create_fiber(0);
#endif
  fibers_.push_back(std::move(fiber));
  return raw;
}

void FiberManager::Destroy(Fiber* fiber) {
  if (fiber == current_) {
    Fatal("cannot destroy the running fiber '%s'", fiber->name_.c_str());
  }
  auto it = std::find_if(fibers_.begin(), fibers_.end(),
                         [fiber](const auto& f) { return f.get() == fiber; });
  if (it != fibers_.end()) fibers_.erase(it);
}

FiberState FiberManager::Dispatch(Fiber* fiber) {
  if (current_ != nullptr) {
    Fatal("Dispatch() must run on the main context");
  }
  if (fiber->state_ != FiberState::kReady) {
    Fatal("dispatching fiber '%s' in non-ready state", fiber->name_.c_str());
  }
  g_active_manager = this;
  fiber->state_ = FiberState::kRunning;
  fiber->dispatches_++;
  switches_++;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kDispatch, obs::TracePhase::kBegin,
                      fiber->owner_,
                      static_cast<std::int64_t>(fiber->dispatches_), 0,
                      fiber->trace_);
  }
  current_ = fiber;
#if defined(__SANITIZE_THREAD__)
  __tsan_switch_to_fiber(fiber->tsan_fiber_, 0);
#endif
  swapcontext(&main_ctx_, &fiber->ctx_);
  current_ = nullptr;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kDispatch, obs::TracePhase::kEnd,
                      fiber->owner_,
                      static_cast<std::int64_t>(fiber->dispatches_),
                      static_cast<std::int64_t>(fiber->state_),
                      fiber->trace_);
  }
  return fiber->state_;
}

void FiberManager::SwitchToMain() {
  Fiber* fiber = current_;
  switches_++;
#if defined(__SANITIZE_THREAD__)
  __tsan_switch_to_fiber(tsan_main_, 0);
#endif
  swapcontext(&fiber->ctx_, &main_ctx_);
}

void FiberManager::Yield() {
  Fiber* fiber = current_;
  if (fiber == nullptr) Fatal("Yield() outside a fiber");
  fiber->state_ = FiberState::kReady;
  SwitchToMain();
}

void FiberManager::Block() {
  Fiber* fiber = current_;
  if (fiber == nullptr) Fatal("Block() outside a fiber");
  fiber->state_ = FiberState::kBlocked;
  SwitchToMain();
}

void FiberManager::Wake(Fiber* fiber) {
  if (fiber->state_ != FiberState::kBlocked) {
    Fatal("Wake() on non-blocked fiber '%s'", fiber->name_.c_str());
  }
  fiber->state_ = FiberState::kReady;
}

}  // namespace vampos::sched
