// Log2-bucketed histograms for latency and size telemetry.
//
// One bucket per power of two (bucket index = bit_width of the sample), so
// Record() is a handful of arithmetic ops with no allocation — cheap enough
// for the per-call hot path. Percentiles are extracted by walking the bucket
// counts and interpolating linearly inside the target bucket, clamped to the
// observed [min, max] so an N-sample histogram never reports a value outside
// what was actually recorded (a single sample reports itself exactly).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace vampos::obs {

class Histogram {
 public:
  /// bit_width of a uint64 sample is in [0, 64].
  static constexpr int kBuckets = 65;

  void Record(std::int64_t value) {
    const std::uint64_t v =
        value < 0 ? 0u : static_cast<std::uint64_t>(value);
    buckets_[BucketOf(v)]++;
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    count_++;
    sum_ += v;
  }

  /// Bucket index of a sample: 0 holds exactly {0}; bucket b >= 1 holds
  /// [2^(b-1), 2^b - 1].
  [[nodiscard]] static int BucketOf(std::uint64_t v) {
    return std::bit_width(v);
  }
  [[nodiscard]] static std::uint64_t BucketLo(int b) {
    return b <= 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  [[nodiscard]] static std::uint64_t BucketHi(int b) {
    if (b <= 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  /// q in [0, 100]. Empty histogram reports 0; q=0 reports min, q=100 max.
  [[nodiscard]] double Percentile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0) return static_cast<double>(min_);
    if (q >= 100) return static_cast<double>(max_);
    const double target = q / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const double before = static_cast<double>(cum);
      cum += buckets_[b];
      if (static_cast<double>(cum) >= target) {
        const double frac =
            (target - before) / static_cast<double>(buckets_[b]);
        const double lo = static_cast<double>(BucketLo(b));
        const double hi = static_cast<double>(BucketHi(b));
        double v = lo + frac * (hi - lo);
        if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
        if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
        return v;
      }
    }
    return static_cast<double>(max_);
  }

  [[nodiscard]] double Mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    return b < 0 || b >= kBuckets ? 0 : buckets_[b];
  }

  /// Fold another histogram in (bench aggregation across runs).
  void Merge(const Histogram& other) {
    if (other.count_ == 0) return;
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void Reset() {
    buckets_.fill(0);
    count_ = sum_ = max_ = 0;
    min_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace vampos::obs
