#include "obs/health.h"

#include <algorithm>
#include <cmath>

namespace vampos::obs {

namespace {

double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

/// Saturating detector term: 0 below zero signal, 1 at/above the limit.
double Term(double signal, double limit) {
  if (limit <= 0.0) return 0.0;
  return Clamp01(signal / limit);
}

}  // namespace

HealthMonitor::Comp::Comp(const HealthConfig& cfg)
    : latency(cfg.window_ns, cfg.windows),
      errors(cfg.window_ns, cfg.windows),
      hangs(cfg.window_ns, cfg.windows),
      faults(cfg.window_ns, cfg.windows),
      arena(cfg.window_ns, cfg.windows),
      dirty(cfg.window_ns, cfg.windows) {}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_(cfg) {
  if (cfg_.windows < 2) cfg_.windows = 2;
  if (cfg_.window_ns <= 0) cfg_.window_ns = kMillisecond;
}

void HealthMonitor::BindMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  ct_samples_ = &metrics_->GetCounter("health.samples");
  ct_assessments_ = &metrics_->GetCounter("health.assessments");
  ct_degraded_events_ = &metrics_->GetCounter("health.degraded_events");
  ct_recovered_events_ = &metrics_->GetCounter("health.recovered_events");
  ct_rejuvenations_ = &metrics_->GetCounter("health.rejuvenations");
}

void HealthMonitor::BindRecorder(FlightRecorder* recorder) {
  recorder_ = recorder;
}

HealthMonitor::Comp& HealthMonitor::Entry(ComponentId id) {
  auto it = comps_.find(id);
  if (it == comps_.end()) {
    it = comps_.emplace(id, Comp(cfg_)).first;
    it->second.name = "comp" + std::to_string(id);
  }
  if (id >= 0) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= dense_.size()) dense_.resize(idx + 1, nullptr);
    dense_[idx] = &it->second;
  }
  return it->second;
}

void HealthMonitor::Track(ComponentId id, const std::string& name) {
  Comp& c = Entry(id);
  if (!name.empty()) c.name = name;
}

void HealthMonitor::OnHang(ComponentId id, Nanos now) {
  Entry(id).hangs.Record(now, 1);
}

void HealthMonitor::OnFault(ComponentId id, Nanos now) {
  Entry(id).faults.Record(now, 1);
}

void HealthMonitor::OnSample(ComponentId id, Nanos now,
                             std::int64_t arena_bytes,
                             std::int64_t dirty_marks) {
  Comp& c = Entry(id);
  c.arena.Record(now, arena_bytes);
  c.dirty.Record(now, dirty_marks);
  if (ct_samples_ != nullptr) ct_samples_->Add();
}

void HealthMonitor::OnReboot(ComponentId id, Nanos /*now*/) {
  auto it = comps_.find(id);
  if (it == comps_.end()) return;
  Comp& c = it->second;
  c.latency.Reset();
  c.errors.Reset();
  c.hangs.Reset();
  c.faults.Reset();
  c.arena.Reset();
  c.dirty.Reset();
  c.score = 0;
  c.degraded = false;
  if (c.g_score_x1000 != nullptr) c.g_score_x1000->Set(0);
  if (c.g_degraded != nullptr) c.g_degraded->Set(0);
}

bool HealthMonitor::SampleDue(Nanos now) {
  if (next_sample_ != 0 && now < next_sample_) return false;
  next_sample_ = now + cfg_.window_ns / 2;
  return true;
}

HealthSignals HealthMonitor::Assess(ComponentId id, Nanos now) {
  Comp& c = Entry(id);
  // Close out idle windows first so a silent component's history ages.
  c.latency.Advance(now);
  c.errors.Advance(now);
  c.hangs.Advance(now);
  c.faults.Advance(now);
  c.arena.Advance(now);
  c.dirty.Advance(now);

  const std::size_t horizon = cfg_.windows;  // all closed windows
  HealthSignals s;
  s.req_per_sec = c.latency.RatePerSec(horizon);
  const std::uint64_t reqs = c.latency.CountOver(horizon);
  const std::uint64_t errs = c.errors.CountOver(horizon);
  s.err_per_req =
      reqs == 0 ? 0.0 : static_cast<double>(errs) / static_cast<double>(reqs);
  s.p99_ns = c.latency.Percentile(99, horizon);
  s.leak_bps = c.arena.SlopePerSec(horizon);
  s.hangs = c.hangs.CountOver(horizon);
  s.faults = c.faults.CountOver(horizon);

  // Latency drift: p99 of the two newest closed windows vs the p99 of the
  // trailing baseline behind them. Both sides need samples, or the drift
  // says nothing.
  const Histogram recent = c.latency.Merged(0, 2);
  const Histogram baseline = c.latency.Merged(2, horizon);
  if (recent.count() > 0 && baseline.count() > 0 && baseline.Percentile(99) > 0) {
    s.latency_drift = recent.Percentile(99) / baseline.Percentile(99);
  }

  // Weighted saturating sum. A hang or fault in the horizon is a hard
  // signal and degrades on its own; the aging detectors need to reach their
  // limit to do the same.
  double score = 0.0;
  score += 0.6 * Term(s.leak_bps, cfg_.leak_limit_bps);
  if (s.latency_drift > 1.0) {
    score += 0.6 * Term(s.latency_drift - 1.0, cfg_.latency_drift_limit - 1.0);
  }
  score += 0.5 * Term(s.err_per_req, cfg_.err_rate_limit);
  if (s.hangs > 0) score += 0.8;
  if (s.faults > 0) score += 0.8;
  s.score = Clamp01(score);

  // Hysteresis latch with transition events.
  if (!c.degraded && s.score >= cfg_.degrade_score) {
    c.degraded = true;
    if (ct_degraded_events_ != nullptr) ct_degraded_events_->Add();
    if (recorder_ != nullptr) {
      recorder_->Record(EventKind::kHealthDegraded, TracePhase::kInstant, id,
                        static_cast<std::int64_t>(s.score * 1000));
    }
  } else if (c.degraded && s.score < cfg_.healthy_score) {
    c.degraded = false;
    if (ct_recovered_events_ != nullptr) ct_recovered_events_->Add();
    if (recorder_ != nullptr) {
      recorder_->Record(EventKind::kHealthRecovered, TracePhase::kInstant, id,
                        static_cast<std::int64_t>(s.score * 1000));
    }
  }
  s.degraded = c.degraded;
  c.score = s.score;
  if (ct_assessments_ != nullptr) ct_assessments_->Add();
  ExportGauges(c, s);
  return s;
}

void HealthMonitor::ExportGauges(Comp& c, const HealthSignals& s) {
  if (metrics_ == nullptr) return;
  if (c.g_score_x1000 == nullptr) {
    const std::string prefix = "health." + c.name + ".";
    c.g_req_per_sec = &metrics_->GetCounter(prefix + "req_per_sec");
    c.g_err_pct_x100 = &metrics_->GetCounter(prefix + "err_pct_x100");
    c.g_p99_ns = &metrics_->GetCounter(prefix + "p99_ns");
    c.g_leak_bps = &metrics_->GetCounter(prefix + "leak_bps");
    c.g_score_x1000 = &metrics_->GetCounter(prefix + "score_x1000");
    c.g_degraded = &metrics_->GetCounter(prefix + "degraded");
  }
  c.g_req_per_sec->Set(static_cast<std::uint64_t>(s.req_per_sec + 0.5));
  c.g_err_pct_x100->Set(
      static_cast<std::uint64_t>(s.err_per_req * 10000.0 + 0.5));
  c.g_p99_ns->Set(static_cast<std::uint64_t>(s.p99_ns + 0.5));
  c.g_leak_bps->Set(
      s.leak_bps <= 0 ? 0 : static_cast<std::uint64_t>(s.leak_bps + 0.5));
  c.g_score_x1000->Set(static_cast<std::uint64_t>(s.score * 1000.0 + 0.5));
  c.g_degraded->Set(s.degraded ? 1 : 0);
}

std::optional<ComponentId> HealthMonitor::Worst(Nanos now) {
  std::optional<ComponentId> worst;
  double worst_score = -1.0;
  for (auto& [id, c] : comps_) {
    const HealthSignals s = Assess(id, now);
    if (!s.degraded) continue;
    if (s.score > worst_score) {
      worst_score = s.score;
      worst = id;
    }
  }
  return worst;
}

bool HealthMonitor::IsDegraded(ComponentId id) const {
  auto it = comps_.find(id);
  return it != comps_.end() && it->second.degraded;
}

double HealthMonitor::Score(ComponentId id) const {
  auto it = comps_.find(id);
  return it == comps_.end() ? 0.0 : it->second.score;
}

void HealthMonitor::NoteRejuvenation(ComponentId id, Nanos /*now*/) {
  rejuvenations_++;
  if (ct_rejuvenations_ != nullptr) ct_rejuvenations_->Add();
  if (recorder_ != nullptr) {
    auto it = comps_.find(id);
    const std::int64_t score_x1000 =
        it == comps_.end()
            ? 0
            : static_cast<std::int64_t>(it->second.score * 1000);
    recorder_->Record(EventKind::kHealthRejuvenate, TracePhase::kInstant, id,
                      score_x1000);
  }
}

const std::string* HealthMonitor::Name(ComponentId id) const {
  auto it = comps_.find(id);
  return it == comps_.end() ? nullptr : &it->second.name;
}

void HealthMonitor::Dump(std::FILE* out, Nanos now) {
  std::fprintf(out, "=== health (window=%lldms x%zu) ===\n",
               static_cast<long long>(cfg_.window_ns / kMillisecond),
               cfg_.windows);
  for (auto& [id, c] : comps_) {
    const HealthSignals s = Assess(id, now);
    std::fprintf(out,
                 "  %-12s score=%.2f %-8s req/s=%.1f err=%.2f%% "
                 "p99=%.1fus leak=%.0fB/s hangs=%llu faults=%llu\n",
                 c.name.c_str(), s.score, s.degraded ? "DEGRADED" : "ok",
                 s.req_per_sec, s.err_per_req * 100.0, s.p99_ns / 1000.0,
                 s.leak_bps, static_cast<unsigned long long>(s.hangs),
                 static_cast<unsigned long long>(s.faults));
  }
}

}  // namespace vampos::obs
