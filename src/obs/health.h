// HealthMonitor: windowed per-component health telemetry and aging
// detectors — the closed-loop half of the observability subsystem.
//
// The flight recorder answers "what just happened"; the health monitor
// answers "which component is aging". Per component it maintains
// WindowedSeries for request latency (count doubles as request rate, the
// histogram gives p99), errors, hangs, faults, arena bytes-in-use, and
// dirty-page marks. Three detectors run over the closed windows:
//
//   leak slope      least-squares fit of arena bytes-in-use over time
//   latency drift   recent p99 vs the trailing-window baseline p99
//   error rate      errors per request over the horizon
//
// plus hard signals (any hang or fault in the horizon). Each detector
// contributes a weighted, saturating term to a [0, 1] health score;
// crossing `degrade_score` marks the component degraded, and it stays
// degraded until the score falls below `healthy_score` (hysteresis, so a
// component bouncing around the threshold doesn't flap).
//
// Like the recorder, the monitor is pay-for-what-you-use: the runtime holds
// a null pointer when health is off, so the disabled hot path is one
// predicted branch and zero allocation. All feed methods run on the message
// thread; exported gauges are registry counters (atomic), safe for any
// reader.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/types.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace vampos::obs {

struct HealthConfig {
  Nanos window_ns = 250 * kMillisecond;  // one window
  std::size_t windows = 8;               // ring length (horizon = W windows)

  // Detector thresholds: each contributes weight * min(1, signal/limit).
  double err_rate_limit = 0.10;           // errors per request
  double latency_drift_limit = 2.0;       // recent p99 / baseline p99
  double leak_limit_bps = 64.0 * 1024.0;  // arena growth, bytes per second

  // Hysteresis: degraded at >= degrade_score, healthy again below
  // healthy_score.
  double degrade_score = 0.50;
  double healthy_score = 0.25;
};

/// One assessment of one component — the detector outputs and the combined
/// score. Also what DumpState and the exported gauges show.
struct HealthSignals {
  double req_per_sec = 0;
  double err_per_req = 0;
  double p99_ns = 0;
  double latency_drift = 0;  // recent p99 / baseline p99, 0 = no baseline
  double leak_bps = 0;       // arena bytes-in-use slope
  std::uint64_t hangs = 0;   // over the horizon (incl. open window)
  std::uint64_t faults = 0;
  double score = 0;
  bool degraded = false;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg = {});

  /// Exported gauges and event counters go to this registry (health.*).
  void BindMetrics(MetricsRegistry* metrics);
  /// Degraded/recovered/rejuvenate transitions become recorder events.
  void BindRecorder(FlightRecorder* recorder);

  /// Registers a component under a stable display name. Feeding an
  /// untracked component auto-tracks it as "comp<id>".
  void Track(ComponentId id, const std::string& name);

  // ---- feed points (message thread only) ----
  /// One handled request: bumps the rate and latency series. Inline — this
  /// runs on every cross-component call, so the enabled cost must stay a
  /// cached-pointer load plus one Record.
  void OnRequest(ComponentId id, Nanos now, Nanos latency_ns) {
    FastEntry(id).latency.Record(now, latency_ns);
  }
  /// One failed request (negative-errno return).
  void OnError(ComponentId id, Nanos now) {
    FastEntry(id).errors.Record(now, 1);
  }
  void OnHang(ComponentId id, Nanos now);
  void OnFault(ComponentId id, Nanos now);
  /// Periodic gauge sample: arena bytes-in-use and cumulative dirty-page
  /// marks. Call when SampleDue() says so.
  void OnSample(ComponentId id, Nanos now, std::int64_t arena_bytes,
                std::int64_t dirty_marks);
  /// The component rebooted: its arena was rebuilt, so all aging history is
  /// stale. Drops the series and clears the degraded latch.
  void OnReboot(ComponentId id, Nanos now);

  /// Throttles gauge sampling to twice per window. Returns true when a
  /// sample round is due and arms the next deadline.
  [[nodiscard]] bool SampleDue(Nanos now);

  /// Runs the detectors for one component, updates the hysteresis latch,
  /// the exported gauges, and the transition events.
  HealthSignals Assess(ComponentId id, Nanos now);

  /// The degraded component with the worst score, assessing every tracked
  /// component. nullopt when everything is healthy.
  std::optional<ComponentId> Worst(Nanos now);

  /// Last assessed degraded state (does not re-run the detectors).
  [[nodiscard]] bool IsDegraded(ComponentId id) const;
  /// Last assessed score.
  [[nodiscard]] double Score(ComponentId id) const;

  /// An adaptive scheduler picked this component: counts it and records the
  /// health.rejuvenate event.
  void NoteRejuvenation(ComponentId id, Nanos now);

  [[nodiscard]] std::uint64_t rejuvenations() const { return rejuvenations_; }
  [[nodiscard]] std::size_t tracked() const { return comps_.size(); }
  [[nodiscard]] const HealthConfig& config() const { return cfg_; }
  [[nodiscard]] const std::string* Name(ComponentId id) const;

  /// Human-readable block for DumpState: one line per component.
  void Dump(std::FILE* out, Nanos now);

 private:
  struct Comp {
    explicit Comp(const HealthConfig& cfg);
    std::string name;
    WindowedSeries latency;  // one sample per request (ns)
    WindowedSeries errors;
    WindowedSeries hangs;
    WindowedSeries faults;
    WindowedSeries arena;  // gauge: bytes in use
    WindowedSeries dirty;  // gauge: cumulative dirty-page marks
    double score = 0;
    bool degraded = false;
    // Exported gauges, resolved once on first assessment.
    Counter* g_req_per_sec = nullptr;
    Counter* g_err_pct_x100 = nullptr;
    Counter* g_p99_ns = nullptr;
    Counter* g_leak_bps = nullptr;
    Counter* g_score_x1000 = nullptr;
    Counter* g_degraded = nullptr;
  };

  Comp& Entry(ComponentId id);
  /// Hot-path lookup: std::map nodes are address-stable, so Entry() caches
  /// each Comp* in `dense_` (indexed by id) and this is one bounds check
  /// plus one load after the first touch of a component.
  Comp& FastEntry(ComponentId id) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx < dense_.size() && dense_[idx] != nullptr) return *dense_[idx];
    return Entry(id);
  }
  void ExportGauges(Comp& c, const HealthSignals& s);

  HealthConfig cfg_;
  std::map<ComponentId, Comp> comps_;
  std::vector<Comp*> dense_;
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  Counter* ct_samples_ = nullptr;
  Counter* ct_assessments_ = nullptr;
  Counter* ct_degraded_events_ = nullptr;
  Counter* ct_recovered_events_ = nullptr;
  Counter* ct_rejuvenations_ = nullptr;
  Nanos next_sample_ = 0;
  std::uint64_t rejuvenations_ = 0;
};

}  // namespace vampos::obs
