// WindowedSeries: a ring of fixed-duration time windows over one signal.
//
// Each window keeps count/sum/min/max/last plus a log2 histogram, so a
// series answers both rate questions ("requests per second over the last
// two seconds") and distribution questions ("p99 handler latency in the
// last window") from the same samples. The ring holds the newest W windows;
// older history falls off the end, which is exactly the horizon an aging
// detector wants — a leak from an hour ago that rebooted away must not
// haunt today's score.
//
// Time handling: a window is `[k*window_ns, (k+1)*window_ns)` for integer
// epoch k, derived from the caller's clock. The series never reads a clock
// itself — every Record/Advance takes `now`, so FakeClock tests are exactly
// as deterministic as the caller makes them. An idle gap simply closes the
// intervening windows as empty (they are real windows in which nothing
// happened); a gap longer than the ring discards all history.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/clock.h"
#include "obs/histogram.h"

namespace vampos::obs {

/// One fixed-duration window of samples.
struct SeriesWindow {
  std::int64_t epoch = std::numeric_limits<std::int64_t>::min();
  std::uint64_t count = 0;
  std::int64_t sum = 0;  // saturating — never wraps
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t last = 0;
  Histogram hist;

  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class WindowedSeries {
 public:
  WindowedSeries(Nanos window_ns, std::size_t windows)
      : window_ns_(window_ns <= 0 ? 1 : window_ns),
        ring_(windows == 0 ? 1 : windows) {}

  [[nodiscard]] Nanos window_ns() const { return window_ns_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Records one sample into the window containing `now`, closing any
  /// windows the clock skipped over since the last call.
  void Record(Nanos now, std::int64_t value) {
    Advance(now);
    SeriesWindow& w = ring_[Slot(cur_)];
    w.count++;
    w.sum = SatAdd(w.sum, value);
    if (w.count == 1 || value < w.min) w.min = value;
    if (w.count == 1 || value > w.max) w.max = value;
    w.last = value;
    w.hist.Record(value);
  }

  /// Moves the open window forward to the one containing `now` without
  /// recording anything. Skipped windows become closed empty windows; a gap
  /// of at least `capacity()` windows discards all history.
  void Advance(Nanos now) {
    const std::int64_t epoch = now / window_ns_;
    if (!started_) {
      started_ = true;
      cur_ = epoch;
      Clear(ring_[Slot(cur_)], cur_);
      return;
    }
    if (epoch <= cur_) return;  // same window (or a non-monotonic clock)
    std::int64_t gap = epoch - cur_;
    if (gap > static_cast<std::int64_t>(ring_.size())) {
      gap = static_cast<std::int64_t>(ring_.size());
    }
    for (std::int64_t i = gap; i >= 1; --i) {
      Clear(ring_[Slot(epoch - i + 1)], epoch - i + 1);
    }
    cur_ = epoch;
  }

  /// Drops all history (e.g. after the component rebooted: its arena was
  /// rebuilt, so pre-reboot samples describe a process that no longer
  /// exists).
  void Reset() { started_ = false; }

  /// Number of *closed* windows available, newest first — at most
  /// `capacity() - 1` because the open window occupies one slot.
  [[nodiscard]] std::size_t closed() const {
    if (!started_) return 0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < ring_.size(); ++i) {
      if (ring_[Slot(cur_ - static_cast<std::int64_t>(i))].epoch !=
          cur_ - static_cast<std::int64_t>(i)) {
        break;
      }
      ++n;
    }
    return n;
  }

  /// i-th closed window, 0 = newest closed. Precondition: i < closed().
  [[nodiscard]] const SeriesWindow& window(std::size_t i) const {
    return ring_[Slot(cur_ - 1 - static_cast<std::int64_t>(i))];
  }

  /// The still-open window (samples since the last window boundary).
  [[nodiscard]] const SeriesWindow& open() const {
    static const SeriesWindow kEmpty;
    return started_ ? ring_[Slot(cur_)] : kEmpty;
  }

  /// Total samples over the last `k` closed windows plus the open one.
  [[nodiscard]] std::uint64_t CountOver(std::size_t k) const {
    std::uint64_t total = open().count;
    const std::size_t n = k < closed() ? k : closed();
    for (std::size_t i = 0; i < n; ++i) total += window(i).count;
    return total;
  }

  /// Samples per second averaged over the last `k` closed windows. Empty
  /// history reports 0.
  [[nodiscard]] double RatePerSec(std::size_t k) const {
    const std::size_t n = k < closed() ? k : closed();
    if (n == 0) return 0.0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += window(i).count;
    return 1e9 * static_cast<double>(total) /
           (static_cast<double>(n) * static_cast<double>(window_ns_));
  }

  /// Histogram merged over closed windows [first, first+count). Windows
  /// past the end of history contribute nothing, so the merge of an empty
  /// range reports Percentile() == 0 like an empty histogram.
  [[nodiscard]] Histogram Merged(std::size_t first, std::size_t count) const {
    Histogram merged;
    const std::size_t end = first + count;
    for (std::size_t i = first; i < end && i < closed(); ++i) {
      merged.Merge(window(i).hist);
    }
    return merged;
  }

  [[nodiscard]] double Percentile(double q, std::size_t k) const {
    return Merged(0, k).Percentile(q);
  }

  /// Least-squares slope of the per-window mean against window start time,
  /// in value-units per second, over the last `k` closed windows. Windows
  /// without samples are skipped (a gauge that was never read says nothing
  /// about the trend); fewer than two sampled windows reports 0. Positive
  /// means the signal is growing — for an arena-bytes gauge, a leak.
  [[nodiscard]] double SlopePerSec(std::size_t k) const {
    const std::size_t m = k < closed() ? k : closed();
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int n = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const SeriesWindow& w = window(i);
      if (w.count == 0) continue;
      // x relative to the newest window, in seconds, to keep the fit
      // numerically stable under large absolute clock values.
      const double x = -static_cast<double>(i) *
                       (static_cast<double>(window_ns_) / 1e9);
      const double y = w.Mean();
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      ++n;
    }
    if (n < 2) return 0.0;
    const double denom = n * sxx - sx * sx;
    if (denom == 0.0) return 0.0;
    return (n * sxy - sx * sy) / denom;
  }

 private:
  [[nodiscard]] std::size_t Slot(std::int64_t epoch) const {
    const auto m = static_cast<std::int64_t>(ring_.size());
    return static_cast<std::size_t>(((epoch % m) + m) % m);
  }

  static void Clear(SeriesWindow& w, std::int64_t epoch) {
    w.epoch = epoch;
    w.count = 0;
    w.sum = w.min = w.max = w.last = 0;
    w.hist.Reset();
  }

  static std::int64_t SatAdd(std::int64_t a, std::int64_t b) {
    std::int64_t r;
    if (__builtin_add_overflow(a, b, &r)) {
      return b > 0 ? std::numeric_limits<std::int64_t>::max()
                   : std::numeric_limits<std::int64_t>::min();
    }
    return r;
  }

  Nanos window_ns_;
  std::vector<SeriesWindow> ring_;
  std::int64_t cur_ = 0;
  bool started_ = false;
};

}  // namespace vampos::obs
