#include "obs/metrics.h"

namespace vampos::obs {

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::WriteText(std::FILE* out) const {
  std::fprintf(out, "=== counters ===\n");
  for (const auto& [name, c] : counters_) {
    std::fprintf(out, "  %-40s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  std::fprintf(out, "=== histograms ===\n");
  for (const auto& [name, h] : histograms_) {
    std::fprintf(out,
                 "  %-40s n=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f "
                 "max=%llu\n",
                 name.c_str(), static_cast<unsigned long long>(h.count()),
                 h.Mean(), h.Percentile(50), h.Percentile(95),
                 h.Percentile(99),
                 static_cast<unsigned long long>(h.max()));
  }
}

std::string MetricsRegistry::Json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                  first ? "" : ",", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
        "\"p99\": %.3f}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.max()), h.Mean(),
        h.Percentile(50), h.Percentile(95), h.Percentile(99));
    out += buf;
    first = false;
  }
  out += "\n  }\n}";
  return out;
}

void MetricsRegistry::WriteJson(std::FILE* out) const {
  const std::string json = Json();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
}

}  // namespace vampos::obs
