#include "obs/metrics.h"

namespace vampos::obs {

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::WriteText(std::FILE* out) const {
  std::fprintf(out, "=== counters ===\n");
  for (const auto& [name, c] : counters_) {
    std::fprintf(out, "  %-40s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  std::fprintf(out, "=== histograms ===\n");
  for (const auto& [name, h] : histograms_) {
    std::fprintf(out,
                 "  %-40s n=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f "
                 "max=%llu\n",
                 name.c_str(), static_cast<unsigned long long>(h.count()),
                 h.Mean(), h.Percentile(50), h.Percentile(95),
                 h.Percentile(99),
                 static_cast<unsigned long long>(h.max()));
  }
}

std::string MetricsRegistry::Json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                  first ? "" : ",", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
        "\"p99\": %.3f}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.max()), h.Mean(),
        h.Percentile(50), h.Percentile(95), h.Percentile(99));
    out += buf;
    first = false;
  }
  out += "\n  }\n}";
  return out;
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "vampos_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::FILE* out) const {
  for (const auto& [name, c] : counters_) {
    const std::string p = PromName(name);
    std::fprintf(out, "# TYPE %s counter\n%s %llu\n", p.c_str(), p.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = PromName(name);
    std::fprintf(out, "# TYPE %s summary\n", p.c_str());
    std::fprintf(out, "%s{quantile=\"0.5\"} %.3f\n", p.c_str(),
                 h.Percentile(50));
    std::fprintf(out, "%s{quantile=\"0.95\"} %.3f\n", p.c_str(),
                 h.Percentile(95));
    std::fprintf(out, "%s{quantile=\"0.99\"} %.3f\n", p.c_str(),
                 h.Percentile(99));
    std::fprintf(out, "%s_sum %llu\n", p.c_str(),
                 static_cast<unsigned long long>(h.sum()));
    std::fprintf(out, "%s_count %llu\n", p.c_str(),
                 static_cast<unsigned long long>(h.count()));
  }
}

void MetricsRegistry::WriteJson(std::FILE* out) const {
  const std::string json = Json();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
}

}  // namespace vampos::obs
