#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.h"

namespace vampos::obs {

namespace {

struct KindInfo {
  const char* name;
  const char* category;
};

constexpr KindInfo kKinds[] = {
    {"msg.push", "msg"},         {"msg.pull", "msg"},
    {"reply.push", "msg"},       {"reply.deliver", "msg"},
    {"fiber.dispatch", "sched"}, {"log.append", "log"},
    {"log.prune", "log"},        {"log.compact", "log"},
    {"reboot", "reboot"},        {"reboot.stop", "reboot"},
    {"reboot.snapshot", "reboot"}, {"reboot.replay", "reboot"},
    {"hang.detected", "fault"},  {"fault.injected", "fault"},
    {"fail.stop", "fault"},      {"variant.swap", "fault"},
    {"check.ptr_leak", "fault"}, {"check.deadlock", "fault"},
    {"check.overlap", "fault"},  {"trace.stall", "trace"},
    {"snapshot.hash", "reboot"}, {"snapshot.copy", "reboot"},
    {"snapshot.recapture", "reboot"},
    {"snapshot.dirty", "reboot"},
    {"snapshot.audit", "reboot"},
    {"recovery.overlap", "reboot"},
    {"health.degraded", "health"},
    {"health.recovered", "health"},
    {"health.rejuvenate", "health"},
};
static_assert(sizeof(kKinds) / sizeof(kKinds[0]) ==
                  static_cast<std::size_t>(EventKind::kKindCount),
              "kKinds table out of sync with EventKind");

}  // namespace

const char* KindName(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(EventKind::kKindCount)
             ? kKinds[i].name
             : "?";
}

const char* KindCategory(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(EventKind::kKindCount)
             ? kKinds[i].category
             : "?";
}

void FlightRecorder::Enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (capacity != ring_.size()) {
    ring_.assign(capacity, TraceEvent{});
    total_ = 0;
  }
  enabled_ = true;
}

void FlightRecorder::Clear() { total_ = 0; }

void FlightRecorder::Append(EventKind kind, TracePhase phase,
                            ComponentId comp, std::int64_t a,
                            std::int64_t b, const TraceContext& trace) {
  if (total_ >= ring_.size() && dropped_counter_ != nullptr) {
    dropped_counter_->Add();
  }
  TraceEvent& e = ring_[total_ % ring_.size()];
  e.ts = clock_->Now();
  e.comp = comp;
  e.kind = kind;
  e.phase = phase;
  e.a = a;
  e.b = b;
  e.trace = trace.trace_id;
  e.span = trace.span_id;
  e.parent = trace.parent_span_id;
  total_++;
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  if (ring_.empty() || total_ == 0) return out;
  const std::uint64_t n = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(n);
  const std::uint64_t start = total_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::WriteChromeTrace(std::FILE* out) const {
  const std::vector<TraceEvent> events = Snapshot();
  const Nanos ts0 = events.empty() ? 0 : events.front().ts;
  // Chrome's importer wants B/E pairs to nest correctly per tid; an End
  // whose Begin was overwritten by the ring would unbalance the whole
  // track, so orphaned Ends are demoted to instants.
  std::map<std::pair<ComponentId, EventKind>, int> depth;
  std::fprintf(out, "{\"traceEvents\":[");
  bool first = true;
  for (const TraceEvent& e : events) {
    char ph = 'i';
    if (e.phase == TracePhase::kBegin) {
      ph = 'B';
      depth[{e.comp, e.kind}]++;
    }
    if (e.phase == TracePhase::kEnd) {
      int& d = depth[{e.comp, e.kind}];
      if (d > 0) {
        ph = 'E';
        d--;
      }
    }
    const double us = static_cast<double>(e.ts - ts0) / 1000.0;
    std::fprintf(out, "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\"",
                 first ? "" : ",", KindName(e.kind), KindCategory(e.kind),
                 ph);
    if (ph == 'i') std::fprintf(out, ",\"s\":\"t\"");
    std::fprintf(out, ",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"
                      "\"args\":{\"a\":%lld,\"b\":%lld",
                 us, e.comp, static_cast<long long>(e.a),
                 static_cast<long long>(e.b));
    if (e.trace != 0) {
      std::fprintf(out, ",\"trace\":%llu,\"span\":%llu,\"parent\":%llu",
                   static_cast<unsigned long long>(e.trace),
                   static_cast<unsigned long long>(e.span),
                   static_cast<unsigned long long>(e.parent));
    }
    std::fprintf(out, "}}");
    first = false;
    // Flow events tie a span's push→pull and reply→deliver hops across
    // component tracks in Perfetto: an "s"/"f" pair with a shared id draws
    // the causal arrow. One id space per span: 2*span for the call hop,
    // 2*span+1 for the reply hop.
    unsigned long long flow_id = 0;
    char flow_ph = 0;
    const char* flow_name = nullptr;
    switch (e.kind) {
      case EventKind::kMsgPush:
        flow_id = 2 * e.span, flow_ph = 's', flow_name = "call";
        break;
      case EventKind::kMsgPull:
        flow_id = 2 * e.span, flow_ph = 'f', flow_name = "call";
        break;
      case EventKind::kReplyPush:
        flow_id = 2 * e.span + 1, flow_ph = 's', flow_name = "reply";
        break;
      case EventKind::kReplyDeliver:
        flow_id = 2 * e.span + 1, flow_ph = 'f', flow_name = "reply";
        break;
      default:
        break;
    }
    if (flow_name != nullptr && e.span != 0) {
      std::fprintf(out,
                   ",\n{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%c\"%s,"
                   "\"id\":%llu,\"ts\":%.3f,\"pid\":1,\"tid\":%d}",
                   flow_name, flow_ph,
                   flow_ph == 'f' ? ",\"bp\":\"e\"" : "", flow_id, us,
                   e.comp);
    }
  }
  std::fprintf(out, "\n]}\n");
}

bool FlightRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  WriteChromeTrace(f);
  std::fclose(f);
  return true;
}

void FlightRecorder::DumpTail(std::FILE* out, std::size_t max_events) const {
  const std::vector<TraceEvent> events = Snapshot();
  const std::size_t n = std::min(events.size(), max_events);
  if (n == 0) {
    std::fprintf(out, "  flight recorder: no events\n");
    return;
  }
  std::fprintf(out,
               "  flight recorder tail (%zu of %llu recorded, %llu "
               "overwritten):\n",
               n, static_cast<unsigned long long>(total_),
               static_cast<unsigned long long>(dropped()));
  const Nanos ts0 = events[events.size() - n].ts;
  for (std::size_t i = events.size() - n; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const char* ph = e.phase == TracePhase::kBegin
                         ? "B"
                         : (e.phase == TracePhase::kEnd ? "E" : ".");
    std::fprintf(out, "    +%9.3fus %s %-15s comp=%-3d a=%lld b=%lld",
                 static_cast<double>(e.ts - ts0) / 1000.0, ph,
                 KindName(e.kind), e.comp, static_cast<long long>(e.a),
                 static_cast<long long>(e.b));
    if (e.trace != 0) {
      std::fprintf(out, " trace=%llu span=%llu",
                   static_cast<unsigned long long>(e.trace),
                   static_cast<unsigned long long>(e.span));
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace vampos::obs
