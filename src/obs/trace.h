// Flight recorder: an always-available, fixed-capacity ring buffer of
// compact binary trace events covering the message plane (push/pull),
// scheduling (dispatch), the call logs (append/prune/compaction), and
// recovery (reboot phases, hang detection, fault injection, fail-stop).
//
// The recorder is toggleable at runtime and near-zero-cost when off: Record()
// is a single branch, and the ring storage is only allocated by Enable().
// When full, the oldest events are overwritten, so the tail always holds the
// moments leading up to a failure — it is written out automatically as a
// post-mortem on fail-stop and on the VAMPOS_SPIN_LIMIT dump.
//
// Exporters: Chrome trace_event JSON (load in chrome://tracing or
// ui.perfetto.dev) and a human-readable text tail for DumpState.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/types.h"

namespace vampos::obs {

enum class EventKind : std::uint8_t {
  kMsgPush = 0,     // call staged into a component inbox (a=fn, b=depth)
  kMsgPull,         // call pulled for execution (a=fn, b=rpc_id)
  kReplyPush,       // return value staged for the message thread (a=fn)
  kReplyDeliver,    // reply handed to the blocked caller (a=fn, b=rpc_id)
  kDispatch,        // fiber dispatched / returned control (a=dispatch count)
  kLogAppend,       // call-log entry created (a=fn, b=seq)
  kLogPrune,        // session shrink removed entries (a=session, b=count)
  kLogCompact,      // compaction collapsed a log (a=pruned entries)
  kReboot,          // whole reboot (B/E pair)
  kRebootStop,      // fiber teardown + queue handling phase (B/E pair)
  kRebootSnapshot,  // checkpoint restore phase (B/E pair)
  kRebootReplay,    // encapsulated restoration phase (B/E, b=entries)
  kHangDetected,    // processing-time threshold exceeded
  kFaultInjected,   // injected fault fired (a=FaultKind)
  kFailStop,        // unrecoverable failure, runtime terminating
  kVariantSwap,     // multi-versioning failover engaged
  kPtrLeakDetected,   // checker: payload carried a foreign pointer (a=owner)
  kDeadlockDetected,  // checker: reply wait-for cycle closed (a=callee)
  kOwnershipOverlap,  // checker: two domains claimed the same bytes (a=other)
  kTraceStall,        // reboot charged to a parked/requeued trace (a=stall ns)
  kSnapshotHash,      // page-hash pass of a checkpoint op (a=ns, b=pages)
  kSnapshotCopy,      // copy pass of a checkpoint op (a=ns, b=bytes copied)
  kSnapshotRecapture,  // incremental re-snapshot (a=bytes copied, b=dirty)
  kSnapshotDirty,      // write-tracked fast-path op (a=pages skipped, b=dirty)
  kSnapshotAudit,      // randomized tracker audit (a=misses, b=dirty)
  kRecoveryOverlap,    // >=2 recoveries in flight (a=active jobs)
  kHealthDegraded,     // health score crossed the degrade latch (a=score*1000)
  kHealthRecovered,    // score fell back under the healthy latch (a=score*1000)
  kHealthRejuvenate,   // adaptive scheduler picked this component (a=score*1000)
  kKindCount,
};

enum class TracePhase : std::uint8_t { kInstant = 0, kBegin, kEnd };

/// Stable short name ("msg.push", "reboot.replay", ...) used in exports.
const char* KindName(EventKind kind);
/// Chrome trace category ("msg", "sched", "log", "reboot", "fault").
const char* KindCategory(EventKind kind);

/// Causal identity of one request flowing through the message plane. A
/// trace is minted when an app-facing entry point issues a call with no
/// active trace; every nested outbound call becomes a child span of the
/// span that issued it. The context is a POD carried by value on every
/// Message — propagation never allocates, and a zero trace_id means
/// "untraced" so the disabled path stays a single branch.
struct TraceContext {
  std::uint64_t trace_id = 0;        // request identity, 0 = untraced
  std::uint64_t span_id = 0;         // this call within the trace
  std::uint64_t parent_span_id = 0;  // issuing span, 0 = root
  [[nodiscard]] bool active() const { return trace_id != 0; }
};

/// One recorded moment: 56 bytes, trivially copyable.
struct TraceEvent {
  Nanos ts = 0;
  ComponentId comp = kComponentNone;  // subject component ("tid" in exports)
  EventKind kind = EventKind::kMsgPush;
  TracePhase phase = TracePhase::kInstant;
  std::int64_t a = 0;  // kind-specific payload (see EventKind comments)
  std::int64_t b = 0;
  std::uint64_t trace = 0;   // TraceContext::trace_id, 0 = untraced event
  std::uint64_t span = 0;    // TraceContext::span_id
  std::uint64_t parent = 0;  // TraceContext::parent_span_id
};

class Counter;

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Allocates the ring and starts recording. Re-enabling with a different
  /// capacity discards previously recorded events.
  void Enable(std::size_t capacity = kDefaultCapacity);
  /// Stops recording; the ring contents stay readable for post-mortems.
  void Disable() { enabled_ = false; }
  /// Drops all recorded events, keeping the enabled state and capacity.
  void Clear();

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Events lost to ring overwrite.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Timestamps come from this clock (injectable for deterministic tests).
  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Optional registry counter bumped on every ring overwrite, so an
  /// undersized ring shows up in the metrics exporters as well as in
  /// dropped(). May be nullptr (standalone recorders in tests).
  void set_dropped_counter(Counter* counter) { dropped_counter_ = counter; }

  /// Hot path: one predictable branch when disabled, no allocation ever.
  void Record(EventKind kind, TracePhase phase, ComponentId comp,
              std::int64_t a = 0, std::int64_t b = 0) {
    if (!enabled_) return;
    Append(kind, phase, comp, a, b, TraceContext{});
  }

  /// Trace-stamped variant: same cost, plus the causal identity so spans
  /// can be reassembled post-hoc (vamptrace, flow events in the export).
  void Record(EventKind kind, TracePhase phase, ComponentId comp,
              std::int64_t a, std::int64_t b, const TraceContext& trace) {
    if (!enabled_) return;
    Append(kind, phase, comp, a, b, trace);
  }

  /// Oldest-first copy of the current ring contents.
  [[nodiscard]] std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) of the ring contents.
  void WriteChromeTrace(std::FILE* out) const;
  /// Convenience wrapper; returns false if the path cannot be opened.
  bool WriteChromeTrace(const std::string& path) const;

  /// Newest `max_events` as text, oldest first — the DumpState post-mortem.
  void DumpTail(std::FILE* out, std::size_t max_events = 32) const;

 private:
  void Append(EventKind kind, TracePhase phase, ComponentId comp,
              std::int64_t a, std::int64_t b, const TraceContext& trace);

  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
  bool enabled_ = false;
  const Clock* clock_ = &SteadyClock::Instance();
  Counter* dropped_counter_ = nullptr;
};

}  // namespace vampos::obs
