// Metrics registry: named counters and log2 histograms with stable
// addresses. Hot paths resolve a pointer once at registration time and bump
// it directly — no hashing or lookup per increment — while exporters walk
// the registry by name for text/JSON snapshots.
//
// The runtime's ad-hoc RuntimeStats / FunctionStats fields live here now;
// the old structs remain as snapshot views assembled from the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "base/thread_annotations.h"
#include "obs/histogram.h"

namespace vampos::obs {

class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  // Recovery-pool workers and the parallel hash pass bump counters the
  // message thread also owns; relaxed is enough — counters are monotonic
  // telemetry, never synchronization.
  std::atomic<std::uint64_t> value_ VAMP_RECOVERY_POOL_SHARED{0};
};

class MetricsRegistry {
 public:
  /// Returns the named counter/histogram, creating it on first use. The
  /// reference stays valid for the registry's lifetime (map nodes are
  /// stable), so callers cache the pointer and skip the name lookup.
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  Histogram& GetHistogram(const std::string& name) {
    return histograms_[name];
  }

  [[nodiscard]] const Counter* FindCounter(const std::string& name) const;
  [[nodiscard]] const Histogram* FindHistogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Human-readable snapshot: one counter per line, histograms with
  /// count/mean/p50/p95/p99/max.
  void WriteText(std::FILE* out) const;
  /// {"counters": {...}, "histograms": {name: {count, sum, min, max, mean,
  /// p50, p95, p99}, ...}} — also returned by Json() as a string.
  void WriteJson(std::FILE* out) const;
  [[nodiscard]] std::string Json() const;
  /// Prometheus text exposition: counters as `vampos_<name>` counter
  /// samples, histograms as summaries (quantile labels + _sum/_count).
  /// Non-[a-zA-Z0-9_] name characters become '_'.
  void WritePrometheus(std::FILE* out) const;

 private:
  // Metric *registration* (node creation in GetCounter/GetHistogram) happens
  // on the message thread only; worker threads touch existing Counter values
  // through cached pointers (atomic, see Counter::value_).
  std::map<std::string, Counter> counters_ VAMP_MSG_THREAD_ONLY;
  std::map<std::string, Histogram> histograms_ VAMP_MSG_THREAD_ONLY;
};

}  // namespace vampos::obs
