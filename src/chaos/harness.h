// DasHarness: a live Nginx-style VampOS stack (PROCESS SYSINFO USER NETDEV
// TIMER VFS 9PFS LWIP VIRTIO) under dependency-aware scheduling, with real
// file and network traffic driven from the host side. The chaos campaign
// engine injects faults into it and measures what the application observes;
// tests reuse it wherever they need "a realistic stack under load" without
// re-wiring the boot sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/netclient.h"
#include "apps/posix.h"
#include "apps/stack.h"
#include "core/runtime.h"
#include "uk/platform.h"

namespace vampos::chaos {

struct HarnessOptions {
  /// Size of the concurrent-recovery worker pool (0 = legacy serialized).
  int recovery_workers = 4;
  /// Hang-detector threshold. Campaign hangs park a handler for this long
  /// of *real* time, so keep it small: a few ms per injected hang. Large
  /// enough that a sanitizer-slowed recovery pause on the message thread
  /// cannot age a healthy in-flight handler past the threshold.
  Nanos hang_threshold = 5 * kMillisecond;
  /// Rebuild-from-Init fallback for corrupt checkpoints, so every fault
  /// kind in the campaign stays recoverable.
  bool reinit_on_restore_failure = true;
  /// Checkpoint engine for the stack's stateful components.
  mem::SnapshotMode snapshot_mode = mem::SnapshotMode::kIncremental;
  /// Flight recorder on, so campaigns can export a vamptrace-readable
  /// post-mortem of what recovery did.
  bool tracing = true;
};

class DasHarness {
 public:
  explicit DasHarness(const HarnessOptions& opts = {});
  ~DasHarness();
  DasHarness(const DasHarness&) = delete;
  DasHarness& operator=(const DasHarness&) = delete;

  [[nodiscard]] core::Runtime& rt() { return *rt_; }
  [[nodiscard]] const apps::StackInfo& info() const { return info_; }

  /// One round of live traffic across all three component paths: a getpid
  /// (PROCESS), a file append (VFS -> 9PFS -> VIRTIO), and a TCP echo
  /// (LWIP -> NETDEV -> VIRTIO). Returns true iff every path produced the
  /// correct result this round — the campaign's availability sample.
  bool TrafficRound();

  /// Rounds driven so far and how many were fully correct.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t rounds_ok() const { return rounds_ok_; }
  /// Per-round success flags, in order (the availability curve's raw data).
  [[nodiscard]] const std::vector<bool>& round_results() const {
    return round_results_;
  }

  /// Components on the traffic paths that a campaign may fault: the same
  /// set the fault-matrix test exercises.
  [[nodiscard]] const std::vector<ComponentId>& targets() const {
    return targets_;
  }
  [[nodiscard]] std::string TargetName(std::size_t i) const;

  /// The file every round appends one byte to grows monotonically; its
  /// host-visible size is a cheap end-to-end consistency probe.
  [[nodiscard]] std::int64_t HostFileSize() const;

 private:
  void Reconnect();

  uk::Platform platform_;
  uk::HostRingView rings_;
  std::unique_ptr<core::Runtime> rt_;
  apps::StackInfo info_;
  std::unique_ptr<apps::Posix> px_;
  std::unique_ptr<apps::SimClient> client_;
  std::vector<ComponentId> targets_;
  std::int64_t fd_ = -1;
  int conn_ = -1;
  bool stop_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t rounds_ok_ = 0;
  std::vector<bool> round_results_;
};

}  // namespace vampos::chaos
