#include "chaos/chaos.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "base/clock.h"
#include "base/rng.h"
#include "core/rejuvenation.h"

namespace vampos::chaos {

std::uint64_t CampaignSpec::ResolvedSeed() const {
  if (const char* env = std::getenv("VAMPOS_CHAOS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<std::uint64_t>(v);
  }
  return seed;
}

namespace {

FaultKind PickKind(Rng& rng, int hang_weight) {
  const auto roll = static_cast<int>(rng.Below(100));
  if (roll < hang_weight) return FaultKind::kHang;
  // Remaining probability split evenly across the fail-stop kinds.
  switch ((roll - hang_weight) % 4) {
    case 0:
      return FaultKind::kPanic;
    case 1:
      return FaultKind::kMpkViolation;
    case 2:
      return FaultKind::kDeadlock;
    default:
      return FaultKind::kCorruptCheckpoint;
  }
}

}  // namespace

FaultPlan FaultPlan::Generate(const CampaignSpec& spec,
                              std::size_t n_targets) {
  FaultPlan plan;
  if (n_targets == 0 || spec.faults == 0) return plan;
  Rng rng(spec.seed);
  std::size_t burst = 0;
  while (plan.faults.size() < spec.faults) {
    std::size_t size = 1;
    if (spec.burst_percent > 0 &&
        rng.Chance(static_cast<std::uint64_t>(spec.burst_percent), 100)) {
      size = 2 + rng.Below(2);  // 2..3
    }
    size = std::min({size, n_targets, spec.faults - plan.faults.size()});
    std::vector<std::size_t> picked;
    while (picked.size() < size) {
      const std::size_t t = rng.Below(n_targets);
      if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (const std::size_t t : picked) {
      plan.faults.push_back(
          PlannedFault{t, PickKind(rng, spec.hang_weight), burst});
    }
    burst++;
  }
  plan.bursts = burst;
  return plan;
}

Campaign::Campaign(DasHarness& harness, CampaignSpec spec)
    : h_(harness), spec_(std::move(spec)) {
  spec_.seed = spec_.ResolvedSeed();
  plan_ = FaultPlan::Generate(spec_, h_.targets().size());
}

Report Campaign::Run() {
  core::Runtime& rt = h_.rt();
  Report rep;
  rep.seed = spec_.seed;
  rep.faults_planned = plan_.faults.size();

  const auto counter = [&rt](const char* name) {
    return rt.metrics().GetCounter(name).value();
  };
  const std::uint64_t reboots0 = counter("rt.reboots");
  const std::uint64_t failures0 = counter("rt.recovery_failures");
  const std::uint64_t diverge0 = counter("rt.replay_divergence");

  // Adaptive mode: health telemetry plus a metric-driven scheduler. The
  // scheduler only ticks where `allow_rejuv` says so (settle rounds and the
  // aging phase), never while a burst's recoveries are still being counted —
  // an extra reboot mid-wait would satisfy the burst's completion check
  // before the injected faults actually recovered.
  obs::HealthMonitor* health = nullptr;
  std::optional<core::RejuvenationScheduler> sched;
  if (spec_.adaptive) {
    obs::HealthConfig hcfg;
    hcfg.window_ns = spec_.health_window_ns;
    // Campaign-scale detector tuning. Handler latencies are microseconds
    // here, so p99 noise easily doubles — drift needs a wide limit. And a
    // burst's downstream errors or a noisy drift reading alone (terms 0.5
    // 0.5) must not degrade a component that is merely collateral; a
    // saturated leak slope (0.6), an 8x drift (0.6), or a hang/fault (0.8)
    // should.
    hcfg.latency_drift_limit = 8.0;
    hcfg.degrade_score = 0.55;
    hcfg.leak_limit_bps = 2.0 * 1024.0 * 1024.0;
    health = &rt.EnableHealth(hcfg);
    sched.emplace(core::RejuvenationScheduler::ForAllComponents(
        rt, /*interval=*/0));
    sched->set_adaptive(*health);
    rep.adaptive = true;
  }
  bool allow_rejuv = false;

  // Reboots completed as of the end of each traffic round, so recoveries
  // can be attributed to availability windows afterwards. Adaptive runs
  // also keep the per-round worst health score for the window report.
  std::vector<std::size_t> reboots_by_round;
  std::vector<double> score_by_round;
  const auto drive_round = [&] {
    h_.TrafficRound();
    if (health != nullptr) {
      const Nanos now = rt.options().clock->Now();
      double worst = 0.0;
      for (const ComponentId target : h_.targets()) {
        worst = std::max(worst,
                         health->Assess(rt.GroupLeader(target), now).score);
      }
      score_by_round.push_back(worst);
      rep.peak_health_score = std::max(rep.peak_health_score, worst);
      if (sched.has_value() && allow_rejuv && rt.active_recoveries() == 0) {
        (void)sched->Tick();
      }
    }
    reboots_by_round.push_back(rt.reboot_history().size());
  };

  std::size_t i = 0;
  while (i < plan_.faults.size() && !rt.terminal_fault().has_value()) {
    // Inject the whole burst before any traffic runs.
    const std::size_t burst_id = plan_.faults[i].burst;
    std::size_t burst_size = 0;
    const std::size_t first = i;
    while (i < plan_.faults.size() && plan_.faults[i].burst == burst_id) {
      rt.InjectFault(h_.targets()[plan_.faults[i].target],
                     plan_.faults[i].kind);
      burst_size++;
      i++;
    }
    const std::size_t mark = rt.reboot_history().size();
    const std::uint64_t overlaps_before = counter("rt.recovery_overlaps");
    const std::uint64_t reinits_before = counter("rt.recovery_reinits");
    const std::uint64_t failures_before = counter("rt.recovery_failures");

    // Drive traffic until every injected fault has fired and recovered (or
    // provably failed), with a bounded round budget as a safety valve.
    for (int r = 0; r < 8 + 4 * static_cast<int>(burst_size); ++r) {
      drive_round();
      if (rt.terminal_fault().has_value()) break;
      const bool all_recovered =
          rt.reboot_history().size() >= mark + burst_size &&
          rt.active_recoveries() == 0;
      const bool gave_up = counter("rt.recovery_failures") > failures_before;
      if (all_recovered || gave_up) break;
    }
    allow_rejuv = true;
    for (int r = 0; r < spec_.settle_rounds; ++r) drive_round();
    allow_rejuv = false;

    // Score each fault in the burst: a reboot of its component completed
    // after the mark means it recovered; its MTTR is that reboot's total.
    const bool burst_reinit = counter("rt.recovery_reinits") > reinits_before;
    std::vector<bool> claimed(rt.reboot_history().size(), false);
    for (std::size_t f = first; f < i; ++f) {
      FaultOutcome out;
      out.index = f;
      out.target = h_.TargetName(plan_.faults[f].target);
      out.kind = plan_.faults[f].kind;
      out.burst = burst_id;
      const ComponentId id =
          rt.GroupLeader(h_.targets()[plan_.faults[f].target]);
      for (std::size_t hidx = mark; hidx < rt.reboot_history().size();
           ++hidx) {
        const core::RebootReport& rr = rt.reboot_history()[hidx];
        if (rr.component == id && !claimed[hidx]) {
          claimed[hidx] = true;
          out.recovered = true;
          out.mttr_ns = rr.total_ns;
          break;
        }
      }
      out.reinitialized = burst_reinit &&
                          out.kind == FaultKind::kCorruptCheckpoint &&
                          out.recovered;
      rep.faults_fired++;
      if (out.recovered) {
        rep.recovered++;
      } else {
        rep.unrecovered++;
      }
      if (out.reinitialized) rep.reinitialized++;
      rep.outcomes.push_back(std::move(out));
    }
    if (counter("rt.recovery_overlaps") > overlaps_before && burst_size >= 2) {
      rep.overlapped_bursts++;
    }
  }

  // Aging phase: leak real arena bytes from one component each round until
  // the leak-slope detector degrades it and the adaptive scheduler reboots
  // it (rebuilding the arena cures the leak) — or the round budget runs out.
  // Reboots of any *other* component here are the false-positive count.
  if (sched.has_value() && spec_.age_rounds > 0 && !h_.targets().empty() &&
      !rt.terminal_fault().has_value()) {
    const std::size_t tgt = spec_.age_target % h_.targets().size();
    const ComponentId aged = rt.GroupLeader(h_.targets()[tgt]);
    rep.aged_target = h_.TargetName(tgt);
    const std::size_t mark = rt.reboot_history().size();
    allow_rejuv = true;
    for (std::size_t r = 0; r < spec_.age_rounds; ++r) {
      comp::Component& victim = rt.component(aged);
      if (victim.has_alloc()) (void)victim.alloc().Alloc(spec_.age_bytes);
      drive_round();
      rep.aging_rounds++;
      bool rejuvenated = false;
      for (std::size_t hidx = mark; hidx < rt.reboot_history().size();
           ++hidx) {
        if (rt.reboot_history()[hidx].component == aged) {
          rejuvenated = true;
          break;
        }
      }
      if (rejuvenated) {
        rep.aging_rounds_to_rejuvenate = static_cast<std::int64_t>(r + 1);
        break;
      }
    }
    allow_rejuv = false;
    for (std::size_t hidx = mark; hidx < rt.reboot_history().size(); ++hidx) {
      if (rt.reboot_history()[hidx].component != aged) {
        rep.aging_offtarget_reboots++;
      }
    }
  }

  if (sched.has_value()) {
    rep.rejuvenations = sched->adaptive_reboots();
    rep.healthy_skips = sched->healthy_skips();
  }

  rep.fail_stopped = rt.terminal_fault().has_value();
  rep.reboots = counter("rt.reboots") - reboots0;
  rep.recovery_failures = counter("rt.recovery_failures") - failures0;
  rep.replay_divergence = counter("rt.replay_divergence") - diverge0;
  rep.peak_concurrent_recoveries = rt.peak_concurrent_recoveries();

  // Availability windows: bucket the rounds evenly and attribute completed
  // recoveries to the window their round fell in.
  const std::vector<bool>& results = h_.round_results();
  const std::size_t windows = std::max<std::size_t>(1, spec_.windows);
  rep.windows.assign(windows, WindowStat{});
  std::size_t prev_reboots = 0;
  for (std::size_t r = 0; r < results.size(); ++r) {
    WindowStat& w = rep.windows[r * windows / results.size()];
    w.rounds++;
    if (results[r]) w.ok++;
    if (r < reboots_by_round.size()) {
      w.recoveries += reboots_by_round[r] - prev_reboots;
      prev_reboots = reboots_by_round[r];
    }
    if (r < score_by_round.size()) {
      w.worst_score = std::max(w.worst_score, score_by_round[r]);
    }
  }

  std::vector<Nanos> mttrs;
  for (const FaultOutcome& out : rep.outcomes) {
    if (out.recovered) mttrs.push_back(out.mttr_ns);
  }
  if (!mttrs.empty()) {
    std::sort(mttrs.begin(), mttrs.end());
    rep.mttr_p50_ns = mttrs[mttrs.size() / 2];
    rep.mttr_p95_ns = mttrs[(mttrs.size() * 95) / 100];
    rep.mttr_max_ns = mttrs.back();
  }
  return rep;
}

double Report::min_availability() const {
  double min = 1.0;
  for (const WindowStat& w : windows) {
    if (w.rounds > 0) min = std::min(min, w.availability());
  }
  return min;
}

void Report::WriteJson(std::FILE* out) const {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"faults_planned\": %zu,\n", faults_planned);
  std::fprintf(out, "  \"faults_fired\": %zu,\n", faults_fired);
  std::fprintf(out, "  \"recovered\": %zu,\n", recovered);
  std::fprintf(out, "  \"unrecovered\": %zu,\n", unrecovered);
  std::fprintf(out, "  \"reinitialized\": %zu,\n", reinitialized);
  std::fprintf(out, "  \"reboots\": %llu,\n",
               static_cast<unsigned long long>(reboots));
  std::fprintf(out, "  \"recovery_failures\": %llu,\n",
               static_cast<unsigned long long>(recovery_failures));
  std::fprintf(out, "  \"replay_divergence\": %llu,\n",
               static_cast<unsigned long long>(replay_divergence));
  std::fprintf(out, "  \"peak_concurrent_recoveries\": %zu,\n",
               peak_concurrent_recoveries);
  std::fprintf(out, "  \"overlapped_bursts\": %zu,\n", overlapped_bursts);
  std::fprintf(out, "  \"adaptive\": %s,\n", adaptive ? "true" : "false");
  std::fprintf(out, "  \"rejuvenations\": %llu,\n",
               static_cast<unsigned long long>(rejuvenations));
  std::fprintf(out, "  \"healthy_skips\": %llu,\n",
               static_cast<unsigned long long>(healthy_skips));
  std::fprintf(out, "  \"peak_health_score\": %.3f,\n", peak_health_score);
  std::fprintf(out, "  \"aged_target\": \"%s\",\n", aged_target.c_str());
  std::fprintf(out, "  \"aging_rounds\": %llu,\n",
               static_cast<unsigned long long>(aging_rounds));
  std::fprintf(out, "  \"aging_rounds_to_rejuvenate\": %lld,\n",
               static_cast<long long>(aging_rounds_to_rejuvenate));
  std::fprintf(out, "  \"aging_offtarget_reboots\": %llu,\n",
               static_cast<unsigned long long>(aging_offtarget_reboots));
  std::fprintf(out, "  \"fail_stopped\": %s,\n",
               fail_stopped ? "true" : "false");
  std::fprintf(out, "  \"min_availability\": %.4f,\n", min_availability());
  std::fprintf(out, "  \"mttr_p50_ns\": %lld,\n",
               static_cast<long long>(mttr_p50_ns));
  std::fprintf(out, "  \"mttr_p95_ns\": %lld,\n",
               static_cast<long long>(mttr_p95_ns));
  std::fprintf(out, "  \"mttr_max_ns\": %lld,\n",
               static_cast<long long>(mttr_max_ns));
  std::fprintf(out, "  \"windows\": [");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::fprintf(out,
                 "%s\n    {\"rounds\": %llu, \"ok\": %llu, "
                 "\"availability\": %.4f, \"recoveries\": %llu, "
                 "\"worst_score\": %.3f}",
                 w == 0 ? "" : ",",
                 static_cast<unsigned long long>(windows[w].rounds),
                 static_cast<unsigned long long>(windows[w].ok),
                 windows[w].availability(),
                 static_cast<unsigned long long>(windows[w].recoveries),
                 windows[w].worst_score);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"faults\": [");
  for (std::size_t f = 0; f < outcomes.size(); ++f) {
    const FaultOutcome& o = outcomes[f];
    std::fprintf(out,
                 "%s\n    {\"index\": %zu, \"target\": \"%s\", "
                 "\"kind\": \"%s\", \"burst\": %zu, \"recovered\": %s, "
                 "\"reinitialized\": %s, \"mttr_ns\": %lld}",
                 f == 0 ? "" : ",", o.index, o.target.c_str(),
                 ToString(o.kind), o.burst, o.recovered ? "true" : "false",
                 o.reinitialized ? "true" : "false",
                 static_cast<long long>(o.mttr_ns));
  }
  std::fprintf(out, "\n  ]\n}\n");
}

void Report::WriteCurveCsv(std::FILE* out) const {
  std::fprintf(out, "window,rounds,ok,availability,recoveries,worst_score\n");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::fprintf(out, "%zu,%llu,%llu,%.4f,%llu,%.3f\n", w,
                 static_cast<unsigned long long>(windows[w].rounds),
                 static_cast<unsigned long long>(windows[w].ok),
                 windows[w].availability(),
                 static_cast<unsigned long long>(windows[w].recoveries),
                 windows[w].worst_score);
  }
}

BurstCompare CompareBurstRecovery(int workers, int reps) {
  // Full-copy checkpoints make the restore cost proportional to arena size
  // (16 MiB LWIP + 8 MiB VFS + 2 MiB 9PFS), and the log history below gives
  // every reboot real replay work. Both stacks run the same worker pool;
  // only the issue pattern differs — one-at-a-time synchronous reboots
  // versus a burst of async reboots driven together — so the delta is the
  // overlap itself: while the pool restores one group, the message thread
  // replays another, instead of each reboot paying restore + replay in
  // strict sequence.
  const std::vector<std::string> names = {"vfs", "9pfs", "lwip", "netdev"};
  const Clock& clock = SteadyClock::Instance();
  BurstCompare bc;

  const auto build = [&](int pool) {
    HarnessOptions opts;
    opts.recovery_workers = pool;
    opts.snapshot_mode = mem::SnapshotMode::kFullCopy;
    opts.tracing = false;
    auto h = std::make_unique<DasHarness>(opts);
    for (int r = 0; r < 10; ++r) h->TrafficRound();  // build replay history
    return h;
  };
  const auto resolve = [&](DasHarness& h) {
    std::vector<ComponentId> ids;
    for (const std::string& n : names) {
      const ComponentId id = h.rt().FindComponent(n);
      if (id != kComponentNone) ids.push_back(id);
    }
    return ids;
  };

  {
    auto h = build(workers);
    const auto ids = resolve(*h);
    bc.components = ids.size();
    for (int r = 0; r < reps; ++r) {
      const Nanos t0 = clock.Now();
      for (const ComponentId id : ids) (void)h->rt().Reboot(id);
      const Nanos dt = clock.Now() - t0;
      if (bc.serial_ns == 0 || dt < bc.serial_ns) bc.serial_ns = dt;
    }
  }
  {
    auto h = build(workers);
    const auto ids = resolve(*h);
    for (int r = 0; r < reps; ++r) {
      const std::size_t history_mark = h->rt().reboot_history().size();
      const Nanos t0 = clock.Now();
      for (const ComponentId id : ids) (void)h->rt().RebootAsync(id);
      while (h->rt().active_recoveries() > 0) h->rt().Step();
      const Nanos dt = clock.Now() - t0;
      if (bc.parallel_ns == 0 || dt < bc.parallel_ns) {
        bc.parallel_ns = dt;
        // What serializing this exact burst would cost: each job's own
        // begin->done duration, summed. The jobs overlapped, so the burst
        // wall time is strictly below this sum.
        bc.serialized_sum_ns = 0;
        const auto& history = h->rt().reboot_history();
        for (std::size_t i = history_mark; i < history.size(); ++i) {
          bc.serialized_sum_ns += history[i].total_ns;
        }
      }
    }
    bc.peak_concurrent = h->rt().peak_concurrent_recoveries();
  }
  return bc;
}

}  // namespace vampos::chaos
