#include "chaos/harness.h"

#include <utility>

#include "base/diag.h"

namespace vampos::chaos {

using apps::BuildStack;
using apps::Posix;
using apps::SimClient;
using apps::StackSpec;
using core::Runtime;
using core::RuntimeOptions;
using core::SchedPolicy;

DasHarness::DasHarness(const HarnessOptions& opts) {
  RuntimeOptions ro;
  ro.policy = SchedPolicy::kDependencyAware;
  ro.hang_threshold = opts.hang_threshold;
  ro.recovery_workers = opts.recovery_workers;
  ro.reinit_on_restore_failure = opts.reinit_on_restore_failure;
  ro.snapshot_mode = opts.snapshot_mode;
  ro.tracing = opts.tracing;
  rt_ = std::make_unique<Runtime>(ro);
  info_ = BuildStack(*rt_, platform_, rings_, StackSpec::Nginx());
  apps::BootAndMount(*rt_);
  px_ = std::make_unique<Posix>(*rt_);

  // Warm state that must survive every recovery: an open file with an
  // offset, and an established TCP connection served by an echo loop.
  rt_->SpawnApp("chaos-warm", [this] {
    fd_ = px_->Create("/chaos-state");
    px_->Write(fd_, "w");
  });
  rt_->RunUntilIdle();

  rt_->SpawnApp("chaos-server", [this] {
    const auto lfd = px_->Socket();
    px_->Bind(lfd, 80);
    px_->Listen(lfd);
    std::int64_t conn = -1;
    while (!stop_) {
      if (conn < 0) conn = px_->Accept(lfd);
      if (conn >= 0) {
        auto r = px_->Recv(conn, 1024);
        if (r.ok() && !r.data.empty()) px_->Send(conn, r.data);
      }
      rt_->ParkApp();
    }
  });
  rt_->RunUntilIdle();

  client_ = std::make_unique<SimClient>(&platform_.net, 80);
  Reconnect();

  for (const char* name : {"vfs", "9pfs", "lwip", "netdev", "process"}) {
    const ComponentId id = rt_->FindComponent(name);
    if (id != kComponentNone) targets_.push_back(id);
  }
}

DasHarness::~DasHarness() {
  stop_ = true;
  rt_->UnparkApps();
  rt_->RunUntilIdle();
}

void DasHarness::Reconnect() {
  conn_ = client_->Connect();
  for (int i = 0; i < 16 && !client_->Established(conn_); ++i) {
    client_->Poll();
    rt_->UnparkApps();
    rt_->RunUntilIdle();
    client_->Poll();
  }
}

std::string DasHarness::TargetName(std::size_t i) const {
  return rt_->component(targets_[i]).name();
}

std::int64_t DasHarness::HostFileSize() const {
  auto content = platform_.ninep.ReadFile("/chaos-state");
  return content.has_value() ? static_cast<std::int64_t>(content->size()) : -1;
}

bool DasHarness::TrafficRound() {
  // All three paths run interleaved in the same pump — the file app and the
  // echo server are concurrent fibers — so a burst of faults on independent
  // paths (say VFS and LWIP) fires while both requests are in flight and
  // their recoveries genuinely overlap.
  if (client_->Broken(conn_) || client_->Closed(conn_)) Reconnect();
  client_->Send(conn_, "ping");

  // File + process path. Each round appends exactly one byte; the host file
  // size doubles as an end-to-end exactly-once probe.
  std::int64_t pid = -1;
  std::int64_t wrote = -1;
  rt_->SpawnApp("chaos-file", [&, this] {
    pid = px_->Getpid();
    wrote = px_->Write(fd_, "x");
  });

  // A recovery in flight delays replies (requests queue while a component
  // is down), so pump generously before declaring the round lost.
  std::string got;
  for (int i = 0; i < 24 && (got.empty() || wrote < 0); ++i) {
    client_->Poll();
    rt_->UnparkApps();
    rt_->RunUntilIdle();
    client_->Poll();
    got += client_->TakeReceived(conn_);
  }

  const bool ok = pid >= 0 && wrote >= 0 && got == "ping" &&
                  !client_->Broken(conn_);
  rounds_++;
  if (ok) rounds_ok_++;
  round_results_.push_back(ok);
  return ok;
}

}  // namespace vampos::chaos
