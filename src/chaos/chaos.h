// Chaos campaign engine: deterministic, seeded fault-injection campaigns
// against a live DasHarness stack. A campaign is generated purely from its
// seed (FaultPlan), injected burst by burst under live traffic, and scored
// into a Report: per-fault recovery outcome and MTTR, per-window
// availability, replay-correctness verdicts, and the concurrent-recovery
// high-water mark. Same seed + same spec = bit-for-bit the same plan, so a
// failing campaign is replayable from one integer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/panic.h"
#include "base/types.h"
#include "chaos/harness.h"

namespace vampos::chaos {

/// One planned fault: inject `kind` into target `target` (an index into the
/// harness's target list). Faults sharing a `burst` id are injected together
/// before any traffic runs, so their recoveries overlap.
struct PlannedFault {
  std::size_t target = 0;
  FaultKind kind = FaultKind::kPanic;
  std::size_t burst = 0;
};

struct CampaignSpec {
  std::uint64_t seed = 1;
  std::size_t faults = 200;
  /// Percent of bursts that contain 2-3 faults (distinct components) instead
  /// of a single one — the source of genuinely overlapping recoveries.
  int burst_percent = 35;
  /// Availability windows the campaign's traffic rounds are bucketed into.
  std::size_t windows = 10;
  /// Traffic rounds driven after each burst, beyond recovery completion.
  int settle_rounds = 2;
  /// Weight (out of 100) of hang faults. Each hang costs a real
  /// hang-threshold delay, so campaigns keep this low.
  int hang_weight = 8;
  /// Run the campaign with health telemetry enabled and a metric-driven
  /// rejuvenation scheduler ticking after every traffic round: degraded
  /// components get proactively rebooted between bursts, healthy ones are
  /// left alone. The report gains rejuvenation counts and a per-window
  /// worst-health-score column.
  bool adaptive = false;
  /// Health window for adaptive campaigns. Campaigns run in milliseconds of
  /// real time, so the production default (250 ms) would never close a
  /// window; 2 ms keeps the detectors on campaign timescale.
  Nanos health_window_ns = 2 * kMillisecond;
  /// Adaptive aging phase, driven after the fault plan completes: each round
  /// leaks `age_bytes` from target `age_target`'s arena (allocated, never
  /// freed), until the adaptive scheduler rejuvenates it or the round budget
  /// runs out. 0 = no aging phase.
  std::size_t age_rounds = 0;
  /// Leaked per aging round. Big enough that the injected slope dwarfs the
  /// campaign leak limit on any host; small enough that the round budget
  /// cannot exhaust the victim's arena before detection.
  std::size_t age_bytes = 16384;
  std::size_t age_target = 0;  // index into the harness target list

  /// Seed after the VAMPOS_CHAOS_SEED env override (bit-for-bit repro knob).
  [[nodiscard]] std::uint64_t ResolvedSeed() const;
};

/// The full, deterministic schedule of a campaign: a pure function of
/// (spec, number of targets). Timing-independent — generation never looks
/// at a clock, so the plan replays identically on any machine.
struct FaultPlan {
  std::vector<PlannedFault> faults;
  std::size_t bursts = 0;

  static FaultPlan Generate(const CampaignSpec& spec, std::size_t n_targets);
};

struct FaultOutcome {
  std::size_t index = 0;  // position in the plan
  std::string target;
  FaultKind kind = FaultKind::kPanic;
  std::size_t burst = 0;
  bool recovered = false;
  bool reinitialized = false;  // corrupt checkpoint rebuilt from Init
  Nanos mttr_ns = 0;           // reboot total for this component, 0 if lost
};

struct WindowStat {
  std::uint64_t rounds = 0;
  std::uint64_t ok = 0;
  std::uint64_t recoveries = 0;  // reboots completed during this window
  /// Worst per-component health score observed in this window (adaptive
  /// campaigns only; 0 when health is off).
  double worst_score = 0.0;
  [[nodiscard]] double availability() const {
    return rounds == 0 ? 1.0 : static_cast<double>(ok) /
                                   static_cast<double>(rounds);
  }
};

struct Report {
  std::uint64_t seed = 0;
  std::size_t faults_planned = 0;
  std::size_t faults_fired = 0;
  std::size_t recovered = 0;
  std::size_t unrecovered = 0;
  std::size_t reinitialized = 0;
  std::uint64_t reboots = 0;
  std::uint64_t recovery_failures = 0;
  std::uint64_t replay_divergence = 0;
  std::size_t peak_concurrent_recoveries = 0;
  std::size_t overlapped_bursts = 0;  // bursts that reached >=2 in flight
  bool adaptive = false;
  std::uint64_t rejuvenations = 0;   // adaptive scheduler reboots
  std::uint64_t healthy_skips = 0;   // adaptive ticks that rebooted nothing
  double peak_health_score = 0.0;    // worst score seen across the campaign
  std::string aged_target;           // aging-phase victim (adaptive runs)
  std::uint64_t aging_rounds = 0;    // aging-phase rounds actually driven
  /// Rounds of leaking before the adaptive scheduler rejuvenated the aged
  /// component; -1 when it never did (or no aging phase ran).
  std::int64_t aging_rounds_to_rejuvenate = -1;
  /// Reboots of components other than the aged one during the aging phase —
  /// the "clean components left alone" signal; should stay 0.
  std::uint64_t aging_offtarget_reboots = 0;
  bool fail_stopped = false;
  std::vector<FaultOutcome> outcomes;
  std::vector<WindowStat> windows;
  Nanos mttr_p50_ns = 0;
  Nanos mttr_p95_ns = 0;
  Nanos mttr_max_ns = 0;

  [[nodiscard]] double min_availability() const;
  /// Campaign verdict: every fired fault recovered, no fail-stop, no replay
  /// divergence.
  [[nodiscard]] bool clean() const {
    return !fail_stopped && unrecovered == 0 && replay_divergence == 0;
  }

  void WriteJson(std::FILE* out) const;
  /// Availability curve as CSV (window,rounds,ok,availability,recoveries).
  void WriteCurveCsv(std::FILE* out) const;
};

class Campaign {
 public:
  Campaign(DasHarness& harness, CampaignSpec spec);

  /// Runs the whole planned campaign and scores it. Deterministic in its
  /// injection schedule; timings in the report come from the real clock.
  Report Run();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  DasHarness& h_;
  CampaignSpec spec_;
  FaultPlan plan_;
};

/// Serialized-vs-concurrent recovery comparison for an N-components-down
/// burst on a freshly built stack (full-copy checkpoints, so restore cost
/// dominates and the overlap is measurable). Returns best-of-`reps` wall
/// times for each mode plus the concurrent run's in-flight high-water mark.
///
/// `serial_ns` is a real one-at-a-time run; on a multi-core host it shows
/// the restore overlap directly, but on a single-core host it is bound by
/// scheduler noise (CPU-bound work cannot truly overlap). `serialized_sum_ns`
/// is the burst run's own accounting: the sum of the per-recovery durations
/// the burst overlapped — what replaying those same recoveries back-to-back
/// would cost. It is the host-independent overlap signal.
struct BurstCompare {
  Nanos serial_ns = 0;
  Nanos parallel_ns = 0;          // burst wall time, first inject -> all up
  Nanos serialized_sum_ns = 0;    // sum of the burst's per-job durations
  std::size_t components = 0;
  std::size_t peak_concurrent = 0;
};
BurstCompare CompareBurstRecovery(int workers = 4, int reps = 3);

}  // namespace vampos::chaos
