#include "msg/value.h"

namespace vampos::msg {

namespace {
enum Tag : std::uint8_t { kI64 = 1, kU64 = 2, kF64 = 3, kBytesTag = 4 };

void PutU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}
void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}
std::uint32_t GetU32(std::span<const std::byte> in, std::size_t& pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  }
  pos += 4;
  return v;
}
std::uint64_t GetU64(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  pos += 8;
  return v;
}
}  // namespace

void MsgValue::Serialize(std::vector<std::byte>& out) const {
  if (is_i64()) {
    out.push_back(static_cast<std::byte>(kI64));
    PutU64(out, static_cast<std::uint64_t>(i64()));
  } else if (is_u64()) {
    out.push_back(static_cast<std::byte>(kU64));
    PutU64(out, u64());
  } else if (is_f64()) {
    out.push_back(static_cast<std::byte>(kF64));
    std::uint64_t bits;
    double d = f64();
    std::memcpy(&bits, &d, 8);
    PutU64(out, bits);
  } else {
    out.push_back(static_cast<std::byte>(kBytesTag));
    PutU32(out, static_cast<std::uint32_t>(bytes().size()));
    const auto* p = reinterpret_cast<const std::byte*>(bytes().data());
    out.insert(out.end(), p, p + bytes().size());
  }
}

MsgValue MsgValue::Deserialize(std::span<const std::byte> in,
                               std::size_t& pos) {
  const auto tag = static_cast<Tag>(in[pos++]);
  switch (tag) {
    case kI64:
      return MsgValue(static_cast<std::int64_t>(GetU64(in, pos)));
    case kU64:
      return MsgValue(GetU64(in, pos));
    case kF64: {
      std::uint64_t bits = GetU64(in, pos);
      double d;
      std::memcpy(&d, &bits, 8);
      return MsgValue(d);
    }
    case kBytesTag: {
      std::uint32_t len = GetU32(in, pos);
      std::string s(reinterpret_cast<const char*>(in.data() + pos), len);
      pos += len;
      return MsgValue(std::move(s));
    }
  }
  Fatal("MsgValue::Deserialize: corrupt tag %d", static_cast<int>(tag));
}

std::vector<std::byte> SerializeArgs(const Args& args) {
  std::vector<std::byte> out;
  out.reserve(WireSizeOf(args));
  PutU32(out, static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) a.Serialize(out);
  return out;
}

Args DeserializeArgs(std::span<const std::byte> in) {
  std::size_t pos = 0;
  const std::uint32_t count = GetU32(in, pos);
  Args args;
  args.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    args.push_back(MsgValue::Deserialize(in, pos));
  }
  return args;
}

}  // namespace vampos::msg
