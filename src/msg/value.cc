#include "msg/value.h"

namespace vampos::msg {

namespace {
enum Tag : std::uint8_t {
  kI64 = 1,
  kU64 = 2,
  kF64 = 3,
  kBytesTag = 4,
  kViewTag = 5,
};

void PutU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}
void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}
std::uint32_t GetU32(std::span<const std::byte> in, std::size_t& pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  }
  pos += 4;
  return v;
}
std::uint64_t GetU64(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  pos += 8;
  return v;
}

void PutOwnedBytes(std::vector<std::byte>& out,
                   std::span<const std::byte> data) {
  out.push_back(static_cast<std::byte>(kBytesTag));
  PutU32(out, static_cast<std::uint32_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
}
}  // namespace

MsgValue MsgValue::Borrowed(std::span<const std::byte> data,
                            const mem::Arena& arena) {
  if (data.empty() || !arena.Contains(data.data(), data.size())) {
    return Bytes(data);
  }
  auto borrow = std::make_shared<Borrow>();
  borrow->data = data.data();
  borrow->len = data.size();
  borrow->arena = &arena;
  borrow->generation = arena.generation();
  View v;
  v.borrow = std::move(borrow);
  v.len = static_cast<std::uint32_t>(data.size());
  v.generation = arena.generation();
  return MsgValue(std::move(v));
}

bool MsgValue::ViewUsable() const {
  if (!is_view()) return true;
  const View& v = view();
  if (v.borrow == nullptr) return false;
  // Order matters: `revoked` is checked before the arena is dereferenced —
  // the lender revokes its borrows before its arena can be destroyed
  // (variant swap), so a revoked borrow's arena pointer is never chased.
  if (v.borrow->revoked) return false;
  return v.borrow->arena != nullptr &&
         v.borrow->arena->generation() == v.generation;
}

void MsgValue::ValidateView() const {
  if (ViewUsable()) return;
  const View& v = view();
  const ComponentId actor =
      v.borrow != nullptr ? v.borrow->borrower : kComponentNone;
  const char* why = "detached borrowed view";
  if (v.borrow != nullptr) {
    why = v.borrow->revoked ? "borrowed view accessed after revoke"
                            : "stale-generation view after lender reboot";
  }
  throw ComponentFault(actor, FaultKind::kMpkViolation, why);
}

std::span<const std::byte> MsgValue::span() const {
  if (is_view()) {
    ValidateView();
    return {view().borrow->data, view().borrow->len};
  }
  const std::string& s = std::get<std::string>(v_);
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

const std::string& MsgValue::bytes() const {
  if (!is_view()) return std::get<std::string>(v_);
  ValidateView();  // every access re-validates, even with a warm cache
  const View& v = view();
  if (v.cache == nullptr) {
    v.cache = std::make_shared<std::string>(
        reinterpret_cast<const char*>(v.borrow->data), v.borrow->len);
  }
  return *v.cache;
}

MsgValue MsgValue::Compacted() const {
  if (!is_view()) return *this;
  if (!ViewUsable()) return MsgValue(std::string());
  return MsgValue(std::string(reinterpret_cast<const char*>(view().borrow->data),
                              view().borrow->len));
}

bool MsgValue::operator==(const MsgValue& other) const {
  // A borrowed payload equals an owned copy of the same bytes — replay
  // divergence checks must not distinguish the two representations.
  if (is_bytes() && other.is_bytes()) {
    if (is_view() && !ViewUsable()) return !other.ViewUsable();
    if (other.is_view() && !other.ViewUsable()) return false;
    const auto a = span();
    const auto b = other.span();
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size()) == 0;
  }
  return v_ == other.v_;
}

void MsgValue::Serialize(std::vector<std::byte>& out) const {
  if (is_i64()) {
    out.push_back(static_cast<std::byte>(kI64));
    PutU64(out, static_cast<std::uint64_t>(i64()));
  } else if (is_u64()) {
    out.push_back(static_cast<std::byte>(kU64));
    PutU64(out, u64());
  } else if (is_f64()) {
    out.push_back(static_cast<std::byte>(kF64));
    std::uint64_t bits;
    double d = f64();
    std::memcpy(&bits, &d, 8);
    PutU64(out, bits);
  } else if (is_view()) {
    if (ViewUsable()) {
      // Copy fallback: a view serialized outside the zero-copy path is
      // byte-identical to an owned payload on the wire.
      PutOwnedBytes(out, {view().borrow->data, view().borrow->len});
    } else {
      // Poisoned reference: the borrow died in transit. The record keeps
      // the view shape so the receiver faults on access rather than the
      // message thread faulting here.
      out.push_back(static_cast<std::byte>(kViewTag));
      out.push_back(static_cast<std::byte>(0));  // not staged
      PutU32(out, view().len);
      PutU64(out, view().generation);
    }
  } else {
    const std::string& s = std::get<std::string>(v_);
    PutOwnedBytes(out,
                  {reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }
}

MsgValue MsgValue::Deserialize(std::span<const std::byte> in,
                               std::size_t& pos) {
  const auto tag = static_cast<Tag>(in[pos++]);
  switch (tag) {
    case kI64:
      return MsgValue(static_cast<std::int64_t>(GetU64(in, pos)));
    case kU64:
      return MsgValue(GetU64(in, pos));
    case kF64: {
      std::uint64_t bits = GetU64(in, pos);
      double d;
      std::memcpy(&d, &bits, 8);
      return MsgValue(d);
    }
    case kBytesTag: {
      std::uint32_t len = GetU32(in, pos);
      std::string s(reinterpret_cast<const char*>(in.data() + pos), len);
      pos += len;
      return MsgValue(std::move(s));
    }
    case kViewTag: {
      View v;
      v.staged = static_cast<std::uint8_t>(in[pos++]) != 0;
      v.len = GetU32(in, pos);
      v.generation = GetU64(in, pos);
      return MsgValue(std::move(v));  // detached until ReattachViews
    }
  }
  Fatal("MsgValue::Deserialize: corrupt tag %d", static_cast<int>(tag));
}

std::vector<std::byte> SerializeArgs(const Args& args) {
  std::vector<std::byte> out;
  out.reserve(WireSizeOf(args));
  PutU32(out, static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) a.Serialize(out);
  return out;
}

std::vector<std::byte> SerializeArgsZeroCopy(const Args& args,
                                             std::vector<MsgValue>* out_views) {
  std::vector<std::byte> out;
  out.reserve(WireSizeOf(args));
  PutU32(out, static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) {
    if (!a.is_view()) {
      a.Serialize(out);
      continue;
    }
    const MsgValue::View& v = a.view();
    if (!a.ViewUsable() || v.borrow->granted) {
      // One-hop rule: an already-granted borrow is not re-lent to a second
      // borrower; Serialize materializes it (or poisons a dead one).
      a.Serialize(out);
      continue;
    }
    out.push_back(static_cast<std::byte>(kViewTag));
    out.push_back(static_cast<std::byte>(1));  // staged: consumes a stash slot
    PutU32(out, v.len);
    PutU64(out, v.generation);
    out_views->push_back(a);
  }
  return out;
}

void ReattachViews(Args* args, std::vector<MsgValue> views) {
  std::size_t next = 0;
  for (auto& a : *args) {
    if (!a.is_view() || a.view().borrow != nullptr || !a.view().staged) {
      continue;
    }
    if (next >= views.size()) {
      Fatal("ReattachViews: staged view placeholder without a stashed view");
    }
    a = std::move(views[next++]);
  }
  if (next != views.size()) {
    Fatal("ReattachViews: %zu stashed views unclaimed", views.size() - next);
  }
}

Args DeserializeArgs(std::span<const std::byte> in) {
  std::size_t pos = 0;
  const std::uint32_t count = GetU32(in, pos);
  Args args;
  args.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    args.push_back(MsgValue::Deserialize(in, pos));
  }
  return args;
}

}  // namespace vampos::msg
