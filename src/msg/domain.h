// Message domain: the shared-memory mailbox and log store between components.
//
// Mirrors the paper's design (§V-A, §V-D, Fig 4): the message domain is an
// isolated memory region, tagged with its own MPK key, holding (1) message
// buffers for push/pull communication (vo_push_msgs / vo_pull_msgs) and
// (2) the function-call and return-value logs used for encapsulated
// restoration. It is managed by the message thread (the runtime main loop),
// never by component code, so a faulty component cannot corrupt the logs its
// own recovery will depend on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/types.h"
#include "mem/arena.h"
#include "mem/buddy_allocator.h"
#include "mpk/mpk.h"
#include "msg/value.h"

namespace vampos::sched {
class Fiber;
}

namespace vampos::msg {

/// One in-flight message: either a function-call request or its reply. The
/// payload bytes are staged inside the message-domain arena; the struct
/// itself is runtime bookkeeping.
struct Message {
  enum class Kind { kCall, kReply };
  Kind kind = Kind::kCall;
  std::uint64_t rpc_id = 0;
  ComponentId from = kComponentNone;
  ComponentId to = kComponentNone;
  FunctionId fn = -1;
  std::uint32_t buf_off = 0;   // payload offset in the domain arena
  std::uint32_t buf_len = 0;
  sched::Fiber* caller_fiber = nullptr;  // fiber to wake when replied
  Nanos enqueued_at = 0;                 // for the hang detector
  LogSeq log_seq = 0;                    // call-log entry for this call, 0 = unlogged
};

/// One logged inbound call on a stateful component, with everything needed
/// to replay it during encapsulated restoration: arguments, the session it
/// belongs to (fd / socket id), and the return values this call observed
/// from its own outbound calls into other components (fed back during
/// replay instead of re-invoking those components — paper Fig 3).
struct CallLogEntry {
  LogSeq seq = 0;
  FunctionId fn = -1;
  Args args;
  MsgValue ret;
  bool have_ret = false;
  std::int64_t session = -1;       // -1: not session-scoped
  bool state_changing = true;      // false: skipped during replay
  bool synthetic = false;          // produced by log compaction
  std::vector<std::pair<FunctionId, MsgValue>> outbound;
  std::size_t bytes = 0;           // serialized footprint, for accounting
};

/// Per-stateful-component function-call log.
class CallLog {
 public:
  LogSeq Append(CallLogEntry entry);
  void SetReturn(LogSeq seq, MsgValue ret);
  void SetSession(LogSeq seq, std::int64_t session);
  void RecordOutbound(LogSeq seq, FunctionId fn, MsgValue ret);

  /// Session-aware shrinking: drops every entry bound to `session`
  /// (including the canceling call itself). Returns entries removed.
  std::size_t PruneSession(std::int64_t session);

  /// Drops a specific entry (used by threshold-triggered compaction).
  void Erase(LogSeq seq);

  /// Drops every entry matching `pred`; returns the count removed. Drives
  /// both canceling-function pruning and threshold compaction selection.
  std::size_t PruneIf(const std::function<bool(const CallLogEntry&)>& pred);

  void Clear();

  [[nodiscard]] const std::deque<CallLogEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] LogSeq next_seq() const { return next_seq_; }

 private:
  CallLogEntry* Find(LogSeq seq);
  static std::size_t FootprintOf(const CallLogEntry& e);

  std::deque<CallLogEntry> entries_;
  std::size_t bytes_ = 0;
  LogSeq next_seq_ = 1;
};

/// The message domain itself: arena-backed staging buffers + per-component
/// inboxes + per-component call logs.
class MessageDomain {
 public:
  /// `arena_size` bounds buffers in flight; the domain gets its own MPK key
  /// from `domains` (may be nullptr in unit tests without isolation).
  MessageDomain(std::size_t arena_size, mpk::DomainManager* domains);

  /// Makes room for inboxes up to component id `max_id`.
  void EnsureCapacity(ComponentId max_id);

  /// vo_push_msgs(): serializes the payload into the domain arena with an
  /// MPK-checked write attributed to `msg.from`, then enqueues. The caller
  /// (runtime) must have opened write access to the domain key in PKRU.
  void Push(Message msg, const Args& payload);

  /// vo_pull_msgs(): dequeues the oldest message for `to`, deserializes the
  /// payload with an MPK-checked read, releases the staging buffer.
  std::optional<std::pair<Message, Args>> Pull(ComponentId to);

  /// Replies travel through the domain too ("in sending the return value,
  /// the scheduler dispatches the message thread to preserve it", §V-C).
  /// They live in a dedicated queue drained by the message thread, which
  /// wakes the blocked caller fiber.
  void PushReply(Message msg, const Args& payload);
  std::optional<std::pair<Message, Args>> PullReply();
  [[nodiscard]] bool HasReply() const { return !replies_.empty(); }

  [[nodiscard]] bool HasMessage(ComponentId to) const;
  [[nodiscard]] std::size_t QueueDepth(ComponentId to) const;
  /// Peek destination of the oldest pending message anywhere (scheduling
  /// hint); kComponentNone if all inboxes are empty.
  [[nodiscard]] ComponentId OldestPendingDestination() const;

  /// Drops every queued message addressed to `to` (component reboot path).
  void DropQueued(ComponentId to);

  CallLog& LogFor(ComponentId id) { return logs_[id]; }
  [[nodiscard]] bool HasLog(ComponentId id) const {
    return logs_.contains(id);
  }

  [[nodiscard]] mpk::Key key() const { return key_; }
  [[nodiscard]] std::size_t TotalLogBytes() const;
  [[nodiscard]] std::size_t TotalLogEntries() const;
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }

 private:
  mem::Arena arena_;
  mem::BuddyAllocator alloc_;
  mpk::DomainManager* domains_;
  mpk::Key key_ = mpk::kDefaultKey;
  std::vector<std::deque<Message>> inbox_;
  std::deque<Message> replies_;
  std::unordered_map<ComponentId, CallLog> logs_;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t pushes_ = 0;

 public:
  std::uint64_t NextRpcId() { return next_rpc_id_++; }
};

}  // namespace vampos::msg
