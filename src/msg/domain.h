// Message domain: the shared-memory mailbox and log store between components.
//
// Mirrors the paper's design (§V-A, §V-D, Fig 4): the message domain is an
// isolated memory region, tagged with its own MPK key, holding (1) message
// buffers for push/pull communication (vo_push_msgs / vo_pull_msgs) and
// (2) the function-call and return-value logs used for encapsulated
// restoration. It is managed by the message thread (the runtime main loop),
// never by component code, so a faulty component cannot corrupt the logs its
// own recovery will depend on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/types.h"
#include "mem/arena.h"
#include "mem/buddy_allocator.h"
#include "mpk/mpk.h"
#include "msg/value.h"
#include "obs/trace.h"

namespace vampos::sched {
class Fiber;
}

namespace vampos::obs {
class Histogram;
}

namespace vampos::msg {

/// One in-flight message: either a function-call request or its reply. The
/// payload bytes are staged inside the message-domain arena; the struct
/// itself is runtime bookkeeping.
struct Message {
  enum class Kind { kCall, kReply };
  Kind kind = Kind::kCall;
  std::uint64_t rpc_id = 0;
  ComponentId from = kComponentNone;
  ComponentId to = kComponentNone;
  FunctionId fn = -1;
  std::uint32_t buf_off = 0;   // payload offset in the domain arena
  std::uint32_t buf_len = 0;
  sched::Fiber* caller_fiber = nullptr;  // fiber to wake when replied
  Nanos enqueued_at = 0;                 // for the hang detector
  LogSeq log_seq = 0;                    // call-log entry for this call, 0 = unlogged
  obs::TraceContext trace;               // causal identity; zero = untraced
};

/// One logged inbound call on a stateful component, with everything needed
/// to replay it during encapsulated restoration: arguments, the session it
/// belongs to (fd / socket id), and the return values this call observed
/// from its own outbound calls into other components (fed back during
/// replay instead of re-invoking those components — paper Fig 3).
struct CallLogEntry {
  LogSeq seq = 0;
  FunctionId fn = -1;
  Args args;
  MsgValue ret;
  bool have_ret = false;
  std::int64_t session = -1;       // -1: not session-scoped
  bool state_changing = true;      // false: skipped during replay
  bool synthetic = false;          // produced by log compaction
  std::vector<std::pair<FunctionId, MsgValue>> outbound;
  std::size_t bytes = 0;           // serialized footprint, for accounting
};

/// Per-stateful-component function-call log.
///
/// Entries live in a seq-keyed ordered map so every point operation on the
/// per-call hot path (SetReturn, RecordOutbound, SetSession, Erase) is
/// O(log n) with stable entry addresses (replay holds pointers into the
/// map while handlers run). A per-session index makes session-aware
/// shrinking and threshold compaction touch only the affected session
/// instead of walking the whole log; full-log scans (generic PruneIf) are
/// counted in scans() so the runtime can prove they left the hot path.
class CallLog {
 public:
  using EntryMap = std::map<LogSeq, CallLogEntry>;
  using SeqSet = std::set<LogSeq>;

  LogSeq Append(CallLogEntry entry);
  void SetReturn(LogSeq seq, MsgValue ret);
  void SetSession(LogSeq seq, std::int64_t session);
  void RecordOutbound(LogSeq seq, FunctionId fn, MsgValue ret);

  /// Session-aware shrinking: drops every entry bound to `session`
  /// (including the canceling call itself). Returns entries removed.
  std::size_t PruneSession(std::int64_t session);

  /// Drops a specific entry (used by threshold-triggered compaction).
  void Erase(LogSeq seq);

  /// Drops every entry matching `pred`; returns the count removed. Walks
  /// the whole log — kept for tests and cold paths; hot-path pruning goes
  /// through PruneSessionIf.
  std::size_t PruneIf(const std::function<bool(const CallLogEntry&)>& pred);

  /// Drops `session`'s entries matching `pred` via the session index; only
  /// that session's entries are visited. Returns the count removed.
  std::size_t PruneSessionIf(
      std::int64_t session,
      const std::function<bool(const CallLogEntry&)>& pred);

  void Clear();

  /// Read-only point lookup (nullptr when seq is absent or pruned).
  [[nodiscard]] const CallLogEntry* Lookup(LogSeq seq) const;

  [[nodiscard]] const EntryMap& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] LogSeq next_seq() const { return next_seq_; }
  /// Full-log passes performed (generic PruneIf); the hot path should keep
  /// this flat.
  [[nodiscard]] std::uint64_t scans() const { return scans_; }

  /// Serialized footprint of one entry — the unit bytes() accounts in.
  static std::size_t FootprintOf(const CallLogEntry& e);

  // ---- compaction scheduling (driven by the runtime's MaybeCompact) ----
  // A session is *dirty* when it gained a completed entry since its last
  // compaction visit. A failed hook (replacement >= entries) *parks* the
  // session: it is skipped until its entry count doubles, so an
  // uncompactable workload pays O(log n) hook passes instead of one full
  // grouping pass per call.

  /// Dirty, unparked sessions — the only ones worth handing to the hook.
  [[nodiscard]] std::vector<std::int64_t> CompactionCandidates() const;
  /// Seq-ordered entries of one session (nullptr if the session is empty).
  [[nodiscard]] const SeqSet* SessionSeqs(std::int64_t session) const;
  /// Compaction visited the session (hook ran or nothing to do).
  void MarkSessionClean(std::int64_t session);
  /// The hook could not shrink the session; park it behind the growth gate.
  void ParkSessionCompaction(std::int64_t session);

 private:
  struct SessionState {
    SeqSet seqs;
    bool dirty = false;
    std::size_t parked_at = 0;  // entry count at last failed hook; 0 = unparked
  };

  CallLogEntry* Find(LogSeq seq);
  void IndexSession(const CallLogEntry& e);
  void UnindexSession(const CallLogEntry& e);
  /// Removes the entry, maintaining bytes and the session index.
  EntryMap::iterator RemoveEntry(EntryMap::iterator it);

  EntryMap entries_;
  std::unordered_map<std::int64_t, SessionState> sessions_;
  std::size_t bytes_ = 0;
  LogSeq next_seq_ = 1;
  std::uint64_t scans_ = 0;
};

/// The message domain itself: arena-backed staging buffers + per-component
/// inboxes + per-component call logs.
class MessageDomain {
 public:
  /// `arena_size` bounds buffers in flight; the domain gets its own MPK key
  /// from `domains` (may be nullptr in unit tests without isolation).
  MessageDomain(std::size_t arena_size, mpk::DomainManager* domains);

  /// Makes room for inboxes up to component id `max_id`.
  void EnsureCapacity(ComponentId max_id);

  /// Enables the zero-copy payload path: view-carrying payloads are staged
  /// as out-of-line borrow references with a temporary MPK read grant for
  /// the borrower instead of being copied into the domain arena.
  void EnableZeroCopy(bool on) { zero_copy_ = on; }
  [[nodiscard]] bool zero_copy() const { return zero_copy_; }

  /// Attaches the runtime's flight recorder (push/pull trace events) and
  /// queue-depth histogram. Either may be nullptr; the recorder's own
  /// enabled flag gates event cost at runtime.
  void BindTelemetry(obs::FlightRecorder* recorder,
                     obs::Histogram* queue_depth);

  /// vo_push_msgs(): serializes the payload into the domain arena with an
  /// MPK-checked write attributed to `msg.from`, then enqueues. The caller
  /// (runtime) must have opened write access to the domain key in PKRU.
  void Push(Message msg, const Args& payload);

  /// vo_pull_msgs(): dequeues the oldest message for `to`, deserializes the
  /// payload with an MPK-checked read, releases the staging buffer.
  std::optional<std::pair<Message, Args>> Pull(ComponentId to);

  /// Replies travel through the domain too ("in sending the return value,
  /// the scheduler dispatches the message thread to preserve it", §V-C).
  /// They live in a dedicated queue drained by the message thread, which
  /// wakes the blocked caller fiber.
  void PushReply(Message msg, const Args& payload);
  std::optional<std::pair<Message, Args>> PullReply();
  /// Batched reply drain: moves up to `max` queued replies into `out`
  /// (cleared first) and returns the count. One call releases all the
  /// staging buffers of the batch before the message thread touches any
  /// waiter, amortizing the per-reply bookkeeping.
  std::size_t PullReplies(std::size_t max,
                          std::vector<std::pair<Message, Args>>* out);
  [[nodiscard]] bool HasReply() const { return !replies_.empty(); }

  [[nodiscard]] bool HasMessage(ComponentId to) const;
  [[nodiscard]] std::size_t QueueDepth(ComponentId to) const;
  /// Peek destination of the oldest pending message anywhere (scheduling
  /// hint); kComponentNone if all inboxes are empty.
  [[nodiscard]] ComponentId OldestPendingDestination() const;

  /// Drops every queued message addressed to `to`, releasing the staged
  /// buffers (fail-stop path: nothing will ever pull them).
  void DropQueued(ComponentId to);

  /// Removes and returns every queued message addressed to `to`, payloads
  /// deserialized and staging buffers released (reboot path: the runtime
  /// re-logs and re-queues them with fresh log entries).
  std::vector<std::pair<Message, Args>> DrainQueued(ComponentId to);

  /// Removes every queued message *sent by* `from` across all inboxes and
  /// returns the dropped headers (reboot path: the retried request re-issues
  /// these calls; executing the stale copies would double side effects in
  /// surviving components).
  std::vector<Message> DropQueuedFrom(ComponentId from);

  /// Revokes every borrow granted for call `rpc_id` (runtime calls this when
  /// the handler serving the call replies — the end of the borrower's
  /// execution window). Views escaped past this point fault on access.
  void RevokeBorrows(std::uint64_t rpc_id);

  /// Lender-side revocation: revokes every outstanding borrow (granted or
  /// still staged in-queue) whose bytes live in `arena`. Called when the
  /// owning component reboots or is torn down, before the arena's contents
  /// are replaced or freed.
  void RevokeBorrowsInto(const mem::Arena& arena);

  /// Payload bytes memcpy'd through the staging arena (copy-path cost the
  /// zero-copy path avoids; the syscall smoke test gates on this).
  [[nodiscard]] std::uint64_t payload_bytes_copied() const {
    return payload_bytes_copied_;
  }

  /// Outstanding call borrows across all rpcs (tests / checker).
  [[nodiscard]] std::size_t ActiveBorrowRpcs() const {
    return borrows_.size();
  }

  CallLog& LogFor(ComponentId id) { return logs_[id]; }
  [[nodiscard]] bool HasLog(ComponentId id) const {
    return logs_.contains(id);
  }

  [[nodiscard]] mpk::Key key() const { return key_; }
  /// Staging-buffer arena (exposed so the isolation checker can claim it in
  /// its shadow ownership map).
  [[nodiscard]] const mem::Arena& arena() const { return arena_; }
  [[nodiscard]] std::size_t TotalLogBytes() const;
  [[nodiscard]] std::size_t TotalLogEntries() const;
  [[nodiscard]] std::uint64_t TotalLogScans() const;
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }

 private:
  /// Serializes `payload` (zero-copy aware), stages it at a fresh arena
  /// buffer attributed to `from`, and fills msg.buf_off/buf_len. Staged
  /// views are stashed under the buffer offset; returns true when any view
  /// was staged out-of-line.
  bool StagePayload(Message& msg, const Args& payload, const char* what);
  /// Pops the stashed views for a consumed buffer and reattaches them.
  void RehydrateViews(const Message& msg, Args* args);
  /// Reply delivery: materializes usable views into owned bytes (the single
  /// delivery copy) and revokes their borrows; unusable views are left
  /// unreadable for the runtime to convert into an error.
  void FinalizeReplyViews(Args* args);
  /// Drops the stash entry (and its grants) for a message that will never
  /// be pulled.
  void DiscardStagedViews(const Message& msg);
  void RevokeOne(const std::shared_ptr<Borrow>& b);

  mem::Arena arena_;
  mem::BuddyAllocator alloc_;
  mpk::DomainManager* domains_;
  mpk::Key key_ = mpk::kDefaultKey;
  std::vector<std::deque<Message>> inbox_;
  std::deque<Message> replies_;
  std::unordered_map<ComponentId, CallLog> logs_;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t pushes_ = 0;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  bool zero_copy_ = false;
  std::uint64_t payload_bytes_copied_ = 0;
  // Views staged out-of-line, keyed by the wire buffer that references them.
  std::unordered_map<std::uint32_t, std::vector<MsgValue>> staged_views_;
  // Live borrows per call rpc, revoked when the handler replies.
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Borrow>>>
      borrows_;

 public:
  std::uint64_t NextRpcId() { return next_rpc_id_++; }
};

}  // namespace vampos::msg
