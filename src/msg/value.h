// Argument / return-value representation for cross-component calls.
//
// VampOS hooks the interfaces exposed by components, extracts the arguments,
// and puts them in the message domain (§V-A). MsgValue is that marshaled
// form: a small tagged union covering the types the hooked C interfaces use
// (integers, doubles, byte buffers). Serialize/Deserialize define the wire
// format staged in the message-domain arena and accounted against log space.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "base/panic.h"

namespace vampos::msg {

class MsgValue {
 public:
  MsgValue() : v_(std::int64_t{0}) {}
  MsgValue(std::int64_t v) : v_(v) {}            // NOLINT(google-explicit-*)
  MsgValue(std::uint64_t v) : v_(v) {}           // NOLINT
  MsgValue(double v) : v_(v) {}                  // NOLINT
  MsgValue(std::string v) : v_(std::move(v)) {}  // NOLINT
  MsgValue(const char* v) : v_(std::string(v)) {}  // NOLINT
  static MsgValue Bytes(std::span<const std::byte> data) {
    return MsgValue(std::string(reinterpret_cast<const char*>(data.data()),
                                data.size()));
  }

  [[nodiscard]] bool is_i64() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_u64() const {
    return std::holds_alternative<std::uint64_t>(v_);
  }
  [[nodiscard]] bool is_f64() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_bytes() const {
    return std::holds_alternative<std::string>(v_);
  }

  [[nodiscard]] std::int64_t i64() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] std::uint64_t u64() const { return std::get<std::uint64_t>(v_); }
  [[nodiscard]] double f64() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& bytes() const {
    return std::get<std::string>(v_);
  }

  /// Serialized size: 1 tag byte + fixed or length-prefixed payload.
  [[nodiscard]] std::size_t WireSize() const {
    if (is_bytes()) return 1 + 4 + bytes().size();
    return 1 + 8;
  }

  /// Appends the wire form to `out`.
  void Serialize(std::vector<std::byte>& out) const;

  /// Parses one value from `in` starting at `pos`, advancing it.
  static MsgValue Deserialize(std::span<const std::byte> in, std::size_t& pos);

  bool operator==(const MsgValue& other) const { return v_ == other.v_; }

 private:
  std::variant<std::int64_t, std::uint64_t, double, std::string> v_;
};

using Args = std::vector<MsgValue>;

/// Serializes a full argument vector (count-prefixed).
std::vector<std::byte> SerializeArgs(const Args& args);
Args DeserializeArgs(std::span<const std::byte> in);

inline std::size_t WireSizeOf(const Args& args) {
  std::size_t n = 4;
  for (const auto& a : args) n += a.WireSize();
  return n;
}

}  // namespace vampos::msg
