// Argument / return-value representation for cross-component calls.
//
// VampOS hooks the interfaces exposed by components, extracts the arguments,
// and puts them in the message domain (§V-A). MsgValue is that marshaled
// form: a small tagged union covering the types the hooked C interfaces use
// (integers, doubles, byte buffers). Serialize/Deserialize define the wire
// format staged in the message-domain arena and accounted against log space.
//
// Byte payloads come in two flavors: an owned std::string copy, and a
// zero-copy View borrowed straight from the lender's arena. A View carries
// the owning arena and the arena generation at mint time; every access
// re-validates the borrow (not revoked, arena generation unchanged) and
// faults with kMpkViolation instead of silently reading stale or revoked
// memory. The borrow/grant lifecycle itself lives in MessageDomain — this
// header only defines the value representation and its wire form.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "base/panic.h"
#include "mem/arena.h"

namespace vampos::msg {

/// Shared control block for one borrowed payload. The lender-side runtime
/// flips `revoked` at reply/reboot time; every View copy minted from the
/// same borrow observes the revocation through the shared pointer.
struct Borrow {
  const std::byte* data = nullptr;
  std::size_t len = 0;
  const mem::Arena* arena = nullptr;
  std::uint64_t generation = 0;
  ComponentId borrower = kComponentNone;
  bool revoked = false;
  // One-hop rule: set once the borrow has been granted to a borrower. A
  // view forwarded a second hop is materialized into an owned copy at
  // serialization time instead of extending the grant chain.
  bool granted = false;
  std::uint64_t mpk_grant = 0;  // grant id in DomainManager, 0 = none
};

class MsgValue {
 public:
  /// Zero-copy alternative of the byte payload: a validated window into a
  /// live Borrow. `borrow == nullptr` marks a detached (unusable) view —
  /// either a deserialized placeholder awaiting reattachment or a poisoned
  /// reference whose borrow died in transit.
  struct View {
    std::shared_ptr<Borrow> borrow;
    std::uint32_t len = 0;
    std::uint64_t generation = 0;
    // Lazily materialized owned copy handed out by bytes(); validity is
    // still re-checked on every access so a revoked view faults even after
    // a successful earlier read.
    mutable std::shared_ptr<std::string> cache;
    bool staged = false;

    // Identity comparison only — content equality for views is handled by
    // MsgValue::operator== so a view compares equal to an owned copy.
    bool operator==(const View& other) const {
      return borrow == other.borrow && len == other.len &&
             generation == other.generation;
    }
  };

  MsgValue() : v_(std::int64_t{0}) {}
  MsgValue(std::int64_t v) : v_(v) {}            // NOLINT(google-explicit-*)
  MsgValue(std::uint64_t v) : v_(v) {}           // NOLINT
  MsgValue(double v) : v_(v) {}                  // NOLINT
  MsgValue(std::string v) : v_(std::move(v)) {}  // NOLINT
  MsgValue(const char* v) : v_(std::string(v)) {}  // NOLINT
  MsgValue(View v) : v_(std::move(v)) {}         // NOLINT
  static MsgValue Bytes(std::span<const std::byte> data) {
    return MsgValue(std::string(reinterpret_cast<const char*>(data.data()),
                                data.size()));
  }

  /// Zero-copy constructor: borrows `data` from `arena` instead of copying.
  /// Falls back to an owned copy when the span is empty or does not lie
  /// inside the arena (a borrow against foreign memory is unenforceable).
  static MsgValue Borrowed(std::span<const std::byte> data,
                           const mem::Arena& arena);

  [[nodiscard]] bool is_i64() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_u64() const {
    return std::holds_alternative<std::uint64_t>(v_);
  }
  [[nodiscard]] bool is_f64() const { return std::holds_alternative<double>(v_); }
  /// True for byte payloads, owned or borrowed.
  [[nodiscard]] bool is_bytes() const {
    return std::holds_alternative<std::string>(v_) || is_view();
  }
  [[nodiscard]] bool is_view() const {
    return std::holds_alternative<View>(v_);
  }

  [[nodiscard]] std::int64_t i64() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] std::uint64_t u64() const { return std::get<std::uint64_t>(v_); }
  [[nodiscard]] double f64() const { return std::get<double>(v_); }

  /// Byte payload as an owned string. For a view this validates the borrow
  /// (faulting on revoked/stale) and materializes a cached copy; call
  /// span() instead to stay zero-copy.
  [[nodiscard]] const std::string& bytes() const;

  /// Byte payload without a copy. For a view the borrow is validated on
  /// every call; a revoked or stale-generation view throws
  /// ComponentFault(kMpkViolation) attributed to the borrower.
  [[nodiscard]] std::span<const std::byte> span() const;

  [[nodiscard]] const View& view() const { return std::get<View>(v_); }

  /// True when a view can still be read: attached, not revoked, and the
  /// owning arena has not been rebooted past the mint-time generation.
  /// Non-views are always usable.
  [[nodiscard]] bool ViewUsable() const;

  /// Owned deep copy: views are flattened to owned bytes (or an empty
  /// string when no longer readable). Used by the call log so replay and
  /// checkpointing never depend on a borrow's lifetime.
  [[nodiscard]] MsgValue Compacted() const;

  /// Serialized size: 1 tag byte + fixed or length-prefixed payload.
  [[nodiscard]] std::size_t WireSize() const {
    if (is_view()) return 1 + 1 + 4 + 8;
    if (is_bytes()) return 1 + 4 + bytes().size();
    return 1 + 8;
  }

  /// Appends the wire form to `out`. A live view is materialized into an
  /// owned-bytes record (the copy fallback); an unusable view becomes a
  /// poisoned view record. Never throws, so the message thread can
  /// serialize any payload.
  void Serialize(std::vector<std::byte>& out) const;

  /// Parses one value from `in` starting at `pos`, advancing it. A view
  /// record deserializes to a detached View that must be reattached by the
  /// domain (see ReattachViews) before it is readable.
  static MsgValue Deserialize(std::span<const std::byte> in, std::size_t& pos);

  bool operator==(const MsgValue& other) const;

 private:
  /// Throws ComponentFault(kMpkViolation) unless the view is usable.
  void ValidateView() const;

  std::variant<std::int64_t, std::uint64_t, double, std::string, View> v_;
};

using Args = std::vector<MsgValue>;

/// Serializes a full argument vector (count-prefixed).
std::vector<std::byte> SerializeArgs(const Args& args);
Args DeserializeArgs(std::span<const std::byte> in);

/// Zero-copy serialization: usable first-hop views are emitted as staged
/// out-of-line references (the view MsgValue is appended to `out_views` for
/// the domain to stash alongside the wire buffer) instead of being copied
/// inline. Already-granted views (second hop) and unusable views fall back
/// to Serialize's behavior. Never throws.
std::vector<std::byte> SerializeArgsZeroCopy(const Args& args,
                                             std::vector<MsgValue>* out_views);

/// Reattaches the staged views collected by SerializeArgsZeroCopy to the
/// detached placeholders DeserializeArgs produced, in order.
void ReattachViews(Args* args, std::vector<MsgValue> views);

inline std::size_t WireSizeOf(const Args& args) {
  std::size_t n = 4;
  for (const auto& a : args) n += a.WireSize();
  return n;
}

}  // namespace vampos::msg
