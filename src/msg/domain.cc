#include "msg/domain.h"

#include <algorithm>

#include "base/panic.h"

namespace vampos::msg {

// ---------------------------------------------------------------- CallLog

std::size_t CallLog::FootprintOf(const CallLogEntry& e) {
  std::size_t n = sizeof(CallLogEntry) + WireSizeOf(e.args) + e.ret.WireSize();
  for (const auto& [fn, ret] : e.outbound) {
    (void)fn;
    n += 8 + ret.WireSize();
  }
  return n;
}

LogSeq CallLog::Append(CallLogEntry entry) {
  entry.seq = next_seq_++;
  entry.bytes = FootprintOf(entry);
  bytes_ += entry.bytes;
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

CallLogEntry* CallLog::Find(LogSeq seq) {
  // Entries are seq-ordered; binary search.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), seq,
      [](const CallLogEntry& e, LogSeq s) { return e.seq < s; });
  if (it == entries_.end() || it->seq != seq) return nullptr;
  return &*it;
}

void CallLog::SetReturn(LogSeq seq, MsgValue ret) {
  if (CallLogEntry* e = Find(seq)) {
    bytes_ -= e->bytes;
    e->ret = std::move(ret);
    e->have_ret = true;
    e->bytes = FootprintOf(*e);
    bytes_ += e->bytes;
  }
}

void CallLog::SetSession(LogSeq seq, std::int64_t session) {
  if (CallLogEntry* e = Find(seq)) e->session = session;
}

void CallLog::RecordOutbound(LogSeq seq, FunctionId fn, MsgValue ret) {
  if (CallLogEntry* e = Find(seq)) {
    bytes_ -= e->bytes;
    e->outbound.emplace_back(fn, std::move(ret));
    e->bytes = FootprintOf(*e);
    bytes_ += e->bytes;
  }
}

std::size_t CallLog::PruneSession(std::int64_t session) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->session == session) {
      bytes_ -= it->bytes;
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void CallLog::Erase(LogSeq seq) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [seq](const CallLogEntry& e) { return e.seq == seq; });
  if (it != entries_.end()) {
    bytes_ -= it->bytes;
    entries_.erase(it);
  }
}

std::size_t CallLog::PruneIf(
    const std::function<bool(const CallLogEntry&)>& pred) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (pred(*it)) {
      bytes_ -= it->bytes;
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void CallLog::Clear() {
  entries_.clear();
  bytes_ = 0;
}

// ----------------------------------------------------------- MessageDomain

MessageDomain::MessageDomain(std::size_t arena_size,
                             mpk::DomainManager* domains)
    : arena_(arena_size, "message-domain"),
      alloc_(arena_),
      domains_(domains) {
  if (domains_ != nullptr) {
    if (auto key = domains_->AssignKey(arena_, "message-domain")) {
      key_ = *key;
    } else {
      Fatal("out of MPK keys for the message domain");
    }
  }
}

void MessageDomain::EnsureCapacity(ComponentId max_id) {
  if (static_cast<std::size_t>(max_id + 1) > inbox_.size()) {
    inbox_.resize(max_id + 1);
  }
}

void MessageDomain::Push(Message msg, const Args& payload) {
  EnsureCapacity(msg.to);
  pushes_++;
  const std::vector<std::byte> wire = SerializeArgs(payload);
  void* buf = alloc_.Alloc(wire.size());
  if (buf == nullptr) {
    Fatal("message domain arena exhausted (%zu bytes requested)",
          wire.size());
  }
  if (domains_ != nullptr) {
    domains_->CheckedWrite(msg.from, buf, wire.data(), wire.size());
  } else {
    std::memcpy(buf, wire.data(), wire.size());
  }
  msg.buf_off = static_cast<std::uint32_t>(arena_.OffsetOf(buf));
  msg.buf_len = static_cast<std::uint32_t>(wire.size());
  inbox_[msg.to].push_back(msg);
}

std::optional<std::pair<Message, Args>> MessageDomain::Pull(ComponentId to) {
  if (static_cast<std::size_t>(to) >= inbox_.size() || inbox_[to].empty()) {
    return std::nullopt;
  }
  Message msg = inbox_[to].front();
  inbox_[to].pop_front();
  std::vector<std::byte> wire(msg.buf_len);
  void* buf = arena_.AtOffset(msg.buf_off);
  if (domains_ != nullptr) {
    domains_->CheckedRead(to, buf, wire.data(), wire.size());
  } else {
    std::memcpy(wire.data(), buf, wire.size());
  }
  // Buffer no longer needed once consumed; logs hold their own copy.
  alloc_.Free(buf);
  return std::make_pair(msg, DeserializeArgs(wire));
}

void MessageDomain::PushReply(Message msg, const Args& payload) {
  pushes_++;
  const std::vector<std::byte> wire = SerializeArgs(payload);
  void* buf = alloc_.Alloc(wire.size());
  if (buf == nullptr) {
    Fatal("message domain arena exhausted on reply (%zu bytes)", wire.size());
  }
  if (domains_ != nullptr) {
    domains_->CheckedWrite(msg.from, buf, wire.data(), wire.size());
  } else {
    std::memcpy(buf, wire.data(), wire.size());
  }
  msg.kind = Message::Kind::kReply;
  msg.buf_off = static_cast<std::uint32_t>(arena_.OffsetOf(buf));
  msg.buf_len = static_cast<std::uint32_t>(wire.size());
  replies_.push_back(msg);
}

std::optional<std::pair<Message, Args>> MessageDomain::PullReply() {
  if (replies_.empty()) return std::nullopt;
  Message msg = replies_.front();
  replies_.pop_front();
  std::vector<std::byte> wire(msg.buf_len);
  void* buf = arena_.AtOffset(msg.buf_off);
  // The message thread drains replies; it has full access to the domain.
  std::memcpy(wire.data(), buf, wire.size());
  alloc_.Free(buf);
  return std::make_pair(msg, DeserializeArgs(wire));
}

bool MessageDomain::HasMessage(ComponentId to) const {
  return static_cast<std::size_t>(to) < inbox_.size() && !inbox_[to].empty();
}

std::size_t MessageDomain::QueueDepth(ComponentId to) const {
  if (static_cast<std::size_t>(to) >= inbox_.size()) return 0;
  return inbox_[to].size();
}

ComponentId MessageDomain::OldestPendingDestination() const {
  ComponentId best = kComponentNone;
  Nanos best_time = 0;
  for (std::size_t id = 0; id < inbox_.size(); ++id) {
    if (inbox_[id].empty()) continue;
    const Nanos t = inbox_[id].front().enqueued_at;
    if (best == kComponentNone || t < best_time) {
      best = static_cast<ComponentId>(id);
      best_time = t;
    }
  }
  return best;
}

void MessageDomain::DropQueued(ComponentId to) {
  if (static_cast<std::size_t>(to) >= inbox_.size()) return;
  for (const Message& m : inbox_[to]) {
    alloc_.Free(arena_.AtOffset(m.buf_off));
  }
  inbox_[to].clear();
}

std::size_t MessageDomain::TotalLogBytes() const {
  std::size_t total = 0;
  for (const auto& [id, log] : logs_) {
    (void)id;
    total += log.bytes();
  }
  return total;
}

std::size_t MessageDomain::TotalLogEntries() const {
  std::size_t total = 0;
  for (const auto& [id, log] : logs_) {
    (void)id;
    total += log.size();
  }
  return total;
}

}  // namespace vampos::msg
