#include "msg/domain.h"

#include <algorithm>

#include "base/panic.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace vampos::msg {

// ---------------------------------------------------------------- CallLog

std::size_t CallLog::FootprintOf(const CallLogEntry& e) {
  std::size_t n = sizeof(CallLogEntry) + WireSizeOf(e.args) + e.ret.WireSize();
  for (const auto& [fn, ret] : e.outbound) {
    (void)fn;
    n += 8 + ret.WireSize();
  }
  return n;
}

void CallLog::IndexSession(const CallLogEntry& e) {
  if (e.session < 0) return;
  sessions_[e.session].seqs.insert(e.seq);
}

void CallLog::UnindexSession(const CallLogEntry& e) {
  if (e.session < 0) return;
  auto it = sessions_.find(e.session);
  if (it == sessions_.end()) return;
  it->second.seqs.erase(e.seq);
  if (it->second.seqs.empty()) sessions_.erase(it);
}

CallLog::EntryMap::iterator CallLog::RemoveEntry(EntryMap::iterator it) {
  bytes_ -= it->second.bytes;
  UnindexSession(it->second);
  return entries_.erase(it);
}

LogSeq CallLog::Append(CallLogEntry entry) {
  entry.seq = next_seq_++;
  entry.bytes = FootprintOf(entry);
  bytes_ += entry.bytes;
  const LogSeq seq = entry.seq;
  auto it = entries_.emplace_hint(entries_.end(), seq, std::move(entry));
  IndexSession(it->second);
  // A completed session entry arriving (synthetic or replayed-in) makes the
  // session compaction-relevant again.
  if (it->second.session >= 0 && it->second.have_ret) {
    sessions_[it->second.session].dirty = true;
  }
  return seq;
}

CallLogEntry* CallLog::Find(LogSeq seq) {
  auto it = entries_.find(seq);
  return it == entries_.end() ? nullptr : &it->second;
}

const CallLogEntry* CallLog::Lookup(LogSeq seq) const {
  auto it = entries_.find(seq);
  return it == entries_.end() ? nullptr : &it->second;
}

void CallLog::SetReturn(LogSeq seq, MsgValue ret) {
  if (CallLogEntry* e = Find(seq)) {
    bytes_ -= e->bytes;
    e->ret = std::move(ret);
    e->have_ret = true;
    e->bytes = FootprintOf(*e);
    bytes_ += e->bytes;
    if (e->session >= 0) sessions_[e->session].dirty = true;
  }
}

void CallLog::SetSession(LogSeq seq, std::int64_t session) {
  if (CallLogEntry* e = Find(seq)) {
    UnindexSession(*e);
    e->session = session;
    IndexSession(*e);
    if (session >= 0 && e->have_ret) sessions_[session].dirty = true;
  }
}

void CallLog::RecordOutbound(LogSeq seq, FunctionId fn, MsgValue ret) {
  if (CallLogEntry* e = Find(seq)) {
    bytes_ -= e->bytes;
    e->outbound.emplace_back(fn, std::move(ret));
    e->bytes = FootprintOf(*e);
    bytes_ += e->bytes;
  }
}

std::size_t CallLog::PruneSession(std::int64_t session) {
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) return 0;
  // Detach the seq list first: RemoveEntry edits the index in place.
  const SeqSet seqs = std::move(sit->second.seqs);
  sessions_.erase(sit);
  std::size_t removed = 0;
  for (LogSeq seq : seqs) {
    auto it = entries_.find(seq);
    if (it == entries_.end()) continue;
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    ++removed;
  }
  return removed;
}

void CallLog::Erase(LogSeq seq) {
  auto it = entries_.find(seq);
  if (it != entries_.end()) RemoveEntry(it);
}

std::size_t CallLog::PruneIf(
    const std::function<bool(const CallLogEntry&)>& pred) {
  scans_++;
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (pred(it->second)) {
      it = RemoveEntry(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t CallLog::PruneSessionIf(
    std::int64_t session, const std::function<bool(const CallLogEntry&)>& pred) {
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) return 0;
  // Collect first: pred sees entries while RemoveEntry mutates the index.
  std::vector<LogSeq> doomed;
  for (LogSeq seq : sit->second.seqs) {
    auto it = entries_.find(seq);
    if (it != entries_.end() && pred(it->second)) doomed.push_back(seq);
  }
  for (LogSeq seq : doomed) {
    auto it = entries_.find(seq);
    if (it != entries_.end()) RemoveEntry(it);
  }
  return doomed.size();
}

void CallLog::Clear() {
  entries_.clear();
  sessions_.clear();
  bytes_ = 0;
}

std::vector<std::int64_t> CallLog::CompactionCandidates() const {
  std::vector<std::int64_t> out;
  for (const auto& [session, state] : sessions_) {
    if (!state.dirty) continue;
    if (state.parked_at != 0 && state.seqs.size() < 2 * state.parked_at) {
      continue;  // parked: the hook already failed at a similar size
    }
    out.push_back(session);
  }
  return out;
}

const CallLog::SeqSet* CallLog::SessionSeqs(std::int64_t session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second.seqs;
}

void CallLog::MarkSessionClean(std::int64_t session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  it->second.dirty = false;
  it->second.parked_at = 0;
}

void CallLog::ParkSessionCompaction(std::int64_t session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  it->second.parked_at = it->second.seqs.size();
}

// ----------------------------------------------------------- MessageDomain

MessageDomain::MessageDomain(std::size_t arena_size,
                             mpk::DomainManager* domains)
    : arena_(arena_size, "message-domain"),
      alloc_(arena_),
      domains_(domains) {
  if (domains_ != nullptr) {
    if (auto key = domains_->AssignKey(arena_, "message-domain")) {
      key_ = *key;
    } else {
      Fatal("out of MPK keys for the message domain");
    }
  }
}

void MessageDomain::EnsureCapacity(ComponentId max_id) {
  if (static_cast<std::size_t>(max_id + 1) > inbox_.size()) {
    inbox_.resize(max_id + 1);
  }
}

void MessageDomain::BindTelemetry(obs::FlightRecorder* recorder,
                                  obs::Histogram* queue_depth) {
  recorder_ = recorder;
  queue_depth_ = queue_depth;
}

bool MessageDomain::StagePayload(Message& msg, const Args& payload,
                                 const char* what) {
  std::vector<MsgValue> staged;
  const std::vector<std::byte> wire =
      zero_copy_ ? SerializeArgsZeroCopy(payload, &staged)
                 : SerializeArgs(payload);
  void* buf = alloc_.Alloc(wire.size());
  if (buf == nullptr) {
    Fatal("message domain arena exhausted on %s (%zu bytes requested)", what,
          wire.size());
  }
  if (domains_ != nullptr) {
    domains_->CheckedWrite(msg.from, buf, wire.data(), wire.size());
  } else {
    std::memcpy(buf, wire.data(), wire.size());
    arena_.MarkDirty(buf, wire.size());
  }
  payload_bytes_copied_ += wire.size();
  msg.buf_off = static_cast<std::uint32_t>(arena_.OffsetOf(buf));
  msg.buf_len = static_cast<std::uint32_t>(wire.size());
  const bool has_views = !staged.empty();
  if (has_views) staged_views_[msg.buf_off] = std::move(staged);
  return has_views;
}

void MessageDomain::RehydrateViews(const Message& msg, Args* args) {
  auto it = staged_views_.find(msg.buf_off);
  if (it == staged_views_.end()) return;
  std::vector<MsgValue> views = std::move(it->second);
  staged_views_.erase(it);
  ReattachViews(args, std::move(views));
}

void MessageDomain::RevokeOne(const std::shared_ptr<Borrow>& b) {
  if (b == nullptr || b->revoked) return;
  b->revoked = true;
  if (domains_ != nullptr && b->mpk_grant != 0) {
    domains_->RevokeBorrow(b->mpk_grant);
  }
  b->mpk_grant = 0;
}

void MessageDomain::RevokeBorrows(std::uint64_t rpc_id) {
  auto it = borrows_.find(rpc_id);
  if (it == borrows_.end()) return;
  for (const auto& b : it->second) RevokeOne(b);
  borrows_.erase(it);
}

void MessageDomain::RevokeBorrowsInto(const mem::Arena& arena) {
  for (auto it = borrows_.begin(); it != borrows_.end();) {
    auto& vec = it->second;
    for (const auto& b : vec) {
      if (b->arena == &arena) RevokeOne(b);
    }
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [](const std::shared_ptr<Borrow>& b) {
                               return b->revoked;
                             }),
              vec.end());
    it = vec.empty() ? borrows_.erase(it) : std::next(it);
  }
  for (auto& [off, views] : staged_views_) {
    (void)off;
    for (const MsgValue& v : views) {
      if (v.is_view() && v.view().borrow != nullptr &&
          v.view().borrow->arena == &arena) {
        RevokeOne(v.view().borrow);
      }
    }
  }
}

void MessageDomain::DiscardStagedViews(const Message& msg) {
  auto it = staged_views_.find(msg.buf_off);
  if (it == staged_views_.end()) return;
  for (const MsgValue& v : it->second) {
    if (v.is_view() && v.view().borrow != nullptr) RevokeOne(v.view().borrow);
  }
  staged_views_.erase(it);
  borrows_.erase(msg.rpc_id);
}

void MessageDomain::FinalizeReplyViews(Args* args) {
  for (MsgValue& v : *args) {
    if (!v.is_view()) continue;
    const std::shared_ptr<Borrow> borrow = v.view().borrow;
    if (v.ViewUsable()) {
      // The single delivery copy of the zero-copy reply path; an unusable
      // view is left in place for the runtime to turn into an error —
      // never silently read.
      payload_bytes_copied_ += v.view().len;
      v = v.Compacted();
    }
    if (borrow != nullptr) RevokeOne(borrow);
  }
}

void MessageDomain::Push(Message msg, const Args& payload) {
  EnsureCapacity(msg.to);
  pushes_++;
  const bool has_views = StagePayload(msg, payload, "message");
  if (has_views) {
    // First hop of a call: grant each staged borrow to the callee for the
    // duration of its execution window (revoked when the handler replies).
    auto& rec = borrows_[msg.rpc_id];
    for (const MsgValue& v : staged_views_[msg.buf_off]) {
      const std::shared_ptr<Borrow>& b = v.view().borrow;
      b->borrower = msg.to;
      b->granted = true;
      if (domains_ != nullptr) {
        b->mpk_grant = domains_->GrantBorrow(b->data, b->len);
      }
      rec.push_back(b);
    }
  }
  inbox_[msg.to].push_back(msg);
  if (queue_depth_ != nullptr) {
    queue_depth_->Record(static_cast<std::int64_t>(inbox_[msg.to].size()));
  }
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kMsgPush, obs::TracePhase::kInstant,
                      msg.to, msg.fn,
                      static_cast<std::int64_t>(inbox_[msg.to].size()),
                      msg.trace);
  }
}

std::optional<std::pair<Message, Args>> MessageDomain::Pull(ComponentId to) {
  if (static_cast<std::size_t>(to) >= inbox_.size() || inbox_[to].empty()) {
    return std::nullopt;
  }
  Message msg = inbox_[to].front();
  inbox_[to].pop_front();
  std::vector<std::byte> wire(msg.buf_len);
  void* buf = arena_.AtOffset(msg.buf_off);
  if (domains_ != nullptr) {
    domains_->CheckedRead(to, buf, wire.data(), wire.size());
  } else {
    std::memcpy(wire.data(), buf, wire.size());
  }
  // Buffer no longer needed once consumed; logs hold their own copy.
  alloc_.Free(buf);
  payload_bytes_copied_ += wire.size();
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kMsgPull, obs::TracePhase::kInstant,
                      to, msg.fn, static_cast<std::int64_t>(msg.rpc_id),
                      msg.trace);
  }
  Args args = DeserializeArgs(wire);
  RehydrateViews(msg, &args);
  return std::make_pair(msg, std::move(args));
}

void MessageDomain::PushReply(Message msg, const Args& payload) {
  pushes_++;
  StagePayload(msg, payload, "reply");
  msg.kind = Message::Kind::kReply;
  replies_.push_back(msg);
  if (recorder_ != nullptr) {
    recorder_->Record(obs::EventKind::kReplyPush, obs::TracePhase::kInstant,
                      msg.from, msg.fn,
                      static_cast<std::int64_t>(msg.rpc_id), msg.trace);
  }
}

std::optional<std::pair<Message, Args>> MessageDomain::PullReply() {
  if (replies_.empty()) return std::nullopt;
  Message msg = replies_.front();
  replies_.pop_front();
  std::vector<std::byte> wire(msg.buf_len);
  void* buf = arena_.AtOffset(msg.buf_off);
  // The message thread drains replies; it has full access to the domain.
  std::memcpy(wire.data(), buf, wire.size());
  alloc_.Free(buf);
  payload_bytes_copied_ += wire.size();
  Args args = DeserializeArgs(wire);
  RehydrateViews(msg, &args);
  FinalizeReplyViews(&args);
  return std::make_pair(msg, std::move(args));
}

std::size_t MessageDomain::PullReplies(
    std::size_t max, std::vector<std::pair<Message, Args>>* out) {
  out->clear();
  while (out->size() < max && !replies_.empty()) {
    Message msg = replies_.front();
    replies_.pop_front();
    std::vector<std::byte> wire(msg.buf_len);
    void* buf = arena_.AtOffset(msg.buf_off);
    std::memcpy(wire.data(), buf, wire.size());
    alloc_.Free(buf);
    payload_bytes_copied_ += wire.size();
    Args args = DeserializeArgs(wire);
    RehydrateViews(msg, &args);
    FinalizeReplyViews(&args);
    out->emplace_back(msg, std::move(args));
  }
  return out->size();
}

bool MessageDomain::HasMessage(ComponentId to) const {
  return static_cast<std::size_t>(to) < inbox_.size() && !inbox_[to].empty();
}

std::size_t MessageDomain::QueueDepth(ComponentId to) const {
  if (static_cast<std::size_t>(to) >= inbox_.size()) return 0;
  return inbox_[to].size();
}

ComponentId MessageDomain::OldestPendingDestination() const {
  ComponentId best = kComponentNone;
  Nanos best_time = 0;
  for (std::size_t id = 0; id < inbox_.size(); ++id) {
    if (inbox_[id].empty()) continue;
    const Nanos t = inbox_[id].front().enqueued_at;
    if (best == kComponentNone || t < best_time) {
      best = static_cast<ComponentId>(id);
      best_time = t;
    }
  }
  return best;
}

void MessageDomain::DropQueued(ComponentId to) {
  if (static_cast<std::size_t>(to) >= inbox_.size()) return;
  for (const Message& m : inbox_[to]) {
    DiscardStagedViews(m);
    alloc_.Free(arena_.AtOffset(m.buf_off));
  }
  inbox_[to].clear();
}

std::vector<std::pair<Message, Args>> MessageDomain::DrainQueued(
    ComponentId to) {
  std::vector<std::pair<Message, Args>> out;
  if (static_cast<std::size_t>(to) >= inbox_.size()) return out;
  out.reserve(inbox_[to].size());
  while (auto pulled = Pull(to)) out.push_back(std::move(*pulled));
  return out;
}

std::vector<Message> MessageDomain::DropQueuedFrom(ComponentId from) {
  std::vector<Message> dropped;
  for (auto& inbox : inbox_) {
    for (auto it = inbox.begin(); it != inbox.end();) {
      if (it->from == from) {
        DiscardStagedViews(*it);
        alloc_.Free(arena_.AtOffset(it->buf_off));
        dropped.push_back(*it);
        it = inbox.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::size_t MessageDomain::TotalLogBytes() const {
  std::size_t total = 0;
  for (const auto& [id, log] : logs_) {
    (void)id;
    total += log.bytes();
  }
  return total;
}

std::size_t MessageDomain::TotalLogEntries() const {
  std::size_t total = 0;
  for (const auto& [id, log] : logs_) {
    (void)id;
    total += log.size();
  }
  return total;
}

std::uint64_t MessageDomain::TotalLogScans() const {
  std::uint64_t total = 0;
  for (const auto& [id, log] : logs_) {
    (void)id;
    total += log.scans();
  }
  return total;
}

}  // namespace vampos::msg
