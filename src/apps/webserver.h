// WebServer: the Nginx stand-in.
//
// Serves static files from the 9P-backed filesystem over persistent
// connections using the paper's request shape: "GET /path\n" -> "HTTP/1.0
// 200\n\n<body>". Connections are long-lived (siege keeps its 100 client
// threads connected); surviving component rejuvenation without dropping them
// is the Table V experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/posix.h"

namespace vampos::apps {

class WebServer {
 public:
  WebServer(Posix& px, std::uint16_t port, std::string docroot);

  /// socket/bind/listen. Must run on an app fiber.
  bool Setup();

  /// One pump: accept pending connections, serve readable requests.
  /// Returns true if any progress was made.
  bool PumpOnce();

  /// Run as an app-fiber body: pump until *stop, parking when idle.
  void RunLoop(const bool* stop);

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }

 private:
  void ServeRequest(std::int64_t fd, const std::string& request);

  Posix& px_;
  std::uint16_t port_;
  std::string docroot_;
  std::int64_t listen_fd_ = -1;
  struct Conn {
    std::int64_t fd;
    std::string pending;  // partial request bytes
  };
  std::vector<Conn> conns_;
  std::uint64_t served_ = 0;
};

}  // namespace vampos::apps
