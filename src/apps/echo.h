// EchoServer: the paper's fourth application — returns every received byte.
// Clients close their connection after each exchange, so its log footprint
// stays near zero (the session-aware shrinking removes everything).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/posix.h"

namespace vampos::apps {

class EchoServer {
 public:
  EchoServer(Posix& px, std::uint16_t port);

  bool Setup();
  bool PumpOnce();
  void RunLoop(const bool* stop);
  [[nodiscard]] std::uint64_t messages_echoed() const { return echoed_; }

 private:
  Posix& px_;
  std::uint16_t port_;
  std::int64_t listen_fd_ = -1;
  std::vector<std::int64_t> conns_;
  std::uint64_t echoed_ = 0;
};

}  // namespace vampos::apps
