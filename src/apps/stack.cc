#include "apps/stack.h"

#include "apps/posix.h"
#include "uk/lwip/lwip.h"
#include "uk/netdev/netdev.h"
#include "uk/ninep/ninep.h"
#include "uk/ramfs/ramfs.h"
#include "uk/procinfo/procinfo.h"
#include "uk/vfs/vfs.h"

namespace vampos::apps {

StackInfo BuildStack(core::Runtime& rt, uk::Platform& platform,
                     uk::HostRingView& host_rings, const StackSpec& spec) {
  StackInfo info;
  info.host_rings = &host_rings;

  info.process = rt.AddComponent(std::make_unique<uk::ProcessComponent>());
  if (spec.with_sysinfo) {
    info.sysinfo = rt.AddComponent(std::make_unique<uk::SysinfoComponent>());
  }
  info.user = rt.AddComponent(std::make_unique<uk::UserComponent>());
  info.timer = rt.AddComponent(
      std::make_unique<uk::TimerComponent>(rt.options().clock));
  info.virtio = rt.AddComponent(
      std::make_unique<uk::VirtioComponent>(&platform, &host_rings));
  if (spec.with_fs) {
    info.ninep = spec.ramfs
                     ? rt.AddComponent(std::make_unique<uk::RamFsComponent>())
                     : rt.AddComponent(
                           std::make_unique<uk::NinePfsComponent>());
  }
  if (spec.with_net) {
    info.netdev = rt.AddComponent(std::make_unique<uk::NetdevComponent>());
    info.lwip = rt.AddComponent(std::make_unique<uk::LwipComponent>());
  }
  info.vfs = rt.AddComponent(std::make_unique<uk::VfsComponent>(
      spec.ramfs ? "ramfs" : "9pfs"));

  // Dependency graph (paper §V-C: "VFS passes messages to two components
  // (9PFS and LWIP), while LWIP communicates with VFS and NETDEV").
  rt.AddAppDependency(info.vfs);
  rt.AddAppDependency(info.process);
  if (info.sysinfo != kComponentNone) rt.AddAppDependency(info.sysinfo);
  rt.AddAppDependency(info.user);
  rt.AddAppDependency(info.timer);
  if (info.ninep != kComponentNone) {
    rt.AddDependency(info.vfs, info.ninep);
    rt.AddDependency(info.ninep, info.virtio);
  }
  if (info.lwip != kComponentNone) {
    rt.AddDependency(info.vfs, info.lwip);
    rt.AddDependency(info.lwip, info.netdev);
    rt.AddDependency(info.netdev, info.virtio);
  }
  rt.AddDependency(info.vfs, info.timer);
  rt.AddDependency(info.vfs, info.user);

  if (spec.merge_fs && info.ninep != kComponentNone) {
    rt.Merge({info.vfs, info.ninep});
  }
  if (spec.merge_net && info.lwip != kComponentNone) {
    rt.Merge({info.lwip, info.netdev});
  }
  return info;
}

std::int64_t BootAndMount(core::Runtime& rt) {
  rt.Boot();
  if (!rt.TryLookup("9pfs", "mount").has_value() &&
      !rt.TryLookup("ramfs", "mount").has_value()) {
    return 0;
  }
  std::int64_t result = -1;
  Posix px(rt);
  rt.SpawnApp("mount", [&] { result = px.Mount("/"); });
  rt.RunUntilIdle();
  return result;
}

}  // namespace vampos::apps
