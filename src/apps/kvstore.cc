#include "apps/kvstore.h"

#include <cstdlib>
#include <sstream>

namespace vampos::apps {

KvStore::KvStore(Posix& px, std::string aof_path, bool aof_enabled)
    : px_(px), aof_path_(std::move(aof_path)), aof_enabled_(aof_enabled) {}

bool KvStore::OpenAof() {
  if (!aof_enabled_) return true;
  aof_fd_ = px_.Open(aof_path_, Posix::kOCreat | Posix::kOAppend);
  return aof_fd_ >= 0;
}

void KvStore::CloseAof() {
  if (aof_fd_ >= 0) px_.Close(aof_fd_);
  aof_fd_ = -1;
}

std::int64_t KvStore::Set(const std::string& key, const std::string& value) {
  if (aof_enabled_) {
    if (aof_fd_ < 0) return ToWire(Status::Error(Errno::kBadF));
    const std::int64_t n = px_.Write(aof_fd_, "S " + key + " " + value + "\n");
    if (n < 0) return n;
    px_.Fsync(aof_fd_);  // synchronous persistence, as in the paper
  }
  auto [it, inserted] = table_.insert_or_assign(key, value);
  (void)it;
  if (inserted) mem_bytes_ += key.size() + value.size() + 64;
  return 0;
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::int64_t KvStore::Del(const std::string& key) {
  auto it = table_.find(key);
  if (it == table_.end()) return 0;
  if (aof_enabled_ && aof_fd_ >= 0) {
    px_.Write(aof_fd_, "D " + key + "\n");
    px_.Fsync(aof_fd_);
  }
  mem_bytes_ -= std::min(mem_bytes_, key.size() + it->second.size() + 64);
  table_.erase(it);
  return 1;
}

std::int64_t KvStore::Incr(const std::string& key) {
  std::int64_t v = 0;
  if (auto cur = Get(key)) {
    char* end = nullptr;
    v = std::strtoll(cur->c_str(), &end, 10);
    if (end == cur->c_str() || *end != '\0') {
      return ToWire(Status::Error(Errno::kInval, "not an integer"));
    }
  }
  ++v;
  const std::int64_t rc = Set(key, std::to_string(v));
  return rc == 0 ? v : rc;
}

std::size_t KvStore::LoadAof() {
  table_.clear();
  mem_bytes_ = 0;
  const std::int64_t fd = px_.Open(aof_path_);
  if (fd < 0) return 0;
  std::string content;
  while (true) {
    IoResult chunk = px_.Read(fd, 65536);
    if (!chunk.ok() || chunk.data.empty()) break;
    content += chunk.data;
  }
  px_.Close(fd);
  std::istringstream in(content);
  std::string line;
  std::size_t applied = 0;
  while (std::getline(in, line)) {
    std::istringstream rec(line);
    std::string op, k, v;
    rec >> op >> k >> v;
    if (op == "S") {
      if (table_.insert_or_assign(k, v).second) {
        mem_bytes_ += k.size() + v.size() + 64;
      }
      applied++;
    } else if (op == "D") {
      table_.erase(k);
      applied++;
    }
  }
  return applied;
}

std::string KvStore::HandleCommand(const std::string& line) {
  std::istringstream in(line);
  std::string verb, k, v;
  in >> verb;
  if (verb == "SET") {
    in >> k >> v;
    return Set(k, v) == 0 ? "+OK\n" : "-ERR\n";
  }
  if (verb == "GET") {
    in >> k;
    auto val = Get(k);
    return val.has_value() ? "$" + *val + "\n" : "$-1\n";
  }
  if (verb == "DEL") {
    in >> k;
    return ":" + std::to_string(Del(k)) + "\n";
  }
  if (verb == "INCR") {
    in >> k;
    const std::int64_t v = Incr(k);
    return v < 0 ? "-ERR not an integer\n" : ":" + std::to_string(v) + "\n";
  }
  if (verb == "EXISTS") {
    in >> k;
    return Exists(k) ? ":1\n" : ":0\n";
  }
  if (verb == "PING") return "+PONG\n";
  if (verb == "DBSIZE") return ":" + std::to_string(table_.size()) + "\n";
  return "-ERR unknown\n";
}

bool KvStore::Setup(std::uint16_t port) {
  listen_fd_ = px_.Socket();
  if (listen_fd_ < 0) return false;
  if (px_.Bind(listen_fd_, port) < 0) return false;
  return px_.Listen(listen_fd_) >= 0;
}

bool KvStore::PumpOnce() {
  bool progress = false;
  while (true) {
    const std::int64_t fd = px_.Accept(listen_fd_);
    if (fd < 0) break;
    conns_.push_back(Conn{fd, {}});
    progress = true;
  }
  for (auto it = conns_.begin(); it != conns_.end();) {
    IoResult r = px_.Recv(it->fd, 4096);
    if (r.ok() && !r.data.empty()) {
      it->pending += r.data;
      std::size_t nl;
      while ((nl = it->pending.find('\n')) != std::string::npos) {
        px_.Send(it->fd, HandleCommand(it->pending.substr(0, nl)));
        served_++;
        it->pending.erase(0, nl + 1);
      }
      progress = true;
      ++it;
    } else if (r.closed()) {
      px_.Close(it->fd);
      it = conns_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

void KvStore::RunLoop(const bool* stop) {
  while (!*stop) {
    if (!PumpOnce()) px_.runtime().ParkApp();
  }
  for (const Conn& c : conns_) px_.Close(c.fd);
  conns_.clear();
}

}  // namespace vampos::apps
