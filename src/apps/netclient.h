// SimClient: host-side mini-TCP peer, standing in for siege / redis-benchmark
// / external web clients. It talks to the unikernel's LWIP through the
// HostNet queues, tracks per-connection sequence numbers, retransmits lost
// SYNs, and — crucially for the paper's Table V — observes RSTs and sequence
// discontinuities as *lost connections*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uk/platform.h"

namespace vampos::apps {

class SimClient {
 public:
  SimClient(uk::HostNet* net, std::uint16_t server_port);

  /// Opens a connection (sends SYN). Returns a handle.
  int Connect();
  /// Processes all pending server->client frames; retransmits stale SYNs.
  void Poll();
  /// Sends request bytes on an established connection.
  void Send(int h, const std::string& data);
  /// Takes everything received so far on h.
  std::string TakeReceived(int h);
  [[nodiscard]] bool Established(int h) const {
    return conns_[h].state == ConnState::kEstablished;
  }
  /// Connection was reset / sequence-broken by the server side.
  [[nodiscard]] bool Broken(int h) const {
    return conns_[h].state == ConnState::kBroken;
  }
  [[nodiscard]] bool Closed(int h) const {
    return conns_[h].state == ConnState::kClosed;
  }
  void Close(int h);

  [[nodiscard]] int connections() const {
    return static_cast<int>(conns_.size());
  }
  [[nodiscard]] std::uint64_t resets_seen() const { return resets_; }

 private:
  enum class ConnState : std::uint8_t {
    kSynSent,
    kEstablished,
    kClosed,
    kBroken,
  };
  struct Conn {
    ConnState state = ConnState::kSynSent;
    std::uint16_t local_port = 0;
    std::uint32_t snd_seq = 0;
    std::uint32_t rcv_ack = 0;  // 0 until SYN-ACK seen
    std::string rcvbuf;
    int polls_since_syn = 0;
  };

  void SendSyn(Conn& c);
  Conn* ByPort(std::uint16_t port);

  uk::HostNet* net_;
  std::uint16_t server_port_;
  std::vector<Conn> conns_;
  std::uint64_t resets_ = 0;

  static constexpr std::uint32_t kClientIsq = 5000;
  static constexpr int kSynRetryPolls = 8;
  // Process-wide ephemeral-port allocator: several SimClients can share one
  // HostNet tap without colliding.
  static std::uint16_t next_port_;
};

}  // namespace vampos::apps
