#include "apps/minidb.h"

#include <sstream>

namespace vampos::apps {

MiniDb::MiniDb(Posix& px, std::string journal_path, bool fsync_each)
    : px_(px), path_(std::move(journal_path)), fsync_each_(fsync_each) {}

bool MiniDb::Open() {
  fd_ = px_.Open(path_, Posix::kOCreat | Posix::kOAppend);
  return fd_ >= 0;
}

void MiniDb::Close() {
  if (fd_ >= 0) px_.Close(fd_);
  fd_ = -1;
}

std::int64_t MiniDb::Insert(const std::string& key, const std::string& value) {
  if (fd_ < 0) return ToWire(Status::Error(Errno::kBadF));
  const std::string rec = "I " + key + " " + value + "\n";
  const std::int64_t n = px_.Write(fd_, rec);
  if (n < 0) return n;
  if (fsync_each_) px_.Fsync(fd_);
  table_[key] = value;
  return 0;
}

std::optional<std::string> MiniDb::Select(const std::string& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::int64_t MiniDb::Delete(const std::string& key) {
  if (fd_ < 0) return ToWire(Status::Error(Errno::kBadF));
  const std::int64_t n = px_.Write(fd_, "D " + key + "\n");
  if (n < 0) return n;
  if (fsync_each_) px_.Fsync(fd_);
  table_.erase(key);
  return 0;
}

std::string MiniDb::Exec(const std::string& sql) {
  std::istringstream in(sql);
  std::string verb;
  in >> verb;
  if (verb == "INSERT") {
    std::string k, v;
    in >> k >> v;
    return Insert(k, v) == 0 ? "OK" : "ERR";
  }
  if (verb == "SELECT") {
    std::string k;
    in >> k;
    auto v = Select(k);
    return v.has_value() ? *v : "(null)";
  }
  if (verb == "DELETE") {
    std::string k;
    in >> k;
    return Delete(k) == 0 ? "OK" : "ERR";
  }
  if (verb == "UPDATE") {  // UPDATE k v — errors if the row is absent
    std::string k, v;
    in >> k >> v;
    if (!table_.contains(k)) return "ERR no such row";
    return Insert(k, v) == 0 ? "OK" : "ERR";
  }
  if (verb == "KEYS") {  // newline-separated key listing
    std::string out;
    for (const auto& [k, v] : table_) {
      (void)v;
      out += k;
      out += '\n';
    }
    return out;
  }
  if (verb == "COUNT") return std::to_string(Count());
  return "ERR syntax";
}

std::size_t MiniDb::ReplayJournal() {
  table_.clear();
  const std::int64_t fd = px_.Open(path_);
  if (fd < 0) return 0;
  std::string content;
  while (true) {
    IoResult chunk = px_.Read(fd, 65536);
    if (!chunk.ok() || chunk.data.empty()) break;
    content += chunk.data;
  }
  px_.Close(fd);
  std::istringstream in(content);
  std::string line;
  std::size_t applied = 0;
  while (std::getline(in, line)) {
    std::istringstream rec(line);
    std::string op, k, v;
    rec >> op >> k;
    if (op == "I") {
      rec >> v;
      table_[k] = v;
      applied++;
    } else if (op == "D") {
      table_.erase(k);
      applied++;
    }
  }
  return applied;
}

}  // namespace vampos::apps
