#include "apps/echo.h"

#include <algorithm>

namespace vampos::apps {

EchoServer::EchoServer(Posix& px, std::uint16_t port)
    : px_(px), port_(port) {}

bool EchoServer::Setup() {
  listen_fd_ = px_.Socket();
  if (listen_fd_ < 0) return false;
  if (px_.Bind(listen_fd_, port_) < 0) return false;
  return px_.Listen(listen_fd_) >= 0;
}

bool EchoServer::PumpOnce() {
  bool progress = false;
  while (true) {
    const std::int64_t fd = px_.Accept(listen_fd_);
    if (fd < 0) break;
    conns_.push_back(fd);
    progress = true;
  }
  for (auto it = conns_.begin(); it != conns_.end();) {
    IoResult r = px_.Recv(*it, 4096);
    if (r.ok() && !r.data.empty()) {
      px_.Send(*it, r.data);
      echoed_++;
      progress = true;
      ++it;
    } else if (r.closed()) {
      px_.Close(*it);
      it = conns_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

void EchoServer::RunLoop(const bool* stop) {
  while (!*stop) {
    if (!PumpOnce()) px_.runtime().ParkApp();
  }
  for (std::int64_t fd : conns_) px_.Close(fd);
  conns_.clear();
}

}  // namespace vampos::apps
