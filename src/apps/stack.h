// Stack assembly: builds the per-application component sets from §VI of the
// paper, wires the dependency graph for dependency-aware scheduling, and
// applies the FSm/NETm merges.
//
//   SQLite: PROCESS SYSINFO USER TIMER VFS 9PFS VIRTIO            (7)
//   Nginx : PROCESS SYSINFO USER NETDEV TIMER VFS 9PFS LWIP VIRTIO (9)
//   Redis : same as Nginx                                          (9)
//   Echo  : PROCESS USER NETDEV TIMER VFS LWIP VIRTIO              (7)
#pragma once

#include <memory>

#include "core/runtime.h"
#include "uk/platform.h"
#include "uk/virtio/virtio.h"

namespace vampos::apps {

struct StackSpec {
  bool with_sysinfo = true;
  bool with_fs = true;    // filesystem backend (VFS is always present)
  bool ramfs = false;     // in-unikernel RAMFS instead of host-backed 9PFS
  bool with_net = false;  // LWIP + NETDEV
  bool merge_fs = false;  // VampOS-FSm: merge VFS+9PFS
  bool merge_net = false; // VampOS-NETm: merge LWIP+NETDEV

  static StackSpec Sqlite() {
    StackSpec s;
    s.with_net = false;
    return s;
  }
  static StackSpec Nginx() {
    StackSpec s;
    s.with_net = true;
    return s;
  }
  static StackSpec Redis() { return Nginx(); }
  static StackSpec Echo() {
    StackSpec s;
    s.with_sysinfo = false;
    s.with_fs = false;
    s.with_net = true;
    return s;
  }
};

struct StackInfo {
  ComponentId process = kComponentNone;
  ComponentId sysinfo = kComponentNone;
  ComponentId user = kComponentNone;
  ComponentId timer = kComponentNone;
  ComponentId vfs = kComponentNone;
  ComponentId ninep = kComponentNone;
  ComponentId lwip = kComponentNone;
  ComponentId netdev = kComponentNone;
  ComponentId virtio = kComponentNone;
  uk::HostRingView* host_rings = nullptr;  // owned by the harness caller
};

/// Adds all components for `spec` to `rt`, wires dependencies and merges.
/// Does NOT call rt.Boot() — the caller may inject faults or adjust options
/// first. `host_rings` must outlive the runtime.
StackInfo BuildStack(core::Runtime& rt, uk::Platform& platform,
                     uk::HostRingView& host_rings, const StackSpec& spec);

/// Boot + mount the 9P root (when the stack has a filesystem). Runs the
/// mount on a temporary app fiber. Returns the mount status.
std::int64_t BootAndMount(core::Runtime& rt);

}  // namespace vampos::apps
