// MiniDb: the SQLite stand-in.
//
// A relational-ish row store with a tiny SQL front end (INSERT / SELECT /
// DELETE / COUNT) that persists every mutation to a write-ahead journal file
// through VFS/9PFS, exactly the I/O pattern of the paper's SQLite workload
// (10,000 1-byte inserts). The in-memory table lives in application memory
// and therefore survives unikernel component reboots; the journal allows a
// cold rebuild after a *full* reboot (the paper's baseline).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "apps/posix.h"

namespace vampos::apps {

class MiniDb {
 public:
  MiniDb(Posix& px, std::string journal_path, bool fsync_each = false);

  /// Opens (creating if needed) the journal. Must run on an app fiber.
  bool Open();
  void Close();

  std::int64_t Insert(const std::string& key, const std::string& value);
  std::optional<std::string> Select(const std::string& key) const;
  std::int64_t Delete(const std::string& key);
  [[nodiscard]] std::size_t Count() const { return table_.size(); }

  /// Tiny SQL front end: "INSERT k v" / "SELECT k" / "DELETE k" / "COUNT".
  std::string Exec(const std::string& sql);

  /// Cold rebuild from the journal (full-reboot recovery path).
  std::size_t ReplayJournal();

 private:
  Posix& px_;
  std::string path_;
  bool fsync_each_;
  std::int64_t fd_ = -1;
  std::map<std::string, std::string> table_;
};

}  // namespace vampos::apps
