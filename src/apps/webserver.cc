#include "apps/webserver.h"

#include <algorithm>

namespace vampos::apps {

WebServer::WebServer(Posix& px, std::uint16_t port, std::string docroot)
    : px_(px), port_(port), docroot_(std::move(docroot)) {}

bool WebServer::Setup() {
  listen_fd_ = px_.Socket();
  if (listen_fd_ < 0) return false;
  if (px_.Bind(listen_fd_, port_) < 0) return false;
  return px_.Listen(listen_fd_) >= 0;
}

void WebServer::ServeRequest(std::int64_t fd, const std::string& request) {
  // "GET /path" -> 200 with file body; "HEAD /path" -> headers only; 404
  // otherwise.
  std::string path;
  bool head = false;
  if (request.rfind("GET ", 0) == 0) {
    path = request.substr(4);
  } else if (request.rfind("HEAD ", 0) == 0) {
    path = request.substr(5);
    head = true;
  }
  while (!path.empty() && (path.back() == '\n' || path.back() == '\r')) {
    path.pop_back();
  }
  std::string body;
  bool found = false;
  if (!path.empty()) {
    const std::int64_t ffd = px_.Open(docroot_ + path);
    if (ffd >= 0) {
      while (true) {
        IoResult chunk = px_.Read(ffd, 4096);
        if (!chunk.ok() || chunk.data.empty()) break;
        body += chunk.data;
      }
      px_.Close(ffd);
      found = true;
    }
  }
  std::string response;
  if (!found) {
    response = "HTTP/1.0 404\n\n";
  } else if (head) {
    response =
        "HTTP/1.0 200\nContent-Length: " + std::to_string(body.size()) +
        "\n\n";
  } else {
    response = "HTTP/1.0 200\n\n" + body;
  }
  px_.Send(fd, response);
  served_++;
}

bool WebServer::PumpOnce() {
  bool progress = false;
  // Accept every pending connection.
  while (true) {
    const std::int64_t fd = px_.Accept(listen_fd_);
    if (fd < 0) break;
    conns_.push_back(Conn{fd, {}});
    progress = true;
  }
  // Serve whatever is readable. One request per line; keep-alive.
  for (auto it = conns_.begin(); it != conns_.end();) {
    IoResult r = px_.Recv(it->fd, 4096);
    if (r.ok() && !r.data.empty()) {
      it->pending += r.data;
      std::size_t nl;
      while ((nl = it->pending.find('\n')) != std::string::npos) {
        ServeRequest(it->fd, it->pending.substr(0, nl));
        it->pending.erase(0, nl + 1);
      }
      progress = true;
      ++it;
    } else if (r.closed()) {
      px_.Close(it->fd);
      it = conns_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

void WebServer::RunLoop(const bool* stop) {
  while (!*stop) {
    if (!PumpOnce()) px_.runtime().ParkApp();
  }
  for (const Conn& c : conns_) px_.Close(c.fd);
  conns_.clear();
}

}  // namespace vampos::apps
