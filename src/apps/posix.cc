#include "apps/posix.h"

namespace vampos::apps {

using msg::MsgValue;

namespace {
std::int64_t Bound(core::Runtime& rt, const char* comp, const char* fn) {
  return rt.TryLookup(comp, fn).value_or(-1);
}
}  // namespace

Posix::Posix(core::Runtime& rt) : rt_(rt) {
  fn_mount_ = Bound(rt, "vfs", "mount");
  fn_mkdir_ = Bound(rt, "vfs", "mkdir");
  fn_dup_ = Bound(rt, "vfs", "dup");
  fn_unlink_ = Bound(rt, "vfs", "unlink");
  fn_rename_ = Bound(rt, "vfs", "rename");
  fn_ftruncate_ = Bound(rt, "vfs", "ftruncate");
  fn_readdir_ = Bound(rt, "vfs", "readdir");
  fn_stat_path_ = Bound(rt, "vfs", "stat_path");
  fn_open_ = Bound(rt, "vfs", "open");
  fn_create_ = Bound(rt, "vfs", "create");
  fn_read_ = Bound(rt, "vfs", "read");
  fn_write_ = Bound(rt, "vfs", "write");
  fn_pread_ = Bound(rt, "vfs", "pread");
  fn_pwrite_ = Bound(rt, "vfs", "pwrite");
  fn_lseek_ = Bound(rt, "vfs", "lseek");
  fn_fsync_ = Bound(rt, "vfs", "fsync");
  fn_close_ = Bound(rt, "vfs", "close");
  fn_fcntl_ = Bound(rt, "vfs", "fcntl");
  fn_pipe_ = Bound(rt, "vfs", "pipe");
  fn_socket_ = Bound(rt, "vfs", "socket");
  fn_bind_ = Bound(rt, "vfs", "bind");
  fn_listen_ = Bound(rt, "vfs", "listen");
  fn_accept_ = Bound(rt, "vfs", "accept");
  fn_connect_ = Bound(rt, "vfs", "connect");
  fn_socket_dgram_ = Bound(rt, "vfs", "socket_dgram");
  fn_sendto_ = Bound(rt, "vfs", "sendto");
  fn_recvfrom_ = Bound(rt, "vfs", "recvfrom");
  fn_last_peer_ = Bound(rt, "vfs", "last_peer");
  fn_getpid_ = Bound(rt, "process", "getpid");
  fn_getuid_ = Bound(rt, "user", "getuid");
  fn_uname_ = Bound(rt, "sysinfo", "uname");
  fn_time_ = Bound(rt, "timer", "time_ms");
}

IoResult Posix::ToIo(MsgValue v) {
  if (v.is_bytes()) return IoResult{v.bytes(), 0};
  return IoResult{{}, v.i64()};
}

std::int64_t Posix::Mount(const std::string& path) {
  return rt_.Call(fn_mount_, {MsgValue(path)}).i64();
}
std::int64_t Posix::Mkdir(const std::string& path) {
  return rt_.Call(fn_mkdir_, {MsgValue(path)}).i64();
}
std::int64_t Posix::Open(const std::string& path, std::int64_t flags) {
  return rt_.Call(fn_open_, {MsgValue(path), MsgValue(flags)}).i64();
}
std::int64_t Posix::Create(const std::string& path) {
  return rt_.Call(fn_create_, {MsgValue(path)}).i64();
}
IoResult Posix::Read(std::int64_t fd, std::int64_t len) {
  return ToIo(rt_.Call(fn_read_, {MsgValue(fd), MsgValue(len)}));
}
std::int64_t Posix::Write(std::int64_t fd, const std::string& data) {
  return rt_.Call(fn_write_, {MsgValue(fd), MsgValue(data)}).i64();
}
IoResult Posix::Pread(std::int64_t fd, std::int64_t len, std::int64_t off) {
  return ToIo(
      rt_.Call(fn_pread_, {MsgValue(fd), MsgValue(len), MsgValue(off)}));
}
std::int64_t Posix::Pwrite(std::int64_t fd, const std::string& data,
                           std::int64_t off) {
  return rt_.Call(fn_pwrite_, {MsgValue(fd), MsgValue(data), MsgValue(off)})
      .i64();
}
std::int64_t Posix::Lseek(std::int64_t fd, std::int64_t off,
                          std::int64_t whence) {
  return rt_.Call(fn_lseek_, {MsgValue(fd), MsgValue(off), MsgValue(whence)})
      .i64();
}
std::int64_t Posix::Fsync(std::int64_t fd) {
  return rt_.Call(fn_fsync_, {MsgValue(fd)}).i64();
}
std::int64_t Posix::Close(std::int64_t fd) {
  return rt_.Call(fn_close_, {MsgValue(fd)}).i64();
}
std::int64_t Posix::Fcntl(std::int64_t fd, std::int64_t cmd,
                          std::int64_t arg) {
  return rt_.Call(fn_fcntl_, {MsgValue(fd), MsgValue(cmd), MsgValue(arg)})
      .i64();
}
std::int64_t Posix::Pipe() { return rt_.Call(fn_pipe_, {}).i64(); }
std::int64_t Posix::Dup(std::int64_t fd) {
  return rt_.Call(fn_dup_, {MsgValue(fd)}).i64();
}
std::int64_t Posix::Unlink(const std::string& path) {
  return rt_.Call(fn_unlink_, {MsgValue(path)}).i64();
}
std::int64_t Posix::Rename(const std::string& from, const std::string& to) {
  return rt_.Call(fn_rename_, {MsgValue(from), MsgValue(to)}).i64();
}
std::int64_t Posix::Ftruncate(std::int64_t fd, std::int64_t len) {
  return rt_.Call(fn_ftruncate_, {MsgValue(fd), MsgValue(len)}).i64();
}
IoResult Posix::Readdir(const std::string& path) {
  return ToIo(rt_.Call(fn_readdir_, {MsgValue(path)}));
}
std::int64_t Posix::StatPath(const std::string& path) {
  return rt_.Call(fn_stat_path_, {MsgValue(path)}).i64();
}

std::int64_t Posix::Socket() { return rt_.Call(fn_socket_, {}).i64(); }
std::int64_t Posix::Bind(std::int64_t fd, std::int64_t port) {
  return rt_.Call(fn_bind_, {MsgValue(fd), MsgValue(port)}).i64();
}
std::int64_t Posix::Listen(std::int64_t fd, std::int64_t backlog) {
  return rt_.Call(fn_listen_, {MsgValue(fd), MsgValue(backlog)}).i64();
}
std::int64_t Posix::Accept(std::int64_t fd) {
  return rt_.Call(fn_accept_, {MsgValue(fd)}).i64();
}
std::int64_t Posix::Connect(std::int64_t fd, std::int64_t port) {
  return rt_.Call(fn_connect_, {MsgValue(fd), MsgValue(port)}).i64();
}

std::int64_t Posix::SocketDgram() {
  return rt_.Call(fn_socket_dgram_, {}).i64();
}
std::int64_t Posix::SendTo(std::int64_t fd, std::int64_t port,
                           const std::string& data) {
  return rt_.Call(fn_sendto_, {MsgValue(fd), MsgValue(port), MsgValue(data)})
      .i64();
}
IoResult Posix::RecvFrom(std::int64_t fd) {
  return ToIo(rt_.Call(fn_recvfrom_, {MsgValue(fd)}));
}
std::int64_t Posix::LastPeer(std::int64_t fd) {
  return rt_.Call(fn_last_peer_, {MsgValue(fd)}).i64();
}

std::int64_t Posix::Getpid() { return rt_.Call(fn_getpid_, {}).i64(); }
std::int64_t Posix::Getuid() { return rt_.Call(fn_getuid_, {}).i64(); }
std::string Posix::Uname() { return rt_.Call(fn_uname_, {}).bytes(); }
std::int64_t Posix::TimeMs() { return rt_.Call(fn_time_, {}).i64(); }

}  // namespace vampos::apps
