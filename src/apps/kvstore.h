// KvStore: the Redis stand-in.
//
// In-memory key-value store whose table lives in *application* memory — the
// memory VampOS preserves across unikernel component reboots. With AOF
// (Append Only File) enabled, every SET is appended to a journal and
// fsync()ed through VFS/9PFS, matching the paper's Redis configuration
// ("preserves volatile KVs into storage synchronously via fsync()").
//
// Serves the redis-benchmark-shaped wire protocol over LWIP:
//   "SET <k> <v>\n" -> "+OK\n"        "GET <k>\n" -> "$<v>\n" | "$-1\n"
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/posix.h"

namespace vampos::apps {

class KvStore {
 public:
  KvStore(Posix& px, std::string aof_path, bool aof_enabled);

  bool OpenAof();  // no-op success when AOF disabled
  void CloseAof();

  std::int64_t Set(const std::string& key, const std::string& value);
  std::optional<std::string> Get(const std::string& key) const;
  /// Removes a key; returns 1 if it existed (logged to the AOF).
  std::int64_t Del(const std::string& key);
  /// Atomic integer increment (missing key counts as 0); AOF-logged as the
  /// resulting SET. Returns the new value, or kInval for non-numeric.
  std::int64_t Incr(const std::string& key);
  [[nodiscard]] bool Exists(const std::string& key) const {
    return table_.contains(key);
  }
  [[nodiscard]] std::size_t Size() const { return table_.size(); }
  [[nodiscard]] std::size_t MemoryBytes() const { return mem_bytes_; }

  /// Full-reboot recovery: rebuild the table from the AOF. Returns entries
  /// applied. This is the slow path VampOS avoids (Fig 8 baseline).
  std::size_t LoadAof();

  // ------------- network server mode -------------
  bool Setup(std::uint16_t port);
  bool PumpOnce();
  void RunLoop(const bool* stop);
  [[nodiscard]] std::uint64_t commands_served() const { return served_; }

 private:
  std::string HandleCommand(const std::string& line);

  Posix& px_;
  std::string aof_path_;
  bool aof_enabled_;
  std::int64_t aof_fd_ = -1;
  std::unordered_map<std::string, std::string> table_;
  std::size_t mem_bytes_ = 0;

  std::int64_t listen_fd_ = -1;
  struct Conn {
    std::int64_t fd;
    std::string pending;
  };
  std::vector<Conn> conns_;
  std::uint64_t served_ = 0;
};

}  // namespace vampos::apps
