// Posix: the application-facing syscall facade.
//
// In a unikernel the "syscall layer" is just the set of functions VFS /
// PROCESS / etc. export; this class binds those FunctionIds once at
// construction and exposes typed wrappers. All calls must be issued from an
// app fiber in VampOS mode (they block on message replies).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/runtime.h"

namespace vampos::apps {

/// Outcome of a byte-returning syscall (read/recv): data or a negative errno.
struct IoResult {
  std::string data;
  std::int64_t err = 0;  // 0 = ok (data valid), < 0 = -errno

  [[nodiscard]] bool ok() const { return err == 0; }
  [[nodiscard]] bool again() const {
    return err == -static_cast<std::int64_t>(Errno::kAgain);
  }
  [[nodiscard]] bool closed() const {
    return err == -static_cast<std::int64_t>(Errno::kNotConn);
  }
};

class Posix {
 public:
  explicit Posix(core::Runtime& rt);

  // ----- files
  std::int64_t Mount(const std::string& path);
  std::int64_t Mkdir(const std::string& path);
  std::int64_t Open(const std::string& path, std::int64_t flags = 0);
  std::int64_t Create(const std::string& path);
  IoResult Read(std::int64_t fd, std::int64_t len);
  std::int64_t Write(std::int64_t fd, const std::string& data);
  IoResult Pread(std::int64_t fd, std::int64_t len, std::int64_t off);
  std::int64_t Pwrite(std::int64_t fd, const std::string& data,
                      std::int64_t off);
  std::int64_t Lseek(std::int64_t fd, std::int64_t off, std::int64_t whence);
  std::int64_t Fsync(std::int64_t fd);
  std::int64_t Close(std::int64_t fd);
  std::int64_t Fcntl(std::int64_t fd, std::int64_t cmd, std::int64_t arg);
  std::int64_t Pipe();
  std::int64_t Dup(std::int64_t fd);
  std::int64_t Unlink(const std::string& path);
  std::int64_t Rename(const std::string& from, const std::string& to);
  std::int64_t Ftruncate(std::int64_t fd, std::int64_t len);
  /// Directory listing: newline-separated child names, or an errno.
  IoResult Readdir(const std::string& path);
  /// File size by path, or -ENOENT.
  std::int64_t StatPath(const std::string& path);

  // ----- sockets (through VFS, as in the paper's POSIX surface)
  std::int64_t Socket();
  std::int64_t Bind(std::int64_t fd, std::int64_t port);
  std::int64_t Listen(std::int64_t fd, std::int64_t backlog = 16);
  std::int64_t Accept(std::int64_t fd);
  std::int64_t Connect(std::int64_t fd, std::int64_t port);
  std::int64_t Send(std::int64_t fd, const std::string& data) {
    return Write(fd, data);
  }
  IoResult Recv(std::int64_t fd, std::int64_t len) { return Read(fd, len); }

  // Datagram (UDP) sockets.
  std::int64_t SocketDgram();
  std::int64_t SendTo(std::int64_t fd, std::int64_t port,
                      const std::string& data);
  IoResult RecvFrom(std::int64_t fd);
  std::int64_t LastPeer(std::int64_t fd);

  // ----- process / misc
  std::int64_t Getpid();
  std::int64_t Getuid();
  std::string Uname();
  std::int64_t TimeMs();

  [[nodiscard]] core::Runtime& runtime() { return rt_; }
  [[nodiscard]] bool has_fs() const { return fn_open_ >= 0; }
  [[nodiscard]] bool has_net() const { return fn_socket_ >= 0; }

  static constexpr std::int64_t kOCreat = 0x40;
  static constexpr std::int64_t kOAppend = 0x400;
  static constexpr std::int64_t kSeekSet = 0;
  static constexpr std::int64_t kSeekCur = 1;
  static constexpr std::int64_t kSeekEnd = 2;

 private:
  IoResult ToIo(msg::MsgValue v);

  core::Runtime& rt_;
  FunctionId fn_mkdir_, fn_dup_, fn_unlink_, fn_rename_, fn_ftruncate_,
      fn_readdir_, fn_stat_path_;
  FunctionId fn_mount_, fn_open_, fn_create_, fn_read_, fn_write_, fn_pread_,
      fn_pwrite_, fn_lseek_, fn_fsync_, fn_close_, fn_fcntl_, fn_pipe_,
      fn_socket_, fn_bind_, fn_listen_, fn_accept_, fn_connect_, fn_getpid_,
      fn_getuid_, fn_uname_, fn_time_;
  FunctionId fn_socket_dgram_, fn_sendto_, fn_recvfrom_, fn_last_peer_;
};

}  // namespace vampos::apps
