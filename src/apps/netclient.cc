#include "apps/netclient.h"

namespace vampos::apps {

using uk::Frame;

std::uint16_t SimClient::next_port_ = 20000;

SimClient::SimClient(uk::HostNet* net, std::uint16_t server_port)
    : net_(net), server_port_(server_port) {}

SimClient::Conn* SimClient::ByPort(std::uint16_t port) {
  for (auto& c : conns_) {
    if (c.local_port == port) return &c;
  }
  return nullptr;
}

void SimClient::SendSyn(Conn& c) {
  net_->HostSend(Frame{.flags = Frame::kSyn,
                       .src_port = c.local_port,
                       .dst_port = server_port_,
                       .seq = c.snd_seq - 1,
                       .ack = 0,
                       .payload = {}});
  c.polls_since_syn = 0;
}

int SimClient::Connect() {
  Conn c;
  c.local_port = next_port_++;
  if (next_port_ >= 40000) next_port_ = 20000;  // wrap well below LWIP's range
  c.snd_seq = kClientIsq + static_cast<std::uint32_t>(conns_.size());
  SendSyn(c);
  conns_.push_back(c);
  return static_cast<int>(conns_.size()) - 1;
}

void SimClient::Poll() {
  // Drain first, then process: frames for other host-side consumers (other
  // SimClients on the same tap) are requeued, and requeuing during the
  // drain loop would spin.
  std::vector<Frame> batch;
  while (auto f = net_->HostRecv()) batch.push_back(std::move(*f));
  for (Frame& frame : batch) {
    auto* f = &frame;
    Conn* c = ByPort(f->dst_port);
    if (c == nullptr) {
      net_->HostRequeue(std::move(frame));
      continue;
    }
    if ((f->flags & Frame::kRst) != 0) {
      if (c->state != ConnState::kClosed) {
        c->state = ConnState::kBroken;
        resets_++;
      }
      continue;
    }
    if ((f->flags & (Frame::kSyn | Frame::kAck)) ==
        (Frame::kSyn | Frame::kAck)) {
      if (c->state == ConnState::kSynSent) {
        c->state = ConnState::kEstablished;
        c->rcv_ack = f->seq + 1;
      }
      continue;
    }
    if ((f->flags & Frame::kFin) != 0) {
      if (c->state == ConnState::kEstablished) c->state = ConnState::kClosed;
      continue;
    }
    if ((f->flags & Frame::kData) != 0) {
      if (c->state != ConnState::kEstablished) continue;
      if (f->seq != c->rcv_ack) {
        // Server lost our connection state: a reboot without restoration.
        c->state = ConnState::kBroken;
        resets_++;
        continue;
      }
      c->rcv_ack += static_cast<std::uint32_t>(f->payload.size());
      c->rcvbuf += f->payload;
    }
  }
  // SYN retransmission (TCP behavior): a reboot may have dropped a pending
  // SYN from the listener queue; resend until accepted.
  for (auto& c : conns_) {
    if (c.state == ConnState::kSynSent &&
        ++c.polls_since_syn >= kSynRetryPolls) {
      SendSyn(c);
    }
  }
}

void SimClient::Send(int h, const std::string& data) {
  Conn& c = conns_[h];
  if (c.state != ConnState::kEstablished) return;
  net_->HostSend(Frame{.flags = Frame::kData,
                       .src_port = c.local_port,
                       .dst_port = server_port_,
                       .seq = c.snd_seq,
                       .ack = c.rcv_ack,
                       .payload = data});
  c.snd_seq += static_cast<std::uint32_t>(data.size());
}

std::string SimClient::TakeReceived(int h) {
  std::string out = std::move(conns_[h].rcvbuf);
  conns_[h].rcvbuf.clear();
  return out;
}

void SimClient::Close(int h) {
  Conn& c = conns_[h];
  if (c.state == ConnState::kEstablished) {
    net_->HostSend(Frame{.flags = Frame::kFin,
                         .src_port = c.local_port,
                         .dst_port = server_port_,
                         .seq = c.snd_seq,
                         .ack = 0,
                         .payload = {}});
  }
  c.state = ConnState::kClosed;
}

}  // namespace vampos::apps
