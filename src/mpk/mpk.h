// Simulated Intel Memory Protection Keys (MPK).
//
// Models the hardware the paper uses for component-level protection domains:
// a 4-bit protection key tags every page of every registered region, and a
// per-thread PKRU register holds access-disable / write-disable bits for each
// of the 16 keys. The fiber scheduler writes PKRU on every component switch,
// exactly as VampOS's thread scheduler "changes the current MPK tag to the
// corresponding tag" (§V-D).
//
// Because this is an in-process simulation, loads/stores are not trapped by
// hardware; instead, all cross-component data movement goes through the
// checked accessors below (the message domain uses them for every push/pull)
// and a violation raises a ComponentFault(kMpkViolation) that enters the same
// reboot path a hardware #PF would.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/panic.h"
#include "base/types.h"
#include "mem/arena.h"

namespace vampos::mpk {

using Key = std::uint8_t;
inline constexpr int kNumKeys = 16;     // Intel MPK exposes 16 keys
inline constexpr Key kDefaultKey = 0;   // key 0: always accessible

/// PKRU register image: 2 bits per key.
class Pkru {
 public:
  static constexpr std::uint32_t kAccessDisableBit = 0x1;
  static constexpr std::uint32_t kWriteDisableBit = 0x2;

  /// All keys except kDefaultKey fully disabled.
  static Pkru AllDenied() {
    Pkru p;
    p.bits_ = 0xFFFFFFFCu;  // key 0 stays enabled
    return p;
  }

  void Allow(Key key, bool write) {
    bits_ &= ~(kAccessDisableBit << (2 * key));
    if (write) {
      bits_ &= ~(kWriteDisableBit << (2 * key));
    } else {
      bits_ |= (kWriteDisableBit << (2 * key));
    }
  }
  void Deny(Key key) {
    bits_ |= (kAccessDisableBit | kWriteDisableBit) << (2 * key);
  }

  [[nodiscard]] bool CanRead(Key key) const {
    return ((bits_ >> (2 * key)) & kAccessDisableBit) == 0;
  }
  [[nodiscard]] bool CanWrite(Key key) const {
    return ((bits_ >> (2 * key)) &
            (kAccessDisableBit | kWriteDisableBit)) == 0;
  }
  [[nodiscard]] std::uint32_t raw() const { return bits_; }

 private:
  std::uint32_t bits_ = 0;
};

/// Allocates keys, tracks which key tags which arena, and holds the
/// "current" PKRU written by the scheduler. One instance per runtime.
class DomainManager {
 public:
  DomainManager() = default;

  /// Allocates a fresh key and tags every page of `arena` with it. Returns
  /// nullopt when the 16 hardware keys are exhausted (paper §V-D notes this
  /// limit is reached at 12 tags for Redis/Nginx) — unless key
  /// virtualization is enabled, in which case domains beyond the hardware
  /// budget share the least-populated physical key (EPK/libmpk-style
  /// static partitioning): isolation becomes coarser, never absent.
  std::optional<Key> AssignKey(const mem::Arena& arena, std::string label);

  /// Enables the key-sharing fallback for > 16 protection domains.
  void EnableKeyVirtualization() { virtualize_ = true; }
  [[nodiscard]] std::uint64_t shared_key_assignments() const {
    return shared_assignments_;
  }

  /// Tags an arena with an already-allocated key (used by merged components,
  /// which share one key across their constituent regions). Regions are kept
  /// sorted by base for binary-search lookups; overlapping an existing
  /// region is a runtime bug (two domains claiming the same bytes) and
  /// aborts via Fatal.
  void TagArena(const mem::Arena& arena, Key key, std::string label);

  /// Removes the region tagged for `arena`. Used when a component is
  /// destroyed while the runtime lives on (variant swap): a stale region
  /// would mis-tag recycled heap memory and trip the overlap check when the
  /// successor arena is tagged.
  void UntagArena(const mem::Arena& arena);

  /// Scheduler entry point: installs the PKRU for the component being
  /// dispatched. Cheap by design — models a WRPKRU instruction.
  void WritePkru(const Pkru& pkru) { current_ = pkru; pkru_writes_++; }
  [[nodiscard]] const Pkru& CurrentPkru() const { return current_; }
  [[nodiscard]] std::uint64_t PkruWrites() const { return pkru_writes_; }

  /// Key lookup for a pointer; kDefaultKey if the pointer is not inside any
  /// registered arena (global heap, stacks, runtime structures).
  [[nodiscard]] Key KeyFor(const void* ptr) const;

  /// Checked accessors: validate against the current PKRU, then copy.
  /// Throw ComponentFault(kMpkViolation) on denial, attributed to `actor`.
  void CheckedRead(ComponentId actor, const void* src, void* dst,
                   std::size_t len) const;
  void CheckedWrite(ComponentId actor, void* dst, const void* src,
                    std::size_t len) const;

  /// Validation without the copy (for tests and guard rails).
  void CheckAccess(ComponentId actor, const void* ptr, std::size_t len,
                   bool write) const;

  [[nodiscard]] int KeysInUse() const { return next_key_; }

  /// Temporary read grant for a zero-copy borrow: [ptr, ptr+len) becomes
  /// readable regardless of the current PKRU until revoked. Models a
  /// scoped PKRU relaxation for the borrower's execution window without
  /// re-tagging pages. Returns the grant id (never 0).
  std::uint64_t GrantBorrow(const void* ptr, std::size_t len);
  void RevokeBorrow(std::uint64_t grant);
  [[nodiscard]] std::size_t ActiveBorrows() const { return borrows_.size(); }
  [[nodiscard]] std::uint64_t borrow_grants() const { return borrow_grants_; }
  [[nodiscard]] std::uint64_t borrow_revokes() const {
    return borrow_revokes_;
  }

 private:
  struct Region {
    std::uintptr_t base;
    std::uintptr_t end;
    Key key;
    std::string label;
    // Backing arena, so checked writes can feed its dirty-page tracker.
    const mem::Arena* arena = nullptr;
  };

  /// Containing region for `ptr`, or nullptr for untagged memory. Binary
  /// search over the sorted, non-overlapping `regions_`.
  [[nodiscard]] const Region* FindRegion(std::uintptr_t ptr) const;

  struct BorrowGrant {
    std::uint64_t id;
    std::uintptr_t base;
    std::uintptr_t end;
  };

  Pkru current_ = Pkru::AllDenied();
  int next_key_ = 1;  // key 0 reserved as default
  std::vector<Region> regions_;  // sorted by base, non-overlapping
  std::uint64_t pkru_writes_ = 0;
  bool virtualize_ = false;
  std::uint64_t shared_assignments_ = 0;
  int key_population_[kNumKeys] = {};  // domains per physical key
  std::vector<BorrowGrant> borrows_;  // active read grants, few at a time
  std::uint64_t next_borrow_id_ = 1;
  std::uint64_t borrow_grants_ = 0;
  std::uint64_t borrow_revokes_ = 0;
};

}  // namespace vampos::mpk
