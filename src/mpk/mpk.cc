#include "mpk/mpk.h"

#include <cstring>

namespace vampos::mpk {

std::optional<Key> DomainManager::AssignKey(const mem::Arena& arena,
                                            std::string label) {
  if (next_key_ < kNumKeys) {
    const Key key = static_cast<Key>(next_key_++);
    key_population_[key]++;
    TagArena(arena, key, std::move(label));
    return key;
  }
  if (!virtualize_) return std::nullopt;
  // Hardware keys exhausted: share the least-populated physical key.
  Key best = 1;
  for (Key k = 2; k < kNumKeys; ++k) {
    if (key_population_[k] < key_population_[best]) best = k;
  }
  key_population_[best]++;
  shared_assignments_++;
  TagArena(arena, best, std::move(label));
  return best;
}

void DomainManager::TagArena(const mem::Arena& arena, Key key,
                             std::string label) {
  regions_.push_back(Region{
      .base = reinterpret_cast<std::uintptr_t>(arena.base()),
      .end = reinterpret_cast<std::uintptr_t>(arena.base()) + arena.size(),
      .key = key,
      .label = std::move(label),
  });
}

Key DomainManager::KeyFor(const void* ptr) const {
  const auto p = reinterpret_cast<std::uintptr_t>(ptr);
  for (const auto& r : regions_) {
    if (p >= r.base && p < r.end) return r.key;
  }
  return kDefaultKey;
}

void DomainManager::CheckAccess(ComponentId actor, const void* ptr,
                                std::size_t len, bool write) const {
  const auto p = reinterpret_cast<std::uintptr_t>(ptr);
  for (const auto& r : regions_) {
    if (p >= r.base && p < r.end) {
      // Reject ranges straddling out of the region as well.
      const bool inside = p + len <= r.end;
      const bool allowed = write ? current_.CanWrite(r.key)
                                 : current_.CanRead(r.key);
      if (!inside || !allowed) {
        throw ComponentFault(
            actor, FaultKind::kMpkViolation,
            std::string(write ? "write" : "read") + " to '" + r.label +
                "' denied by PKRU (key " + std::to_string(r.key) + ")");
      }
      return;
    }
  }
  // Untagged memory (key 0) is always accessible.
}

void DomainManager::CheckedRead(ComponentId actor, const void* src, void* dst,
                                std::size_t len) const {
  CheckAccess(actor, src, len, /*write=*/false);
  std::memcpy(dst, src, len);
}

void DomainManager::CheckedWrite(ComponentId actor, void* dst,
                                 const void* src, std::size_t len) const {
  CheckAccess(actor, dst, len, /*write=*/true);
  std::memcpy(dst, src, len);
}

}  // namespace vampos::mpk
