#include "mpk/mpk.h"

#include <algorithm>
#include <cstring>

namespace vampos::mpk {

std::optional<Key> DomainManager::AssignKey(const mem::Arena& arena,
                                            std::string label) {
  if (next_key_ < kNumKeys) {
    const Key key = static_cast<Key>(next_key_++);
    key_population_[key]++;
    TagArena(arena, key, std::move(label));
    return key;
  }
  if (!virtualize_) return std::nullopt;
  // Hardware keys exhausted: share the least-populated physical key.
  Key best = 1;
  for (Key k = 2; k < kNumKeys; ++k) {
    if (key_population_[k] < key_population_[best]) best = k;
  }
  key_population_[best]++;
  shared_assignments_++;
  TagArena(arena, best, std::move(label));
  return best;
}

void DomainManager::TagArena(const mem::Arena& arena, Key key,
                             std::string label) {
  Region r{
      .base = reinterpret_cast<std::uintptr_t>(arena.base()),
      .end = reinterpret_cast<std::uintptr_t>(arena.base()) + arena.size(),
      .key = key,
      .label = std::move(label),
      .arena = &arena,
  };
  // Sorted insert; every byte must belong to exactly one region, so an
  // overlap means two protection domains claim the same memory — a runtime
  // bug (e.g. a stale tag surviving its arena), not a recoverable component
  // fault.
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), r.base,
      [](const Region& a, std::uintptr_t b) { return a.base < b; });
  const Region* clash = nullptr;
  if (it != regions_.end() && it->base < r.end) clash = &*it;
  if (it != regions_.begin() && std::prev(it)->end > r.base) {
    clash = &*std::prev(it);
  }
  if (clash != nullptr) {
    Fatal("overlapping MPK regions: '%s' (key %d) overlaps '%s' (key %d)",
          r.label.c_str(), r.key, clash->label.c_str(), clash->key);
  }
  regions_.insert(it, std::move(r));
}

void DomainManager::UntagArena(const mem::Arena& arena) {
  const auto base = reinterpret_cast<std::uintptr_t>(arena.base());
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), base,
      [](const Region& a, std::uintptr_t b) { return a.base < b; });
  if (it != regions_.end() && it->base == base) regions_.erase(it);
}

const DomainManager::Region* DomainManager::FindRegion(
    std::uintptr_t ptr) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), ptr,
      [](std::uintptr_t p, const Region& r) { return p < r.base; });
  if (it == regions_.begin()) return nullptr;
  const Region& r = *std::prev(it);
  return ptr < r.end ? &r : nullptr;
}

Key DomainManager::KeyFor(const void* ptr) const {
  const Region* r = FindRegion(reinterpret_cast<std::uintptr_t>(ptr));
  return r != nullptr ? r->key : kDefaultKey;
}

void DomainManager::CheckAccess(ComponentId actor, const void* ptr,
                                std::size_t len, bool write) const {
  const auto p = reinterpret_cast<std::uintptr_t>(ptr);
  const Region* r = FindRegion(p);
  // Untagged memory (key 0) is always accessible.
  if (r == nullptr) return;
  // Reject ranges straddling out of the region as well.
  const bool inside = p + len <= r->end;
  const bool allowed =
      write ? current_.CanWrite(r->key) : current_.CanRead(r->key);
  if (!inside || !allowed) {
    // A read denial may be admitted by an active borrow grant covering the
    // whole range (zero-copy views). Writes through a borrow are never
    // allowed — borrows are read-only by construction.
    if (!write && inside) {
      for (const BorrowGrant& g : borrows_) {
        if (p >= g.base && p + len <= g.end) return;
      }
    }
    throw ComponentFault(
        actor, FaultKind::kMpkViolation,
        std::string(write ? "write" : "read") + " to '" + r->label +
            "' denied by PKRU (key " + std::to_string(r->key) + ")");
  }
}

std::uint64_t DomainManager::GrantBorrow(const void* ptr, std::size_t len) {
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  borrows_.push_back(BorrowGrant{next_borrow_id_, base, base + len});
  borrow_grants_++;
  return next_borrow_id_++;
}

void DomainManager::RevokeBorrow(std::uint64_t grant) {
  if (grant == 0) return;
  for (auto it = borrows_.begin(); it != borrows_.end(); ++it) {
    if (it->id == grant) {
      borrows_.erase(it);
      borrow_revokes_++;
      return;
    }
  }
}

void DomainManager::CheckedRead(ComponentId actor, const void* src, void* dst,
                                std::size_t len) const {
  CheckAccess(actor, src, len, /*write=*/false);
  std::memcpy(dst, src, len);
}

void DomainManager::CheckedWrite(ComponentId actor, void* dst,
                                 const void* src, std::size_t len) const {
  CheckAccess(actor, dst, len, /*write=*/true);
  std::memcpy(dst, src, len);
  // Sanctioned cross-domain write: feed the target arena's dirty tracker.
  const Region* r = FindRegion(reinterpret_cast<std::uintptr_t>(dst));
  if (r != nullptr && r->arena != nullptr) r->arena->MarkDirty(dst, len);
}

}  // namespace vampos::mpk
