#include "uk/procinfo/procinfo.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

namespace {
constexpr std::size_t kSmallArena = 256 * 1024;
}

// ----------------------------------------------------------------- PROCESS

ProcessComponent::ProcessComponent()
    : Component("process", Statefulness::kStateless, kSmallArena) {}

void ProcessComponent::Init(InitCtx& ctx) {
  state_ = MakeState<State>(State{.pid = 1, .ppid = 0, .fork_count = 0});
  ctx.Export("getpid", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(state_->pid);
  });
  ctx.Export("getppid", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(state_->ppid);
  });
  // Unikernels are single-process; fork is a stub that only counts calls —
  // and the counter resets on reboot, which the stateless-reboot test uses
  // to confirm re-initialization.
  ctx.Export("fork_count", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(state_->fork_count);
  });
  ctx.Export("fork", FnOptions{}, [this](CallCtx&, const Args&) {
    state_->fork_count++;
    return MsgValue(ToWire(Status::Error(Errno::kInval, "no multiprocess")));
  });
}

// ----------------------------------------------------------------- SYSINFO

SysinfoComponent::SysinfoComponent()
    : Component("sysinfo", Statefulness::kStateless, kSmallArena) {}

void SysinfoComponent::Init(InitCtx& ctx) {
  ctx.Export("uname", FnOptions{}, [](CallCtx&, const Args&) {
    return MsgValue("VampOS 0.8.0 x86_64");
  });
  ctx.Export("sysinfo_totalram", FnOptions{}, [](CallCtx&, const Args&) {
    return MsgValue(std::int64_t{88} << 20);  // paper's 88 MB upper limit
  });
}

// -------------------------------------------------------------------- USER

UserComponent::UserComponent()
    : Component("user", Statefulness::kStateless, kSmallArena) {}

void UserComponent::Init(InitCtx& ctx) {
  ctx.Export("getuid", FnOptions{}, [](CallCtx&, const Args&) {
    return MsgValue(std::int64_t{0});
  });
  ctx.Export("getgid", FnOptions{}, [](CallCtx&, const Args&) {
    return MsgValue(std::int64_t{0});
  });
  ctx.Export("geteuid", FnOptions{}, [](CallCtx&, const Args&) {
    return MsgValue(std::int64_t{0});
  });
}

// ------------------------------------------------------------------- TIMER

TimerComponent::TimerComponent(const Clock* clock)
    : Component("timer", Statefulness::kStateless, kSmallArena),
      clock_(clock) {}

void TimerComponent::Init(InitCtx& ctx) {
  ctx.Export("monotonic_ns", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(static_cast<std::int64_t>(clock_->Now()));
  });
  ctx.Export("time_ms", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(static_cast<std::int64_t>(clock_->Now() / kMillisecond));
  });
}

}  // namespace vampos::uk
