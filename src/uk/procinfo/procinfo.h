// Core-utility components: PROCESS, SYSINFO, USER, TIMER.
//
// All four are stateless in the paper's prototype (Table I): VampOS reboots
// them by plain re-initialization, with no call logging and no encapsulated
// restoration. They exist mostly to exercise the message-passing plane with
// cheap calls (getpid() is Fig 5's smallest syscall) and to give file ops a
// realistic multi-component call chain (timestamp lookups on writes).
#pragma once

#include <cstdint>

#include "base/clock.h"
#include "comp/component.h"

namespace vampos::uk {

class ProcessComponent final : public comp::Component {
 public:
  ProcessComponent();
  void Init(comp::InitCtx& ctx) override;

 private:
  struct State {
    std::int64_t pid;
    std::int64_t ppid;
    std::int64_t fork_count;  // resets on reboot: demonstrably stateless
  };
  State* state_ = nullptr;
};

class SysinfoComponent final : public comp::Component {
 public:
  SysinfoComponent();
  void Init(comp::InitCtx& ctx) override;
};

class UserComponent final : public comp::Component {
 public:
  UserComponent();
  void Init(comp::InitCtx& ctx) override;
};

class TimerComponent final : public comp::Component {
 public:
  explicit TimerComponent(const Clock* clock);
  void Init(comp::InitCtx& ctx) override;

 private:
  const Clock* clock_;
};

}  // namespace vampos::uk
