// VFS: the POSIX surface for files, pipes, and sockets (paper Table I:
// "exposes POSIX APIs for file systems and networks").
//
// Stateful: owns the file-descriptor table (type, backend handle, offset,
// flags). File ops route to 9PFS (by fid), socket ops to LWIP (by socket
// id), with TIMER/USER consulted on the open/write paths to give syscalls
// their realistic multi-component call chains (Fig 5's transition counts).
//
// Restoration: the fd table is rebuilt by replaying the Table II call set
// (create/open/write/pwrite/read/pread/close/mount/fcntl/lseek/pipe/ioctl/
// writev/fsync/vfs_alloc_socket) with 9PFS/LWIP return values fed from the
// log. The compaction hook collapses a session's offset-moving history into
// one synthetic lseek (paper §V-F: "extracts and resets the offset value").
#pragma once

#include <cstdint>

#include "comp/component.h"

namespace vampos::uk {

class VfsComponent final : public comp::Component {
 public:
  /// `fs_backend`: name of the filesystem-backend component to bind to —
  /// "9pfs" (host-backed) or "ramfs" (in-unikernel); both export the same
  /// interface.
  explicit VfsComponent(std::string fs_backend = "9pfs");
  void Init(comp::InitCtx& ctx) override;
  void Bind(comp::InitCtx& ctx) override;
  comp::CompactionHook compaction_hook() override;

  static constexpr std::size_t kMaxFds = 256;
  static constexpr std::size_t kPipeCap = 4096;

  enum class FdType : std::uint8_t { kFree, kFile, kSocket, kPipeR, kPipeW };

 private:
  struct FdEntry {
    FdType type = FdType::kFree;
    std::int64_t backend = -1;  // 9pfs fid or lwip socket id or pipe index
    std::int64_t offset = 0;
    std::int64_t flags = 0;
    std::int64_t atime_ms = 0;
    std::int64_t mtime_ms = 0;
  };
  struct Pipe {
    bool used = false;
    std::uint32_t head = 0;  // read cursor
    std::uint32_t tail = 0;  // write cursor
    char buf[kPipeCap] = {};
  };
  struct State {
    FdEntry fds[kMaxFds] = {};
    Pipe pipes[8] = {};
    // Reference counts on 9PFS fids (dup() shares a fid across fds; the
    // clunk happens when the last fd closes).
    std::int16_t fid_refs[kMaxFds] = {};
    bool mounted = false;
  };

  std::int64_t AllocFd(comp::CallCtx& ctx);
  FdEntry* Get(std::int64_t fd);
  msg::MsgValue DoRead(comp::CallCtx& c, std::int64_t fd, std::int64_t len,
                       std::int64_t offset, bool use_fd_offset);
  msg::MsgValue DoWrite(comp::CallCtx& c, std::int64_t fd,
                        const std::string& data, std::int64_t offset,
                        bool use_fd_offset);

  State* state_ = nullptr;
  std::string fs_backend_;
  // Imported functions (resolved in Bind; absent backends stay -1).
  FunctionId ninep_lookup_ = -1;
  FunctionId ninep_create_ = -1;
  FunctionId ninep_open_ = -1;
  FunctionId ninep_read_ = -1;
  FunctionId ninep_write_ = -1;
  FunctionId ninep_clunk_ = -1;
  FunctionId ninep_stat_ = -1;
  FunctionId ninep_fsync_ = -1;
  FunctionId ninep_mount_ = -1;
  FunctionId ninep_mkdir_ = -1;
  FunctionId ninep_remove_path_ = -1;
  FunctionId ninep_rename_ = -1;
  FunctionId ninep_readdir_ = -1;
  FunctionId ninep_truncate_ = -1;
  FunctionId ninep_stat_path_ = -1;
  FunctionId lwip_socket_ = -1;
  FunctionId lwip_bind_ = -1;
  FunctionId lwip_listen_ = -1;
  FunctionId lwip_accept_ = -1;
  FunctionId lwip_connect_ = -1;
  FunctionId lwip_send_ = -1;
  FunctionId lwip_recv_ = -1;
  FunctionId lwip_close_ = -1;
  FunctionId lwip_socket_dgram_ = -1;
  FunctionId lwip_sendto_ = -1;
  FunctionId lwip_recvfrom_ = -1;
  FunctionId lwip_last_peer_ = -1;
  FunctionId timer_now_ = -1;
  FunctionId user_getuid_ = -1;
  // Own exports needed by the compaction hook.
  FunctionId self_lseek_ = -1;
};

}  // namespace vampos::uk
