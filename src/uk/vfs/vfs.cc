#include "uk/vfs/vfs.h"

#include <algorithm>
#include <cstring>

namespace vampos::uk {

using comp::CallCtx;
using comp::CompactionHook;
using comp::CompactionRequest;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

namespace {
constexpr std::int64_t kSeekSet = 0;
constexpr std::int64_t kSeekCur = 1;
constexpr std::int64_t kSeekEnd = 2;
constexpr std::int64_t kOCreat = 0x40;
constexpr std::int64_t kOAppend = 0x400;

MsgValue Err(Errno e) { return MsgValue(ToWire(Status::Error(e))); }

bool IsErr(const MsgValue& v) { return v.is_i64() && v.i64() < 0; }
}  // namespace

VfsComponent::VfsComponent(std::string fs_backend)
    : Component("vfs", Statefulness::kStateful, 8u << 20),
      fs_backend_(std::move(fs_backend)) {
  // Fd table, pipes (in-struct buffers) and refcounts all live in State.
  set_write_tracking(comp::WriteTracking::kState);
}

VfsComponent::FdEntry* VfsComponent::Get(std::int64_t fd) {
  if (fd < 0 || fd >= static_cast<std::int64_t>(kMaxFds)) return nullptr;
  FdEntry* e = &state_->fds[fd];
  return e->type == FdType::kFree ? nullptr : e;
}

std::int64_t VfsComponent::AllocFd(CallCtx& ctx) {
  if (auto forced = ctx.forced_session()) return *forced;
  // fd 0..2 reserved, POSIX-style.
  for (std::size_t i = 3; i < kMaxFds; ++i) {
    if (state_->fds[i].type == FdType::kFree) {
      return static_cast<std::int64_t>(i);
    }
  }
  return ToWire(Status::Error(Errno::kMFile));
}

msg::MsgValue VfsComponent::DoRead(CallCtx& c, std::int64_t fd,
                                   std::int64_t len, std::int64_t offset,
                                   bool use_fd_offset) {
  FdEntry* e = Get(fd);
  if (e == nullptr) return Err(Errno::kBadF);
  switch (e->type) {
    case FdType::kFile: {
      const std::int64_t off = use_fd_offset ? e->offset : offset;
      MsgValue data = c.Call(ninep_read_,
                             {MsgValue(e->backend), MsgValue(off),
                              MsgValue(len)});
      if (IsErr(data)) return data;
      if (use_fd_offset) {
        e->offset += static_cast<std::int64_t>(data.bytes().size());
        e->atime_ms = c.Call(timer_now_, {}).i64();
      }
      return data;
    }
    case FdType::kSocket:
      if (lwip_recv_ < 0) return Err(Errno::kInval);
      return c.Call(lwip_recv_, {MsgValue(e->backend), MsgValue(len)});
    case FdType::kPipeR: {
      Pipe& p = state_->pipes[e->backend];
      const auto avail = p.tail - p.head;
      if (avail == 0) return Err(Errno::kAgain);
      const auto n = std::min<std::uint32_t>(
          avail, static_cast<std::uint32_t>(len));
      std::string out;
      out.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        out.push_back(p.buf[(p.head + i) % kPipeCap]);
      }
      p.head += n;
      return MsgValue(std::move(out));
    }
    default:
      return Err(Errno::kBadF);
  }
}

msg::MsgValue VfsComponent::DoWrite(CallCtx& c, std::int64_t fd,
                                    const std::string& data,
                                    std::int64_t offset, bool use_fd_offset) {
  FdEntry* e = Get(fd);
  if (e == nullptr) return Err(Errno::kBadF);
  switch (e->type) {
    case FdType::kFile: {
      const std::int64_t off = use_fd_offset ? e->offset : offset;
      MsgValue n = c.Call(ninep_write_, {MsgValue(e->backend), MsgValue(off),
                                         MsgValue(data)});
      if (IsErr(n)) return n;
      if (use_fd_offset) {
        e->offset += n.i64();
        e->mtime_ms = c.Call(timer_now_, {}).i64();
      }
      return n;
    }
    case FdType::kSocket:
      if (lwip_send_ < 0) return Err(Errno::kInval);
      return c.Call(lwip_send_, {MsgValue(e->backend), MsgValue(data)});
    case FdType::kPipeW: {
      Pipe& p = state_->pipes[e->backend];
      const auto space = kPipeCap - (p.tail - p.head);
      const auto n = std::min<std::uint32_t>(
          space, static_cast<std::uint32_t>(data.size()));
      if (n == 0) return Err(Errno::kAgain);
      for (std::uint32_t i = 0; i < n; ++i) {
        p.buf[(p.tail + i) % kPipeCap] = data[i];
      }
      p.tail += n;
      return MsgValue(static_cast<std::int64_t>(n));
    }
    default:
      return Err(Errno::kBadF);
  }
}

void VfsComponent::Init(InitCtx& ctx) {
  state_ = MakeState<State>();

  ctx.Export("mount", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               if (ninep_mount_ < 0) return Err(Errno::kInval);
               MsgValue r = c.Call(ninep_mount_, {args[0]});
               state_->mounted = !IsErr(r);
               return r;
             });

  // open(path, flags) -> fd
  ctx.Export(
      "open", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args& args) {
        if (ninep_lookup_ < 0) return Err(Errno::kInval);  // no filesystem
        const std::string& path = args[0].bytes();
        const std::int64_t flags = args.size() > 1 ? args[1].i64() : 0;
        // Permission walk: USER for credentials, TIMER for atime — the
        // realistic multi-component chain behind one open() (Fig 5).
        (void)c.Call(user_getuid_, {});
        MsgValue fid = c.Call(ninep_lookup_, {MsgValue(path)});
        if (IsErr(fid) && (flags & kOCreat) != 0) {
          fid = c.Call(ninep_create_, {MsgValue(path)});
        }
        if (IsErr(fid)) return fid;
        MsgValue size = c.Call(ninep_open_, {fid});
        if (IsErr(size)) return size;
        const std::int64_t fd = AllocFd(c);
        if (fd < 0) return MsgValue(fd);
        FdEntry& e = state_->fds[fd];
        e.type = FdType::kFile;
        e.backend = fid.i64();
        state_->fid_refs[fid.i64()] = 1;
        e.offset = (flags & kOAppend) != 0 ? size.i64() : 0;
        e.flags = flags;
        e.atime_ms = c.Call(timer_now_, {}).i64();
        e.mtime_ms = e.atime_ms;
        return MsgValue(fd);
      });

  // create(path) -> fd (open with O_CREAT|O_TRUNC semantics, minus trunc).
  ctx.Export(
      "create", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args& args) {
        if (ninep_create_ < 0) return Err(Errno::kInval);
        MsgValue fid = c.Call(ninep_create_, {args[0]});
        if (IsErr(fid)) return fid;
        MsgValue size = c.Call(ninep_open_, {fid});
        if (IsErr(size)) return size;
        const std::int64_t fd = AllocFd(c);
        if (fd < 0) return MsgValue(fd);
        FdEntry& e = state_->fds[fd];
        e.type = FdType::kFile;
        e.backend = fid.i64();
        state_->fid_refs[fid.i64()] = 1;
        e.offset = 0;
        e.flags = kOCreat;
        e.atime_ms = c.Call(timer_now_, {}).i64();
        e.mtime_ms = e.atime_ms;
        return MsgValue(fd);
      });

  ctx.Export("read", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               return DoRead(c, args[0].i64(), args[1].i64(), 0, true);
             });
  ctx.Export("pread",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               return DoRead(c, args[0].i64(), args[1].i64(), args[2].i64(),
                             false);
             });
  ctx.Export("write", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               return DoWrite(c, args[0].i64(), args[1].bytes(), 0, true);
             });
  ctx.Export("pwrite",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               return DoWrite(c, args[0].i64(), args[1].bytes(),
                              args[2].i64(), false);
             });
  // writev: vector of buffers flattened by the libc shim; one log entry.
  ctx.Export("writev", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               std::string flat;
               for (std::size_t i = 1; i < args.size(); ++i) {
                 flat += args[i].bytes();
               }
               return DoWrite(c, args[0].i64(), flat, 0, true);
             });

  ctx.Export(
      "lseek", FnOptions{.logged = true, .session_arg = 0},
      [this](CallCtx& c, const Args& args) {
        FdEntry* e = Get(args[0].i64());
        if (e == nullptr || e->type != FdType::kFile) {
          return Err(Errno::kBadF);
        }
        const std::int64_t off = args[1].i64();
        const std::int64_t whence = args[2].i64();
        switch (whence) {
          case kSeekSet:
            e->offset = off;
            break;
          case kSeekCur:
            e->offset += off;
            break;
          case kSeekEnd: {
            MsgValue size = c.Call(ninep_stat_, {MsgValue(e->backend)});
            if (IsErr(size)) return size;
            e->offset = size.i64() + off;
            break;
          }
          default:
            return Err(Errno::kInval);
        }
        return MsgValue(e->offset);
      });

  ctx.Export(
      "close", FnOptions{.logged = true, .session_arg = 0, .canceling = true},
      [this](CallCtx& c, const Args& args) {
        FdEntry* e = Get(args[0].i64());
        if (e == nullptr) return Err(Errno::kBadF);
        if (e->type == FdType::kFile) {
          if (--state_->fid_refs[e->backend] <= 0) {
            (void)c.Call(ninep_clunk_, {MsgValue(e->backend)});
          }
        } else if (e->type == FdType::kSocket) {
          (void)c.Call(lwip_close_, {MsgValue(e->backend)});
        }
        *e = FdEntry{};
        return MsgValue(std::int64_t{0});
      });

  ctx.Export("fsync",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               FdEntry* e = Get(args[0].i64());
               if (e == nullptr || e->type != FdType::kFile) {
                 return Err(Errno::kBadF);
               }
               return c.Call(ninep_fsync_, {MsgValue(e->backend)});
             });

  ctx.Export("fcntl", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               FdEntry* e = Get(args[0].i64());
               if (e == nullptr) return Err(Errno::kBadF);
               if (args[1].i64() == 4 /*F_SETFL*/) e->flags = args[2].i64();
               return MsgValue(e->flags);
             });

  ctx.Export("ioctl",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               return Get(args[0].i64()) != nullptr ? MsgValue(std::int64_t{0})
                                                    : Err(Errno::kBadF);
             });

  // fstat-equivalent (vfscore_vget in Table II): reads, never replayed.
  ctx.Export("vget",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx& c, const Args& args) {
               FdEntry* e = Get(args[0].i64());
               if (e == nullptr) return Err(Errno::kBadF);
               if (e->type != FdType::kFile) return MsgValue(std::int64_t{0});
               return c.Call(ninep_stat_, {MsgValue(e->backend)});
             });

  ctx.Export("mkdir", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               if (ninep_mkdir_ < 0) return Err(Errno::kInval);
               return c.Call(ninep_mkdir_, {args[0]});
             });

  // dup(fd) -> new fd sharing the backend fid (refcounted so the fid is
  // clunked only when the last fd closes). Offsets are per-fd — a
  // unikernel-level simplification vs POSIX's shared file description.
  ctx.Export(
      "dup", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args& args) {
        FdEntry* e = Get(args[0].i64());
        if (e == nullptr || e->type != FdType::kFile) return Err(Errno::kBadF);
        const std::int64_t fd = AllocFd(c);
        if (fd < 0) return MsgValue(fd);
        state_->fds[fd] = *e;
        state_->fid_refs[e->backend]++;
        return MsgValue(fd);
      });

  ctx.Export("unlink", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               if (ninep_remove_path_ < 0) return Err(Errno::kInval);
               return c.Call(ninep_remove_path_, {args[0]});
             });

  ctx.Export("rename", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               if (ninep_rename_ < 0) return Err(Errno::kInval);
               return c.Call(ninep_rename_, {args[0], args[1]});
             });

  // readdir(path) -> newline-separated names. Read-only: not replayed.
  ctx.Export("readdir",
             FnOptions{.logged = true, .state_changing = false},
             [this](CallCtx& c, const Args& args) {
               if (ninep_readdir_ < 0) return Err(Errno::kInval);
               return c.Call(ninep_readdir_, {args[0]});
             });

  ctx.Export(
      "ftruncate", FnOptions{.logged = true, .session_arg = 0},
      [this](CallCtx& c, const Args& args) {
        FdEntry* e = Get(args[0].i64());
        if (e == nullptr || e->type != FdType::kFile) return Err(Errno::kBadF);
        if (ninep_truncate_ < 0) return Err(Errno::kInval);
        MsgValue r = c.Call(ninep_truncate_, {MsgValue(e->backend), args[1]});
        if (!IsErr(r) && e->offset > args[1].i64()) e->offset = args[1].i64();
        return r;
      });

  // stat(path) -> size, or -ENOENT. Pure read: not logged at all.
  ctx.Export("stat_path", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               if (ninep_stat_path_ < 0) return Err(Errno::kInval);
               return c.Call(ninep_stat_path_, {args[0]});
             });

  // pipe() -> read fd (write fd is read fd + 1).
  ctx.Export(
      "pipe", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args&) {
        std::int64_t fd_r = -1;
        if (auto forced = c.forced_session()) {
          fd_r = *forced;
        } else {
          for (std::size_t i = 3; i + 1 < kMaxFds; ++i) {
            if (state_->fds[i].type == FdType::kFree &&
                state_->fds[i + 1].type == FdType::kFree) {
              fd_r = static_cast<std::int64_t>(i);
              break;
            }
          }
          if (fd_r < 0) return Err(Errno::kMFile);
        }
        std::int64_t pidx = -1;
        for (std::size_t i = 0; i < 8; ++i) {
          if (!state_->pipes[i].used) {
            pidx = static_cast<std::int64_t>(i);
            break;
          }
        }
        if (pidx < 0) return Err(Errno::kMFile);
        state_->pipes[pidx] = Pipe{};
        state_->pipes[pidx].used = true;
        state_->fds[fd_r] = FdEntry{FdType::kPipeR, pidx, 0, 0, 0, 0};
        state_->fds[fd_r + 1] = FdEntry{FdType::kPipeW, pidx, 0, 0, 0, 0};
        return MsgValue(fd_r);
      });

  // ------------------------------------------------------- socket surface
  ctx.Export(
      "socket", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args&) {
        if (lwip_socket_ < 0) return Err(Errno::kInval);  // no network stack
        MsgValue sock = c.Call(lwip_socket_, {});
        if (IsErr(sock)) return sock;
        const std::int64_t fd = AllocFd(c);
        if (fd < 0) return MsgValue(fd);
        state_->fds[fd] = FdEntry{FdType::kSocket, sock.i64(), 0, 0, 0, 0};
        return MsgValue(fd);
      });

  auto sock_forward = [this](FunctionId& target) {
    return [this, &target](CallCtx& c, const Args& args) {
      FdEntry* e = Get(args[0].i64());
      if (e == nullptr || e->type != FdType::kSocket) return Err(Errno::kBadF);
      if (target < 0) return Err(Errno::kInval);
      Args fwd{MsgValue(e->backend)};
      for (std::size_t i = 1; i < args.size(); ++i) fwd.push_back(args[i]);
      return c.Call(target, fwd);
    };
  };
  // Datagram sockets (UDP).
  ctx.Export(
      "socket_dgram", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args&) {
        if (lwip_socket_dgram_ < 0) return Err(Errno::kInval);
        MsgValue sock = c.Call(lwip_socket_dgram_, {});
        if (IsErr(sock)) return sock;
        const std::int64_t fd = AllocFd(c);
        if (fd < 0) return MsgValue(fd);
        state_->fds[fd] = FdEntry{FdType::kSocket, sock.i64(), 0, 0, 0, 0};
        return MsgValue(fd);
      });
  ctx.Export("sendto", FnOptions{}, sock_forward(lwip_sendto_));
  ctx.Export("recvfrom", FnOptions{}, sock_forward(lwip_recvfrom_));
  ctx.Export("last_peer", FnOptions{}, sock_forward(lwip_last_peer_));

  ctx.Export("bind", FnOptions{.logged = true, .session_arg = 0},
             sock_forward(lwip_bind_));
  ctx.Export("listen", FnOptions{.logged = true, .session_arg = 0},
             sock_forward(lwip_listen_));
  ctx.Export("connect", FnOptions{.logged = true, .session_arg = 0},
             sock_forward(lwip_connect_));

  // accept(fd) -> new fd for the established connection (or -EAGAIN).
  ctx.Export(
      "accept", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args& args) {
        FdEntry* e = Get(args[0].i64());
        if (e == nullptr || e->type != FdType::kSocket) {
          return Err(Errno::kBadF);
        }
        MsgValue sock = c.Call(lwip_accept_, {MsgValue(e->backend)});
        if (IsErr(sock)) return sock;
        const std::int64_t fd = AllocFd(c);
        if (fd < 0) return MsgValue(fd);
        state_->fds[fd] = FdEntry{FdType::kSocket, sock.i64(), 0, 0, 0, 0};
        return MsgValue(fd);
      });
}

void VfsComponent::Bind(InitCtx& ctx) {
  // File-system backend is optional (Echo's stack has none) and pluggable
  // (9PFS or RAMFS; both export the same interface).
  const std::string& fs = fs_backend_;
  ninep_mount_ = ctx.TryImport(fs, "mount").value_or(-1);
  ninep_lookup_ = ctx.TryImport(fs, "lookup").value_or(-1);
  ninep_create_ = ctx.TryImport(fs, "create").value_or(-1);
  ninep_open_ = ctx.TryImport(fs, "open").value_or(-1);
  ninep_read_ = ctx.TryImport(fs, "read").value_or(-1);
  ninep_write_ = ctx.TryImport(fs, "write").value_or(-1);
  ninep_clunk_ = ctx.TryImport(fs, "clunk").value_or(-1);
  ninep_stat_ = ctx.TryImport(fs, "stat").value_or(-1);
  ninep_fsync_ = ctx.TryImport(fs, "fsync").value_or(-1);
  ninep_mkdir_ = ctx.TryImport(fs, "mkdir").value_or(-1);
  ninep_remove_path_ = ctx.TryImport(fs, "remove_path").value_or(-1);
  ninep_rename_ = ctx.TryImport(fs, "rename").value_or(-1);
  ninep_readdir_ = ctx.TryImport(fs, "readdir").value_or(-1);
  ninep_truncate_ = ctx.TryImport(fs, "truncate").value_or(-1);
  ninep_stat_path_ = ctx.TryImport(fs, "stat_path").value_or(-1);
  timer_now_ = ctx.Import("timer", "time_ms");
  user_getuid_ = ctx.Import("user", "getuid");
  self_lseek_ = ctx.Import("vfs", "lseek");
  // Network backends are optional (SQLite's stack has no LWIP).
  lwip_socket_ = ctx.TryImport("lwip", "socket").value_or(-1);
  lwip_bind_ = ctx.TryImport("lwip", "bind").value_or(-1);
  lwip_listen_ = ctx.TryImport("lwip", "listen").value_or(-1);
  lwip_accept_ = ctx.TryImport("lwip", "accept").value_or(-1);
  lwip_connect_ = ctx.TryImport("lwip", "connect").value_or(-1);
  lwip_send_ = ctx.TryImport("lwip", "send").value_or(-1);
  lwip_recv_ = ctx.TryImport("lwip", "recv").value_or(-1);
  lwip_close_ = ctx.TryImport("lwip", "sock_net_close").value_or(-1);
  lwip_socket_dgram_ = ctx.TryImport("lwip", "socket_dgram").value_or(-1);
  lwip_sendto_ = ctx.TryImport("lwip", "sendto").value_or(-1);
  lwip_recvfrom_ = ctx.TryImport("lwip", "recvfrom").value_or(-1);
  lwip_last_peer_ = ctx.TryImport("lwip", "last_peer").value_or(-1);
}

comp::CompactionHook VfsComponent::compaction_hook() {
  // Threshold-triggered shrinking (§V-F): a file session's accumulated
  // read/write/lseek history only matters for the final offset; replace it
  // with one synthetic lseek(fd, current_offset, SEEK_SET). Socket and
  // stale sessions summarize to nothing.
  return [this](const CompactionRequest& req)
             -> std::vector<std::pair<FunctionId, Args>> {
    FdEntry* e = Get(req.session);
    if (e == nullptr || e->type != FdType::kFile) return {};
    return {{self_lseek_,
             Args{MsgValue(req.session), MsgValue(e->offset),
                  MsgValue(kSeekSet)}}};
  };
}

}  // namespace vampos::uk
