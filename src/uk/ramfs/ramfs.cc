#include "uk/ramfs/ramfs.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "msg/value.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

namespace {
MsgValue Err(Errno e) { return MsgValue(ToWire(Status::Error(e))); }
}  // namespace

RamFsComponent::RamFsComponent()
    : Component("ramfs", Statefulness::kStateful, 24u << 20) {
  // The file table lives in State; content blocks are flagged at Alloc time
  // by the buddy allocator plus explicit MarkDirty calls at the in-place
  // content writes (write/truncate/OnRestored).
  set_write_tracking(comp::WriteTracking::kState);
}

char* RamFsComponent::DataOf(File* f) {
  return static_cast<char*>(arena().AtOffset(f->data_off));
}

RamFsComponent::File* RamFsComponent::FindFile(const std::string& path) {
  for (File& f : state_->files) {
    if (f.used && path == f.path) return &f;
  }
  return nullptr;
}

RamFsComponent::File* RamFsComponent::CreateFile(const std::string& path,
                                                 bool is_dir) {
  if (path.size() >= kMaxPath) return nullptr;
  for (File& f : state_->files) {
    if (f.used) continue;
    f = File{};
    f.used = true;
    f.is_dir = is_dir;
    std::strncpy(f.path, path.c_str(), kMaxPath - 1);
    return &f;
  }
  return nullptr;
}

void RamFsComponent::RemoveFile(File* f) {
  if (f->cap > 0) alloc().Free(arena().AtOffset(f->data_off));
  *f = File{};
}

bool RamFsComponent::EnsureCapacity(File* f, std::uint32_t need) {
  if (need > kMaxFileBytes) return false;
  if (need <= f->cap) return true;
  const std::uint32_t new_cap = std::max<std::uint32_t>(need, 256);
  void* buf = alloc().Alloc(new_cap);
  if (buf == nullptr) return false;
  if (f->cap > 0) {
    std::memcpy(buf, DataOf(f), f->size);
    alloc().Free(arena().AtOffset(f->data_off));
  }
  f->data_off = static_cast<std::uint32_t>(arena().OffsetOf(buf));
  f->cap = static_cast<std::uint32_t>(
      mem::BuddyAllocator::BlockSizeFor(new_cap));
  return true;
}

std::int64_t RamFsComponent::AllocFid(CallCtx& ctx) {
  if (auto forced = ctx.forced_session()) return *forced;
  for (std::size_t i = 0; i < kMaxFids; ++i) {
    if (!state_->fids[i].used) return static_cast<std::int64_t>(i);
  }
  return ToWire(Status::Error(Errno::kMFile));
}

void RamFsComponent::SaveFileVault(CallCtx& ctx, const File& f) {
  // Runtime-data extraction: the file body is checkpointed out-of-band; it
  // is not rebuilt by replay (writes are not even logged).
  ctx.SaveRuntimeData(std::string("file:") + f.path,
                      MsgValue(std::string(
                          static_cast<const char*>(
                              arena().AtOffset(f.data_off)),
                          f.size)));
  SaveIndexVault(ctx);
}

void RamFsComponent::SaveIndexVault(CallCtx& ctx) {
  Args index;
  for (const File& f : state_->files) {
    if (!f.used) continue;
    index.push_back(MsgValue(std::string(f.path)));
    index.push_back(MsgValue(std::int64_t{f.is_dir ? 1 : 0}));
  }
  auto bytes = msg::SerializeArgs(index);
  ctx.SaveRuntimeData("index", MsgValue(std::string(
                                   reinterpret_cast<const char*>(bytes.data()),
                                   bytes.size())));
}

void RamFsComponent::OnRestored(CallCtx& ctx) {
  // Rebuild the file table and contents from the vault BEFORE the log
  // replay runs: replayed lookup()/create() entries resolve paths against
  // this table, and fids store slot indices, so the index blob re-fills
  // slots in their original order.
  auto blob = ctx.LoadRuntimeData("index");
  if (!blob.has_value() || !blob->is_bytes()) return;
  for (File& f : state_->files) {
    if (f.used) RemoveFile(&f);
  }
  const std::string& wire = blob->bytes();
  Args index = msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(wire.data()), wire.size()));
  for (std::size_t i = 0; i + 1 < index.size(); i += 2) {
    File* f = CreateFile(index[i].bytes(), index[i + 1].i64() == 1);
    if (f == nullptr) continue;
    auto content = ctx.LoadRuntimeData("file:" + index[i].bytes());
    if (!content.has_value() || !content->is_bytes()) continue;
    const std::string& data = content->bytes();
    if (!EnsureCapacity(f, static_cast<std::uint32_t>(data.size()))) continue;
    std::memcpy(DataOf(f), data.data(), data.size());
    arena().MarkDirty(DataOf(f), data.size());
    f->size = static_cast<std::uint32_t>(data.size());
  }
}

void RamFsComponent::Init(InitCtx& ctx) {
  state_ = MakeState<State>();
  CreateFile("/", /*is_dir=*/true);

  ctx.Export("mount", FnOptions{.logged = true},
             [this](CallCtx&, const Args&) {
               state_->mounted = true;
               return MsgValue(std::int64_t{0});
             });
  ctx.Export("unmount", FnOptions{.logged = true},
             [this](CallCtx&, const Args&) {
               state_->mounted = false;
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("lookup", FnOptions{.logged = true, .session_from_ret = true},
             [this](CallCtx& c, const Args& args) {
               File* f = FindFile(args[0].bytes());
               if (f == nullptr) return Err(Errno::kNoEnt);
               const std::int64_t fid = AllocFid(c);
               if (fid < 0) return MsgValue(fid);
               state_->fids[fid] = FidEntry{
                   true, false,
                   static_cast<std::int32_t>(f - state_->files)};
               return MsgValue(fid);
             });

  ctx.Export("create", FnOptions{.logged = true, .session_from_ret = true},
             [this](CallCtx& c, const Args& args) {
               File* f = FindFile(args[0].bytes());
               if (f == nullptr) f = CreateFile(args[0].bytes(), false);
               if (f == nullptr) return Err(Errno::kNoSpc);
               if (!c.restoring()) SaveFileVault(c, *f);
               const std::int64_t fid = AllocFid(c);
               if (fid < 0) return MsgValue(fid);
               state_->fids[fid] = FidEntry{
                   true, false,
                   static_cast<std::int32_t>(f - state_->files)};
               return MsgValue(fid);
             });

  auto fid_of = [this](std::int64_t id) -> FidEntry* {
    if (id < 0 || id >= static_cast<std::int64_t>(kMaxFids)) return nullptr;
    FidEntry* e = &state_->fids[id];
    return e->used ? e : nullptr;
  };

  ctx.Export("open", FnOptions{.logged = true, .session_arg = 0},
             [this, fid_of](CallCtx&, const Args& args) {
               FidEntry* e = fid_of(args[0].i64());
               if (e == nullptr) return Err(Errno::kBadF);
               e->open = true;
               return MsgValue(
                   static_cast<std::int64_t>(state_->files[e->file].size));
             });

  // Contents are vault-restored, not replayed: read/write are unlogged.
  ctx.Export("read", FnOptions{},
             [this, fid_of](CallCtx&, const Args& args) {
               FidEntry* e = fid_of(args[0].i64());
               if (e == nullptr || !e->open) return Err(Errno::kBadF);
               File& f = state_->files[e->file];
               const auto off = static_cast<std::uint32_t>(
                   std::max<std::int64_t>(0, args[1].i64()));
               if (off >= f.size) return MsgValue("");
               const auto len = std::min<std::uint32_t>(
                   static_cast<std::uint32_t>(args[2].i64()), f.size - off);
               // Read-only payload: lend the file block to the caller for
               // one hop instead of copying it through the message arena.
               return MsgValue::Borrowed(
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(DataOf(&f) + off),
                       len),
                   arena());
             });

  ctx.Export("write", FnOptions{},
             [this, fid_of](CallCtx& c, const Args& args) {
               FidEntry* e = fid_of(args[0].i64());
               if (e == nullptr || !e->open) return Err(Errno::kBadF);
               File& f = state_->files[e->file];
               const auto off = static_cast<std::uint32_t>(
                   std::max<std::int64_t>(0, args[1].i64()));
               const std::string& data = args[2].bytes();
               const auto end =
                   off + static_cast<std::uint32_t>(data.size());
               if (!EnsureCapacity(&f, end)) return Err(Errno::kNoSpc);
               // Content blocks live outside the State root; mark the
               // whole span (gap fill + payload) for the dirty tracker
               // before the writes land.
               arena().MarkDirty(DataOf(&f) + std::min(off, f.size),
                                 end - std::min(off, f.size));
               if (off > f.size) {
                 std::memset(DataOf(&f) + f.size, 0, off - f.size);
               }
               std::memcpy(DataOf(&f) + off, data.data(), data.size());
               f.size = std::max(f.size, end);
               if (!c.restoring()) SaveFileVault(c, f);
               return MsgValue(static_cast<std::int64_t>(data.size()));
             });

  ctx.Export("clunk",
             FnOptions{.logged = true, .session_arg = 0, .canceling = true},
             [this, fid_of](CallCtx&, const Args& args) {
               FidEntry* e = fid_of(args[0].i64());
               if (e == nullptr) return Err(Errno::kBadF);
               *e = FidEntry{};
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("mkdir", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               if (FindFile(args[0].bytes()) == nullptr) {
                 File* f = CreateFile(args[0].bytes(), true);
                 if (f == nullptr) return Err(Errno::kNoSpc);
                 if (!c.restoring()) SaveIndexVault(c);
               }
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("remove_path", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               File* f = FindFile(args[0].bytes());
               if (f == nullptr) return Err(Errno::kNoEnt);
               RemoveFile(f);
               if (!c.restoring()) SaveIndexVault(c);
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("rename", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               File* f = FindFile(args[0].bytes());
               if (f == nullptr) return Err(Errno::kNoEnt);
               if (args[1].bytes().size() >= kMaxPath) {
                 return Err(Errno::kInval);
               }
               std::strncpy(f->path, args[1].bytes().c_str(), kMaxPath - 1);
               if (!c.restoring()) SaveFileVault(c, *f);
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("readdir", FnOptions{},
             [this](CallCtx&, const Args& args) {
               const std::string& dir = args[0].bytes();
               const File* d = FindFile(dir);
               if (d == nullptr || !d->is_dir) return Err(Errno::kNotDir);
               const std::string prefix = dir == "/" ? "/" : dir + "/";
               std::string out;
               for (const File& f : state_->files) {
                 if (!f.used) continue;
                 const std::string p(f.path);
                 if (p.size() <= prefix.size() ||
                     p.compare(0, prefix.size(), prefix) != 0 ||
                     p.find('/', prefix.size()) != std::string::npos) {
                   continue;
                 }
                 out += p.substr(prefix.size());
                 out += '\n';
               }
               return MsgValue(std::move(out));
             });

  ctx.Export("stat",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this, fid_of](CallCtx&, const Args& args) {
               FidEntry* e = fid_of(args[0].i64());
               if (e == nullptr) return Err(Errno::kBadF);
               return MsgValue(
                   static_cast<std::int64_t>(state_->files[e->file].size));
             });

  ctx.Export("stat_path", FnOptions{},
             [this](CallCtx&, const Args& args) {
               File* f = FindFile(args[0].bytes());
               if (f == nullptr) return Err(Errno::kNoEnt);
               return MsgValue(static_cast<std::int64_t>(f->size));
             });

  ctx.Export("truncate", FnOptions{},
             [this, fid_of](CallCtx& c, const Args& args) {
               FidEntry* e = fid_of(args[0].i64());
               if (e == nullptr || !e->open) return Err(Errno::kBadF);
               File& f = state_->files[e->file];
               const auto len = static_cast<std::uint32_t>(
                   std::max<std::int64_t>(0, args[1].i64()));
               if (len > f.size) {
                 if (!EnsureCapacity(&f, len)) return Err(Errno::kNoSpc);
                 std::memset(DataOf(&f) + f.size, 0, len - f.size);
                 arena().MarkDirty(DataOf(&f) + f.size, len - f.size);
               }
               f.size = len;
               if (!c.restoring()) SaveFileVault(c, f);
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("fsync", FnOptions{},
             [fid_of](CallCtx&, const Args& args) {
               return fid_of(args[0].i64()) != nullptr
                          ? MsgValue(std::int64_t{0})
                          : Err(Errno::kBadF);
             });
}

}  // namespace vampos::uk
