// RAMFS: an in-unikernel filesystem backend for host-less deployments
// (embedded images with no 9P export). Exports the same interface as 9PFS,
// so VFS runs unchanged on either backend.
//
// Recovery design differs instructively from 9PFS: there, file *contents*
// live on the host and survive any guest reboot, so only the fid table is
// replayed. Here the contents are component state. Replaying every write
// would defeat log shrinking, so RAMFS treats contents as *runtime data*
// (paper §V-B): each mutation checkpoints the file into the runtime-data
// vault, and OnReplayed() re-ingests the vault after the fid-table replay.
#pragma once

#include <cstdint>

#include "comp/component.h"

namespace vampos::uk {

class RamFsComponent final : public comp::Component {
 public:
  RamFsComponent();
  void Init(comp::InitCtx& ctx) override;
  void OnRestored(comp::CallCtx& ctx) override;

  static constexpr std::size_t kMaxFiles = 64;
  static constexpr std::size_t kMaxFids = 128;
  static constexpr std::size_t kMaxPath = 96;
  static constexpr std::size_t kMaxFileBytes = 256 * 1024;

 private:
  struct File {
    bool used = false;
    bool is_dir = false;
    char path[kMaxPath] = {};
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
    std::uint32_t data_off = 0;  // arena offset of the content buffer
  };
  struct FidEntry {
    bool used = false;
    bool open = false;
    std::int32_t file = -1;  // index into files
  };
  struct State {
    File files[kMaxFiles] = {};
    FidEntry fids[kMaxFids] = {};
    bool mounted = false;
  };

  File* FindFile(const std::string& path);
  File* CreateFile(const std::string& path, bool is_dir);
  void RemoveFile(File* f);
  bool EnsureCapacity(File* f, std::uint32_t need);
  std::int64_t AllocFid(comp::CallCtx& ctx);
  void SaveFileVault(comp::CallCtx& ctx, const File& f);
  void SaveIndexVault(comp::CallCtx& ctx);
  char* DataOf(File* f);

  State* state_ = nullptr;
};

}  // namespace vampos::uk
