#include "uk/virtio/virtio.h"

#include <span>

#include "msg/value.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

std::string EncodeFrame(const Frame& f) {
  Args args{MsgValue(static_cast<std::int64_t>(f.flags)),
            MsgValue(static_cast<std::int64_t>(f.src_port)),
            MsgValue(static_cast<std::int64_t>(f.dst_port)),
            MsgValue(static_cast<std::int64_t>(f.seq)),
            MsgValue(static_cast<std::int64_t>(f.ack)),
            MsgValue(f.payload)};
  auto bytes = msg::SerializeArgs(args);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

Frame DecodeFrame(const std::string& wire) {
  Args args = msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(wire.data()), wire.size()));
  Frame f;
  f.flags = static_cast<std::uint8_t>(args[0].i64());
  f.src_port = static_cast<std::uint16_t>(args[1].i64());
  f.dst_port = static_cast<std::uint16_t>(args[2].i64());
  f.seq = static_cast<std::uint32_t>(args[3].i64());
  f.ack = static_cast<std::uint32_t>(args[4].i64());
  f.payload = args[5].bytes();
  return f;
}

Nanos VirtioComponent::hypercall_cost_ns = 1500;

VirtioComponent::VirtioComponent(Platform* platform, HostRingView* host_view)
    : Component("virtio", Statefulness::kUnrebootable, 512 * 1024),
      platform_(platform),
      host_view_(host_view) {}

bool VirtioComponent::RingsConsistent() const {
  return rings_ != nullptr && rings_->ninep_avail == host_view_->ninep_used &&
         rings_->net_tx_avail == host_view_->net_tx_used &&
         rings_->net_rx_avail == host_view_->net_rx_used;
}

void VirtioComponent::Init(InitCtx& ctx) {
  rings_ = MakeState<Rings>();

  // Synchronous 9P transaction: descriptor posted, host consumes it and the
  // used index advances in lock-step (QEMU processes virtio-9p inline).
  ctx.Export("ninep_rpc", FnOptions{}, [this](CallCtx&, const Args& args) {
    SpinFor(hypercall_cost_ns);
    rings_->ninep_avail++;
    rings_->bytes_tx += args[0].bytes().size();
    std::string reply = platform_->ninep.Handle(args[0].bytes());
    host_view_->ninep_used++;
    rings_->bytes_rx += reply.size();
    return MsgValue(std::move(reply));
  });

  ctx.Export("net_tx", FnOptions{}, [this](CallCtx&, const Args& args) {
    SpinFor(hypercall_cost_ns);
    rings_->net_tx_avail++;
    rings_->bytes_tx += args[0].bytes().size();
    platform_->net.GuestTx(DecodeFrame(args[0].bytes()));
    host_view_->net_tx_used++;
    return MsgValue(std::int64_t{0});
  });

  ctx.Export("net_rx", FnOptions{}, [this](CallCtx&, const Args&) {
    SpinFor(hypercall_cost_ns);
    auto frame = platform_->net.GuestRx();
    if (!frame.has_value()) return MsgValue("");
    rings_->net_rx_avail++;
    host_view_->net_rx_used++;
    std::string wire = EncodeFrame(*frame);
    rings_->bytes_rx += wire.size();
    return MsgValue(std::move(wire));
  });

  ctx.Export("ring_stats", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(static_cast<std::int64_t>(rings_->bytes_tx +
                                              rings_->bytes_rx));
  });
}

}  // namespace vampos::uk
