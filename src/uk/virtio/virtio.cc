#include "uk/virtio/virtio.h"

#include <span>

#include "msg/value.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

Nanos VirtioComponent::hypercall_cost_ns = 1500;

VirtioComponent::VirtioComponent(Platform* platform, HostRingView* host_view)
    : Component("virtio", Statefulness::kUnrebootable, 512 * 1024),
      platform_(platform),
      host_view_(host_view) {}

bool VirtioComponent::RingsConsistent() const {
  return rings_ != nullptr && rings_->ninep_avail == host_view_->ninep_used &&
         rings_->net_tx_avail == host_view_->net_tx_used &&
         rings_->net_rx_avail == host_view_->net_rx_used;
}

void VirtioComponent::Init(InitCtx& ctx) {
  rings_ = MakeState<Rings>();

  // Synchronous 9P transaction: descriptor posted, host consumes it and the
  // used index advances in lock-step (QEMU processes virtio-9p inline).
  ctx.Export("ninep_rpc", FnOptions{}, [this](CallCtx&, const Args& args) {
    SpinFor(hypercall_cost_ns);
    rings_->ninep_avail++;
    rings_->bytes_tx += args[0].bytes().size();
    std::string reply = platform_->ninep.Handle(args[0].bytes());
    host_view_->ninep_used++;
    rings_->bytes_rx += reply.size();
    return MsgValue(std::move(reply));
  });

  ctx.Export("net_tx", FnOptions{}, [this](CallCtx&, const Args& args) {
    SpinFor(hypercall_cost_ns);
    rings_->net_tx_avail++;
    rings_->bytes_tx += args[0].bytes().size();
    platform_->net.GuestTx(DecodeFrame(args[0].bytes()));
    host_view_->net_tx_used++;
    return MsgValue(std::int64_t{0});
  });

  ctx.Export("net_rx", FnOptions{}, [this](CallCtx&, const Args&) {
    SpinFor(hypercall_cost_ns);
    auto frame = platform_->net.GuestRx();
    if (!frame.has_value()) return MsgValue("");
    rings_->net_rx_avail++;
    host_view_->net_rx_used++;
    std::string wire = EncodeFrame(*frame);
    rings_->bytes_rx += wire.size();
    return MsgValue(std::move(wire));
  });

  ctx.Export("ring_stats", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(static_cast<std::int64_t>(rings_->bytes_tx +
                                              rings_->bytes_rx));
  });
}

}  // namespace vampos::uk
