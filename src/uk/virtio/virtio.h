// VIRTIO device-driver component.
//
// Models the one component the paper cannot reboot (§VIII): its virtqueue
// indices are shared with the host. The guest-side ring state lives in this
// component's arena; the host's view lives in host memory (HostRingView).
// Rebooting this component would reset the guest indices while the host's
// advance, losing I/O and misaligning the ring — so it is declared
// kUnrebootable and Runtime::Reboot refuses it.
//
// Two services ride the rings, matching QEMU's virtio-9p and virtio-net:
//   ninep_rpc(bytes)  -> bytes   synchronous 9P transaction to the host
//   net_tx(frame)                enqueue a frame toward the host switch
//   net_rx() -> frame|empty      dequeue a frame from the host switch
#pragma once

#include <cstdint>

#include "base/clock.h"
#include "comp/component.h"
#include "uk/platform.h"

namespace vampos::uk {

/// Host's view of the shared rings — lives outside every arena, survives
/// all component reboots.
struct HostRingView {
  std::uint32_t ninep_used = 0;
  std::uint32_t net_tx_used = 0;
  std::uint32_t net_rx_used = 0;
};

class VirtioComponent final : public comp::Component {
 public:
  VirtioComponent(Platform* platform, HostRingView* host_view);

  /// Guest-visible cost of one virtio transaction (VM exit + host handling),
  /// calibrated to a typical KVM exit. Applied to every ring operation in
  /// all configurations, so baseline I/O carries realistic cost. Set to 0
  /// for fast unit tests.
  static Nanos hypercall_cost_ns;
  void Init(comp::InitCtx& ctx) override;

  /// True when guest avail indices match the host's used counters — the
  /// invariant a VIRTIO reboot would break.
  [[nodiscard]] bool RingsConsistent() const;

 private:
  struct Rings {
    std::uint32_t ninep_avail = 0;
    std::uint32_t net_tx_avail = 0;
    std::uint32_t net_rx_avail = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
  };

  Platform* platform_;
  HostRingView* host_view_;
  Rings* rings_ = nullptr;
};

}  // namespace vampos::uk
