// NETDEV: low-level packet operations (paper Table I).
//
// Stateless: it owns no connection state — frames in flight live in the
// VIRTIO rings / host queues — so VampOS reboots it with a plain re-Init.
// LWIP talks to NETDEV, NETDEV talks to VIRTIO; that indirection is the
// LWIP+NETDEV merge target (VampOS-NETm in Fig 5).
#pragma once

#include <cstdint>

#include "comp/component.h"

namespace vampos::uk {

class NetdevComponent final : public comp::Component {
 public:
  NetdevComponent();
  void Init(comp::InitCtx& ctx) override;
  void Bind(comp::InitCtx& ctx) override;

 private:
  struct State {
    std::uint64_t frames_tx = 0;
    std::uint64_t frames_rx = 0;
  };
  State* state_ = nullptr;
  FunctionId virtio_tx_ = -1;
  FunctionId virtio_rx_ = -1;
};

}  // namespace vampos::uk
