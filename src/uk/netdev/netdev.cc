#include "uk/netdev/netdev.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

NetdevComponent::NetdevComponent()
    : Component("netdev", Statefulness::kStateless, 256 * 1024) {}

void NetdevComponent::Init(InitCtx& ctx) {
  state_ = MakeState<State>();
  ctx.Export("tx", FnOptions{}, [this](CallCtx& c, const Args& args) {
    state_->frames_tx++;
    return c.Call(virtio_tx_, {args[0]});
  });
  ctx.Export("rx", FnOptions{}, [this](CallCtx& c, const Args&) {
    MsgValue frame = c.Call(virtio_rx_, {});
    if (!frame.bytes().empty()) state_->frames_rx++;
    return frame;
  });
  ctx.Export("stats_frames", FnOptions{}, [this](CallCtx&, const Args&) {
    return MsgValue(
        static_cast<std::int64_t>(state_->frames_tx + state_->frames_rx));
  });
}

void NetdevComponent::Bind(InitCtx& ctx) {
  virtio_tx_ = ctx.Import("virtio", "net_tx");
  virtio_rx_ = ctx.Import("virtio", "net_rx");
}

}  // namespace vampos::uk
