// LWIP: the network protocol stack (mini-TCP over NETDEV frames).
//
// Stateful component. Socket *objects* are rebuilt by replaying the logged
// Table II calls (socket/bind/listen/connect/...); the parts of a connection
// that are "given at runtime and updated via interactions with external
// communication partners" — sequence and ACK numbers, established peers from
// accept() — cannot come from replay, so LWIP continuously saves them to the
// runtime-data vault and re-installs them in OnReplayed (paper §V-B's
// LWIP-specific runtime-data extraction).
//
// The mini-TCP peer (client harness) checks sequence continuity and answers
// out-of-order data with RST: a rebooted-but-unrestored LWIP therefore
// *loses* its connections, which is exactly the failure mode the vault
// restore prevents (Table V).
#pragma once

#include <cstdint>

#include "comp/component.h"

namespace vampos::uk {

class LwipComponent final : public comp::Component {
 public:
  LwipComponent();
  void Init(comp::InitCtx& ctx) override;
  void Bind(comp::InitCtx& ctx) override;
  void OnReplayed(comp::CallCtx& ctx) override;
  comp::CompactionHook compaction_hook() override;

  static constexpr std::size_t kMaxSocks = 128;
  static constexpr std::size_t kRcvBuf = 8192;
  static constexpr std::size_t kBacklog = 128;
  static constexpr std::uint32_t kInitialSeq = 1000;

  enum class SockState : std::uint8_t {
    kFree,
    kOpen,      // socket() done
    kBound,     // bind() done
    kListening,
    kEstablished,
    kClosed,
  };

  static constexpr std::size_t kDgramQueue = 8;
  static constexpr std::size_t kDgramMax = 512;

 private:
  struct Sock {
    SockState state = SockState::kFree;
    std::uint16_t local_port = 0;
    std::uint16_t remote_port = 0;
    std::uint32_t snd_seq = 0;   // next sequence number we send
    std::uint32_t rcv_ack = 0;   // next sequence number we expect
    std::uint32_t opt_flags = 0;
    // Receive buffer (drained eagerly into recv callers; normally empty).
    std::uint32_t buf_len = 0;
    char buf[kRcvBuf] = {};
    // Datagram sockets: bounded receive queue with UDP drop semantics.
    bool dgram = false;
    std::uint16_t last_peer = 0;
    struct Dgram {
      bool used = false;
      std::uint16_t from = 0;
      std::uint16_t len = 0;
      char data[kDgramMax] = {};
    } dgrams[kDgramQueue] = {};
  };
  // Listener backlog entry: a SYN waiting for accept().
  struct PendingSyn {
    bool used = false;
    std::uint16_t listen_port = 0;
    std::uint16_t src_port = 0;
    std::uint32_t seq = 0;
  };
  struct State {
    Sock socks[kMaxSocks] = {};
    PendingSyn backlog[kBacklog] = {};
    std::uint64_t frames_processed = 0;
  };

  std::int64_t AllocSock(comp::CallCtx& ctx);
  Sock* Get(std::int64_t s);
  /// Pulls frames from NETDEV and routes them to sockets. Returns frames
  /// processed. `budget` bounds the drain per call.
  int DrainFrames(comp::CallCtx& ctx, int budget);
  void RouteFrame(comp::CallCtx& ctx, const struct Frame& f);
  void SaveSocketVault(comp::CallCtx& ctx);
  std::int64_t FindByPorts(std::uint16_t local, std::uint16_t remote) const;

  State* state_ = nullptr;
  FunctionId netdev_tx_ = -1;
  FunctionId netdev_rx_ = -1;
};

}  // namespace vampos::uk
