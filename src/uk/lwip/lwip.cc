#include "uk/lwip/lwip.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "uk/platform.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::CompactionHook;
using comp::CompactionRequest;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

namespace {
MsgValue Err(Errno e) { return MsgValue(ToWire(Status::Error(e))); }
constexpr int kDrainBudget = 32;
}  // namespace

LwipComponent::LwipComponent()
    : Component("lwip", Statefulness::kStateful, 16u << 20) {
  // Every mutable byte (socks, backlog, counters) lives in the State root,
  // so dirty tracking only needs the state range marked per entry.
  set_write_tracking(comp::WriteTracking::kState);
}

LwipComponent::Sock* LwipComponent::Get(std::int64_t s) {
  if (s < 0 || s >= static_cast<std::int64_t>(kMaxSocks)) return nullptr;
  Sock* sock = &state_->socks[s];
  return sock->state == SockState::kFree ? nullptr : sock;
}

std::int64_t LwipComponent::AllocSock(CallCtx& ctx) {
  if (auto forced = ctx.forced_session()) return *forced;
  for (std::size_t i = 0; i < kMaxSocks; ++i) {
    if (state_->socks[i].state == SockState::kFree) {
      return static_cast<std::int64_t>(i);
    }
  }
  return ToWire(Status::Error(Errno::kMFile));
}

std::int64_t LwipComponent::FindByPorts(std::uint16_t local,
                                        std::uint16_t remote) const {
  for (std::size_t i = 0; i < kMaxSocks; ++i) {
    const Sock& s = state_->socks[i];
    if (s.state == SockState::kEstablished && s.local_port == local &&
        s.remote_port == remote) {
      return static_cast<std::int64_t>(i);
    }
  }
  return -1;
}

void LwipComponent::SaveSocketVault(CallCtx& ctx) {
  // Runtime-data extraction (§V-B): serialize the connection-critical fields
  // of every live socket. The vault survives this component's reboots.
  Args blob;
  for (std::size_t i = 0; i < kMaxSocks; ++i) {
    const Sock& s = state_->socks[i];
    if (s.state == SockState::kFree || s.state == SockState::kClosed) {
      continue;
    }
    blob.push_back(MsgValue(static_cast<std::int64_t>(i)));
    blob.push_back(MsgValue(static_cast<std::int64_t>(s.state)));
    blob.push_back(MsgValue(static_cast<std::int64_t>(s.local_port)));
    blob.push_back(MsgValue(static_cast<std::int64_t>(s.remote_port)));
    blob.push_back(MsgValue(static_cast<std::int64_t>(s.snd_seq)));
    blob.push_back(MsgValue(static_cast<std::int64_t>(s.rcv_ack)));
    blob.push_back(MsgValue(static_cast<std::int64_t>(s.opt_flags)));
  }
  auto bytes = msg::SerializeArgs(blob);
  ctx.SaveRuntimeData(
      "socks", MsgValue(std::string(
                   reinterpret_cast<const char*>(bytes.data()),
                   bytes.size())));
}

void LwipComponent::RouteFrame(CallCtx& ctx, const Frame& f) {
  state_->frames_processed++;
  auto tx = [&](Frame out) {
    (void)ctx.Call(netdev_tx_, {MsgValue(EncodeFrame(out))});
  };

  if ((f.flags & Frame::kSyn) != 0 && (f.flags & Frame::kAck) == 0) {
    // Retransmitted SYN for a connection we already accepted or queued:
    // drop it (the SYN-ACK is on its way or was lost; the peer re-syncs).
    if (FindByPorts(f.dst_port, f.src_port) >= 0) return;
    for (const PendingSyn& p : state_->backlog) {
      if (p.used && p.listen_port == f.dst_port && p.src_port == f.src_port) {
        return;
      }
    }
    // Queue on the backlog if a listener for the port exists.
    bool listening = false;
    for (const Sock& l : state_->socks) {
      listening = listening || (l.state == SockState::kListening &&
                                l.local_port == f.dst_port);
    }
    if (!listening) return;
    for (PendingSyn& p : state_->backlog) {
      if (!p.used) {
        p = PendingSyn{true, f.dst_port, f.src_port, f.seq};
        return;
      }
    }
    // Backlog full: drop; the peer will retransmit the SYN.
    return;
  }

  if ((f.flags & (Frame::kSyn | Frame::kAck)) ==
      (Frame::kSyn | Frame::kAck)) {
    // SYN-ACK for an active open: match by local port.
    for (std::size_t i = 0; i < kMaxSocks; ++i) {
      Sock& s = state_->socks[i];
      if (s.state == SockState::kEstablished && s.local_port == f.dst_port &&
          s.remote_port == f.src_port && s.rcv_ack == 0) {
        s.rcv_ack = f.seq + 1;
        SaveSocketVault(ctx);
        return;
      }
    }
    return;
  }

  if ((f.flags & Frame::kDgram) != 0) {
    // Connectionless delivery: route to a datagram socket bound to the
    // destination port; drop when none exists or its queue is full (UDP
    // loss semantics — no RST, no retransmission).
    for (Sock& s : state_->socks) {
      if (s.state == SockState::kFree || !s.dgram ||
          s.local_port != f.dst_port) {
        continue;
      }
      for (auto& d : s.dgrams) {
        if (d.used) continue;
        d.used = true;
        d.from = f.src_port;
        d.len = static_cast<std::uint16_t>(
            std::min(f.payload.size(), kDgramMax));
        // vampcheck:allow(dirtywrite, d.data lives in the State root and kState tracking taints it on entry)
        std::memcpy(d.data, f.payload.data(), d.len);
        return;
      }
      return;  // queue full: drop
    }
    return;  // no receiver: drop
  }

  const std::int64_t idx = FindByPorts(f.dst_port, f.src_port);
  if (idx < 0) {
    if ((f.flags & Frame::kData) != 0) {
      tx(Frame{.flags = Frame::kRst,
               .src_port = f.dst_port,
               .dst_port = f.src_port,
               .seq = 0,
               .ack = 0,
               .payload = {}});
    }
    return;
  }
  Sock& s = state_->socks[idx];
  if ((f.flags & Frame::kRst) != 0) {
    s.state = SockState::kClosed;
    SaveSocketVault(ctx);
    return;
  }
  if ((f.flags & Frame::kFin) != 0) {
    s.state = SockState::kClosed;
    SaveSocketVault(ctx);
    return;
  }
  if ((f.flags & Frame::kData) != 0) {
    if (f.seq != s.rcv_ack) {
      // Sequence discontinuity: the connection state was lost (e.g. LWIP
      // rebooted without restoration). Reset, as a real peer would observe.
      tx(Frame{.flags = Frame::kRst,
               .src_port = s.local_port,
               .dst_port = s.remote_port,
               .seq = 0,
               .ack = 0,
               .payload = {}});
      s.state = SockState::kClosed;
      SaveSocketVault(ctx);
      return;
    }
    const auto n = std::min<std::size_t>(f.payload.size(),
                                         kRcvBuf - s.buf_len);
    // vampcheck:allow(dirtywrite, s.buf lives in the State root and kState tracking taints it on entry)
    std::memcpy(s.buf + s.buf_len, f.payload.data(), n);
    s.buf_len += static_cast<std::uint32_t>(n);
    s.rcv_ack += static_cast<std::uint32_t>(f.payload.size());
    SaveSocketVault(ctx);
  }
}

int LwipComponent::DrainFrames(CallCtx& ctx, int budget) {
  int processed = 0;
  for (int i = 0; i < budget; ++i) {
    MsgValue wire = ctx.Call(netdev_rx_, {});
    if (!wire.is_bytes() || wire.bytes().empty()) break;
    RouteFrame(ctx, DecodeFrame(wire.bytes()));
    processed++;
  }
  return processed;
}

void LwipComponent::Init(InitCtx& ctx) {
  state_ = MakeState<State>();

  ctx.Export("socket", FnOptions{.logged = true, .session_from_ret = true},
             [this](CallCtx& c, const Args&) {
               const std::int64_t s = AllocSock(c);
               if (s < 0) return MsgValue(s);
               state_->socks[s] = Sock{};
               state_->socks[s].state = SockState::kOpen;
               return MsgValue(s);
             });

  ctx.Export("bind", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               Sock* s = Get(args[0].i64());
               if (s == nullptr) return Err(Errno::kBadF);
               s->local_port = static_cast<std::uint16_t>(args[1].i64());
               s->state = SockState::kBound;
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("listen", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               Sock* s = Get(args[0].i64());
               if (s == nullptr || s->state != SockState::kBound ||
                   s->dgram) {
                 return Err(Errno::kInval);
               }
               s->state = SockState::kListening;
               return MsgValue(std::int64_t{0});
             });

  // connect(s, remote_port): active open. Optimistic (fast-open style): the
  // socket is usable immediately; the SYN-ACK patches rcv_ack when routed.
  ctx.Export(
      "connect", FnOptions{.logged = true, .session_arg = 0},
      [this](CallCtx& c, const Args& args) {
        Sock* s = Get(args[0].i64());
        if (s == nullptr) return Err(Errno::kBadF);
        if (s->local_port == 0) {
          s->local_port =
              static_cast<std::uint16_t>(40000 + args[0].i64());
        }
        s->remote_port = static_cast<std::uint16_t>(args[1].i64());
        s->snd_seq = kInitialSeq;
        s->rcv_ack = 0;
        s->state = SockState::kEstablished;
        if (!c.restoring()) {
          (void)c.Call(netdev_tx_,
                       {MsgValue(EncodeFrame(Frame{
                           .flags = Frame::kSyn,
                           .src_port = s->local_port,
                           .dst_port = s->remote_port,
                           .seq = s->snd_seq - 1,
                           .ack = 0,
                           .payload = {}}))});
          SaveSocketVault(c);
        }
        return MsgValue(std::int64_t{0});
      });

  // accept(listener) -> new socket id, or -EAGAIN. Not logged: accepted
  // connections are restored from the runtime-data vault, not by replay.
  ctx.Export(
      "accept", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        Sock* l = Get(args[0].i64());
        if (l == nullptr || l->state != SockState::kListening) {
          return Err(Errno::kInval);
        }
        auto find_pending = [&]() -> PendingSyn* {
          for (PendingSyn& p : state_->backlog) {
            if (p.used && p.listen_port == l->local_port) return &p;
          }
          return nullptr;
        };
        PendingSyn* pending = find_pending();
        if (pending == nullptr) {
          DrainFrames(c, kDrainBudget);
          pending = find_pending();
        }
        if (pending == nullptr) return Err(Errno::kAgain);
        const std::int64_t s_idx = AllocSock(c);
        if (s_idx < 0) return MsgValue(s_idx);
        Sock& s = state_->socks[s_idx];
        s = Sock{};
        s.state = SockState::kEstablished;
        s.local_port = l->local_port;
        s.remote_port = pending->src_port;
        s.rcv_ack = pending->seq + 1;
        s.snd_seq = kInitialSeq;
        pending->used = false;
        (void)c.Call(netdev_tx_,
                     {MsgValue(EncodeFrame(Frame{
                         .flags = static_cast<std::uint8_t>(Frame::kSyn |
                                                            Frame::kAck),
                         .src_port = s.local_port,
                         .dst_port = s.remote_port,
                         .seq = s.snd_seq - 1,
                         .ack = s.rcv_ack,
                         .payload = {}}))});
        SaveSocketVault(c);
        return MsgValue(s_idx);
      });

  // send(s, data) -> n. Not logged; seq numbers are vault-restored.
  ctx.Export(
      "send", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        Sock* s = Get(args[0].i64());
        if (s == nullptr || s->state != SockState::kEstablished) {
          return Err(Errno::kNotConn);
        }
        const std::string& data = args[1].bytes();
        (void)c.Call(netdev_tx_,
                     {MsgValue(EncodeFrame(Frame{
                         .flags = Frame::kData,
                         .src_port = s->local_port,
                         .dst_port = s->remote_port,
                         .seq = s->snd_seq,
                         .ack = s->rcv_ack,
                         .payload = data}))});
        s->snd_seq += static_cast<std::uint32_t>(data.size());
        SaveSocketVault(c);
        return MsgValue(static_cast<std::int64_t>(data.size()));
      });

  // recv(s, maxlen) -> bytes, or -EAGAIN / -ENOTCONN.
  ctx.Export(
      "recv", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        Sock* s = Get(args[0].i64());
        if (s == nullptr) return Err(Errno::kBadF);
        // Drain one frame at a time: stop as soon as this socket has data,
        // leaving the rest of the wire for later receivers.
        for (int i = 0; s->buf_len == 0 && i < kDrainBudget; ++i) {
          if (DrainFrames(c, 1) == 0) break;
        }
        if (s->state == SockState::kClosed && s->buf_len == 0) {
          return Err(Errno::kNotConn);
        }
        if (s->buf_len == 0) return Err(Errno::kAgain);
        const auto n = std::min<std::uint32_t>(
            s->buf_len, static_cast<std::uint32_t>(args[1].i64()));
        std::string out(s->buf, n);
        // vampcheck:allow(dirtywrite, s->buf lives in the State root and kState tracking taints it on entry)
        std::memmove(s->buf, s->buf + n, s->buf_len - n);
        s->buf_len -= n;
        return MsgValue(std::move(out));
      });

  ctx.Export(
      "sock_net_close",
      FnOptions{.logged = true, .session_arg = 0, .canceling = true},
      [this](CallCtx& c, const Args& args) {
        Sock* s = Get(args[0].i64());
        if (s == nullptr) return Err(Errno::kBadF);
        if (s->state == SockState::kEstablished && !c.restoring()) {
          (void)c.Call(netdev_tx_,
                       {MsgValue(EncodeFrame(Frame{
                           .flags = Frame::kFin,
                           .src_port = s->local_port,
                           .dst_port = s->remote_port,
                           .seq = s->snd_seq,
                           .ack = 0,
                           .payload = {}}))});
        }
        *s = Sock{};
        if (!c.restoring()) SaveSocketVault(c);
        return MsgValue(std::int64_t{0});
      });

  ctx.Export("shutdown", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               Sock* s = Get(args[0].i64());
               if (s == nullptr) return Err(Errno::kBadF);
               s->state = SockState::kClosed;
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("setsockopt", FnOptions{.logged = true, .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               Sock* s = Get(args[0].i64());
               if (s == nullptr) return Err(Errno::kBadF);
               s->opt_flags |= static_cast<std::uint32_t>(args[1].i64());
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("getsockopt",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               Sock* s = Get(args[0].i64());
               if (s == nullptr) return Err(Errno::kBadF);
               return MsgValue(static_cast<std::int64_t>(s->opt_flags));
             });

  ctx.Export("sock_net_ioctl",
             FnOptions{.logged = true, .state_changing = false,
                       .session_arg = 0},
             [this](CallCtx&, const Args& args) {
               return Get(args[0].i64()) != nullptr
                          ? MsgValue(std::int64_t{0})
                          : Err(Errno::kBadF);
             });

  // ------------------------------------------------------ UDP (datagram)

  ctx.Export("socket_dgram",
             FnOptions{.logged = true, .session_from_ret = true},
             [this](CallCtx& c, const Args&) {
               const std::int64_t s = AllocSock(c);
               if (s < 0) return MsgValue(s);
               state_->socks[s] = Sock{};
               state_->socks[s].state = SockState::kOpen;
               state_->socks[s].dgram = true;
               return MsgValue(s);
             });

  // sendto(s, port, data) -> n. Connectionless; not logged (no state).
  ctx.Export(
      "sendto", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        Sock* s = Get(args[0].i64());
        if (s == nullptr || !s->dgram) return Err(Errno::kBadF);
        if (s->local_port == 0) {
          s->local_port = static_cast<std::uint16_t>(50000 + args[0].i64());
        }
        const std::string& data = args[2].bytes();
        if (data.size() > kDgramMax) return Err(Errno::kInval);
        (void)c.Call(netdev_tx_,
                     {MsgValue(EncodeFrame(Frame{
                         .flags = Frame::kDgram,
                         .src_port = s->local_port,
                         .dst_port = static_cast<std::uint16_t>(args[1].i64()),
                         .seq = 0,
                         .ack = 0,
                         .payload = data}))});
        return MsgValue(static_cast<std::int64_t>(data.size()));
      });

  // recvfrom(s) -> one datagram's bytes, or -EAGAIN. Sender port via
  // last_peer(). Datagram boundaries are preserved.
  ctx.Export(
      "recvfrom", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        Sock* s = Get(args[0].i64());
        if (s == nullptr || !s->dgram) return Err(Errno::kBadF);
        auto take = [&]() -> MsgValue {
          for (auto& d : s->dgrams) {
            if (!d.used) continue;
            d.used = false;
            s->last_peer = d.from;
            // Read-only payload: lend the datagram slot to the caller for
            // one hop instead of copying it through the message arena.
            return MsgValue::Borrowed(
                std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(d.data), d.len),
                arena());
          }
          return Err(Errno::kAgain);
        };
        MsgValue first = take();
        if (first.is_bytes()) return first;
        DrainFrames(c, kDrainBudget);
        return take();
      });

  ctx.Export("last_peer", FnOptions{},
             [this](CallCtx&, const Args& args) {
               Sock* s = Get(args[0].i64());
               if (s == nullptr) return Err(Errno::kBadF);
               return MsgValue(static_cast<std::int64_t>(s->last_peer));
             });

  // Poll entry used by server loops: drain pending frames outside recv.
  ctx.Export("poll", FnOptions{},
             [this](CallCtx& c, const Args&) {
               return MsgValue(
                   static_cast<std::int64_t>(DrainFrames(c, kDrainBudget)));
             });
}

void LwipComponent::Bind(InitCtx& ctx) {
  netdev_tx_ = ctx.Import("netdev", "tx");
  netdev_rx_ = ctx.Import("netdev", "rx");
}

void LwipComponent::OnReplayed(CallCtx& ctx) {
  // Re-install runtime data: sequence/ACK numbers and accepted connections
  // that replay cannot reconstruct (paper §V-B).
  auto blob = ctx.LoadRuntimeData("socks");
  if (!blob.has_value() || !blob->is_bytes()) return;
  const std::string& wire = blob->bytes();
  Args fields = msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(wire.data()), wire.size()));
  for (std::size_t i = 0; i + 6 < fields.size(); i += 7) {
    const auto idx = static_cast<std::size_t>(fields[i].i64());
    if (idx >= kMaxSocks) continue;
    Sock& s = state_->socks[idx];
    s.state = static_cast<SockState>(fields[i + 1].i64());
    s.local_port = static_cast<std::uint16_t>(fields[i + 2].i64());
    s.remote_port = static_cast<std::uint16_t>(fields[i + 3].i64());
    s.snd_seq = static_cast<std::uint32_t>(fields[i + 4].i64());
    s.rcv_ack = static_cast<std::uint32_t>(fields[i + 5].i64());
    s.opt_flags = static_cast<std::uint32_t>(fields[i + 6].i64());
    // Buffered-but-unread bytes are lost; the peer's next frame still
    // matches rcv_ack because routing advances it only at ingest.
    s.buf_len = 0;
  }
}

comp::CompactionHook LwipComponent::compaction_hook() {
  // Socket sessions carry no replay-relevant history beyond the boundary
  // calls plus the vault: everything else can be dropped wholesale.
  return [](const CompactionRequest&)
             -> std::vector<std::pair<FunctionId, Args>> { return {}; };
}

}  // namespace vampos::uk
