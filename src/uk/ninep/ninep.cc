#include "uk/ninep/ninep.h"

#include <cstring>
#include <span>

#include "msg/value.h"

namespace vampos::uk {

using comp::CallCtx;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::MsgValue;

namespace {
// Mirrors NinePOp in platform.cc (the wire protocol's two endpoints).
enum NinePOp : std::int64_t {
  kTwalk = 1,
  kTopen = 2,
  kTcreate = 3,
  kTread = 4,
  kTwrite = 5,
  kTmkdir = 6,
  kTremove = 7,
  kTstat = 8,
  kTfsync = 9,
  kTclunk = 10,
  kTrename = 11,
  kTreaddir = 12,
  kTtruncate = 13,
};

Args DecodeReply(const MsgValue& wire) {
  const std::string& s = wire.bytes();
  return msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size()));
}
}  // namespace

NinePfsComponent::NinePfsComponent()
    : Component("9pfs", Statefulness::kStateful, 2u << 20) {
  // All mutable bytes (mount point, fid table, counters) live in State.
  set_write_tracking(comp::WriteTracking::kState);
}

NinePfsComponent::FidEntry* NinePfsComponent::Fid(std::int64_t fid) {
  if (fid < 0 || fid >= static_cast<std::int64_t>(kMaxFids)) return nullptr;
  FidEntry* e = &state_->fids[fid];
  return e->used ? e : nullptr;
}

std::int64_t NinePfsComponent::AllocFid(CallCtx& ctx) {
  if (auto forced = ctx.forced_session()) {
    return *forced;  // replay: reuse the originally allocated fid
  }
  for (std::size_t i = 0; i < kMaxFids; ++i) {
    if (!state_->fids[i].used) return static_cast<std::int64_t>(i);
  }
  return -static_cast<std::int64_t>(Errno::kMFile);
}

msg::MsgValue NinePfsComponent::Rpc(CallCtx& ctx, Args args) {
  state_->rpcs++;
  auto bytes = msg::SerializeArgs(args);
  return ctx.Call(virtio_rpc_,
                  {MsgValue(std::string(
                      reinterpret_cast<const char*>(bytes.data()),
                      bytes.size()))});
}

void NinePfsComponent::Init(InitCtx& ctx) {
  state_ = MakeState<State>();

  // mount(path): attach to the host export. Logged + replayed.
  ctx.Export(
      "mount", FnOptions{.logged = true},
      [this](CallCtx& c, const Args& args) {
        Args reply = DecodeReply(
            Rpc(c, {MsgValue(std::int64_t{kTwalk}), args[0]}));
        if (reply[0].i64() != 0) {
          // The export root may not exist yet on first mount: create it.
          Rpc(c, {MsgValue(std::int64_t{kTmkdir}), args[0]});
        }
        state_->mounted = true;
        std::strncpy(state_->mount_point, args[0].bytes().c_str(),
                     kMaxPath - 1);
        return MsgValue(std::int64_t{0});
      });

  ctx.Export("unmount", FnOptions{.logged = true},
             [this](CallCtx&, const Args&) {
               state_->mounted = false;
               return MsgValue(std::int64_t{0});
             });

  // lookup(path) -> fid: 9P walk. Session-creating (fid from return).
  ctx.Export(
      "lookup", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args& args) {
        if (!state_->mounted) {
          return MsgValue(ToWire(Status::Error(Errno::kIo, "not mounted")));
        }
        Args reply = DecodeReply(
            Rpc(c, {MsgValue(std::int64_t{kTwalk}), args[0]}));
        if (reply[0].i64() != 0) {
          return MsgValue(ToWire(Status::Error(Errno::kNoEnt)));
        }
        const std::int64_t fid = AllocFid(c);
        if (fid < 0) return MsgValue(fid);
        FidEntry& e = state_->fids[fid];
        e.used = true;
        e.open = false;
        e.is_dir = reply[1].i64() == 1;
        std::strncpy(e.path, args[0].bytes().c_str(), kMaxPath - 1);
        return MsgValue(fid);
      });

  // create(path) -> fid.
  ctx.Export(
      "create", FnOptions{.logged = true, .session_from_ret = true},
      [this](CallCtx& c, const Args& args) {
        Args reply = DecodeReply(
            Rpc(c, {MsgValue(std::int64_t{kTcreate}), args[0]}));
        if (reply[0].i64() != 0) {
          return MsgValue(ToWire(Status::Error(Errno::kIo)));
        }
        const std::int64_t fid = AllocFid(c);
        if (fid < 0) return MsgValue(fid);
        FidEntry& e = state_->fids[fid];
        e.used = true;
        e.open = false;
        e.is_dir = false;
        std::strncpy(e.path, args[0].bytes().c_str(), kMaxPath - 1);
        return MsgValue(fid);
      });

  // open(fid) -> size: marks the fid open. Logged, session-scoped.
  ctx.Export(
      "open", FnOptions{.logged = true, .session_arg = 0},
      [this](CallCtx& c, const Args& args) {
        FidEntry* e = Fid(args[0].i64());
        if (e == nullptr) {
          return MsgValue(ToWire(Status::Error(Errno::kBadF)));
        }
        Args reply = DecodeReply(
            Rpc(c, {MsgValue(std::int64_t{kTopen}), MsgValue(e->path)}));
        if (reply[0].i64() != 0) {
          return MsgValue(ToWire(Status::Error(Errno::kNoEnt)));
        }
        e->open = true;
        return reply[1];  // current size
      });

  // read(fid, off, len) -> bytes. Does not change 9PFS state: not logged.
  ctx.Export(
      "read", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        FidEntry* e = Fid(args[0].i64());
        if (e == nullptr || !e->open) {
          return MsgValue(ToWire(Status::Error(Errno::kBadF)));
        }
        Args reply = DecodeReply(Rpc(c, {MsgValue(std::int64_t{kTread}),
                                         MsgValue(e->path), args[1],
                                         args[2]}));
        if (reply[0].i64() != 0) {
          return MsgValue(ToWire(Status::Error(Errno::kIo)));
        }
        return reply[1];
      });

  // write(fid, off, data) -> n. Contents live on the host: not logged.
  ctx.Export(
      "write", FnOptions{},
      [this](CallCtx& c, const Args& args) {
        FidEntry* e = Fid(args[0].i64());
        if (e == nullptr || !e->open) {
          return MsgValue(ToWire(Status::Error(Errno::kBadF)));
        }
        Args reply = DecodeReply(Rpc(c, {MsgValue(std::int64_t{kTwrite}),
                                         MsgValue(e->path), args[1],
                                         args[2]}));
        if (reply[0].i64() != 0) {
          return MsgValue(ToWire(Status::Error(Errno::kIo)));
        }
        return reply[1];
      });

  // clunk(fid): release. Canceling: prunes the fid's session entries.
  ctx.Export("clunk",
             FnOptions{.logged = true, .session_arg = 0, .canceling = true},
             [this](CallCtx& c, const Args& args) {
               FidEntry* e = Fid(args[0].i64());
               if (e == nullptr) {
                 return MsgValue(ToWire(Status::Error(Errno::kBadF)));
               }
               // Real 9P sends Tclunk so the server can release the fid;
               // skipped during replay (the fid was never re-opened on the
               // host side).
               if (!c.restoring()) {
                 Rpc(c, {MsgValue(std::int64_t{kTclunk}), MsgValue(e->path)});
               }
               *e = FidEntry{};
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("mkdir", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               Rpc(c, {MsgValue(std::int64_t{kTmkdir}), args[0]});
               return MsgValue(std::int64_t{0});
             });

  ctx.Export("remove", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               FidEntry* e = Fid(args[0].i64());
               if (e == nullptr) {
                 return MsgValue(ToWire(Status::Error(Errno::kBadF)));
               }
               Rpc(c, {MsgValue(std::int64_t{kTremove}), MsgValue(e->path)});
               *e = FidEntry{};
               return MsgValue(std::int64_t{0});
             });

  // stat(fid) -> size. fstat-style: logged but skipped during replay
  // ("skips functions that do not change the component states", §V-B).
  ctx.Export(
      "stat", FnOptions{.logged = true, .state_changing = false,
                        .session_arg = 0},
      [this](CallCtx& c, const Args& args) {
        FidEntry* e = Fid(args[0].i64());
        if (e == nullptr) {
          return MsgValue(ToWire(Status::Error(Errno::kBadF)));
        }
        Args reply = DecodeReply(
            Rpc(c, {MsgValue(std::int64_t{kTstat}), MsgValue(e->path)}));
        if (reply[0].i64() != 0) {
          return MsgValue(ToWire(Status::Error(Errno::kNoEnt)));
        }
        return reply[2];  // size
      });

  // remove_path(path): unlink by path (no fid involved). Changes only host
  // state, so it is not logged for replay.
  ctx.Export("remove_path", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               Args reply = DecodeReply(
                   Rpc(c, {MsgValue(std::int64_t{kTremove}), args[0]}));
               return MsgValue(reply[0].i64() == 0
                                   ? std::int64_t{0}
                                   : ToWire(Status::Error(Errno::kNoEnt)));
             });

  // rename(old, new). Fids opened under the old path keep pointing at it
  // (as with a removed-but-open file); logged so replayed fids resolve.
  ctx.Export("rename", FnOptions{.logged = true},
             [this](CallCtx& c, const Args& args) {
               Args reply = DecodeReply(Rpc(
                   c, {MsgValue(std::int64_t{kTrename}), args[0], args[1]}));
               if (reply[0].i64() != 0) {
                 return MsgValue(ToWire(Status::Error(Errno::kNoEnt)));
               }
               // Re-point any fid that referenced the old path.
               for (auto& fid : state_->fids) {
                 if (fid.used &&
                     std::strcmp(fid.path, args[0].bytes().c_str()) == 0) {
                   std::strncpy(fid.path, args[1].bytes().c_str(),
                                kMaxPath - 1);
                 }
               }
               return MsgValue(std::int64_t{0});
             });

  // readdir(path) -> newline-separated child names.
  ctx.Export("readdir", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               Args reply = DecodeReply(
                   Rpc(c, {MsgValue(std::int64_t{kTreaddir}), args[0]}));
               if (reply[0].i64() != 0) {
                 return MsgValue(ToWire(Status::Error(Errno::kNotDir)));
               }
               return reply[1];
             });

  // truncate(fid, len).
  ctx.Export("truncate", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               FidEntry* e = Fid(args[0].i64());
               if (e == nullptr || !e->open) {
                 return MsgValue(ToWire(Status::Error(Errno::kBadF)));
               }
               Args reply = DecodeReply(
                   Rpc(c, {MsgValue(std::int64_t{kTtruncate}),
                           MsgValue(e->path), args[1]}));
               return MsgValue(reply[0].i64() == 0
                                   ? std::int64_t{0}
                                   : ToWire(Status::Error(Errno::kIo)));
             });

  // stat_path(path) -> size, or -ENOENT. Pure read: not logged.
  ctx.Export("stat_path", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               Args reply = DecodeReply(
                   Rpc(c, {MsgValue(std::int64_t{kTstat}), args[0]}));
               if (reply[0].i64() != 0) {
                 return MsgValue(ToWire(Status::Error(Errno::kNoEnt)));
               }
               return reply[2];
             });

  ctx.Export("fsync", FnOptions{},
             [this](CallCtx& c, const Args& args) {
               FidEntry* e = Fid(args[0].i64());
               if (e == nullptr) {
                 return MsgValue(ToWire(Status::Error(Errno::kBadF)));
               }
               Rpc(c, {MsgValue(std::int64_t{kTfsync}), MsgValue(e->path)});
               return MsgValue(std::int64_t{0});
             });
}

void NinePfsComponent::Bind(InitCtx& ctx) {
  virtio_rpc_ = ctx.Import("virtio", "ninep_rpc");
}

}  // namespace vampos::uk
