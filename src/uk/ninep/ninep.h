// 9PFS: file-system backend speaking the 9P protocol to the host server
// through the VIRTIO transport (QEMU virtfs equivalent).
//
// Stateful component (paper Table I): its fid table maps fids to host paths
// and open state. File *contents* live on the host and survive a 9PFS
// reboot; the fid table is rebuilt by encapsulated restoration replaying the
// logged mount/lookup/open/clunk calls (Table II) with the VIRTIO return
// values fed from the log.
#pragma once

#include <cstdint>

#include "comp/component.h"

namespace vampos::uk {

class NinePfsComponent final : public comp::Component {
 public:
  NinePfsComponent();
  void Init(comp::InitCtx& ctx) override;
  void Bind(comp::InitCtx& ctx) override;

  static constexpr std::size_t kMaxFids = 256;
  static constexpr std::size_t kMaxPath = 160;

 private:
  struct FidEntry {
    bool used = false;
    bool open = false;
    bool is_dir = false;
    char path[kMaxPath] = {};
  };
  struct State {
    bool mounted = false;
    char mount_point[kMaxPath] = {};
    FidEntry fids[kMaxFids] = {};
    std::uint64_t rpcs = 0;
  };

  std::int64_t AllocFid(comp::CallCtx& ctx);
  msg::MsgValue Rpc(comp::CallCtx& ctx, msg::Args args);
  FidEntry* Fid(std::int64_t fid);

  State* state_ = nullptr;
  FunctionId virtio_rpc_ = -1;
};

}  // namespace vampos::uk
