#include "uk/platform.h"

#include <span>

#include "msg/value.h"

namespace vampos::uk {

namespace {
// 9P op codes for our compact wire encoding (subset of 9P2000.L, path-keyed
// because the client tracks fid->path).
enum NinePOp : std::int64_t {
  kTwalk = 1,
  kTopen = 2,
  kTcreate = 3,
  kTread = 4,
  kTwrite = 5,
  kTmkdir = 6,
  kTremove = 7,
  kTstat = 8,
  kTfsync = 9,
  kTclunk = 10,
  kTrename = 11,
  kTreaddir = 12,
  kTtruncate = 13,
};

// Upper bound on file size / I/O offsets the server will honor: a malformed
// or hostile client must not be able to make the host allocate absurd
// amounts of memory with one Twrite at a huge offset.
constexpr std::int64_t kMaxFileBytes = 64u << 20;

bool BadRange(std::int64_t off, std::int64_t len = 0) {
  return off < 0 || len < 0 || off > kMaxFileBytes || len > kMaxFileBytes;
}

std::string ParentOf(const std::string& path) {
  auto pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

std::string Encode(const msg::Args& args) {
  auto bytes = msg::SerializeArgs(args);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}
msg::Args Decode(const std::string& wire) {
  return msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(wire.data()), wire.size()));
}
}  // namespace

void NinePServer::PutFile(const std::string& path, std::string data) {
  MakeDir(ParentOf(path));
  tree_[path] = Node{.is_dir = false, .data = std::move(data)};
}

void NinePServer::MakeDir(const std::string& path) {
  if (path.empty() || path == "/") return;
  MakeDir(ParentOf(path));
  auto it = tree_.find(path);
  if (it == tree_.end()) tree_[path] = Node{.is_dir = true, .data = {}};
}

std::optional<std::string> NinePServer::ReadFile(
    const std::string& path) const {
  auto it = tree_.find(path);
  if (it == tree_.end() || it->second.is_dir) return std::nullopt;
  return it->second.data;
}

std::string NinePServer::Handle(const std::string& request) {
  requests_++;
  msg::Args args = Decode(request);
  auto bad = [] {
    return Encode(
        {msg::MsgValue(std::int64_t{-1}), msg::MsgValue("malformed")});
  };
  if (args.empty() || !args[0].is_i64()) return bad();
  if (args.size() > 1 && !args[1].is_bytes()) return bad();
  const auto op = static_cast<NinePOp>(args[0].i64());
  const std::string path = args.size() > 1 ? args[1].bytes() : "";
  auto reply_err = [](const char* what) {
    return Encode({msg::MsgValue(std::int64_t{-1}), msg::MsgValue(what)});
  };
  auto reply_ok = [](msg::Args extra) {
    msg::Args out{msg::MsgValue(std::int64_t{0})};
    for (auto& v : extra) out.push_back(std::move(v));
    return Encode(out);
  };

  switch (op) {
    case kTwalk: {
      auto it = tree_.find(path);
      if (it == tree_.end()) return reply_err("no such file");
      return reply_ok({msg::MsgValue(std::int64_t{it->second.is_dir ? 1 : 0}),
                       msg::MsgValue(static_cast<std::int64_t>(
                           it->second.data.size()))});
    }
    case kTopen: {
      auto it = tree_.find(path);
      if (it == tree_.end()) return reply_err("no such file");
      return reply_ok({msg::MsgValue(static_cast<std::int64_t>(
          it->second.data.size()))});
    }
    case kTcreate: {
      if (!tree_.contains(ParentOf(path))) return reply_err("no parent");
      auto [it, inserted] = tree_.try_emplace(path, Node{});
      (void)inserted;
      if (it->second.is_dir) return reply_err("is a directory");
      return reply_ok({msg::MsgValue(static_cast<std::int64_t>(
          it->second.data.size()))});
    }
    case kTread: {
      auto it = tree_.find(path);
      if (it == tree_.end() || it->second.is_dir) return reply_err("bad read");
      if (args.size() < 4 || !args[2].is_i64() || !args[3].is_i64() ||
          BadRange(args[2].i64(), args[3].i64())) {
        return reply_err("bad range");
      }
      const auto off = static_cast<std::size_t>(args[2].i64());
      const auto len = static_cast<std::size_t>(args[3].i64());
      if (off >= it->second.data.size()) return reply_ok({msg::MsgValue("")});
      return reply_ok({msg::MsgValue(it->second.data.substr(off, len))});
    }
    case kTwrite: {
      auto it = tree_.find(path);
      if (it == tree_.end() || it->second.is_dir) {
        return reply_err("bad write");
      }
      if (args.size() < 4 || !args[2].is_i64() || !args[3].is_bytes() ||
          BadRange(args[2].i64(),
                   static_cast<std::int64_t>(args[3].bytes().size()))) {
        return reply_err("bad range");
      }
      const auto off = static_cast<std::size_t>(args[2].i64());
      const std::string& data = args[3].bytes();
      std::string& file = it->second.data;
      if (file.size() < off + data.size()) file.resize(off + data.size());
      file.replace(off, data.size(), data);
      return reply_ok(
          {msg::MsgValue(static_cast<std::int64_t>(data.size()))});
    }
    case kTmkdir: {
      MakeDir(path);
      return reply_ok({});
    }
    case kTremove: {
      tree_.erase(path);
      return reply_ok({});
    }
    case kTstat: {
      auto it = tree_.find(path);
      if (it == tree_.end()) return reply_err("no such file");
      return reply_ok({msg::MsgValue(std::int64_t{it->second.is_dir ? 1 : 0}),
                       msg::MsgValue(static_cast<std::int64_t>(
                           it->second.data.size()))});
    }
    case kTfsync:
    case kTclunk:
      return reply_ok({});
    case kTrename: {
      auto it = tree_.find(path);
      if (it == tree_.end()) return reply_err("no such file");
      if (args.size() < 3 || !args[2].is_bytes()) {
        return reply_err("bad rename");
      }
      const std::string& to = args[2].bytes();
      if (!tree_.contains(ParentOf(to))) return reply_err("no parent");
      Node node = std::move(it->second);
      tree_.erase(it);
      tree_[to] = std::move(node);
      return reply_ok({});
    }
    case kTreaddir: {
      auto it = tree_.find(path);
      if (it == tree_.end() || !it->second.is_dir) {
        return reply_err("not a directory");
      }
      // Direct children only, newline-separated basenames.
      std::string listing;
      const std::string prefix = path == "/" ? "/" : path + "/";
      for (const auto& [p, node] : tree_) {
        (void)node;
        if (p.size() <= prefix.size() || p.compare(0, prefix.size(), prefix)) {
          continue;
        }
        if (p.find('/', prefix.size()) != std::string::npos) continue;
        listing += p.substr(prefix.size());
        listing += '\n';
      }
      return reply_ok({msg::MsgValue(std::move(listing))});
    }
    case kTtruncate: {
      auto it = tree_.find(path);
      if (it == tree_.end() || it->second.is_dir) {
        return reply_err("bad truncate");
      }
      if (args.size() < 3 || !args[2].is_i64() || BadRange(args[2].i64())) {
        return reply_err("bad range");
      }
      it->second.data.resize(static_cast<std::size_t>(args[2].i64()));
      return reply_ok({});
    }
  }
  return reply_err("bad op");
}

std::string EncodeFrame(const Frame& f) {
  msg::Args args{msg::MsgValue(static_cast<std::int64_t>(f.flags)),
                 msg::MsgValue(static_cast<std::int64_t>(f.src_port)),
                 msg::MsgValue(static_cast<std::int64_t>(f.dst_port)),
                 msg::MsgValue(static_cast<std::int64_t>(f.seq)),
                 msg::MsgValue(static_cast<std::int64_t>(f.ack)),
                 msg::MsgValue(f.payload)};
  auto bytes = msg::SerializeArgs(args);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

Frame DecodeFrame(const std::string& wire) {
  msg::Args args = msg::DeserializeArgs(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(wire.data()), wire.size()));
  Frame f;
  f.flags = static_cast<std::uint8_t>(args[0].i64());
  f.src_port = static_cast<std::uint16_t>(args[1].i64());
  f.dst_port = static_cast<std::uint16_t>(args[2].i64());
  f.seq = static_cast<std::uint32_t>(args[3].i64());
  f.ack = static_cast<std::uint32_t>(args[4].i64());
  f.payload = args[5].bytes();
  return f;
}

}  // namespace vampos::uk
