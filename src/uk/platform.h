// Host-side platform objects: what lives *outside* the unikernel.
//
// In the paper's setup these are QEMU/host-Linux artifacts: the 9P server
// backing virtfs, the tap/virtio network backend, and the virtio rings the
// guest shares with the host. They survive any component reboot inside the
// unikernel — which is exactly why 9PFS/LWIP can be rebooted and restored
// (file contents and peers live here), and why VIRTIO cannot (its ring
// state is shared with this side, §VIII).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vampos::uk {

/// Ethernet-ish frame carrying our mini-TCP segments between the unikernel
/// NETDEV and host-side peers (the client harness).
struct Frame {
  enum Flags : std::uint8_t {
    kSyn = 1,
    kAck = 2,
    kFin = 4,
    kRst = 8,
    kData = 16,
    kDgram = 32,  // connectionless datagram (UDP)
  };
  std::uint8_t flags = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::string payload;
};

/// Frame wire codec, shared by every layer that touches frames (VIRTIO's
/// rings, NETDEV, LWIP, and the host-side client harness).
std::string EncodeFrame(const Frame& f);
Frame DecodeFrame(const std::string& wire);

/// Host network backend: two queues per direction, the moral equivalent of
/// the tap device QEMU plugs virtio-net into.
class HostNet {
 public:
  void GuestTx(Frame f) { to_host_.push_back(std::move(f)); }
  std::optional<Frame> GuestRx() {
    if (to_guest_.empty()) return std::nullopt;
    Frame f = std::move(to_guest_.front());
    to_guest_.pop_front();
    return f;
  }
  // Host/client side.
  void HostSend(Frame f) { to_guest_.push_back(std::move(f)); }
  std::optional<Frame> HostRecv() {
    if (to_host_.empty()) return std::nullopt;
    Frame f = std::move(to_host_.front());
    to_host_.pop_front();
    return f;
  }
  /// Puts a received frame back for another host-side consumer (several
  /// clients share one tap; each takes only frames addressed to it).
  void HostRequeue(Frame f) { to_host_.push_back(std::move(f)); }
  [[nodiscard]] std::size_t pending_to_guest() const {
    return to_guest_.size();
  }
  [[nodiscard]] std::size_t pending_to_host() const { return to_host_.size(); }

 private:
  std::deque<Frame> to_host_;
  std::deque<Frame> to_guest_;
};

/// Host-side 9P file server (QEMU virtfs equivalent): owns the real file
/// tree. The guest's 9PFS component is only a protocol client over fids.
class NinePServer {
 public:
  struct Node {
    bool is_dir = false;
    std::string data;
  };

  NinePServer() { tree_["/"] = Node{.is_dir = true, .data = {}}; }

  /// Handles one serialized 9P request (our compact wire encoding, see
  /// uk/ninep). Returns the serialized response.
  std::string Handle(const std::string& request);

  // Direct host-side access for tests and workload setup.
  bool Exists(const std::string& path) const { return tree_.contains(path); }
  void PutFile(const std::string& path, std::string data);
  void MakeDir(const std::string& path);
  std::optional<std::string> ReadFile(const std::string& path) const;
  [[nodiscard]] std::size_t file_count() const { return tree_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

 private:
  std::map<std::string, Node> tree_;
  std::uint64_t requests_ = 0;
};

/// Everything host-side, bundled for stack assembly.
struct Platform {
  NinePServer ninep;
  HostNet net;
};

}  // namespace vampos::uk
