// The VampOS runtime: interface registry, message thread, component
// scheduling, failure detection, and component-level reboot.
//
// One Runtime instance is one unikernel-linked application. The runtime's
// main loop plays the paper's *message thread*: it maintains the message
// domain (buffers + logs), dispatches component fibers under the configured
// scheduling policy, monitors components for failures, and drives
// reboot-based recovery of individual components.
//
// Modes:
//   kUnikraft — baseline: cross-component calls are direct function calls on
//               the caller's context; no logging, isolation, or scheduling.
//   kVampOS   — message-passing calls, per-component fibers + MPK domains,
//               function-call/return-value logging, component reboots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "comp/component.h"
#include "core/recovery_pool.h"
#include "mem/snapshot.h"
#include "mpk/mpk.h"
#include "msg/domain.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/fiber.h"

namespace vampos::check {
class IsolationChecker;
}

namespace vampos::core {

enum class Mode { kUnikraft, kVampOS };
enum class SchedPolicy { kRoundRobin, kDependencyAware };

struct RuntimeOptions {
  Mode mode = Mode::kVampOS;
  SchedPolicy policy = SchedPolicy::kDependencyAware;
  /// Enable the MPK protection-domain simulation.
  bool isolation = true;
  /// When components outnumber the 16 hardware protection keys, share keys
  /// (EPK/libmpk-style) instead of leaving the overflow unisolated.
  bool virtualize_mpk_keys = true;
  /// Message-domain arena size (staging buffers).
  std::size_t msg_arena_size = 8u << 20;
  /// Session-aware log shrinking threshold, in entries per component log
  /// (paper default: 100). Compaction hooks fire when a log exceeds it.
  std::size_t log_shrink_threshold = 100;
  /// Master switch for session-aware shrinking (canceling-function pruning
  /// and stale-pair removal). Disabled only to measure the "normal" column
  /// of the paper's Table III.
  bool session_shrink = true;
  /// Hang detector: a message older than this without a reply marks its
  /// component hung (paper default: 1.0 s).
  Nanos hang_threshold = kSecond;
  /// Re-execute the in-flight request after a reboot (non-deterministic
  /// faults won't re-trigger). A second failure of the same request
  /// fail-stops, per the paper's fault model.
  bool retry_inflight = true;
  /// Start with the flight recorder enabled (it can also be toggled later
  /// via Runtime::recorder()). Off by default: the recorder ring is not
  /// even allocated, and every trace point is a single predicted branch.
  /// The VAMPOS_TRACE env var ("1"/"0") overrides this at construction, so
  /// any binary can be traced without a code change.
  bool tracing = false;
  /// Ring capacity (events) used when tracing is enabled. Overridden by
  /// the VAMPOS_TRACE_EVENTS env var when set to a positive integer.
  std::size_t trace_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Checkpoint engine (paper §V-E). kIncremental (default) captures and
  /// restores at 4 KiB page granularity with per-page content hashes:
  /// restores copy only divergent pages, re-captures copy only pages dirtied
  /// since the last capture, zero pages are elided, and post-init images are
  /// deduplicated through a runtime-wide read-only page baseline. kFullCopy
  /// is the legacy full-arena memcpy fallback (verified byte-equivalent by
  /// tests); both modes feed the snapshot.* metrics.
  mem::SnapshotMode snapshot_mode = mem::SnapshotMode::kIncremental;
  /// Worker threads for the page-hash pass of captures/restores; <= 1 hashes
  /// on the message thread. Page hashing is pure and deterministic, so the
  /// result is identical at any worker count.
  int snapshot_workers = 0;
  /// Write-time dirty-page tracking (requires kIncremental): every stateful
  /// component arena gets a per-4KiB-page bitmap fed by the sanctioned write
  /// paths (allocator, checked MPK writes, message-domain copies, explicit
  /// Arena::MarkDirty), and Recapture/Restore consume it so their cost is
  /// O(dirty pages) instead of O(footprint). Components that do not declare
  /// a WriteTracking level are conservatively whole-arena-tainted on every
  /// entry, which keeps them correct but un-accelerated. Overridden by the
  /// VAMPOS_DIRTY_TRACKING env var ("1"/"0").
  bool dirty_tracking = false;
  /// Audit sampling for dirty-tracked snapshot operations: roughly 1-in-N
  /// fast-path operations full-hash-scan anyway and flag any page that
  /// changed without its dirty bit (an untracked write). 0 disables audits;
  /// 1 audits every operation. Overridden by VAMPOS_SNAPSHOT_AUDIT.
  std::uint32_t dirty_audit_rate = 64;
  /// Fail-stop (Fatal) on an audit miss instead of counting and resyncing.
  /// Defaults to fail-stop in debug builds, count-and-resync in release.
#ifdef NDEBUG
  bool dirty_audit_fail_stop = false;
#else
  bool dirty_audit_fail_stop = true;
#endif
  /// Debug/CI isolation and liveness checking (vampcheck, see
  /// docs/static-analysis.md): shadow arena-ownership map, cross-domain
  /// pointer-leak scan on every push/reply, and wait-for-graph deadlock
  /// detection over blocked calls. Off by default: the runtime holds a null
  /// checker and every hook is a single predicted branch (same guarantee as
  /// the flight recorder).
  bool isolation_check = false;
  /// Worker threads for concurrent component recovery: checkpoint restores
  /// of distinct failed components run on a bounded pool while the message
  /// thread keeps serving unaffected components and replays restored
  /// components in dependency order. 0 (default) restores inline on the
  /// message thread — the legacy serialized behavior. Overridden by the
  /// VAMPOS_RECOVERY_WORKERS env var.
  int recovery_workers = 0;
  /// When a checkpoint restore fails (corrupt/foreign image), fall back to
  /// re-running Init on a freshly formatted arena, capture a new checkpoint,
  /// and rebuild state through the full log replay, instead of failing the
  /// reboot. Off by default (tests rely on the status-error contract); chaos
  /// campaigns enable it so corrupt-checkpoint faults stay recoverable.
  /// Caveat: incorrect after a refresh pruned replayed history from the log.
  bool reinit_on_restore_failure = false;
  /// Aging-aware health telemetry (docs/observability.md): per-component
  /// windowed series for request rate / errors / p99 latency / hangs /
  /// faults / arena bytes / dirty pages, with leak-slope, latency-drift,
  /// and error-rate detectors feeding a hysteresis health score. Off by
  /// default: the runtime holds a null monitor and every feed point is a
  /// single predicted branch (the flight-recorder guarantee). Overridden by
  /// the VAMPOS_HEALTH env var ("1"/"0"); can also be turned on later via
  /// Runtime::EnableHealth().
  bool health = false;
  /// Window geometry and detector thresholds used when health is enabled.
  obs::HealthConfig health_config = {};
  /// Zero-copy payload staging (docs/message-plane.md "zero-copy borrow
  /// protocol"): borrowed views in payloads cross the message domain as
  /// out-of-line references with a temporary MPK read grant instead of being
  /// copied through the staging arena. Byte-equivalent to the copy path by
  /// construction (fuzzed in test_zerocopy); the VAMPOS_MSG_ZEROCOPY env var
  /// ("1"/"0") overrides this at construction so the copy fallback stays one
  /// knob away.
  bool zero_copy_payloads = true;
  /// Same-destination inline call fast path: when the callee group is
  /// resident and idle (no queued work, no handler mid-flight, no armed
  /// injection or pending retry), run the handler synchronously on the
  /// caller's fiber instead of paying the queue + fiber hop. Counted in
  /// rt.direct_calls. Off by default: like merged-group DirectInvoke, an
  /// inlined handler executes outside the hang detector and the mid-call
  /// reboot window, which several recovery tests orchestrate through.
  /// Overridden by the VAMPOS_INLINE_CALLS env var ("1"/"0").
  bool inline_calls = false;
  Clock* clock = &SteadyClock::Instance();
};

/// Timing breakdown of one component reboot (paper Fig 6).
struct RebootReport {
  ComponentId component = kComponentNone;
  std::string name;
  bool stateless = false;
  Nanos total_ns = 0;
  Nanos stop_ns = 0;       // fiber teardown + queue handling
  Nanos snapshot_ns = 0;   // checkpoint restore (dominant for stateful)
  Nanos replay_ns = 0;     // encapsulated restoration
  std::size_t entries_replayed = 0;
  // Decomposition of the snapshot phase under the page-granular engine:
  // the hash pass (scales with arena size, parallelizable) vs the copy pass
  // (scales with how many pages actually diverged).
  Nanos snapshot_hash_ns = 0;
  Nanos snapshot_copy_ns = 0;
  std::size_t snapshot_pages_total = 0;
  std::size_t snapshot_pages_dirty = 0;   // pages copied by the restore
  std::size_t snapshot_bytes_copied = 0;  // bytes written into arenas
  // Dirty-tracking restore: pages never even read because their bit was
  // clean (nonzero only when the tracker fast path ran).
  std::size_t snapshot_pages_skipped = 0;
  // Rejuvenation refresh (Recapture) breakdown, filled only when the reboot
  // ran with refresh_checkpoint — this is where write-tracking pays: an
  // idle component's refresh should skip nearly every page.
  Nanos refresh_hash_ns = 0;
  Nanos refresh_copy_ns = 0;
  std::size_t refresh_pages_dirty = 0;
  std::size_t refresh_pages_skipped = 0;
};

/// Aggregate counters for the bench harness.
struct RuntimeStats {
  std::uint64_t calls = 0;             // cross-component calls issued
  std::uint64_t direct_calls = 0;      // baseline or intra-merge calls
  std::uint64_t messages = 0;          // messages pushed (calls + replies)
  std::uint64_t context_switches = 0;
  std::uint64_t empty_polls = 0;       // dispatches that found no message
  std::uint64_t pkru_writes = 0;
  std::uint64_t log_appends = 0;
  std::uint64_t log_pruned_entries = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compaction_skips = 0;  // over threshold, no eligible session
  std::uint64_t log_scans = 0;         // full-log passes (should stay flat)
  std::uint64_t replies_batched = 0;   // replies delivered in multi-reply batches
  std::uint64_t retries_deduped = 0;   // outbound calls fed from the log on retry
  std::uint64_t reboots = 0;
  std::uint64_t aux_fibers_spawned = 0;
  std::uint64_t hangs_detected = 0;
};

/// Per-exported-function metrics (observability for operators; also feeds
/// the Fig 5 transition analysis). Backed by the per-function latency
/// histograms in the metrics registry ("fn.<component>.<function>.ns").
struct FunctionStats {
  std::string name;         // "component.function"
  std::uint64_t calls = 0;  // handler executions (message or direct)
  Nanos total_ns = 0;       // time inside the handler
  std::uint64_t errors = 0; // negative-errno returns
  Nanos p50_ns = 0;         // handler-latency percentiles
  Nanos p95_ns = 0;
  Nanos p99_ns = 0;
};

/// Memory accounting across the whole runtime (paper Fig 7b).
struct MemoryReport {
  std::size_t component_arena_bytes = 0;  // sum of arena sizes
  std::size_t component_used_bytes = 0;   // buddy bytes_in_use
  std::size_t log_bytes = 0;              // call/return logs
  std::size_t log_entries = 0;
  std::size_t snapshot_bytes = 0;         // checkpoint images (logical)
  /// Private checkpoint storage actually held — excludes zero-elided pages
  /// and pages served by the shared baseline, so under the incremental
  /// engine this is typically far below snapshot_bytes.
  std::size_t snapshot_stored_bytes = 0;
  /// Read-only page pool shared by all checkpoints (counted once).
  std::size_t snapshot_baseline_bytes = 0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ------------------------------------------------------------ assembly
  /// Registers a component. Must precede Boot(). Returns its id.
  ComponentId AddComponent(std::unique_ptr<comp::Component> component);

  /// Declares that `from` sends messages to `to` — feeds dependency-aware
  /// scheduling's correlation table (paper §V-C).
  void AddDependency(ComponentId from, ComponentId to);
  /// Dependency edge from the application layer to a component.
  void AddAppDependency(ComponentId to);

  /// Component merging (§V-F): members share one fiber and one MPK key, and
  /// calls between them become direct function calls. Snapshots and logs
  /// remain per-primitive so the group reboots as a unit but restores each
  /// primitive's image. Call before Boot(). First id is the group leader.
  void Merge(const std::vector<ComponentId>& members);

  /// Initializes all components (Init + Bind), takes post-init checkpoints
  /// of stateful components, assigns MPK keys, spawns resident fibers.
  void Boot();

  // ------------------------------------------------------------- app side
  /// Runs application code on an app fiber; the body may issue Calls.
  sched::Fiber* SpawnApp(const std::string& name,
                         std::function<void()> body);

  /// Drives the message thread until every app fiber is done (or faulted)
  /// and no work is pending.
  void RunUntilIdle();

  /// From inside an app fiber: block until external input arrives. Server
  /// loops park instead of spinning when their sockets are dry; the harness
  /// calls UnparkApps() after injecting client frames.
  void ParkApp();
  void UnparkApps();

  /// Drives until `pred()` is true; returns false if the system went idle
  /// first.
  bool RunUntil(const std::function<bool()>& pred);

  /// One message-thread step: failure checks + one dispatch. Returns false
  /// when idle.
  bool Step();

  // ---------------------------------------------------------- call plane
  /// Issues a call from the current execution context (app fiber, component
  /// fiber, or restore-mode replay). The public API used by the posix
  /// facade and by component handlers via CallCtx.
  msg::MsgValue Call(FunctionId fn, msg::Args args);

  /// Looks up an exported function id; fatal if absent.
  FunctionId Lookup(const std::string& component,
                    const std::string& function) const;
  /// Non-fatal lookup.
  std::optional<FunctionId> TryLookup(const std::string& component,
                                      const std::string& function) const;

  // ------------------------------------------------------------- recovery
  /// Reboots one component (or its merged group): stop fibers, restore the
  /// post-init checkpoint, replay the shrunk log with encapsulated
  /// restoration, respawn fibers. Returns the timing report, or an error
  /// status for unrebootable components or a corrupt checkpoint (a bad
  /// checkpoint fails the reboot through the normal fault path instead of
  /// killing the process).
  ///
  /// `refresh_checkpoint`: after a successful replay, incrementally
  /// re-capture each stateful member's checkpoint (only pages the replay
  /// dirtied are copied) and drop the now-baked-in log entries, so future
  /// reboots restore directly to this point. Used by periodic rejuvenation
  /// to keep both the replay log and the re-snapshot cost near zero.
  Result<RebootReport> Reboot(ComponentId id, bool refresh_checkpoint = false);

  /// Starts a reboot without waiting for it to finish: the component's
  /// fibers stop immediately, its checkpoint restores on the recovery worker
  /// pool (RuntimeOptions::recovery_workers), and replay happens on a later
  /// Step() once every component it depends on is back. N failed components
  /// recover concurrently; the message thread keeps serving the rest. If a
  /// recovery for the same group is already in flight, joins it. Outcomes
  /// land in reboot_history() / the rt.recovery_failures counter.
  Status RebootAsync(ComponentId id, bool refresh_checkpoint = false);

  /// Recoveries currently in flight (stopped but not yet fully replayed).
  [[nodiscard]] std::size_t active_recoveries() const {
    return recovery_jobs_.size();
  }
  /// High-water mark of concurrently in-flight recoveries.
  [[nodiscard]] std::size_t peak_concurrent_recoveries() const {
    return peak_concurrent_recoveries_;
  }

  /// Injects a fail-stop fault: after `trigger_after` further messages, the
  /// component fails with `kind`. All FaultKinds route through here —
  /// kCorruptCheckpoint damages the group's checkpoint image before the
  /// fault fires, so the subsequent reboot exercises the restore-failure
  /// path; kHang parks the handler for the hang detector; the rest throw.
  /// `sticky` keeps the fault armed across reboots — a *deterministic* bug
  /// that re-triggers on the retried input and drives the runtime to
  /// fail-stop (paper §II-B).
  void InjectFault(ComponentId id, FaultKind kind, int trigger_after = 0,
                   bool sticky = false);

  /// Proactive rejuvenation: reboot every rebootable component, one by one.
  std::vector<RebootReport> RejuvenateAll();

  /// Graceful termination (§VIII): registers application code to run when
  /// the runtime fail-stops. Hooks run on app fibers after the fail-stop is
  /// recorded, while undamaged components still serve — e.g. a KVS can
  /// flush its in-memory table through a still-working VFS before exit.
  void RegisterTerminationHook(std::function<void()> hook);

  /// Multi-versioning (§VIII): registers an alternate implementation of a
  /// component (same name, same exported interface). When the primary faces
  /// its failure *again* after a reboot — a deterministic bug — the runtime
  /// swaps in the variant, replays the log into it, and continues instead
  /// of fail-stopping.
  void RegisterVariant(ComponentId id,
                       std::unique_ptr<comp::Component> variant);

  /// Number of variant swaps performed (introspection for tests/benches).
  [[nodiscard]] std::uint64_t variant_swaps() const { return variant_swaps_; }

  // ------------------------------------------------------- introspection
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }
  [[nodiscard]] RuntimeStats Stats() const;
  /// Flight recorder: enable/disable tracing, snapshot events, export
  /// Chrome trace JSON (see docs/observability.md).
  [[nodiscard]] obs::FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }
  /// Isolation/deadlock checker; nullptr unless
  /// RuntimeOptions::isolation_check was set.
  [[nodiscard]] check::IsolationChecker* checker() { return checker_.get(); }
  [[nodiscard]] const check::IsolationChecker* checker() const {
    return checker_.get();
  }
  /// Metrics registry holding every named counter and histogram
  /// (RuntimeStats and FunctionStats are snapshot views over it).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// Health monitor; nullptr unless RuntimeOptions::health / VAMPOS_HEALTH
  /// enabled it (or EnableHealth() was called).
  [[nodiscard]] obs::HealthMonitor* health() { return health_.get(); }
  [[nodiscard]] const obs::HealthMonitor* health() const {
    return health_.get();
  }
  /// Allocates and wires the health monitor (idempotent): binds it to the
  /// metrics registry and flight recorder and tracks every component that
  /// is already registered. Exported functions track their owner at export
  /// time, so enabling before assembly also works.
  obs::HealthMonitor& EnableHealth(const obs::HealthConfig& config = {});
  /// Snapshot of per-function metrics, sorted by total handler time.
  [[nodiscard]] std::vector<FunctionStats> TopFunctions(
      std::size_t limit = 16) const;
  [[nodiscard]] MemoryReport Memory() const;
  [[nodiscard]] msg::MessageDomain& domain() { return *domain_; }
  [[nodiscard]] mpk::DomainManager* domains() {
    return isolation_ ? &domains_ : nullptr;
  }
  [[nodiscard]] comp::Component& component(ComponentId id) {
    return *slots_[id].component;
  }
  [[nodiscard]] ComponentId FindComponent(const std::string& name) const;
  /// Ids of all registered components (group members included).
  [[nodiscard]] std::vector<ComponentId> Components() const;
  /// Group leader of a component (itself unless merged).
  [[nodiscard]] ComponentId GroupLeader(ComponentId id) const {
    return LeaderOf(id);
  }
  [[nodiscard]] std::size_t LogEntries(ComponentId id) const;
  [[nodiscard]] std::size_t LogBytes(ComponentId id) const;
  [[nodiscard]] int MpkTagsInUse() const;
  [[nodiscard]] const std::vector<RebootReport>& reboot_history() const {
    return reboot_history_;
  }
  /// Fault observed for a component that could not be recovered (fail-stop).
  [[nodiscard]] const std::optional<ComponentFault>& terminal_fault() const {
    return terminal_fault_;
  }
  /// Shared read-only page pool backing incremental checkpoints.
  [[nodiscard]] const mem::PageBaseline& snapshot_baseline() const {
    return snapshot_baseline_;
  }

  /// Test hook: replaces a component's checkpoint with one of the wrong
  /// size, simulating a corrupted/foreign image. The next reboot of the
  /// component must fail with a status error (never a process abort).
  void CorruptCheckpointForTest(ComponentId id);

  /// Dumps the full runtime state (component table, fibers, queues, logs,
  /// pending rpcs) for debugging. Also triggered automatically when
  /// RunUntilIdle exceeds the VAMPOS_SPIN_LIMIT step budget, if set.
  void DumpState(std::FILE* out) const;

  // ------------------------------------------------- runtime-data vault
  void SaveRuntimeData(ComponentId id, const std::string& key,
                       msg::MsgValue value);
  std::optional<msg::MsgValue> LoadRuntimeData(ComponentId id,
                                               const std::string& key);

  /// Registers an exported function (used by InitCtx::Export; public so
  /// harnesses can export helper functions too).
  FunctionId ExportFn(ComponentId owner, const std::string& name,
                      comp::FnOptions options, comp::Handler handler);

  static constexpr std::size_t kMaxAuxFibers = 64;
  /// Messages a resident fiber executes per dispatch before yielding, and
  /// replies the message thread drains per batch. Bounded so one busy
  /// component cannot monopolize the message thread.
  static constexpr std::size_t kExecBatch = 8;
  static constexpr std::size_t kReplyBatch = 32;

 private:
  friend class comp::CallCtx;
  friend class comp::InitCtx;

  struct FnEntry {
    FunctionId id;
    ComponentId owner;
    std::string name;
    comp::FnOptions options;
    comp::Handler handler;
    // Registry-backed metrics, resolved once at export time (stable
    // addresses; updated on the call path, reads are snapshots).
    obs::Histogram* latency = nullptr;  // "fn.<comp>.<fn>.ns"
    obs::Counter* errors = nullptr;     // "fn.<comp>.<fn>.errors"
  };

  struct FaultInjection {
    FaultKind kind;
    int remaining;  // messages to process before triggering
    bool armed = true;
    bool sticky = false;  // deterministic bug: re-arms after reboot
  };

  struct Slot {
    std::unique_ptr<comp::Component> component;
    std::vector<ComponentId> deps;
    sched::Fiber* resident = nullptr;
    std::vector<sched::Fiber*> aux;
    int busy = 0;                 // fibers currently inside a handler
    mem::Snapshot checkpoint;
    mpk::Pkru pkru;
    mpk::Key key = mpk::kDefaultKey;
    bool failed = false;
    std::uint64_t reboots = 0;
    std::optional<FaultInjection> injection;
    // Merging: leader == id for standalone/leaders; members listed on the
    // leader only.
    ComponentId leader;
    std::vector<ComponentId> group;  // leader first
    // In-flight message that died with a faulted fiber (for retry).
    std::optional<std::pair<msg::Message, msg::Args>> inflight_failed;
    bool retried_once = false;
    // Alternate implementation for deterministic-bug failover (§VIII).
    std::unique_ptr<comp::Component> variant;
  };

  struct ExecCtx {
    ComponentId component = kComponentNone;
    LogSeq inbound_seq = 0;       // current logged inbound call, 0 = none
    msg::Message msg;             // message being executed
    msg::Args args;
    Nanos started_at = 0;         // processing start, for the hang detector
    // Outbound dedupe for retried requests: return values the pre-reboot
    // execution already observed, fed back in order instead of re-invoking
    // the peers (their side effects already happened).
    std::vector<std::pair<FunctionId, msg::MsgValue>> outbound_feed;
    std::size_t feed_cursor = 0;
  };

  /// An interrupted or still-queued request carried across a reboot.
  struct RetryRecord {
    msg::Message msg;
    msg::Args args;
    // Outbound returns recorded for the erased in-flight log entry (empty
    // for never-executed queued messages).
    std::vector<std::pair<FunctionId, msg::MsgValue>> outbound_feed;
  };

  struct PendingReply {
    bool arrived = false;
    msg::MsgValue value;
    sched::Fiber* waiter = nullptr;
  };

  // Call plane internals.
  msg::MsgValue CallFromApp(FunctionId fn, msg::Args args);
  msg::MsgValue DirectInvoke(ComponentId caller, FunctionId fn,
                             const msg::Args& args, bool restoring);
  msg::MsgValue MessageCall(ComponentId caller, FunctionId fn,
                            msg::Args args);
  msg::MsgValue RestoreFeed(ComponentId caller, FunctionId fn);
  /// Same-destination inline fast path (options_.inline_calls): runs the
  /// handler on the caller's fiber when the callee is resident, idle, and
  /// untraced-or-traced-inline. nullopt = conditions not met; take the
  /// message path.
  std::optional<msg::MsgValue> TryInlineCall(ComponentId caller,
                                             FunctionId fn,
                                             const msg::Args& args);
  /// Fault thrown by an inlined handler: the faulting execution sits on the
  /// caller's live fiber (which must survive), so recovery is kicked off
  /// here and the interrupted call is parked for the message-path retry.
  msg::MsgValue RecoverInlineFault(const msg::Message& m,
                                   const msg::Args& args,
                                   const ComponentFault& fault);

  // Message thread internals.
  void ResidentLoop(ComponentId id);
  bool ExecuteOne(ComponentId id);   // pull + run one message, reply
  void DeliverReplies();
  void DeliverOneReply(const msg::Message& m, msg::Args& payload);
  sched::Fiber* PickNext();
  sched::Fiber* PickRoundRobin();
  sched::Fiber* PickDependencyAware();
  void MaybeSpawnAux();
  void HandleFaultedFiber(sched::Fiber* fiber);
  void CheckHangs();
  void NoteDispatched(ComponentId id);

  // Recovery work runs on the message thread (stop, replay, reinit
  // recapture, or blocking on a worker restore) and can pause dispatch for
  // milliseconds. The guard shifts every in-flight handler's hang timer
  // forward by the pause so CheckHangs charges that time to the recovery,
  // not to whichever healthy handler happened to be mid-call.
  class HangClockPause {
   public:
    explicit HangClockPause(Runtime& rt)
        : rt_(rt), t0_(rt.options_.clock->Now()) {}
    ~HangClockPause() {
      const Nanos dt = rt_.options_.clock->Now() - t0_;
      if (dt <= 0) return;
      for (auto& kv : rt_.exec_ctx_) kv.second.started_at += dt;
    }
    HangClockPause(const HangClockPause&) = delete;
    HangClockPause& operator=(const HangClockPause&) = delete;

   private:
    Runtime& rt_;
    Nanos t0_;
  };

  // Logging internals (run conceptually on the message thread).
  LogSeq MaybeLogCall(const FnEntry& fn, const msg::Args& args);
  void FinishLog(const FnEntry& fn, LogSeq seq, const msg::MsgValue& ret,
                 const msg::Args& args);
  void RecordOutboundForCaller(const msg::Message& reply,
                               const msg::MsgValue& ret);
  void ApplySessionShrink(const FnEntry& fn, LogSeq seq,
                          const msg::MsgValue& ret, const msg::Args& args);
  void MaybeCompact(ComponentId owner);

  // Recovery internals. A reboot is a RecoveryJob: stop (message thread) →
  // restore (worker pool or inline) → replay (message thread, dependency
  // ordered). The sync Reboot() wrapper drives its job to completion;
  // RebootAsync() leaves the job for Step()/DriveRecovery() to finish.
  struct RecoveryJob {
    ComponentId leader = kComponentNone;
    bool refresh = false;
    // Fault-path job: a failure escalates to FailStop (after the other
    // in-flight recoveries complete — they must not be stranded).
    bool escalate = false;
    std::optional<ComponentFault> origin;
    RebootReport report;
    std::vector<RetryRecord> inflight;  // interrupted mid-handler
    std::vector<RetryRecord> queued;    // drained, never executed
    struct MemberRestore {
      ComponentId member = kComponentNone;
      // Resolved from slots_ by the message thread in BeginRecovery, so the
      // worker never dereferences runtime state (vampcheck ownership).
      mem::Snapshot* checkpoint = nullptr;
      mem::Arena* arena = nullptr;
      Status status;
      mem::SnapshotStats stats;
    };
    std::vector<MemberRestore> restores VAMP_RECOVERY_POOL_SHARED;
    std::atomic<bool> restore_done VAMP_RECOVERY_POOL_SHARED{false};
    bool restored = false;   // message thread joined + accounted the restore
    bool done = false;
    bool ok = false;
    Status error;
    Nanos t0 = 0, t1 = 0, t2 = 0;  // begin / stop-end / restore-end
  };

  Result<std::shared_ptr<RecoveryJob>> BeginRecovery(
      ComponentId id, bool refresh, bool escalate,
      std::optional<ComponentFault> origin);
  /// Joins finished restores and replays eligible jobs. `block` waits for a
  /// worker-side restore when nothing else can progress. Returns whether any
  /// job advanced.
  bool DriveRecovery(bool block);
  void FinalizeRestore(const std::shared_ptr<RecoveryJob>& job);
  void FinalizeReplay(const std::shared_ptr<RecoveryJob>& job);
  void FailJob(const std::shared_ptr<RecoveryJob>& job, Status error,
               obs::EventKind phase);
  /// A job replays only after the components its group calls into are back
  /// (no active recovery for any dependency leader).
  [[nodiscard]] bool ReplayBlockedByDeps(const RecoveryJob& job) const;
  void RemoveJob(const std::shared_ptr<RecoveryJob>& job);
  void EnsureRecoveryPool();
  /// Worker-side half of a recovery: restores the job's members through the
  /// pointers BeginRecovery resolved, then signals restore_done. Touches
  /// only job-private state and the recovery handshake.
  void RestoreOnWorker(std::shared_ptr<RecoveryJob> job,
                       mem::SnapshotConfig cfg) VAMP_POOL_ENTRY;
  /// Replaces `id`'s checkpoint with a wrong-size image (corrupt-checkpoint
  /// fault injection; also the CorruptCheckpointForTest seam).
  void CorruptCheckpoint(ComponentId id);

  void StopComponentFibers(ComponentId id, std::vector<RetryRecord>* inflight,
                           std::vector<RetryRecord>* queued);
  void RestoreStateful(Slot& slot, RebootReport& report);
  void ReplayLog(ComponentId id, RebootReport& report);
  /// Snapshot knobs for this runtime: mode/workers from RuntimeOptions, the
  /// shared baseline, and the runtime clock for the hash/copy phase split.
  [[nodiscard]] mem::SnapshotConfig SnapshotCfg();
  /// Captures a component checkpoint under SnapshotCfg(), bumping the
  /// snapshot.* metrics and recorder events.
  mem::Snapshot CaptureCheckpoint(comp::Component& c);
  /// Rejuvenation refresh: re-capture each stateful member's checkpoint
  /// incrementally and prune the log entries the capture baked in.
  void RefreshCheckpoints(Slot& slot, RebootReport& report);
  void AccountSnapshot(ComponentId id, const mem::SnapshotStats& stats);
  /// Applies a component's write-tracking level before control enters it
  /// (dispatch, replay, restore hooks); no-op when tracking is off.
  void TaintComponentEntry(comp::Component& c);
  void RespawnResident(ComponentId id);
  void FailStop(const ComponentFault& fault);
  bool TrySwapVariant(ComponentId leader);

  // PKRU management for the dispatch path.
  void InstallPkruFor(ComponentId id);
  void InstallMessageThreadPkru();

  // Observability internals.
  /// Writes the recorder ring as Chrome trace JSON to VAMPOS_TRACE_DUMP (or
  /// vampos_postmortem_trace.json). Called on fail-stop and on the
  /// VAMPOS_SPIN_LIMIT dump; a never-enabled recorder writes nothing.
  void WritePostmortemTrace(const char* why) const;
  /// VAMPOS_METRICS_DUMP output format (VAMPOS_METRICS_FORMAT).
  enum class MetricsFormat { kText, kJson, kProm };
  /// Feeds the health monitor one gauge round: every group leader's arena
  /// bytes-in-use and cumulative dirty-page marks. Called from Step() when
  /// HealthMonitor::SampleDue() fires.
  void SampleHealth(Nanos now);

  [[nodiscard]] ComponentId LeaderOf(ComponentId id) const {
    return slots_[id].leader;
  }
  [[nodiscard]] bool SameGroup(ComponentId a, ComponentId b) const;
  [[nodiscard]] const FnEntry& Fn(FunctionId id) const {
    return fns_[static_cast<std::size_t>(id)];
  }

  ExecCtx* CurrentExec();

  RuntimeOptions options_;
  bool isolation_ = false;
  bool booted_ = false;

  // Observability: registry + recorder are constructed first (the domain
  // and fiber manager hold pointers into them) and destroyed last.
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder recorder_;
  // Aging-aware health telemetry; null when off so every feed point is a
  // single predicted branch and disabled runs allocate nothing.
  std::unique_ptr<obs::HealthMonitor> health_ VAMP_MSG_THREAD_ONLY;
  // Latest handler-completion timestamp, reused to drive SampleDue() so
  // Step() never pays a clock read for health (that alone costs percents of
  // call throughput on the unlogged path).
  Nanos health_now_ VAMP_MSG_THREAD_ONLY = 0;
  /// Hot-path counters, resolved once from the registry at construction.
  struct HotCounters {
    obs::Counter* calls = nullptr;
    obs::Counter* direct_calls = nullptr;
    obs::Counter* messages = nullptr;
    obs::Counter* empty_polls = nullptr;
    obs::Counter* log_appends = nullptr;
    obs::Counter* log_pruned_entries = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* compaction_skips = nullptr;
    obs::Counter* replies_batched = nullptr;
    obs::Counter* retries_deduped = nullptr;
    obs::Counter* reboots = nullptr;
    obs::Counter* aux_fibers_spawned = nullptr;
    obs::Counter* hangs_detected = nullptr;
    // Checkpoint engine (cold path: bumped per capture/restore, not per
    // page). bytes_copied is the headline: it scales with the delta under
    // the incremental engine and with arena size under full copy.
    obs::Counter* snapshot_captures = nullptr;
    obs::Counter* snapshot_recaptures = nullptr;
    obs::Counter* snapshot_restores = nullptr;
    obs::Counter* snapshot_pages_total = nullptr;
    obs::Counter* snapshot_pages_dirty = nullptr;
    obs::Counter* snapshot_pages_zero = nullptr;
    obs::Counter* snapshot_pages_shared = nullptr;
    obs::Counter* snapshot_bytes_copied = nullptr;
    // Write-tracking dirty pages (snapshot.dirty_*): fast-path operations
    // vs full-scan fallbacks, pages skipped outright, audit activity, and
    // conservative whole-arena taints.
    obs::Counter* snapshot_dirty_fast_ops = nullptr;
    obs::Counter* snapshot_dirty_fallback_ops = nullptr;
    obs::Counter* snapshot_dirty_pages_skipped = nullptr;
    obs::Counter* snapshot_dirty_audits = nullptr;
    obs::Counter* snapshot_dirty_audit_misses = nullptr;
    obs::Counter* snapshot_dirty_taints = nullptr;
    // Concurrent recovery + replay verdicts.
    obs::Counter* recovery_failures = nullptr;  // jobs that did not recover
    obs::Counter* recovery_reinits = nullptr;   // reinit-on-restore fallbacks
    obs::Counter* recovery_overlaps = nullptr;  // a job began with >=1 active
    obs::Counter* replay_divergence = nullptr;  // replayed ret != logged ret
  } ct_;
  /// Hot-path histograms, likewise registry-backed.
  struct HotHistograms {
    obs::Histogram* call_ns = nullptr;        // end-to-end message call
    obs::Histogram* queue_depth = nullptr;    // inbox depth at push
    obs::Histogram* reboot_stop_ns = nullptr;
    obs::Histogram* reboot_snapshot_ns = nullptr;
    obs::Histogram* reboot_snapshot_hash_ns = nullptr;  // hash-pass share
    obs::Histogram* reboot_snapshot_copy_ns = nullptr;  // copy-pass share
    obs::Histogram* reboot_replay_ns = nullptr;
    obs::Histogram* reboot_total_ns = nullptr;
    obs::Histogram* replay_entries = nullptr;  // replay batch size
    // Per-request latency decomposition, recorded only for traced calls
    // (the recorder's enabled flag gates them along with span minting).
    obs::Histogram* trace_queue_ns = nullptr;   // push → pull wait
    obs::Histogram* trace_exec_ns = nullptr;    // handler execution
    obs::Histogram* trace_reply_ns = nullptr;   // reply push → deliver
    obs::Histogram* trace_stall_ns = nullptr;   // "trace.stall_reboot_ns"
  } hist_;

  // Shared read-only page pool for incremental checkpoints: components with
  // mostly-identical post-init images (merged twins, repeated stacks) hold
  // one pooled copy instead of N private ones.
  mem::PageBaseline snapshot_baseline_;

  mpk::DomainManager domains_;
  std::unique_ptr<msg::MessageDomain> domain_;
  // Null unless options_.isolation_check (hot-path hooks branch on it once).
  std::unique_ptr<check::IsolationChecker> checker_;
  sched::FiberManager fibers_;

  // Message-thread ownership (DESIGN.md §8): everything below is
  // VAMP_MSG_THREAD_ONLY unless annotated otherwise — pool workers get
  // job-private pointers, never the runtime's containers.
  std::vector<Slot> slots_ VAMP_MSG_THREAD_ONLY;
  std::vector<FnEntry> fns_;
  std::unordered_map<std::string, FunctionId> fn_by_name_;  // "comp.fn"
  std::vector<ComponentId> app_deps_;

  // Fiber-local execution contexts (single OS thread; keyed by fiber).
  std::unordered_map<sched::Fiber*, ExecCtx> exec_ctx_ VAMP_MSG_THREAD_ONLY;
  // Restore-mode execution (runs on the message thread, no fiber).
  std::vector<ExecCtx> restore_stack_ VAMP_MSG_THREAD_ONLY;
  // Replay feed cursor during encapsulated restoration.
  const msg::CallLogEntry* replay_entry_ = nullptr;
  std::size_t replay_outbound_cursor_ = 0;

  std::unordered_map<std::uint64_t, PendingReply> pending_replies_
      VAMP_MSG_THREAD_ONLY;
  // In-flight and pending recoveries. Jobs are owned here; the sync Reboot
  // wrapper and the chaos engine hold shared_ptrs across DriveRecovery.
  std::vector<std::shared_ptr<RecoveryJob>> recovery_jobs_
      VAMP_MSG_THREAD_ONLY;
  std::unique_ptr<RecoveryPool> recovery_pool_;  // lazily spawned
  // Completion handshake with the workers: restore_done is published under
  // recovery_mu_ and the message thread waits on recovery_cv_.
  std::mutex recovery_mu_ VAMP_RECOVERY_POOL_SHARED;
  std::condition_variable recovery_cv_ VAMP_RECOVERY_POOL_SHARED;
  std::size_t peak_concurrent_recoveries_ = 0;
  // Escalating job failed while others were in flight: FailStop deferred
  // until the survivors finish recovering (they must not be stranded).
  std::optional<ComponentFault> pending_failstop_ VAMP_MSG_THREAD_ONLY;
  // rpc_id -> outbound feed for a retried request awaiting execution.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<FunctionId, msg::MsgValue>>>
      retry_feeds_ VAMP_MSG_THREAD_ONLY;
  std::vector<sched::Fiber*> app_fibers_;
  std::vector<sched::Fiber*> parked_apps_;

  // Scheduling state.
  std::size_t rr_cursor_ = 0;
  std::size_t das_fallback_cursor_ = 0;
  std::deque<ComponentId> das_candidates_;

  // Runtime-data vault: survives component reboots by construction.
  std::unordered_map<std::string, msg::MsgValue> vault_;

  // Causal tracing: monotonically increasing ids minted when a traced call
  // enters the message plane (see MessageCall). Only advanced while the
  // recorder is enabled, so untraced runs never touch them.
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  // Write the trace dump after every completed reboot
  // (VAMPOS_TRACE_DUMP_ON_REBOOT=1), in addition to the fail-stop and
  // spin-limit dumps — all three honor VAMPOS_TRACE_DUMP.
  bool dump_trace_on_reboot_ = false;
  // VAMPOS_TRACE_INLINE=1 keeps the inline call fast path eligible while the
  // flight recorder is on (inlined calls produce no queue/exec/reply spans,
  // so tracing normally forces the message path).
  bool trace_inline_ = false;
  // Format for the VAMPOS_METRICS_DUMP snapshot written alongside each
  // trace dump (VAMPOS_METRICS_FORMAT={text,json,prom}, default json).
  MetricsFormat metrics_format_ = MetricsFormat::kJson;

  std::vector<RebootReport> reboot_history_;
  std::optional<ComponentFault> terminal_fault_;
  std::vector<std::function<void()>> termination_hooks_;
  bool termination_hooks_ran_ = false;
  std::uint64_t variant_swaps_ = 0;
};

}  // namespace vampos::core
