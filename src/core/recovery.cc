// Recovery half of the VampOS runtime: function-call logging, session-aware
// log shrinking, component reboot, encapsulated restoration, and failure
// detection/handling.
#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_set>
#include <utility>

#include "base/diag.h"
#include "check/isolation_checker.h"
#include "core/runtime.h"

namespace vampos::core {

using comp::CallCtx;
using comp::FnOptions;
using comp::Statefulness;
using msg::Args;
using msg::CallLogEntry;
using msg::Message;
using msg::MsgValue;

// ----------------------------------------------------------- registration

FunctionId Runtime::ExportFn(ComponentId owner, const std::string& name,
                             FnOptions options, comp::Handler handler) {
  const std::string qualified =
      slots_[owner].component->name() + "." + name;
  // Re-Init of a stateless component re-exports its functions: replace the
  // handler in place so FunctionIds (and therefore logs) stay stable.
  if (auto it = fn_by_name_.find(qualified); it != fn_by_name_.end()) {
    fns_[static_cast<std::size_t>(it->second)].handler = std::move(handler);
    fns_[static_cast<std::size_t>(it->second)].options = options;
    return it->second;
  }
  const auto id = static_cast<FunctionId>(fns_.size());
  FnEntry entry{id, owner, name, options, std::move(handler)};
  entry.latency = &metrics_.GetHistogram("fn." + qualified + ".ns");
  entry.errors = &metrics_.GetCounter("fn." + qualified + ".errors");
  fns_.push_back(std::move(entry));
  fn_by_name_.emplace(qualified, id);
  // Health series are kept per group leader (a merged group ages and
  // reboots as a unit), under the leader's display name.
  if (health_ != nullptr) {
    const ComponentId leader = LeaderOf(owner);
    health_->Track(leader, slots_[leader].component->name());
  }
  return id;
}

// ---------------------------------------------------------------- logging

LogSeq Runtime::MaybeLogCall(const FnEntry& fn, const Args& args) {
  if (!fn.options.logged) return 0;
  CallLogEntry entry;
  entry.fn = fn.id;
  // Borrowed views are compacted to owned bytes at append time: the log must
  // replay (and checkpoint) deterministically after the lender's arena has
  // been rebooted out from under the view.
  entry.args.reserve(args.size());
  for (const MsgValue& a : args) entry.args.push_back(a.Compacted());
  entry.state_changing = fn.options.state_changing;
  if (fn.options.session_arg >= 0 &&
      static_cast<std::size_t>(fn.options.session_arg) < args.size()) {
    entry.session = args[static_cast<std::size_t>(fn.options.session_arg)].i64();
  }
  ct_.log_appends->Add();
  const LogSeq seq = domain_->LogFor(fn.owner).Append(std::move(entry));
  recorder_.Record(obs::EventKind::kLogAppend, obs::TracePhase::kInstant,
                   fn.owner, fn.id, static_cast<std::int64_t>(seq));
  return seq;
}

void Runtime::FinishLog(const FnEntry& fn, LogSeq seq, const MsgValue& ret,
                        const Args& args) {
  msg::CallLog& log = domain_->LogFor(fn.owner);
  log.SetReturn(seq, ret);

  // open()-style functions: the session id is the returned descriptor. If
  // the descriptor number was used by an earlier, already-closed session,
  // the stale open/close pair is pruned now — this is why Table III reports
  // a net *negative* log delta for open() under shrinking. The session
  // index makes this touch only the reused id's entries, not the whole log.
  if (fn.options.session_from_ret && ret.is_i64() && ret.i64() >= 0) {
    const std::int64_t session = ret.i64();
    if (options_.session_shrink) {
      const std::size_t pruned = log.PruneSessionIf(
          session, [&](const CallLogEntry& e) { return e.seq < seq; });
      ct_.log_pruned_entries->Add(pruned);
      if (pruned > 0) {
        recorder_.Record(obs::EventKind::kLogPrune, obs::TracePhase::kInstant,
                         fn.owner, session,
                         static_cast<std::int64_t>(pruned));
      }
    }
    log.SetSession(seq, session);
  }
  // A failed session-creating call (open of a missing file) built no state;
  // replaying it is pointless, so drop it immediately.
  if (fn.options.session_from_ret && ret.is_i64() && ret.i64() < 0) {
    log.Erase(seq);
    ct_.log_pruned_entries->Add();
  }

  if (options_.session_shrink && fn.options.canceling && ret.is_i64() &&
      ret.i64() >= 0) {
    ApplySessionShrink(fn, seq, ret, args);
  }
  MaybeCompact(fn.owner);
}

void Runtime::ApplySessionShrink(const FnEntry& fn, LogSeq seq,
                                 const MsgValue& /*ret*/,
                                 const Args& /*args*/) {
  // Canceling function (close(), shutdown(), ...): the state built up by the
  // session's read/write-style calls is no longer needed for restoration.
  // The session-origin entry (open/socket) and the canceling entry itself
  // are kept so a replay reproduces the descriptor-table allocation; they
  // are pruned later if the descriptor number is reused (see FinishLog).
  msg::CallLog& log = domain_->LogFor(fn.owner);
  const CallLogEntry* self = log.Lookup(seq);
  if (self == nullptr || self->session < 0) return;
  const std::int64_t session = self->session;
  const std::size_t pruned =
      log.PruneSessionIf(session, [&](const CallLogEntry& e) {
        if (e.seq == seq) return false;
        const FnEntry& efn = Fn(e.fn);
        return !efn.options.session_from_ret && !efn.options.canceling;
      });
  ct_.log_pruned_entries->Add(pruned);
  if (pruned > 0) {
    recorder_.Record(obs::EventKind::kLogPrune, obs::TracePhase::kInstant,
                     fn.owner, session, static_cast<std::int64_t>(pruned));
  }
}

void Runtime::MaybeCompact(ComponentId owner) {
  if (options_.log_shrink_threshold == 0) return;
  msg::CallLog& log = domain_->LogFor(owner);
  if (log.size() <= options_.log_shrink_threshold) return;
  comp::CompactionHook hook = slots_[owner].component->compaction_hook();
  if (!hook) return;

  // Scheduled compaction: only sessions that gained completed entries since
  // their last visit (dirty) and are not parked behind a failed-hook growth
  // gate are considered — an uncompactable workload stops paying a grouping
  // pass per call once its sessions park.
  const std::vector<std::int64_t> candidates = log.CompactionCandidates();
  if (candidates.empty()) {
    ct_.compaction_skips->Add();
    return;
  }
  bool compacted = false;
  // The hook is component code: its writes must land in the dirty bitmap.
  TaintComponentEntry(*slots_[owner].component);
  for (const std::int64_t session : candidates) {
    // Collapse the session's completed, non-boundary entries into the
    // synthetic state-setting entries the component supplies ("extract and
    // reset the offset value in VFS", §V-F). The session index bounds the
    // grouping to this session's entries.
    const msg::CallLog::SeqSet* seqs = log.SessionSeqs(session);
    if (seqs == nullptr) continue;
    comp::CompactionRequest req;
    req.session = session;
    for (const LogSeq s : *seqs) {
      const CallLogEntry* e = log.Lookup(s);
      if (e == nullptr || e->synthetic || !e->have_ret) continue;
      const FnEntry& efn = Fn(e->fn);
      if (efn.options.session_from_ret || efn.options.canceling) continue;
      req.entries.emplace_back(e->fn, e->args);
    }
    if (req.entries.size() < 2) {
      log.MarkSessionClean(session);
      continue;
    }
    auto replacement = hook(req);
    if (replacement.size() >= req.entries.size()) {
      log.ParkSessionCompaction(session);
      continue;
    }
    // Drop the session's history *and* any synthetic summary from a prior
    // compaction round — the new summary supersedes it.
    const std::size_t dropped =
        log.PruneSessionIf(session, [&](const CallLogEntry& e) {
          if (!e.have_ret && !e.synthetic) return false;
          const FnEntry& efn = Fn(e.fn);
          return !efn.options.session_from_ret && !efn.options.canceling;
        });
    ct_.log_pruned_entries->Add(dropped);
    recorder_.Record(obs::EventKind::kLogCompact, obs::TracePhase::kInstant,
                     owner, session, static_cast<std::int64_t>(dropped));
    for (auto& [fn_id, fn_args] : replacement) {
      CallLogEntry synth;
      synth.fn = fn_id;
      synth.args = std::move(fn_args);
      synth.session = session;
      synth.synthetic = true;
      synth.have_ret = true;
      log.Append(std::move(synth));
    }
    log.MarkSessionClean(session);
    compacted = true;
  }
  if (compacted) ct_.compactions->Add();
}

void Runtime::RecordOutboundForCaller(const Message& reply,
                                      const MsgValue& ret) {
  // Record the return value the caller observed, keyed to the caller's
  // in-flight inbound log entry, so the caller's own future restoration can
  // feed it back without re-entering this component (paper Fig 3). The
  // caller's execution context is found via the fiber that issued the rpc.
  if (reply.to == kComponentNone || reply.caller_fiber == nullptr) return;
  auto it = exec_ctx_.find(reply.caller_fiber);
  if (it == exec_ctx_.end()) return;
  const ExecCtx& ctx = it->second;
  if (ctx.inbound_seq == 0) return;  // caller's inbound call is not logged
  domain_->LogFor(ctx.component).RecordOutbound(ctx.inbound_seq, reply.fn,
                                                ret);
}

// -------------------------------------------------------------- injection

void Runtime::InjectFault(ComponentId id, FaultKind kind, int trigger_after,
                          bool sticky) {
  slots_[LeaderOf(id)].injection =
      FaultInjection{kind, trigger_after, true, sticky};
}

// ----------------------------------------------------------------- reboot

void Runtime::StopComponentFibers(ComponentId leader,
                                  std::vector<RetryRecord>* inflight,
                                  std::vector<RetryRecord>* queued) {
  Slot& slot = slots_[leader];
  // Collect in-flight messages (handlers interrupted mid-execution) for
  // post-restore retry, and drop their incomplete log entries: a partially
  // executed call has an incomplete outbound record and must not be
  // replayed. The records go into the caller's per-job vectors so that N
  // concurrent recoveries never clobber each other's retry state.
  std::vector<sched::Fiber*> victims;
  if (slot.resident != nullptr) victims.push_back(slot.resident);
  victims.insert(victims.end(), slot.aux.begin(), slot.aux.end());
  for (sched::Fiber* f : victims) {
    auto it = exec_ctx_.find(f);
    if (it != exec_ctx_.end()) {
      inflight->push_back(
          {std::move(it->second.msg), std::move(it->second.args), {}});
      exec_ctx_.erase(it);
    }
    // Drop pending-reply slots owned by this fiber: the rpcs it issued will
    // be answered to a dead fiber and must be discarded on arrival.
    for (auto pit = pending_replies_.begin(); pit != pending_replies_.end();) {
      if (pit->second.waiter == f) {
        if (checker_ != nullptr) checker_->RemoveWait(pit->first);
        pit = pending_replies_.erase(pit);
      } else {
        ++pit;
      }
    }
    fibers_.Destroy(f);
  }
  if (slot.inflight_failed.has_value()) {
    inflight->push_back({std::move(slot.inflight_failed->first),
                         std::move(slot.inflight_failed->second),
                         {}});
    slot.inflight_failed.reset();
  }
  slot.resident = nullptr;
  slot.aux.clear();
  slot.busy = 0;
  // Erase incomplete log entries for the interrupted calls — but carry their
  // recorded outbound returns into the retry record first, so the retried
  // execution can feed them back instead of re-invoking the peers (whose
  // side effects already happened).
  for (RetryRecord& r : *inflight) {
    if (r.msg.log_seq == 0) continue;
    msg::CallLog& log = domain_->LogFor(Fn(r.msg.fn).owner);
    if (const CallLogEntry* e = log.Lookup(r.msg.log_seq)) {
      r.outbound_feed = e->outbound;
    }
    log.Erase(r.msg.log_seq);
  }
  // Queued-but-unexecuted traffic. Inbound messages are drained for
  // re-logging and re-queueing after restore: their pre-reboot log entries
  // would otherwise survive as incomplete stale state. Outbound messages the
  // group staged are dropped — the fibers that issued them died above, so
  // any reply would be orphaned — along with their callee-side log entries
  // and pending-reply slots.
  for (ComponentId m : slot.group) {
    for (auto& [qm, qargs] : domain_->DrainQueued(m)) {
      if (qm.log_seq != 0) domain_->LogFor(Fn(qm.fn).owner).Erase(qm.log_seq);
      queued->push_back({qm, std::move(qargs), {}});
    }
    for (const Message& qm : domain_->DropQueuedFrom(m)) {
      if (qm.log_seq != 0) domain_->LogFor(Fn(qm.fn).owner).Erase(qm.log_seq);
      if (checker_ != nullptr) checker_->RemoveWait(qm.rpc_id);
      pending_replies_.erase(qm.rpc_id);
    }
  }
  // Revoke-before-destroy: every borrow lent out of this group's arenas is
  // invalidated now, before restore rewrites (or a variant swap destroys)
  // the memory behind it. A borrower still holding such a view faults on
  // its next use instead of silently reading post-reboot bytes.
  for (ComponentId m : slot.group) {
    domain_->RevokeBorrowsInto(slots_[m].component->arena());
  }
}

// ------------------------------------------------------------ checkpoints

mem::SnapshotConfig Runtime::SnapshotCfg() {
  mem::SnapshotConfig cfg;
  cfg.mode = options_.snapshot_mode;
  cfg.workers = options_.snapshot_workers;
  cfg.baseline = &snapshot_baseline_;
  cfg.clock = options_.clock;
  cfg.dirty_tracking =
      options_.dirty_tracking &&
      options_.snapshot_mode == mem::SnapshotMode::kIncremental;
  cfg.audit_rate = options_.dirty_audit_rate;
  cfg.audit_fail_stop = options_.dirty_audit_fail_stop;
  return cfg;
}

void Runtime::AccountSnapshot(ComponentId id,
                              const mem::SnapshotStats& stats) {
  ct_.snapshot_pages_total->Add(stats.pages_total);
  ct_.snapshot_pages_dirty->Add(stats.pages_dirty);
  ct_.snapshot_pages_zero->Add(stats.pages_zero);
  ct_.snapshot_pages_shared->Add(stats.pages_shared);
  ct_.snapshot_bytes_copied->Add(stats.bytes_copied);
  if (!options_.dirty_tracking ||
      options_.snapshot_mode != mem::SnapshotMode::kIncremental) {
    return;
  }
  if (stats.dirty_fast) {
    ct_.snapshot_dirty_fast_ops->Add();
    ct_.snapshot_dirty_pages_skipped->Add(stats.pages_skipped);
    recorder_.Record(obs::EventKind::kSnapshotDirty, obs::TracePhase::kInstant,
                     id, static_cast<std::int64_t>(stats.pages_skipped),
                     static_cast<std::int64_t>(stats.pages_dirty));
  } else {
    ct_.snapshot_dirty_fallback_ops->Add();
  }
  if (stats.audited) {
    ct_.snapshot_dirty_audits->Add();
    ct_.snapshot_dirty_audit_misses->Add(stats.audit_misses);
    recorder_.Record(obs::EventKind::kSnapshotAudit, obs::TracePhase::kInstant,
                     id, static_cast<std::int64_t>(stats.audit_misses),
                     static_cast<std::int64_t>(stats.pages_dirty));
  }
}

void Runtime::TaintComponentEntry(comp::Component& c) {
  // Before control enters a component (dispatch, replay, restore hooks),
  // apply its declared write-tracking level: kNone taints the whole arena,
  // kState marks the MakeState root, kTracked trusts the component's own
  // MarkDirty calls. No-op when the arena has no tracker.
  if (!options_.dirty_tracking) return;
  if (c.arena().dirty_tracker() == nullptr) return;
  c.TaintForEntry();
  if (c.write_tracking() == comp::WriteTracking::kNone) {
    ct_.snapshot_dirty_taints->Add();
  }
}

mem::Snapshot Runtime::CaptureCheckpoint(comp::Component& c) {
  // A fresh capture always walks the whole arena, so trackers are synced by
  // it, never consumed — enable tracking here so the arena's bitmap exists
  // before its first sync.
  if (options_.dirty_tracking &&
      options_.snapshot_mode == mem::SnapshotMode::kIncremental) {
    c.arena().EnableDirtyTracking();
  }
  mem::SnapshotStats stats;
  mem::Snapshot snap = mem::Snapshot::Capture(c.arena(), SnapshotCfg(), &stats);
  ct_.snapshot_captures->Add();
  AccountSnapshot(c.id(), stats);
  recorder_.Record(obs::EventKind::kSnapshotHash, obs::TracePhase::kInstant,
                   c.id(), stats.hash_ns,
                   static_cast<std::int64_t>(stats.pages_total));
  recorder_.Record(obs::EventKind::kSnapshotCopy, obs::TracePhase::kInstant,
                   c.id(), stats.copy_ns,
                   static_cast<std::int64_t>(stats.bytes_copied));
  return snap;
}

void Runtime::RefreshCheckpoints(Slot& slot, RebootReport& report) {
  // Runs right after a successful replay: each stateful member's arena is
  // exactly "checkpoint ⊕ replayed log", so re-capturing here and dropping
  // the baked-in entries is consistent by construction. The incremental
  // engine makes this cheap — only pages the replay dirtied are re-copied.
  for (ComponentId m : slot.group) {
    Slot& ms = slots_[m];
    comp::Component& c = *ms.component;
    if (c.statefulness() != Statefulness::kStateful) continue;
    mem::SnapshotStats stats;
    const Status re = ms.checkpoint.Recapture(c.arena(), SnapshotCfg(), &stats);
    if (!re.ok()) {
      // Keep the old checkpoint + log: that pair is still consistent.
      VAMPOS_ERROR("checkpoint refresh failed for '%s': %s", c.name().c_str(),
                   re.message().c_str());
      continue;
    }
    ct_.snapshot_recaptures->Add();
    AccountSnapshot(m, stats);
    report.snapshot_bytes_copied += stats.bytes_copied;
    report.refresh_hash_ns += stats.hash_ns;
    report.refresh_copy_ns += stats.copy_ns;
    report.refresh_pages_dirty += stats.pages_dirty;
    report.refresh_pages_skipped += stats.pages_skipped;
    recorder_.Record(obs::EventKind::kSnapshotRecapture,
                     obs::TracePhase::kInstant, m,
                     static_cast<std::int64_t>(stats.bytes_copied),
                     static_cast<std::int64_t>(stats.pages_dirty));
    // Completed and synthetic entries are now part of the checkpoint; the
    // next reboot must not replay them again. Cold path: the full-log walk
    // happens once per rejuvenation refresh, not per call.
    if (domain_->HasLog(m)) {
      const std::size_t pruned = domain_->LogFor(m).PruneIf(
          [](const CallLogEntry& e) { return e.have_ret || e.synthetic; });
      ct_.log_pruned_entries->Add(pruned);
      if (pruned > 0) {
        recorder_.Record(obs::EventKind::kLogPrune, obs::TracePhase::kInstant,
                         m, /*session=*/-1,
                         static_cast<std::int64_t>(pruned));
      }
    }
  }
}

void Runtime::CorruptCheckpoint(ComponentId id) {
  // Building the garbage checkpoint captures a component-sized scratch arena
  // — tens of milliseconds of message-thread time for a large component.
  // That is injection scaffolding, not handler work: without the pause a
  // healthy in-flight handler ages past the hang threshold while this runs.
  HangClockPause pause(*this);
  mem::Arena scratch(slots_[id].component->arena().size() +
                         mem::Arena::kPageSize,
                     "corrupt-checkpoint");
  slots_[id].checkpoint = mem::Snapshot::Capture(scratch);
}

void Runtime::CorruptCheckpointForTest(ComponentId id) {
  CorruptCheckpoint(id);
}

Result<RebootReport> Runtime::Reboot(ComponentId id, bool refresh_checkpoint) {
  // Synchronous wrapper over the job machinery: start (or join) a recovery
  // and drive the whole recovery plane until this job completes. Semantics
  // match the legacy serialized reboot exactly when no other job is active.
  auto begun = BeginRecovery(id, refresh_checkpoint, /*escalate=*/false,
                             std::nullopt);
  if (!begun.ok()) return begun.status();
  const std::shared_ptr<RecoveryJob> job = begun.value();
  while (!job->done) DriveRecovery(/*block=*/true);
  if (!job->ok) return job->error;
  return job->report;
}

Status Runtime::RebootAsync(ComponentId id, bool refresh_checkpoint) {
  auto begun = BeginRecovery(id, refresh_checkpoint, /*escalate=*/false,
                             std::nullopt);
  if (!begun.ok()) return begun.status();
  return Status::Ok();
}

void Runtime::EnsureRecoveryPool() {
  if (recovery_pool_ == nullptr) {
    recovery_pool_ = std::make_unique<RecoveryPool>(options_.recovery_workers);
  }
}

Result<std::shared_ptr<Runtime::RecoveryJob>> Runtime::BeginRecovery(
    ComponentId id, bool refresh, bool escalate,
    std::optional<ComponentFault> origin) {
  const ComponentId leader = LeaderOf(id);
  Slot& slot = slots_[leader];
  for (ComponentId m : slot.group) {
    if (slots_[m].component->statefulness() == Statefulness::kUnrebootable) {
      return Status::Error(
          Errno::kInval,
          "component '" + slots_[m].component->name() +
              "' shares state with the host and cannot be rebooted (§VIII)");
    }
  }
  if (options_.mode == Mode::kUnikraft) {
    return Status::Error(Errno::kInval,
                         "component-level reboot requires VampOS mode");
  }
  if (terminal_fault_.has_value()) {
    return Status::Error(Errno::kIo,
                         "runtime fail-stopped; recovery is disabled");
  }
  // A recovery for this group is already in flight: join it instead of
  // stopping fibers that are already stopped.
  for (const auto& j : recovery_jobs_) {
    if (j->leader == leader) return j;
  }

  HangClockPause pause(*this);
  auto job = std::make_shared<RecoveryJob>();
  job->leader = leader;
  job->refresh = refresh;
  job->escalate = escalate;
  job->origin = std::move(origin);
  RebootReport& report = job->report;
  report.component = leader;
  report.name = slot.component->name();
  report.stateless =
      slot.component->statefulness() == Statefulness::kStateless;
  VAMPOS_TRACE("reboot '%s' begin", report.name.c_str());
  recorder_.Record(obs::EventKind::kReboot, obs::TracePhase::kBegin, leader);
  job->t0 = options_.clock->Now();

  recorder_.Record(obs::EventKind::kRebootStop, obs::TracePhase::kBegin,
                   leader);
  StopComponentFibers(leader, &job->inflight, &job->queued);
  job->t1 = options_.clock->Now();
  report.stop_ns = job->t1 - job->t0;
  recorder_.Record(obs::EventKind::kRebootStop, obs::TracePhase::kEnd, leader,
                   report.stop_ns);
  hist_.reboot_stop_ns->Record(report.stop_ns);
  // Parked until the replay completes: no resident fiber exists, and the
  // failed flag keeps MaybeSpawnAux from attaching one to a half-restored
  // arena. Inbound traffic queues in the domain and is served post-respawn.
  slot.failed = true;

  // Restore each stateful primitive of the group (dominant cost,
  // proportional to the component footprint). With recovery workers the
  // restores run off-thread so N failed components overlap; stateless
  // members re-Init cheaply at join time.
  recorder_.Record(obs::EventKind::kRebootSnapshot, obs::TracePhase::kBegin,
                   leader);
  for (ComponentId m : slot.group) {
    if (slots_[m].component->statefulness() == Statefulness::kStateful) {
      RecoveryJob::MemberRestore mr;
      mr.member = m;
      // Resolved here, on the message thread: the worker gets job-private
      // pointers and never dereferences slots_ (vampcheck ownership).
      mr.checkpoint = &slots_[m].checkpoint;
      mr.arena = &slots_[m].component->arena();
      job->restores.push_back(std::move(mr));
    }
  }
  recovery_jobs_.push_back(job);
  peak_concurrent_recoveries_ =
      std::max(peak_concurrent_recoveries_, recovery_jobs_.size());
  if (recovery_jobs_.size() >= 2) {
    ct_.recovery_overlaps->Add();
    recorder_.Record(obs::EventKind::kRecoveryOverlap,
                     obs::TracePhase::kInstant, leader,
                     static_cast<std::int64_t>(recovery_jobs_.size()));
  }

  if (job->restores.empty()) {
    job->restore_done.store(true, std::memory_order_release);
  } else if (options_.recovery_workers > 0) {
    // Worker-side restore: only the thread-safe Snapshot::Restore runs off
    // the message thread. Workers must not touch a FakeClock, the metrics
    // registry, the recorder, or the audit sampler — per-member stats are
    // carried back and accounted at join, on the message thread.
    EnsureRecoveryPool();
    mem::SnapshotConfig cfg = SnapshotCfg();
    cfg.clock = &SteadyClock::Instance();
    cfg.workers = 0;
    cfg.audit_rate = 0;
    recovery_pool_->Submit([this, job, cfg] { RestoreOnWorker(job, cfg); });
  } else {
    // Inline restore: the legacy serialized behavior, full audit coverage.
    for (auto& mr : job->restores) {
      mr.status = mr.checkpoint->Restore(*mr.arena, SnapshotCfg(), &mr.stats);
    }
    job->restore_done.store(true, std::memory_order_release);
  }
  return job;
}

// Runs on a RecoveryPool worker. Only job-private state (the restores the
// message thread resolved in BeginRecovery) and the completion handshake —
// everything else in the runtime is VAMP_MSG_THREAD_ONLY.
void Runtime::RestoreOnWorker(std::shared_ptr<RecoveryJob> job,
                              mem::SnapshotConfig cfg) VAMP_POOL_ENTRY {
  for (auto& mr : job->restores) {
    mr.status = mr.checkpoint->Restore(*mr.arena, cfg, &mr.stats);
  }
  {
    std::lock_guard<std::mutex> lk(recovery_mu_);
    job->restore_done.store(true, std::memory_order_release);
  }
  recovery_cv_.notify_all();
}

bool Runtime::ReplayBlockedByDeps(const RecoveryJob& job) const {
  for (ComponentId m : slots_[job.leader].group) {
    for (ComponentId d : slots_[m].deps) {
      const ComponentId dep_leader = LeaderOf(d);
      if (dep_leader == job.leader) continue;
      for (const auto& other : recovery_jobs_) {
        if (other.get() == &job) continue;
        if (other->leader == dep_leader && !other->done) return true;
      }
    }
  }
  return false;
}

void Runtime::RemoveJob(const std::shared_ptr<RecoveryJob>& job) {
  recovery_jobs_.erase(
      std::remove(recovery_jobs_.begin(), recovery_jobs_.end(), job),
      recovery_jobs_.end());
}

void Runtime::FailJob(const std::shared_ptr<RecoveryJob>& job, Status error,
                      obs::EventKind phase) {
  // The group stays down (slot.failed remains set); the process and every
  // other component — including the other in-flight recoveries — keep
  // going. An escalating (fault-path) job defers its FailStop until the
  // surviving jobs have drained, so a reboot that fails mid-restore while
  // another reboot is in flight never strands that reboot mid-recovery.
  recorder_.Record(phase, obs::TracePhase::kEnd, job->leader, /*a=*/-1);
  recorder_.Record(obs::EventKind::kReboot, obs::TracePhase::kEnd,
                   job->leader, /*a=*/-1);
  ct_.recovery_failures->Add();
  job->error = std::move(error);
  job->ok = false;
  job->done = true;
  RemoveJob(job);
  if (job->escalate && !pending_failstop_.has_value()) {
    pending_failstop_ = job->origin.value_or(ComponentFault(
        job->leader, FaultKind::kInjected, job->error.message()));
  }
}

void Runtime::FinalizeRestore(const std::shared_ptr<RecoveryJob>& job) {
  Slot& slot = slots_[job->leader];
  RebootReport& report = job->report;
  for (auto& mr : job->restores) {
    Slot& ms = slots_[mr.member];
    comp::Component& c = *ms.component;
    if (!mr.status.ok()) {
      // Health-informed escalation: reinit is globally opt-in, but a group
      // whose recent health history is degraded has been aging toward this
      // failure — its checkpoint is the stale artifact of a sick image, so
      // discarding it for a fresh Init + full replay is the better recovery
      // even without the flag. Healthy components keep the strict
      // status-error contract.
      const bool reinit =
          options_.reinit_on_restore_failure ||
          (health_ != nullptr && health_->IsDegraded(job->leader));
      if (reinit) {
        // The image is unusable; rebuild from scratch instead of giving up:
        // reformat + Init/Bind (exports replace in place, so fn ids and the
        // log stay valid), take a fresh post-init checkpoint, and let the
        // full log replay rebuild the state the dead image held.
        VAMPOS_INFO(
            "checkpoint restore failed for '%s' (%s); re-initializing",
            c.name().c_str(), mr.status.message().c_str());
        c.arena().BumpGeneration();  // invalidate borrows minted pre-reboot
        c.alloc_.emplace(c.arena());
        comp::InitCtx ictx(*this, mr.member);
        c.Init(ictx);
        c.Bind(ictx);
        ms.checkpoint = CaptureCheckpoint(c);
        ct_.recovery_reinits->Add();
        continue;
      }
      // A corrupt or mismatched checkpoint fails this reboot through the
      // normal fault path: the group stays down and the caller decides
      // (the fault path escalates to fail-stop), but the process and the
      // other components keep running.
      FailJob(job,
              Status::Error(Errno::kIo, "checkpoint restore failed for '" +
                                            c.name() + "': " +
                                            mr.status.message()),
              obs::EventKind::kRebootSnapshot);
      return;
    }
    ct_.snapshot_restores->Add();
    AccountSnapshot(mr.member, mr.stats);
    report.snapshot_hash_ns += mr.stats.hash_ns;
    report.snapshot_copy_ns += mr.stats.copy_ns;
    report.snapshot_pages_total += mr.stats.pages_total;
    report.snapshot_pages_dirty += mr.stats.pages_dirty;
    report.snapshot_pages_skipped += mr.stats.pages_skipped;
    report.snapshot_bytes_copied += mr.stats.bytes_copied;
    // The arena's bytes were just rewritten from the checkpoint: any view
    // still pointing in carries the old generation and faults on use.
    c.arena().BumpGeneration();
    c.alloc_.emplace(mem::BuddyAllocator::Attach(c.arena()));
    CallCtx rctx(*this, mr.member, /*restoring=*/true);
    TaintComponentEntry(c);
    c.OnRestored(rctx);
  }
  // Stateless members re-run Init on a freshly formatted arena.
  for (ComponentId m : slot.group) {
    Slot& ms = slots_[m];
    if (ms.component->statefulness() == Statefulness::kStateful) continue;
    ms.component->arena().BumpGeneration();
    ms.component->alloc_.emplace(ms.component->arena());
    comp::InitCtx ictx(*this, m);
    ms.component->Init(ictx);
  }
  job->t2 = options_.clock->Now();
  report.snapshot_ns = job->t2 - job->t1;
  recorder_.Record(obs::EventKind::kRebootSnapshot, obs::TracePhase::kEnd,
                   job->leader, report.snapshot_ns);
  hist_.reboot_snapshot_ns->Record(report.snapshot_ns);
  hist_.reboot_snapshot_hash_ns->Record(report.snapshot_hash_ns);
  hist_.reboot_snapshot_copy_ns->Record(report.snapshot_copy_ns);
  recorder_.Record(obs::EventKind::kSnapshotHash, obs::TracePhase::kInstant,
                   job->leader, report.snapshot_hash_ns,
                   static_cast<std::int64_t>(report.snapshot_pages_total));
  recorder_.Record(obs::EventKind::kSnapshotCopy, obs::TracePhase::kInstant,
                   job->leader, report.snapshot_copy_ns,
                   static_cast<std::int64_t>(report.snapshot_bytes_copied));
  job->restored = true;
}

void Runtime::FinalizeReplay(const std::shared_ptr<RecoveryJob>& job) {
  const ComponentId leader = job->leader;
  Slot& slot = slots_[leader];
  RebootReport& report = job->report;

  // Encapsulated restoration: replay the (shrunk) logs. A fault during
  // replay means the component cannot be restored (e.g. a deterministic
  // bug triggered by its own history) — surface it as a failed reboot
  // instead of letting the exception unwind into the caller.
  recorder_.Record(obs::EventKind::kRebootReplay, obs::TracePhase::kBegin,
                   leader);
  try {
    for (ComponentId m : slot.group) {
      if (slots_[m].component->statefulness() == Statefulness::kStateful) {
        ReplayLog(m, report);
      }
    }
    for (ComponentId m : slot.group) {
      if (slots_[m].component->statefulness() == Statefulness::kStateful) {
        CallCtx rctx(*this, m, /*restoring=*/true);
        restore_stack_.push_back(ExecCtx{m, 0, Message{}, Args{}, 0, {}, 0});
        TaintComponentEntry(*slots_[m].component);
        slots_[m].component->OnReplayed(rctx);
        restore_stack_.pop_back();
      }
    }
  } catch (const ComponentFault& fault) {
    restore_stack_.clear();
    replay_entry_ = nullptr;
    FailJob(job,
            Status::Error(Errno::kIo, std::string("restoration failed: ") +
                                          fault.what()),
            obs::EventKind::kRebootReplay);
    return;
  }
  const Nanos t3 = options_.clock->Now();
  report.replay_ns = t3 - job->t2;
  recorder_.Record(obs::EventKind::kRebootReplay, obs::TracePhase::kEnd,
                   leader, report.replay_ns,
                   static_cast<std::int64_t>(report.entries_replayed));
  hist_.reboot_replay_ns->Record(report.replay_ns);
  hist_.replay_entries->Record(
      static_cast<std::int64_t>(report.entries_replayed));

  // Checkpoint refresh (periodic rejuvenation): fold the replayed history
  // into the checkpoint so the next reboot starts from here. Incremental
  // mode touches only the pages the replay dirtied.
  if (job->refresh) RefreshCheckpoints(slot, report);

  // Per-request stall attribution: every traced request this reboot parked
  // (interrupted mid-handler) or re-queued (drained from the inbox) was
  // stalled for the stop+snapshot+replay phases — the recovery-induced
  // share of its end-to-end latency. Each affected trace is charged once,
  // as a trace.stall event plus a trace.stall_reboot_ns sample; deduped
  // outbound retries create no new spans, so nothing double-counts.
  // (TrySwapVariant intentionally skips this: a variant swap is a
  // deterministic-bug failover, not the reboot path the paper measures.)
  if (recorder_.enabled()) {
    const Nanos stall =
        report.stop_ns + report.snapshot_ns + report.replay_ns;
    const auto charge = [&](const RetryRecord& rec) {
      if (!rec.msg.trace.active()) return;
      hist_.trace_stall_ns->Record(stall);
      recorder_.Record(obs::EventKind::kTraceStall, obs::TracePhase::kInstant,
                       leader, stall,
                       static_cast<std::int64_t>(rec.msg.rpc_id),
                       rec.msg.trace);
    };
    for (const RetryRecord& rec : job->inflight) charge(rec);
    for (const RetryRecord& rec : job->queued) charge(rec);
  }

  slot.failed = false;
  slot.reboots++;
  RespawnResident(leader);

  // Re-feed the interrupted requests: a non-deterministic fault will not
  // trigger again on the same input (paper §II-B). The retry budget is one;
  // a repeat failure fail-stops.
  if (options_.retry_inflight) {
    for (RetryRecord& rec : job->inflight) {
      Message retry = rec.msg;
      retry.enqueued_at = options_.clock->Now();
      retry.log_seq = MaybeLogCall(Fn(rec.msg.fn), rec.args);
      // Outbound returns the interrupted execution already observed are fed
      // back during the retry so the peers' side effects are not repeated.
      if (!rec.outbound_feed.empty()) {
        retry_feeds_[retry.rpc_id] = std::move(rec.outbound_feed);
      }
      domain_->Push(retry, rec.args);
      ct_.messages->Add();
      slot.retried_once = true;
    }
  } else {
    for (RetryRecord& rec : job->inflight) {
      Message r;
      r.kind = Message::Kind::kReply;
      r.rpc_id = rec.msg.rpc_id;
      r.from = leader;
      r.to = rec.msg.from;
      r.fn = rec.msg.fn;
      r.caller_fiber = rec.msg.caller_fiber;
      r.trace = rec.msg.trace;
      domain_->PushReply(
          r, Args{MsgValue(ToWire(Status::Error(Errno::kIo, "rebooted")))});
    }
  }
  job->inflight.clear();

  // Re-queue the stale inbound messages drained from the group's inboxes:
  // they never executed, so they are requeues, not retries — no retried_once
  // charge, and a later fault while serving them gets a fresh reboot budget.
  for (RetryRecord& rec : job->queued) {
    Message requeue = rec.msg;
    requeue.enqueued_at = options_.clock->Now();
    requeue.log_seq = MaybeLogCall(Fn(rec.msg.fn), rec.args);
    domain_->Push(requeue, rec.args);
    ct_.messages->Add();
  }
  job->queued.clear();

  report.total_ns = options_.clock->Now() - job->t0;
  VAMPOS_TRACE("reboot '%s' done (%lld us, %zu replayed)",
               report.name.c_str(),
               static_cast<long long>(report.total_ns / 1000),
               report.entries_replayed);
  ct_.reboots->Add();
  hist_.reboot_total_ns->Record(report.total_ns);
  recorder_.Record(obs::EventKind::kReboot, obs::TracePhase::kEnd, leader,
                   report.total_ns,
                   static_cast<std::int64_t>(report.entries_replayed));
  // The group's arena was rebuilt: pre-reboot aging history describes a
  // process image that no longer exists, so the health series restart.
  if (health_ != nullptr) health_->OnReboot(leader, options_.clock->Now());
  reboot_history_.push_back(report);
  job->ok = true;
  job->done = true;
  RemoveJob(job);
  if (dump_trace_on_reboot_) WritePostmortemTrace("post-reboot");
}

bool Runtime::DriveRecovery(bool block) {
  if (recovery_jobs_.empty() && !pending_failstop_.has_value()) return false;
  HangClockPause pause(*this);
  bool progressed = false;
  // Join restores the pool (or the inline path) finished. All accounting —
  // metrics, recorder events, OnRestored hooks, stateless re-Init — happens
  // here, on the message thread.
  for (const auto& job :
       std::vector<std::shared_ptr<RecoveryJob>>(recovery_jobs_)) {
    if (job->done || job->restored) continue;
    if (!job->restore_done.load(std::memory_order_acquire)) continue;
    FinalizeRestore(job);
    progressed = true;
  }
  // Dependency-ordered replay: a job replays only after the components its
  // group calls into are back. When every remaining job is restored but
  // mutually dependent (a dependency cycle), the lowest leader id breaks it.
  for (;;) {
    std::shared_ptr<RecoveryJob> pick;
    bool waiting = false;
    bool restoring = false;
    for (const auto& job : recovery_jobs_) {
      if (job->done) continue;
      if (!job->restored) {
        restoring = true;
        continue;
      }
      waiting = true;
      if (ReplayBlockedByDeps(*job)) continue;
      pick = job;
      break;
    }
    if (pick == nullptr && waiting && !restoring) {
      for (const auto& job : recovery_jobs_) {
        if (job->done || !job->restored) continue;
        if (pick == nullptr || job->leader < pick->leader) pick = job;
      }
    }
    if (pick == nullptr) break;
    FinalizeReplay(pick);
    progressed = true;
  }
  if (!progressed && block && !recovery_jobs_.empty()) {
    // Nothing can advance until a worker lands a restore: sleep on its
    // signal (bounded, as a safety valve) instead of spinning.
    std::unique_lock<std::mutex> lk(recovery_mu_);
    recovery_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
      for (const auto& job : recovery_jobs_) {
        if (!job->done && !job->restored &&
            job->restore_done.load(std::memory_order_acquire)) {
          return true;
        }
      }
      return false;
    });
  }
  if (recovery_jobs_.empty() && pending_failstop_.has_value()) {
    const ComponentFault fault = *pending_failstop_;
    pending_failstop_.reset();
    FailStop(fault);
  }
  return progressed;
}

void Runtime::ReplayLog(ComponentId id, RebootReport& report) {
  if (!domain_->HasLog(id)) return;
  msg::CallLog& log = domain_->LogFor(id);
  for (const auto& kv : log.entries()) {
    const CallLogEntry& entry = kv.second;
    if (!entry.state_changing) continue;  // fstat-style calls are skipped
    if (!entry.have_ret && !entry.synthetic) continue;  // never completed
    replay_entry_ = &entry;
    replay_outbound_cursor_ = 0;
    restore_stack_.push_back(
        ExecCtx{id, entry.seq, Message{}, Args{}, 0, {}, 0});
    // Session-creating calls must re-allocate the *original* id: shrinking
    // may have pruned earlier allocations, so natural lowest-free allocation
    // would diverge from what running components still hold.
    std::optional<std::int64_t> forced;
    if (Fn(entry.fn).options.session_from_ret && entry.session >= 0) {
      forced = entry.session;
    }
    CallCtx rctx(*this, id, /*restoring=*/true, forced);
    TaintComponentEntry(*slots_[id].component);
    MsgValue ret;
    try {
      ret = Fn(entry.fn).handler(rctx, entry.args);
    } catch (const ComponentFault& fault) {
      restore_stack_.pop_back();
      replay_entry_ = nullptr;
      VAMPOS_ERROR("fault during replay of %s entry %llu: %s",
                   slots_[id].component->name().c_str(),
                   static_cast<unsigned long long>(entry.seq), fault.what());
      throw;
    }
    restore_stack_.pop_back();
    if (entry.have_ret && !entry.synthetic && !(ret == entry.ret)) {
      ct_.replay_divergence->Add();
      VAMPOS_ERROR("replay divergence in %s.%s (entry %llu)",
                   slots_[id].component->name().c_str(),
                   Fn(entry.fn).name.c_str(),
                   static_cast<unsigned long long>(entry.seq));
    }
    report.entries_replayed++;
  }
  replay_entry_ = nullptr;
}

msg::MsgValue Runtime::RestoreFeed(ComponentId restoring, FunctionId fn) {
  // Encapsulated restoration: feed the logged return value instead of
  // invoking the (running, consistent) other component.
  if (replay_entry_ == nullptr) {
    // OnReplayed hooks may probe other components; nothing was recorded for
    // them, so surface a benign error.
    return MsgValue(ToWire(Status::Error(Errno::kAgain, "no replay feed")));
  }
  const auto& outbound = replay_entry_->outbound;
  if (replay_outbound_cursor_ >= outbound.size() ||
      outbound[replay_outbound_cursor_].first != fn) {
    VAMPOS_ERROR("replay feed mismatch for component %d fn %s",
                 restoring, Fn(fn).name.c_str());
    return MsgValue(ToWire(Status::Error(Errno::kIo, "replay feed mismatch")));
  }
  return outbound[replay_outbound_cursor_++].second;
}

std::vector<RebootReport> Runtime::RejuvenateAll() {
  std::vector<RebootReport> reports;
  for (auto& slot : slots_) {
    const ComponentId id = slot.component->id();
    if (slot.leader != id) continue;
    bool rebootable = true;
    for (ComponentId m : slot.group) {
      rebootable = rebootable && slots_[m].component->statefulness() !=
                                     Statefulness::kUnrebootable;
    }
    if (!rebootable) continue;
    auto result = Reboot(id);
    if (result.ok()) reports.push_back(result.value());
  }
  return reports;
}

// ----------------------------------------------------------------- faults

void Runtime::RegisterTerminationHook(std::function<void()> hook) {
  termination_hooks_.push_back(std::move(hook));
}

void Runtime::RegisterVariant(ComponentId id,
                              std::unique_ptr<comp::Component> variant) {
  Slot& slot = slots_[LeaderOf(id)];
  if (variant->name() != slot.component->name()) {
    Fatal("variant for '%s' must keep the component name (got '%s')",
          slot.component->name().c_str(), variant->name().c_str());
  }
  slot.variant = std::move(variant);
}

bool Runtime::TrySwapVariant(ComponentId leader) {
  // Multi-versioning failover (§VIII): the primary re-triggered its failure
  // after a reboot — a deterministic bug. Swap in the registered variant
  // (same name, same interface, different implementation), rebuild its
  // state from the log, and continue.
  Slot& slot = slots_[leader];
  if (slot.variant == nullptr || slot.group.size() != 1) return false;

  std::vector<RetryRecord> inflight_retry;
  std::vector<RetryRecord> queued_requeue;
  StopComponentFibers(leader, &inflight_retry, &queued_requeue);
  // The deterministic bug lives in the old implementation; the injected
  // fault does not carry over to the variant.
  slot.injection.reset();

  // The retiring implementation's arena dies with it: drop its protection
  // tag and its shadow-ownership claim before the successor's arena is
  // registered, or a stale region would mis-tag recycled heap memory (and
  // trip the overlap checks).
  if (isolation_ && slot.key != mpk::kDefaultKey) {
    domains_.UntagArena(slot.component->arena());
  }
  if (checker_ != nullptr) {
    checker_->UnregisterRegion(slot.component->arena().base());
  }
  std::unique_ptr<comp::Component> variant = std::move(slot.variant);
  variant->id_ = leader;
  slot.component = std::move(variant);
  comp::Component& c = *slot.component;
  if (isolation_ && slot.key != mpk::kDefaultKey) {
    domains_.TagArena(c.arena(), slot.key, c.name() + "+variant");
  }
  if (checker_ != nullptr) {
    checker_->RegisterRegion(leader, c.arena().base(), c.arena().size(),
                             c.name() + "+variant");
  }
  c.alloc_.emplace(c.arena());
  comp::InitCtx ictx(*this, leader);
  c.Init(ictx);  // Export() replaces handlers in place: fn ids stay stable
  c.Bind(ictx);

  const bool stateful =
      c.statefulness() == comp::Statefulness::kStateful;
  RebootReport report;
  report.component = leader;
  report.name = c.name() + "+variant";
  if (stateful) {
    slot.checkpoint = CaptureCheckpoint(c);
    try {
      ReplayLog(leader, report);
      comp::CallCtx rctx(*this, leader, /*restoring=*/true);
      restore_stack_.push_back(
          ExecCtx{leader, 0, Message{}, Args{}, 0, {}, 0});
      TaintComponentEntry(c);
      c.OnReplayed(rctx);
      restore_stack_.pop_back();
    } catch (const ComponentFault&) {
      // The variant cannot be restored either: give up on the swap.
      restore_stack_.clear();
      replay_entry_ = nullptr;
      slot.failed = true;
      return false;
    }
  }
  slot.failed = false;
  slot.retried_once = false;
  slot.reboots++;
  RespawnResident(leader);
  variant_swaps_++;
  reboot_history_.push_back(report);

  for (RetryRecord& rec : inflight_retry) {
    Message retry = rec.msg;
    retry.enqueued_at = options_.clock->Now();
    retry.log_seq = MaybeLogCall(Fn(rec.msg.fn), rec.args);
    if (!rec.outbound_feed.empty()) {
      retry_feeds_[retry.rpc_id] = std::move(rec.outbound_feed);
    }
    domain_->Push(retry, rec.args);
    ct_.messages->Add();
  }
  for (RetryRecord& rec : queued_requeue) {
    Message requeue = rec.msg;
    requeue.enqueued_at = options_.clock->Now();
    requeue.log_seq = MaybeLogCall(Fn(rec.msg.fn), rec.args);
    domain_->Push(requeue, rec.args);
    ct_.messages->Add();
  }
  recorder_.Record(obs::EventKind::kVariantSwap, obs::TracePhase::kInstant,
                   leader, static_cast<std::int64_t>(variant_swaps_));
  VAMPOS_INFO("deterministic fault in '%s': swapped in variant",
              c.name().c_str());
  return true;
}

void Runtime::HandleFaultedFiber(sched::Fiber* fiber) {
  const ComponentFault fault =
      fiber->fault().value_or(ComponentFault(fiber->owner(),
                                             FaultKind::kInjected, "unknown"));
  if (fiber->owner() == kComponentNone) {
    // Application-layer fault: outside VampOS's fault model; fail-stop.
    FailStop(fault);
    return;
  }
  const ComponentId leader = LeaderOf(fiber->owner());
  Slot& slot = slots_[leader];
  slot.failed = true;
  if (health_ != nullptr) health_->OnFault(leader, options_.clock->Now());
  VAMPOS_INFO("component '%s' failed: %s",
              slot.component->name().c_str(), fault.what());
  if (terminal_fault_.has_value()) {
    // Post-fail-stop fault (e.g. a parked hang unwinding): the runtime is
    // already terminal — retire the fiber so idle detection can succeed, but
    // start no new recovery.
    if (slot.resident == fiber) slot.resident = nullptr;
    if (auto it = std::find(slot.aux.begin(), slot.aux.end(), fiber);
        it != slot.aux.end()) {
      slot.aux.erase(it);
    }
    fibers_.Destroy(fiber);
    return;
  }
  if (slot.retried_once) {
    // The rebooted component faced the failure again: a deterministic
    // fault. A registered variant can take over (§VIII); otherwise this is
    // out of scope and the runtime fail-stops (paper §II-B).
    if (TrySwapVariant(leader)) return;
    FailStop(fault);
    return;
  }
  // Recovery runs as a job so other components keep being served (and other
  // failed components recover concurrently) while this group restores. If
  // the job later fails, it escalates to the legacy fail-stop — deferred
  // until the surviving jobs have drained.
  auto begun = BeginRecovery(leader, /*refresh=*/false, /*escalate=*/true,
                             fault);
  if (!begun.ok()) FailStop(fault);
}

void Runtime::CheckHangs() {
  // Paper §V-A: the message thread periodically checks the processing time
  // of pulled messages and treats a component as hung past the threshold.
  // Only fibers that are dispatchable (kReady) count: a fiber blocked on a
  // nested reply is waiting on someone else, not hung itself.
  if (options_.hang_threshold <= 0) return;
  if (terminal_fault_.has_value()) return;  // already dead; nothing to save
  const Nanos now = options_.clock->Now();
  ComponentId hung = kComponentNone;
  Nanos hung_age = 0;
  std::uint64_t hung_rpc = 0;
  FunctionId hung_fn = 0;
  for (const auto& [fiber, ctx] : exec_ctx_) {
    if (fiber->state() != sched::FiberState::kReady) continue;
    if (now - ctx.started_at <= options_.hang_threshold) continue;
    hung = ctx.component;
    hung_age = now - ctx.started_at;
    hung_rpc = ctx.msg.rpc_id;
    hung_fn = ctx.msg.fn;
    break;
  }
  if (hung == kComponentNone) return;
  Slot& slot = slots_[LeaderOf(hung)];
  ct_.hangs_detected->Add();
  if (health_ != nullptr) health_->OnHang(LeaderOf(hung), now);
  recorder_.Record(obs::EventKind::kHangDetected, obs::TracePhase::kInstant,
                   hung, hung_age, static_cast<std::int64_t>(hung_rpc));
  VAMPOS_INFO("hang detected in '%s' (fn=%u rpc=%llu age=%lldus)",
              slot.component->name().c_str(),
              static_cast<unsigned>(hung_fn),
              static_cast<unsigned long long>(hung_rpc),
              static_cast<long long>(hung_age / 1000));
  if (slot.retried_once) {
    if (TrySwapVariant(LeaderOf(hung))) return;
    FailStop(ComponentFault(hung, FaultKind::kHang,
                            "hang re-occurred after reboot"));
    return;
  }
  const ComponentFault fault(hung, FaultKind::kHang, "hang detected");
  auto begun = BeginRecovery(LeaderOf(hung), /*refresh=*/false,
                             /*escalate=*/true, fault);
  if (!begun.ok()) {
    FailStop(
        ComponentFault(hung, FaultKind::kHang, begun.status().message()));
  }
}

void Runtime::FailStop(const ComponentFault& fault) {
  terminal_fault_ = fault;
  recorder_.Record(obs::EventKind::kFailStop, obs::TracePhase::kInstant,
                   fault.component(),
                   static_cast<std::int64_t>(fault.kind()));
  VAMPOS_ERROR("fail-stop: %s", fault.what());
  // Free the messages still staged for the dead component's group: nobody
  // will ever pull them, and their buffers would pin message-arena memory
  // for the rest of the (now terminating) run.
  if (fault.component() != kComponentNone) {
    for (ComponentId m : slots_[LeaderOf(fault.component())].group) {
      domain_->DropQueued(m);
    }
  }
  // Unblock every waiter with an error so app fibers can observe the
  // failure and terminate gracefully (graceful termination, §VIII).
  for (auto& [rpc, pending] : pending_replies_) {
    (void)rpc;
    if (pending.waiter != nullptr &&
        pending.waiter->state() == sched::FiberState::kBlocked &&
        !pending.arrived) {
      pending.arrived = true;
      pending.value =
          MsgValue(ToWire(Status::Error(Errno::kIo, "fail-stop")));
      fibers_.Wake(pending.waiter);
    }
  }
  // Graceful termination (§VIII): give the application a chance to save its
  // state through the still-undamaged components before it exits.
  if (!termination_hooks_ran_ && !termination_hooks_.empty()) {
    termination_hooks_ran_ = true;
    int n = 0;
    for (auto& hook : termination_hooks_) {
      SpawnApp("termination-hook-" + std::to_string(n++), hook);
    }
  }
  WritePostmortemTrace("fail-stop");
}

}  // namespace vampos::core
