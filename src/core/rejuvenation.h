// RejuvenationScheduler: drives periodic component-level rejuvenation.
//
// The paper's §IV argues that VampOS reboots are cheap enough for
// administrators to rejuvenate far more often than full reboots allow. This
// helper encodes that operational policy: components are rejuvenated one at
// a time, round-robin, whenever their interval elapses — exactly the
// "reboots of each component one by one every 30 seconds" cadence used in
// the Table V experiment. Tick() is called from the host loop (or between
// workload phases); it reboots at most one component per call so service
// disruption stays bounded.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/clock.h"
#include "core/runtime.h"

namespace vampos::core {

class RejuvenationScheduler {
 public:
  /// `interval`: minimum time between two component reboots. Components are
  /// taken from `plan` in order, cyclically. Unrebootable components are
  /// skipped (VIRTIO refuses; that is expected and not an error).
  RejuvenationScheduler(Runtime& rt, std::vector<ComponentId> plan,
                        Nanos interval)
      : rt_(rt), plan_(std::move(plan)), interval_(interval) {
    last_ = rt_.options().clock->Now();
  }

  /// Builds a plan covering every rebootable component of the runtime's
  /// assembled stack, stateless components first (cheapest reboots early in
  /// each cycle).
  static RejuvenationScheduler ForAllComponents(Runtime& rt, Nanos interval);

  /// Reboots the next component if the interval has elapsed. Returns the
  /// report when a reboot happened.
  std::optional<RebootReport> Tick();

  /// Forces the next component's rejuvenation now, ignoring the interval.
  std::optional<RebootReport> ForceNext();

  /// When enabled, every rejuvenation reboot also refreshes the component's
  /// checkpoint (incremental re-snapshot of replay-dirtied pages) and prunes
  /// the replayed log entries, so checkpoint age — and therefore the next
  /// reboot's replay cost — stays bounded by one rejuvenation period.
  void set_refresh_checkpoints(bool refresh) { refresh_checkpoints_ = refresh; }
  [[nodiscard]] bool refresh_checkpoints() const {
    return refresh_checkpoints_;
  }

  /// Adaptive (metric-driven) mode: instead of the blind round-robin, each
  /// due tick assesses every plan member through the health monitor and
  /// reboots the worst-scoring *degraded* component — or nothing at all
  /// when every component is healthy. A fast-aging component is reached as
  /// soon as its detectors fire instead of waiting for its slot, and clean
  /// components are never disturbed.
  void set_adaptive(obs::HealthMonitor& health) { health_ = &health; }
  [[nodiscard]] bool adaptive() const { return health_ != nullptr; }
  /// Reboots performed by adaptive picks.
  [[nodiscard]] std::uint64_t adaptive_reboots() const {
    return adaptive_reboots_;
  }
  /// Due ticks that rebooted nothing because every component was healthy.
  [[nodiscard]] std::uint64_t healthy_skips() const { return healthy_skips_; }

  [[nodiscard]] std::uint64_t cycles_completed() const { return cycles_; }
  [[nodiscard]] std::size_t plan_size() const { return plan_.size(); }

 private:
  /// Worst-scoring degraded plan member, or nullopt when all are healthy.
  std::optional<ComponentId> WorstInPlan();

  Runtime& rt_;
  std::vector<ComponentId> plan_;
  Nanos interval_;
  Nanos last_ = 0;
  std::size_t next_ = 0;
  std::uint64_t cycles_ = 0;
  bool refresh_checkpoints_ = false;
  obs::HealthMonitor* health_ = nullptr;  // non-null = adaptive mode
  std::uint64_t adaptive_reboots_ = 0;
  std::uint64_t healthy_skips_ = 0;
};

}  // namespace vampos::core
