// Bounded worker pool for concurrent component recovery. Workers run only
// the thread-safe half of a reboot — Snapshot::Restore into a stopped
// component's arena — while all metrics, recorder events, and component
// hooks stay on the message thread (neither the registry nor the flight
// recorder is thread-safe). The runtime spawns the pool lazily on the first
// recovery submit, so the hundreds of short-lived Runtime instances in unit
// tests never pay for threads they don't use.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/thread_annotations.h"

namespace vampos::core {

class RecoveryPool {
 public:
  explicit RecoveryPool(int workers) {
    if (workers < 1) workers = 1;
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { Run(); });
    }
  }

  RecoveryPool(const RecoveryPool&) = delete;
  RecoveryPool& operator=(const RecoveryPool&) = delete;

  /// Drains every queued and running task before joining: tasks hold raw
  /// pointers into the runtime's slots, which must outlive them.
  ~RecoveryPool() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      drained_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void Run() VAMP_POOL_ENTRY {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        active_++;
      }
      task();
      {
        std::lock_guard<std::mutex> lk(mu_);
        active_--;
        if (queue_.empty() && active_ == 0) drained_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<std::function<void()>> queue_ VAMP_GUARDED_BY(mu_);
  int active_ VAMP_GUARDED_BY(mu_) = 0;
  bool stop_ VAMP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace vampos::core
