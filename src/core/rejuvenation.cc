#include "core/rejuvenation.h"

#include <algorithm>

namespace vampos::core {

RejuvenationScheduler RejuvenationScheduler::ForAllComponents(
    Runtime& rt, Nanos interval) {
  std::vector<ComponentId> plan;
  for (ComponentId id : rt.Components()) {
    if (rt.GroupLeader(id) != id) continue;  // merged members ride the leader
    if (rt.component(id).statefulness() ==
        comp::Statefulness::kUnrebootable) {
      continue;
    }
    plan.push_back(id);
  }
  // Stateless first: the cheapest reboots lead each cycle.
  std::stable_sort(plan.begin(), plan.end(), [&rt](ComponentId a,
                                                   ComponentId b) {
    const bool sa = rt.component(a).statefulness() ==
                    comp::Statefulness::kStateless;
    const bool sb = rt.component(b).statefulness() ==
                    comp::Statefulness::kStateless;
    return sa && !sb;
  });
  return RejuvenationScheduler(rt, std::move(plan), interval);
}

std::optional<RebootReport> RejuvenationScheduler::Tick() {
  if (plan_.empty()) return std::nullopt;
  const Nanos now = rt_.options().clock->Now();
  if (now - last_ < interval_) return std::nullopt;
  return ForceNext();
}

std::optional<RebootReport> RejuvenationScheduler::ForceNext() {
  if (plan_.empty()) return std::nullopt;
  last_ = rt_.options().clock->Now();
  if (health_ != nullptr) {
    const std::optional<ComponentId> worst = WorstInPlan();
    if (!worst.has_value()) {
      healthy_skips_++;
      return std::nullopt;  // nothing degraded — leave everyone alone
    }
    auto result = rt_.Reboot(*worst, refresh_checkpoints_);
    if (!result.ok()) return std::nullopt;
    adaptive_reboots_++;
    health_->NoteRejuvenation(*worst, last_);
    return result.value();
  }
  const ComponentId target = plan_[next_];
  next_ = (next_ + 1) % plan_.size();
  if (next_ == 0) cycles_++;
  auto result = rt_.Reboot(target, refresh_checkpoints_);
  if (!result.ok()) return std::nullopt;
  return result.value();
}

std::optional<ComponentId> RejuvenationScheduler::WorstInPlan() {
  const Nanos now = rt_.options().clock->Now();
  std::optional<ComponentId> worst;
  double worst_score = 0.0;
  for (ComponentId id : plan_) {
    const obs::HealthSignals sig = health_->Assess(id, now);
    if (!sig.degraded) continue;
    if (!worst.has_value() || sig.score > worst_score) {
      worst = id;
      worst_score = sig.score;
    }
  }
  return worst;
}

}  // namespace vampos::core
