#include "core/runtime.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "base/diag.h"
#include "check/isolation_checker.h"

namespace vampos::core {

using comp::CallCtx;
using comp::Component;
using comp::FnOptions;
using comp::InitCtx;
using comp::Statefulness;
using msg::Args;
using msg::Message;
using msg::MsgValue;

// ------------------------------------------------------------- lifecycle

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  // Observability: resolve every hot-path counter/histogram once; the
  // recorder stays unallocated unless tracing was requested. Env knobs let
  // operators trace any binary without a code change: VAMPOS_TRACE forces
  // tracing on ("1") or off, VAMPOS_TRACE_EVENTS overrides the ring
  // capacity, VAMPOS_TRACE_DUMP_ON_REBOOT adds a post-reboot dump to the
  // fail-stop/spin-limit auto-dump paths.
  recorder_.set_clock(options_.clock);
  recorder_.set_dropped_counter(&metrics_.GetCounter("obs.dropped_events"));
  bool tracing = options_.tracing;
  if (const char* env = std::getenv("VAMPOS_TRACE")) tracing = env[0] == '1';
  std::size_t trace_capacity = options_.trace_capacity;
  if (const char* env = std::getenv("VAMPOS_TRACE_EVENTS")) {
    if (const long n = std::atol(env); n > 0) {
      trace_capacity = static_cast<std::size_t>(n);
    }
  }
  if (tracing) recorder_.Enable(trace_capacity);
  if (const char* env = std::getenv("VAMPOS_TRACE_DUMP_ON_REBOOT")) {
    dump_trace_on_reboot_ = env[0] == '1';
  }
  // VAMPOS_DIRTY_TRACKING forces write-tracked snapshots on ("1") or off;
  // VAMPOS_SNAPSHOT_AUDIT overrides the randomized audit rate (0 disables,
  // 1 audits every incremental op).
  if (const char* env = std::getenv("VAMPOS_DIRTY_TRACKING")) {
    options_.dirty_tracking = env[0] == '1';
  }
  if (const char* env = std::getenv("VAMPOS_SNAPSHOT_AUDIT")) {
    if (const long n = std::atol(env); n >= 0) {
      options_.dirty_audit_rate = static_cast<std::uint32_t>(n);
    }
  }
  // VAMPOS_RECOVERY_WORKERS sizes the concurrent-recovery pool (0 keeps the
  // legacy serialized inline restore path).
  if (const char* env = std::getenv("VAMPOS_RECOVERY_WORKERS")) {
    if (const long n = std::atol(env); n >= 0) {
      options_.recovery_workers = static_cast<int>(n);
    }
  }
  // VAMPOS_HEALTH forces the aging-aware health monitor on ("1") or off;
  // VAMPOS_METRICS_FORMAT picks the VAMPOS_METRICS_DUMP exposition format.
  if (const char* env = std::getenv("VAMPOS_HEALTH")) {
    options_.health = env[0] == '1';
  }
  // VAMPOS_MSG_ZEROCOPY forces zero-copy payload staging on ("1") or off;
  // VAMPOS_INLINE_CALLS opts into the same-destination inline fast path;
  // VAMPOS_TRACE_INLINE keeps it eligible while the flight recorder is on.
  if (const char* env = std::getenv("VAMPOS_MSG_ZEROCOPY")) {
    options_.zero_copy_payloads = env[0] == '1';
  }
  if (const char* env = std::getenv("VAMPOS_INLINE_CALLS")) {
    options_.inline_calls = env[0] == '1';
  }
  if (const char* env = std::getenv("VAMPOS_TRACE_INLINE")) {
    trace_inline_ = env[0] == '1';
  }
  if (const char* env = std::getenv("VAMPOS_METRICS_FORMAT")) {
    const std::string fmt = env;
    if (fmt == "text") {
      metrics_format_ = MetricsFormat::kText;
    } else if (fmt == "json") {
      metrics_format_ = MetricsFormat::kJson;
    } else if (fmt == "prom") {
      metrics_format_ = MetricsFormat::kProm;
    } else {
      std::fprintf(stderr,
                   "vampos: unrecognized VAMPOS_METRICS_FORMAT='%s' "
                   "(expected text, json, or prom)\n",
                   env);
      std::exit(2);
    }
  }
  ct_.calls = &metrics_.GetCounter("rt.calls");
  ct_.direct_calls = &metrics_.GetCounter("rt.direct_calls");
  ct_.messages = &metrics_.GetCounter("rt.messages");
  ct_.empty_polls = &metrics_.GetCounter("rt.empty_polls");
  ct_.log_appends = &metrics_.GetCounter("rt.log_appends");
  ct_.log_pruned_entries = &metrics_.GetCounter("rt.log_pruned_entries");
  ct_.compactions = &metrics_.GetCounter("rt.compactions");
  ct_.compaction_skips = &metrics_.GetCounter("rt.compaction_skips");
  ct_.replies_batched = &metrics_.GetCounter("rt.replies_batched");
  ct_.retries_deduped = &metrics_.GetCounter("rt.retries_deduped");
  ct_.reboots = &metrics_.GetCounter("rt.reboots");
  ct_.recovery_failures = &metrics_.GetCounter("rt.recovery_failures");
  ct_.recovery_reinits = &metrics_.GetCounter("rt.recovery_reinits");
  ct_.recovery_overlaps = &metrics_.GetCounter("rt.recovery_overlaps");
  ct_.replay_divergence = &metrics_.GetCounter("rt.replay_divergence");
  ct_.aux_fibers_spawned = &metrics_.GetCounter("rt.aux_fibers_spawned");
  ct_.hangs_detected = &metrics_.GetCounter("rt.hangs_detected");
  ct_.snapshot_captures = &metrics_.GetCounter("snapshot.captures");
  ct_.snapshot_recaptures = &metrics_.GetCounter("snapshot.recaptures");
  ct_.snapshot_restores = &metrics_.GetCounter("snapshot.restores");
  ct_.snapshot_pages_total = &metrics_.GetCounter("snapshot.pages_total");
  ct_.snapshot_pages_dirty = &metrics_.GetCounter("snapshot.pages_dirty");
  ct_.snapshot_pages_zero = &metrics_.GetCounter("snapshot.pages_zero");
  ct_.snapshot_pages_shared = &metrics_.GetCounter("snapshot.pages_shared");
  ct_.snapshot_bytes_copied = &metrics_.GetCounter("snapshot.bytes_copied");
  ct_.snapshot_dirty_fast_ops = &metrics_.GetCounter("snapshot.dirty_fast_ops");
  ct_.snapshot_dirty_fallback_ops =
      &metrics_.GetCounter("snapshot.dirty_fallback_ops");
  ct_.snapshot_dirty_pages_skipped =
      &metrics_.GetCounter("snapshot.dirty_pages_skipped");
  ct_.snapshot_dirty_audits = &metrics_.GetCounter("snapshot.dirty_audits");
  ct_.snapshot_dirty_audit_misses =
      &metrics_.GetCounter("snapshot.dirty_audit_misses");
  ct_.snapshot_dirty_taints = &metrics_.GetCounter("snapshot.dirty_taints");
  hist_.call_ns = &metrics_.GetHistogram("rt.call_ns");
  hist_.queue_depth = &metrics_.GetHistogram("msg.queue_depth");
  hist_.reboot_stop_ns = &metrics_.GetHistogram("reboot.stop_ns");
  hist_.reboot_snapshot_ns = &metrics_.GetHistogram("reboot.snapshot_ns");
  hist_.reboot_snapshot_hash_ns =
      &metrics_.GetHistogram("reboot.snapshot_hash_ns");
  hist_.reboot_snapshot_copy_ns =
      &metrics_.GetHistogram("reboot.snapshot_copy_ns");
  hist_.reboot_replay_ns = &metrics_.GetHistogram("reboot.replay_ns");
  hist_.reboot_total_ns = &metrics_.GetHistogram("reboot.total_ns");
  hist_.replay_entries = &metrics_.GetHistogram("reboot.replay_entries");
  hist_.trace_queue_ns = &metrics_.GetHistogram("trace.queue_ns");
  hist_.trace_exec_ns = &metrics_.GetHistogram("trace.exec_ns");
  hist_.trace_reply_ns = &metrics_.GetHistogram("trace.reply_ns");
  hist_.trace_stall_ns = &metrics_.GetHistogram("trace.stall_reboot_ns");

  isolation_ = options_.isolation && options_.mode == Mode::kVampOS;
  domain_ = std::make_unique<msg::MessageDomain>(
      options_.msg_arena_size, isolation_ ? &domains_ : nullptr);
  domain_->BindTelemetry(&recorder_, hist_.queue_depth);
  domain_->EnableZeroCopy(options_.zero_copy_payloads);
  fibers_.set_recorder(&recorder_);

  if (options_.isolation_check) {
    checker_ = std::make_unique<check::IsolationChecker>();
    checker_->BindRecorder(&recorder_);
    // The message-domain arena is the trust zone: component payloads must
    // not carry pointers into it either.
    checker_->RegisterRegion(check::IsolationChecker::kMessageDomainOwner,
                             domain_->arena().base(), domain_->arena().size(),
                             "message-domain");
  }

  if (options_.health) EnableHealth(options_.health_config);
}

obs::HealthMonitor& Runtime::EnableHealth(const obs::HealthConfig& config) {
  if (health_ == nullptr) {
    health_ = std::make_unique<obs::HealthMonitor>(config);
    health_->BindMetrics(&metrics_);
    health_->BindRecorder(&recorder_);
    for (const auto& slot : slots_) {
      if (slot.component == nullptr) continue;
      const ComponentId id = slot.component->id();
      if (LeaderOf(id) != id) continue;  // merged members ride the leader
      health_->Track(id, slot.component->name());
    }
  }
  return *health_;
}

Runtime::~Runtime() {
  // The pool drains before anything else is torn down: worker tasks hold
  // raw pointers into slots_.
  recovery_pool_.reset();
}

ComponentId Runtime::AddComponent(std::unique_ptr<Component> component) {
  if (booted_) Fatal("AddComponent after Boot()");
  const auto id = static_cast<ComponentId>(slots_.size());
  component->id_ = id;
  Slot slot;
  slot.component = std::move(component);
  slot.leader = id;
  slot.group = {id};
  slots_.push_back(std::move(slot));
  domain_->EnsureCapacity(id);
  return id;
}

void Runtime::AddDependency(ComponentId from, ComponentId to) {
  slots_[from].deps.push_back(to);
}

void Runtime::AddAppDependency(ComponentId to) { app_deps_.push_back(to); }

void Runtime::Merge(const std::vector<ComponentId>& members) {
  if (booted_) Fatal("Merge after Boot()");
  if (members.size() < 2) Fatal("Merge needs at least two components");
  const ComponentId leader = members.front();
  slots_[leader].group = members;
  for (ComponentId m : members) {
    slots_[m].leader = leader;
  }
}

void Runtime::Boot() {
  if (booted_) Fatal("double Boot()");
  // Phase 0: protection domains. Each leader gets one MPK key; merged
  // members share the leader's key (one tag manages the merged domain).
  if (isolation_) {
    if (options_.virtualize_mpk_keys) domains_.EnableKeyVirtualization();
    for (auto& slot : slots_) {
      if (slot.leader != slot.component->id()) continue;
      auto key = domains_.AssignKey(slot.component->arena(),
                                    slot.component->name());
      if (!key.has_value()) {
        // Physical keys exhausted (paper §V-D): isolation degrades to the
        // default key rather than failing boot.
        VAMPOS_ERROR("out of MPK keys at component '%s'; left unisolated",
                     slot.component->name().c_str());
        continue;
      }
      slot.key = *key;
      for (ComponentId m : slot.group) {
        slots_[m].key = *key;
        if (m != slot.component->id()) {
          domains_.TagArena(slots_[m].component->arena(), *key,
                            slots_[m].component->name());
        }
      }
    }
    for (auto& slot : slots_) {
      mpk::Pkru pkru = mpk::Pkru::AllDenied();
      if (slot.key != mpk::kDefaultKey) pkru.Allow(slot.key, /*write=*/true);
      pkru.Allow(domain_->key(), /*write=*/true);
      slot.pkru = pkru;
    }
  }

  // Shadow ownership map: every component arena is claimed for its group
  // leader's protection domain. Overlapping claims mean the domain layout is
  // broken before any component runs — fail loudly at boot.
  if (checker_ != nullptr) {
    for (auto& slot : slots_) {
      const ComponentId id = slot.component->id();
      checker_->RegisterComponentName(id, slot.component->name());
      checker_->RegisterRegion(slot.leader, slot.component->arena().base(),
                               slot.component->arena().size(),
                               slot.component->name());
    }
    if (!checker_->ownership_violations().empty()) {
      Fatal("isolation checker: %s",
            checker_->ownership_violations().front().c_str());
    }
  }

  // Phase 1: Init — allocate state, export functions.
  for (auto& slot : slots_) {
    slot.component->alloc_.emplace(slot.component->arena());
    InitCtx ctx(*this, slot.component->id());
    slot.component->Init(ctx);
  }
  // Phase 2: Bind — resolve imports (all exports now exist).
  for (auto& slot : slots_) {
    InitCtx ctx(*this, slot.component->id());
    slot.component->Bind(ctx);
  }
  // Phase 3: checkpoint-based initialization — capture the post-init image
  // of every stateful component (paper §V-E). The vanilla-Unikraft baseline
  // carries no recovery machinery and skips this.
  if (options_.mode == Mode::kVampOS) {
    for (auto& slot : slots_) {
      if (slot.component->statefulness() == Statefulness::kStateful) {
        slot.checkpoint = CaptureCheckpoint(*slot.component);
      }
    }
  }
  // Phase 4: resident fibers, one per leader (VampOS mode only).
  if (options_.mode == Mode::kVampOS) {
    for (auto& slot : slots_) {
      if (slot.leader != slot.component->id()) continue;
      RespawnResident(slot.component->id());
    }
  }
  booted_ = true;
}

void Runtime::RespawnResident(ComponentId id) {
  Slot& slot = slots_[id];
  slot.resident = fibers_.Spawn(slot.component->name() + "/resident", id,
                                [this, id] { ResidentLoop(id); });
}

// ------------------------------------------------------------- app plane

sched::Fiber* Runtime::SpawnApp(const std::string& name,
                                std::function<void()> body) {
  sched::Fiber* f =
      fibers_.Spawn("app/" + name, kComponentNone, std::move(body));
  app_fibers_.push_back(f);
  return f;
}

namespace {
bool FiberReady(const sched::Fiber* f) {
  return f != nullptr && f->state() == sched::FiberState::kReady;
}
}  // namespace

void Runtime::ParkApp() {
  sched::Fiber* self = fibers_.Current();
  if (self == nullptr || self->owner() != kComponentNone) {
    Fatal("ParkApp() outside an app fiber");
  }
  parked_apps_.push_back(self);
  fibers_.Block();
}

void Runtime::UnparkApps() {
  for (sched::Fiber* f : parked_apps_) {
    if (f->state() == sched::FiberState::kBlocked) fibers_.Wake(f);
  }
  parked_apps_.clear();
}

bool Runtime::RunUntil(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!Step()) return false;
  }
  return true;
}

void Runtime::RunUntilIdle() {
  static const long spin_limit = [] {
    const char* env = std::getenv("VAMPOS_SPIN_LIMIT");
    return env != nullptr ? std::atol(env) : 0L;
  }();
  long steps = 0;
  while (Step()) {
    if (spin_limit > 0 && ++steps > spin_limit) {
      DumpState(stderr);
      WritePostmortemTrace("spin-limit");
      Fatal("RunUntilIdle exceeded VAMPOS_SPIN_LIMIT=%ld steps", spin_limit);
    }
  }
  // Reap finished app fibers so long-running servers that spawn one fiber
  // per request do not accumulate stacks.
  for (auto it = app_fibers_.begin(); it != app_fibers_.end();) {
    if ((*it)->state() == sched::FiberState::kDone) {
      fibers_.Destroy(*it);
      it = app_fibers_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Runtime::Step() {
  DeliverReplies();
  CheckHangs();
  // Drain any recovery progress without blocking: worker restores that have
  // landed get joined and replays run here, between dispatches, so healthy
  // components keep being served while others recover.
  DriveRecovery(/*block=*/false);
  MaybeSpawnAux();
  if (health_ != nullptr && health_->SampleDue(health_now_)) {
    SampleHealth(health_now_);
  }

  // Idle detection: work exists if an app fiber can run, a message or reply
  // is queued, or a handler is mid-flight.
  bool has_work = domain_->HasReply();
  if (!has_work) {
    for (auto* f : app_fibers_) {
      if (FiberReady(f)) {
        has_work = true;
        break;
      }
    }
  }
  if (!has_work) {
    for (std::size_t id = 0; id < slots_.size() && !has_work; ++id) {
      if (domain_->HasMessage(static_cast<ComponentId>(id)) ||
          slots_[id].busy > 0) {
        has_work = true;
      }
    }
  }
  if (!has_work && recovery_jobs_.empty()) return false;

  sched::Fiber* f = PickNext();
  if (f == nullptr) {
    if (!recovery_jobs_.empty()) {
      // Nothing dispatchable, but recoveries are in flight: block on their
      // progress instead of spinning through empty polls.
      DriveRecovery(/*block=*/true);
      return true;
    }
    return false;
  }
  InstallPkruFor(f->owner());
  const sched::FiberState st = fibers_.Dispatch(f);
  InstallMessageThreadPkru();
  if (st == sched::FiberState::kFaulted) {
    HandleFaultedFiber(f);
  } else if (st == sched::FiberState::kDone) {
    // Aux fibers finish after one message; reap them here. App fibers are
    // reaped by RunUntilIdle.
    if (f->owner() != kComponentNone) {
      Slot& slot = slots_[LeaderOf(f->owner())];
      auto it = std::find(slot.aux.begin(), slot.aux.end(), f);
      if (it != slot.aux.end()) {
        slot.aux.erase(it);
        fibers_.Destroy(f);
      }
    }
  }
  return true;
}

// ------------------------------------------------------------ scheduling

sched::Fiber* Runtime::PickNext() {
  // Application fibers run as soon as they are ready (their syscall
  // returned); this mirrors the unikernel returning to the app thread.
  for (auto* f : app_fibers_) {
    if (FiberReady(f)) return f;
  }
  return options_.policy == SchedPolicy::kDependencyAware
             ? PickDependencyAware()
             : PickRoundRobin();
}

sched::Fiber* Runtime::PickRoundRobin() {
  // The round-robin scheduler dispatches component threads in ring order,
  // including components whose queues are empty — they poll and yield. This
  // is the overhead VampOS-Noop pays in Fig 5.
  const std::size_t n = slots_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (rr_cursor_ + i) % n;
    Slot& slot = slots_[idx];
    if (slot.leader != static_cast<ComponentId>(idx)) continue;
    // Aux fibers first: they hold in-flight handlers (possibly just woken
    // by a reply) and would starve behind the always-ready resident poller.
    for (auto* aux : slot.aux) {
      if (FiberReady(aux)) {
        rr_cursor_ = (idx + 1) % n;
        return aux;
      }
    }
    if (FiberReady(slot.resident)) {
      rr_cursor_ = (idx + 1) % n;
      return slot.resident;
    }
  }
  return nullptr;
}

sched::Fiber* Runtime::PickDependencyAware() {
  // Dependency-aware scheduling (§V-C): the candidates are the components
  // correlated with the most recent sender; empty-queue candidates still
  // get a (cheap) poll dispatch, but unrelated components are skipped.
  auto fiber_of = [this](ComponentId leader) -> sched::Fiber* {
    Slot& slot = slots_[leader];
    // Aux before resident: an aux fiber holds an in-flight handler and must
    // not starve behind the resident's ever-ready polling loop.
    for (auto* aux : slot.aux) {
      if (FiberReady(aux)) return aux;
    }
    if (FiberReady(slot.resident)) return slot.resident;
    return nullptr;
  };
  auto group_depth = [this](ComponentId leader) {
    std::size_t depth = 0;
    for (ComponentId m : slots_[leader].group) depth += domain_->QueueDepth(m);
    return depth;
  };

  while (!das_candidates_.empty()) {
    // Queue-depth hint: among the correlated candidates, dispatch the one
    // with the most queued work first — it amortizes its dispatch over a
    // whole execution batch. Ties keep correlation order.
    std::size_t best = 0;
    std::size_t best_depth = group_depth(LeaderOf(das_candidates_[0]));
    for (std::size_t i = 1; i < das_candidates_.size(); ++i) {
      const std::size_t d = group_depth(LeaderOf(das_candidates_[i]));
      if (d > best_depth) {
        best = i;
        best_depth = d;
      }
    }
    const ComponentId c = LeaderOf(das_candidates_[best]);
    das_candidates_.erase(das_candidates_.begin() +
                          static_cast<std::ptrdiff_t>(best));
    if (sched::Fiber* f = fiber_of(c)) return f;
  }
  // Fallbacks: the oldest pending message's destination, then any ready
  // component fiber (e.g. a caller woken by a reply).
  const ComponentId dest = domain_->OldestPendingDestination();
  if (dest != kComponentNone) {
    if (sched::Fiber* f = fiber_of(LeaderOf(dest))) return f;
  }
  // Rotating cursor: a fixed id-order scan would let a low-id component
  // whose fiber is always ready (e.g. parked in an injected hang, yielding
  // forever) starve every higher-id fiber woken by a reply — the starved
  // caller then ages past the hang threshold without ever running.
  const std::size_t n = slots_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (das_fallback_cursor_ + i) % n;
    const auto cid = static_cast<ComponentId>(idx);
    if (sched::Fiber* f = fiber_of(LeaderOf(cid))) {
      if (slots_[LeaderOf(cid)].busy > 0 || domain_->HasMessage(cid)) {
        das_fallback_cursor_ = (idx + 1) % n;
        return f;
      }
    }
  }
  return nullptr;
}

void Runtime::MaybeSpawnAux() {
  // On-demand thread attach (§V-A): if a component has pending messages but
  // every one of its fibers is blocked inside a handler, attach a fresh
  // fiber so the arriving message can be handled (deadlock avoidance).
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    const auto cid = static_cast<ComponentId>(id);
    if (!domain_->HasMessage(cid)) continue;
    Slot& slot = slots_[LeaderOf(cid)];
    if (slot.failed) continue;
    bool any_available = FiberReady(slot.resident);
    for (auto* aux : slot.aux) {
      any_available = any_available || FiberReady(aux);
    }
    if (any_available) continue;
    if (slot.aux.size() >= kMaxAuxFibers) continue;
    sched::Fiber* aux = fibers_.Spawn(
        slot.component->name() + "/aux", slot.component->id(),
        [this, cid] { ExecuteOne(cid); });
    slot.aux.push_back(aux);
    ct_.aux_fibers_spawned->Add();
  }
}

void Runtime::NoteDispatched(ComponentId) {}

// ------------------------------------------------------------- call plane

msg::MsgValue Runtime::Call(FunctionId fn_id, Args args) {
  const FnEntry& fn = Fn(fn_id);
  ct_.calls->Add();

  // Restore mode: replay runs on the message thread with restore_stack_
  // tracking the component being restored.
  if (!restore_stack_.empty() && fibers_.Current() == nullptr) {
    const ComponentId restoring = restore_stack_.back().component;
    if (SameGroup(restoring, fn.owner)) {
      // Intra-group calls execute for real during replay: the whole merged
      // group is being restored together.
      return DirectInvoke(restoring, fn_id, args, /*restoring=*/true);
    }
    return RestoreFeed(restoring, fn_id);
  }

  if (options_.mode == Mode::kUnikraft) {
    ExecCtx* ctx = CurrentExec();
    const ComponentId caller = ctx ? ctx->component : kComponentNone;
    return DirectInvoke(caller, fn_id, args, /*restoring=*/false);
  }

  ExecCtx* ctx = CurrentExec();
  const ComponentId caller = ctx ? ctx->component : kComponentNone;
  if (caller != kComponentNone && SameGroup(caller, fn.owner)) {
    // Component merging (§V-F): members of a merged component invoke each
    // other with plain function calls, skipping the message path.
    return DirectInvoke(caller, fn_id, args, /*restoring=*/false);
  }
  if (options_.inline_calls) {
    if (auto inlined = TryInlineCall(caller, fn_id, args)) {
      return std::move(*inlined);
    }
  }
  return MessageCall(caller, fn_id, std::move(args));
}

msg::MsgValue Runtime::DirectInvoke(ComponentId /*caller*/, FunctionId fn_id,
                                    const Args& args, bool restoring) {
  ct_.direct_calls->Add();
  const FnEntry& fn = Fn(fn_id);
  CallCtx ctx(*this, fn.owner, restoring);
  TaintComponentEntry(*slots_[fn.owner].component);
  const Nanos t0 = options_.clock->Now();
  MsgValue ret = fn.handler(ctx, args);
  const Nanos t1 = options_.clock->Now();
  fn.latency->Record(t1 - t0);
  const bool failed = ret.is_i64() && ret.i64() < 0;
  if (failed) fn.errors->Add();
  if (health_ != nullptr && !restoring) {
    health_now_ = t1;
    const ComponentId hid = LeaderOf(fn.owner);
    health_->OnRequest(hid, t1, t1 - t0);
    if (failed) health_->OnError(hid, t1);
  }
  return ret;
}

msg::MsgValue Runtime::MessageCall(ComponentId caller, FunctionId fn_id,
                                   Args args) {
  const FnEntry& fn = Fn(fn_id);
  // Outbound dedupe for retried requests: the pre-reboot execution already
  // made this call and observed its return; feed it back instead of
  // re-invoking the peer, whose side effect already happened. A divergent
  // call sequence abandons the feed and executes the rest for real.
  if (ExecCtx* ctx = CurrentExec();
      ctx != nullptr && ctx->feed_cursor < ctx->outbound_feed.size()) {
    if (ctx->outbound_feed[ctx->feed_cursor].first == fn_id) {
      MsgValue fed = ctx->outbound_feed[ctx->feed_cursor++].second;
      // Re-record into the fresh log entry so a later reboot still replays
      // the full outbound history.
      if (ctx->inbound_seq != 0) {
        domain_->LogFor(ctx->component)
            .RecordOutbound(ctx->inbound_seq, fn_id, fed);
      }
      ct_.retries_deduped->Add();
      return fed;
    }
    ctx->outbound_feed.clear();
    ctx->feed_cursor = 0;
  }
  // Calls into a fail-stopped component return immediately: after a
  // fail-stop there is no fiber to serve them, and graceful-termination
  // hooks must not block on the dead component.
  if (slots_[LeaderOf(fn.owner)].failed && terminal_fault_.has_value()) {
    return MsgValue(ToWire(Status::Error(Errno::kIo, "component dead")));
  }
  sched::Fiber* self = fibers_.Current();
  if (self == nullptr) {
    Fatal("message-passing call to %s.%s outside a fiber context",
          slots_[fn.owner].component->name().c_str(), fn.name.c_str());
  }

  if (checker_ != nullptr) {
    // Push-time isolation checks: a payload carrying a pointer into another
    // domain's arena faults the *sender* (kMpkViolation → normal reboot
    // path), and a call that would close a reply wait-for cycle faults it
    // with kDeadlock before the message plane can wedge. Both throws unwind
    // this fiber like any other component fault.
    const ComponentId caller_domain =
        caller == kComponentNone ? kComponentNone : LeaderOf(caller);
    checker_->ScanPayload(caller, caller_domain, args);
    checker_->CheckCallCycle(caller_domain, LeaderOf(fn.owner));
  }

  // Message-thread work: store the arguments in the function-call log before
  // the callee is dispatched (§V-C).
  const LogSeq seq = MaybeLogCall(fn, args);

  Message m;
  m.kind = Message::Kind::kCall;
  m.rpc_id = domain_->NextRpcId();
  m.from = caller;
  m.to = fn.owner;
  m.fn = fn_id;
  m.caller_fiber = self;
  m.enqueued_at = options_.clock->Now();
  m.log_seq = seq;
  // Causal identity (single branch when tracing is off): a call issued
  // while serving a traced request becomes a child span of that request; a
  // call with no active trace — an app-facing entry point — mints a new
  // trace, pinned to this fiber for the duration of the call so the
  // callee's nested calls chain under it.
  bool minted_root = false;
  if (recorder_.enabled()) {
    const obs::TraceContext parent = self->trace();
    if (parent.active()) {
      m.trace = {parent.trace_id, next_span_id_++, parent.span_id};
    } else {
      m.trace = {next_trace_id_++, next_span_id_++, 0};
      self->set_trace(m.trace);
      minted_root = true;
    }
  }
  domain_->Push(m, args);
  ct_.messages->Add();
  pending_replies_[m.rpc_id] = PendingReply{false, MsgValue(), self};
  if (checker_ != nullptr && caller != kComponentNone) {
    checker_->AddWait(m.rpc_id, LeaderOf(caller), LeaderOf(fn.owner));
  }

  if (options_.policy == SchedPolicy::kDependencyAware) {
    // Correlation hint: the sender's dependency set *replaces* the candidate
    // list — the scheduler infers the next dispatches from the component
    // that just sent a message (§V-C), and stale hints from earlier sends
    // would only cause useless empty-poll dispatches.
    das_candidates_.clear();
    const auto& deps =
        caller == kComponentNone ? app_deps_ : slots_[caller].deps;
    for (ComponentId d : deps) das_candidates_.push_back(LeaderOf(d));
  }

  fibers_.Block();  // the message thread takes over; Wake() on reply

  if (checker_ != nullptr) checker_->RemoveWait(m.rpc_id);

  // End-to-end call latency (enqueue to reply pickup) feeds the tail
  // percentiles the bench harness reports.
  hist_.call_ns->Record(options_.clock->Now() - m.enqueued_at);

  // The request is complete: a root minted for this call must not leak
  // onto the app fiber's next, unrelated call.
  if (minted_root) self->set_trace({});

  auto it = pending_replies_.find(m.rpc_id);
  if (it == pending_replies_.end() || !it->second.arrived) {
    // Reply lost: the callee fail-stopped and could not be recovered.
    if (it != pending_replies_.end()) pending_replies_.erase(it);
    return MsgValue(ToWire(Status::Error(Errno::kIo, "component failed")));
  }
  MsgValue ret = std::move(it->second.value);
  pending_replies_.erase(it);
  return ret;
}

std::optional<msg::MsgValue> Runtime::TryInlineCall(ComponentId caller,
                                                    FunctionId fn_id,
                                                    const Args& args) {
  const FnEntry& fn = Fn(fn_id);
  const ComponentId leader = LeaderOf(fn.owner);
  Slot& slot = slots_[leader];
  sched::Fiber* self = fibers_.Current();
  // Eligibility: resident, idle, and indistinguishable from the message path
  // for everything the caller can observe. Anything that relies on queue
  // order or the reboot machinery's mid-call windows — queued work, an armed
  // injection, a pending retry, an outbound replay feed — takes the message
  // path so its semantics are untouched.
  if (self == nullptr || terminal_fault_.has_value()) return std::nullopt;
  if (slot.failed || slot.resident == nullptr || slot.busy > 0 ||
      slot.retried_once) {
    return std::nullopt;
  }
  if (slot.injection.has_value() && slot.injection->armed) return std::nullopt;
  if (recorder_.enabled() && !trace_inline_) return std::nullopt;
  for (ComponentId member : slot.group) {
    if (domain_->HasMessage(member)) return std::nullopt;
  }
  if (ExecCtx* ctx = CurrentExec();
      ctx != nullptr && ctx->feed_cursor < ctx->outbound_feed.size()) {
    return std::nullopt;  // MessageCall owns the retry-dedupe feed
  }

  if (checker_ != nullptr) {
    // Push-time leak scan, same as the message path. No wait edge or cycle
    // check: the call completes synchronously, so it can never participate
    // in a reply wait-for cycle.
    const ComponentId caller_domain =
        caller == kComponentNone ? kComponentNone : LeaderOf(caller);
    checker_->ScanPayload(caller, caller_domain, args);
  }

  // Log before dispatch (§V-C), exactly like the message path: a reboot
  // during the inlined handler must find the inbound call in the log.
  const LogSeq seq = MaybeLogCall(fn, args);

  Message m;
  m.kind = Message::Kind::kCall;
  m.rpc_id = domain_->NextRpcId();
  m.from = caller;
  m.to = fn.owner;
  m.fn = fn_id;
  m.caller_fiber = self;
  m.enqueued_at = options_.clock->Now();
  m.log_seq = seq;

  // Run the handler on this fiber under the callee's execution context, so
  // nested calls, the hang-clock bookkeeping, and a mid-handler reboot all
  // see the same state an ExecuteOne dispatch would produce. The caller's
  // own context is restored afterwards.
  std::optional<ExecCtx> saved;
  if (auto it = exec_ctx_.find(self); it != exec_ctx_.end()) {
    saved = std::move(it->second);
  }
  slot.busy++;
  exec_ctx_[self] =
      ExecCtx{fn.owner, seq, m, args, options_.clock->Now(), {}, 0};
  InstallPkruFor(fn.owner);
  TaintComponentEntry(*slots_[fn.owner].component);

  CallCtx cctx(*this, fn.owner, /*restoring=*/false);
  MsgValue ret;
  Nanos t1 = 0;
  const Nanos t0 = options_.clock->Now();
  try {
    ret = fn.handler(cctx, args);
    t1 = options_.clock->Now();
    if (checker_ != nullptr) {
      checker_->ScanPayload(fn.owner, leader, Args{ret});
    }
  } catch (ComponentFault& fault) {
    if (slot.busy > 0) slot.busy--;  // a racing reboot may have reset it
    exec_ctx_.erase(self);
    if (saved.has_value()) exec_ctx_[self] = std::move(*saved);
    InstallPkruFor(caller);
    if (fault.component() == kComponentNone ||
        LeaderOf(fault.component()) != leader) {
      throw;  // not ours to recover (e.g. a nested callee faulted)
    }
    return RecoverInlineFault(m, args, fault);
  } catch (...) {
    if (slot.busy > 0) slot.busy--;
    exec_ctx_.erase(self);
    if (saved.has_value()) exec_ctx_[self] = std::move(*saved);
    InstallPkruFor(caller);
    throw;
  }
  if (slot.busy > 0) slot.busy--;
  slot.retried_once = false;
  exec_ctx_.erase(self);
  if (saved.has_value()) exec_ctx_[self] = std::move(*saved);
  InstallPkruFor(caller);

  fn.latency->Record(t1 - t0);
  hist_.call_ns->Record(t1 - t0);
  const bool handler_error = ret.is_i64() && ret.i64() < 0;
  if (handler_error) fn.errors->Add();
  if (health_ != nullptr) {
    health_now_ = t1;
    health_->OnRequest(leader, t1, t1 - t0);
    if (handler_error) health_->OnError(leader, t1);
  }
  // A borrowed view returned inline never crosses the reply queue, so the
  // single delivery copy the reply path would make happens here; a view the
  // lender already invalidated becomes the same kIo error the message
  // thread would deliver.
  if (ret.is_view()) {
    ret = ret.ViewUsable()
              ? ret.Compacted()
              : MsgValue(ToWire(Status::Error(
                    Errno::kIo, "reply payload invalidated by lender reboot")));
  }
  if (seq != 0) FinishLog(fn, seq, ret, Args{});
  if (ExecCtx* ctx = CurrentExec(); ctx != nullptr && ctx->inbound_seq != 0) {
    // The caller's own outbound log still needs the return for its replay.
    domain_->LogFor(ctx->component).RecordOutbound(ctx->inbound_seq, fn_id,
                                                   ret);
  }
  ct_.direct_calls->Add();
  return ret;
}

msg::MsgValue Runtime::RecoverInlineFault(const Message& m, const Args& args,
                                          const ComponentFault& fault) {
  // The faulted execution sits on the *caller's* live fiber, so the usual
  // faulted-fiber teardown does not apply: park the interrupted call for the
  // post-reboot retry, kick off recovery, and block like a message-path
  // caller until the retried execution's reply (or a fail-stop) wakes us.
  const ComponentId leader = LeaderOf(m.to);
  Slot& slot = slots_[leader];
  sched::Fiber* self = fibers_.Current();
  slot.failed = true;
  if (health_ != nullptr) {
    health_now_ = options_.clock->Now();
    health_->OnFault(leader, health_now_);
  }
  VAMPOS_INFO("component '%s' failed (inline): %s",
              slots_[leader].component->name().c_str(), fault.what());
  slot.inflight_failed = std::make_pair(m, args);
  pending_replies_[m.rpc_id] = PendingReply{false, MsgValue(), self};
  if (checker_ != nullptr && m.from != kComponentNone) {
    checker_->AddWait(m.rpc_id, LeaderOf(m.from), leader);
  }
  auto begun =
      BeginRecovery(leader, /*refresh=*/false, /*escalate=*/true, fault);
  if (!begun.ok()) FailStop(fault);
  // FailStop wakes only fibers already blocked, so if recovery ended in a
  // fail-stop before we block there is nobody left to wake us: fall through
  // to the reply-lost path instead.
  if (!terminal_fault_.has_value()) {
    fibers_.Block();  // message thread finishes recovery; reply wakes us
  }
  if (checker_ != nullptr) checker_->RemoveWait(m.rpc_id);
  hist_.call_ns->Record(options_.clock->Now() - m.enqueued_at);
  auto it = pending_replies_.find(m.rpc_id);
  if (it == pending_replies_.end() || !it->second.arrived) {
    if (it != pending_replies_.end()) pending_replies_.erase(it);
    return MsgValue(ToWire(Status::Error(Errno::kIo, "component failed")));
  }
  MsgValue ret = std::move(it->second.value);
  pending_replies_.erase(it);
  return ret;
}

void Runtime::ResidentLoop(ComponentId leader) {
  while (true) {
    // Execute up to kExecBatch queued messages per dispatch: the replies
    // accumulate in the domain and the message thread delivers them as one
    // batch instead of paying a full scheduler round trip per message.
    std::size_t executed = 0;
    while (executed < kExecBatch) {
      bool any = false;
      for (ComponentId member : slots_[leader].group) {
        if (ExecuteOne(member)) {
          any = true;
          break;
        }
      }
      if (!any) break;
      executed++;
    }
    if (executed == 0) ct_.empty_polls->Add();
    fibers_.Yield();
  }
}

bool Runtime::ExecuteOne(ComponentId id) {
  auto pulled = domain_->Pull(id);
  if (!pulled.has_value()) return false;
  auto& [m, args] = *pulled;
  Slot& slot = slots_[LeaderOf(id)];
  sched::Fiber* fiber = fibers_.Current();

  // Adopt the message's causal identity before anything can fault or hang:
  // nested calls the handler makes become child spans, and a reboot that
  // interrupts this execution finds the trace on the retry record. The
  // queue-wait share of the request's latency is knowable right here.
  if (recorder_.enabled()) {
    fiber->set_trace(m.trace);
    if (m.trace.active()) {
      hist_.trace_queue_ns->Record(options_.clock->Now() - m.enqueued_at);
    }
  }

  // Fault injection (tests, case studies): trigger before the handler runs.
  if (slot.injection.has_value() && slot.injection->armed) {
    if (slot.injection->remaining-- <= 0) {
      const FaultKind kind = slot.injection->kind;
      if (!slot.injection->sticky) slot.injection->armed = false;
      slot.injection->remaining = 0;
      recorder_.Record(obs::EventKind::kFaultInjected,
                       obs::TracePhase::kInstant, id,
                       static_cast<std::int64_t>(kind),
                       static_cast<std::int64_t>(m.rpc_id));
      if (kind == FaultKind::kHang) {
        // Model a hang: the handler never completes; the hang detector
        // (processing-time threshold) will reboot the component. The
        // in-flight message is retried from the execution context the
        // reboot collects (not inflight_failed — that would retry twice).
        slot.busy++;
        exec_ctx_[fiber] =
            ExecCtx{id, m.log_seq, m, args, options_.clock->Now(), {}, 0};
        // Park until the hang detector's recovery destroys this fiber. A
        // fail-stop ends recovery for good, so unwind then instead: an
        // immortal always-ready fiber would keep the terminal runtime from
        // ever going idle.
        while (!terminal_fault_.has_value()) fibers_.Yield();
        slot.busy--;
        exec_ctx_.erase(fiber);
        throw ComponentFault(id, FaultKind::kHang,
                             "injected hang unwound at fail-stop");
      }
      slot.inflight_failed = std::make_pair(m, args);
      if (kind == FaultKind::kCorruptCheckpoint) {
        // Damage the group's checkpoint before the fault fires, so the
        // reboot this fault triggers fails its restore (and, with the
        // reinit-on-restore-failure fallback, rebuilds the component from
        // Init plus a full log replay instead of fail-stopping).
        for (ComponentId member : slots_[LeaderOf(id)].group) {
          if (slots_[member].component->statefulness() ==
              Statefulness::kStateful) {
            CorruptCheckpoint(member);
            break;
          }
        }
      }
      if (kind == FaultKind::kMpkViolation && isolation_) {
        // Attempt a cross-domain write; the MPK simulator raises the fault.
        for (auto& other : slots_) {
          if (other.key != slot.key && other.key != mpk::kDefaultKey) {
            std::byte poison{0xEF};
            domains_.CheckedWrite(id, other.component->arena().base(),
                                  &poison, 1);
          }
        }
      }
      throw ComponentFault(id, kind == FaultKind::kMpkViolation
                                   ? FaultKind::kPanic  // isolation off
                                   : kind,
                           "injected fault");
    }
  }

  slot.busy++;
  ExecCtx ctx{id, m.log_seq, m, args, options_.clock->Now(), {}, 0};
  if (auto fit = retry_feeds_.find(m.rpc_id); fit != retry_feeds_.end()) {
    ctx.outbound_feed = std::move(fit->second);
    retry_feeds_.erase(fit);
  }
  exec_ctx_[fiber] = std::move(ctx);

  const FnEntry& fn = Fn(m.fn);
  CallCtx cctx(*this, id, /*restoring=*/false);
  TaintComponentEntry(*slots_[id].component);
  MsgValue ret;
  Nanos t1 = 0;
  const Nanos t0 = options_.clock->Now();
  try {
    ret = fn.handler(cctx, args);
    t1 = options_.clock->Now();
    fn.latency->Record(t1 - t0);
    if (recorder_.enabled() && m.trace.active()) {
      hist_.trace_exec_ns->Record(t1 - t0);
    }
    const bool handler_error = ret.is_i64() && ret.i64() < 0;
    if (handler_error) fn.errors->Add();
    if (health_ != nullptr) {
      health_now_ = t1;
      const ComponentId hid = LeaderOf(id);
      health_->OnRequest(hid, t1, t1 - t0);
      if (handler_error) health_->OnError(hid, t1);
    }
    // Reply-side leak scan, still inside the try so a leaked return value
    // gets the same retry-then-fail-stop treatment as a faulting handler.
    if (checker_ != nullptr) {
      checker_->ScanPayload(id, LeaderOf(id), Args{ret});
    }
  } catch (...) {
    slot.busy--;
    slot.inflight_failed = std::make_pair(m, args);
    exec_ctx_.erase(fiber);
    throw;
  }
  slot.busy--;
  slot.retried_once = false;  // forward progress resets the retry budget
  exec_ctx_.erase(fiber);
  if (recorder_.enabled()) fiber->set_trace({});

  Message r;
  r.kind = Message::Kind::kReply;
  r.rpc_id = m.rpc_id;
  r.from = id;
  r.to = m.from;
  r.fn = m.fn;
  r.caller_fiber = m.caller_fiber;
  // Replies inherit the call's identity; enqueued_at doubles as the reply
  // push timestamp so delivery can record the reply-hop latency.
  r.enqueued_at = t1;
  r.log_seq = m.log_seq;
  r.trace = m.trace;
  domain_->PushReply(r, Args{ret});
  ct_.messages->Add();
  // End of the borrower's execution window: revoke the borrow grants made
  // for this call's inbound views. Inbound views echoed into the reply were
  // already materialized by PushReply (granted views take the copy path —
  // one hop only), so nothing downstream still reads through the grant.
  domain_->RevokeBorrows(m.rpc_id);
  return true;
}

void Runtime::DeliverOneReply(const Message& m, Args& payload) {
  MsgValue ret = payload.empty() ? MsgValue() : payload[0];
  // A reply view whose lender rebooted between push and delivery must never
  // be silently read (or logged): the caller gets an explicit I/O error, the
  // same contract as a lost reply.
  if (ret.is_view() && !ret.ViewUsable()) {
    ret = MsgValue(
        ToWire(Status::Error(Errno::kIo,
                             "reply payload invalidated by lender reboot")));
  }
  const FnEntry& fn = Fn(m.fn);
  // Message-thread log work: preserve the return value (§V-C), apply
  // session-aware shrinking, and record the value in the caller's
  // outbound log for its own future restoration.
  if (m.log_seq != 0) FinishLog(fn, m.log_seq, ret, Args{});
  auto it = pending_replies_.find(m.rpc_id);
  // Orphaned (caller rebooted or fail-stopped): its fiber pointer may be
  // dangling or even reused by a new fiber — do not touch it, and do not
  // record outbound returns against whatever now owns that address.
  if (it == pending_replies_.end()) return;
  RecordOutboundForCaller(m, ret);
  if (m.caller_fiber == nullptr ||
      m.caller_fiber->state() != sched::FiberState::kBlocked) {
    pending_replies_.erase(it);
    return;
  }
  it->second.arrived = true;
  it->second.value = std::move(ret);
  recorder_.Record(obs::EventKind::kReplyDeliver, obs::TracePhase::kInstant,
                   m.to, m.fn, static_cast<std::int64_t>(m.rpc_id), m.trace);
  if (recorder_.enabled() && m.trace.active() && m.enqueued_at != 0) {
    hist_.trace_reply_ns->Record(options_.clock->Now() - m.enqueued_at);
  }
  fibers_.Wake(m.caller_fiber);
  // The caller made progress: refresh its hang timer so time spent
  // blocked on a (possibly hung and rebooted) callee is not charged to
  // the caller's own processing time.
  if (auto ctx_it = exec_ctx_.find(m.caller_fiber);
      ctx_it != exec_ctx_.end()) {
    ctx_it->second.started_at = options_.clock->Now();
  }
  if (options_.policy == SchedPolicy::kDependencyAware &&
      m.to != kComponentNone) {
    das_candidates_.push_front(m.to);
  }
}

void Runtime::DeliverReplies() {
  // Coalesced delivery: replies accumulated since the last scheduler turn
  // are flushed in one pass rather than per message. The batching counter
  // covers the whole turn's flush — kReplyBatch is a pull granularity, not
  // a coalescing boundary, so two pulls of one reply each still count as a
  // batch of two.
  std::vector<std::pair<Message, Args>> batch;
  std::uint64_t flushed = 0;
  while (domain_->PullReplies(kReplyBatch, &batch) > 0) {
    flushed += batch.size();
    for (auto& [m, payload] : batch) DeliverOneReply(m, payload);
  }
  if (flushed > 1) ct_.replies_batched->Add(flushed);
}

Runtime::ExecCtx* Runtime::CurrentExec() {
  if (sched::Fiber* f = fibers_.Current()) {
    auto it = exec_ctx_.find(f);
    return it == exec_ctx_.end() ? nullptr : &it->second;
  }
  if (!restore_stack_.empty()) return &restore_stack_.back();
  return nullptr;
}

bool Runtime::SameGroup(ComponentId a, ComponentId b) const {
  return a != kComponentNone && b != kComponentNone &&
         LeaderOf(a) == LeaderOf(b);
}

// ----------------------------------------------------------------- lookup

FunctionId Runtime::Lookup(const std::string& component,
                           const std::string& function) const {
  if (auto id = TryLookup(component, function)) return *id;
  Fatal("unknown function %s.%s", component.c_str(), function.c_str());
}

std::optional<FunctionId> Runtime::TryLookup(
    const std::string& component, const std::string& function) const {
  auto it = fn_by_name_.find(component + "." + function);
  if (it == fn_by_name_.end()) return std::nullopt;
  return it->second;
}

ComponentId Runtime::FindComponent(const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.component->name() == name) return slot.component->id();
  }
  return kComponentNone;
}

std::vector<ComponentId> Runtime::Components() const {
  std::vector<ComponentId> ids;
  ids.reserve(slots_.size());
  for (const auto& slot : slots_) ids.push_back(slot.component->id());
  return ids;
}

// ------------------------------------------------------------------ PKRU

void Runtime::InstallPkruFor(ComponentId id) {
  if (!isolation_) return;
  if (id == kComponentNone) {
    mpk::Pkru pkru = mpk::Pkru::AllDenied();
    pkru.Allow(domain_->key(), /*write=*/true);
    domains_.WritePkru(pkru);
    return;
  }
  domains_.WritePkru(slots_[LeaderOf(id)].pkru);
}

void Runtime::InstallMessageThreadPkru() {
  if (!isolation_) return;
  // The message thread is trusted: it owns the message domain and logs.
  mpk::Pkru pkru = mpk::Pkru::AllDenied();
  pkru.Allow(domain_->key(), /*write=*/true);
  domains_.WritePkru(pkru);
}

// ------------------------------------------------------------------ stats

std::vector<FunctionStats> Runtime::TopFunctions(std::size_t limit) const {
  std::vector<FunctionStats> out;
  out.reserve(fns_.size());
  for (const FnEntry& fn : fns_) {
    if (fn.latency == nullptr || fn.latency->count() == 0) continue;
    FunctionStats s;
    s.name = slots_[fn.owner].component->name() + "." + fn.name;
    s.calls = fn.latency->count();
    s.total_ns = static_cast<Nanos>(fn.latency->sum());
    s.errors = fn.errors->value();
    s.p50_ns = static_cast<Nanos>(fn.latency->Percentile(50));
    s.p95_ns = static_cast<Nanos>(fn.latency->Percentile(95));
    s.p99_ns = static_cast<Nanos>(fn.latency->Percentile(99));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionStats& a, const FunctionStats& b) {
              return a.total_ns > b.total_ns;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

RuntimeStats Runtime::Stats() const {
  RuntimeStats s;
  s.calls = ct_.calls->value();
  s.direct_calls = ct_.direct_calls->value();
  s.messages = ct_.messages->value();
  s.empty_polls = ct_.empty_polls->value();
  s.log_appends = ct_.log_appends->value();
  s.log_pruned_entries = ct_.log_pruned_entries->value();
  s.compactions = ct_.compactions->value();
  s.compaction_skips = ct_.compaction_skips->value();
  s.replies_batched = ct_.replies_batched->value();
  s.retries_deduped = ct_.retries_deduped->value();
  s.reboots = ct_.reboots->value();
  s.aux_fibers_spawned = ct_.aux_fibers_spawned->value();
  s.hangs_detected = ct_.hangs_detected->value();
  s.context_switches = fibers_.context_switches();
  s.pkru_writes = domains_.PkruWrites();
  s.log_scans = domain_->TotalLogScans();
  return s;
}

MemoryReport Runtime::Memory() const {
  MemoryReport r;
  for (const auto& slot : slots_) {
    r.component_arena_bytes += slot.component->arena().size();
    if (slot.component->alloc_.has_value()) {
      r.component_used_bytes += slot.component->alloc_->Stats().bytes_in_use;
    }
    r.snapshot_bytes += slot.checkpoint.size_bytes();
    r.snapshot_stored_bytes += slot.checkpoint.stored_bytes();
  }
  r.snapshot_baseline_bytes = snapshot_baseline_.bytes();
  r.log_bytes = domain_->TotalLogBytes();
  r.log_entries = domain_->TotalLogEntries();
  return r;
}

void Runtime::SampleHealth(Nanos now) {
  for (const auto& slot : slots_) {
    if (slot.component == nullptr) continue;
    const ComponentId id = slot.component->id();
    if (LeaderOf(id) != id) continue;  // merged members ride the leader
    std::int64_t bytes = 0;
    if (slot.component->alloc_.has_value()) {
      bytes = static_cast<std::int64_t>(
          slot.component->alloc_->Stats().bytes_in_use);
    }
    std::int64_t marks = 0;
    if (const mem::DirtyTracker* t = slot.component->arena().dirty_tracker()) {
      marks = static_cast<std::int64_t>(t->marks());
    }
    health_->OnSample(id, now, bytes, marks);
  }
}

std::size_t Runtime::LogEntries(ComponentId id) const {
  return domain_->HasLog(id)
             ? const_cast<Runtime*>(this)->domain_->LogFor(id).size()
             : 0;
}

std::size_t Runtime::LogBytes(ComponentId id) const {
  return domain_->HasLog(id)
             ? const_cast<Runtime*>(this)->domain_->LogFor(id).bytes()
             : 0;
}

int Runtime::MpkTagsInUse() const { return domains_.KeysInUse(); }

void Runtime::DumpState(std::FILE* out) const {
  std::fprintf(out, "=== vampos runtime state ===\n");
  for (const auto& slot : slots_) {
    const ComponentId id = slot.component->id();
    std::fprintf(
        out,
        "  comp %2d %-10s leader=%d failed=%d busy=%d queue=%zu log=%zu "
        "reboots=%llu resident=%s aux=%zu\n",
        id, slot.component->name().c_str(), slot.leader, slot.failed,
        slot.busy, domain_->QueueDepth(id),
        domain_->HasLog(id)
            ? const_cast<msg::MessageDomain&>(*domain_).LogFor(id).size()
            : 0,
        static_cast<unsigned long long>(slot.reboots),
        slot.resident == nullptr
            ? "none"
            : (slot.resident->state() == sched::FiberState::kReady
                   ? "ready"
                   : "blocked/other"),
        slot.aux.size());
  }
  for (const auto* f : app_fibers_) {
    std::fprintf(out, "  app fiber '%s' state=%d\n", f->name().c_str(),
                 static_cast<int>(f->state()));
  }
  std::fprintf(out, "  pending rpcs=%zu exec ctxs=%zu replies queued=%d\n",
               pending_replies_.size(), exec_ctx_.size(),
               domain_->HasReply() ? 1 : 0);
  for (const auto& [rpc, p] : pending_replies_) {
    std::fprintf(out, "    rpc %llu arrived=%d waiter=%s state=%d\n",
                 static_cast<unsigned long long>(rpc), p.arrived,
                 p.waiter != nullptr ? p.waiter->name().c_str() : "null",
                 p.waiter != nullptr ? static_cast<int>(p.waiter->state())
                                     : -1);
  }
  for (const auto& [fiber, ctx] : exec_ctx_) {
    std::fprintf(out, "    exec ctx fiber='%s' comp=%d seq=%llu\n",
                 fiber->name().c_str(), ctx.component,
                 static_cast<unsigned long long>(ctx.inbound_seq));
  }
  std::fprintf(out, "  terminal fault: %s\n",
               terminal_fault_.has_value() ? terminal_fault_->what() : "none");
  if (health_ != nullptr) health_->Dump(out, options_.clock->Now());
  if (checker_ != nullptr) checker_->Dump(out);
  recorder_.DumpTail(out);
}

void Runtime::WritePostmortemTrace(const char* why) const {
  if (recorder_.total_recorded() == 0) return;
  const char* path = std::getenv("VAMPOS_TRACE_DUMP");
  if (path == nullptr) path = "vampos_postmortem_trace.json";
  if (path[0] == '\0') return;  // VAMPOS_TRACE_DUMP="" suppresses the dump
  if (recorder_.WriteChromeTrace(path)) {
    VAMPOS_INFO("post-mortem trace (%s) written to %s", why, path);
  } else {
    VAMPOS_ERROR("cannot write post-mortem trace to %s", path);
  }
  // A companion metrics snapshot (VAMPOS_METRICS_DUMP=path) pairs the
  // trace with the registry state — CI archives both as artifacts. The
  // exposition format follows VAMPOS_METRICS_FORMAT (text/json/prom).
  if (const char* mpath = std::getenv("VAMPOS_METRICS_DUMP");
      mpath != nullptr && mpath[0] != '\0') {
    if (std::FILE* f = std::fopen(mpath, "w")) {
      switch (metrics_format_) {
        case MetricsFormat::kText:
          metrics_.WriteText(f);
          break;
        case MetricsFormat::kJson:
          metrics_.WriteJson(f);
          break;
        case MetricsFormat::kProm:
          metrics_.WritePrometheus(f);
          break;
      }
      std::fclose(f);
    } else {
      VAMPOS_ERROR("cannot write metrics snapshot to %s", mpath);
    }
  }
}

// ------------------------------------------------------------- the vault

void Runtime::SaveRuntimeData(ComponentId id, const std::string& key,
                              MsgValue value) {
  vault_[std::to_string(id) + "/" + key] = std::move(value);
}

std::optional<MsgValue> Runtime::LoadRuntimeData(ComponentId id,
                                                 const std::string& key) {
  auto it = vault_.find(std::to_string(id) + "/" + key);
  if (it == vault_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vampos::core

// ------------------------------------------------- comp:: context methods

namespace vampos::comp {

msg::MsgValue CallCtx::Call(FunctionId fn, msg::Args args) {
  return rt_.Call(fn, std::move(args));
}

void CallCtx::SaveRuntimeData(const std::string& key, msg::MsgValue value) {
  rt_.SaveRuntimeData(self_, key, std::move(value));
}

std::optional<msg::MsgValue> CallCtx::LoadRuntimeData(const std::string& key) {
  return rt_.LoadRuntimeData(self_, key);
}

void CallCtx::Panic(const std::string& detail) {
  vampos::Panic(self_, detail);
}

FunctionId InitCtx::Export(const std::string& name, FnOptions options,
                           Handler handler) {
  return rt_.ExportFn(self_, name, options, std::move(handler));
}

FunctionId InitCtx::Import(const std::string& component,
                           const std::string& function) {
  return rt_.Lookup(component, function);
}

std::optional<FunctionId> InitCtx::TryImport(const std::string& component,
                                             const std::string& function) {
  return rt_.TryLookup(component, function);
}

}  // namespace vampos::comp
