#include "comp/component.h"

#include <utility>

namespace vampos::comp {

Component::Component(std::string name, Statefulness statefulness,
                     std::size_t arena_size)
    : name_(std::move(name)),
      statefulness_(statefulness),
      arena_(arena_size, name_) {}

}  // namespace vampos::comp
